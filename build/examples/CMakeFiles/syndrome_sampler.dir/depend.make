# Empty dependencies file for syndrome_sampler.
# This may be replaced when dependencies are built.
