file(REMOVE_RECURSE
  "CMakeFiles/syndrome_sampler.dir/syndrome_sampler.cpp.o"
  "CMakeFiles/syndrome_sampler.dir/syndrome_sampler.cpp.o.d"
  "syndrome_sampler"
  "syndrome_sampler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syndrome_sampler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
