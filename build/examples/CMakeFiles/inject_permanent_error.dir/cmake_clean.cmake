file(REMOVE_RECURSE
  "CMakeFiles/inject_permanent_error.dir/inject_permanent_error.cpp.o"
  "CMakeFiles/inject_permanent_error.dir/inject_permanent_error.cpp.o.d"
  "inject_permanent_error"
  "inject_permanent_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inject_permanent_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
