# Empty dependencies file for inject_permanent_error.
# This may be replaced when dependencies are built.
