# Empty dependencies file for export_fault_dictionary.
# This may be replaced when dependencies are built.
