file(REMOVE_RECURSE
  "CMakeFiles/export_fault_dictionary.dir/export_fault_dictionary.cpp.o"
  "CMakeFiles/export_fault_dictionary.dir/export_fault_dictionary.cpp.o.d"
  "export_fault_dictionary"
  "export_fault_dictionary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_fault_dictionary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
