file(REMOVE_RECURSE
  "CMakeFiles/gate_fault_anatomy.dir/gate_fault_anatomy.cpp.o"
  "CMakeFiles/gate_fault_anatomy.dir/gate_fault_anatomy.cpp.o.d"
  "gate_fault_anatomy"
  "gate_fault_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gate_fault_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
