# Empty dependencies file for gate_fault_anatomy.
# This may be replaced when dependencies are built.
