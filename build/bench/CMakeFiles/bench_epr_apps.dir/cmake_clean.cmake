file(REMOVE_RECURSE
  "CMakeFiles/bench_epr_apps.dir/bench_epr_apps.cpp.o"
  "CMakeFiles/bench_epr_apps.dir/bench_epr_apps.cpp.o.d"
  "bench_epr_apps"
  "bench_epr_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_epr_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
