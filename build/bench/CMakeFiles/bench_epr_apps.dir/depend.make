# Empty dependencies file for bench_epr_apps.
# This may be replaced when dependencies are built.
