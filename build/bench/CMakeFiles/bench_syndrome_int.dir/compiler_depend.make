# Empty compiler generated dependencies file for bench_syndrome_int.
# This may be replaced when dependencies are built.
