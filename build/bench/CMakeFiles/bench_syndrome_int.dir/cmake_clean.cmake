file(REMOVE_RECURSE
  "CMakeFiles/bench_syndrome_int.dir/bench_syndrome_int.cpp.o"
  "CMakeFiles/bench_syndrome_int.dir/bench_syndrome_int.cpp.o.d"
  "bench_syndrome_int"
  "bench_syndrome_int.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_syndrome_int.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
