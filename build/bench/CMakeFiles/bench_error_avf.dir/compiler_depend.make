# Empty compiler generated dependencies file for bench_error_avf.
# This may be replaced when dependencies are built.
