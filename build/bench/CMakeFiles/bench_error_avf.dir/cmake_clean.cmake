file(REMOVE_RECURSE
  "CMakeFiles/bench_error_avf.dir/bench_error_avf.cpp.o"
  "CMakeFiles/bench_error_avf.dir/bench_error_avf.cpp.o.d"
  "bench_error_avf"
  "bench_error_avf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_error_avf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
