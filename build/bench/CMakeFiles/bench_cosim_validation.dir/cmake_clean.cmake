file(REMOVE_RECURSE
  "CMakeFiles/bench_cosim_validation.dir/bench_cosim_validation.cpp.o"
  "CMakeFiles/bench_cosim_validation.dir/bench_cosim_validation.cpp.o.d"
  "bench_cosim_validation"
  "bench_cosim_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cosim_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
