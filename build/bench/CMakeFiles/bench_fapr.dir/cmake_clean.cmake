file(REMOVE_RECURSE
  "CMakeFiles/bench_fapr.dir/bench_fapr.cpp.o"
  "CMakeFiles/bench_fapr.dir/bench_fapr.cpp.o.d"
  "bench_fapr"
  "bench_fapr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fapr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
