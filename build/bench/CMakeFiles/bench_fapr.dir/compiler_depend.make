# Empty compiler generated dependencies file for bench_fapr.
# This may be replaced when dependencies are built.
