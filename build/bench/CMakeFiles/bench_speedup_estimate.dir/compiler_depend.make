# Empty compiler generated dependencies file for bench_speedup_estimate.
# This may be replaced when dependencies are built.
