file(REMOVE_RECURSE
  "CMakeFiles/bench_speedup_estimate.dir/bench_speedup_estimate.cpp.o"
  "CMakeFiles/bench_speedup_estimate.dir/bench_speedup_estimate.cpp.o.d"
  "bench_speedup_estimate"
  "bench_speedup_estimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_speedup_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
