# Empty compiler generated dependencies file for bench_syndrome_fp.
# This may be replaced when dependencies are built.
