file(REMOVE_RECURSE
  "CMakeFiles/bench_syndrome_fp.dir/bench_syndrome_fp.cpp.o"
  "CMakeFiles/bench_syndrome_fp.dir/bench_syndrome_fp.cpp.o.d"
  "bench_syndrome_fp"
  "bench_syndrome_fp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_syndrome_fp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
