# Empty dependencies file for bench_tmxm.
# This may be replaced when dependencies are built.
