# Empty compiler generated dependencies file for bench_tmxm.
# This may be replaced when dependencies are built.
