file(REMOVE_RECURSE
  "CMakeFiles/bench_tmxm.dir/bench_tmxm.cpp.o"
  "CMakeFiles/bench_tmxm.dir/bench_tmxm.cpp.o.d"
  "bench_tmxm"
  "bench_tmxm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tmxm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
