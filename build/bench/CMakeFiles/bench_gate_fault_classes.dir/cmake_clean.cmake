file(REMOVE_RECURSE
  "CMakeFiles/bench_gate_fault_classes.dir/bench_gate_fault_classes.cpp.o"
  "CMakeFiles/bench_gate_fault_classes.dir/bench_gate_fault_classes.cpp.o.d"
  "bench_gate_fault_classes"
  "bench_gate_fault_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gate_fault_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
