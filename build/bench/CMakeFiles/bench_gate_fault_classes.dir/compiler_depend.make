# Empty compiler generated dependencies file for bench_gate_fault_classes.
# This may be replaced when dependencies are built.
