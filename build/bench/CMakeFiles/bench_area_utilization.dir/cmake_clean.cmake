file(REMOVE_RECURSE
  "CMakeFiles/bench_area_utilization.dir/bench_area_utilization.cpp.o"
  "CMakeFiles/bench_area_utilization.dir/bench_area_utilization.cpp.o.d"
  "bench_area_utilization"
  "bench_area_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_area_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
