# Empty dependencies file for bench_area_utilization.
# This may be replaced when dependencies are built.
