# Empty compiler generated dependencies file for bench_rtl_avf.
# This may be replaced when dependencies are built.
