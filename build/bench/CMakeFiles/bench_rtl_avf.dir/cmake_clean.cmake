file(REMOVE_RECURSE
  "CMakeFiles/bench_rtl_avf.dir/bench_rtl_avf.cpp.o"
  "CMakeFiles/bench_rtl_avf.dir/bench_rtl_avf.cpp.o.d"
  "bench_rtl_avf"
  "bench_rtl_avf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rtl_avf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
