file(REMOVE_RECURSE
  "CMakeFiles/bench_fault_timing.dir/bench_fault_timing.cpp.o"
  "CMakeFiles/bench_fault_timing.dir/bench_fault_timing.cpp.o.d"
  "bench_fault_timing"
  "bench_fault_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fault_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
