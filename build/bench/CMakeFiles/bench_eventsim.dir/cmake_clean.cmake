file(REMOVE_RECURSE
  "CMakeFiles/bench_eventsim.dir/bench_eventsim.cpp.o"
  "CMakeFiles/bench_eventsim.dir/bench_eventsim.cpp.o.d"
  "bench_eventsim"
  "bench_eventsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eventsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
