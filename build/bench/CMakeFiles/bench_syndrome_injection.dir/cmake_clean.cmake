file(REMOVE_RECURSE
  "CMakeFiles/bench_syndrome_injection.dir/bench_syndrome_injection.cpp.o"
  "CMakeFiles/bench_syndrome_injection.dir/bench_syndrome_injection.cpp.o.d"
  "bench_syndrome_injection"
  "bench_syndrome_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_syndrome_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
