# Empty dependencies file for bench_syndrome_injection.
# This may be replaced when dependencies are built.
