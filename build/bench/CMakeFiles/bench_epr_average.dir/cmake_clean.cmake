file(REMOVE_RECURSE
  "CMakeFiles/bench_epr_average.dir/bench_epr_average.cpp.o"
  "CMakeFiles/bench_epr_average.dir/bench_epr_average.cpp.o.d"
  "bench_epr_average"
  "bench_epr_average.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_epr_average.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
