# Empty dependencies file for bench_epr_average.
# This may be replaced when dependencies are built.
