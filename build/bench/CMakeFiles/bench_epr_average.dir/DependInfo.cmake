
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_epr_average.cpp" "bench/CMakeFiles/bench_epr_average.dir/bench_epr_average.cpp.o" "gcc" "bench/CMakeFiles/bench_epr_average.dir/bench_epr_average.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/perfi/CMakeFiles/gpf_perfi.dir/DependInfo.cmake"
  "/root/repo/build/src/errmodel/CMakeFiles/gpf_errmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/gpf_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/gpf_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/gpf_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/softfloat/CMakeFiles/gpf_softfloat.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/gpf_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gpf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
