file(REMOVE_RECURSE
  "libgpf_gate.a"
)
