# Empty dependencies file for gpf_gate.
# This may be replaced when dependencies are built.
