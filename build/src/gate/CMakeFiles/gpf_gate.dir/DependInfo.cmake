
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gate/cosim.cpp" "src/gate/CMakeFiles/gpf_gate.dir/cosim.cpp.o" "gcc" "src/gate/CMakeFiles/gpf_gate.dir/cosim.cpp.o.d"
  "/root/repo/src/gate/dictionary.cpp" "src/gate/CMakeFiles/gpf_gate.dir/dictionary.cpp.o" "gcc" "src/gate/CMakeFiles/gpf_gate.dir/dictionary.cpp.o.d"
  "/root/repo/src/gate/eventsim.cpp" "src/gate/CMakeFiles/gpf_gate.dir/eventsim.cpp.o" "gcc" "src/gate/CMakeFiles/gpf_gate.dir/eventsim.cpp.o.d"
  "/root/repo/src/gate/netlist.cpp" "src/gate/CMakeFiles/gpf_gate.dir/netlist.cpp.o" "gcc" "src/gate/CMakeFiles/gpf_gate.dir/netlist.cpp.o.d"
  "/root/repo/src/gate/profiler.cpp" "src/gate/CMakeFiles/gpf_gate.dir/profiler.cpp.o" "gcc" "src/gate/CMakeFiles/gpf_gate.dir/profiler.cpp.o.d"
  "/root/repo/src/gate/replay.cpp" "src/gate/CMakeFiles/gpf_gate.dir/replay.cpp.o" "gcc" "src/gate/CMakeFiles/gpf_gate.dir/replay.cpp.o.d"
  "/root/repo/src/gate/sim.cpp" "src/gate/CMakeFiles/gpf_gate.dir/sim.cpp.o" "gcc" "src/gate/CMakeFiles/gpf_gate.dir/sim.cpp.o.d"
  "/root/repo/src/gate/units.cpp" "src/gate/CMakeFiles/gpf_gate.dir/units.cpp.o" "gcc" "src/gate/CMakeFiles/gpf_gate.dir/units.cpp.o.d"
  "/root/repo/src/gate/wordops.cpp" "src/gate/CMakeFiles/gpf_gate.dir/wordops.cpp.o" "gcc" "src/gate/CMakeFiles/gpf_gate.dir/wordops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/gpf_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/gpf_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/errmodel/CMakeFiles/gpf_errmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gpf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/softfloat/CMakeFiles/gpf_softfloat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
