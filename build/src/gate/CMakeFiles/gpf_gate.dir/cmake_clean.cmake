file(REMOVE_RECURSE
  "CMakeFiles/gpf_gate.dir/cosim.cpp.o"
  "CMakeFiles/gpf_gate.dir/cosim.cpp.o.d"
  "CMakeFiles/gpf_gate.dir/dictionary.cpp.o"
  "CMakeFiles/gpf_gate.dir/dictionary.cpp.o.d"
  "CMakeFiles/gpf_gate.dir/eventsim.cpp.o"
  "CMakeFiles/gpf_gate.dir/eventsim.cpp.o.d"
  "CMakeFiles/gpf_gate.dir/netlist.cpp.o"
  "CMakeFiles/gpf_gate.dir/netlist.cpp.o.d"
  "CMakeFiles/gpf_gate.dir/profiler.cpp.o"
  "CMakeFiles/gpf_gate.dir/profiler.cpp.o.d"
  "CMakeFiles/gpf_gate.dir/replay.cpp.o"
  "CMakeFiles/gpf_gate.dir/replay.cpp.o.d"
  "CMakeFiles/gpf_gate.dir/sim.cpp.o"
  "CMakeFiles/gpf_gate.dir/sim.cpp.o.d"
  "CMakeFiles/gpf_gate.dir/units.cpp.o"
  "CMakeFiles/gpf_gate.dir/units.cpp.o.d"
  "CMakeFiles/gpf_gate.dir/wordops.cpp.o"
  "CMakeFiles/gpf_gate.dir/wordops.cpp.o.d"
  "libgpf_gate.a"
  "libgpf_gate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpf_gate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
