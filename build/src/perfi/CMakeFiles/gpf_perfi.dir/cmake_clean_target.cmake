file(REMOVE_RECURSE
  "libgpf_perfi.a"
)
