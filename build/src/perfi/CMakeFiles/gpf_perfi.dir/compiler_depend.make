# Empty compiler generated dependencies file for gpf_perfi.
# This may be replaced when dependencies are built.
