file(REMOVE_RECURSE
  "CMakeFiles/gpf_perfi.dir/campaign.cpp.o"
  "CMakeFiles/gpf_perfi.dir/campaign.cpp.o.d"
  "CMakeFiles/gpf_perfi.dir/injector.cpp.o"
  "CMakeFiles/gpf_perfi.dir/injector.cpp.o.d"
  "CMakeFiles/gpf_perfi.dir/syndrome_injector.cpp.o"
  "CMakeFiles/gpf_perfi.dir/syndrome_injector.cpp.o.d"
  "libgpf_perfi.a"
  "libgpf_perfi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpf_perfi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
