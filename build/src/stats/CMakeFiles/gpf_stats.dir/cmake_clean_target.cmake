file(REMOVE_RECURSE
  "libgpf_stats.a"
)
