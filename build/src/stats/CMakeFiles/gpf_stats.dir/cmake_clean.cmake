file(REMOVE_RECURSE
  "CMakeFiles/gpf_stats.dir/descriptive.cpp.o"
  "CMakeFiles/gpf_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/gpf_stats.dir/histogram.cpp.o"
  "CMakeFiles/gpf_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/gpf_stats.dir/powerlaw.cpp.o"
  "CMakeFiles/gpf_stats.dir/powerlaw.cpp.o.d"
  "CMakeFiles/gpf_stats.dir/shapiro.cpp.o"
  "CMakeFiles/gpf_stats.dir/shapiro.cpp.o.d"
  "libgpf_stats.a"
  "libgpf_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpf_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
