# Empty compiler generated dependencies file for gpf_stats.
# This may be replaced when dependencies are built.
