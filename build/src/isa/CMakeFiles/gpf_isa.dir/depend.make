# Empty dependencies file for gpf_isa.
# This may be replaced when dependencies are built.
