file(REMOVE_RECURSE
  "CMakeFiles/gpf_isa.dir/assembler.cpp.o"
  "CMakeFiles/gpf_isa.dir/assembler.cpp.o.d"
  "CMakeFiles/gpf_isa.dir/builder.cpp.o"
  "CMakeFiles/gpf_isa.dir/builder.cpp.o.d"
  "CMakeFiles/gpf_isa.dir/encoding.cpp.o"
  "CMakeFiles/gpf_isa.dir/encoding.cpp.o.d"
  "CMakeFiles/gpf_isa.dir/opcode.cpp.o"
  "CMakeFiles/gpf_isa.dir/opcode.cpp.o.d"
  "CMakeFiles/gpf_isa.dir/program.cpp.o"
  "CMakeFiles/gpf_isa.dir/program.cpp.o.d"
  "libgpf_isa.a"
  "libgpf_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpf_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
