file(REMOVE_RECURSE
  "libgpf_isa.a"
)
