file(REMOVE_RECURSE
  "CMakeFiles/gpf_common.dir/env.cpp.o"
  "CMakeFiles/gpf_common.dir/env.cpp.o.d"
  "CMakeFiles/gpf_common.dir/table.cpp.o"
  "CMakeFiles/gpf_common.dir/table.cpp.o.d"
  "CMakeFiles/gpf_common.dir/threadpool.cpp.o"
  "CMakeFiles/gpf_common.dir/threadpool.cpp.o.d"
  "libgpf_common.a"
  "libgpf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpf_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
