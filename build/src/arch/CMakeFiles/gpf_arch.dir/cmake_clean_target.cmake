file(REMOVE_RECURSE
  "libgpf_arch.a"
)
