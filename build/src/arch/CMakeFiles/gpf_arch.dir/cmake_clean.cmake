file(REMOVE_RECURSE
  "CMakeFiles/gpf_arch.dir/exec.cpp.o"
  "CMakeFiles/gpf_arch.dir/exec.cpp.o.d"
  "CMakeFiles/gpf_arch.dir/machine.cpp.o"
  "CMakeFiles/gpf_arch.dir/machine.cpp.o.d"
  "libgpf_arch.a"
  "libgpf_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpf_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
