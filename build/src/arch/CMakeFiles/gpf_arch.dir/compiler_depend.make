# Empty compiler generated dependencies file for gpf_arch.
# This may be replaced when dependencies are built.
