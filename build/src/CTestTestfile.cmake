# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("stats")
subdirs("isa")
subdirs("softfloat")
subdirs("arch")
subdirs("rtl")
subdirs("gate")
subdirs("errmodel")
subdirs("perfi")
subdirs("workloads")
subdirs("syndrome")
subdirs("report")
