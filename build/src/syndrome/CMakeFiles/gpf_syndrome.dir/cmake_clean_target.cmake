file(REMOVE_RECURSE
  "libgpf_syndrome.a"
)
