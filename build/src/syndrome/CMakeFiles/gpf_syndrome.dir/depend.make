# Empty dependencies file for gpf_syndrome.
# This may be replaced when dependencies are built.
