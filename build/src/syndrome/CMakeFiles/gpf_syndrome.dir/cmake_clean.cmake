file(REMOVE_RECURSE
  "CMakeFiles/gpf_syndrome.dir/pattern.cpp.o"
  "CMakeFiles/gpf_syndrome.dir/pattern.cpp.o.d"
  "libgpf_syndrome.a"
  "libgpf_syndrome.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpf_syndrome.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
