# Empty dependencies file for gpf_errmodel.
# This may be replaced when dependencies are built.
