file(REMOVE_RECURSE
  "libgpf_errmodel.a"
)
