file(REMOVE_RECURSE
  "CMakeFiles/gpf_errmodel.dir/models.cpp.o"
  "CMakeFiles/gpf_errmodel.dir/models.cpp.o.d"
  "libgpf_errmodel.a"
  "libgpf_errmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpf_errmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
