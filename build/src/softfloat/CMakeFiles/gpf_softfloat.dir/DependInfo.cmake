
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/softfloat/fp32.cpp" "src/softfloat/CMakeFiles/gpf_softfloat.dir/fp32.cpp.o" "gcc" "src/softfloat/CMakeFiles/gpf_softfloat.dir/fp32.cpp.o.d"
  "/root/repo/src/softfloat/intops.cpp" "src/softfloat/CMakeFiles/gpf_softfloat.dir/intops.cpp.o" "gcc" "src/softfloat/CMakeFiles/gpf_softfloat.dir/intops.cpp.o.d"
  "/root/repo/src/softfloat/sfu.cpp" "src/softfloat/CMakeFiles/gpf_softfloat.dir/sfu.cpp.o" "gcc" "src/softfloat/CMakeFiles/gpf_softfloat.dir/sfu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gpf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
