file(REMOVE_RECURSE
  "CMakeFiles/gpf_softfloat.dir/fp32.cpp.o"
  "CMakeFiles/gpf_softfloat.dir/fp32.cpp.o.d"
  "CMakeFiles/gpf_softfloat.dir/intops.cpp.o"
  "CMakeFiles/gpf_softfloat.dir/intops.cpp.o.d"
  "CMakeFiles/gpf_softfloat.dir/sfu.cpp.o"
  "CMakeFiles/gpf_softfloat.dir/sfu.cpp.o.d"
  "libgpf_softfloat.a"
  "libgpf_softfloat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpf_softfloat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
