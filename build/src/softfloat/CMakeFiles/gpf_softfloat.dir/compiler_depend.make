# Empty compiler generated dependencies file for gpf_softfloat.
# This may be replaced when dependencies are built.
