file(REMOVE_RECURSE
  "libgpf_softfloat.a"
)
