
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/apps_dnn.cpp" "src/workloads/CMakeFiles/gpf_workloads.dir/apps_dnn.cpp.o" "gcc" "src/workloads/CMakeFiles/gpf_workloads.dir/apps_dnn.cpp.o.d"
  "/root/repo/src/workloads/apps_graph.cpp" "src/workloads/CMakeFiles/gpf_workloads.dir/apps_graph.cpp.o" "gcc" "src/workloads/CMakeFiles/gpf_workloads.dir/apps_graph.cpp.o.d"
  "/root/repo/src/workloads/apps_linear.cpp" "src/workloads/CMakeFiles/gpf_workloads.dir/apps_linear.cpp.o" "gcc" "src/workloads/CMakeFiles/gpf_workloads.dir/apps_linear.cpp.o.d"
  "/root/repo/src/workloads/apps_rodinia.cpp" "src/workloads/CMakeFiles/gpf_workloads.dir/apps_rodinia.cpp.o" "gcc" "src/workloads/CMakeFiles/gpf_workloads.dir/apps_rodinia.cpp.o.d"
  "/root/repo/src/workloads/apps_sort.cpp" "src/workloads/CMakeFiles/gpf_workloads.dir/apps_sort.cpp.o" "gcc" "src/workloads/CMakeFiles/gpf_workloads.dir/apps_sort.cpp.o.d"
  "/root/repo/src/workloads/kernels.cpp" "src/workloads/CMakeFiles/gpf_workloads.dir/kernels.cpp.o" "gcc" "src/workloads/CMakeFiles/gpf_workloads.dir/kernels.cpp.o.d"
  "/root/repo/src/workloads/micro.cpp" "src/workloads/CMakeFiles/gpf_workloads.dir/micro.cpp.o" "gcc" "src/workloads/CMakeFiles/gpf_workloads.dir/micro.cpp.o.d"
  "/root/repo/src/workloads/tmxm.cpp" "src/workloads/CMakeFiles/gpf_workloads.dir/tmxm.cpp.o" "gcc" "src/workloads/CMakeFiles/gpf_workloads.dir/tmxm.cpp.o.d"
  "/root/repo/src/workloads/workload.cpp" "src/workloads/CMakeFiles/gpf_workloads.dir/workload.cpp.o" "gcc" "src/workloads/CMakeFiles/gpf_workloads.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/gpf_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/gpf_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/softfloat/CMakeFiles/gpf_softfloat.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gpf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
