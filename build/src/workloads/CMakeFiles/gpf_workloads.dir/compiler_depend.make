# Empty compiler generated dependencies file for gpf_workloads.
# This may be replaced when dependencies are built.
