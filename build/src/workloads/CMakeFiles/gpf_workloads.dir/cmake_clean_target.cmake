file(REMOVE_RECURSE
  "libgpf_workloads.a"
)
