file(REMOVE_RECURSE
  "CMakeFiles/gpf_workloads.dir/apps_dnn.cpp.o"
  "CMakeFiles/gpf_workloads.dir/apps_dnn.cpp.o.d"
  "CMakeFiles/gpf_workloads.dir/apps_graph.cpp.o"
  "CMakeFiles/gpf_workloads.dir/apps_graph.cpp.o.d"
  "CMakeFiles/gpf_workloads.dir/apps_linear.cpp.o"
  "CMakeFiles/gpf_workloads.dir/apps_linear.cpp.o.d"
  "CMakeFiles/gpf_workloads.dir/apps_rodinia.cpp.o"
  "CMakeFiles/gpf_workloads.dir/apps_rodinia.cpp.o.d"
  "CMakeFiles/gpf_workloads.dir/apps_sort.cpp.o"
  "CMakeFiles/gpf_workloads.dir/apps_sort.cpp.o.d"
  "CMakeFiles/gpf_workloads.dir/kernels.cpp.o"
  "CMakeFiles/gpf_workloads.dir/kernels.cpp.o.d"
  "CMakeFiles/gpf_workloads.dir/micro.cpp.o"
  "CMakeFiles/gpf_workloads.dir/micro.cpp.o.d"
  "CMakeFiles/gpf_workloads.dir/tmxm.cpp.o"
  "CMakeFiles/gpf_workloads.dir/tmxm.cpp.o.d"
  "CMakeFiles/gpf_workloads.dir/workload.cpp.o"
  "CMakeFiles/gpf_workloads.dir/workload.cpp.o.d"
  "libgpf_workloads.a"
  "libgpf_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpf_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
