file(REMOVE_RECURSE
  "CMakeFiles/gpf_rtl.dir/campaign.cpp.o"
  "CMakeFiles/gpf_rtl.dir/campaign.cpp.o.d"
  "CMakeFiles/gpf_rtl.dir/faults.cpp.o"
  "CMakeFiles/gpf_rtl.dir/faults.cpp.o.d"
  "CMakeFiles/gpf_rtl.dir/microbench.cpp.o"
  "CMakeFiles/gpf_rtl.dir/microbench.cpp.o.d"
  "libgpf_rtl.a"
  "libgpf_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpf_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
