# Empty compiler generated dependencies file for gpf_rtl.
# This may be replaced when dependencies are built.
