file(REMOVE_RECURSE
  "libgpf_rtl.a"
)
