# Empty dependencies file for test_eventsim.
# This may be replaced when dependencies are built.
