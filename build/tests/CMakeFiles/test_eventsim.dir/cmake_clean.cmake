file(REMOVE_RECURSE
  "CMakeFiles/test_eventsim.dir/test_eventsim.cpp.o"
  "CMakeFiles/test_eventsim.dir/test_eventsim.cpp.o.d"
  "test_eventsim"
  "test_eventsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eventsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
