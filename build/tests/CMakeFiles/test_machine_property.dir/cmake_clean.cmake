file(REMOVE_RECURSE
  "CMakeFiles/test_machine_property.dir/test_machine_property.cpp.o"
  "CMakeFiles/test_machine_property.dir/test_machine_property.cpp.o.d"
  "test_machine_property"
  "test_machine_property.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
