
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_machine_config.cpp" "tests/CMakeFiles/test_machine_config.dir/test_machine_config.cpp.o" "gcc" "tests/CMakeFiles/test_machine_config.dir/test_machine_config.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/gpf_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/gpf_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/gpf_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/softfloat/CMakeFiles/gpf_softfloat.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gpf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
