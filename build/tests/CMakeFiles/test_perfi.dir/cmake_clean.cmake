file(REMOVE_RECURSE
  "CMakeFiles/test_perfi.dir/test_perfi.cpp.o"
  "CMakeFiles/test_perfi.dir/test_perfi.cpp.o.d"
  "test_perfi"
  "test_perfi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perfi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
