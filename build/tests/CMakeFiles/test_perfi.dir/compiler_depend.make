# Empty compiler generated dependencies file for test_perfi.
# This may be replaced when dependencies are built.
