file(REMOVE_RECURSE
  "CMakeFiles/test_errmodel.dir/test_errmodel.cpp.o"
  "CMakeFiles/test_errmodel.dir/test_errmodel.cpp.o.d"
  "test_errmodel"
  "test_errmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_errmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
