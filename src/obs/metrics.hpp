// Process-wide low-overhead metrics registry.
//
// Campaigns at fleet scale need throughput / latency / lease-health signal
// without perturbing the thing being measured, so the design rules are:
//
//  * hot-path record = one relaxed atomic load (enabled?) + one relaxed RMW;
//  * counters are cache-line padded so two threads bumping different
//    counters never false-share;
//  * instrumentation sites cache the instrument reference once
//    (`static obs::Counter& c = obs::counter("gate.batches");`) — name
//    lookup takes the registry mutex, the per-event path never does;
//  * GPF_METRICS=0 (or set_metrics_override(0)) turns every record call
//    into a single untaken branch, which is how the bench measures the
//    instrumentation's own overhead.
//
// Instruments live forever once registered (deque-backed, stable
// addresses); snapshot() / write_json() walk the registry under its mutex.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/env.hpp"

namespace gpf::obs {

/// True when the registry is recording (GPF_METRICS / override).
inline bool enabled() { return metrics_enabled(); }

/// Monotonic counter, padded to its own cache line.
class alignas(64) Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (enabled()) v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value, padded to its own cache line.
class alignas(64) Gauge {
 public:
  void set(std::int64_t v) {
    if (enabled()) v_.store(v, std::memory_order_relaxed);
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram over power-of-two boundaries: bucket b counts
/// samples in [2^(b-1), 2^b), bucket 0 counts zeros. 32 buckets cover any
/// microsecond latency up to ~35 minutes, or any count up to 2^31.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  void record(std::uint64_t sample) {
    if (!enabled()) return;
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(sample, std::memory_order_relaxed);
    buckets_[bucket_of(sample)].fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  void reset();

  static std::size_t bucket_of(std::uint64_t sample) {
    std::size_t b = 0;
    while (sample && b + 1 < kBuckets) {
      sample >>= 1;
      ++b;
    }
    return b;
  }
  /// Upper bound (exclusive) of bucket b.
  static std::uint64_t bucket_limit(std::size_t b) {
    return b + 1 >= kBuckets ? ~0ull : 1ull << b;
  }

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// Name -> value view of the whole registry at one instant.
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, Histogram::kBuckets> buckets{};
  /// Bucket-upper-bound estimate of the q-quantile (q in [0,1]).
  std::uint64_t quantile(double q) const;
  double mean() const {
    return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }
};

struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;
  std::uint64_t counter(std::string_view name) const;
};

/// Returns the process-wide instrument with this name, registering it on
/// first use. References stay valid for the life of the process.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name);

/// Consistent-enough view of every registered instrument (values are read
/// relaxed; the instrument set itself is read under the registry mutex).
Snapshot snapshot();

/// Zeroes every registered instrument (registrations are kept). Benches and
/// tests use this to delimit measurement windows.
void reset_all();

/// Writes the snapshot as a JSON object:
///   {"counters":{...},"gauges":{...},
///    "histograms":{"name":{"count":..,"sum":..,"mean":..,"p50":..,
///                          "p99":..,"buckets":[..]}}}
void write_json(std::ostream& os);

/// write_json() to `path` (atomically: temp file + rename). Returns false
/// and prints a warning on I/O failure; never throws. Campaign drivers call
/// this at end of campaign to drop metrics.json next to the .gpfs store.
bool write_metrics_json(const std::string& path);

/// RAII microsecond timer recording into a histogram on destruction.
/// Usage: { obs::ScopedTimerUs t(h); ...work...; }
class ScopedTimerUs {
 public:
  explicit ScopedTimerUs(Histogram& h)
      : h_(h), live_(enabled()),
        t0_(live_ ? std::chrono::steady_clock::now()
                  : std::chrono::steady_clock::time_point{}) {}
  ~ScopedTimerUs() {
    if (!live_) return;
    const auto dt = std::chrono::steady_clock::now() - t0_;
    h_.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(dt).count()));
  }
  ScopedTimerUs(const ScopedTimerUs&) = delete;
  ScopedTimerUs& operator=(const ScopedTimerUs&) = delete;

 private:
  Histogram& h_;
  bool live_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace gpf::obs
