#include "obs/metrics.hpp"

#include <cstdio>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>

namespace gpf::obs {

namespace {

// Instruments are deque-backed so the references handed out by
// counter()/gauge()/histogram() survive later registrations; the maps only
// index into the deques. One mutex guards registration and snapshot — the
// per-event record path never touches it.
struct Registry {
  std::mutex mu;
  std::deque<Counter> counters;
  std::deque<Gauge> gauges;
  std::deque<Histogram> histograms;
  std::map<std::string, Counter*, std::less<>> counter_by_name;
  std::map<std::string, Gauge*, std::less<>> gauge_by_name;
  std::map<std::string, Histogram*, std::less<>> histogram_by_name;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: outlives static destructors
  return *r;
}

template <class T, class Map, class Store>
T& intern(Map& map, Store& store, std::string_view name) {
  if (auto it = map.find(name); it != map.end()) return *it->second;
  store.emplace_back();
  return *map.emplace(std::string(name), &store.back()).first->second;
}

}  // namespace

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

std::uint64_t HistogramSnapshot::quantile(double q) const {
  if (!count) return 0;
  const double target = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (static_cast<double>(seen) >= target) return Histogram::bucket_limit(b);
  }
  return Histogram::bucket_limit(buckets.size() - 1);
}

std::uint64_t Snapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters)
    if (n == name) return v;
  return 0;
}

Counter& counter(std::string_view name) {
  auto& r = registry();
  std::lock_guard lock(r.mu);
  return intern<Counter>(r.counter_by_name, r.counters, name);
}

Gauge& gauge(std::string_view name) {
  auto& r = registry();
  std::lock_guard lock(r.mu);
  return intern<Gauge>(r.gauge_by_name, r.gauges, name);
}

Histogram& histogram(std::string_view name) {
  auto& r = registry();
  std::lock_guard lock(r.mu);
  return intern<Histogram>(r.histogram_by_name, r.histograms, name);
}

Snapshot snapshot() {
  auto& r = registry();
  std::lock_guard lock(r.mu);
  Snapshot s;
  s.counters.reserve(r.counter_by_name.size());
  for (const auto& [name, c] : r.counter_by_name)
    s.counters.emplace_back(name, c->value());
  s.gauges.reserve(r.gauge_by_name.size());
  for (const auto& [name, g] : r.gauge_by_name)
    s.gauges.emplace_back(name, g->value());
  s.histograms.reserve(r.histogram_by_name.size());
  for (const auto& [name, h] : r.histogram_by_name) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.count = h->count();
    hs.sum = h->sum();
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b)
      hs.buckets[b] = h->bucket(b);
    s.histograms.push_back(std::move(hs));
  }
  return s;
}

void reset_all() {
  auto& r = registry();
  std::lock_guard lock(r.mu);
  for (auto& c : r.counters) c.reset();
  for (auto& g : r.gauges) g.reset();
  for (auto& h : r.histograms) h.reset();
}

void write_json(std::ostream& os) {
  const Snapshot s = snapshot();
  os << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < s.counters.size(); ++i)
    os << (i ? ",\n    " : "\n    ") << '"' << s.counters[i].first
       << "\": " << s.counters[i].second;
  os << (s.counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < s.gauges.size(); ++i)
    os << (i ? ",\n    " : "\n    ") << '"' << s.gauges[i].first
       << "\": " << s.gauges[i].second;
  os << (s.gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < s.histograms.size(); ++i) {
    const auto& h = s.histograms[i];
    os << (i ? ",\n    " : "\n    ") << '"' << h.name << "\": {\"count\": "
       << h.count << ", \"sum\": " << h.sum << ", \"mean\": " << h.mean()
       << ", \"p50\": " << h.quantile(0.5) << ", \"p99\": " << h.quantile(0.99)
       << ", \"buckets\": [";
    // Trim trailing empty buckets so the JSON stays readable.
    std::size_t last = Histogram::kBuckets;
    while (last > 0 && h.buckets[last - 1] == 0) --last;
    for (std::size_t b = 0; b < last; ++b) os << (b ? "," : "") << h.buckets[b];
    os << "]}";
  }
  os << (s.histograms.empty() ? "" : "\n  ") << "}\n}\n";
}

bool write_metrics_json(const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os) {
      std::fprintf(stderr, "[obs] cannot write %s\n", tmp.c_str());
      return false;
    }
    write_json(os);
    if (!os.flush()) {
      std::fprintf(stderr, "[obs] write failed for %s\n", tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "[obs] rename %s -> %s failed\n", tmp.c_str(),
                 path.c_str());
    return false;
  }
  return true;
}

}  // namespace gpf::obs
