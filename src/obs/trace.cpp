#include "obs/trace.hpp"

#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <vector>

#include "common/env.hpp"

namespace gpf::obs {

namespace {

struct TraceEvent {
  const char* category;
  std::string name;
  std::uint32_t tid;
  std::uint64_t ts_us;
  std::uint64_t dur_us;
  std::string args;
};

struct TraceState {
  std::mutex mu;
  std::string path_override;
  bool override_set = false;
  std::vector<TraceEvent> events;
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  std::uint32_t next_tid = 1;
  bool atexit_registered = false;
};

TraceState& state() {
  static TraceState* s = new TraceState;  // leaked: flushed via atexit
  return *s;
}

std::string current_path() {
  auto& s = state();
  std::lock_guard lock(s.mu);
  return s.override_set ? s.path_override : trace_path();
}

std::uint64_t now_us() {
  const auto dt = std::chrono::steady_clock::now() - state().epoch;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(dt).count());
}

std::uint32_t this_tid() {
  thread_local std::uint32_t tid = [] {
    auto& s = state();
    std::lock_guard lock(s.mu);
    return s.next_tid++;
  }();
  return tid;
}

// Minimal JSON string escaping for span names (quotes/backslash/control).
std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

bool trace_enabled() { return !current_path().empty(); }

void set_trace_path_override(const std::string& path) {
  auto& s = state();
  std::lock_guard lock(s.mu);
  s.path_override = path;
  s.override_set = true;
}

void flush_trace() {
  const std::string path = current_path();
  auto& s = state();
  std::vector<TraceEvent> events;
  {
    std::lock_guard lock(s.mu);
    events.swap(s.events);
  }
  if (path.empty() || events.empty()) return;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os) {
      std::fprintf(stderr, "[obs] cannot write trace %s\n", tmp.c_str());
      return;
    }
    const auto pid = static_cast<std::uint64_t>(::getpid());
    os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
    for (std::size_t i = 0; i < events.size(); ++i) {
      const auto& e = events[i];
      os << (i ? ",\n" : "") << "{\"name\": \"" << json_escape(e.name)
         << "\", \"cat\": \"" << e.category << "\", \"ph\": \"X\", \"pid\": "
         << pid << ", \"tid\": " << e.tid << ", \"ts\": " << e.ts_us
         << ", \"dur\": " << e.dur_us << ", \"args\": {" << e.args << "}}";
    }
    os << "\n]}\n";
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    std::fprintf(stderr, "[obs] rename trace %s failed\n", tmp.c_str());
}

TraceSpan::TraceSpan(const char* category, std::string name)
    : live_(trace_enabled()), category_(category), name_(std::move(name)) {
  if (!live_) return;
  t0_us_ = now_us();
  auto& s = state();
  std::lock_guard lock(s.mu);
  if (!s.atexit_registered) {
    s.atexit_registered = true;
    std::atexit(flush_trace);
  }
}

TraceSpan::~TraceSpan() {
  if (!live_) return;
  const std::uint64_t t1 = now_us();
  const std::uint32_t tid = this_tid();  // may lock; take before s.mu
  auto& s = state();
  std::lock_guard lock(s.mu);
  s.events.push_back(TraceEvent{category_, std::move(name_), tid, t0_us_,
                                t1 - t0_us_, std::move(args_)});
}

void TraceSpan::arg(const char* key, std::uint64_t value) {
  if (!live_) return;
  if (!args_.empty()) args_ += ", ";
  args_ += '"';
  args_ += key;
  args_ += "\": ";
  args_ += std::to_string(value);
}

}  // namespace gpf::obs
