// Opt-in Chrome trace-event output (chrome://tracing / Perfetto).
//
// When GPF_TRACE=<path> is set (or set_trace_path_override() is called, the
// test hook), TraceSpan records complete ("ph":"X") events — campaign ->
// unit -> batch — into an in-memory buffer that is flushed to <path> as
// trace-event JSON at process exit or on flush_trace(). When tracing is off
// a span is two untaken branches; no buffer exists.
//
// Timestamps are microseconds on the steady clock, zeroed at the first
// span; tids are small per-thread integers assigned in first-span order.
#pragma once

#include <cstdint>
#include <string>

namespace gpf::obs {

/// True when spans are being recorded.
bool trace_enabled();

/// Replaces the GPF_TRACE path for the rest of the process ("" disables).
/// Tests use this; campaign binaries just set the environment variable.
void set_trace_path_override(const std::string& path);

/// Writes buffered events to the trace path now (atomically; also runs at
/// exit). Safe to call when tracing is off or the buffer is empty.
void flush_trace();

/// RAII span: construction stamps the start, destruction emits the event.
/// Spans on one thread should nest (campaign > unit > batch), which is what
/// the trace viewer's flame layout assumes.
class TraceSpan {
 public:
  TraceSpan(const char* category, std::string name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a numeric arg shown in the viewer's detail pane.
  void arg(const char* key, std::uint64_t value);

 private:
  bool live_;
  const char* category_;
  std::string name_;
  std::uint64_t t0_us_ = 0;
  std::string args_;  // pre-rendered JSON fragment: "k":v,...
};

}  // namespace gpf::obs
