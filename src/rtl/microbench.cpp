#include "rtl/microbench.hpp"

#include "common/bitops.hpp"
#include "common/rng.hpp"
#include "isa/builder.hpp"

namespace gpf::rtl {

using isa::Cmp;
using isa::KernelBuilder;
using isa::SpecialReg;
using Reg = KernelBuilder::Reg;

std::string_view micro_op_name(MicroOp op) {
  switch (op) {
    case MicroOp::FADD: return "FADD";
    case MicroOp::FMUL: return "FMUL";
    case MicroOp::FFMA: return "FFMA";
    case MicroOp::IADD: return "IADD";
    case MicroOp::IMUL: return "IMUL";
    case MicroOp::IMAD: return "IMAD";
    case MicroOp::FSIN: return "FSIN";
    case MicroOp::FEXP: return "FEXP";
    case MicroOp::GLD: return "GLD";
    case MicroOp::GST: return "GST";
    case MicroOp::BRA: return "BRA";
    case MicroOp::ISET: return "ISET";
    case MicroOp::COUNT: break;
  }
  return "?";
}

bool micro_op_is_float(MicroOp op) {
  switch (op) {
    case MicroOp::FADD: case MicroOp::FMUL: case MicroOp::FFMA:
    case MicroOp::FSIN: case MicroOp::FEXP:
      return true;
    default:
      return false;
  }
}

bool micro_op_uses_fu(MicroOp op) {
  switch (op) {
    case MicroOp::GLD: case MicroOp::GST: case MicroOp::BRA: case MicroOp::ISET:
      return false;
    default:
      return true;
  }
}

std::string_view range_name(InputRange r) {
  switch (r) {
    case InputRange::Small: return "S";
    case InputRange::Medium: return "M";
    case InputRange::Large: return "L";
  }
  return "?";
}

namespace {

void range_bounds(InputRange r, double& lo, double& hi) {
  switch (r) {
    case InputRange::Small: lo = 6.8e-6; hi = 7.3e-6; break;
    case InputRange::Medium: lo = 1.8; hi = 59.4; break;
    case InputRange::Large: lo = 3.8e9; hi = 12.5e9; break;
  }
}

isa::Program build_program(MicroOp op) {
  KernelBuilder kb(std::string("micro_") + std::string(micro_op_name(op)));
  Reg gid = kb.reg(), tid = kb.reg(), cta = kb.reg(), ntid = kb.reg();
  kb.s2r(tid, SpecialReg::TID_X);
  kb.s2r(cta, SpecialReg::CTAID_X);
  kb.s2r(ntid, SpecialReg::NTID_X);
  kb.imad(gid, cta, ntid, tid);

  Reg a = kb.reg(), b = kb.reg(), c = kb.reg(), r = kb.reg();
  kb.ldg(a, gid, kInAddrA);
  kb.ldg(b, gid, kInAddrB);
  kb.ldg(c, gid, kInAddrC);

  switch (op) {
    case MicroOp::FADD: kb.fadd(r, a, b); break;
    case MicroOp::FMUL: kb.fmul(r, a, b); break;
    case MicroOp::FFMA: kb.ffma(r, a, b, c); break;
    case MicroOp::IADD: kb.iadd(r, a, b); break;
    case MicroOp::IMUL: kb.imul(r, a, b); break;
    case MicroOp::IMAD: kb.imad(r, a, b, c); break;
    case MicroOp::FSIN: kb.fsin(r, a); break;
    case MicroOp::FEXP: kb.fexp(r, a); break;
    case MicroOp::GLD:
      // Load followed by store (the paper's memory-movement benchmark).
      kb.mov(r, a);
      break;
    case MicroOp::GST:
      kb.mov(r, b);
      break;
    case MicroOp::BRA: {
      // A few set-register instructions guarded by a branch; a fault is
      // detected when the wrong side executes.
      auto p = kb.pred();
      kb.isetp(p, Cmp::LT, a, b);
      kb.if_(p, false, [&] { kb.movi(r, 0x11111111u); },
             [&] { kb.movi(r, 0x22222222u); });
      kb.iadd(r, r, c);
      break;
    }
    case MicroOp::ISET: {
      auto p = kb.pred();
      kb.isetp(p, Cmp::LT, a, b);
      kb.movi(r, 0);
      kb.on(p).movi(r, 1);
      kb.iadd(r, r, c);
      break;
    }
    case MicroOp::COUNT: break;
  }
  kb.stg(gid, kOutAddr, r);
  return kb.build();
}

}  // namespace

MicroBench make_micro_bench(MicroOp op, InputRange range, std::uint64_t value_seed) {
  MicroBench mb;
  mb.prog = build_program(op);
  mb.is_float = micro_op_is_float(op);
  mb.out_addr = kOutAddr;
  mb.input_a.resize(kMicroThreads);
  mb.input_b.resize(kMicroThreads);
  mb.input_c.resize(kMicroThreads);
  Rng rng(value_seed * 1315423911ULL + static_cast<std::uint64_t>(op) * 77 +
          static_cast<std::uint64_t>(range));

  double lo, hi;
  range_bounds(range, lo, hi);
  for (std::size_t t = 0; t < kMicroThreads; ++t) {
    switch (op) {
      case MicroOp::FSIN:
      case MicroOp::FEXP:
        // SFU operational constraint: [0, pi/2], no range reduction needed.
        mb.input_a[t] = f32_bits(static_cast<float>(rng.uniform(0.0, 1.5707)));
        mb.input_b[t] = 0;
        mb.input_c[t] = 0;
        break;
      case MicroOp::IADD: case MicroOp::IMUL: case MicroOp::IMAD:
      case MicroOp::GLD: case MicroOp::GST: case MicroOp::BRA: case MicroOp::ISET: {
        // Integer inputs drawn with magnitudes mirroring the range.
        const auto span = static_cast<std::uint64_t>(hi < 1.0 ? 128.0 : hi);
        mb.input_a[t] = static_cast<std::uint32_t>(rng.below(span) + 1);
        mb.input_b[t] = static_cast<std::uint32_t>(rng.below(span) + 1);
        mb.input_c[t] = static_cast<std::uint32_t>(rng.below(span) + 1);
        break;
      }
      default:
        mb.input_a[t] = f32_bits(static_cast<float>(rng.uniform(lo, hi)));
        mb.input_b[t] = f32_bits(static_cast<float>(rng.uniform(lo, hi)));
        mb.input_c[t] = f32_bits(static_cast<float>(rng.uniform(lo, hi)));
        break;
    }
  }
  return mb;
}

void setup_micro(arch::Gpu& gpu, const MicroBench& mb) {
  gpu.clear_memories();
  gpu.write_global(kInAddrA, mb.input_a);
  gpu.write_global(kInAddrB, mb.input_b);
  gpu.write_global(kInAddrC, mb.input_c);
  gpu.reserve_global(kOutAddr, kMicroThreads);
}

}  // namespace gpf::rtl
