#include "rtl/faults.hpp"

#include "common/rng.hpp"
#include "isa/opcode.hpp"

namespace gpf::rtl {

using PF = PipelineFault::Field;
using SF = SchedulerFault::Field;

bool FaultTiming::active(std::uint64_t cycle) const {
  switch (mode) {
    case Mode::Permanent:
      return true;
    case Mode::Intermittent: {
      // Deterministic per-cycle coin flip.
      SplitMix64 sm(cycle ^ (seed * 0x9E3779B97F4A7C15ull));
      return (static_cast<double>(sm.next() >> 11) * 0x1.0p-53) < duty;
    }
    case Mode::Transient:
      return cycle >= onset && cycle < onset + duration;
  }
  return true;
}

// ---------------------------------------------------------------------------
// PipelineFaultHook
// ---------------------------------------------------------------------------

std::uint64_t PipelineFaultHook::post_fetch_word(arch::Gpu& gpu, unsigned, unsigned,
                                                 unsigned, std::uint64_t word) {
  if (f_.field != PF::InstrWord || !timing_.active(gpu.cycle())) return word;
  const std::uint64_t m = std::uint64_t{1} << (f_.bit & 63);
  return f_.stuck_high ? (word | m) : (word & ~m);
}

std::uint32_t PipelineFaultHook::post_fetch_pc(arch::Gpu& gpu, unsigned, unsigned,
                                               unsigned, std::uint32_t pc) {
  if (f_.field != PF::PcLatch || !timing_.active(gpu.cycle())) return pc;
  return stuck32(pc) & 0xFFFFu;
}

int PipelineFaultHook::post_select(arch::Gpu& gpu, unsigned sm, unsigned ppb,
                                   int slot) {
  if (f_.field != PF::WarpSel || slot < 0 || !timing_.active(gpu.cycle()))
    return slot;
  const auto n = static_cast<int>(gpu.sm(sm).ppbs[ppb].warps.size());
  const int corrupted = static_cast<int>(stuck32(static_cast<std::uint32_t>(slot)));
  return corrupted < n ? corrupted : slot % n;
}

void PipelineFaultHook::pre_execute(arch::ExecCtx& ctx) {
  for (Saved& s : saved_) s.active = false;
  src_is_rd_ = false;
  if (!timing_.active(ctx.gpu().cycle())) return;

  if (f_.field == PF::ExecMask) {
    ctx.exec_mask = stuck32(ctx.exec_mask) & ctx.warp().active_mask();
    return;
  }
  if (f_.field != PF::OperandA && f_.field != PF::OperandB &&
      f_.field != PF::OperandC)
    return;

  // Which architectural register feeds this operand latch?
  const isa::Instruction& in = ctx.instr;
  const int srcs = isa::num_sources(in.op);
  std::uint8_t reg = isa::kRZ;
  if (f_.field == PF::OperandA && srcs >= 1) reg = in.rs1;
  if (f_.field == PF::OperandB && srcs >= 2 && !(in.use_imm && srcs == 2))
    reg = in.rs2;
  if (f_.field == PF::OperandC && srcs >= 3 && !in.use_imm) reg = in.rs3;
  if (reg == isa::kRZ || reg >= 64) return;

  corrupted_src_reg_ = reg;
  src_is_rd_ = isa::writes_register(in.op) && in.rd == reg;

  // The latch at `lane` serves the 4 warp beats: corrupt those threads'
  // operand values for the duration of the instruction (save/restore).
  unsigned i = 0;
  for (unsigned beat = 0; beat < 4; ++beat) {
    const unsigned lane = f_.lane + beat * kPipeLanes;
    if (!((ctx.exec_mask >> lane) & 1)) continue;
    const std::uint32_t v = ctx.read_reg(lane, reg);
    saved_[i] = Saved{true, lane, reg, v};
    ++i;
    ctx.write_reg(lane, reg, stuck32(v));
  }
}

void PipelineFaultHook::post_execute(arch::ExecCtx& ctx) {
  // Restore operand registers corrupted transiently (unless the destination
  // overwrote the same register — then the consumed-corrupted result stands).
  if (!src_is_rd_) {
    for (const Saved& s : saved_) {
      if (!s.active) continue;
      ctx.write_reg(s.lane, s.reg, s.value);
    }
  }
  for (Saved& s : saved_) s.active = false;

  if (f_.field == PF::Result && timing_.active(ctx.gpu().cycle())) {
    const isa::Instruction& in = ctx.instr;
    if (!isa::writes_register(in.op) || in.rd == isa::kRZ) return;
    for (unsigned beat = 0; beat < 4; ++beat) {
      const unsigned lane = f_.lane + beat * kPipeLanes;
      if (!((ctx.exec_mask >> lane) & 1)) continue;
      const std::uint32_t v = ctx.read_reg(lane, in.rd);
      ctx.write_reg(lane, in.rd, stuck32(v));
    }
  }
}

// ---------------------------------------------------------------------------
// SchedulerFaultHook
// ---------------------------------------------------------------------------

void SchedulerFaultHook::pre_cycle(arch::Gpu& gpu, unsigned sm, unsigned ppb) {
  if (!timing_.active(gpu.cycle())) return;
  arch::Ppb& p = gpu.sm(sm).ppbs[ppb];
  if (f_.slot >= p.warps.size()) return;
  arch::Warp& w = p.warps[f_.slot];
  if (!w.valid) return;

  switch (f_.field) {
    case SF::ActiveMask: {
      if (w.stack.empty()) return;
      const std::uint32_t m = 1u << f_.bit;
      std::uint32_t& mask = w.stack.back().mask;
      mask = f_.stuck_high ? (mask | m) : (mask & ~m);
      if (mask == 0 && w.stack.size() == 1) w.done = true;  // warp fully disabled
      return;
    }
    case SF::DoneBit:
      w.done = f_.stuck_high;
      return;
    case SF::BarrierBit:
      w.at_barrier = f_.stuck_high;
      return;
    case SF::StoredPc: {
      if (w.stack.empty()) return;
      const std::uint32_t m = 1u << (f_.bit & 15);
      std::uint32_t& pc = w.stack.back().pc;
      pc = f_.stuck_high ? (pc | m) : (pc & ~m);
      return;
    }
    case SF::SelSlot:
    case SF::GroupEnable:
    case SF::MaskOut:
    case SF::MaskWordLine:
      return;  // handled in post_select / pre_execute
  }
}

void SchedulerFaultHook::pre_execute(arch::ExecCtx& ctx) {
  // Shared scheduler output signals corrupt the dispatched mask of EVERY
  // issued warp. They gate functional-unit dispatch only: control-flow
  // instructions resolve inside the scheduler itself and keep their mask
  // (otherwise every such fault would trivially hang at EXIT instead of
  // producing the silent corruptions the paper observes).
  if (isa::unit_of(ctx.instr.op) == isa::UnitClass::CTRL) return;
  if (!timing_.active(ctx.gpu().cycle())) return;
  switch (f_.field) {
    case SF::GroupEnable: {
      const std::uint32_t group = 0xFFu << (8 * (f_.bit & 3));
      if (f_.stuck_high)
        ctx.exec_mask |= group;  // force-enables idle lanes (garbage threads)
      else
        ctx.exec_mask &= ~group;
      return;
    }
    case SF::MaskOut: {
      const std::uint32_t m = 1u << (f_.bit & 31);
      ctx.exec_mask = f_.stuck_high ? (ctx.exec_mask | m) : (ctx.exec_mask & ~m);
      return;
    }
    case SF::MaskWordLine:
      if (ctx.warp().slot == f_.slot)
        ctx.exec_mask = f_.stuck_high ? 0xFFFFFFFFu : 0u;
      return;
    default:
      return;
  }
}

int SchedulerFaultHook::post_select(arch::Gpu& gpu, unsigned sm, unsigned ppb,
                                    int slot) {
  if (f_.field != SF::SelSlot || slot < 0 || !timing_.active(gpu.cycle()))
    return slot;
  const std::uint32_t m = 1u << (f_.bit % 3);
  auto corrupted = static_cast<std::uint32_t>(slot);
  corrupted = f_.stuck_high ? (corrupted | m) : (corrupted & ~m);
  const auto n = static_cast<std::uint32_t>(gpu.sm(sm).ppbs[ppb].warps.size());
  return corrupted < n ? static_cast<int>(corrupted) : slot;
}

}  // namespace gpf::rtl
