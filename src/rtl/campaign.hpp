// RTL fault-injection campaigns (Figs. 4-9, Tables 2): inject stuck-at
// faults into functional units / SFUs / pipeline registers / scheduler state
// while a micro-benchmark or the t-MxM mini-app runs, and classify each
// injection as Masked / single-thread SDC / multi-thread SDC / DUE, keeping
// the relative-error syndrome of every corrupted output element.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "rtl/faults.hpp"
#include "rtl/microbench.hpp"
#include "store/checkpoint.hpp"
#include "store/records.hpp"
#include "workloads/tmxm.hpp"

namespace gpf::rtl {

enum class Site : std::uint8_t { FuLane, Sfu, Pipeline, Scheduler };
std::string_view site_name(Site s);

enum class Outcome : std::uint8_t { Masked, SdcSingle, SdcMultiple, Due };

struct FaultSpec {
  Site site = Site::FuLane;
  unsigned lane = 0;  ///< FU lane (0..31) or SFU index (0..1)
  sf::BusFault bus{};
  PipelineFault pipe{};
  SchedulerFault sched{};
  /// Temporal activation profile (Pipeline / Scheduler sites; FU bus faults
  /// are always permanent in this implementation).
  FaultTiming timing{};
};

/// Draw a uniformly random stuck-at fault from the site's bit population.
FaultSpec random_fault(Site site, bool float_op, Rng& rng);

struct InjectionResult {
  Outcome outcome = Outcome::Masked;
  unsigned corrupted = 0;                    ///< corrupted output elements
  double per_warp_corrupted = 0.0;           ///< mean corrupted per hit warp
  std::vector<double> rel_errors;            ///< per corrupted element
  std::vector<std::uint32_t> corrupted_idx;  ///< positions in the output
};

struct AvfSummary {
  std::size_t injections = 0, masked = 0, sdc_single = 0, sdc_multi = 0, due = 0;
  std::uint64_t corrupted_total = 0;  ///< corrupted elements over all SDCs
  double per_warp_sum = 0.0;          ///< sum of per-warp corruption means
  std::vector<double> rel_errors;

  void add(const InjectionResult& r);
  double avf_sdc() const;
  double avf_sdc_single() const;
  double avf_sdc_multi() const;
  double avf_due() const;
  /// Average corrupted output elements per SDC event.
  double avg_corrupted() const;
  /// Average corrupted parallel threads per warp (paper's metric).
  double avg_corrupted_per_warp() const;
};

/// A fault-injection target: anything that can run once and expose an output.
struct Target {
  std::function<void(arch::Gpu&)> setup;
  /// Runs every kernel; returns true when all completed without a trap.
  std::function<bool(arch::Gpu&, std::uint64_t max_cycles)> run;
  std::size_t out_addr = 0;
  std::size_t out_words = 0;
  bool is_float = true;
  bool use_soft_exec = false;   ///< run on the bit-accurate backend
  unsigned words_per_warp = 0;  ///< >0: output maps to warps (per-warp stats)
};

Target target_from_micro(const MicroBench& mb, bool use_soft_exec);
Target target_from_tmxm(workloads::TileType type, std::uint64_t value_seed);

/// Injects faults into a prepared target (golden computed on construction).
class Injector {
 public:
  explicit Injector(Target target);

  InjectionResult inject(const FaultSpec& fault);
  const std::vector<std::uint32_t>& golden() const { return golden_; }

 private:
  Target target_;
  arch::Gpu gpu_;
  std::vector<std::uint32_t> golden_;
  std::uint64_t budget_ = 0;
};

/// Fig. 4 campaign: one (instruction, range, site) cell. Injections are split
/// over the paper's 4 random value draws per range.
AvfSummary run_micro_campaign(MicroOp op, InputRange range, Site site,
                              std::size_t injections, std::uint64_t seed);

/// Figs. 7-9 / Table 2 campaign on the t-MxM mini-app. Per-injection details
/// (for spatial patterns and per-element syndromes) optionally collected.
AvfSummary run_tmxm_campaign(workloads::TileType type, Site site,
                             std::size_t injections, std::uint64_t seed,
                             std::vector<InjectionResult>* details = nullptr);

/// Store header for a t-MxM campaign (target = tile type, param0 = site).
store::CampaignMeta tmxm_campaign_meta(workloads::TileType type, Site site,
                                       std::size_t injections, std::uint64_t seed,
                                       std::uint32_t shard_index = 0,
                                       std::uint32_t shard_count = 1);

/// Durable variant of run_tmxm_campaign: injection i's fault is drawn from an
/// independent RNG stream forked on i, so every shard / resumed run computes
/// the identical fault for a given id regardless of which ids already
/// retired. Done ids are restored from the store; fresh ones are recorded as
/// they retire. The summary covers this shard's retired injections.
AvfSummary run_tmxm_campaign_store(store::CampaignCheckpoint& ckpt,
                                   std::vector<InjectionResult>* details = nullptr);

/// Conversions between the native injection result and the stored record
/// (shared by the checkpointed driver and the fleet worker).
store::RtlRecord to_rtl_record(const InjectionResult& r);
InjectionResult from_rtl_record(const store::RtlRecord& rec);

/// Work-unit adapter for lease-based dispatch: evaluates arbitrary
/// injection ids of one t-MxM campaign. Injection i's fault comes from an
/// RNG stream forked on i and its input tile from draw i % 4, so any
/// process evaluating id i produces the identical record. Injectors (one
/// golden run each) are built lazily per draw and reused across run()
/// calls, so a worker pays at most 4 golden runs per campaign.
class TmxmUnitRunner {
 public:
  using Emit = std::function<void(std::uint64_t, const InjectionResult&)>;

  explicit TmxmUnitRunner(const store::CampaignMeta& meta);

  /// Evaluates `ids` in order; emit(id, result) per retired injection.
  /// `stop`, when set, is polled before each injection.
  void run(std::span<const std::uint64_t> ids, const Emit& emit,
           const std::function<bool()>& stop = {});

 private:
  Injector& injector_for(std::uint64_t draw);

  store::CampaignMeta meta_;
  Rng base_;
  std::array<std::unique_ptr<Injector>, 4> injectors_;
};

}  // namespace gpf::rtl
