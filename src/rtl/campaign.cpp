#include "rtl/campaign.hpp"

#include <array>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "common/bitops.hpp"
#include "store/records.hpp"
#include "workloads/kernels.hpp"

namespace gpf::rtl {

std::string_view site_name(Site s) {
  switch (s) {
    case Site::FuLane: return "FU";
    case Site::Sfu: return "SFU";
    case Site::Pipeline: return "Pipeline";
    case Site::Scheduler: return "Scheduler";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Fault populations
// ---------------------------------------------------------------------------

namespace {

const sf::Bus kFloatBuses[] = {
    sf::Bus::SrcA, sf::Bus::SrcB, sf::Bus::SrcC, sf::Bus::Result,
    sf::Bus::AddExpDiff, sf::Bus::AddAlignedA, sf::Bus::AddAlignedB,
    sf::Bus::AddRawSum, sf::Bus::AddNormShift, sf::Bus::MulExpSum,
    sf::Bus::MulProduct, sf::Bus::FmaWideSum};
const sf::Bus kIntBuses[] = {sf::Bus::SrcA, sf::Bus::SrcB, sf::Bus::SrcC,
                             sf::Bus::Result, sf::Bus::IntSum, sf::Bus::IntProduct};
const sf::Bus kSfuBuses[] = {sf::Bus::SrcA, sf::Bus::Result, sf::Bus::SfuRange,
                             sf::Bus::SfuPolyT1, sf::Bus::SfuPolyT2,
                             sf::Bus::SfuOpSelect};

template <std::size_t N>
sf::BusFault random_bus_fault(const sf::Bus (&buses)[N], Rng& rng) {
  // Uniform over the bit population (buses weighted by width).
  unsigned total = 0;
  for (sf::Bus b : buses) total += sf::bus_width(b);
  auto pick = static_cast<unsigned>(rng.below(total));
  for (sf::Bus b : buses) {
    const unsigned w = sf::bus_width(b);
    if (pick < w)
      return sf::BusFault{b, static_cast<std::uint8_t>(pick), rng.chance(0.5)};
    pick -= w;
  }
  return sf::BusFault{buses[0], 0, true};
}

}  // namespace

FaultSpec random_fault(Site site, bool float_op, Rng& rng) {
  FaultSpec f;
  f.site = site;
  switch (site) {
    case Site::FuLane:
      f.lane = static_cast<unsigned>(rng.below(arch::kWarpSize));
      f.bus = float_op ? random_bus_fault(kFloatBuses, rng)
                       : random_bus_fault(kIntBuses, rng);
      break;
    case Site::Sfu:
      f.lane = static_cast<unsigned>(rng.below(2));
      f.bus = random_bus_fault(kSfuBuses, rng);
      break;
    case Site::Pipeline: {
      using PF = PipelineFault::Field;
      // Bit population: 8 latches x 32b x (3 operands + result) = 1024 data
      // bits; 64 + 32 + 16 + 3 = 115 control bits.
      struct Entry {
        PF field;
        unsigned width;
        bool per_lane;
      };
      static const Entry entries[] = {
          {PF::OperandA, 32, true}, {PF::OperandB, 32, true},
          {PF::OperandC, 32, true}, {PF::Result, 32, true},
          {PF::InstrWord, 64, false}, {PF::ExecMask, 32, false},
          {PF::PcLatch, 16, false}, {PF::WarpSel, 3, false}};
      unsigned total = 0;
      for (const Entry& e : entries) total += e.width * (e.per_lane ? kPipeLanes : 1);
      auto pick = static_cast<unsigned>(rng.below(total));
      for (const Entry& e : entries) {
        const unsigned span = e.width * (e.per_lane ? kPipeLanes : 1);
        if (pick < span) {
          f.pipe.field = e.field;
          f.pipe.lane = e.per_lane ? pick / e.width : 0;
          f.pipe.bit = pick % e.width;
          f.pipe.stuck_high = rng.chance(0.5);
          break;
        }
        pick -= span;
      }
      break;
    }
    case Site::Scheduler: {
      using SF = SchedulerFault::Field;
      struct Entry {
        SF field;
        unsigned width;
      };
      static const Entry entries[] = {{SF::ActiveMask, 32},
                                      {SF::DoneBit, 1},
                                      {SF::BarrierBit, 1},
                                      {SF::StoredPc, 16},
                                      {SF::SelSlot, 3},
                                      {SF::GroupEnable, 4},
                                      {SF::MaskOut, 32},
                                      {SF::MaskWordLine, 1}};
      auto shared = [](SF field) {
        return field == SF::SelSlot || field == SF::GroupEnable ||
               field == SF::MaskOut;
      };
      // Per-warp fields replicate over 8 slots; output signals are shared.
      unsigned total = 0;
      for (const Entry& e : entries) total += e.width * (shared(e.field) ? 1 : 8);
      auto pick = static_cast<unsigned>(rng.below(total));
      for (const Entry& e : entries) {
        const unsigned span = e.width * (shared(e.field) ? 1 : 8);
        if (pick < span) {
          f.sched.field = e.field;
          f.sched.slot = shared(e.field) ? 0 : pick / e.width;
          f.sched.bit = pick % e.width;
          f.sched.stuck_high = rng.chance(0.5);
          break;
        }
        pick -= span;
      }
      break;
    }
  }
  return f;
}

// ---------------------------------------------------------------------------
// AvfSummary
// ---------------------------------------------------------------------------

void AvfSummary::add(const InjectionResult& r) {
  ++injections;
  switch (r.outcome) {
    case Outcome::Masked: ++masked; break;
    case Outcome::SdcSingle: ++sdc_single; break;
    case Outcome::SdcMultiple: ++sdc_multi; break;
    case Outcome::Due: ++due; break;
  }
  if (r.outcome == Outcome::SdcSingle || r.outcome == Outcome::SdcMultiple) {
    corrupted_total += r.corrupted;
    per_warp_sum += r.per_warp_corrupted;
  }
  rel_errors.insert(rel_errors.end(), r.rel_errors.begin(), r.rel_errors.end());
}

double AvfSummary::avf_sdc() const {
  return injections ? static_cast<double>(sdc_single + sdc_multi) /
                          static_cast<double>(injections)
                    : 0.0;
}
double AvfSummary::avf_sdc_single() const {
  return injections ? static_cast<double>(sdc_single) / static_cast<double>(injections)
                    : 0.0;
}
double AvfSummary::avf_sdc_multi() const {
  return injections ? static_cast<double>(sdc_multi) / static_cast<double>(injections)
                    : 0.0;
}
double AvfSummary::avf_due() const {
  return injections ? static_cast<double>(due) / static_cast<double>(injections) : 0.0;
}
double AvfSummary::avg_corrupted() const {
  const std::size_t sdcs = sdc_single + sdc_multi;
  return sdcs ? static_cast<double>(corrupted_total) / static_cast<double>(sdcs) : 0.0;
}
double AvfSummary::avg_corrupted_per_warp() const {
  const std::size_t sdcs = sdc_single + sdc_multi;
  return sdcs ? per_warp_sum / static_cast<double>(sdcs) : 0.0;
}

// ---------------------------------------------------------------------------
// Targets
// ---------------------------------------------------------------------------

Target target_from_micro(const MicroBench& mb, bool use_soft_exec) {
  Target t;
  t.setup = [mb](arch::Gpu& gpu) { setup_micro(gpu, mb); };
  t.run = [prog = mb.prog](arch::Gpu& gpu, std::uint64_t mc) {
    return gpu.launch(prog, {1, 1, 1}, {64, 1, 1}, mc).ok;
  };
  t.out_addr = mb.out_addr;
  t.out_words = mb.out_words;
  t.is_float = mb.is_float;
  t.use_soft_exec = use_soft_exec;
  t.words_per_warp = 32;  // out[i] written by thread i; warp = i / 32
  return t;
}

Target target_from_tmxm(workloads::TileType type, std::uint64_t value_seed) {
  constexpr std::uint32_t kN = 16, kTile = 8;
  constexpr std::uint32_t kA = 0, kB = 1024, kC = 2048;
  Target t;
  t.setup = [type, value_seed](arch::Gpu& gpu) {
    gpu.clear_memories();
    gpu.write_global_f(kA, workloads::tmxm_input(type, value_seed, kN));
    gpu.write_global_f(kB, workloads::tmxm_input(type, value_seed + 7, kN));
    gpu.reserve_global(kC, kN * kN);
  };
  t.run = [prog = workloads::kernels::tiled_matmul(kA, kB, kC, kN, kTile)](
              arch::Gpu& gpu, std::uint64_t mc) {
    return gpu.launch(prog, {kN / kTile, kN / kTile, 1}, {kTile, kTile, 1}, mc).ok;
  };
  t.out_addr = kC;
  t.out_words = kN * kN;
  t.is_float = true;
  return t;
}

// ---------------------------------------------------------------------------
// Injector
// ---------------------------------------------------------------------------

Injector::Injector(Target target) : target_(std::move(target)) {
  // Golden run (fault-free, on the same execution backend as the campaign).
  arch::SoftExec soft;
  target_.setup(gpu_);
  gpu_.set_exec(target_.use_soft_exec ? &soft : nullptr);
  if (!target_.run(gpu_, 0)) throw std::runtime_error("golden RTL run failed");
  gpu_.set_exec(nullptr);
  golden_.assign(gpu_.global().begin() + static_cast<std::ptrdiff_t>(target_.out_addr),
                 gpu_.global().begin() +
                     static_cast<std::ptrdiff_t>(target_.out_addr + target_.out_words));
  // A faulty run may legitimately take longer (divergence changes); hang
  // detection uses a padded multiple of a fixed per-launch allowance.
  budget_ = 400'000;
}

InjectionResult Injector::inject(const FaultSpec& fault) {
  InjectionResult res;

  arch::SoftExec soft;
  sf::BusFaultSet bus_set(fault.bus);
  PipelineFaultHook pipe_hook(fault.pipe, fault.timing);
  SchedulerFaultHook sched_hook(fault.sched, fault.timing);

  arch::MachineHooks* hooks = nullptr;
  arch::ExecUnit* exec = nullptr;
  switch (fault.site) {
    case Site::FuLane:
      soft.set_lane_fault(fault.lane, &bus_set);
      exec = &soft;
      break;
    case Site::Sfu:
      soft.set_sfu_fault(fault.lane, &bus_set);
      exec = &soft;
      break;
    case Site::Pipeline:
      hooks = &pipe_hook;
      if (target_.use_soft_exec) exec = &soft;
      break;
    case Site::Scheduler:
      hooks = &sched_hook;
      if (target_.use_soft_exec) exec = &soft;
      break;
  }

  target_.setup(gpu_);
  gpu_.set_hooks(hooks);
  gpu_.set_exec(exec);
  const bool ok = target_.run(gpu_, budget_);
  gpu_.set_hooks(nullptr);
  gpu_.set_exec(nullptr);

  if (!ok) {
    res.outcome = Outcome::Due;
    return res;
  }

  for (std::size_t i = 0; i < target_.out_words; ++i) {
    const std::uint32_t g = golden_[i];
    const std::uint32_t b = gpu_.global()[target_.out_addr + i];
    if (g == b) continue;
    ++res.corrupted;
    res.corrupted_idx.push_back(static_cast<std::uint32_t>(i));
    double rel;
    if (target_.is_float) {
      const float fg = bits_f32(g), fb = bits_f32(b);
      if (!std::isfinite(fg) || !std::isfinite(fb))
        rel = 1e30;  // lands in the >=1e2 overflow bin
      else if (fg == 0.0f)
        rel = std::fabs(static_cast<double>(fb));
      else
        rel = std::fabs((static_cast<double>(fb) - fg) / fg);
    } else {
      const auto ig = static_cast<double>(static_cast<std::int32_t>(g));
      const auto ib = static_cast<double>(static_cast<std::int32_t>(b));
      rel = ig == 0.0 ? std::fabs(ib) : std::fabs((ib - ig) / ig);
    }
    res.rel_errors.push_back(rel);
  }
  if (res.corrupted == 0) {
    res.outcome = Outcome::Masked;
  } else {
    res.outcome = res.corrupted == 1 ? Outcome::SdcSingle : Outcome::SdcMultiple;
    if (target_.words_per_warp > 0) {
      // Mean corrupted elements among warps with at least one corruption.
      std::vector<unsigned> per_warp;
      for (std::uint32_t idx : res.corrupted_idx) {
        const std::size_t w = idx / target_.words_per_warp;
        if (per_warp.size() <= w) per_warp.resize(w + 1, 0);
        ++per_warp[w];
      }
      unsigned warps_hit = 0, total = 0;
      for (unsigned c : per_warp)
        if (c) {
          ++warps_hit;
          total += c;
        }
      res.per_warp_corrupted =
          warps_hit ? static_cast<double>(total) / warps_hit : 0.0;
    } else {
      res.per_warp_corrupted = res.corrupted;
    }
  }
  return res;
}

// ---------------------------------------------------------------------------
// Campaigns
// ---------------------------------------------------------------------------

AvfSummary run_micro_campaign(MicroOp op, InputRange range, Site site,
                              std::size_t injections, std::uint64_t seed) {
  AvfSummary summary;
  const bool float_op = micro_op_is_float(op);
  Rng rng(seed ^ (static_cast<std::uint64_t>(op) << 8) ^
          (static_cast<std::uint64_t>(range) << 16) ^
          (static_cast<std::uint64_t>(site) << 24));

  // The paper averages 4 random value draws per input range.
  for (std::uint64_t draw = 0; draw < 4; ++draw) {
    const MicroBench mb = make_micro_bench(op, range, seed * 4 + draw);
    const bool soft = site == Site::FuLane || site == Site::Sfu;
    Injector injector(target_from_micro(mb, soft));
    const std::size_t n = injections / 4 + (draw < injections % 4 ? 1 : 0);
    for (std::size_t i = 0; i < n; ++i)
      summary.add(injector.inject(random_fault(site, float_op, rng)));
  }
  return summary;
}

store::CampaignMeta tmxm_campaign_meta(workloads::TileType type, Site site,
                                       std::size_t injections, std::uint64_t seed,
                                       std::uint32_t shard_index,
                                       std::uint32_t shard_count) {
  store::CampaignMeta meta;
  meta.kind = store::CampaignKind::Rtl;
  meta.target = static_cast<std::uint8_t>(type);
  meta.seed = seed;
  meta.total = injections;
  meta.shard_index = shard_index;
  meta.shard_count = shard_count;
  meta.param0 = static_cast<std::uint64_t>(site);
  return meta;
}

store::RtlRecord to_rtl_record(const InjectionResult& r) {
  store::RtlRecord rec;
  rec.outcome = static_cast<store::RtlOutcome>(r.outcome);
  rec.corrupted = r.corrupted;
  rec.per_warp_corrupted = r.per_warp_corrupted;
  rec.rel_errors = r.rel_errors;
  rec.corrupted_idx = r.corrupted_idx;
  return rec;
}

InjectionResult from_rtl_record(const store::RtlRecord& rec) {
  InjectionResult r;
  r.outcome = static_cast<Outcome>(rec.outcome);
  r.corrupted = rec.corrupted;
  r.per_warp_corrupted = rec.per_warp_corrupted;
  r.rel_errors = rec.rel_errors;
  r.corrupted_idx = rec.corrupted_idx;
  return r;
}

TmxmUnitRunner::TmxmUnitRunner(const store::CampaignMeta& meta)
    : meta_(meta),
      base_(meta.seed ^
            (static_cast<std::uint64_t>(
                 static_cast<workloads::TileType>(meta.target))
             << 8) ^
            (static_cast<std::uint64_t>(static_cast<Site>(meta.param0))
             << 16)) {
  if (meta.kind != store::CampaignKind::Rtl)
    throw std::runtime_error("tmxm campaign: meta is not an rtl campaign");
}

Injector& TmxmUnitRunner::injector_for(std::uint64_t draw) {
  // Injections keep the legacy 4-value-draw split: id i belongs to draw
  // i % 4, each draw with its own input tile. Injectors are built lazily so
  // a short work unit pays one golden run, not four.
  if (!injectors_[draw])
    injectors_[draw] = std::make_unique<Injector>(target_from_tmxm(
        static_cast<workloads::TileType>(meta_.target),
        meta_.seed * 16 + draw));
  return *injectors_[draw];
}

void TmxmUnitRunner::run(std::span<const std::uint64_t> ids, const Emit& emit,
                         const std::function<bool()>& stop) {
  const auto site = static_cast<Site>(meta_.param0);
  for (const std::uint64_t i : ids) {
    if (stop && stop()) return;
    Rng rng = base_.fork(i);
    emit(i, injector_for(i % 4).inject(random_fault(site, true, rng)));
  }
}

AvfSummary run_tmxm_campaign_store(store::CampaignCheckpoint& ckpt,
                                   std::vector<InjectionResult>* details) {
  const store::CampaignMeta& meta = ckpt.meta();
  if (meta.kind != store::CampaignKind::Rtl)
    throw std::runtime_error("tmxm campaign: store is not an rtl store");
  TmxmUnitRunner runner(meta);

  // Retired and fresh results interleave in id order: evaluate pending ids
  // one at a time so the summary (and optional details) stay ordered.
  AvfSummary summary;
  for (std::uint64_t i = 0; i < meta.total; ++i) {
    if (!meta.owns(i)) continue;
    InjectionResult r;
    if (const auto it = ckpt.done().find(i); it != ckpt.done().end()) {
      r = from_rtl_record(store::decode_rtl(it->second));
    } else {
      if (ckpt.should_stop()) break;
      const std::uint64_t id[] = {i};
      runner.run(id, [&](std::uint64_t, const InjectionResult& res) { r = res; });
      ckpt.record(i, store::encode(to_rtl_record(r)));
    }
    summary.add(r);
    if (details) details->push_back(std::move(r));
  }
  ckpt.sync();  // campaign boundary: all recorded results are now durable
  return summary;
}

AvfSummary run_tmxm_campaign(workloads::TileType type, Site site,
                             std::size_t injections, std::uint64_t seed,
                             std::vector<InjectionResult>* details) {
  AvfSummary summary;
  Rng rng(seed ^ (static_cast<std::uint64_t>(type) << 8) ^
          (static_cast<std::uint64_t>(site) << 16));
  for (std::uint64_t draw = 0; draw < 4; ++draw) {
    Injector injector(target_from_tmxm(type, seed * 16 + draw));
    const std::size_t n = injections / 4 + (draw < injections % 4 ? 1 : 0);
    for (std::size_t i = 0; i < n; ++i) {
      InjectionResult r = injector.inject(random_fault(site, true, rng));
      summary.add(r);
      if (details) details->push_back(std::move(r));
    }
  }
  return summary;
}

}  // namespace gpf::rtl
