// RTL-level fault descriptors and the MachineHooks overlays that realize
// them on the functional GPU model:
//  - functional-unit faults ride on the softfloat bus overlay (SoftExec);
//  - pipeline-register faults model an 8-lane-wide latch bundle (each latch
//    serves 4 warp beats: threads l, l+8, l+16, l+24) with ~84% of bits
//    holding operands/results and the rest control (instruction word,
//    active-mask, PC, warp-select) — the paper's observed split;
//  - scheduler faults are persistent stuck-at bits in the warp state table
//    (active masks, done/barrier bits, stored PCs) and the select lines.
#pragma once

#include <cstdint>

#include "arch/machine.hpp"
#include "softfloat/buses.hpp"

namespace gpf::rtl {

inline constexpr unsigned kPipeLanes = 8;  ///< FU width: one latch per 4 beats

/// Fault activation in time. The paper's methodology "can be adapted to
/// other fault models (delay, intermittent, or transient faults)" — this is
/// that adaptation: the same fault descriptors gated by a temporal profile.
struct FaultTiming {
  enum class Mode : std::uint8_t {
    Permanent,     ///< active every cycle (the paper's model)
    Intermittent,  ///< active on a deterministic fraction of cycles
    Transient,     ///< active only within [onset, onset + duration)
  };
  Mode mode = Mode::Permanent;
  double duty = 0.1;                ///< Intermittent: fraction of active cycles
  std::uint64_t onset = 0;          ///< Transient window start (cycles)
  std::uint64_t duration = 1;       ///< Transient window length
  std::uint64_t seed = 0x1234;      ///< Intermittent sampling stream

  bool active(std::uint64_t cycle) const;
};

struct PipelineFault {
  enum class Field : std::uint8_t {
    OperandA, OperandB, OperandC,  ///< per-latch operand bits (data portion)
    Result,                        ///< per-latch result bits (data portion)
    InstrWord,                     ///< latched instruction word (control)
    ExecMask,                      ///< latched active mask (control)
    PcLatch,                       ///< latched PC (control)
    WarpSel,                       ///< warp-select lines (control)
  };
  Field field = Field::OperandA;
  unsigned lane = 0;  ///< 0..7, for per-latch fields
  unsigned bit = 0;
  bool stuck_high = false;

  bool is_control() const {
    return field == Field::InstrWord || field == Field::ExecMask ||
           field == Field::PcLatch || field == Field::WarpSel;
  }
};

struct SchedulerFault {
  enum class Field : std::uint8_t {
    ActiveMask,   ///< per-warp state bits enabling/disabling threads
    DoneBit,
    BarrierBit,
    StoredPc,     ///< per-warp PC state (the paper's "memory addresses")
    SelSlot,      ///< warp-select output lines (shared)
    GroupEnable,  ///< shared 8-thread dispatch-group enables (4 lines) —
                  ///< the signals whose corruption hits many threads of
                  ///< every issued warp (paper: ~28 threads/warp)
    MaskOut,      ///< shared mask-output bus towards dispatch (32 lines)
    MaskWordLine, ///< per-warp mask-register word line: stuck-low reads the
                  ///< mask as all-zero (whole warp silently disabled),
                  ///< stuck-high as all-ones (inactive threads enabled) —
                  ///< the whole-warp corruptions behind the paper's ~28
                  ///< corrupted threads per warp
  };
  Field field = Field::ActiveMask;
  unsigned slot = 0;  ///< warp slot, for per-warp fields
  unsigned bit = 0;
  bool stuck_high = false;
};

/// Hook applying one pipeline-register stuck-at during every issue.
class PipelineFaultHook final : public arch::MachineHooks {
 public:
  explicit PipelineFaultHook(PipelineFault f, FaultTiming timing = {})
      : f_(f), timing_(timing) {}

  std::uint64_t post_fetch_word(arch::Gpu&, unsigned, unsigned, unsigned,
                                std::uint64_t word) override;
  std::uint32_t post_fetch_pc(arch::Gpu&, unsigned, unsigned, unsigned,
                              std::uint32_t pc) override;
  int post_select(arch::Gpu&, unsigned, unsigned, int slot) override;
  void pre_execute(arch::ExecCtx& ctx) override;
  void post_execute(arch::ExecCtx& ctx) override;

 private:
  std::uint32_t stuck32(std::uint32_t v) const {
    const std::uint32_t m = 1u << f_.bit;
    return f_.stuck_high ? (v | m) : (v & ~m);
  }

  PipelineFault f_;
  FaultTiming timing_;
  // Save/restore for transient operand-latch corruption.
  struct Saved {
    bool active = false;
    unsigned lane = 0;
    std::uint8_t reg = 0;
    std::uint32_t value = 0;
  };
  Saved saved_[4];
  std::uint8_t corrupted_src_reg_ = 0;
  bool src_is_rd_ = false;
};

/// Hook applying one persistent scheduler-state stuck-at every cycle.
class SchedulerFaultHook final : public arch::MachineHooks {
 public:
  explicit SchedulerFaultHook(SchedulerFault f, FaultTiming timing = {})
      : f_(f), timing_(timing) {}

  void pre_cycle(arch::Gpu& gpu, unsigned sm, unsigned ppb) override;
  int post_select(arch::Gpu&, unsigned, unsigned, int slot) override;
  void pre_execute(arch::ExecCtx& ctx) override;

 private:
  SchedulerFault f_;
  FaultTiming timing_;
};

}  // namespace gpf::rtl
