// RTL-characterization micro-benchmarks (paper §"Micro-benchmarks and
// mini-app"): 64 threads (2 warps) executing one target instruction, with
// the paper's Small / Medium / Large input ranges and SFU-constrained inputs.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "arch/machine.hpp"
#include "isa/program.hpp"

namespace gpf::rtl {

/// The 12 characterized instructions (8 arithmetic + memory + control flow).
enum class MicroOp : std::uint8_t {
  FADD, FMUL, FFMA,
  IADD, IMUL, IMAD,
  FSIN, FEXP,
  GLD, GST,   // memory movements
  BRA, ISET,  // control flow
  COUNT
};
std::string_view micro_op_name(MicroOp op);
bool micro_op_is_float(MicroOp op);
bool micro_op_uses_fu(MicroOp op);  ///< false for GLD/GST/BRA/ISET (FUs idle)

/// Paper input ranges: S = [6.8e-6, 7.3e-6], M = [1.8, 59.4],
/// L = [3.8e9, 12.5e9]; SFU inputs constrained to [0, pi/2].
enum class InputRange : std::uint8_t { Small, Medium, Large };
std::string_view range_name(InputRange r);

/// One micro-benchmark instance: program + inputs + launch geometry.
struct MicroBench {
  isa::Program prog;
  bool is_float = true;  ///< output interpretation for syndrome analysis
  std::vector<std::uint32_t> input_a;  ///< 64 per-thread operand words
  std::vector<std::uint32_t> input_b;
  std::vector<std::uint32_t> input_c;
  std::size_t out_addr = 0;
  std::size_t out_words = 64;
};

inline constexpr std::size_t kMicroThreads = 64;
inline constexpr std::size_t kInAddrA = 0, kInAddrB = 64, kInAddrC = 128,
                             kOutAddr = 256;

/// Build the micro-benchmark for an instruction, an input range, and one of
/// the 4 random value draws per range the paper averages over.
MicroBench make_micro_bench(MicroOp op, InputRange range, std::uint64_t value_seed);

/// Write inputs and return the fault-free output.
void setup_micro(arch::Gpu& gpu, const MicroBench& mb);

}  // namespace gpf::rtl
