// Royston (1995), "Remark AS R94", Applied Statistics 44(4). The polynomial
// coefficients below are the published ones; this is the same algorithm used
// by R's shapiro.test.
#include "stats/shapiro.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace gpf::stats {
namespace {

// Standard normal quantile (Acklam's rational approximation, |err| < 1.2e-9).
double norm_ppf(double p) {
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  if (p <= 0.0) return -1e308;
  if (p >= 1.0) return 1e308;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

// Standard normal upper-tail probability.
double norm_sf(double z) { return 0.5 * std::erfc(z / std::sqrt(2.0)); }

double poly(const double* cc, int n, double x) {
  double r = cc[0];
  double p = 1.0;
  for (int i = 1; i < n; ++i) {
    p *= x;
    r += cc[i] * p;
  }
  return r;
}

}  // namespace

ShapiroWilkResult shapiro_wilk(std::span<const double> xs) {
  ShapiroWilkResult out;
  const int n = static_cast<int>(xs.size());
  if (n < 3 || n > 5000) return out;

  std::vector<double> x(xs.begin(), xs.end());
  std::sort(x.begin(), x.end());
  if (x.back() - x.front() <= 0.0) return out;  // degenerate

  // Expected normal order statistics m_i and weights a_i (Royston).
  const int n2 = n / 2;
  std::vector<double> m(static_cast<std::size_t>(n));
  double ssumm2 = 0.0;
  for (int i = 0; i < n; ++i) {
    m[static_cast<std::size_t>(i)] =
        norm_ppf((static_cast<double>(i) + 1.0 - 0.375) / (static_cast<double>(n) + 0.25));
    ssumm2 += m[static_cast<std::size_t>(i)] * m[static_cast<std::size_t>(i)];
  }
  const double rsn = 1.0 / std::sqrt(static_cast<double>(n));

  std::vector<double> a(static_cast<std::size_t>(n));
  if (n == 3) {
    a[0] = -std::sqrt(0.5);
    a[1] = 0.0;
    a[2] = std::sqrt(0.5);
  } else {
    static const double c1[] = {0.0, 0.221157, -0.147981, -2.071190, 4.434685, -2.706056};
    static const double c2[] = {0.0, 0.042981, -0.293762, -1.752461, 5.682633, -3.582633};
    const double an25 = std::sqrt(ssumm2);
    double a_n = m[static_cast<std::size_t>(n - 1)] / an25 + poly(c1, 6, rsn);
    double a_n1 = 0.0;
    int i1;
    double phi;
    if (n > 5) {
      a_n1 = m[static_cast<std::size_t>(n - 2)] / an25 + poly(c2, 6, rsn);
      i1 = 3;
      phi = (ssumm2 - 2.0 * m[static_cast<std::size_t>(n - 1)] * m[static_cast<std::size_t>(n - 1)] -
             2.0 * m[static_cast<std::size_t>(n - 2)] * m[static_cast<std::size_t>(n - 2)]) /
            (1.0 - 2.0 * a_n * a_n - 2.0 * a_n1 * a_n1);
    } else {
      i1 = 2;
      phi = (ssumm2 - 2.0 * m[static_cast<std::size_t>(n - 1)] * m[static_cast<std::size_t>(n - 1)]) /
            (1.0 - 2.0 * a_n * a_n);
    }
    if (phi <= 0.0) return out;
    const double sqphi = std::sqrt(phi);
    // Upper half: two largest weights from the polynomial corrections, the
    // rest proportional to the expected order statistics. Lower half mirrors
    // with opposite sign; the middle weight is zero for odd n.
    a[static_cast<std::size_t>(n - 1)] = a_n;
    if (n > 5) a[static_cast<std::size_t>(n - 2)] = a_n1;
    for (int i = n2; i < n - (i1 - 1); ++i)
      a[static_cast<std::size_t>(i)] = m[static_cast<std::size_t>(i)] / sqphi;
    if (n % 2 == 1) a[static_cast<std::size_t>(n2)] = 0.0;
    for (int i = 0; i < n2; ++i)
      a[static_cast<std::size_t>(i)] = -a[static_cast<std::size_t>(n - 1 - i)];
  }

  // W statistic.
  const double xbar = [&] {
    double s = 0.0;
    for (double v : x) s += v;
    return s / static_cast<double>(n);
  }();
  double num = 0.0, den = 0.0;
  for (int i = 0; i < n; ++i) {
    num += a[static_cast<std::size_t>(i)] * x[static_cast<std::size_t>(i)];
    den += (x[static_cast<std::size_t>(i)] - xbar) * (x[static_cast<std::size_t>(i)] - xbar);
  }
  if (den <= 0.0) return out;
  double w = num * num / den;
  w = std::min(w, 1.0);
  out.w = w;

  // P-value (Royston 1995 normalizing transforms).
  if (n == 3) {
    const double pi6 = 1.90985931710274;
    const double stqr = 1.04719755119660;
    double pw = pi6 * (std::asin(std::sqrt(w)) - stqr);
    out.p_value = std::clamp(pw, 0.0, 1.0);
    out.valid = true;
    return out;
  }
  const double y = std::log(1.0 - w);
  const double xx = std::log(static_cast<double>(n));
  double mu, sigma;
  if (n <= 11) {
    static const double c3[] = {0.5440, -0.39978, 0.025054, -0.0006714};
    static const double c4[] = {1.3822, -0.77857, 0.062767, -0.0020322};
    const double gamma = poly((const double[]){-2.273, 0.459}, 2, static_cast<double>(n));
    if (y >= gamma) {
      out.p_value = 1e-99;
      out.valid = true;
      return out;
    }
    const double y2 = -std::log(gamma - y);
    mu = poly(c3, 4, static_cast<double>(n));
    sigma = std::exp(poly(c4, 4, static_cast<double>(n)));
    out.p_value = norm_sf((y2 - mu) / sigma);
  } else {
    static const double c5[] = {-1.5861, -0.31082, -0.083751, 0.0038915};
    static const double c6[] = {-0.4803, -0.082676, 0.0030302};
    mu = poly(c5, 4, xx);
    sigma = std::exp(poly(c6, 3, xx));
    out.p_value = norm_sf((y - mu) / sigma);
  }
  out.p_value = std::clamp(out.p_value, 0.0, 1.0);
  out.valid = true;
  return out;
}

}  // namespace gpf::stats
