#include "stats/histogram.hpp"

#include <cmath>
#include <cstdio>

namespace gpf::stats {

DecadeHistogram::DecadeHistogram(int lo_exp, int hi_exp)
    : lo_exp_(lo_exp), hi_exp_(hi_exp),
      counts_(static_cast<std::size_t>(hi_exp - lo_exp) + 2, 0) {}

void DecadeHistogram::add(double value) {
  ++total_;
  if (!(value > 0.0) || !std::isfinite(value)) {
    ++counts_.front();  // zero/invalid syndromes sit in the underflow bin
    return;
  }
  const double e = std::log10(value);
  if (e < lo_exp_) {
    ++counts_.front();
  } else if (e >= hi_exp_) {
    ++counts_.back();
  } else {
    const auto idx = static_cast<std::size_t>(std::floor(e) - lo_exp_) + 1;
    ++counts_[idx];
  }
}

void DecadeHistogram::add_all(std::span<const double> values) {
  for (double v : values) add(v);
}

double DecadeHistogram::fraction(std::size_t bin) const {
  return total_ == 0 ? 0.0
                     : static_cast<double>(counts_[bin]) / static_cast<double>(total_);
}

std::string DecadeHistogram::label(std::size_t bin) const {
  char buf[48];
  if (bin == 0) {
    std::snprintf(buf, sizeof(buf), "<1e%d", lo_exp_);
  } else if (bin == counts_.size() - 1) {
    std::snprintf(buf, sizeof(buf), ">=1e%d", hi_exp_);
  } else {
    const int e = lo_exp_ + static_cast<int>(bin) - 1;
    std::snprintf(buf, sizeof(buf), "[1e%d,1e%d)", e, e + 1);
  }
  return buf;
}

}  // namespace gpf::stats
