// Descriptive statistics and sampling-error margins for campaign results.
#pragma once

#include <cstddef>
#include <span>

namespace gpf::stats {

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);   // unbiased (n-1)
double stddev(std::span<const double> xs);
double median(std::span<const double> xs);     // copies + sorts internally

/// Margin of error (half-width of the CI) for an observed proportion p̂ over
/// n Bernoulli trials at confidence z (1.96 = 95%, 2.58 = 99%).
/// The paper quotes "statistical margin error lower than 3%" for its
/// 12,000-fault campaigns; this is the same formula.
double proportion_margin(double p_hat, std::size_t n, double z = 1.96);

/// Sample size needed for margin `e` at worst case p=0.5.
std::size_t sample_size_for_margin(double e, double z = 1.96);

}  // namespace gpf::stats
