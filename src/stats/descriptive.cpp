#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace gpf::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid) - 1, v.end());
  return 0.5 * (hi + v[mid - 1]);
}

double proportion_margin(double p_hat, std::size_t n, double z) {
  if (n == 0) return 1.0;
  return z * std::sqrt(p_hat * (1.0 - p_hat) / static_cast<double>(n));
}

std::size_t sample_size_for_margin(double e, double z) {
  const double n = z * z * 0.25 / (e * e);
  return static_cast<std::size_t>(std::ceil(n));
}

}  // namespace gpf::stats
