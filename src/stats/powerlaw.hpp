// Power-law fitting and sampling after Clauset, Shalizi & Newman (2007),
// which the paper uses to model the fault syndrome (Eq. 1):
//   relative_error = x_min * (1 - r)^(-1/(alpha-1)),  r ~ U[0,1)
#pragma once

#include <span>

#include "common/rng.hpp"

namespace gpf::stats {

struct PowerLawFit {
  double alpha = 0.0;   ///< scaling exponent (MLE)
  double x_min = 0.0;   ///< lower bound of power-law behaviour
  double ks = 1.0;      ///< KS distance between data tail and fitted CDF
  std::size_t n_tail = 0;  ///< samples >= x_min used for the fit
};

/// Continuous MLE for alpha with x_min fixed:
///   alpha = 1 + n / sum(ln(x_i / x_min)), over x_i >= x_min.
double fit_alpha(std::span<const double> xs, double x_min);

/// KS distance between the empirical tail CDF and the fitted power law.
double ks_distance(std::span<const double> xs, double x_min, double alpha);

/// Full Clauset fit: choose x_min (among observed values) minimizing the KS
/// distance, then alpha by MLE. Requires at least `min_tail` tail samples.
PowerLawFit fit_power_law(std::span<const double> xs, std::size_t min_tail = 10);

/// Inverse-CDF sampler implementing the paper's Eq. 1.
class PowerLawSampler {
 public:
  PowerLawSampler(double x_min, double alpha) : x_min_(x_min), alpha_(alpha) {}
  double sample(Rng& rng) const;
  double x_min() const { return x_min_; }
  double alpha() const { return alpha_; }

 private:
  double x_min_;
  double alpha_;
};

}  // namespace gpf::stats
