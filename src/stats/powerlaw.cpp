#include "stats/powerlaw.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace gpf::stats {

double fit_alpha(std::span<const double> xs, double x_min) {
  double log_sum = 0.0;
  std::size_t n = 0;
  for (double x : xs) {
    if (x >= x_min && x > 0.0) {
      log_sum += std::log(x / x_min);
      ++n;
    }
  }
  if (n == 0 || log_sum <= 0.0) return 0.0;
  return 1.0 + static_cast<double>(n) / log_sum;
}

double ks_distance(std::span<const double> xs, double x_min, double alpha) {
  std::vector<double> tail;
  tail.reserve(xs.size());
  for (double x : xs)
    if (x >= x_min && x > 0.0) tail.push_back(x);
  if (tail.empty() || alpha <= 1.0) return 1.0;
  std::sort(tail.begin(), tail.end());
  const double n = static_cast<double>(tail.size());
  double d = 0.0;
  for (std::size_t i = 0; i < tail.size(); ++i) {
    const double model = 1.0 - std::pow(tail[i] / x_min, 1.0 - alpha);
    const double emp_hi = static_cast<double>(i + 1) / n;
    const double emp_lo = static_cast<double>(i) / n;
    d = std::max({d, std::abs(emp_hi - model), std::abs(emp_lo - model)});
  }
  return d;
}

PowerLawFit fit_power_law(std::span<const double> xs, std::size_t min_tail) {
  std::vector<double> candidates;
  candidates.reserve(xs.size());
  for (double x : xs)
    if (x > 0.0) candidates.push_back(x);
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());

  PowerLawFit best;
  if (candidates.empty()) return best;
  // Cap candidate x_min values so the tail keeps at least min_tail samples.
  for (double x_min : candidates) {
    const double alpha = fit_alpha(xs, x_min);
    if (alpha <= 1.0) continue;
    std::size_t n_tail = 0;
    for (double x : xs)
      if (x >= x_min && x > 0.0) ++n_tail;
    if (n_tail < min_tail) break;  // candidates are sorted: tails only shrink
    const double d = ks_distance(xs, x_min, alpha);
    if (d < best.ks) best = PowerLawFit{alpha, x_min, d, n_tail};
  }
  return best;
}

double PowerLawSampler::sample(Rng& rng) const {
  const double r = rng.uniform();  // [0, 1)
  return x_min_ * std::pow(1.0 - r, -1.0 / (alpha_ - 1.0));
}

}  // namespace gpf::stats
