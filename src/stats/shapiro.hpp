// Shapiro–Wilk normality test (Royston's AS R94 approximation, n in [3,5000]).
// The paper uses it to show syndrome distributions are non-Gaussian
// (all p-values < 0.05).
#pragma once

#include <span>

namespace gpf::stats {

struct ShapiroWilkResult {
  double w = 0.0;        ///< test statistic
  double p_value = 0.0;  ///< probability of normality
  bool valid = false;    ///< false when n outside [3, 5000] or degenerate data
};

ShapiroWilkResult shapiro_wilk(std::span<const double> xs);

}  // namespace gpf::stats
