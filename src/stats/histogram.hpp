// Log-decade histogram used for the fault-syndrome figures: the paper bins
// relative errors from <1e-8 to >1e2 (Figs. 5/6).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace gpf::stats {

/// Histogram over powers of ten. Bin i covers [10^(lo_exp+i), 10^(lo_exp+i+1));
/// values below 10^lo_exp land in an underflow bin, values >= 10^hi_exp in an
/// overflow bin.
class DecadeHistogram {
 public:
  DecadeHistogram(int lo_exp = -8, int hi_exp = 2);

  void add(double value);
  void add_all(std::span<const double> values);

  std::size_t total() const { return total_; }
  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_[bin]; }
  /// Fraction of samples in `bin` (0 when empty).
  double fraction(std::size_t bin) const;
  /// Human-readable label, e.g. "<1e-8", "[1e-2,1e-1)", ">=1e2".
  std::string label(std::size_t bin) const;

  int lo_exp() const { return lo_exp_; }
  int hi_exp() const { return hi_exp_; }

 private:
  int lo_exp_;
  int hi_exp_;
  std::vector<std::size_t> counts_;  // [under, decades..., over]
  std::size_t total_ = 0;
};

}  // namespace gpf::stats
