// Flat structure-of-arrays "program" lowered from a finalized Netlist.
//
// The AoS `std::vector<Gate>` walked through eval_order() costs a dependent
// load per gate (netlist -> gate -> operand nets). finalize() lowers it once
// into contiguous kind/a/b/c/out arrays in levelized order so the simulators'
// hot loops stream sequentially, and precomputes the derived structure every
// engine was rebuilding for itself:
//   - per-level slot offsets (levelized scheduling without re-sorting),
//   - a CSR fan-out adjacency over combinational gates AND DFF pins (the
//     event engine's difference propagation and the batch engine's
//     fanout-cone pruning both traverse it),
//   - a topological index per net (fault lists sorted by it keep the union
//     cone of a 64-fault batch tight).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gate/netlist.hpp"

namespace gpf::gate {

inline constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

struct CompiledNetlist {
  /// `net_level` is finalize()'s levelization (sources 0, gates 1+max(ins)).
  CompiledNetlist(const Netlist& nl, std::span<const int> net_level);

  // -- combinational program (slot i == Netlist::eval_order()[i]) ----------
  std::vector<GateKind> kind;
  std::vector<Net> a, b, c;
  std::vector<Net> out;  ///< net driven by slot i
  /// Slots of level l are [level_offset[l], level_offset[l + 1]);
  /// level_offset.size() == num_levels() + 1.
  std::vector<std::uint32_t> level_offset;

  // -- sequential elements (index order == Netlist::dffs()) ----------------
  std::vector<Net> dff_out, dff_d, dff_en;  ///< dff_d/dff_en may be kNoNet
  std::vector<std::int32_t> dff_index;      ///< net -> dff slot, -1 otherwise

  // -- per-net structure ---------------------------------------------------
  std::vector<std::uint32_t> slot_of;    ///< net -> slot (kNoSlot for sources)
  std::vector<std::int32_t> level;       ///< net -> levelization depth
  /// net -> rank in the global (level, net) order. Unique per net, so
  /// (topo_index, polarity) is a strict total order over stuck-at faults.
  std::vector<std::uint32_t> topo_index;

  // -- CSR fan-out: consuming gate/DFF nets of each net (one entry per pin
  // use, so offset deltas double as pin-fanout counts for fault collapsing).
  std::vector<std::uint32_t> fan_offset;  ///< size num_nets() + 1
  std::vector<Net> fan_target;

  std::size_t num_nets() const { return slot_of.size(); }
  std::size_t num_slots() const { return kind.size(); }
  std::size_t num_levels() const { return level_offset.size() - 1; }
  std::span<const Net> fanout(Net n) const {
    const auto i = static_cast<std::size_t>(n);
    return {fan_target.data() + fan_offset[i], fan_target.data() + fan_offset[i + 1]};
  }
  /// Pin uses of `n` across the whole netlist (duplicate pins counted).
  std::uint32_t fanout_count(Net n) const {
    const auto i = static_cast<std::size_t>(n);
    return fan_offset[i + 1] - fan_offset[i];
  }
};

}  // namespace gpf::gate
