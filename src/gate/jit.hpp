// True JIT backend for the optimized gate program (gate/gateprog.hpp).
//
// jit_module() emits a self-contained C++ translation unit for one
// (program stream, lane width) pair — one function per netlist LEVEL, each a
// straight line of vector-extension bitwise ops over the engine's value
// array — compiles it with the system C++ compiler (-shared -fPIC plus the
// width's -m flags), dlopen()s the result and returns the per-level function
// table. Emitting per level rather than one giant function keeps every
// function compiler-friendly AND lets the host engine apply its sparse
// stuck-at force fixups between level calls, which is exact because the
// stream is levelized: every consumer of a level-L net runs at level > L.
//
// The shared object is cached under GPF_JIT_CACHE_DIR keyed by an FNV hash
// of the emitted source (which embeds the program's structure hash, the
// width and a codegen version), so a process, a fleet worker, or the next
// run of the same campaign reuses the compile. A corrupt or stale cache
// entry fails dlopen/validation, is unlinked, and is recompiled once.
//
// Everything degrades to nullptr — GPF_JIT=off, no compiler on the host
// (one warning, then the direct-threaded interpreter), compile failure,
// auto mode on a netlist too small to amortize the compile. Callers treat
// nullptr as "interpret".
#pragma once

#include <cstdint>
#include <memory>

#include "gate/gateprog.hpp"

namespace gpf::gate {

struct JitModule {
  /// One function per level; levels[l] evaluates every op whose output net
  /// is at levelization depth l. Index 0 (sources) and empty levels are
  /// null. `vals` is the engine's value array (LaneWord<N>*, storage_size
  /// entries: nets then vreg slots).
  using LevelFn = void (*)(void* vals);
  std::vector<LevelFn> levels;
  std::size_t width = 0;
  void* handle = nullptr;
  ~JitModule();
};

/// Compiled module for `stream` of `gp` at `lanes` lanes, or nullptr when
/// the JIT is off/unavailable/not worth it (see file comment). Memoized
/// in-process and disk-cached across processes; thread-safe.
std::shared_ptr<const JitModule> jit_module(const GateProgram& gp,
                                            const Stream& stream,
                                            std::size_t lanes);

/// True when a working system C++ compiler was found (probed once).
bool jit_compiler_available();

/// Effective engine tag for status lines and logs: "jit" when GPF_JIT
/// resolves to a usable JIT (mode != off and a compiler exists), else
/// "interp".
const char* batch_engine_tag();

/// Drops the in-process module memo and re-probes the compiler on next use.
/// Tests use this to exercise stale-cache recovery paths.
void jit_reset_for_tests();

}  // namespace gpf::gate
