#include "gate/replay.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <unordered_map>

#include "common/rng.hpp"
#include "gate/batchsim.hpp"
#include "gate/collapse.hpp"
#include "gate/compiled.hpp"
#include "gate/eventsim.hpp"
#include "isa/encoding.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gpf::gate {

using errmodel::ErrorModel;

const char* fault_class_name(FaultClass c) {
  switch (c) {
    case FaultClass::Uncontrollable: return "uncontrollable";
    case FaultClass::Masked: return "hw-masked";
    case FaultClass::Hang: return "hw-hang";
    case FaultClass::SwError: return "sw-error";
  }
  return "?";
}

std::size_t UnitCampaignResult::count_class(FaultClass c) const {
  std::size_t n = 0;
  for (const auto& f : faults)
    if (f.cls() == c) ++n;
  return n;
}

std::size_t UnitCampaignResult::faults_with_model(ErrorModel m) const {
  std::size_t n = 0;
  for (const auto& f : faults)
    if (f.error_counts[static_cast<unsigned>(m)]) ++n;
  return n;
}

std::uint64_t UnitCampaignResult::occurrences_of_model(ErrorModel m) const {
  std::uint64_t n = 0;
  for (const auto& f : faults) n += f.error_counts[static_cast<unsigned>(m)];
  return n;
}

// ---------------------------------------------------------------------------
// Instruction-diff classification (shared across the three units)
// ---------------------------------------------------------------------------

namespace {

void add(std::array<std::uint32_t, errmodel::kNumErrorModels>& counts, ErrorModel m,
         std::uint32_t n = 1) {
  counts[static_cast<unsigned>(m)] += n;
}

bool reg_valid(std::uint8_t r, std::uint32_t regs) { return r == isa::kRZ || r < regs; }

/// Classify a corrupted decoded instruction relative to the golden one.
bool classify_instr_diff(const isa::Instruction& g, const isa::Instruction& f,
                         bool f_ok, std::uint32_t regs,
                         std::array<std::uint32_t, errmodel::kNumErrorModels>& counts,
                         bool& hang) {
  bool any = false;
  if (!f_ok) {
    add(counts, ErrorModel::IVOC);
    return true;
  }
  if (f.op != g.op) {
    add(counts, ErrorModel::IOC);
    any = true;
  }
  if (f.guard_pred != g.guard_pred || f.guard_neg != g.guard_neg) {
    add(counts, ErrorModel::WV);
    any = true;
  }
  if (f.use_imm != g.use_imm) {
    add(counts, ErrorModel::IIO);
    any = true;
  }

  const int srcs = isa::num_sources(g.op);
  const bool rd_matters = isa::writes_register(g.op) || isa::writes_predicate(g.op) ||
                          isa::is_store(g.op);
  if (rd_matters && f.rd != g.rd) {
    if (isa::writes_predicate(g.op))
      add(counts, ErrorModel::WV);  // destination predicate corrupted
    else if (reg_valid(f.rd, regs))
      add(counts, ErrorModel::IRA);
    else
      add(counts, ErrorModel::IVRA);
    any = true;
  }
  if ((srcs >= 1 || g.op == isa::Op::S2R) && f.rs1 != g.rs1) {
    if (g.op == isa::Op::S2R)
      add(counts, ErrorModel::IAT);  // thread-index source corrupted
    else if (reg_valid(f.rs1, regs))
      add(counts, ErrorModel::IRA);
    else
      add(counts, ErrorModel::IVRA);
    any = true;
  }
  const bool rs2_used = srcs >= 2 && !(g.use_imm && srcs == 2);
  if (rs2_used && f.rs2 != g.rs2) {
    add(counts, reg_valid(f.rs2, regs) ? ErrorModel::IRA : ErrorModel::IVRA);
    any = true;
  }
  const bool rs3_used = (srcs >= 3 && !g.use_imm) || g.op == isa::Op::SEL;
  if (rs3_used && f.rs3 != g.rs3) {
    if (g.op == isa::Op::SEL)
      add(counts, ErrorModel::WV);  // select predicate corrupted
    else
      add(counts, reg_valid(f.rs3, regs) ? ErrorModel::IRA : ErrorModel::IVRA);
    any = true;
  }
  if (g.use_imm && f.use_imm && f.imm != g.imm) {
    add(counts, ErrorModel::IIO);
    any = true;
  }
  if ((isa::is_load(g.op) || isa::is_store(g.op)) && f.space != g.space) {
    add(counts, isa::is_store(g.op) ? ErrorModel::IMD : ErrorModel::IMS);
    any = true;
  }
  (void)hang;
  return any;
}

}  // namespace

bool classify_word_diff(std::uint64_t golden_word, std::uint64_t faulty_word,
                        std::uint32_t regs,
                        std::array<std::uint32_t, errmodel::kNumErrorModels>& counts,
                        bool& hang) {
  if (golden_word == faulty_word) return false;
  const isa::DecodeResult g = isa::decode(golden_word);
  const isa::DecodeResult f = isa::decode(faulty_word);
  if (!g.ok) return false;  // traces never carry invalid golden words
  return classify_instr_diff(g.instr, f.instr, f.ok, regs, counts, hang);
}

// ---------------------------------------------------------------------------
// UnitReplayer
// ---------------------------------------------------------------------------

struct UnitReplayer::Ports {
  // Decoder.
  const PortBus* d_instr = nullptr;
  const PortBus* d_fetch_valid = nullptr;
  const PortBus* d_valid = nullptr;
  const PortBus* d_opcode = nullptr;
  const PortBus* d_guard = nullptr;
  const PortBus* d_guard_neg = nullptr;
  const PortBus* d_use_imm = nullptr;
  const PortBus* d_space = nullptr;
  const PortBus* d_rd = nullptr;
  const PortBus* d_rs1 = nullptr;
  const PortBus* d_rs2 = nullptr;
  const PortBus* d_rs3 = nullptr;
  const PortBus* d_imm = nullptr;
  const PortBus* d_mem_rd_en = nullptr;
  const PortBus* d_mem_wr_en = nullptr;
  std::vector<const PortBus*> d_class;
  // Fetch.
  const PortBus* f_sel_slot = nullptr;
  const PortBus* f_sel_valid = nullptr;
  const PortBus* f_instr_in = nullptr;
  const PortBus* f_redirect_en = nullptr;
  const PortBus* f_redirect_pc = nullptr;
  const PortBus* f_pc_wr_en = nullptr;
  const PortBus* f_init_en = nullptr;
  const PortBus* f_init_slot = nullptr;
  const PortBus* f_init_pc = nullptr;
  const PortBus* f_pc_out = nullptr;
  const PortBus* f_instr_out = nullptr;
  const PortBus* f_fetch_valid = nullptr;
  // WSC.
  const PortBus* w_wr_slot = nullptr;
  const PortBus* w_wr_state_en = nullptr;
  const PortBus* w_wr_valid = nullptr;
  const PortBus* w_wr_done = nullptr;
  const PortBus* w_wr_barrier = nullptr;
  const PortBus* w_wr_mask_en = nullptr;
  const PortBus* w_wr_mask = nullptr;
  const PortBus* w_wr_base_en = nullptr;
  const PortBus* w_wr_base = nullptr;
  const PortBus* w_wr_cta_en = nullptr;
  const PortBus* w_wr_cta = nullptr;
  const PortBus* w_lane_cfg_en = nullptr;
  const PortBus* w_lane_cfg = nullptr;
  const PortBus* w_barrier_release = nullptr;
  const PortBus* w_ibuf_en = nullptr;
  const PortBus* w_ibuf_in = nullptr;
  const PortBus* w_issue_en = nullptr;
  const PortBus* w_sel_slot = nullptr;
  const PortBus* w_sel_valid = nullptr;
  const PortBus* w_mask_out = nullptr;
  const PortBus* w_lane_en = nullptr;
  const PortBus* w_base_out = nullptr;
  const PortBus* w_cta_out = nullptr;
  const PortBus* w_dispatch = nullptr;
  /// Union of all nets compare_outputs reads for this unit. A fault lane can
  /// only contribute errors on a cycle when one of these nets diverges, so
  /// the batch engine screens lanes against this set before paying the
  /// per-lane classification cost.
  std::vector<Net> observed;
};

UnitReplayer::UnitReplayer(UnitKind kind)
    : kind_(kind), nl_(build_unit(kind)), ports_(std::make_unique<Ports>()) {
  Ports& p = *ports_;
  const Netlist& nl = *nl_;
  switch (kind) {
    case UnitKind::Decoder:
      p.d_instr = nl.find_input("instr");
      p.d_fetch_valid = nl.find_input("fetch_valid");
      p.d_valid = nl.find_output("valid");
      p.d_opcode = nl.find_output("opcode");
      p.d_guard = nl.find_output("guard_pred");
      p.d_guard_neg = nl.find_output("guard_neg");
      p.d_use_imm = nl.find_output("use_imm");
      p.d_space = nl.find_output("space");
      p.d_rd = nl.find_output("rd");
      p.d_rs1 = nl.find_output("rs1");
      p.d_rs2 = nl.find_output("rs2");
      p.d_rs3 = nl.find_output("rs3");
      p.d_imm = nl.find_output("imm");
      p.d_mem_rd_en = nl.find_output("mem_rd_en");
      p.d_mem_wr_en = nl.find_output("mem_wr_en");
      for (const char* name : {"is_int", "is_fp32", "is_sfu", "is_mem", "is_store",
                               "is_branch", "is_ssy", "is_bar", "is_exit",
                               "writes_pred", "is_s2r"})
        p.d_class.push_back(nl.find_output(name));
      break;
    case UnitKind::Fetch:
      p.f_sel_slot = nl.find_input("sel_slot");
      p.f_sel_valid = nl.find_input("sel_valid");
      p.f_instr_in = nl.find_input("instr_in");
      p.f_redirect_en = nl.find_input("redirect_en");
      p.f_redirect_pc = nl.find_input("redirect_pc");
      p.f_pc_wr_en = nl.find_input("pc_wr_en");
      p.f_init_en = nl.find_input("init_en");
      p.f_init_slot = nl.find_input("init_slot");
      p.f_init_pc = nl.find_input("init_pc");
      p.f_pc_out = nl.find_output("pc_out");
      p.f_instr_out = nl.find_output("instr_out");
      p.f_fetch_valid = nl.find_output("fetch_valid");
      break;
    case UnitKind::WSC:
      p.w_wr_slot = nl.find_input("wr_slot");
      p.w_wr_state_en = nl.find_input("wr_state_en");
      p.w_wr_valid = nl.find_input("wr_valid");
      p.w_wr_done = nl.find_input("wr_done");
      p.w_wr_barrier = nl.find_input("wr_barrier");
      p.w_wr_mask_en = nl.find_input("wr_mask_en");
      p.w_wr_mask = nl.find_input("wr_mask");
      p.w_wr_base_en = nl.find_input("wr_base_en");
      p.w_wr_base = nl.find_input("wr_base");
      p.w_wr_cta_en = nl.find_input("wr_cta_en");
      p.w_wr_cta = nl.find_input("wr_cta");
      p.w_lane_cfg_en = nl.find_input("lane_cfg_en");
      p.w_lane_cfg = nl.find_input("lane_cfg");
      p.w_barrier_release = nl.find_input("barrier_release");
      p.w_ibuf_en = nl.find_input("ibuf_en");
      p.w_ibuf_in = nl.find_input("ibuf_in");
      p.w_issue_en = nl.find_input("issue_en");
      p.w_sel_slot = nl.find_output("sel_slot");
      p.w_sel_valid = nl.find_output("sel_valid");
      p.w_mask_out = nl.find_output("mask_out");
      p.w_lane_en = nl.find_output("lane_en");
      p.w_base_out = nl.find_output("base_out");
      p.w_cta_out = nl.find_output("cta_out");
      p.w_dispatch = nl.find_output("dispatch");
      break;
  }

  auto observe = [&p](const PortBus* bus) {
    if (bus) p.observed.insert(p.observed.end(), bus->nets.begin(), bus->nets.end());
  };
  switch (kind) {
    case UnitKind::Decoder:
      for (const PortBus* bus :
           {p.d_valid, p.d_opcode, p.d_guard, p.d_guard_neg, p.d_use_imm,
            p.d_space, p.d_rd, p.d_rs1, p.d_rs2, p.d_rs3, p.d_imm,
            p.d_mem_rd_en, p.d_mem_wr_en})
        observe(bus);
      for (const PortBus* bus : p.d_class) observe(bus);
      break;
    case UnitKind::Fetch:
      for (const PortBus* bus : {p.f_fetch_valid, p.f_pc_out, p.f_instr_out})
        observe(bus);
      break;
    case UnitKind::WSC:
      for (const PortBus* bus :
           {p.w_sel_valid, p.w_sel_slot, p.w_mask_out, p.w_lane_en,
            p.w_base_out, p.w_cta_out, p.w_dispatch})
        observe(bus);
      break;
  }
}

UnitReplayer::~UnitReplayer() = default;

std::size_t UnitReplayer::num_cycles(const UnitTraces& t) const {
  switch (kind_) {
    case UnitKind::Decoder: return t.decoder.size();
    case UnitKind::Fetch: return t.fetch.size();
    case UnitKind::WSC: return t.wsc.size();
  }
  return 0;
}

bool UnitReplayer::cycle_is_issue(const UnitTraces& t, std::size_t c) const {
  switch (kind_) {
    case UnitKind::Decoder: return true;
    case UnitKind::Fetch: return t.fetch[c].is_issue;
    case UnitKind::WSC: return t.wsc[c].is_issue;
  }
  return false;
}

template <class Sim>
void UnitReplayer::drive_inputs(Sim& sim, const UnitTraces& t,
                                std::size_t c) const {
  const Ports& p = *ports_;
  switch (kind_) {
    case UnitKind::Decoder: {
      const DecoderPattern& pat = t.decoder[c];
      sim.set_bus(*p.d_instr, pat.word);
      sim.set_bus(*p.d_fetch_valid, 1);
      break;
    }
    case UnitKind::Fetch: {
      const FetchCycle& fc = t.fetch[c];
      sim.set_bus(*p.f_sel_slot, fc.sel_slot);
      sim.set_bus(*p.f_sel_valid, fc.sel_valid);
      sim.set_bus(*p.f_instr_in, fc.instr_in);
      sim.set_bus(*p.f_redirect_en, fc.redirect_en);
      sim.set_bus(*p.f_redirect_pc, fc.redirect_pc);
      sim.set_bus(*p.f_pc_wr_en, fc.pc_wr_en);
      sim.set_bus(*p.f_init_en, fc.init_en);
      sim.set_bus(*p.f_init_slot, fc.init_slot);
      sim.set_bus(*p.f_init_pc, fc.init_pc);
      break;
    }
    case UnitKind::WSC: {
      const WscCycle& wc = t.wsc[c];
      sim.set_bus(*p.w_wr_slot, wc.wr_slot);
      sim.set_bus(*p.w_wr_state_en, wc.wr_state_en);
      sim.set_bus(*p.w_wr_valid, wc.wr_valid);
      sim.set_bus(*p.w_wr_done, wc.wr_done);
      sim.set_bus(*p.w_wr_barrier, wc.wr_barrier);
      sim.set_bus(*p.w_wr_mask_en, wc.wr_mask_en);
      sim.set_bus(*p.w_wr_mask, wc.wr_mask);
      sim.set_bus(*p.w_wr_base_en, wc.wr_base_en);
      sim.set_bus(*p.w_wr_base, wc.wr_base);
      sim.set_bus(*p.w_wr_cta_en, wc.wr_cta_en);
      sim.set_bus(*p.w_wr_cta, wc.wr_cta);
      sim.set_bus(*p.w_lane_cfg_en, wc.lane_cfg_en);
      sim.set_bus(*p.w_lane_cfg, wc.lane_cfg);
      sim.set_bus(*p.w_barrier_release, wc.barrier_release);
      sim.set_bus(*p.w_ibuf_en, wc.ibuf_en);
      sim.set_bus(*p.w_ibuf_in, wc.ibuf_in);
      sim.set_bus(*p.w_issue_en, wc.is_issue);
      break;
    }
  }
}

UnitReplayer::GoldenTrace UnitReplayer::compute_golden(const UnitTraces& t) const {
  GoldenTrace g;
  const std::size_t n = num_cycles(t);
  g.vals.reserve(n);
  Simulator sim(*nl_);
  sim.reset();
  for (std::size_t c = 0; c < n; ++c) {
    drive_inputs(sim, t, c);
    sim.eval();
    g.vals.push_back(sim.values());
    if (kind_ != UnitKind::Decoder) sim.clock();
    if (kind_ == UnitKind::Decoder) sim.reset();
  }
  g.windows.resize(nl_->num_nets());
  for (std::uint32_t c = 0; c < n; ++c) {
    const std::vector<std::uint8_t>& vals = g.vals[c];
    for (std::size_t i = 0; i < vals.size(); ++i) {
      GoldenTrace::Window& w = g.windows[i];
      if (vals[i]) {
        if (w.first1 == GoldenTrace::kNoCycle) w.first1 = c;
        w.last1 = c;
      } else {
        if (w.first0 == GoldenTrace::kNoCycle) w.first0 = c;
        w.last0 = c;
      }
    }
  }
  return g;
}

std::uint64_t UnitReplayer::golden_bus(const std::vector<std::uint8_t>& vals,
                                       const PortBus& bus) const {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bus.nets.size(); ++i)
    if (vals[static_cast<std::size_t>(bus.nets[i])]) v |= std::uint64_t{1} << i;
  return v;
}

namespace {

/// Reassemble an instruction word from decoder output fields so the shared
/// word classifier can be reused.
std::uint64_t word_from_decoder_fields(std::uint64_t opcode, std::uint64_t guard,
                                       std::uint64_t guard_neg, std::uint64_t use_imm,
                                       std::uint64_t space, std::uint64_t rd,
                                       std::uint64_t rs1, std::uint64_t rs2,
                                       std::uint64_t rs3, std::uint64_t imm) {
  isa::Instruction in;
  in.op = static_cast<isa::Op>(opcode);
  in.guard_pred = static_cast<std::uint8_t>(guard);
  in.guard_neg = guard_neg != 0;
  in.use_imm = use_imm != 0;
  in.space = static_cast<isa::MemSpace>(space);
  in.rd = static_cast<std::uint8_t>(rd);
  in.rs1 = static_cast<std::uint8_t>(rs1);
  if (in.use_imm) {
    in.imm = static_cast<std::uint32_t>(imm);
  } else {
    in.rs2 = static_cast<std::uint8_t>(rs2);
    in.rs3 = static_cast<std::uint8_t>(rs3);
  }
  return isa::encode(in);
}

}  // namespace

void UnitReplayer::compare_outputs(const UnitTraces& t, std::size_t c,
                                   const std::vector<std::uint8_t>& gv,
                                   const BusReader& fbus,
                                   FaultCharacterization& out) const {
  const Ports& p = *ports_;
  switch (kind_) {
    case UnitKind::Decoder: {
      const DecoderPattern& pat = t.decoder[c];
      const auto n = static_cast<std::uint32_t>(pat.count);

      const bool g_valid = golden_bus(gv, *p.d_valid) != 0;
      const bool f_valid = fbus(*p.d_valid) != 0;
      if (g_valid && !f_valid) {
        // The decoder silently drops a valid instruction: execution stalls.
        out.hang = true;
        return;
      }
      const std::uint64_t gw = word_from_decoder_fields(
          golden_bus(gv, *p.d_opcode), golden_bus(gv, *p.d_guard),
          golden_bus(gv, *p.d_guard_neg), golden_bus(gv, *p.d_use_imm),
          golden_bus(gv, *p.d_space), golden_bus(gv, *p.d_rd),
          golden_bus(gv, *p.d_rs1), golden_bus(gv, *p.d_rs2),
          golden_bus(gv, *p.d_rs3), golden_bus(gv, *p.d_imm));
      const bool f_op_valid = isa::is_valid_opcode(
          static_cast<std::uint8_t>(fbus(*p.d_opcode)));
      if (!f_op_valid) {
        add(out.error_counts, ErrorModel::IVOC, n);
        return;
      }
      const std::uint64_t fw = word_from_decoder_fields(
          fbus(*p.d_opcode), fbus(*p.d_guard),
          fbus(*p.d_guard_neg), fbus(*p.d_use_imm),
          fbus(*p.d_space), fbus(*p.d_rd), fbus(*p.d_rs1),
          fbus(*p.d_rs2), fbus(*p.d_rs3), fbus(*p.d_imm));
      std::array<std::uint32_t, errmodel::kNumErrorModels> local{};
      bool hang = false;
      bool any = classify_word_diff(gw, fw, pat.regs_per_thread, local, hang);
      // Memory-resource enables: a corrupted read enable misdirects operand
      // loading (IMS); a corrupted write enable misdirects result storing
      // (IMD). Only meaningful when the golden instruction uses that port.
      const std::uint64_t g_rd_en = golden_bus(gv, *p.d_mem_rd_en);
      const std::uint64_t g_wr_en = golden_bus(gv, *p.d_mem_wr_en);
      if (g_rd_en != 0 && fbus(*p.d_mem_rd_en) != g_rd_en) {
        add(local, ErrorModel::IMS);
        any = true;
      }
      if (g_wr_en != 0 && fbus(*p.d_mem_wr_en) != g_wr_en) {
        add(local, ErrorModel::IMD);
        any = true;
      }
      // Dispatch-class signal corruption without a field diff still routes
      // the instruction to the wrong unit: an operation error.
      if (!any) {
        for (const PortBus* cls : p.d_class) {
          if (golden_bus(gv, *cls) != fbus(*cls)) {
            add(local, ErrorModel::IOC);
            any = true;
            break;
          }
        }
      }
      if (any)
        for (unsigned m = 0; m < errmodel::kNumErrorModels; ++m)
          out.error_counts[m] += local[m] * n;
      out.hang |= hang;
      break;
    }
    case UnitKind::Fetch: {
      const FetchCycle& fc = t.fetch[c];
      const bool g_fv = golden_bus(gv, *p.f_fetch_valid) != 0;
      const bool f_fv = fbus(*p.f_fetch_valid) != 0;
      if (g_fv && !f_fv) {
        out.hang = true;
        return;
      }
      const std::uint64_t g_pc = golden_bus(gv, *p.f_pc_out);
      const std::uint64_t f_pc = fbus(*p.f_pc_out);
      if (g_pc != f_pc) {
        if (f_pc >= fc.prog_size) {
          // Fetch wanders outside instruction memory: the unit returns
          // garbage bits, which decode as an invalid operation.
          add(out.error_counts, ErrorModel::IVOC);
        } else {
          bool other_warp = false;
          for (unsigned s = 0; s < 8; ++s)
            if (s != fc.sel_slot && fc.resident_pcs[s] == f_pc) other_warp = true;
          add(out.error_counts, other_warp ? ErrorModel::IAW : ErrorModel::IOC);
        }
      }
      classify_word_diff(golden_bus(gv, *p.f_instr_out),
                         fbus(*p.f_instr_out), fc.regs_per_thread,
                         out.error_counts, out.hang);
      break;
    }
    case UnitKind::WSC: {
      const WscCycle& wc = t.wsc[c];
      const bool g_sv = golden_bus(gv, *p.w_sel_valid) != 0;
      const bool f_sv = fbus(*p.w_sel_valid) != 0;
      if (g_sv && !f_sv) {
        out.hang = true;  // scheduler stops issuing
        return;
      }
      if (!g_sv && f_sv) add(out.error_counts, ErrorModel::IAW);
      if (golden_bus(gv, *p.w_sel_slot) != fbus(*p.w_sel_slot))
        add(out.error_counts, ErrorModel::IAW);
      if (golden_bus(gv, *p.w_mask_out) != fbus(*p.w_mask_out))
        add(out.error_counts, ErrorModel::IAT);
      if (golden_bus(gv, *p.w_lane_en) != fbus(*p.w_lane_en))
        add(out.error_counts, ErrorModel::IAL);
      if (golden_bus(gv, *p.w_base_out) != fbus(*p.w_base_out))
        add(out.error_counts, ErrorModel::IPP);
      if (golden_bus(gv, *p.w_cta_out) != fbus(*p.w_cta_out))
        add(out.error_counts, ErrorModel::IAC);
      classify_word_diff(golden_bus(gv, *p.w_dispatch), fbus(*p.w_dispatch),
                         wc.regs_per_thread, out.error_counts, out.hang);
      break;
    }
  }
}

void UnitReplayer::classify_batch(BatchSim& sim, const UnitTraces& t,
                                  std::size_t c,
                                  const std::vector<std::uint8_t>& gv,
                                  const LaneMask& diff, LaneMask& live,
                                  std::span<FaultCharacterization> out) const {
  const Ports& p = *ports_;
  // A diverged lane is retired the moment it hangs: the unit makes no further
  // progress there, so later trace cycles are unreachable (same contract as
  // the scalar engines). Lanes entering here always have hang == false.
  const auto retire = [&](unsigned k) {
    live.clear(k);
    sim.retire_lane(k, gv);
  };
  // Per-lane faulty bus words, indexed by lane (bus_values fills only the
  // requested lanes).
  std::array<std::uint64_t, LaneMask::kMaxLanes> words;
  // Instruction-word bus: the golden word decodes once per cycle, the faulty
  // words come word-wide from the engine, and only lanes whose word actually
  // differs pay the faulty decode + field comparison.
  const auto classify_word_bus = [&](const PortBus& bus, std::uint32_t regs,
                                     const LaneMask& alive) {
    const std::uint64_t gw = golden_bus(gv, bus);
    const LaneMask d = sim.bus_values(bus, gv, alive, gw, words);
    if (!d.any()) return;
    const isa::DecodeResult gd = isa::decode(gw);
    if (!gd.ok) return;  // traces never carry invalid golden words
    for_each_lane(d, [&](unsigned k) {
      const isa::DecodeResult fd = isa::decode(words[k]);
      classify_instr_diff(gd.instr, fd.instr, fd.ok, regs,
                          out[k].error_counts, out[k].hang);
      if (out[k].hang) retire(k);
    });
  };
  switch (kind_) {
    case UnitKind::Decoder: {
      // Word-wide mirror of compare_outputs's decoder case: each bus is read
      // once per cycle with a vector pass (bus_values/diff_lanes) instead of
      // a scalar bus walk per diverged lane, and only lanes whose bits
      // actually differ pay the faulty-word reassembly + decode.
      const DecoderPattern& pat = t.decoder[c];
      const auto n = static_cast<std::uint32_t>(pat.count);
      LaneMask alive = diff;
      // Valid drop first: a lane that silently swallows a valid instruction
      // hangs, and nothing else about its outputs counts.
      const std::uint64_t g_valid = golden_bus(gv, *p.d_valid);
      const LaneMask d_valid =
          sim.bus_values(*p.d_valid, gv, alive, g_valid, words);
      if (g_valid != 0) {
        for_each_lane(d_valid, [&](unsigned k) {
          if (words[k] == 0) {
            out[k].hang = true;
            alive.clear(k);
            retire(k);
          }
        });
        if (!alive.any()) return;
      }
      const PortBus* const fields[10] = {
          p.d_opcode, p.d_guard, p.d_guard_neg, p.d_use_imm, p.d_space,
          p.d_rd,     p.d_rs1,   p.d_rs2,       p.d_rs3,     p.d_imm};
      std::uint64_t gf[10];
      std::array<std::array<std::uint64_t, LaneMask::kMaxLanes>, 10> fw;
      LaneMask d_fields;
      for (int i = 0; i < 10; ++i) {
        gf[i] = golden_bus(gv, *fields[i]);
        d_fields |= sim.bus_values(*fields[i], gv, alive, gf[i], fw[i]);
      }
      const std::uint64_t gw = word_from_decoder_fields(
          gf[0], gf[1], gf[2], gf[3], gf[4], gf[5], gf[6], gf[7], gf[8],
          gf[9]);
      const isa::DecodeResult gd = isa::decode(gw);
      // Memory-resource enables: a corrupted read enable misdirects operand
      // loading (IMS); a corrupted write enable misdirects result storing
      // (IMD). Only meaningful when the golden instruction uses that port.
      const LaneMask d_rd_en =
          golden_bus(gv, *p.d_mem_rd_en) != 0
              ? sim.diff_lanes(p.d_mem_rd_en->nets, gv) & alive
              : LaneMask{};
      const LaneMask d_wr_en =
          golden_bus(gv, *p.d_mem_wr_en) != 0
              ? sim.diff_lanes(p.d_mem_wr_en->nets, gv) & alive
              : LaneMask{};
      // Dispatch-class signal corruption without a field diff still routes
      // the instruction to the wrong unit: an operation error.
      LaneMask d_class;
      for (const PortBus* cls : p.d_class)
        d_class |= sim.diff_lanes(cls->nets, gv);
      d_class &= alive;
      const LaneMask todo = (d_fields | d_rd_en | d_wr_en | d_class) & alive;
      for_each_lane(todo, [&](unsigned k) {
        if (!isa::is_valid_opcode(static_cast<std::uint8_t>(fw[0][k]))) {
          add(out[k].error_counts, ErrorModel::IVOC, n);
          return;
        }
        const std::uint64_t fwk = word_from_decoder_fields(
            fw[0][k], fw[1][k], fw[2][k], fw[3][k], fw[4][k], fw[5][k],
            fw[6][k], fw[7][k], fw[8][k], fw[9][k]);
        std::array<std::uint32_t, errmodel::kNumErrorModels> local{};
        bool hang = false;
        bool any = false;
        if (fwk != gw && gd.ok) {
          const isa::DecodeResult fd = isa::decode(fwk);
          any = classify_instr_diff(gd.instr, fd.instr, fd.ok,
                                    pat.regs_per_thread, local, hang);
        }
        if (d_rd_en.test(k)) {
          add(local, ErrorModel::IMS);
          any = true;
        }
        if (d_wr_en.test(k)) {
          add(local, ErrorModel::IMD);
          any = true;
        }
        if (!any && d_class.test(k)) add(local, ErrorModel::IOC);
        for (unsigned m = 0; m < errmodel::kNumErrorModels; ++m)
          out[k].error_counts[m] += local[m] * n;
        out[k].hang |= hang;
        if (out[k].hang) retire(k);
      });
      return;
    }
    case UnitKind::Fetch: {
      const FetchCycle& fc = t.fetch[c];
      LaneMask alive = diff;
      // Golden fetch_valid high + lane diff => the lane dropped the fetch.
      if (golden_bus(gv, *p.f_fetch_valid) != 0) {
        const LaneMask d_fv = sim.diff_lanes(p.f_fetch_valid->nets, gv) & diff;
        for_each_lane(d_fv, [&](unsigned k) {
          out[k].hang = true;
          alive.clear(k);
          retire(k);
        });
      }
      const std::uint64_t g_pc = golden_bus(gv, *p.f_pc_out);
      const LaneMask d_pc = sim.bus_values(*p.f_pc_out, gv, alive, g_pc, words);
      for_each_lane(d_pc, [&](unsigned k) {
        const std::uint64_t f_pc = words[k];
        if (f_pc >= fc.prog_size) {
          // Fetch wanders outside instruction memory: the unit returns
          // garbage bits, which decode as an invalid operation.
          add(out[k].error_counts, ErrorModel::IVOC);
        } else {
          bool other_warp = false;
          for (unsigned s = 0; s < 8; ++s)
            if (s != fc.sel_slot && fc.resident_pcs[s] == f_pc)
              other_warp = true;
          add(out[k].error_counts,
              other_warp ? ErrorModel::IAW : ErrorModel::IOC);
        }
      });
      classify_word_bus(*p.f_instr_out, fc.regs_per_thread, alive);
      return;
    }
    case UnitKind::WSC: {
      const WscCycle& wc = t.wsc[c];
      LaneMask alive = diff;
      const LaneMask d_sv = sim.diff_lanes(p.w_sel_valid->nets, gv) & diff;
      if (golden_bus(gv, *p.w_sel_valid) != 0) {
        // The scheduler stops issuing: hang, and nothing else counts.
        for_each_lane(d_sv, [&](unsigned k) {
          out[k].hang = true;
          alive.clear(k);
          retire(k);
        });
      } else {
        for_each_lane(d_sv, [&](unsigned k) {
          add(out[k].error_counts, ErrorModel::IAW);
        });
      }
      // Control buses carry their verdict in the diff mask alone: a lane
      // whose bus nets all match the golden machine has the golden value.
      const auto bus_model = [&](const PortBus& bus, ErrorModel m) {
        const LaneMask d = sim.diff_lanes(bus.nets, gv) & alive;
        for_each_lane(d,
                      [&](unsigned k) { add(out[k].error_counts, m); });
      };
      bus_model(*p.w_sel_slot, ErrorModel::IAW);
      bus_model(*p.w_mask_out, ErrorModel::IAT);
      bus_model(*p.w_lane_en, ErrorModel::IAL);
      bus_model(*p.w_base_out, ErrorModel::IPP);
      bus_model(*p.w_cta_out, ErrorModel::IAC);
      classify_word_bus(*p.w_dispatch, wc.regs_per_thread, alive);
      return;
    }
  }
}

void UnitReplayer::run_fault(const StuckFault& fault, const UnitTraces& t,
                             const GoldenTrace& g, FaultCharacterization& out,
                             EngineKind engine) const {
  if (out.hang) return;  // hung in an earlier trace: the unit is already dead
  const bool event_driven = engine != EngineKind::Brute;
  const std::size_t n = num_cycles(t);
  const auto site = static_cast<std::size_t>(fault.net);
  const std::uint8_t stuck = fault.stuck_high ? 1 : 0;

  if (kind_ == UnitKind::Decoder) {
    // Combinational: each pattern is independent; skip non-activating ones.
    Simulator sim(*nl_);
    EventFaultSim esim(*nl_);
    for (std::size_t c = 0; c < n; ++c) {
      if (g.vals[c][site] == stuck) continue;  // not activated by this pattern
      out.activated = true;
      if (event_driven) {
        esim.begin(fault);
        esim.eval_cycle(g.vals[c]);
        compare_outputs(
            t, c, g.vals[c],
            [&](const PortBus& b) { return esim.bus_value(b, g.vals[c]); }, out);
      } else {
        sim.reset();
        sim.set_fault(fault);
        drive_inputs(sim, t, c);
        sim.eval();
        compare_outputs(t, c, g.vals[c],
                        [&](const PortBus& b) { return sim.bus_value(b); }, out);
      }
      if (out.hang) return;  // hang retire: no further patterns are decoded
    }
    return;
  }

  // Sequential: the activation window comes precomputed with the golden
  // trace (a stuck-at-v site activates exactly where the golden value is !v).
  const GoldenTrace::Window& win = g.windows[site];
  if ((stuck ? win.first0 : win.first1) == GoldenTrace::kNoCycle)
    return;  // never activated
  const std::size_t first = stuck ? win.first0 : win.first1;
  const std::size_t last = stuck ? win.last0 : win.last1;
  out.activated = true;

  if (event_driven) {
    EventFaultSim esim(*nl_);
    esim.begin(fault);
    for (std::size_t c = first; c < n; ++c) {
      const bool diverges = esim.eval_cycle(g.vals[c]);
      if (diverges && cycle_is_issue(t, c)) {
        compare_outputs(
            t, c, g.vals[c],
            [&](const PortBus& b) { return esim.bus_value(b, g.vals[c]); }, out);
        if (out.hang) return;  // hang retire
      }
      if (c + 1 < n) esim.clock(g.vals[c], g.vals[c + 1]);
      // Early exit: past the last activating cycle with no combinational
      // divergence and no divergent state, the faulty machine equals the
      // golden one for the rest of the trace.
      if (c > last && !diverges && !esim.state_live()) break;
    }
    return;
  }

  Simulator sim(*nl_);
  sim.load_values(g.vals[first]);
  sim.set_fault(fault);
  for (std::size_t c = first; c < n; ++c) {
    drive_inputs(sim, t, c);
    sim.eval();
    if (cycle_is_issue(t, c)) {
      compare_outputs(t, c, g.vals[c],
                      [&](const PortBus& b) { return sim.bus_value(b); }, out);
      if (out.hang) return;  // hang retire
    }
    sim.clock();
  }
}

void UnitReplayer::run_fault_batch(std::span<const StuckFault> faults,
                                   const UnitTraces& t, const GoldenTrace& g,
                                   std::span<FaultCharacterization> out) const {
  if (num_cycles(t) == 0 || faults.empty()) return;
  const std::unique_ptr<BatchSim> sim = make_batch_sim(*nl_);
  run_fault_batch(*sim, faults, t, g, out);
}

void UnitReplayer::run_fault_batch(BatchSim& sim,
                                   std::span<const StuckFault> faults,
                                   const UnitTraces& t, const GoldenTrace& g,
                                   std::span<FaultCharacterization> out) const {
  const std::size_t n = num_cycles(t);
  const std::size_t lanes = faults.size();
  if (n == 0 || lanes == 0) return;

  if (lanes > sim.width())
    throw std::invalid_argument("run_fault_batch: more faults than lanes");
  sim.set_observed(ports_->observed);
  sim.begin(faults);

  // Lane-cycles advanced by the word engine: together with wall time this is
  // the lanes-simulated-per-second rate of the active SIMD path.
  static obs::Counter& lane_cycles = obs::counter("gate.lane_cycles");

  // Lanes hung by an earlier trace are retired before the replay starts;
  // from here on `live` mirrors sim.lane_mask().
  LaneMask live;
  for (std::size_t k = 0; k < lanes; ++k) {
    if (out[k].hang)
      sim.retire_lane(static_cast<unsigned>(k), g.vals[0]);
    else
      live.set(static_cast<unsigned>(k));
  }
  if (!live.any()) return;

  // With cone pruning on, only gates downstream of the batch's fault sites
  // are word-evaluated; every other net tracks the golden trace exactly, so
  // diff_observed/state_diff/retire restrict themselves to the cone too.
  const bool cone = sim.cone_active();

  const auto site = [&](std::size_t k) {
    return static_cast<std::size_t>(faults[k].net);
  };
  const auto stuck = [&](std::size_t k) -> std::uint8_t {
    return faults[k].stuck_high ? 1 : 0;
  };
  // Diverged lanes are classified by classify_batch: per-bus diff masks come
  // word-wide from the engine (they scale with the SIMD width), and only
  // instruction-word decodes remain scalar per lane. gate.classify_lanes
  // counts that residual scalar work.
  static obs::Counter& classify_lanes = obs::counter("gate.classify_lanes");
  const auto classify_diverged = [&](const LaneMask& diff, std::size_t c) {
    if (!diff.any()) return;
    classify_lanes.add(diff.count());
    classify_batch(sim, t, c, g.vals[c], diff, live, out);
  };

  if (kind_ == UnitKind::Decoder) {
    // Combinational: one word evaluation covers all live lanes per pattern.
    for (std::size_t c = 0; c < n && live.any(); ++c) {
      LaneMask act;  // lanes activated by this pattern
      for_each_lane(live, [&](unsigned k) {
        if (g.vals[c][site(k)] != stuck(k)) {
          act.set(k);
          out[k].activated = true;
        }
      });
      if (!act.any()) continue;
      drive_inputs(sim, t, c);
      if (cone)
        sim.eval_cone(g.vals[c]);
      else
        sim.eval();
      lane_cycles.add(lanes);
      classify_diverged(sim.diff_observed(g.vals[c]) & act, c);
    }
    return;
  }

  // Sequential: activation is a property of the golden trace alone, read
  // from the precomputed per-net windows. Before `first_any` every lane's
  // overlay is a no-op, so the replay can start from the golden snapshot.
  std::size_t first_any = n, last_any = 0;
  for_each_lane(live, [&](unsigned k) {
    const GoldenTrace::Window& win = g.windows[site(k)];
    const std::uint32_t first = stuck(k) ? win.first0 : win.first1;
    if (first == GoldenTrace::kNoCycle) return;
    out[k].activated = true;
    first_any = std::min<std::size_t>(first_any, first);
    last_any = std::max<std::size_t>(last_any,
                                     stuck(k) ? win.last0 : win.last1);
  });
  if (first_any == n) return;  // no live lane ever activates

  sim.load_broadcast(g.vals[first_any]);
  for (std::size_t c = first_any; c < n; ++c) {
    drive_inputs(sim, t, c);
    if (cone)
      sim.eval_cone(g.vals[c]);
    else
      sim.eval();
    lane_cycles.add(lanes);
    if (cycle_is_issue(t, c))
      classify_diverged(sim.diff_observed(g.vals[c]), c);
    if (!live.any()) break;
    if (c + 1 < n) {
      sim.clock();
      // All-quiet early exit: past the last activating cycle, lanes whose
      // DFF state matches the golden machine can never diverge again.
      if (c >= last_any && !sim.state_diff_lanes(g.vals[c + 1]).any()) break;
    }
  }
}

// ---------------------------------------------------------------------------
// Campaign driver
// ---------------------------------------------------------------------------

std::vector<StuckFault> sampled_fault_list(const Netlist& nl, UnitKind unit,
                                           std::size_t max_faults,
                                           std::uint64_t seed) {
  std::vector<StuckFault> faults = full_fault_list(nl);
  if (max_faults && faults.size() > max_faults) {
    Rng rng(seed ^ (static_cast<std::uint64_t>(unit) << 32));
    for (std::size_t i = 0; i < max_faults; ++i) {
      const std::size_t j = i + rng.below(faults.size() - i);
      std::swap(faults[i], faults[j]);
    }
    faults.resize(max_faults);
  }
  // Topological order keeps the fanout cones of each lane-width batch tight
  // and overlapping, which is what makes cone pruning (GPF_CONE) pay off.
  // The sort key is a strict total order, so the resulting id space is as
  // deterministic as the sample itself.
  const CompiledNetlist& cn = nl.compiled();
  std::sort(faults.begin(), faults.end(),
            [&](const StuckFault& a, const StuckFault& b) {
              const std::uint32_t ta = cn.topo_index[static_cast<std::size_t>(a.net)];
              const std::uint32_t tb = cn.topo_index[static_cast<std::size_t>(b.net)];
              if (ta != tb) return ta < tb;
              return a.stuck_high < b.stuck_high;
            });
  return faults;
}

void ActivationSummary::add(const UnitReplayer::GoldenTrace& g) {
  for (const std::vector<std::uint8_t>& vals : g.vals) {
    for (std::size_t i = 0; i < vals.size(); ++i) {
      if (vals[i])
        ever1[i] = 1;
      else
        ever0[i] = 1;
    }
  }
}

FaultCharacterization expand_collapsed(const FaultCharacterization& rep,
                                       const StuckFault& member,
                                       const ActivationSummary& act) {
  FaultCharacterization out;
  out.fault = member;
  out.error_counts = rep.error_counts;
  out.hang = rep.hang;
  // A hang proves the class diverged at the outputs, and divergence requires
  // activation of every member's site (an unactivated member is the golden
  // machine). Without a hang, the replay scanned every cycle of every trace,
  // so the engine's activated bit reduces to "the golden value ever differed
  // from the stuck value" — exactly the summary bits.
  out.activated = rep.hang ? true : act.activated(member);
  return out;
}

UnitCampaignResult run_unit_campaign(UnitKind unit, std::span<const UnitTraces> traces,
                                     std::size_t max_faults, std::uint64_t seed,
                                     ThreadPool* pool, EngineKind engine) {
  obs::TraceSpan unit_span("gate", std::string("unit ") + unit_name(unit));
  UnitReplayer replayer(unit);
  UnitCampaignResult result;
  result.unit = unit;
  result.full_fault_list_size = full_fault_list(replayer.netlist()).size();
  std::vector<StuckFault> faults =
      sampled_fault_list(replayer.netlist(), unit, max_faults, seed);

  result.faults.resize(faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) result.faults[i].fault = faults[i];

  // With collapsing on, only one representative per equivalence class is
  // simulated; every member's record is expanded from it afterwards. With it
  // off, the "representatives" are the campaign faults themselves.
  const bool collapse = collapse_enabled();
  std::vector<StuckFault> sim_faults;
  std::vector<std::uint32_t> rep_slot;  // campaign fault -> sim_faults index
  if (collapse) {
    const FaultCollapse col(replayer.netlist());
    std::unordered_map<std::uint32_t, std::uint32_t> slot_of_node;
    rep_slot.resize(faults.size());
    for (std::size_t i = 0; i < faults.size(); ++i) {
      const StuckFault rep = col.representative(faults[i]);
      const auto [it, inserted] = slot_of_node.try_emplace(
          FaultCollapse::node(rep), static_cast<std::uint32_t>(sim_faults.size()));
      if (inserted) sim_faults.push_back(rep);
      rep_slot[i] = it->second;
    }
  } else {
    sim_faults = faults;
  }

  std::vector<FaultCharacterization> sim_out(sim_faults.size());
  for (std::size_t j = 0; j < sim_faults.size(); ++j)
    sim_out[j].fault = sim_faults[j];
  ActivationSummary act(collapse ? replayer.netlist().num_nets() : 0);

  if (engine == EngineKind::Batch) {
    // Batch-major order: one engine per fault batch replays every trace, so
    // the engine's per-batch plan (fixups, patched stream, cone program) is
    // built once and reused across traces. Golden traces are shared by all
    // batches and precomputed up front.
    std::vector<UnitReplayer::GoldenTrace> goldens;
    goldens.reserve(traces.size());
    for (const UnitTraces& t : traces) {
      goldens.push_back(replayer.compute_golden(t));
      if (collapse) act.add(goldens.back());
    }
    const std::size_t kB = batch_lane_width();
    const std::size_t batches = (sim_faults.size() + kB - 1) / kB;
    auto work = [&](std::size_t b) {
      const std::size_t lo = b * kB;
      const std::size_t len = std::min(kB, sim_faults.size() - lo);
      const std::unique_ptr<BatchSim> sim =
          make_batch_sim(replayer.netlist());
      for (std::size_t ti = 0; ti < traces.size(); ++ti) {
        obs::TraceSpan batch_span("gate", "batch");
        batch_span.arg("lanes", len);
        replayer.run_fault_batch(*sim, std::span(sim_faults).subspan(lo, len),
                                 traces[ti], goldens[ti],
                                 std::span(sim_out).subspan(lo, len));
      }
    };
    if (pool)
      pool->parallel_for(batches, work);
    else
      for (std::size_t b = 0; b < batches; ++b) work(b);
  } else {
    for (const UnitTraces& t : traces) {
      const UnitReplayer::GoldenTrace g = replayer.compute_golden(t);
      if (collapse) act.add(g);
      auto work = [&](std::size_t i) {
        replayer.run_fault(sim_faults[i], t, g, sim_out[i], engine);
      };
      if (pool)
        pool->parallel_for(sim_faults.size(), work);
      else
        for (std::size_t i = 0; i < sim_faults.size(); ++i) work(i);
    }
  }

  if (collapse) {
    for (std::size_t i = 0; i < faults.size(); ++i)
      result.faults[i] = expand_collapsed(sim_out[rep_slot[i]], faults[i], act);
  } else {
    result.faults = std::move(sim_out);
  }
  // Collapse ratio = members / reps; faults_retired is the record stream.
  static obs::Counter& members = obs::counter("gate.collapse_members");
  static obs::Counter& reps = obs::counter("gate.collapse_reps");
  static obs::Counter& retired = obs::counter("gate.faults_retired");
  members.add(faults.size());
  reps.add(sim_faults.size());
  retired.add(result.faults.size());
  return result;
}

}  // namespace gpf::gate
