#include "gate/units.hpp"

#include "gate/wordops.hpp"
#include "isa/encoding.hpp"

namespace gpf::gate {

const char* unit_name(UnitKind u) {
  switch (u) {
    case UnitKind::Decoder: return "Decoder";
    case UnitKind::Fetch: return "Fetch";
    case UnitKind::WSC: return "WSC";
  }
  return "?";
}

namespace {

Word bufs(WordOps& w, const Word& in) {
  Word out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = w.netlist().buf(in[i]);
  return out;
}

/// OR of eq-comparators against each opcode in `ops`.
Net any_opcode(WordOps& w, const Word& opcode, std::initializer_list<isa::Op> ops) {
  Net acc = w.netlist().constant(false);
  for (isa::Op op : ops)
    acc = w.netlist().or_(acc, w.eq_const(opcode, static_cast<std::uint64_t>(op)));
  return acc;
}

}  // namespace

std::unique_ptr<Netlist> build_decoder_unit() {
  auto nl = std::make_unique<Netlist>();
  WordOps w(*nl);
  using isa::Op;
  namespace fld = isa::field;

  Word instr = w.inputs(64);
  Net fetch_valid = nl->input();
  nl->add_input_bus("instr", instr);
  nl->add_input_bus("fetch_valid", {fetch_valid});

  // Field extraction runs through buffer cells: the wiring fabric whose
  // stuck-at faults corrupt individual decoded field bits.
  const Word opcode = bufs(w, w.slice(instr, fld::kOpcodeLo, fld::kOpcodeW));
  const Word guard = bufs(w, w.slice(instr, fld::kPredLo, fld::kPredW));
  const Net guard_neg = nl->buf(instr[fld::kPredNeg]);
  const Net use_imm = nl->buf(instr[fld::kFlagImm]);
  const Word space = bufs(w, w.slice(instr, fld::kFlagSpaceLo, fld::kFlagSpaceW));
  const Word rd = bufs(w, w.slice(instr, fld::kRdLo, fld::kRdW));
  const Word rs1 = bufs(w, w.slice(instr, fld::kRs1Lo, fld::kRs1W));
  const Net not_imm = nl->not_(use_imm);
  const Word rs2 = w.and_bit(bufs(w, w.slice(instr, fld::kRs2Lo, fld::kRs2W)), not_imm);
  const Word rs3 = w.and_bit(bufs(w, w.slice(instr, fld::kRs3Lo, fld::kRs3W)), not_imm);
  const Word imm = w.and_bit(bufs(w, w.slice(instr, fld::kImmLo, fld::kImmW)), use_imm);

  // Opcode validity: one comparator per defined opcode, OR-reduced — this is
  // the structure a synthesized opcode ROM/decode PLA collapses to.
  Net known = nl->constant(false);
  for (int raw = 0; raw < 256; ++raw)
    if (isa::is_valid_opcode(static_cast<std::uint8_t>(raw)))
      known = nl->or_(known, w.eq_const(opcode, static_cast<std::uint64_t>(raw)));
  const Net valid = nl->and_(fetch_valid, known);

  const Net is_int = any_opcode(w, opcode,
      {Op::IADD, Op::ISUB, Op::IMUL, Op::IMAD, Op::IMIN, Op::IMAX, Op::IABS,
       Op::SHL, Op::SHR, Op::SHRA, Op::LOP_AND, Op::LOP_OR, Op::LOP_XOR,
       Op::LOP_NOT, Op::ISETP_LT, Op::ISETP_LE, Op::ISETP_GT, Op::ISETP_GE,
       Op::ISETP_EQ, Op::ISETP_NE, Op::ISETP_LTU, Op::ISETP_GEU});
  const Net is_fp32 = any_opcode(w, opcode,
      {Op::FADD, Op::FMUL, Op::FFMA, Op::FMIN, Op::FMAX, Op::F2I, Op::I2F,
       Op::FSETP_LT, Op::FSETP_LE, Op::FSETP_GT, Op::FSETP_GE, Op::FSETP_EQ,
       Op::FSETP_NE});
  const Net is_sfu =
      any_opcode(w, opcode, {Op::FSIN, Op::FEXP, Op::FRCP, Op::FSQRT, Op::FLG2});
  const Net is_load = any_opcode(w, opcode, {Op::LD});
  const Net is_store = any_opcode(w, opcode, {Op::ST});
  const Net is_mem = nl->or_(is_load, is_store);

  // Memory-resource selection stage: the decoder resolves the space field
  // into per-space read/write enables (global / shared / const / local),
  // a bank of gates whose faults misdirect operand loads (IMS) and result
  // stores (IMD) — a large decoder error class in the paper.
  const Word space_onehot = w.decode_onehot(space);
  Word rd_en(4), wr_en(4);
  for (unsigned sp = 0; sp < 4; ++sp) {
    rd_en[sp] = nl->buf(nl->and_(nl->and_(space_onehot[sp], is_load),
                                 nl->buf(space_onehot[sp])));
    wr_en[sp] = nl->buf(nl->and_(nl->and_(space_onehot[sp], is_store),
                                 nl->buf(space_onehot[sp])));
  }
  const Net is_branch = any_opcode(w, opcode, {Op::BRA});
  const Net is_ssy = any_opcode(w, opcode, {Op::SSY});
  const Net is_bar = any_opcode(w, opcode, {Op::BAR});
  const Net is_exit = any_opcode(w, opcode, {Op::EXIT});
  const Net is_s2r = any_opcode(w, opcode, {Op::S2R});
  const Net writes_pred = any_opcode(w, opcode,
      {Op::ISETP_LT, Op::ISETP_LE, Op::ISETP_GT, Op::ISETP_GE, Op::ISETP_EQ,
       Op::ISETP_NE, Op::ISETP_LTU, Op::ISETP_GEU, Op::FSETP_LT, Op::FSETP_LE,
       Op::FSETP_GT, Op::FSETP_GE, Op::FSETP_EQ, Op::FSETP_NE});

  nl->add_output_bus("valid", {valid});
  nl->add_output_bus("opcode", opcode);
  nl->add_output_bus("guard_pred", guard);
  nl->add_output_bus("guard_neg", {guard_neg});
  nl->add_output_bus("use_imm", {use_imm});
  nl->add_output_bus("space", space);
  nl->add_output_bus("rd", rd);
  nl->add_output_bus("rs1", rs1);
  nl->add_output_bus("rs2", rs2);
  nl->add_output_bus("rs3", rs3);
  nl->add_output_bus("imm", imm);
  nl->add_output_bus("is_int", {is_int});
  nl->add_output_bus("is_fp32", {is_fp32});
  nl->add_output_bus("is_sfu", {is_sfu});
  nl->add_output_bus("is_mem", {is_mem});
  nl->add_output_bus("is_store", {is_store});
  nl->add_output_bus("is_branch", {is_branch});
  nl->add_output_bus("is_ssy", {is_ssy});
  nl->add_output_bus("is_bar", {is_bar});
  nl->add_output_bus("is_exit", {is_exit});
  nl->add_output_bus("writes_pred", {writes_pred});
  nl->add_output_bus("is_s2r", {is_s2r});
  nl->add_output_bus("mem_rd_en", rd_en);
  nl->add_output_bus("mem_wr_en", wr_en);
  nl->finalize();
  return nl;
}

std::unique_ptr<Netlist> build_fetch_unit() {
  auto nl = std::make_unique<Netlist>();
  WordOps w(*nl);

  Word sel_slot = w.inputs(3);
  Net sel_valid = nl->input();
  Word instr_in = w.inputs(64);
  Net redirect_en = nl->input();
  Word redirect_pc = w.inputs(kPcBits);
  Net pc_wr_en = nl->input();
  Net init_en = nl->input();
  Word init_slot = w.inputs(3);
  Word init_pc = w.inputs(kPcBits);
  nl->add_input_bus("sel_slot", sel_slot);
  nl->add_input_bus("sel_valid", {sel_valid});
  nl->add_input_bus("instr_in", instr_in);
  nl->add_input_bus("redirect_en", {redirect_en});
  nl->add_input_bus("redirect_pc", redirect_pc);
  nl->add_input_bus("pc_wr_en", {pc_wr_en});
  nl->add_input_bus("init_en", {init_en});
  nl->add_input_bus("init_slot", init_slot);
  nl->add_input_bus("init_pc", init_pc);

  // Warp-select lines travel through buffers (internal wiring fault sites —
  // a stuck select bit fetches another warp's PC: the IAW mechanism).
  const Word sel_buf = bufs(w, sel_slot);

  // Per-warp PC register bank with late-bound D inputs (feedback loop).
  std::vector<Word> pcs(kUnitWarps);
  for (unsigned i = 0; i < kUnitWarps; ++i) {
    pcs[i].resize(kPcBits);
    for (unsigned b = 0; b < kPcBits; ++b) pcs[i][b] = nl->dff();
  }

  const Word pc_out = bufs(w, w.mux_tree(sel_buf, pcs));
  const Word inc = w.increment(pc_out);
  const Word next_pc = w.mux(redirect_en, inc, redirect_pc);
  const Word wr_data = w.mux(init_en, next_pc, init_pc);
  const Word wr_slot = w.mux(init_en, sel_buf, init_slot);
  const Word wr_onehot = w.decode_onehot(wr_slot);
  const Net wr_en = nl->or_(nl->and_(sel_valid, pc_wr_en), init_en);
  for (unsigned i = 0; i < kUnitWarps; ++i) {
    const Net en_i = nl->and_(wr_en, wr_onehot[i]);
    for (unsigned b = 0; b < kPcBits; ++b)
      nl->set_dff_input(pcs[i][b], wr_data[b], en_i);
  }

  // Instruction bus: the fetched word passes through the instruction buffer
  // fabric (buffer cells) — faults here corrupt the machine word itself.
  const Word instr_out = bufs(w, instr_in);
  const Net fetch_valid = nl->buf(sel_valid);

  nl->add_output_bus("pc_out", pc_out);
  nl->add_output_bus("instr_out", instr_out);
  nl->add_output_bus("fetch_valid", {fetch_valid});
  nl->finalize();
  return nl;
}

std::unique_ptr<Netlist> build_wsc_unit() {
  auto nl = std::make_unique<Netlist>();
  WordOps w(*nl);

  Word wr_slot = w.inputs(3);
  Net wr_state_en = nl->input();
  Net wr_valid = nl->input();
  Net wr_done = nl->input();
  Net wr_barrier = nl->input();
  Net wr_mask_en = nl->input();
  Word wr_mask = w.inputs(32);
  Net wr_base_en = nl->input();
  Word wr_base = w.inputs(8);
  Net wr_cta_en = nl->input();
  Word wr_cta = w.inputs(4);
  Net lane_cfg_en = nl->input();
  Word lane_cfg_in = w.inputs(32);
  Net barrier_release = nl->input();
  Net ibuf_en = nl->input();
  Word ibuf_in = w.inputs(64);
  Net issue_en = nl->input();
  nl->add_input_bus("wr_slot", wr_slot);
  nl->add_input_bus("wr_state_en", {wr_state_en});
  nl->add_input_bus("wr_valid", {wr_valid});
  nl->add_input_bus("wr_done", {wr_done});
  nl->add_input_bus("wr_barrier", {wr_barrier});
  nl->add_input_bus("wr_mask_en", {wr_mask_en});
  nl->add_input_bus("wr_mask", wr_mask);
  nl->add_input_bus("wr_base_en", {wr_base_en});
  nl->add_input_bus("wr_base", wr_base);
  nl->add_input_bus("wr_cta_en", {wr_cta_en});
  nl->add_input_bus("wr_cta", wr_cta);
  nl->add_input_bus("lane_cfg_en", {lane_cfg_en});
  nl->add_input_bus("lane_cfg", lane_cfg_in);
  nl->add_input_bus("barrier_release", {barrier_release});
  nl->add_input_bus("ibuf_en", {ibuf_en});
  nl->add_input_bus("ibuf_in", ibuf_in);
  nl->add_input_bus("issue_en", {issue_en});

  const Word wr_onehot = w.decode_onehot(wr_slot);

  // Warp state table.
  std::vector<Net> valid_q(kUnitWarps), done_q(kUnitWarps), barrier_q(kUnitWarps);
  std::vector<Word> mask_q(kUnitWarps), base_q(kUnitWarps), cta_q(kUnitWarps);
  for (unsigned i = 0; i < kUnitWarps; ++i) {
    const Net wr_i = nl->and_(wr_state_en, wr_onehot[i]);
    valid_q[i] = nl->dff(wr_valid, wr_i);
    done_q[i] = nl->dff(wr_done, wr_i);
    // Barrier bit: set/cleared by state writes, force-cleared on release.
    const Net bar_d = nl->mux(barrier_release, wr_barrier, nl->constant(false));
    barrier_q[i] = nl->dff(bar_d, nl->or_(wr_i, barrier_release));

    const Net wm_i = nl->and_(wr_mask_en, wr_onehot[i]);
    mask_q[i].resize(32);
    for (unsigned b = 0; b < 32; ++b) mask_q[i][b] = nl->dff(wr_mask[b], wm_i);

    const Net wb_i = nl->and_(wr_base_en, wr_onehot[i]);
    base_q[i].resize(8);
    for (unsigned b = 0; b < 8; ++b) base_q[i][b] = nl->dff(wr_base[b], wb_i);

    const Net wc_i = nl->and_(wr_cta_en, wr_onehot[i]);
    cta_q[i].resize(4);
    for (unsigned b = 0; b < 4; ++b) cta_q[i][b] = nl->dff(wr_cta[b], wc_i);
  }

  // Lane-enable configuration register (normally all ones).
  Word lane_cfg(32);
  for (unsigned b = 0; b < 32; ++b) lane_cfg[b] = nl->dff(lane_cfg_in[b], lane_cfg_en);

  // Ready lines and the rotating-priority arbiter.
  Word ready(kUnitWarps);
  for (unsigned i = 0; i < kUnitWarps; ++i)
    ready[i] = nl->and_(valid_q[i], nl->and_(nl->not_(done_q[i]), nl->not_(barrier_q[i])));

  Word rr_ptr(3);
  for (unsigned b = 0; b < 3; ++b) rr_ptr[b] = nl->dff();
  const WordOps::Arbiter arb = w.rr_arbiter(ready, rr_ptr);
  const Word sel_slot = w.encode_priority(arb.grant_onehot, 3);
  const Net sel_valid = arb.any;

  // Pointer advances past the granted slot on every issue cycle.
  const Word ptr_next = w.increment(sel_slot);
  const Net ptr_en = nl->and_(sel_valid, issue_en);
  for (unsigned b = 0; b < 3; ++b) nl->set_dff_input(rr_ptr[b], ptr_next[b], ptr_en);

  // Output muxes for the selected warp's state.
  const Word mask_out = bufs(w, w.mux_tree(sel_slot, mask_q));
  const Word lane_en = bufs(w, lane_cfg);
  const Word active_lanes = w.and_(mask_out, lane_en);
  const Word base_out = bufs(w, w.mux_tree(sel_slot, base_q));
  const Word cta_out = bufs(w, w.mux_tree(sel_slot, cta_q));

  // Dispatch instruction buffer: the instruction the WSC is issuing travels
  // through this stage (flow-through register with bypass). Faults here give
  // the scheduler its IOC/IRA/IVRA error population, exactly as the paper
  // observes for the WSC.
  Word ibuf_q(64);
  for (unsigned b = 0; b < 64; ++b) ibuf_q[b] = nl->dff(ibuf_in[b], ibuf_en);
  const Word dispatch = bufs(w, w.mux(ibuf_en, ibuf_q, ibuf_in));

  nl->add_output_bus("sel_slot", sel_slot);
  nl->add_output_bus("sel_valid", {sel_valid});
  nl->add_output_bus("mask_out", mask_out);
  nl->add_output_bus("lane_en", lane_en);
  nl->add_output_bus("active_lanes", active_lanes);
  nl->add_output_bus("base_out", base_out);
  nl->add_output_bus("cta_out", cta_out);
  nl->add_output_bus("dispatch", dispatch);
  nl->finalize();
  return nl;
}

std::unique_ptr<Netlist> build_fp32_core() {
  auto nl = std::make_unique<Netlist>();
  WordOps w(*nl);

  Word a = w.inputs(32), b = w.inputs(32), c = w.inputs(32);
  nl->add_input_bus("a", a);
  nl->add_input_bus("b", b);
  nl->add_input_bus("c", c);

  // Unpack mantissas with hidden bits.
  Word ma = w.slice(a, 0, 23);
  ma.push_back(nl->constant(true));
  Word mb = w.slice(b, 0, 23);
  mb.push_back(nl->constant(true));
  Word mc = w.slice(c, 0, 23);
  mc.push_back(nl->constant(true));
  const Word ea = w.slice(a, 23, 8), eb = w.slice(b, 23, 8), ec = w.slice(c, 23, 8);

  // 24x24 multiplier as a shift-add array (the structure a synthesized
  // array multiplier flattens to).
  Word prod = w.constant(0, 48);
  for (unsigned i = 0; i < 24; ++i) {
    Word partial = w.constant(0, 48);
    for (unsigned j = 0; j < 24; ++j)
      partial[i + j] = nl->and_(ma[j], mb[i]);
    prod = w.add(prod, partial);
  }

  // Exponent datapath: ea + eb and alignment distance vs ec.
  const Word esum = w.add(ea, eb, kNoNet, true);
  Word ecx = ec;
  ecx.push_back(nl->constant(false));
  const Word ediff = w.add(esum, w.not_(ecx), nl->constant(true));

  // Alignment barrel shifter for the addend (6 mux stages over 48 bits).
  Word addend = mc;
  addend.resize(48, nl->constant(false));
  for (unsigned s = 0; s < 6; ++s) {
    Word shifted(48);
    const unsigned k = 1u << s;
    for (unsigned i = 0; i < 48; ++i)
      shifted[i] = i + k < 48 ? addend[i + k] : nl->constant(false);
    addend = w.mux(ediff[s], addend, shifted);
  }

  // Wide significand adder and normalization (priority select + shifter).
  const Word sum = w.add(prod, addend, kNoNet, true);
  Word norm = w.slice(sum, 0, 48);
  for (unsigned s = 0; s < 6; ++s) {
    Word shifted(48);
    const unsigned k = 1u << s;
    for (unsigned i = 0; i < 48; ++i)
      shifted[i] = i >= k ? norm[i - k] : nl->constant(false);
    norm = w.mux(norm[47 - (1u << s) % 48], norm, shifted);
  }

  // Round-to-nearest incrementer and result pack.
  const Word mant = w.slice(norm, 24, 24);
  const Word rounded = w.add(mant, w.constant(0, 23), norm[23], true);
  Word result(32);
  for (unsigned i = 0; i < 23; ++i) result[i] = nl->buf(rounded[i]);
  for (unsigned i = 0; i < 8; ++i) result[23 + i] = nl->buf(esum[i]);
  result[31] = nl->xor_(a[31], b[31]);
  nl->add_output_bus("result", result);
  nl->finalize();
  return nl;
}

std::unique_ptr<Netlist> build_unit(UnitKind u) {
  switch (u) {
    case UnitKind::Decoder: return build_decoder_unit();
    case UnitKind::Fetch: return build_fetch_unit();
    case UnitKind::WSC: return build_wsc_unit();
  }
  return nullptr;
}

}  // namespace gpf::gate
