#include "gate/wordops.hpp"

#include <stdexcept>

namespace gpf::gate {

Word WordOps::inputs(unsigned width) {
  Word w(width);
  for (auto& n : w) n = nl_.input();
  return w;
}

Word WordOps::constant(std::uint64_t value, unsigned width) {
  Word w(width);
  for (unsigned i = 0; i < width; ++i) w[i] = nl_.constant((value >> i) & 1);
  return w;
}

Word WordOps::slice(const Word& w, unsigned lo, unsigned width) const {
  if (lo + width > w.size()) throw std::out_of_range("slice");
  return Word(w.begin() + lo, w.begin() + lo + width);
}

Word WordOps::not_(const Word& a) {
  Word out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = nl_.not_(a[i]);
  return out;
}

Word WordOps::and_(const Word& a, const Word& b) {
  Word out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = nl_.and_(a[i], b[i]);
  return out;
}

Word WordOps::or_(const Word& a, const Word& b) {
  Word out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = nl_.or_(a[i], b[i]);
  return out;
}

Word WordOps::xor_(const Word& a, const Word& b) {
  Word out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = nl_.xor_(a[i], b[i]);
  return out;
}

Word WordOps::and_bit(const Word& a, Net bit) {
  Word out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = nl_.and_(a[i], bit);
  return out;
}

Word WordOps::mux(Net sel, const Word& when0, const Word& when1) {
  Word out(when0.size());
  for (std::size_t i = 0; i < when0.size(); ++i)
    out[i] = nl_.mux(sel, when0[i], when1[i]);
  return out;
}

Net WordOps::reduce_and(const Word& a) {
  if (a.empty()) return nl_.constant(true);
  Net acc = a[0];
  for (std::size_t i = 1; i < a.size(); ++i) acc = nl_.and_(acc, a[i]);
  return acc;
}

Net WordOps::reduce_or(const Word& a) {
  if (a.empty()) return nl_.constant(false);
  Net acc = a[0];
  for (std::size_t i = 1; i < a.size(); ++i) acc = nl_.or_(acc, a[i]);
  return acc;
}

Net WordOps::parity(const Word& a) {
  if (a.empty()) return nl_.constant(false);
  Net acc = a[0];
  for (std::size_t i = 1; i < a.size(); ++i) acc = nl_.xor_(acc, a[i]);
  return acc;
}

Net WordOps::eq_const(const Word& a, std::uint64_t k) {
  Word matched(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    matched[i] = ((k >> i) & 1) ? a[i] : nl_.not_(a[i]);
  return reduce_and(matched);
}

Net WordOps::eq(const Word& a, const Word& b) {
  Word x(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) x[i] = nl_.xnor_(a[i], b[i]);
  return reduce_and(x);
}

Net WordOps::lt_const(const Word& a, std::uint64_t k) {
  // a < k: scan from MSB; result = OR over positions where k has 1, a has 0,
  // and all higher bits are equal.
  Net lt = nl_.constant(false);
  Net eq_so_far = nl_.constant(true);
  for (int i = static_cast<int>(a.size()) - 1; i >= 0; --i) {
    const bool kb = (k >> i) & 1;
    const Net ai = a[static_cast<std::size_t>(i)];
    if (kb) {
      lt = nl_.or_(lt, nl_.and_(eq_so_far, nl_.not_(ai)));
      eq_so_far = nl_.and_(eq_so_far, ai);
    } else {
      eq_so_far = nl_.and_(eq_so_far, nl_.not_(ai));
    }
  }
  return lt;
}

Word WordOps::add(const Word& a, const Word& b, Net cin, bool with_carry) {
  Net carry = cin == kNoNet ? nl_.constant(false) : cin;
  Word out;
  out.reserve(a.size() + (with_carry ? 1 : 0));
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Net axb = nl_.xor_(a[i], b[i]);
    out.push_back(nl_.xor_(axb, carry));
    carry = nl_.or_(nl_.and_(a[i], b[i]), nl_.and_(axb, carry));
  }
  if (with_carry) out.push_back(carry);
  return out;
}

Word WordOps::increment(const Word& a) {
  return add(a, constant(1, static_cast<unsigned>(a.size())));
}

Word WordOps::decode_onehot(const Word& sel) {
  const unsigned n = 1u << sel.size();
  Word out(n);
  for (unsigned v = 0; v < n; ++v) out[v] = eq_const(sel, v);
  return out;
}

Word WordOps::encode_priority(const Word& onehot, unsigned out_bits) {
  // Priority: lowest index wins. valid_i = onehot_i & !any_lower.
  Word out(out_bits, kNoNet);
  for (unsigned b = 0; b < out_bits; ++b) out[b] = nl_.constant(false);
  Net taken = nl_.constant(false);
  for (std::size_t i = 0; i < onehot.size(); ++i) {
    const Net sel_i = nl_.and_(onehot[i], nl_.not_(taken));
    for (unsigned b = 0; b < out_bits; ++b)
      if ((i >> b) & 1) out[b] = nl_.or_(out[b], sel_i);
    taken = nl_.or_(taken, onehot[i]);
  }
  return out;
}

Word WordOps::mux_tree(const Word& sel, const std::vector<Word>& options) {
  if (options.empty()) throw std::invalid_argument("mux_tree: no options");
  std::vector<Word> layer = options;
  for (std::size_t s = 0; s < sel.size(); ++s) {
    std::vector<Word> next;
    next.reserve((layer.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2)
      next.push_back(mux(sel[s], layer[i], layer[i + 1]));
    if (layer.size() % 2 == 1) next.push_back(layer.back());
    layer = std::move(next);
  }
  return layer[0];
}

WordOps::RegBank WordOps::reg_bank(unsigned count, unsigned width,
                                   const Word& write_sel_onehot, Net write_en,
                                   const Word& write_data) {
  RegBank bank;
  bank.regs.resize(count);
  for (unsigned r = 0; r < count; ++r) {
    const Net en = nl_.and_(write_en, write_sel_onehot[r]);
    Word q(width);
    for (unsigned b = 0; b < width; ++b) q[b] = nl_.dff(write_data[b], en);
    bank.regs[r] = std::move(q);
  }
  return bank;
}

WordOps::Arbiter WordOps::rr_arbiter(const Word& requests, const Word& pointer) {
  // grant_i = req_i & no request granted earlier in rotated order.
  // Implemented with an explicit rotated priority chain: for each possible
  // pointer value p, compute the grant under that rotation, then select by
  // the decoded pointer — this is how small synthesized arbiters look after
  // flattening.
  const unsigned n = static_cast<unsigned>(requests.size());
  const Word ptr_onehot = decode_onehot(pointer);
  std::vector<Word> grants_per_ptr;
  grants_per_ptr.reserve(n);
  for (unsigned p = 0; p < n; ++p) {
    Word grant(n);
    Net taken = nl_.constant(false);
    for (unsigned k = 0; k < n; ++k) {
      const unsigned i = (p + k) % n;
      grant[i] = nl_.and_(requests[i], nl_.not_(taken));
      taken = nl_.or_(taken, requests[i]);
    }
    grants_per_ptr.push_back(std::move(grant));
  }
  // Select the rotation matching the pointer.
  Word grant(n);
  for (unsigned i = 0; i < n; ++i) {
    Net acc = nl_.constant(false);
    for (unsigned p = 0; p < n; ++p)
      acc = nl_.or_(acc, nl_.and_(ptr_onehot[p], grants_per_ptr[p][i]));
    grant[i] = acc;
  }
  return Arbiter{grant, reduce_or(requests)};
}

}  // namespace gpf::gate
