// Gate-level netlist substrate. Units under test (decoder, fetch, WSC) are
// built as real netlists of 2-input gates, muxes, and D flip-flops; stuck-at
// faults are enumerated on every net, exactly like a collapsed stuck-at list
// over a synthesized standard-cell design.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace gpf::gate {

struct CompiledNetlist;
struct GateProgram;

enum class GateKind : std::uint8_t {
  Input,   ///< primary input (value set externally)
  Const0,
  Const1,
  Buf,
  Not,
  And,
  Or,
  Nand,
  Nor,
  Xor,
  Xnor,
  Mux,     ///< a = select, b = when-0, c = when-1
  Dff,     ///< a = D input, b = enable net (-1 = always enabled)
};

/// Net id == index of the gate driving it.
using Net = std::int32_t;
inline constexpr Net kNoNet = -1;

struct Gate {
  GateKind kind = GateKind::Const0;
  Net a = kNoNet, b = kNoNet, c = kNoNet;
};

/// A named bundle of nets (a port or an observable internal bus).
struct PortBus {
  std::string name;
  std::vector<Net> nets;
};

class Netlist {
 public:
  // -- construction -------------------------------------------------------
  Net input();
  Net constant(bool v);
  Net buf(Net a);
  Net not_(Net a);
  Net and_(Net a, Net b);
  Net or_(Net a, Net b);
  Net nand_(Net a, Net b);
  Net nor_(Net a, Net b);
  Net xor_(Net a, Net b);
  Net xnor_(Net a, Net b);
  /// mux(s, a, b) = s ? b : a.
  Net mux(Net s, Net a, Net b);
  /// D flip-flop; `enable == kNoNet` clocks every cycle.
  Net dff(Net d = kNoNet, Net enable = kNoNet);
  /// Late-bind a DFF's D input / enable (for feedback loops).
  void set_dff_input(Net dff_net, Net d, Net enable = kNoNet);

  // -- ports -------------------------------------------------------------
  void add_input_bus(const std::string& name, std::vector<Net> nets);
  void add_output_bus(const std::string& name, std::vector<Net> nets);
  const PortBus* find_input(const std::string& name) const;
  const PortBus* find_output(const std::string& name) const;
  const std::vector<PortBus>& inputs() const { return inputs_; }
  const std::vector<PortBus>& outputs() const { return outputs_; }

  // -- finalize / query -----------------------------------------------
  /// Compute the levelized evaluation order. Must be called before simulation.
  void finalize();
  bool finalized() const { return finalized_; }

  std::size_t num_nets() const { return gates_.size(); }
  const Gate& gate(Net n) const { return gates_[static_cast<std::size_t>(n)]; }
  const std::vector<Net>& eval_order() const { return eval_order_; }
  const std::vector<Net>& dffs() const { return dffs_; }
  /// Constant nets and their values, collected by finalize() so simulators
  /// can refresh them without rescanning the whole netlist.
  const std::vector<std::pair<Net, std::uint8_t>>& constants() const {
    return constants_;
  }
  /// Flat SoA program + CSR fan-out lowered by finalize(); the simulators
  /// execute this instead of chasing gate(n) through eval_order().
  const CompiledNetlist& compiled() const;

  /// Optimized executable gate program (gate/gateprog.hpp) lowered from the
  /// compiled form by finalize(): the folded 1:1 `full` stream every engine
  /// shares, plus the fused/DCE'd/register-allocated `fused` stream the batch
  /// engine and JIT run.
  const GateProgram& program() const;

  /// Total combinational + sequential cell count (excludes Input/Const).
  std::size_t cell_count() const;
  /// Area estimate in um^2 from per-cell areas of a 15nm-class library.
  double area_um2() const;

 private:
  Net add(GateKind k, Net a = kNoNet, Net b = kNoNet, Net c = kNoNet);

  std::vector<Gate> gates_;
  std::vector<Net> dffs_;
  std::vector<Net> eval_order_;
  std::vector<std::pair<Net, std::uint8_t>> constants_;
  // shared_ptr so Netlist stays copyable; the compiled form is immutable.
  std::shared_ptr<const CompiledNetlist> compiled_;
  std::shared_ptr<const GateProgram> program_;
  std::vector<PortBus> inputs_;
  std::vector<PortBus> outputs_;
  bool finalized_ = false;
};

/// Per-cell area (um^2) used for the Table 3 reproduction.
double cell_area_um2(GateKind k);

}  // namespace gpf::gate
