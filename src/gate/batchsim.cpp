#include "gate/batchsim.hpp"

#include <algorithm>
#include <stdexcept>

namespace gpf::gate {

namespace {

inline std::uint64_t broadcast(std::uint8_t bit) {
  return bit ? ~std::uint64_t{0} : std::uint64_t{0};
}

}  // namespace

BatchFaultSim::BatchFaultSim(const Netlist& nl)
    : nl_(nl),
      val_(nl.num_nets(), 0),
      force0_(nl.num_nets(), 0),
      force1_(nl.num_nets(), 0),
      dff_next_(nl.dffs().size(), 0) {
  if (!nl.finalized()) throw std::logic_error("netlist not finalized");
}

void BatchFaultSim::begin(std::span<const StuckFault> faults) {
  if (faults.size() > kLanes) throw std::invalid_argument("more than 64 faults");
  for (const Net n : forced_nets_) {
    force0_[static_cast<std::size_t>(n)] = 0;
    force1_[static_cast<std::size_t>(n)] = 0;
  }
  forced_nets_.clear();
  source_sites_.clear();
  sites_.clear();
  lane_mask_ = 0;
  std::fill(val_.begin(), val_.end(), 0);

  for (std::size_t k = 0; k < faults.size(); ++k) {
    const StuckFault& f = faults[k];
    const auto site = static_cast<std::size_t>(f.net);
    const std::uint64_t bit = std::uint64_t{1} << k;
    sites_.push_back(f.net);
    lane_mask_ |= bit;
    if (force0_[site] == 0 && force1_[site] == 0) forced_nets_.push_back(f.net);
    (f.stuck_high ? force1_ : force0_)[site] |= bit;
    const GateKind kind = nl_.gate(f.net).kind;
    if (kind == GateKind::Input || kind == GateKind::Const0 ||
        kind == GateKind::Const1 || kind == GateKind::Dff)
      source_sites_.push_back(f.net);
  }
}

void BatchFaultSim::load_broadcast(const std::vector<std::uint8_t>& vals) {
  for (std::size_t i = 0; i < val_.size(); ++i) val_[i] = broadcast(vals[i]);
}

void BatchFaultSim::set_bus(const PortBus& bus, std::uint64_t value) {
  for (std::size_t i = 0; i < bus.nets.size(); ++i)
    val_[static_cast<std::size_t>(bus.nets[i])] = broadcast((value >> i) & 1);
}

void BatchFaultSim::apply_source_overlays() {
  for (const Net n : source_sites_) {
    const auto i = static_cast<std::size_t>(n);
    val_[i] = (val_[i] & ~force0_[i]) | force1_[i];
  }
}

void BatchFaultSim::eval() {
  for (const auto& [n, v] : nl_.constants())
    val_[static_cast<std::size_t>(n)] = broadcast(v);
  apply_source_overlays();

  for (const Net n : nl_.eval_order()) {
    const Gate& g = nl_.gate(n);
    const auto va = [&](Net x) { return val_[static_cast<std::size_t>(x)]; };
    std::uint64_t v = 0;
    switch (g.kind) {
      case GateKind::Buf: v = va(g.a); break;
      case GateKind::Not: v = ~va(g.a); break;
      case GateKind::And: v = va(g.a) & va(g.b); break;
      case GateKind::Or: v = va(g.a) | va(g.b); break;
      case GateKind::Nand: v = ~(va(g.a) & va(g.b)); break;
      case GateKind::Nor: v = ~(va(g.a) | va(g.b)); break;
      case GateKind::Xor: v = va(g.a) ^ va(g.b); break;
      case GateKind::Xnor: v = ~(va(g.a) ^ va(g.b)); break;
      case GateKind::Mux: {
        const std::uint64_t s = va(g.a);
        v = (s & va(g.c)) | (~s & va(g.b));
        break;
      }
      default: continue;
    }
    const auto i = static_cast<std::size_t>(n);
    val_[i] = (v & ~force0_[i]) | force1_[i];
  }
}

void BatchFaultSim::clock() {
  const std::vector<Net>& dffs = nl_.dffs();
  for (std::size_t i = 0; i < dffs.size(); ++i) {
    const Gate& g = nl_.gate(dffs[i]);
    const std::uint64_t en =
        g.b == kNoNet ? ~std::uint64_t{0} : val_[static_cast<std::size_t>(g.b)];
    const std::uint64_t cur = val_[static_cast<std::size_t>(dffs[i])];
    const std::uint64_t d =
        g.a == kNoNet ? cur : val_[static_cast<std::size_t>(g.a)];
    dff_next_[i] = (en & d) | (~en & cur);
  }
  for (std::size_t i = 0; i < dffs.size(); ++i)
    val_[static_cast<std::size_t>(dffs[i])] = dff_next_[i];
  apply_source_overlays();
}

std::uint64_t BatchFaultSim::bus_value(const PortBus& bus, unsigned lane) const {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bus.nets.size(); ++i)
    if (value(bus.nets[i], lane)) v |= std::uint64_t{1} << i;
  return v;
}

std::uint64_t BatchFaultSim::diff_lanes(
    std::span<const Net> nets, const std::vector<std::uint8_t>& golden) const {
  std::uint64_t m = 0;
  for (const Net n : nets) {
    const auto i = static_cast<std::size_t>(n);
    m |= val_[i] ^ broadcast(golden[i]);
  }
  return m & lane_mask_;
}

std::uint64_t BatchFaultSim::state_diff_lanes(
    const std::vector<std::uint8_t>& golden) const {
  std::uint64_t m = 0;
  for (const Net n : nl_.dffs()) {
    const auto i = static_cast<std::size_t>(n);
    m |= val_[i] ^ broadcast(golden[i]);
  }
  return m & lane_mask_;
}

void BatchFaultSim::retire_lane(unsigned lane,
                                const std::vector<std::uint8_t>& golden) {
  const std::uint64_t bit = std::uint64_t{1} << lane;
  const auto site = static_cast<std::size_t>(sites_[lane]);
  force0_[site] &= ~bit;
  force1_[site] &= ~bit;
  lane_mask_ &= ~bit;
  for (std::size_t i = 0; i < val_.size(); ++i)
    val_[i] = (val_[i] & ~bit) | (broadcast(golden[i]) & bit);
}

}  // namespace gpf::gate
