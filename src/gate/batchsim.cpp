// Runtime SIMD dispatch for the batch engine. The per-width engines live in
// batchsim{64,256,512}.cpp (each compiled with its own target flags); this
// baseline TU decides which one a campaign gets:
//
//   set_batch_lanes_override(w)   tests/benches pin a width in-process
//   GPF_LANES=64|256|512          pin a width from the environment
//   GPF_SIMD=scalar|avx2|avx512   name a path (scalar = 64 lanes, ...)
//   (default)                     widest path the CPU supports (cpuid)
//
// A pinned width that this build or CPU cannot run falls back to the widest
// supported width at or below the request, with a one-line stderr warning —
// never a crash. All widths classify identically and produce byte-identical
// campaign exports (asserted by test_batchsim / test_gate_experiments).
#include "gate/batchsim.hpp"

#include <atomic>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "common/env.hpp"
#include "obs/metrics.hpp"

namespace gpf::gate {

std::unique_ptr<BatchSim> make_batch_sim_64(const Netlist& nl);
#ifdef GPF_HAVE_BATCH256
std::unique_ptr<BatchSim> make_batch_sim_256(const Netlist& nl);
#endif
#ifdef GPF_HAVE_BATCH512
std::unique_ptr<BatchSim> make_batch_sim_512(const Netlist& nl);
#endif

namespace {

std::atomic<std::size_t> g_lanes_override{0};
std::atomic<bool> g_legacy_engine{false};

bool cpu_supports_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool cpu_supports_avx512f() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx512f");
#else
  return false;
#endif
}

}  // namespace

bool batch_width_supported(std::size_t lanes) {
  switch (lanes) {
    case 64:
      return true;
#ifdef GPF_HAVE_BATCH256
    case 256:
      return cpu_supports_avx2();
#endif
#ifdef GPF_HAVE_BATCH512
    case 512:
      return cpu_supports_avx512f();
#endif
    default:
      return false;
  }
}

const char* batch_simd_path(std::size_t lanes) {
  switch (lanes) {
    case 64: return "scalar64";
    case 256: return "avx2x256";
    case 512: return "avx512x512";
  }
  return "?";
}

void set_batch_lanes_override(std::size_t lanes) {
  if (lanes != 0 && !batch_width_supported(lanes))
    throw std::invalid_argument("set_batch_lanes_override: width " +
                                std::to_string(lanes) +
                                " not supported by this build/CPU");
  g_lanes_override.store(lanes, std::memory_order_relaxed);
}

void set_batch_legacy_engine(bool on) {
  g_legacy_engine.store(on, std::memory_order_relaxed);
}

bool batch_legacy_engine() {
  return g_legacy_engine.load(std::memory_order_relaxed);
}

std::size_t batch_lane_width() {
  if (const std::size_t o = g_lanes_override.load(std::memory_order_relaxed))
    return o;
  static const std::size_t dispatched = [] {
    // GPF_LANES pins an exact width; GPF_SIMD names a path; otherwise take
    // the widest path this build and CPU support.
    std::size_t want = lanes_request();
    bool pinned = want != 0;
    if (!want) {
      switch (simd_request()) {
        case SimdKind::Scalar: want = 64; pinned = true; break;
        case SimdKind::Avx2: want = 256; pinned = true; break;
        case SimdKind::Avx512: want = 512; pinned = true; break;
        case SimdKind::Native: want = 512; break;
      }
    }
    std::size_t w = 64;
    if (want >= 256 && batch_width_supported(256)) w = 256;
    if (want >= 512 && batch_width_supported(512)) w = 512;
    if (pinned && w != want)
      std::fprintf(stderr,
                   "[gpf] requested batch lane width %zu unavailable on this "
                   "build/CPU; using %zu (%s)\n",
                   want, w, batch_simd_path(w));
    return w;
  }();
  return dispatched;
}

std::unique_ptr<BatchSim> make_batch_sim(const Netlist& nl, std::size_t lanes) {
  // Active width is observable: campaigns at any scale publish which SIMD
  // path their batches run on.
  static obs::Gauge& g = obs::gauge("gate.batch.lanes");
  g.set(static_cast<std::int64_t>(lanes));
  switch (lanes) {
    case 64:
      return make_batch_sim_64(nl);
#ifdef GPF_HAVE_BATCH256
    case 256:
      if (cpu_supports_avx2()) return make_batch_sim_256(nl);
      break;
#endif
#ifdef GPF_HAVE_BATCH512
    case 512:
      if (cpu_supports_avx512f()) return make_batch_sim_512(nl);
      break;
#endif
    default:
      break;
  }
  throw std::invalid_argument("make_batch_sim: lane width " +
                              std::to_string(lanes) +
                              " not supported by this build/CPU");
}

std::unique_ptr<BatchSim> make_batch_sim(const Netlist& nl) {
  return make_batch_sim(nl, batch_lane_width());
}

}  // namespace gpf::gate
