#include "gate/batchsim.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/env.hpp"
#include "gate/compiled.hpp"
#include "obs/metrics.hpp"

namespace gpf::gate {

namespace {

inline std::uint64_t broadcast(std::uint8_t bit) {
  return bit ? ~std::uint64_t{0} : std::uint64_t{0};
}

}  // namespace

BatchFaultSim::BatchFaultSim(const Netlist& nl)
    : nl_(nl),
      cn_(nl.compiled()),
      val_(nl.num_nets(), 0),
      force0_(nl.num_nets(), 0),
      force1_(nl.num_nets(), 0),
      dff_next_(nl.dffs().size(), 0),
      cone_enabled_(gpf::cone_enabled()) {
  if (!nl.finalized()) throw std::logic_error("netlist not finalized");
}

void BatchFaultSim::begin(std::span<const StuckFault> faults) {
  if (faults.size() > kLanes) throw std::invalid_argument("more than 64 faults");
  // Batch occupancy: lanes/64 per begin(); one begin per (batch, trace).
  static obs::Counter& batches = obs::counter("gate.batches");
  static obs::Counter& lanes = obs::counter("gate.batch_lanes");
  batches.add(1);
  lanes.add(faults.size());
  for (const Net n : forced_nets_) {
    force0_[static_cast<std::size_t>(n)] = 0;
    force1_[static_cast<std::size_t>(n)] = 0;
  }
  forced_nets_.clear();
  source_sites_.clear();
  sites_.clear();
  lane_mask_ = 0;
  cone_live_ = false;  // the cone is per-batch; rebuilt on first eval_cone()
  std::fill(val_.begin(), val_.end(), 0);

  for (std::size_t k = 0; k < faults.size(); ++k) {
    const StuckFault& f = faults[k];
    const auto site = static_cast<std::size_t>(f.net);
    const std::uint64_t bit = std::uint64_t{1} << k;
    sites_.push_back(f.net);
    lane_mask_ |= bit;
    if (force0_[site] == 0 && force1_[site] == 0) forced_nets_.push_back(f.net);
    (f.stuck_high ? force1_ : force0_)[site] |= bit;
    const GateKind kind = nl_.gate(f.net).kind;
    if (kind == GateKind::Input || kind == GateKind::Const0 ||
        kind == GateKind::Const1 || kind == GateKind::Dff)
      source_sites_.push_back(f.net);
  }
}

void BatchFaultSim::load_broadcast(const std::vector<std::uint8_t>& vals) {
  for (std::size_t i = 0; i < val_.size(); ++i) val_[i] = broadcast(vals[i]);
}

void BatchFaultSim::set_bus(const PortBus& bus, std::uint64_t value) {
  for (std::size_t i = 0; i < bus.nets.size(); ++i)
    val_[static_cast<std::size_t>(bus.nets[i])] = broadcast((value >> i) & 1);
}

void BatchFaultSim::apply_source_overlays() {
  for (const Net n : source_sites_) {
    const auto i = static_cast<std::size_t>(n);
    val_[i] = (val_[i] & ~force0_[i]) | force1_[i];
  }
}

void BatchFaultSim::ensure_cone() {
  if (cone_live_) return;
  cone_live_ = true;
  if (cone_stamp_.empty()) {
    cone_stamp_.assign(cn_.num_nets(), 0);
    frontier_stamp_.assign(cn_.num_nets(), 0);
  }
  ++cone_epoch_;
  cone_slots_.clear();
  cone_dffs_.clear();
  cone_nets_.clear();
  frontier_.clear();
  observed_cone_.clear();

  const auto in_cone = [&](Net n) {
    return cone_stamp_[static_cast<std::size_t>(n)] == cone_epoch_;
  };
  // BFS over the fan-out CSR from the fault sites; cone_nets_ doubles as the
  // worklist (every reached net stays in it).
  for (const Net s : forced_nets_) {
    if (in_cone(s)) continue;
    cone_stamp_[static_cast<std::size_t>(s)] = cone_epoch_;
    cone_nets_.push_back(s);
  }
  for (std::size_t i = 0; i < cone_nets_.size(); ++i)
    for (const Net t : cn_.fanout(cone_nets_[i])) {
      if (in_cone(t)) continue;
      cone_stamp_[static_cast<std::size_t>(t)] = cone_epoch_;
      cone_nets_.push_back(t);
    }

  for (const Net n : cone_nets_) {
    const auto i = static_cast<std::size_t>(n);
    if (cn_.slot_of[i] != kNoSlot) cone_slots_.push_back(cn_.slot_of[i]);
    if (cn_.dff_index[i] >= 0)
      cone_dffs_.push_back(static_cast<std::uint32_t>(cn_.dff_index[i]));
  }
  std::sort(cone_slots_.begin(), cone_slots_.end());  // levelized order
  std::sort(cone_dffs_.begin(), cone_dffs_.end());

  // Frontier: every out-of-cone net some in-cone gate/DFF reads, plus the
  // observed outputs — eval_cone() broadcasts their golden values so reads
  // through bus_value()/diff_observed() need no cone awareness.
  const auto add_frontier = [&](Net n) {
    if (n == kNoNet || in_cone(n)) return;
    auto& st = frontier_stamp_[static_cast<std::size_t>(n)];
    if (st == cone_epoch_) return;
    st = cone_epoch_;
    frontier_.push_back(n);
  };
  for (const std::uint32_t s : cone_slots_) {
    add_frontier(cn_.a[s]);
    add_frontier(cn_.b[s]);
    add_frontier(cn_.c[s]);
  }
  for (const std::uint32_t i : cone_dffs_) {
    add_frontier(cn_.dff_d[i]);
    add_frontier(cn_.dff_en[i]);
  }
  for (const Net n : observed_) {
    if (in_cone(n))
      observed_cone_.push_back(n);
    else
      add_frontier(n);
  }

  // Cone fraction = cone_gates / cone_total_gates across all builds.
  static obs::Counter& builds = obs::counter("gate.cone_builds");
  static obs::Counter& cone_gates = obs::counter("gate.cone_gates");
  static obs::Counter& total_gates = obs::counter("gate.cone_total_gates");
  builds.add(1);
  cone_gates.add(cone_slots_.size());
  total_gates.add(cn_.num_slots());
}

void BatchFaultSim::eval() {
  for (const auto& [n, v] : nl_.constants())
    val_[static_cast<std::size_t>(n)] = broadcast(v);
  apply_source_overlays();

  const auto va = [&](Net x) { return val_[static_cast<std::size_t>(x)]; };
  for (std::size_t s = 0; s < cn_.num_slots(); ++s) {
    std::uint64_t v = 0;
    switch (cn_.kind[s]) {
      case GateKind::Buf: v = va(cn_.a[s]); break;
      case GateKind::Not: v = ~va(cn_.a[s]); break;
      case GateKind::And: v = va(cn_.a[s]) & va(cn_.b[s]); break;
      case GateKind::Or: v = va(cn_.a[s]) | va(cn_.b[s]); break;
      case GateKind::Nand: v = ~(va(cn_.a[s]) & va(cn_.b[s])); break;
      case GateKind::Nor: v = ~(va(cn_.a[s]) | va(cn_.b[s])); break;
      case GateKind::Xor: v = va(cn_.a[s]) ^ va(cn_.b[s]); break;
      case GateKind::Xnor: v = ~(va(cn_.a[s]) ^ va(cn_.b[s])); break;
      case GateKind::Mux: {
        const std::uint64_t sel = va(cn_.a[s]);
        v = (sel & va(cn_.c[s])) | (~sel & va(cn_.b[s]));
        break;
      }
      default: continue;
    }
    const auto i = static_cast<std::size_t>(cn_.out[s]);
    val_[i] = (v & ~force0_[i]) | force1_[i];
  }
}

void BatchFaultSim::eval_cone(const std::vector<std::uint8_t>& golden) {
  ensure_cone();
  for (const Net n : frontier_) {
    const auto i = static_cast<std::size_t>(n);
    val_[i] = broadcast(golden[i]);
  }
  apply_source_overlays();

  const auto va = [&](Net x) { return val_[static_cast<std::size_t>(x)]; };
  for (const std::uint32_t s : cone_slots_) {
    std::uint64_t v = 0;
    switch (cn_.kind[s]) {
      case GateKind::Buf: v = va(cn_.a[s]); break;
      case GateKind::Not: v = ~va(cn_.a[s]); break;
      case GateKind::And: v = va(cn_.a[s]) & va(cn_.b[s]); break;
      case GateKind::Or: v = va(cn_.a[s]) | va(cn_.b[s]); break;
      case GateKind::Nand: v = ~(va(cn_.a[s]) & va(cn_.b[s])); break;
      case GateKind::Nor: v = ~(va(cn_.a[s]) | va(cn_.b[s])); break;
      case GateKind::Xor: v = va(cn_.a[s]) ^ va(cn_.b[s]); break;
      case GateKind::Xnor: v = ~(va(cn_.a[s]) ^ va(cn_.b[s])); break;
      case GateKind::Mux: {
        const std::uint64_t sel = va(cn_.a[s]);
        v = (sel & va(cn_.c[s])) | (~sel & va(cn_.b[s]));
        break;
      }
      default: continue;
    }
    const auto i = static_cast<std::size_t>(cn_.out[s]);
    val_[i] = (v & ~force0_[i]) | force1_[i];
  }
}

void BatchFaultSim::clock() {
  if (cone_live_) {
    // Out-of-cone DFFs cannot diverge (all their pins carry golden values),
    // and their words are refreshed through the frontier when read — so only
    // in-cone registers need the two-phase latch.
    for (const std::uint32_t i : cone_dffs_) {
      const Net en_n = cn_.dff_en[i];
      const std::uint64_t en =
          en_n == kNoNet ? ~std::uint64_t{0} : val_[static_cast<std::size_t>(en_n)];
      const std::uint64_t cur = val_[static_cast<std::size_t>(cn_.dff_out[i])];
      const Net d_n = cn_.dff_d[i];
      const std::uint64_t d =
          d_n == kNoNet ? cur : val_[static_cast<std::size_t>(d_n)];
      dff_next_[i] = (en & d) | (~en & cur);
    }
    for (const std::uint32_t i : cone_dffs_)
      val_[static_cast<std::size_t>(cn_.dff_out[i])] = dff_next_[i];
    apply_source_overlays();
    return;
  }
  for (std::size_t i = 0; i < cn_.dff_out.size(); ++i) {
    const Net en_n = cn_.dff_en[i];
    const std::uint64_t en =
        en_n == kNoNet ? ~std::uint64_t{0} : val_[static_cast<std::size_t>(en_n)];
    const std::uint64_t cur = val_[static_cast<std::size_t>(cn_.dff_out[i])];
    const Net d_n = cn_.dff_d[i];
    const std::uint64_t d = d_n == kNoNet ? cur : val_[static_cast<std::size_t>(d_n)];
    dff_next_[i] = (en & d) | (~en & cur);
  }
  for (std::size_t i = 0; i < cn_.dff_out.size(); ++i)
    val_[static_cast<std::size_t>(cn_.dff_out[i])] = dff_next_[i];
  apply_source_overlays();
}

std::uint64_t BatchFaultSim::bus_value(const PortBus& bus, unsigned lane) const {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bus.nets.size(); ++i)
    if (value(bus.nets[i], lane)) v |= std::uint64_t{1} << i;
  return v;
}

std::uint64_t BatchFaultSim::diff_lanes(
    std::span<const Net> nets, const std::vector<std::uint8_t>& golden) const {
  std::uint64_t m = 0;
  for (const Net n : nets) {
    const auto i = static_cast<std::size_t>(n);
    m |= val_[i] ^ broadcast(golden[i]);
  }
  return m & lane_mask_;
}

std::uint64_t BatchFaultSim::diff_observed(
    const std::vector<std::uint8_t>& golden) const {
  return diff_lanes(cone_live_ ? std::span<const Net>(observed_cone_)
                               : std::span<const Net>(observed_),
                    golden);
}

std::uint64_t BatchFaultSim::state_diff_lanes(
    const std::vector<std::uint8_t>& golden) const {
  std::uint64_t m = 0;
  if (cone_live_) {
    for (const std::uint32_t di : cone_dffs_) {
      const auto i = static_cast<std::size_t>(cn_.dff_out[di]);
      m |= val_[i] ^ broadcast(golden[i]);
    }
    return m & lane_mask_;
  }
  for (const Net n : nl_.dffs()) {
    const auto i = static_cast<std::size_t>(n);
    m |= val_[i] ^ broadcast(golden[i]);
  }
  return m & lane_mask_;
}

void BatchFaultSim::retire_lane(unsigned lane,
                                const std::vector<std::uint8_t>& golden) {
  const std::uint64_t bit = std::uint64_t{1} << lane;
  const auto site = static_cast<std::size_t>(sites_[lane]);
  force0_[site] &= ~bit;
  force1_[site] &= ~bit;
  lane_mask_ &= ~bit;
  if (cone_live_) {
    // Out-of-cone nets already track the golden machine in every lane.
    for (const Net n : cone_nets_) {
      const auto i = static_cast<std::size_t>(n);
      val_[i] = (val_[i] & ~bit) | (broadcast(golden[i]) & bit);
    }
    return;
  }
  for (std::size_t i = 0; i < val_.size(); ++i)
    val_[i] = (val_[i] & ~bit) | (broadcast(golden[i]) & bit);
}

std::size_t BatchFaultSim::cone_gate_count() {
  if (!cone_enabled_ || !lane_mask_) return cn_.num_slots();
  ensure_cone();
  return cone_slots_.size();
}

std::size_t BatchFaultSim::total_gate_count() const { return cn_.num_slots(); }

}  // namespace gpf::gate
