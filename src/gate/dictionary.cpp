#include "gate/dictionary.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace gpf::gate {

void write_fault_dictionary(std::ostream& os, const UnitCampaignResult& result) {
  os << "unit,net,stuck,class,activated,hang";
  for (unsigned m = 0; m < errmodel::kNumErrorModels; ++m)
    os << ',' << errmodel::name_of(static_cast<errmodel::ErrorModel>(m));
  os << '\n';
  for (const FaultCharacterization& f : result.faults) {
    os << unit_name(result.unit) << ',' << f.fault.net << ','
       << (f.fault.stuck_high ? 1 : 0) << ',' << fault_class_name(f.cls()) << ','
       << (f.activated ? 1 : 0) << ',' << (f.hang ? 1 : 0);
    for (unsigned m = 0; m < errmodel::kNumErrorModels; ++m)
      os << ',' << f.error_counts[m];
    os << '\n';
  }
}

std::vector<FaultCharacterization> read_fault_dictionary(std::istream& is) {
  std::vector<FaultCharacterization> out;
  std::string line;
  if (!std::getline(is, line)) return out;  // header
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::stringstream ss(line);
    std::string cell;
    auto next = [&]() -> std::string {
      if (!std::getline(ss, cell, ',')) throw std::runtime_error("short row");
      return cell;
    };
    FaultCharacterization f;
    (void)next();  // unit name (implied by file)
    f.fault.net = static_cast<Net>(std::stol(next()));
    f.fault.stuck_high = next() == "1";
    (void)next();  // class (derived)
    f.activated = next() == "1";
    f.hang = next() == "1";
    for (unsigned m = 0; m < errmodel::kNumErrorModels; ++m)
      f.error_counts[m] = static_cast<std::uint32_t>(std::stoul(next()));
    out.push_back(f);
  }
  return out;
}

}  // namespace gpf::gate
