#include "gate/collapse.hpp"

#include <stdexcept>

#include "gate/compiled.hpp"

namespace gpf::gate {

namespace {

std::uint32_t find_root(std::vector<std::uint32_t>& parent, std::uint32_t v) {
  while (parent[v] != v) {
    parent[v] = parent[parent[v]];  // path halving
    v = parent[v];
  }
  return v;
}

}  // namespace

FaultCollapse::FaultCollapse(const Netlist& nl) {
  if (!nl.finalized()) throw std::logic_error("netlist not finalized");
  const CompiledNetlist& cn = nl.compiled();
  const std::size_t n = nl.num_nets();

  std::vector<std::uint8_t> protected_net(n, 0);
  for (const PortBus& bus : nl.outputs())
    for (const Net net : bus.nets) protected_net[static_cast<std::size_t>(net)] = 1;

  std::vector<std::uint32_t> parent(2 * n);
  for (std::uint32_t v = 0; v < parent.size(); ++v) parent[v] = v;
  const auto unite = [&](std::uint32_t x, std::uint32_t y) {
    const std::uint32_t rx = find_root(parent, x), ry = find_root(parent, y);
    if (rx != ry) parent[rx] = ry;
  };
  const auto fuse = [&](Net x, bool xv, Net z, bool zv) {
    unite(node(StuckFault{x, xv}), node(StuckFault{z, zv}));
  };

  // Merge an input fault into the gate-output fault only when the input is
  // a single-pin, unobserved net (see header).
  const auto mergeable = [&](Net x) {
    const GateKind k = nl.gate(x).kind;
    if (k == GateKind::Const0 || k == GateKind::Const1) return false;
    return cn.fanout_count(x) == 1 && !protected_net[static_cast<std::size_t>(x)];
  };
  for (std::size_t s = 0; s < cn.num_slots(); ++s) {
    const Net z = cn.out[s];
    const Net x = cn.a[s], y = cn.b[s];
    switch (cn.kind[s]) {
      case GateKind::Buf:
        if (mergeable(x)) { fuse(x, false, z, false); fuse(x, true, z, true); }
        break;
      case GateKind::Not:
        if (mergeable(x)) { fuse(x, false, z, true); fuse(x, true, z, false); }
        break;
      case GateKind::And:
        if (mergeable(x)) fuse(x, false, z, false);
        if (mergeable(y)) fuse(y, false, z, false);
        break;
      case GateKind::Nand:
        if (mergeable(x)) fuse(x, false, z, true);
        if (mergeable(y)) fuse(y, false, z, true);
        break;
      case GateKind::Or:
        if (mergeable(x)) fuse(x, true, z, true);
        if (mergeable(y)) fuse(y, true, z, true);
        break;
      case GateKind::Nor:
        if (mergeable(x)) fuse(x, true, z, false);
        if (mergeable(y)) fuse(y, true, z, false);
        break;
      default:
        break;  // Xor/Xnor/Mux: no structural equivalence
    }
  }

  // Pick each class's representative: the topologically deepest member
  // (smallest fanout cone when the batch engine simulates it), node id as
  // the deterministic tie-break. Constant nets never entered a union, so
  // every class consists of simulatable faults only.
  rep_.resize(2 * n);
  const auto deeper = [&](std::uint32_t a, std::uint32_t b) {
    const auto ta = cn.topo_index[a >> 1], tb = cn.topo_index[b >> 1];
    return ta != tb ? ta > tb : a > b;
  };
  std::vector<std::uint32_t> best(2 * n);
  for (std::uint32_t v = 0; v < 2 * n; ++v) best[v] = v;
  for (std::uint32_t v = 0; v < 2 * n; ++v) {
    const std::uint32_t r = find_root(parent, v);
    if (deeper(v, best[r])) best[r] = v;
  }
  for (std::uint32_t v = 0; v < 2 * n; ++v) rep_[v] = best[find_root(parent, v)];

  for (std::size_t i = 0; i < n; ++i) {
    const GateKind k = nl.gate(static_cast<Net>(i)).kind;
    if (k == GateKind::Const0 || k == GateKind::Const1) continue;
    fault_count_ += 2;
    for (const bool hi : {false, true})
      if (is_representative(StuckFault{static_cast<Net>(i), hi})) ++class_count_;
  }
}

}  // namespace gpf::gate
