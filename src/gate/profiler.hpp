// Hardware-unit profiling (step 1 of the methodology): a MachineHooks
// implementation that shadows the decoder / fetch / WSC of one PPB during a
// fault-free functional run and records the per-cycle stimulus traces the
// gate-level campaigns replay.
#pragma once

#include <array>
#include <unordered_map>

#include "arch/machine.hpp"
#include "gate/trace.hpp"

namespace gpf::gate {

class UnitProfiler final : public arch::MachineHooks {
 public:
  /// Profiles SM `sm` / PPB `ppb`, capturing at most `max_issues` issues.
  explicit UnitProfiler(std::size_t max_issues = 2000, unsigned sm = 0,
                        unsigned ppb = 0);

  void on_launch_begin(arch::Gpu&, const isa::Program&) override;
  int post_select(arch::Gpu&, unsigned sm, unsigned ppb, int slot) override;
  std::uint32_t post_fetch_pc(arch::Gpu&, unsigned sm, unsigned ppb, unsigned slot,
                              std::uint32_t pc) override;
  std::uint64_t post_fetch_word(arch::Gpu&, unsigned sm, unsigned ppb, unsigned slot,
                                std::uint64_t word) override;
  void post_execute(arch::ExecCtx& ctx) override;

  /// Harvest the captured traces (call after the run).
  UnitTraces take(std::string workload_name);

  std::size_t issues() const { return traces_.issues; }

 private:
  void sync_wsc_state(arch::Gpu& gpu);

  std::size_t max_issues_;
  unsigned sm_, ppb_;
  UnitTraces traces_;
  std::unordered_map<std::uint64_t, std::size_t> decoder_dedup_;

  // Shadow copies of what the hardware units hold.
  struct WarpShadow {
    bool valid = false, done = false, barrier = false;
    std::uint32_t mask = 0;
    std::uint8_t base = 0, cta = 0;
  };
  std::array<WarpShadow, 8> wsc_shadow_{};
  std::array<std::uint32_t, 8> pc_shadow_{};
  bool lane_cfg_written_ = false;

  // Per-issue staging.
  int cur_slot_ = -1;
  std::uint32_t cur_pc_ = 0;
  std::uint64_t cur_word_ = 0;
  std::uint32_t cur_regs_ = 64;
  std::uint32_t cur_prog_size_ = 0;
};

}  // namespace gpf::gate
