// Levelized two-value gate simulation with a single stuck-at fault overlay.
#pragma once

#include <cstdint>
#include <vector>

#include "gate/netlist.hpp"

namespace gpf::gate {

struct StuckFault {
  Net net = kNoNet;
  bool stuck_high = false;
};

class Simulator {
 public:
  explicit Simulator(const Netlist& nl);

  void set_fault(StuckFault f) { fault_ = f; }
  void clear_fault() { fault_ = StuckFault{}; }
  const StuckFault& fault() const { return fault_; }

  /// Reset all state (DFFs and inputs) to zero.
  void reset();

  void set_input(Net n, bool v) { val_[static_cast<std::size_t>(n)] = v; }
  /// Drive a whole input bus (LSB-first) from an integer.
  void set_bus(const PortBus& bus, std::uint64_t value);

  /// Settle combinational logic (applies the fault overlay).
  void eval();
  /// Latch DFFs from current values (call after eval()).
  void clock();

  bool value(Net n) const { return val_[static_cast<std::size_t>(n)] != 0; }
  std::uint64_t bus_value(const PortBus& bus) const;

  /// Full net-value snapshot / restore (used by the replay campaign to start
  /// faulty simulation at the fault's first activation cycle).
  const std::vector<std::uint8_t>& values() const { return val_; }
  void load_values(const std::vector<std::uint8_t>& v) { val_ = v; }

  /// Fault-free value the faulty net would carry — used for activation
  /// tracking (a fault is "activated" only when the golden value differs from
  /// the stuck value at some cycle). Valid after eval().
  bool fault_site_golden() const { return golden_at_fault_ != 0; }

 private:
  void apply_fault_at_sources();

  const Netlist& nl_;
  std::vector<std::uint8_t> val_;
  std::vector<std::uint8_t> dff_next_;  ///< reusable clock() sample buffer
  StuckFault fault_;
  std::uint8_t golden_at_fault_ = 0;
};

/// Full collapsed stuck-at fault list: every net, both polarities.
std::vector<StuckFault> full_fault_list(const Netlist& nl);

}  // namespace gpf::gate
