#include "gate/cosim.hpp"

namespace gpf::gate {

// ---------------------------------------------------------------------------
// DecoderCosim
// ---------------------------------------------------------------------------

struct DecoderCosim::Ports {
  const PortBus* instr;
  const PortBus* fetch_valid;
  const PortBus* valid;
  const PortBus* opcode;
  const PortBus* guard;
  const PortBus* guard_neg;
  const PortBus* use_imm;
  const PortBus* space;
  const PortBus* rd;
  const PortBus* rs1;
  const PortBus* rs2;
  const PortBus* rs3;
  const PortBus* imm;
};

DecoderCosim::DecoderCosim(unsigned sm, unsigned ppb)
    : sm_(sm), ppb_(ppb), nl_(build_decoder_unit()), sim_(*nl_),
      p_(std::make_unique<Ports>()) {
  p_->instr = nl_->find_input("instr");
  p_->fetch_valid = nl_->find_input("fetch_valid");
  p_->valid = nl_->find_output("valid");
  p_->opcode = nl_->find_output("opcode");
  p_->guard = nl_->find_output("guard_pred");
  p_->guard_neg = nl_->find_output("guard_neg");
  p_->use_imm = nl_->find_output("use_imm");
  p_->space = nl_->find_output("space");
  p_->rd = nl_->find_output("rd");
  p_->rs1 = nl_->find_output("rs1");
  p_->rs2 = nl_->find_output("rs2");
  p_->rs3 = nl_->find_output("rs3");
  p_->imm = nl_->find_output("imm");
}

DecoderCosim::~DecoderCosim() = default;

std::uint64_t DecoderCosim::post_fetch_word(arch::Gpu&, unsigned sm, unsigned ppb,
                                            unsigned, std::uint64_t word) {
  if (sm == sm_ && ppb == ppb_) {
    word_ = word;
    have_word_ = true;
  }
  return word;
}

void DecoderCosim::post_decode(arch::Gpu&, unsigned sm, unsigned ppb,
                               isa::Instruction& in, bool& ok) {
  if (sm != sm_ || ppb != ppb_ || !have_word_) return;
  have_word_ = false;
  sim_.set_bus(*p_->instr, word_);
  sim_.set_bus(*p_->fetch_valid, 1);
  sim_.eval();
  ++evals_;

  ok = sim_.bus_value(*p_->valid) != 0;
  if (!ok) return;
  in.op = static_cast<isa::Op>(sim_.bus_value(*p_->opcode));
  in.guard_pred = static_cast<std::uint8_t>(sim_.bus_value(*p_->guard));
  in.guard_neg = sim_.bus_value(*p_->guard_neg) != 0;
  in.use_imm = sim_.bus_value(*p_->use_imm) != 0;
  in.space = static_cast<isa::MemSpace>(sim_.bus_value(*p_->space));
  in.rd = static_cast<std::uint8_t>(sim_.bus_value(*p_->rd));
  in.rs1 = static_cast<std::uint8_t>(sim_.bus_value(*p_->rs1));
  if (in.use_imm) {
    in.imm = static_cast<std::uint32_t>(sim_.bus_value(*p_->imm));
    in.rs2 = 0;
    in.rs3 = 0;
  } else {
    in.rs2 = static_cast<std::uint8_t>(sim_.bus_value(*p_->rs2));
    in.rs3 = static_cast<std::uint8_t>(sim_.bus_value(*p_->rs3));
    in.imm = 0;
  }
  // A fault may fabricate a "valid" bundle from an invalid opcode pattern:
  // re-check the opcode against the ISA (the dispatcher would reject it).
  if (!isa::is_valid_opcode(static_cast<std::uint8_t>(in.op))) ok = false;
}

// ---------------------------------------------------------------------------
// FetchCosim
// ---------------------------------------------------------------------------

struct FetchCosim::Ports {
  const PortBus* sel_slot;
  const PortBus* sel_valid;
  const PortBus* instr_in;
  const PortBus* redirect_en;
  const PortBus* redirect_pc;
  const PortBus* pc_wr_en;
  const PortBus* init_en;
  const PortBus* init_slot;
  const PortBus* init_pc;
  const PortBus* pc_out;
  const PortBus* instr_out;
};

FetchCosim::FetchCosim(unsigned sm, unsigned ppb)
    : sm_(sm), ppb_(ppb), nl_(build_fetch_unit()), sim_(*nl_),
      p_(std::make_unique<Ports>()) {
  p_->sel_slot = nl_->find_input("sel_slot");
  p_->sel_valid = nl_->find_input("sel_valid");
  p_->instr_in = nl_->find_input("instr_in");
  p_->redirect_en = nl_->find_input("redirect_en");
  p_->redirect_pc = nl_->find_input("redirect_pc");
  p_->pc_wr_en = nl_->find_input("pc_wr_en");
  p_->init_en = nl_->find_input("init_en");
  p_->init_slot = nl_->find_input("init_slot");
  p_->init_pc = nl_->find_input("init_pc");
  p_->pc_out = nl_->find_output("pc_out");
  p_->instr_out = nl_->find_output("instr_out");
  sim_.reset();
}

FetchCosim::~FetchCosim() = default;

void FetchCosim::drive_write(std::uint8_t sel_slot, bool sel_valid,
                             bool redirect_en, std::uint32_t redirect_pc,
                             bool init_en, std::uint8_t init_slot,
                             std::uint32_t init_pc) {
  sim_.set_bus(*p_->sel_slot, sel_slot);
  sim_.set_bus(*p_->sel_valid, sel_valid);
  sim_.set_bus(*p_->redirect_en, redirect_en);
  sim_.set_bus(*p_->redirect_pc, redirect_pc);
  sim_.set_bus(*p_->pc_wr_en, sel_valid);
  sim_.set_bus(*p_->init_en, init_en);
  sim_.set_bus(*p_->init_slot, init_slot);
  sim_.set_bus(*p_->init_pc, init_pc);
  sim_.eval();
  sim_.clock();
}

int FetchCosim::post_select(arch::Gpu&, unsigned sm, unsigned ppb, int slot) {
  if (sm == sm_ && ppb == ppb_) cur_slot_ = slot;
  return slot;
}

std::uint32_t FetchCosim::post_fetch_pc(arch::Gpu&, unsigned sm, unsigned ppb,
                                        unsigned slot, std::uint32_t pc) {
  if (sm != sm_ || ppb != ppb_ || static_cast<int>(slot) != cur_slot_) return pc;
  // External redirect (CTA init / reconvergence pop): write the PC register.
  if (pc_shadow_[slot & 7] != pc) {
    drive_write(0, false, false, 0, true, static_cast<std::uint8_t>(slot & 7), pc);
    pc_shadow_[slot & 7] = pc;
  }
  // Combinational read of the (possibly faulty) PC bank.
  sim_.set_bus(*p_->sel_slot, slot & 7);
  sim_.set_bus(*p_->sel_valid, 1);
  sim_.set_bus(*p_->init_en, 0);
  sim_.set_bus(*p_->pc_wr_en, 0);
  sim_.eval();
  cur_pc_ = static_cast<std::uint32_t>(sim_.bus_value(*p_->pc_out));
  return cur_pc_;
}

std::uint64_t FetchCosim::post_fetch_word(arch::Gpu&, unsigned sm, unsigned ppb,
                                          unsigned slot, std::uint64_t word) {
  if (sm != sm_ || ppb != ppb_ || static_cast<int>(slot) != cur_slot_) return word;
  // The fetched word travels through the instruction bus fabric.
  sim_.set_bus(*p_->instr_in, word);
  sim_.eval();
  return sim_.bus_value(*p_->instr_out);
}

void FetchCosim::post_execute(arch::ExecCtx& ctx) {
  if (ctx.sm_id != sm_ || ctx.ppb_id != ppb_) return;
  if (static_cast<int>(ctx.warp().slot) != cur_slot_ || cur_slot_ < 0) return;
  const arch::Warp& w = ctx.warp();
  const std::uint32_t next = w.done ? cur_pc_ + 1 : w.pc();
  const bool redirect = next != cur_pc_ + 1;
  drive_write(static_cast<std::uint8_t>(cur_slot_ & 7), true, redirect, next,
              false, 0, 0);
  pc_shadow_[cur_slot_ & 7] = static_cast<std::uint32_t>(
      [&] {
        // What the netlist actually latched (the fault may corrupt it).
        sim_.set_bus(*p_->sel_slot, cur_slot_ & 7);
        sim_.set_bus(*p_->sel_valid, 1);
        sim_.set_bus(*p_->pc_wr_en, 0);
        sim_.eval();
        return sim_.bus_value(*p_->pc_out);
      }());
  cur_slot_ = -1;
}

}  // namespace gpf::gate

namespace gpf::gate {

// ---------------------------------------------------------------------------
// WscCosim
// ---------------------------------------------------------------------------

struct WscCosim::Ports {
  const PortBus* wr_slot;
  const PortBus* wr_state_en;
  const PortBus* wr_valid;
  const PortBus* wr_done;
  const PortBus* wr_barrier;
  const PortBus* wr_mask_en;
  const PortBus* wr_mask;
  const PortBus* wr_base_en;
  const PortBus* wr_base;
  const PortBus* wr_cta_en;
  const PortBus* wr_cta;
  const PortBus* lane_cfg_en;
  const PortBus* lane_cfg;
  const PortBus* barrier_release;
  const PortBus* ibuf_en;
  const PortBus* ibuf_in;
  const PortBus* issue_en;
  const PortBus* sel_slot;
  const PortBus* sel_valid;
  const PortBus* active_lanes;
  const PortBus* dispatch;
};

WscCosim::WscCosim(unsigned sm, unsigned ppb)
    : sm_(sm), ppb_(ppb), nl_(build_wsc_unit()), sim_(*nl_),
      p_(std::make_unique<Ports>()) {
  p_->wr_slot = nl_->find_input("wr_slot");
  p_->wr_state_en = nl_->find_input("wr_state_en");
  p_->wr_valid = nl_->find_input("wr_valid");
  p_->wr_done = nl_->find_input("wr_done");
  p_->wr_barrier = nl_->find_input("wr_barrier");
  p_->wr_mask_en = nl_->find_input("wr_mask_en");
  p_->wr_mask = nl_->find_input("wr_mask");
  p_->wr_base_en = nl_->find_input("wr_base_en");
  p_->wr_base = nl_->find_input("wr_base");
  p_->wr_cta_en = nl_->find_input("wr_cta_en");
  p_->wr_cta = nl_->find_input("wr_cta");
  p_->lane_cfg_en = nl_->find_input("lane_cfg_en");
  p_->lane_cfg = nl_->find_input("lane_cfg");
  p_->barrier_release = nl_->find_input("barrier_release");
  p_->ibuf_en = nl_->find_input("ibuf_en");
  p_->ibuf_in = nl_->find_input("ibuf_in");
  p_->issue_en = nl_->find_input("issue_en");
  p_->sel_slot = nl_->find_output("sel_slot");
  p_->sel_valid = nl_->find_output("sel_valid");
  p_->active_lanes = nl_->find_output("active_lanes");
  p_->dispatch = nl_->find_output("dispatch");
  sim_.reset();
}

WscCosim::~WscCosim() = default;

void WscCosim::drive_defaults() {
  sim_.set_bus(*p_->wr_slot, 0);
  sim_.set_bus(*p_->wr_state_en, 0);
  sim_.set_bus(*p_->wr_valid, 0);
  sim_.set_bus(*p_->wr_done, 0);
  sim_.set_bus(*p_->wr_barrier, 0);
  sim_.set_bus(*p_->wr_mask_en, 0);
  sim_.set_bus(*p_->wr_mask, 0);
  sim_.set_bus(*p_->wr_base_en, 0);
  sim_.set_bus(*p_->wr_base, 0);
  sim_.set_bus(*p_->wr_cta_en, 0);
  sim_.set_bus(*p_->wr_cta, 0);
  sim_.set_bus(*p_->lane_cfg_en, 0);
  sim_.set_bus(*p_->lane_cfg, 0);
  sim_.set_bus(*p_->barrier_release, 0);
  sim_.set_bus(*p_->ibuf_en, 0);
  sim_.set_bus(*p_->ibuf_in, 0);
  sim_.set_bus(*p_->issue_en, 0);
}

void WscCosim::write_cycle(const std::function<void()>& set_fields) {
  drive_defaults();
  set_fields();
  sim_.eval();
  sim_.clock();
}

void WscCosim::sync_state(arch::Gpu& gpu, unsigned sm, unsigned ppb) {
  if (!lane_cfg_written_) {
    write_cycle([&] {
      sim_.set_bus(*p_->lane_cfg_en, 1);
      sim_.set_bus(*p_->lane_cfg, 0xFFFFFFFFu);
    });
    lane_cfg_written_ = true;
  }
  arch::Ppb& pb = gpu.sm(sm).ppbs[ppb];
  for (unsigned s = 0; s < 8 && s < pb.warps.size(); ++s) {
    const arch::Warp& w = pb.warps[s];
    WarpShadow& sh = shadow_[s];
    const bool valid = w.valid;
    const bool done = w.done || !w.valid;
    const bool barrier = w.at_barrier;
    const std::uint32_t mask = w.active_mask();
    if (sh.valid != valid || sh.done != done || sh.barrier != barrier) {
      write_cycle([&] {
        sim_.set_bus(*p_->wr_slot, s);
        sim_.set_bus(*p_->wr_state_en, 1);
        sim_.set_bus(*p_->wr_valid, valid);
        sim_.set_bus(*p_->wr_done, done);
        sim_.set_bus(*p_->wr_barrier, barrier);
      });
      sh.valid = valid;
      sh.done = done;
      sh.barrier = barrier;
    }
    if (valid && sh.mask != mask) {
      write_cycle([&] {
        sim_.set_bus(*p_->wr_slot, s);
        sim_.set_bus(*p_->wr_mask_en, 1);
        sim_.set_bus(*p_->wr_mask, mask);
      });
      sh.mask = mask;
    }
  }
}

void WscCosim::on_launch_begin(arch::Gpu&, const isa::Program&) {
  // The functional launcher resets its scheduler state per launch; mirror
  // that (a fresh kernel reinitializes the warp table and pointer).
  sim_.reset();
  shadow_ = {};
  lane_cfg_written_ = false;
  issue_slot_ = -1;
  issued_ = false;
}

void WscCosim::pre_cycle(arch::Gpu& gpu, unsigned sm, unsigned ppb) {
  if (sm != sm_ || ppb != ppb_) return;
  sync_state(gpu, sm, ppb);
}

int WscCosim::post_select(arch::Gpu& gpu, unsigned sm, unsigned ppb, int slot) {
  if (sm != sm_ || ppb != ppb_) return slot;
  issued_ = false;
  issue_slot_ = -1;
  // Issue read: the netlist's arbiter decides (combinational; the pointer is
  // clocked at post_execute once the issue completes).
  drive_defaults();
  sim_.set_bus(*p_->issue_en, 1);
  sim_.eval();
  const bool sel_valid = sim_.bus_value(*p_->sel_valid) != 0;
  if (!sel_valid) return -1;
  const int netlist_slot = static_cast<int>(sim_.bus_value(*p_->sel_slot));
  issue_active_ = static_cast<std::uint32_t>(sim_.bus_value(*p_->active_lanes));
  issue_slot_ = netlist_slot;
  (void)slot;
  return netlist_slot;
}

std::uint64_t WscCosim::post_fetch_word(arch::Gpu&, unsigned sm, unsigned ppb,
                                        unsigned slot, std::uint64_t word) {
  if (sm != sm_ || ppb != ppb_ || static_cast<int>(slot) != issue_slot_) return word;
  // The instruction flows through the dispatch buffer (combinational bypass).
  sim_.set_bus(*p_->ibuf_en, 1);
  sim_.set_bus(*p_->ibuf_in, word);
  sim_.eval();
  return sim_.bus_value(*p_->dispatch);
}

void WscCosim::pre_execute(arch::ExecCtx& ctx) {
  if (ctx.sm_id != sm_ || ctx.ppb_id != ppb_) return;
  if (static_cast<int>(ctx.warp().slot) != issue_slot_) return;
  // Reconvergence pops between scheduling and execution update the WSC's
  // stored mask (the stack unit writes it back); resynchronize and re-read.
  const std::uint32_t active = ctx.warp().active_mask();
  const unsigned s = ctx.warp().slot & 7;
  if (shadow_[s].mask != active) {
    write_cycle([&] {
      sim_.set_bus(*p_->wr_slot, s);
      sim_.set_bus(*p_->wr_mask_en, 1);
      sim_.set_bus(*p_->wr_mask, active);
    });
    shadow_[s].mask = active;
    drive_defaults();
    sim_.set_bus(*p_->issue_en, 1);
    sim_.eval();
    issue_active_ = static_cast<std::uint32_t>(sim_.bus_value(*p_->active_lanes));
  }
  // Dispatch mask: lanes the (possibly faulty) WSC actually enables. Lanes
  // the netlist enables beyond the architectural active set execute too.
  ctx.exec_mask = (ctx.exec_mask & issue_active_) | (issue_active_ & ~active);
  issued_ = true;
}

void WscCosim::post_execute(arch::ExecCtx& ctx) {
  if (ctx.sm_id != sm_ || ctx.ppb_id != ppb_ || !issued_) return;
  if (static_cast<int>(ctx.warp().slot) != issue_slot_) return;
  // Commit the issue: advance the rotating pointer (and latch the ibuf).
  drive_defaults();
  sim_.set_bus(*p_->issue_en, 1);
  sim_.set_bus(*p_->ibuf_en, 1);
  sim_.eval();
  sim_.clock();
  issued_ = false;
  issue_slot_ = -1;
}

}  // namespace gpf::gate
