#include "gate/eventsim.hpp"

#include <algorithm>
#include <stdexcept>

namespace gpf::gate {

EventFaultSim::EventFaultSim(const Netlist& nl) : nl_(nl) {
  if (!nl.finalized()) throw std::logic_error("netlist not finalized");
  const std::size_t n = nl.num_nets();

  // Levels: inputs/consts/DFF outputs at 0, combinational gates above.
  level_.assign(n, 0);
  int max_level = 0;
  for (const Net g : nl.eval_order()) {
    const Gate& gg = nl.gate(g);
    int lv = 0;
    for (Net in : {gg.a, gg.b, gg.c})
      if (in != kNoNet) lv = std::max(lv, level_[static_cast<std::size_t>(in)] + 1);
    level_[static_cast<std::size_t>(g)] = lv;
    max_level = std::max(max_level, lv);
  }
  buckets_.resize(static_cast<std::size_t>(max_level) + 1);

  // Fan-out CSR over combinational gates AND DFFs (a divergent value feeding
  // a DFF must flag it as a next-state candidate).
  std::vector<std::uint32_t> degree(n + 1, 0);
  auto each_edge = [&](auto&& fn) {
    for (std::size_t g = 0; g < n; ++g) {
      const Gate& gg = nl.gate(static_cast<Net>(g));
      if (gg.kind == GateKind::Input || gg.kind == GateKind::Const0 ||
          gg.kind == GateKind::Const1)
        continue;
      for (Net in : {gg.a, gg.b, gg.c})
        if (in != kNoNet) fn(in, static_cast<Net>(g));
    }
  };
  each_edge([&](Net src, Net) { ++degree[static_cast<std::size_t>(src)]; });
  fan_offset_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) fan_offset_[i + 1] = fan_offset_[i] + degree[i];
  fan_target_.resize(fan_offset_[n]);
  std::vector<std::uint32_t> cursor(fan_offset_.begin(), fan_offset_.end() - 1);
  each_edge([&](Net src, Net dst) {
    fan_target_[cursor[static_cast<std::size_t>(src)]++] = dst;
  });

  stamp_.assign(n, 0);
  faulty_val_.assign(n, 0);
  queued_.assign(n, 0);
  dff_touched_epoch_.assign(n, 0);
}

void EventFaultSim::begin(const StuckFault& f) {
  fault_ = f;
  divergent_state_.clear();
}

void EventFaultSim::mark(Net n, bool v) {
  stamp_[static_cast<std::size_t>(n)] = epoch_;
  faulty_val_[static_cast<std::size_t>(n)] = v ? 1 : 0;
  divergent_now_.push_back(n);
}

void EventFaultSim::enqueue_fanout(Net n) {
  for (std::uint32_t i = fan_offset_[static_cast<std::size_t>(n)];
       i < fan_offset_[static_cast<std::size_t>(n) + 1]; ++i) {
    const Net t = fan_target_[i];
    const Gate& g = nl_.gate(t);
    if (g.kind == GateKind::Dff) {
      if (dff_touched_epoch_[static_cast<std::size_t>(t)] != epoch_) {
        dff_touched_epoch_[static_cast<std::size_t>(t)] = epoch_;
        touched_dffs_.push_back(t);
      }
      continue;
    }
    if (queued_[static_cast<std::size_t>(t)] == epoch_) continue;
    queued_[static_cast<std::size_t>(t)] = epoch_;
    buckets_[static_cast<std::size_t>(level_[static_cast<std::size_t>(t)])].push_back(t);
  }
}

bool EventFaultSim::eval_cycle(const std::vector<std::uint8_t>& golden) {
  ++epoch_;
  divergent_now_.clear();
  touched_dffs_.clear();
  for (auto& b : buckets_) b.clear();

  // Seeds: divergent DFF state carried over, plus the fault site itself when
  // the stuck value differs from the golden value this cycle.
  for (const auto& [dff, v] : divergent_state_) {
    // The fault overlay dominates even a DFF's stored state.
    const bool fvv = dff == fault_.net ? fault_.stuck_high : v != 0;
    if (fvv != (golden[static_cast<std::size_t>(dff)] != 0)) {
      mark(dff, fvv);
      enqueue_fanout(dff);
    }
  }
  if (fault_.net != kNoNet) {
    const bool gv = golden[static_cast<std::size_t>(fault_.net)] != 0;
    if (!diverged(fault_.net) && gv != fault_.stuck_high) {
      mark(fault_.net, fault_.stuck_high);
      enqueue_fanout(fault_.net);
    }
  }

  // Levelized difference propagation.
  auto fv = [&](Net n) -> bool {
    return diverged(n) ? faulty_val_[static_cast<std::size_t>(n)] != 0
                       : golden[static_cast<std::size_t>(n)] != 0;
  };
  for (auto& bucket : buckets_) {
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const Net n = bucket[i];
      const Gate& g = nl_.gate(n);
      bool v;
      switch (g.kind) {
        case GateKind::Buf: v = fv(g.a); break;
        case GateKind::Not: v = !fv(g.a); break;
        case GateKind::And: v = fv(g.a) && fv(g.b); break;
        case GateKind::Or: v = fv(g.a) || fv(g.b); break;
        case GateKind::Nand: v = !(fv(g.a) && fv(g.b)); break;
        case GateKind::Nor: v = !(fv(g.a) || fv(g.b)); break;
        case GateKind::Xor: v = fv(g.a) != fv(g.b); break;
        case GateKind::Xnor: v = fv(g.a) == fv(g.b); break;
        case GateKind::Mux: v = fv(g.a) ? fv(g.c) : fv(g.b); break;
        default: continue;
      }
      if (n == fault_.net) v = fault_.stuck_high;
      if (v != (golden[static_cast<std::size_t>(n)] != 0)) {
        mark(n, v);
        enqueue_fanout(n);
      }
    }
  }
  return !divergent_now_.empty();
}

void EventFaultSim::clock(const std::vector<std::uint8_t>& golden,
                          const std::vector<std::uint8_t>& golden_next) {
  // Candidates: DFFs already divergent, plus DFFs whose D/enable saw a
  // divergent value this cycle.
  std::vector<std::pair<Net, std::uint8_t>> next;
  auto fv = [&](Net n) -> bool {
    return diverged(n) ? faulty_val_[static_cast<std::size_t>(n)] != 0
                       : golden[static_cast<std::size_t>(n)] != 0;
  };
  auto consider = [&](Net dff) {
    const Gate& g = nl_.gate(dff);
    const bool en = g.b == kNoNet ? true : fv(g.b);
    const bool q = fv(dff);
    const bool d = g.a == kNoNet ? q : fv(g.a);
    const bool faulty_next = en ? d : q;
    const bool golden_next_v = golden_next[static_cast<std::size_t>(dff)] != 0;
    if (faulty_next != golden_next_v)
      next.emplace_back(dff, faulty_next ? 1 : 0);
  };
  // Candidates: DFFs whose D/enable saw a divergent value (touched_dffs_)
  // plus DFFs that started the cycle divergent (their state may persist).
  for (const Net dff : touched_dffs_) consider(dff);
  for (const auto& [dff, v] : divergent_state_) {
    (void)v;
    if (dff_touched_epoch_[static_cast<std::size_t>(dff)] != epoch_) consider(dff);
  }
  divergent_state_ = std::move(next);
}

std::uint64_t EventFaultSim::bus_value(const PortBus& bus,
                                       const std::vector<std::uint8_t>& golden) const {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bus.nets.size(); ++i)
    if (value(bus.nets[i], golden)) v |= std::uint64_t{1} << i;
  return v;
}

}  // namespace gpf::gate
