#include "gate/eventsim.hpp"

#include <algorithm>
#include <stdexcept>

#include "gate/compiled.hpp"
#include "gate/gateprog.hpp"

namespace gpf::gate {

EventFaultSim::EventFaultSim(const Netlist& nl)
    : nl_(nl), cn_(nl.compiled()), gp_(nl.program()) {
  if (!nl.finalized()) throw std::logic_error("netlist not finalized");
  const std::size_t n = nl.num_nets();

  // Levels and the fan-out CSR (over combinational gates AND DFFs — a
  // divergent value feeding a DFF must flag it as a next-state candidate)
  // come precomputed from the compiled netlist.
  buckets_.resize(cn_.num_levels());

  stamp_.assign(n, 0);
  faulty_val_.assign(n, 0);
  queued_.assign(n, 0);
  dff_touched_epoch_.assign(n, 0);
  scratch_.assign(n, 0);
}

void EventFaultSim::begin(const StuckFault& f) {
  fault_ = f;
  divergent_state_.clear();
}

void EventFaultSim::mark(Net n, bool v) {
  stamp_[static_cast<std::size_t>(n)] = epoch_;
  faulty_val_[static_cast<std::size_t>(n)] = v ? 1 : 0;
  divergent_now_.push_back(n);
}

void EventFaultSim::enqueue_fanout(Net n) {
  for (const Net t : cn_.fanout(n)) {
    if (cn_.dff_index[static_cast<std::size_t>(t)] >= 0) {
      if (dff_touched_epoch_[static_cast<std::size_t>(t)] != epoch_) {
        dff_touched_epoch_[static_cast<std::size_t>(t)] = epoch_;
        touched_dffs_.push_back(t);
      }
      continue;
    }
    if (queued_[static_cast<std::size_t>(t)] == epoch_) continue;
    queued_[static_cast<std::size_t>(t)] = epoch_;
    buckets_[static_cast<std::size_t>(cn_.level[static_cast<std::size_t>(t)])].push_back(t);
  }
}

bool EventFaultSim::eval_cycle(const std::vector<std::uint8_t>& golden) {
  ++epoch_;
  divergent_now_.clear();
  touched_dffs_.clear();
  for (auto& b : buckets_) b.clear();

  // Seeds: divergent DFF state carried over, plus the fault site itself when
  // the stuck value differs from the golden value this cycle.
  for (const auto& [dff, v] : divergent_state_) {
    // The fault overlay dominates even a DFF's stored state.
    const bool fvv = dff == fault_.net ? fault_.stuck_high : v != 0;
    if (fvv != (golden[static_cast<std::size_t>(dff)] != 0)) {
      mark(dff, fvv);
      enqueue_fanout(dff);
    }
  }
  if (fault_.net != kNoNet) {
    const bool gv = golden[static_cast<std::size_t>(fault_.net)] != 0;
    if (!diverged(fault_.net) && gv != fault_.stuck_high) {
      mark(fault_.net, fault_.stuck_high);
      enqueue_fanout(fault_.net);
    }
  }

  // Levelized difference propagation.
  auto fv = [&](Net n) -> bool {
    return diverged(n) ? faulty_val_[static_cast<std::size_t>(n)] != 0
                       : golden[static_cast<std::size_t>(n)] != 0;
  };
  for (auto& bucket : buckets_) {
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const Net n = bucket[i];
      // Every bucketed net is a combinational gate (DFFs are diverted in
      // enqueue_fanout), so it has a slot in the program's 1:1 full stream.
      // Stage the operands' faulty-or-golden values at their net indices,
      // then run the same Instr every other engine executes.
      const std::uint32_t s = cn_.slot_of[static_cast<std::size_t>(n)];
      const Instr& in = gp_.full.code[s];
      const OpMeta& m = gp_.full.meta[s];
      for (const Net src : {m.src_a, m.src_b, m.src_c})
        if (src != kNoNet)
          scratch_[static_cast<std::size_t>(src)] = fv(src) ? 1 : 0;
      bool v = GateProgram::eval_scalar(in, scratch_.data()) != 0;
      if (n == fault_.net) v = fault_.stuck_high;
      if (v != (golden[static_cast<std::size_t>(n)] != 0)) {
        mark(n, v);
        enqueue_fanout(n);
      }
    }
  }
  return !divergent_now_.empty();
}

void EventFaultSim::clock(const std::vector<std::uint8_t>& golden,
                          const std::vector<std::uint8_t>& golden_next) {
  // Candidates: DFFs already divergent, plus DFFs whose D/enable saw a
  // divergent value this cycle.
  std::vector<std::pair<Net, std::uint8_t>> next;
  auto fv = [&](Net n) -> bool {
    return diverged(n) ? faulty_val_[static_cast<std::size_t>(n)] != 0
                       : golden[static_cast<std::size_t>(n)] != 0;
  };
  auto consider = [&](Net dff) {
    const auto di = static_cast<std::size_t>(
        cn_.dff_index[static_cast<std::size_t>(dff)]);
    const Net en_n = cn_.dff_en[di], d_n = cn_.dff_d[di];
    const bool en = en_n == kNoNet ? true : fv(en_n);
    const bool q = fv(dff);
    const bool d = d_n == kNoNet ? q : fv(d_n);
    const bool faulty_next = en ? d : q;
    const bool golden_next_v = golden_next[static_cast<std::size_t>(dff)] != 0;
    if (faulty_next != golden_next_v)
      next.emplace_back(dff, faulty_next ? 1 : 0);
  };
  // Candidates: DFFs whose D/enable saw a divergent value (touched_dffs_)
  // plus DFFs that started the cycle divergent (their state may persist).
  for (const Net dff : touched_dffs_) consider(dff);
  for (const auto& [dff, v] : divergent_state_) {
    (void)v;
    if (dff_touched_epoch_[static_cast<std::size_t>(dff)] != epoch_) consider(dff);
  }
  divergent_state_ = std::move(next);
}

std::uint64_t EventFaultSim::bus_value(const PortBus& bus,
                                       const std::vector<std::uint8_t>& golden) const {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bus.nets.size(); ++i)
    if (value(bus.nets[i], golden)) v |= std::uint64_t{1} << i;
  return v;
}

}  // namespace gpf::gate
