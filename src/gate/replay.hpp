// Gate-level fault-injection campaign (step 2+3 of the methodology): replay
// the profiled stimulus traces on a unit netlist with one stuck-at fault at a
// time, compare the unit outputs against the fault-free run, and classify
// every divergence into the paper's instruction-level error models.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/env.hpp"
#include "common/threadpool.hpp"
#include "errmodel/models.hpp"
#include "gate/laneword.hpp"
#include "gate/sim.hpp"
#include "gate/trace.hpp"
#include "gate/units.hpp"

namespace gpf::gate {

class BatchSim;

using gpf::EngineKind;

/// Table 4 fault classes.
enum class FaultClass : std::uint8_t { Uncontrollable, Masked, Hang, SwError };
const char* fault_class_name(FaultClass c);

struct FaultCharacterization {
  StuckFault fault;
  bool activated = false;
  bool hang = false;
  /// Issue cycles on which each error model was produced ("times an error
  /// was produced" column of Table 5).
  std::array<std::uint32_t, errmodel::kNumErrorModels> error_counts{};

  bool any_error() const {
    for (auto c : error_counts)
      if (c) return true;
    return false;
  }
  FaultClass cls() const {
    if (any_error()) return FaultClass::SwError;
    if (hang) return FaultClass::Hang;
    return activated ? FaultClass::Masked : FaultClass::Uncontrollable;
  }
  /// Number of distinct error models this single fault produced (the paper
  /// reports single faults producing multiple error types).
  unsigned distinct_models() const {
    unsigned n = 0;
    for (auto c : error_counts)
      if (c) ++n;
    return n;
  }
};

struct UnitCampaignResult {
  UnitKind unit = UnitKind::Decoder;
  std::size_t full_fault_list_size = 0;  ///< collapsed stuck-at list of the unit
  std::vector<FaultCharacterization> faults;  ///< evaluated (possibly sampled)

  std::size_t count_class(FaultClass c) const;
  /// Faults (of the evaluated set) producing error model m.
  std::size_t faults_with_model(errmodel::ErrorModel m) const;
  std::uint64_t occurrences_of_model(errmodel::ErrorModel m) const;
};

/// Classify the difference between a golden and a faulty instruction word
/// (shared by decoder-output, fetch instruction-bus, and WSC dispatch-buffer
/// classification). Adds to `counts`; returns true if any model was added.
bool classify_word_diff(std::uint64_t golden_word, std::uint64_t faulty_word,
                        std::uint32_t regs_per_thread,
                        std::array<std::uint32_t, errmodel::kNumErrorModels>& counts,
                        bool& hang);

/// Replays one unit's traces for a set of faults. Thread-safe across faults.
class UnitReplayer {
 public:
  explicit UnitReplayer(UnitKind kind);
  ~UnitReplayer();

  UnitKind kind() const { return kind_; }
  const Netlist& netlist() const { return *nl_; }

  /// Per-trace golden precomputation: full net values for every cycle, plus
  /// per-net activation windows shared by every fault on that net.
  struct GoldenTrace {
    static constexpr std::uint32_t kNoCycle = 0xffffffffu;
    /// First/last cycle a net carries each value (kNoCycle when it never
    /// does). A stuck-at-v fault activates exactly on the cycles where the
    /// golden value is !v, so replays read their activation window straight
    /// from this table instead of rescanning the trace per fault.
    struct Window {
      std::uint32_t first0 = kNoCycle, last0 = 0;
      std::uint32_t first1 = kNoCycle, last1 = 0;
    };
    std::vector<std::vector<std::uint8_t>> vals;  ///< [cycle][net]
    std::vector<Window> windows;                  ///< [net]
  };
  GoldenTrace compute_golden(const UnitTraces& t) const;

  /// Evaluate one fault against one trace, accumulating into `out`.
  /// Engine::Brute resimulates the full netlist per (fault, cycle);
  /// Engine::Event propagates only the difference cone (identical results,
  /// much faster; see bench_eventsim). Engine::Batch is a multi-fault engine
  /// and falls back to Event here — use run_fault_batch for word parallelism.
  /// All engines stop replaying a fault once it is flagged as a hang (a hung
  /// unit makes no further progress, so later trace cycles are unreachable);
  /// a fault already hung by an earlier trace is skipped outright.
  void run_fault(const StuckFault& f, const UnitTraces& t, const GoldenTrace& g,
                 FaultCharacterization& out,
                 EngineKind engine = EngineKind::Event) const;

  /// Evaluate up to batch_lane_width() faults simultaneously with the
  /// bit-parallel (PPSFP) engine: lane k of every net word carries the value
  /// under faults[k], and out[k] receives exactly the characterization
  /// run_fault would produce. The SIMD path (64/256/512 lanes) is dispatched
  /// per process — see gate/batchsim.hpp. Hung lanes are retired early and
  /// stop paying classification cost.
  void run_fault_batch(std::span<const StuckFault> faults, const UnitTraces& t,
                       const GoldenTrace& g,
                       std::span<FaultCharacterization> out) const;

  /// Same, but with a caller-owned engine. Replaying the same fault batch
  /// against many traces through one engine lets the engine keep its
  /// per-batch execution plan (fixups, patched stream, fanout-cone program)
  /// across traces — begin() detects the unchanged fault set and skips the
  /// rebuild. The campaign driver runs one engine per batch this way.
  void run_fault_batch(BatchSim& sim, std::span<const StuckFault> faults,
                       const UnitTraces& t, const GoldenTrace& g,
                       std::span<FaultCharacterization> out) const;

 private:
  std::size_t num_cycles(const UnitTraces& t) const;
  template <class Sim>
  void drive_inputs(Sim& sim, const UnitTraces& t, std::size_t cycle) const;
  bool cycle_is_issue(const UnitTraces& t, std::size_t cycle) const;
  using BusReader = std::function<std::uint64_t(const PortBus&)>;
  void compare_outputs(const UnitTraces& t, std::size_t cycle,
                       const std::vector<std::uint8_t>& golden_vals,
                       const BusReader& faulty, FaultCharacterization& out) const;
  /// Bit-parallel counterpart of compare_outputs for run_fault_batch: the
  /// engine supplies per-output-bus diff masks word-wide (they scale with
  /// the SIMD width), simple bus diffs map one-to-one onto error-model
  /// increments, and only instruction-word diffs — plus the decoder's
  /// field-crossing verdict — pay a scalar per-lane decode. Produces exactly
  /// compare_outputs' result for every lane of `diff`; lanes it hangs are
  /// retired in `sim` and cleared from `live`.
  void classify_batch(BatchSim& sim, const UnitTraces& t, std::size_t cycle,
                      const std::vector<std::uint8_t>& golden_vals,
                      const LaneMask& diff, LaneMask& live,
                      std::span<FaultCharacterization> out) const;

  std::uint64_t golden_bus(const std::vector<std::uint8_t>& vals,
                           const PortBus& bus) const;

  UnitKind kind_;
  std::unique_ptr<Netlist> nl_;
  // Cached port handles.
  struct Ports;
  std::unique_ptr<Ports> ports_;
};

/// The campaign's (possibly sampled) fault list: the full stuck-at list of
/// `nl` when `max_faults` is 0 or not smaller, else a seeded partial shuffle
/// taking `max_faults` entries — in either case sorted by topological index
/// so consecutive lane-width batches have tight, overlapping fanout cones.
/// Deterministic in (netlist, unit, max_faults, seed) — shards and resumed
/// runs regenerate the identical list, so a fault's list index is its
/// durable campaign id in the result store.
std::vector<StuckFault> sampled_fault_list(const Netlist& nl, UnitKind unit,
                                           std::size_t max_faults,
                                           std::uint64_t seed);

/// Per-net activation summary over a set of golden traces: whether each net
/// ever carries a 0 (activates s-a-1) or a 1 (activates s-a-0). Used to
/// recompute the member-specific `activated` bit when a collapsed class
/// representative's record is expanded onto its members.
struct ActivationSummary {
  explicit ActivationSummary(std::size_t num_nets)
      : ever0(num_nets, 0), ever1(num_nets, 0) {}
  void add(const UnitReplayer::GoldenTrace& g);
  bool activated(const StuckFault& f) const {
    const auto i = static_cast<std::size_t>(f.net);
    return (f.stuck_high ? ever0[i] : ever1[i]) != 0;
  }
  std::vector<std::uint8_t> ever0, ever1;
};

/// Expand a simulated class representative's characterization onto a class
/// member: error counts and hang are observation-equivalent across the class
/// (that is what equivalence means), while `activated` is the member's own
/// site property — a hang implies activation (divergence requires it), and
/// otherwise the member's full golden scan reduces to the summary bits.
/// Produces bit-identical records to an uncollapsed run of the member.
FaultCharacterization expand_collapsed(const FaultCharacterization& rep,
                                       const StuckFault& member,
                                       const ActivationSummary& act);

/// Full campaign over (sampled) faults x traces. The engine defaults to the
/// GPF_ENGINE environment knob (batch unless overridden); with the batch
/// engine, batch_lane_width()-fault batches are distributed across the pool
/// exactly like single faults are for the scalar engines. Chunking by lane
/// width never changes record content — exports are byte-identical at any
/// width because each fault's characterization is independent of which batch
/// carried it.
UnitCampaignResult run_unit_campaign(UnitKind unit, std::span<const UnitTraces> traces,
                                     std::size_t max_faults, std::uint64_t seed,
                                     ThreadPool* pool = nullptr,
                                     EngineKind engine = campaign_engine());

}  // namespace gpf::gate
