// 64-way bit-parallel stuck-at fault simulation (PPSFP): every net carries a
// 64-bit word whose lane k is the net's value under fault k, so one levelized
// pass over the netlist advances 64 fault machines at once using plain bitwise
// ops. Stuck-at overlays are per-lane force masks applied at each fault site;
// DFF clocking mirrors Simulator::clock() with a word-wide enable mux. Lanes
// with no fault installed (ragged final batch) and retired lanes simply track
// the fault-free machine, so they never show up in divergence masks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gate/netlist.hpp"
#include "gate/sim.hpp"

namespace gpf::gate {

class BatchFaultSim {
 public:
  static constexpr std::size_t kLanes = 64;

  explicit BatchFaultSim(const Netlist& nl);

  /// Install up to 64 faults (lane k carries faults[k]) and reset all state.
  void begin(std::span<const StuckFault> faults);
  std::size_t num_lanes() const { return sites_.size(); }
  /// Mask with one bit set per installed lane.
  std::uint64_t lane_mask() const { return lane_mask_; }

  /// Broadcast a full golden net-value snapshot into every lane (sequential
  /// replays start at the first activating cycle, like Simulator::load_values).
  void load_broadcast(const std::vector<std::uint8_t>& vals);
  /// Drive a whole input bus (LSB-first); each bit is broadcast to all lanes.
  void set_bus(const PortBus& bus, std::uint64_t value);
  /// Settle combinational logic (applies every lane's fault overlay).
  void eval();
  /// Latch DFFs from current values (call after eval()).
  void clock();

  bool value(Net n, unsigned lane) const {
    return (val_[static_cast<std::size_t>(n)] >> lane) & 1;
  }
  /// Bus value seen by one lane.
  std::uint64_t bus_value(const PortBus& bus, unsigned lane) const;

  /// Lanes whose value on any of `nets` differs from the golden snapshot.
  std::uint64_t diff_lanes(std::span<const Net> nets,
                           const std::vector<std::uint8_t>& golden) const;
  /// Lanes whose DFF state differs from the golden snapshot (used for the
  /// all-quiet early exit of sequential replays).
  std::uint64_t state_diff_lanes(const std::vector<std::uint8_t>& golden) const;

  /// Drop a lane's fault overlay and snap its values back to the golden
  /// snapshot: from here on the lane passively tracks the fault-free machine
  /// and never diverges again. Used to retire hung faults early.
  void retire_lane(unsigned lane, const std::vector<std::uint8_t>& golden);

 private:
  void apply_source_overlays();

  const Netlist& nl_;
  std::vector<std::uint64_t> val_;       ///< [net] -> 64 fault lanes
  std::vector<std::uint64_t> force0_;    ///< per-net stuck-at-0 lane masks
  std::vector<std::uint64_t> force1_;    ///< per-net stuck-at-1 lane masks
  std::vector<std::uint64_t> dff_next_;  ///< reusable clock() sample buffer
  std::vector<Net> forced_nets_;         ///< fault sites (dedup'd)
  std::vector<Net> source_sites_;        ///< Input/Const/Dff fault sites
  std::vector<Net> sites_;               ///< per-lane fault site
  std::uint64_t lane_mask_ = 0;
};

}  // namespace gpf::gate
