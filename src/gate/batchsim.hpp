// 64-way bit-parallel stuck-at fault simulation (PPSFP): every net carries a
// 64-bit word whose lane k is the net's value under fault k, so one levelized
// pass over the netlist advances 64 fault machines at once using plain bitwise
// ops. Stuck-at overlays are per-lane force masks applied at each fault site;
// DFF clocking mirrors Simulator::clock() with a word-wide enable mux. Lanes
// with no fault installed (ragged final batch) and retired lanes simply track
// the fault-free machine, so they never show up in divergence masks.
//
// Fanout-cone pruning (GPF_CONE, default on): a batch's 64 faults can only
// perturb nets in the union fanout cone of their sites, so eval_cone() word-
// evaluates just the in-cone gates and refreshes the "frontier" — out-of-cone
// nets read by in-cone gates/DFFs plus the observed outputs — by broadcasting
// the golden snapshot of the cycle. clock(), state_diff_lanes() and
// retire_lane() restrict themselves to the cone once it is live, which is
// exact: an out-of-cone net equals the golden machine in every lane by
// construction. The replay loop opts in per batch via cone_active().
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gate/netlist.hpp"
#include "gate/sim.hpp"

namespace gpf::gate {

struct CompiledNetlist;

class BatchFaultSim {
 public:
  static constexpr std::size_t kLanes = 64;

  explicit BatchFaultSim(const Netlist& nl);

  /// Install up to 64 faults (lane k carries faults[k]) and reset all state.
  void begin(std::span<const StuckFault> faults);
  std::size_t num_lanes() const { return sites_.size(); }
  /// Mask with one bit set per installed lane.
  std::uint64_t lane_mask() const { return lane_mask_; }

  /// Nets the caller will read through diff_observed()/bus_value() for
  /// classification. Must be set before begin() for cone pruning to keep
  /// them refreshed; survives across begin() calls.
  void set_observed(std::span<const Net> nets) {
    observed_.assign(nets.begin(), nets.end());
  }
  /// True when eval_cone() should be used for the current batch (GPF_CONE on
  /// and at least one fault installed).
  bool cone_active() const { return cone_enabled_ && lane_mask_ != 0; }

  /// Broadcast a full golden net-value snapshot into every lane (sequential
  /// replays start at the first activating cycle, like Simulator::load_values).
  void load_broadcast(const std::vector<std::uint8_t>& vals);
  /// Drive a whole input bus (LSB-first); each bit is broadcast to all lanes.
  void set_bus(const PortBus& bus, std::uint64_t value);
  /// Settle combinational logic (applies every lane's fault overlay).
  void eval();
  /// Cone-pruned eval: word-evaluate only gates in the union fanout cone of
  /// the batch's fault sites; frontier nets take this cycle's golden value.
  void eval_cone(const std::vector<std::uint8_t>& golden);
  /// Latch DFFs from current values (call after eval()/eval_cone()).
  void clock();

  bool value(Net n, unsigned lane) const {
    return (val_[static_cast<std::size_t>(n)] >> lane) & 1;
  }
  /// Bus value seen by one lane.
  std::uint64_t bus_value(const PortBus& bus, unsigned lane) const;

  /// Lanes whose value on any of `nets` differs from the golden snapshot.
  std::uint64_t diff_lanes(std::span<const Net> nets,
                           const std::vector<std::uint8_t>& golden) const;
  /// diff_lanes over the set_observed() nets — cone-restricted when live
  /// (out-of-cone observed nets carry the golden value by construction).
  std::uint64_t diff_observed(const std::vector<std::uint8_t>& golden) const;
  /// Lanes whose DFF state differs from the golden snapshot (used for the
  /// all-quiet early exit of sequential replays).
  std::uint64_t state_diff_lanes(const std::vector<std::uint8_t>& golden) const;

  /// Drop a lane's fault overlay and snap its values back to the golden
  /// snapshot: from here on the lane passively tracks the fault-free machine
  /// and never diverges again. Used to retire hung faults early.
  void retire_lane(unsigned lane, const std::vector<std::uint8_t>& golden);

  /// Gates word-evaluated per cycle by eval_cone() for the current batch
  /// (builds the cone if needed). Benches report the in-cone fraction as
  /// cone_gate_count() / total_gate_count().
  std::size_t cone_gate_count();
  std::size_t total_gate_count() const;

 private:
  void apply_source_overlays();
  void ensure_cone();

  const Netlist& nl_;
  const CompiledNetlist& cn_;
  std::vector<std::uint64_t> val_;       ///< [net] -> 64 fault lanes
  std::vector<std::uint64_t> force0_;    ///< per-net stuck-at-0 lane masks
  std::vector<std::uint64_t> force1_;    ///< per-net stuck-at-1 lane masks
  std::vector<std::uint64_t> dff_next_;  ///< reusable clock() sample buffer
  std::vector<Net> forced_nets_;         ///< fault sites (dedup'd)
  std::vector<Net> source_sites_;        ///< Input/Const/Dff fault sites
  std::vector<Net> sites_;               ///< per-lane fault site
  std::uint64_t lane_mask_ = 0;

  // Cone state (valid for the current batch once cone_live_).
  const bool cone_enabled_;              ///< GPF_CONE knob, latched at ctor
  bool cone_live_ = false;               ///< cone built for current batch
  std::uint32_t cone_epoch_ = 0;
  std::vector<std::uint32_t> cone_stamp_;      ///< per-net in-cone epoch
  std::vector<std::uint32_t> frontier_stamp_;  ///< per-net frontier epoch
  std::vector<std::uint32_t> cone_slots_;      ///< in-cone program slots
  std::vector<std::uint32_t> cone_dffs_;       ///< in-cone DFF indices
  std::vector<Net> cone_nets_;                 ///< all in-cone nets
  std::vector<Net> frontier_;                  ///< golden-refreshed nets
  std::vector<Net> observed_;                  ///< classification read set
  std::vector<Net> observed_cone_;             ///< observed_ ∩ cone
};

}  // namespace gpf::gate
