// N-way bit-parallel stuck-at fault simulation (PPSFP): every net carries an
// N-bit SIMD word whose lane k is the net's value under fault k, so one
// levelized pass over the netlist advances N fault machines at once using
// plain bitwise ops. Stuck-at overlays are per-lane force masks applied at
// each fault site; DFF clocking mirrors Simulator::clock() with a word-wide
// enable mux. Lanes with no fault installed (ragged final batch) and retired
// lanes simply track the fault-free machine, so they never show up in
// divergence masks.
//
// The engine is templated over LaneWord<N> (laneword.hpp) and built three
// times: N = 64 (scalar uint64_t baseline), N = 256 (AVX2 ymm) and N = 512
// (AVX-512 zmm), each in its own translation unit compiled with the matching
// -m flags. Callers never name a width: make_batch_sim() runtime-dispatches
// on CPU features (cpuid) and the GPF_LANES / GPF_SIMD knobs to the widest
// path the machine supports, and every mask crossing the BatchSim interface
// is a width-agnostic LaneMask. Record synthesis is per-fault, so campaign
// stores and exports are byte-identical at any width.
//
// Fanout-cone pruning (GPF_CONE, default on): a batch's N faults can only
// perturb nets in the union fanout cone of their sites, so eval_cone() word-
// evaluates just the in-cone gates and refreshes the "frontier" — out-of-cone
// nets read by in-cone gates/DFFs plus the observed outputs — by broadcasting
// the golden snapshot of the cycle. clock(), state_diff_lanes() and
// retire_lane() restrict themselves to the cone once it is live, which is
// exact: an out-of-cone net equals the golden machine in every lane by
// construction. The replay loop opts in per batch via cone_active().
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "gate/laneword.hpp"
#include "gate/netlist.hpp"
#include "gate/sim.hpp"

namespace gpf::gate {

/// Width-agnostic interface of the batch engine. One instance simulates up
/// to width() faults per begin(); all lane masks are LaneMask so callers are
/// independent of the dispatched SIMD path.
class BatchSim {
 public:
  virtual ~BatchSim() = default;

  /// Lanes per batch: 64 (scalar), 256 (AVX2) or 512 (AVX-512).
  virtual std::size_t width() const = 0;
  /// Human-readable SIMD path for logs: "scalar64" | "avx2x256" | "avx512x512".
  virtual const char* path_name() const = 0;
  /// Resolved execution strategy of this instance: "legacy" (PR 6 per-slot
  /// interpreter), "full"/"fused" (direct-threaded gate program), with
  /// "+jit" appended when a native module is loaded for the stream.
  virtual const char* engine_desc() const = 0;

  /// Install up to width() faults (lane k carries faults[k]) and reset state.
  virtual void begin(std::span<const StuckFault> faults) = 0;
  virtual std::size_t num_lanes() const = 0;
  /// Mask with one bit set per installed lane.
  virtual LaneMask lane_mask() const = 0;

  /// Nets the caller will read through diff_observed()/bus_value() for
  /// classification. Must be set before begin() for cone pruning to keep
  /// them refreshed; survives across begin() calls.
  virtual void set_observed(std::span<const Net> nets) = 0;
  /// True when eval_cone() should be used for the current batch (GPF_CONE on
  /// and at least one fault installed).
  virtual bool cone_active() const = 0;

  /// Broadcast a full golden net-value snapshot into every lane (sequential
  /// replays start at the first activating cycle, like Simulator::load_values).
  virtual void load_broadcast(const std::vector<std::uint8_t>& vals) = 0;
  /// Drive a whole input bus (LSB-first); each bit is broadcast to all lanes.
  virtual void set_bus(const PortBus& bus, std::uint64_t value) = 0;
  /// Settle combinational logic (applies every lane's fault overlay).
  virtual void eval() = 0;
  /// Cone-pruned eval: word-evaluate only gates in the union fanout cone of
  /// the batch's fault sites; frontier nets take this cycle's golden value.
  virtual void eval_cone(const std::vector<std::uint8_t>& golden) = 0;
  /// Latch DFFs from current values (call after eval()/eval_cone()).
  virtual void clock() = 0;

  /// Value of net `n` in one lane. Exact for output-bus nets, DFF pins and
  /// nets declared via set_observed(); the optimized engine may rename or
  /// skip other interior nets, so probe sets must be declared up front.
  virtual bool value(Net n, unsigned lane) const = 0;
  /// Bus value seen by one lane.
  virtual std::uint64_t bus_value(const PortBus& bus, unsigned lane) const = 0;
  /// Bus values for every lane of `lanes` at once: out[k] (indexed by lane)
  /// receives the lane's value, and the returned mask holds the lanes whose
  /// value differs from `golden_value` (the golden snapshot's bus value).
  /// Each lane's word is built as golden ^ per-lane diff, so bus nets that
  /// match the golden broadcast — almost all of them, for a single stuck-at —
  /// cost one word XOR shared by the whole batch and no per-lane work. This
  /// is what keeps wide-batch classification from degenerating into
  /// width-invariant per-lane bit gathering.
  virtual LaneMask bus_values(const PortBus& bus,
                              const std::vector<std::uint8_t>& golden,
                              const LaneMask& lanes, std::uint64_t golden_value,
                              std::span<std::uint64_t> out) const = 0;

  /// Lanes whose value on any of `nets` differs from the golden snapshot.
  virtual LaneMask diff_lanes(std::span<const Net> nets,
                              const std::vector<std::uint8_t>& golden) const = 0;
  /// diff_lanes over the set_observed() nets — cone-restricted when live
  /// (out-of-cone observed nets carry the golden value by construction).
  virtual LaneMask diff_observed(const std::vector<std::uint8_t>& golden) const = 0;
  /// Lanes whose DFF state differs from the golden snapshot (used for the
  /// all-quiet early exit of sequential replays).
  virtual LaneMask state_diff_lanes(
      const std::vector<std::uint8_t>& golden) const = 0;

  /// Drop a lane's fault overlay and snap its values back to the golden
  /// snapshot: from here on the lane passively tracks the fault-free machine
  /// and never diverges again. Used to retire hung faults early.
  virtual void retire_lane(unsigned lane,
                           const std::vector<std::uint8_t>& golden) = 0;

  /// Gates word-evaluated per cycle by eval_cone() for the current batch
  /// (builds the cone if needed). Benches report the in-cone fraction as
  /// cone_gate_count() / total_gate_count().
  virtual std::size_t cone_gate_count() = 0;
  virtual std::size_t total_gate_count() const = 0;
};

/// True when this build compiled the width AND this CPU can execute it
/// (64 is always supported; 256 needs AVX2, 512 needs AVX-512F).
bool batch_width_supported(std::size_t lanes);

/// The dispatched lane width every batch campaign partitions by:
/// set_batch_lanes_override > GPF_LANES > GPF_SIMD > widest CPU-supported.
std::size_t batch_lane_width();

/// SIMD-path name for a lane width ("scalar64" | "avx2x256" | "avx512x512").
const char* batch_simd_path(std::size_t lanes);

/// Process-wide width pin for tests/benches (0 = clear, defer to env/CPU
/// dispatch). Throws std::invalid_argument if the width is unsupported.
void set_batch_lanes_override(std::size_t lanes);

/// Process-wide pin to the PR 6 per-slot interpreter with per-store force
/// overlays. Benches and equality tests construct baseline engines through
/// this to compare the optimized gate program against the legacy inner loop
/// in the same process. Affects engines constructed AFTER the call.
void set_batch_legacy_engine(bool on);
bool batch_legacy_engine();

/// Engine at the dispatched width (also publishes the gate.batch.lanes gauge).
std::unique_ptr<BatchSim> make_batch_sim(const Netlist& nl);
/// Engine at an explicit width; throws std::invalid_argument if unsupported.
std::unique_ptr<BatchSim> make_batch_sim(const Netlist& nl, std::size_t lanes);

}  // namespace gpf::gate
