#include "gate/compiled.hpp"

#include <algorithm>
#include <numeric>

namespace gpf::gate {

CompiledNetlist::CompiledNetlist(const Netlist& nl,
                                 std::span<const int> net_level) {
  const std::size_t n = nl.num_nets();
  level.assign(net_level.begin(), net_level.end());

  // Program: eval_order() is already stable-sorted by level.
  const std::vector<Net>& order = nl.eval_order();
  kind.reserve(order.size());
  a.reserve(order.size());
  b.reserve(order.size());
  c.reserve(order.size());
  out.reserve(order.size());
  slot_of.assign(n, kNoSlot);
  int max_level = 0;
  for (std::size_t i = 0; i < n; ++i) max_level = std::max(max_level, level[i]);
  level_offset.assign(static_cast<std::size_t>(max_level) + 2, 0);
  for (std::size_t s = 0; s < order.size(); ++s) {
    const Net g = order[s];
    const Gate& gg = nl.gate(g);
    kind.push_back(gg.kind);
    a.push_back(gg.a);
    b.push_back(gg.b);
    c.push_back(gg.c);
    out.push_back(g);
    slot_of[static_cast<std::size_t>(g)] = static_cast<std::uint32_t>(s);
    ++level_offset[static_cast<std::size_t>(level[static_cast<std::size_t>(g)]) + 1];
  }
  for (std::size_t l = 1; l < level_offset.size(); ++l)
    level_offset[l] += level_offset[l - 1];

  // Sequential elements.
  dff_index.assign(n, -1);
  dff_out.reserve(nl.dffs().size());
  dff_d.reserve(nl.dffs().size());
  dff_en.reserve(nl.dffs().size());
  for (std::size_t i = 0; i < nl.dffs().size(); ++i) {
    const Net q = nl.dffs()[i];
    const Gate& gg = nl.gate(q);
    dff_out.push_back(q);
    dff_d.push_back(gg.a);
    dff_en.push_back(gg.b);
    dff_index[static_cast<std::size_t>(q)] = static_cast<std::int32_t>(i);
  }

  // CSR fan-out over combinational gates and DFF pins (a divergent value
  // feeding a DFF crosses the register boundary, so cone walks need the edge).
  const auto each_edge = [&](auto&& fn) {
    for (std::size_t g = 0; g < n; ++g) {
      const Gate& gg = nl.gate(static_cast<Net>(g));
      if (gg.kind == GateKind::Input || gg.kind == GateKind::Const0 ||
          gg.kind == GateKind::Const1)
        continue;
      for (Net in : {gg.a, gg.b, gg.c})
        if (in != kNoNet) fn(in, static_cast<Net>(g));
    }
  };
  fan_offset.assign(n + 1, 0);
  each_edge([&](Net src, Net) { ++fan_offset[static_cast<std::size_t>(src) + 1]; });
  for (std::size_t i = 1; i <= n; ++i) fan_offset[i] += fan_offset[i - 1];
  fan_target.resize(fan_offset[n]);
  std::vector<std::uint32_t> cursor(fan_offset.begin(), fan_offset.end() - 1);
  each_edge([&](Net src, Net dst) {
    fan_target[cursor[static_cast<std::size_t>(src)]++] = dst;
  });

  // Topological rank: nets sorted by (level, net id).
  std::vector<Net> by_topo(n);
  std::iota(by_topo.begin(), by_topo.end(), Net{0});
  std::stable_sort(by_topo.begin(), by_topo.end(), [&](Net x, Net y) {
    return level[static_cast<std::size_t>(x)] < level[static_cast<std::size_t>(y)];
  });
  topo_index.assign(n, 0);
  for (std::size_t r = 0; r < n; ++r)
    topo_index[static_cast<std::size_t>(by_topo[r])] = static_cast<std::uint32_t>(r);
}

}  // namespace gpf::gate
