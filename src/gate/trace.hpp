// Unit stimulus traces: the "exciting patterns" the paper extracts from 14
// representative workloads. The profiler (profiler.hpp) records these from
// fault-free functional runs; the replay campaign (replay.hpp) drives the
// gate-level unit netlists with them.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace gpf::gate {

/// Decoder stimulus: one instruction word (the decoder is combinational, so
/// identical words are deduplicated with an occurrence count).
struct DecoderPattern {
  std::uint64_t word = 0;
  std::uint32_t regs_per_thread = 64;  ///< IVRA boundary for classification
  std::uint64_t count = 1;             ///< dynamic occurrences
};

/// One fetch-unit cycle (write + read ports).
struct FetchCycle {
  std::uint8_t sel_slot = 0;
  bool sel_valid = false;
  std::uint64_t instr_in = 0;
  bool redirect_en = false;
  std::uint32_t redirect_pc = 0;
  bool pc_wr_en = false;
  bool init_en = false;
  std::uint8_t init_slot = 0;
  std::uint32_t init_pc = 0;
  bool is_issue = false;  ///< outputs are compared on issue cycles only
  // Classification context.
  std::uint32_t prog_size = 0;
  std::uint32_t regs_per_thread = 64;
  std::array<std::uint16_t, 8> resident_pcs{};  ///< for IAW detection
  std::uint32_t expected_pc = 0;  ///< functional PC (netlist-consistency checks)
};

/// One WSC cycle.
struct WscCycle {
  std::uint8_t wr_slot = 0;
  bool wr_state_en = false;
  bool wr_valid = false;
  bool wr_done = false;
  bool wr_barrier = false;
  bool wr_mask_en = false;
  std::uint32_t wr_mask = 0;
  bool wr_base_en = false;
  std::uint8_t wr_base = 0;
  bool wr_cta_en = false;
  std::uint8_t wr_cta = 0;
  bool lane_cfg_en = false;
  std::uint32_t lane_cfg = 0;
  bool barrier_release = false;
  bool ibuf_en = false;
  std::uint64_t ibuf_in = 0;
  bool is_issue = false;
  std::uint32_t regs_per_thread = 64;
  std::uint8_t expected_slot = 0;  ///< functional warp choice (consistency checks)
};

/// All three unit traces captured from one workload.
struct UnitTraces {
  std::string workload;
  std::size_t issues = 0;
  std::vector<DecoderPattern> decoder;
  std::vector<FetchCycle> fetch;
  std::vector<WscCycle> wsc;
};

}  // namespace gpf::gate
