// Gate-level netlists of the three units the paper characterizes: the
// instruction decoder, the fetch unit, and the Warp Scheduler Controller.
// Port names form the contract between the builders, the trace profiler, and
// the replay campaign.
#pragma once

#include <memory>

#include "gate/netlist.hpp"

namespace gpf::gate {

inline constexpr unsigned kUnitWarps = 8;   ///< warp slots per PPB
inline constexpr unsigned kPcBits = 16;

/// Which unit a netlist models.
enum class UnitKind : std::uint8_t { Decoder, Fetch, WSC };
const char* unit_name(UnitKind u);

/// Decoder (combinational).
///   in : instr[64], fetch_valid[1]
///   out: valid, opcode[8], guard_pred[3], guard_neg, use_imm, space[2],
///        rd[8], rs1[8], rs2[8], rs3[8], imm[32],
///        class signals: is_int is_fp32 is_sfu is_mem is_store is_branch
///        is_ssy is_bar is_exit writes_pred is_s2r
std::unique_ptr<Netlist> build_decoder_unit();

/// Fetch (sequential: per-warp PC bank + instruction bus).
///   in : sel_slot[3], sel_valid, instr_in[64], redirect_en, redirect_pc[16],
///        pc_wr_en, init_en, init_slot[3], init_pc[16]
///   out: pc_out[16], instr_out[64], fetch_valid
std::unique_ptr<Netlist> build_fetch_unit();

/// Warp Scheduler Controller (sequential: warp state table + rotating
/// priority arbiter + lane-enable configuration).
///   in : wr_slot[3], wr_state_en, wr_valid, wr_done, wr_barrier,
///        wr_mask_en, wr_mask[32], wr_base_en, wr_base[8],
///        wr_cta_en, wr_cta[4], lane_cfg_en, lane_cfg[32], barrier_release
///   out: sel_slot[3], sel_valid, mask_out[32], lane_en[32],
///        active_lanes[32], base_out[8], cta_out[4]
std::unique_ptr<Netlist> build_wsc_unit();

/// Structural FP32 FMA core (unpackers, 24x24 shift-add multiplier array,
/// alignment barrel shifter, 48-bit adder, normalization shifter, rounding
/// incrementer). Used as the area yardstick of Table 3 — the paper compares
/// each control unit's area against one FP32 functional-unit core.
std::unique_ptr<Netlist> build_fp32_core();

std::unique_ptr<Netlist> build_unit(UnitKind u);

}  // namespace gpf::gate
