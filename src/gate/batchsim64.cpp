// Scalar baseline path of the batch engine: LaneWord<64> is one uint64_t, so
// this TU is compiled with the project's baseline flags and runs anywhere.
#include "gate/batchsim_impl.hpp"

namespace gpf::gate {

template class BatchFaultSimT<64>;

std::unique_ptr<BatchSim> make_batch_sim_64(const Netlist& nl) {
  return std::make_unique<BatchFaultSimT<64>>(nl);
}

}  // namespace gpf::gate
