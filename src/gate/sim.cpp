#include "gate/sim.hpp"

#include <stdexcept>

#include "gate/compiled.hpp"

namespace gpf::gate {

Simulator::Simulator(const Netlist& nl)
    : nl_(nl), val_(nl.num_nets(), 0), dff_next_(nl.dffs().size(), 0) {
  if (!nl.finalized()) throw std::logic_error("netlist not finalized");
}

void Simulator::reset() { std::fill(val_.begin(), val_.end(), 0); }

void Simulator::set_bus(const PortBus& bus, std::uint64_t value) {
  for (std::size_t i = 0; i < bus.nets.size(); ++i)
    val_[static_cast<std::size_t>(bus.nets[i])] = (value >> i) & 1;
}

std::uint64_t Simulator::bus_value(const PortBus& bus) const {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bus.nets.size(); ++i)
    if (val_[static_cast<std::size_t>(bus.nets[i])]) v |= std::uint64_t{1} << i;
  return v;
}

void Simulator::apply_fault_at_sources() {
  if (fault_.net == kNoNet) return;
  const GateKind k = nl_.gate(fault_.net).kind;
  if (k == GateKind::Input || k == GateKind::Const0 || k == GateKind::Const1 ||
      k == GateKind::Dff) {
    golden_at_fault_ = val_[static_cast<std::size_t>(fault_.net)];
    val_[static_cast<std::size_t>(fault_.net)] = fault_.stuck_high ? 1 : 0;
  }
}

void Simulator::eval() {
  for (const auto& [n, v] : nl_.constants()) val_[static_cast<std::size_t>(n)] = v;
  apply_fault_at_sources();

  const CompiledNetlist& cn = nl_.compiled();
  const auto va = [&](Net x) { return val_[static_cast<std::size_t>(x)]; };
  for (std::size_t s = 0; s < cn.num_slots(); ++s) {
    std::uint8_t v = 0;
    switch (cn.kind[s]) {
      case GateKind::Buf: v = va(cn.a[s]); break;
      case GateKind::Not: v = !va(cn.a[s]); break;
      case GateKind::And: v = va(cn.a[s]) & va(cn.b[s]); break;
      case GateKind::Or: v = va(cn.a[s]) | va(cn.b[s]); break;
      case GateKind::Nand: v = !(va(cn.a[s]) & va(cn.b[s])); break;
      case GateKind::Nor: v = !(va(cn.a[s]) | va(cn.b[s])); break;
      case GateKind::Xor: v = va(cn.a[s]) ^ va(cn.b[s]); break;
      case GateKind::Xnor: v = !(va(cn.a[s]) ^ va(cn.b[s])); break;
      case GateKind::Mux: v = va(cn.a[s]) ? va(cn.c[s]) : va(cn.b[s]); break;
      default: continue;
    }
    const Net n = cn.out[s];
    if (n == fault_.net) {
      golden_at_fault_ = v;
      v = fault_.stuck_high ? 1 : 0;
    }
    val_[static_cast<std::size_t>(n)] = v;
  }
}

void Simulator::clock() {
  // Two-phase: sample all D inputs, then commit, so DFF-to-DFF paths behave
  // like real registers.
  const CompiledNetlist& cn = nl_.compiled();
  for (std::size_t i = 0; i < cn.dff_out.size(); ++i) {
    const bool en =
        cn.dff_en[i] == kNoNet ? true : val_[static_cast<std::size_t>(cn.dff_en[i])] != 0;
    const std::uint8_t cur = val_[static_cast<std::size_t>(cn.dff_out[i])];
    const std::uint8_t d =
        cn.dff_d[i] == kNoNet ? cur : val_[static_cast<std::size_t>(cn.dff_d[i])];
    dff_next_[i] = en ? d : cur;
  }
  for (std::size_t i = 0; i < cn.dff_out.size(); ++i)
    val_[static_cast<std::size_t>(cn.dff_out[i])] = dff_next_[i];
  apply_fault_at_sources();
}

std::vector<StuckFault> full_fault_list(const Netlist& nl) {
  std::vector<StuckFault> out;
  out.reserve(nl.num_nets() * 2);
  for (std::size_t i = 0; i < nl.num_nets(); ++i) {
    const GateKind k = nl.gate(static_cast<Net>(i)).kind;
    if (k == GateKind::Const0 || k == GateKind::Const1) continue;
    out.push_back(StuckFault{static_cast<Net>(i), false});
    out.push_back(StuckFault{static_cast<Net>(i), true});
  }
  return out;
}

}  // namespace gpf::gate
