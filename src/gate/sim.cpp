#include "gate/sim.hpp"

#include <stdexcept>

#include "gate/compiled.hpp"
#include "gate/gateprog.hpp"

namespace gpf::gate {

Simulator::Simulator(const Netlist& nl)
    : nl_(nl), val_(nl.num_nets(), 0), dff_next_(nl.dffs().size(), 0) {
  if (!nl.finalized()) throw std::logic_error("netlist not finalized");
}

void Simulator::reset() { std::fill(val_.begin(), val_.end(), 0); }

void Simulator::set_bus(const PortBus& bus, std::uint64_t value) {
  for (std::size_t i = 0; i < bus.nets.size(); ++i)
    val_[static_cast<std::size_t>(bus.nets[i])] = (value >> i) & 1;
}

std::uint64_t Simulator::bus_value(const PortBus& bus) const {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bus.nets.size(); ++i)
    if (val_[static_cast<std::size_t>(bus.nets[i])]) v |= std::uint64_t{1} << i;
  return v;
}

void Simulator::apply_fault_at_sources() {
  if (fault_.net == kNoNet) return;
  const GateKind k = nl_.gate(fault_.net).kind;
  if (k == GateKind::Input || k == GateKind::Const0 || k == GateKind::Const1 ||
      k == GateKind::Dff) {
    golden_at_fault_ = val_[static_cast<std::size_t>(fault_.net)];
    val_[static_cast<std::size_t>(fault_.net)] = fault_.stuck_high ? 1 : 0;
  }
}

void Simulator::eval() {
  for (const auto& [n, v] : nl_.constants()) val_[static_cast<std::size_t>(n)] = v;
  apply_fault_at_sources();

  // Run the shared gate program's full (1:1) stream: every engine executes
  // the same lowered instructions, so scalar, event and batch results agree
  // by construction.
  const Stream& st = nl_.program().full;
  for (std::size_t s = 0; s < st.code.size(); ++s) {
    const Instr& in = st.code[s];
    std::uint8_t v = GateProgram::eval_scalar(in, val_.data());
    const Net n = st.meta[s].out_net;
    if (n == fault_.net) {
      golden_at_fault_ = v;
      v = fault_.stuck_high ? 1 : 0;
    }
    val_[static_cast<std::size_t>(n)] = v;
  }
}

void Simulator::clock() {
  // Two-phase: sample all D inputs, then commit, so DFF-to-DFF paths behave
  // like real registers.
  const CompiledNetlist& cn = nl_.compiled();
  for (std::size_t i = 0; i < cn.dff_out.size(); ++i) {
    const bool en =
        cn.dff_en[i] == kNoNet ? true : val_[static_cast<std::size_t>(cn.dff_en[i])] != 0;
    const std::uint8_t cur = val_[static_cast<std::size_t>(cn.dff_out[i])];
    const std::uint8_t d =
        cn.dff_d[i] == kNoNet ? cur : val_[static_cast<std::size_t>(cn.dff_d[i])];
    dff_next_[i] = en ? d : cur;
  }
  for (std::size_t i = 0; i < cn.dff_out.size(); ++i)
    val_[static_cast<std::size_t>(cn.dff_out[i])] = dff_next_[i];
  apply_fault_at_sources();
}

std::vector<StuckFault> full_fault_list(const Netlist& nl) {
  std::vector<StuckFault> out;
  out.reserve(nl.num_nets() * 2);
  for (std::size_t i = 0; i < nl.num_nets(); ++i) {
    const GateKind k = nl.gate(static_cast<Net>(i)).kind;
    if (k == GateKind::Const0 || k == GateKind::Const1) continue;
    out.push_back(StuckFault{static_cast<Net>(i), false});
    out.push_back(StuckFault{static_cast<Net>(i), true});
  }
  return out;
}

}  // namespace gpf::gate
