// AVX2 path of the batch engine: LaneWord<256> is one ymm register. This TU
// is compiled with -mavx2 (see src/gate/CMakeLists.txt) and must only be
// entered through the cpuid-gated dispatch in batchsim.cpp.
#include "gate/batchsim_impl.hpp"

namespace gpf::gate {

template class BatchFaultSimT<256>;

std::unique_ptr<BatchSim> make_batch_sim_256(const Netlist& nl) {
  return std::make_unique<BatchFaultSimT<256>>(nl);
}

}  // namespace gpf::gate
