#include "gate/jit.hpp"

#include <dlfcn.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <tuple>

#include "common/env.hpp"
#include "obs/metrics.hpp"

namespace gpf::gate {

namespace {

// Netlists below this op count interpret faster than they compile; auto mode
// skips them (GPF_JIT=on compiles regardless, which is what the tests use).
constexpr std::size_t kJitAutoMinOps = 192;

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::mutex g_mu;
std::map<std::string, std::shared_ptr<const JitModule>> g_modules;
/// Fast in-process memo keyed by (structure hash, lanes, op count): engines
/// are constructed once per BATCH, so the repeat path must not re-emit the
/// source text just to compute the cache filename.
std::map<std::tuple<std::uint64_t, std::size_t, std::size_t>,
         std::shared_ptr<const JitModule>>
    g_by_key;
int g_compiler_probed = 0;  // 0 = not yet, 1 = found, -1 = absent
std::string g_compiler;
bool g_warned_no_compiler = false;

// All guarded by g_mu.
const char* find_compiler_locked() {
  if (g_compiler_probed != 0) return g_compiler_probed > 0 ? g_compiler.c_str() : nullptr;
  const char* env_cxx = std::getenv("CXX");
  const char* candidates[] = {env_cxx, "c++", "g++", "clang++"};
  for (const char* c : candidates) {
    if (!c || !*c) continue;
    std::string probe = "command -v ";
    probe += c;
    probe += " >/dev/null 2>&1";
    if (std::system(probe.c_str()) == 0) {
      g_compiler = c;
      g_compiler_probed = 1;
      return g_compiler.c_str();
    }
  }
  g_compiler_probed = -1;
  return nullptr;
}

void emit_op(std::string& src, const Instr& in) {
  char buf[160];
  const auto v = [](std::uint32_t i) {
    return "v[" + std::to_string(i) + "]";
  };
  std::string rhs;
  switch (static_cast<Op>(in.op)) {
    case Op::Const0: rhs = "Z"; break;
    case Op::Const1: rhs = "O"; break;
    case Op::Copy: rhs = v(in.a); break;
    case Op::NCopy: rhs = "~" + v(in.a); break;
    case Op::And: rhs = v(in.a) + " & " + v(in.b); break;
    case Op::Or: rhs = v(in.a) + " | " + v(in.b); break;
    case Op::Nand: rhs = "~(" + v(in.a) + " & " + v(in.b) + ")"; break;
    case Op::Nor: rhs = "~(" + v(in.a) + " | " + v(in.b) + ")"; break;
    case Op::Xor: rhs = v(in.a) + " ^ " + v(in.b); break;
    case Op::Xnor: rhs = "~(" + v(in.a) + " ^ " + v(in.b) + ")"; break;
    case Op::Mux:
      rhs = "(" + v(in.a) + " & " + v(in.c) + ") | (~" + v(in.a) + " & " +
            v(in.b) + ")";
      break;
    case Op::Xor3: rhs = v(in.a) + " ^ " + v(in.b) + " ^ " + v(in.c); break;
    case Op::Xnor3:
      rhs = "~(" + v(in.a) + " ^ " + v(in.b) + " ^ " + v(in.c) + ")";
      break;
    default: {
      const std::uint32_t bits =
          in.op - static_cast<std::uint32_t>(Op::Fuse2_0);
      std::string mid =
          "(" + v(in.a) + ((bits & 1) ? " | " : " & ") + v(in.b) + ")";
      if (bits & 4) mid = "~" + mid;
      rhs = "(" + mid + ((bits & 2) ? " | " : " & ") + v(in.c) + ")";
      if (bits & 8) rhs = "~" + rhs;
      break;
    }
  }
  std::snprintf(buf, sizeof buf, "  v[%u] = ", in.out);
  src += buf;
  src += rhs;
  src += ";\n";
}

std::string emit_source(const GateProgram& gp, const Stream& stream,
                        std::size_t lanes) {
  std::string src;
  src.reserve(64 * stream.code.size() + 1024);
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "// gpf jit codegen: struct=%016llx lanes=%zu ops=%zu\n",
                static_cast<unsigned long long>(gp.struct_hash), lanes,
                stream.code.size());
  src += buf;
  src += "typedef unsigned long long u64;\n";
  if (lanes == 64) {
    src += "typedef u64 W;\n";
  } else {
    std::snprintf(buf, sizeof buf,
                  "typedef u64 W __attribute__((vector_size(%zu)));\n",
                  lanes / 8);
    src += buf;
  }
  src += "static const W Z = {};\nstatic const W O = ~Z;\n";

  const std::size_t num_levels = gp.cn->num_levels();
  std::vector<bool> has_level(num_levels + 1, false);
  std::size_t i = 0;
  while (i < stream.code.size()) {
    const std::int32_t lvl = stream.meta[i].level;
    has_level[static_cast<std::size_t>(lvl)] = true;
    std::snprintf(buf, sizeof buf, "static void lvl%d(W* v) {\n", lvl);
    src += buf;
    // The stream is in slot order, which is levelized, so each level is one
    // contiguous run of ops.
    while (i < stream.code.size() && stream.meta[i].level == lvl) {
      emit_op(src, stream.code[i]);
      ++i;
    }
    src += "}\n";
  }

  src += "extern \"C\" {\n";
  std::snprintf(buf, sizeof buf,
                "unsigned long long gpf_jit_hash = 0x%016llxull;\n",
                static_cast<unsigned long long>(gp.struct_hash));
  src += buf;
  std::snprintf(buf, sizeof buf, "unsigned gpf_jit_width = %zu;\n", lanes);
  src += buf;
  std::snprintf(buf, sizeof buf, "unsigned gpf_jit_num_levels = %zu;\n",
                num_levels);
  src += buf;
  src += "typedef void (*Fn)(W*);\nFn gpf_jit_levels[] = {\n";
  for (std::size_t l = 0; l <= num_levels; ++l) {
    if (has_level[l])
      src += "  lvl" + std::to_string(l) + ",\n";
    else
      src += "  0,\n";
  }
  src += "};\n}\n";
  return src;
}

std::shared_ptr<const JitModule> try_load(const std::string& so_path,
                                          const GateProgram& gp,
                                          std::size_t lanes) {
  void* h = dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!h) return nullptr;
  const auto sym = [&](const char* name) { return dlsym(h, name); };
  auto* hash = static_cast<unsigned long long*>(sym("gpf_jit_hash"));
  auto* width = static_cast<unsigned*>(sym("gpf_jit_width"));
  auto* nlev = static_cast<unsigned*>(sym("gpf_jit_num_levels"));
  auto* table = static_cast<JitModule::LevelFn*>(sym("gpf_jit_levels"));
  if (!hash || !width || !nlev || !table || *hash != gp.struct_hash ||
      *width != lanes || *nlev != gp.cn->num_levels()) {
    dlclose(h);
    return nullptr;
  }
  auto mod = std::make_shared<JitModule>();
  mod->handle = h;
  mod->width = lanes;
  mod->levels.assign(table, table + *nlev + 1);
  return mod;
}

bool compile_so(const std::string& cxx, const std::string& src_text,
                const std::string& dir, const std::string& so_path,
                std::size_t lanes) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  const std::string tag = std::to_string(static_cast<long>(::getpid()));
  const std::string cpp = so_path + "." + tag + ".cpp";
  const std::string tmp_so = so_path + "." + tag + ".tmp";
  {
    std::ofstream out(cpp, std::ios::trunc);
    if (!out) return false;
    out << src_text;
  }
  const char* mflags = lanes == 512 ? " -mavx512f"
                       : lanes == 256 ? " -mavx2"
                                      : "";
  const std::string cmd = cxx + " -O1 -shared -fPIC" + mflags + " -o '" +
                          tmp_so + "' '" + cpp + "' >/dev/null 2>&1";
  bool ok;
  {
    static obs::Histogram& compile_us = obs::histogram("gate.jit.compile_us");
    obs::ScopedTimerUs t(compile_us);
    ok = std::system(cmd.c_str()) == 0;
  }
  if (ok) {
    // rename() is atomic, so concurrent fleet workers compiling the same
    // hash race harmlessly: both produce identical bytes.
    ok = std::rename(tmp_so.c_str(), so_path.c_str()) == 0;
  }
  fs::remove(cpp, ec);
  fs::remove(tmp_so, ec);
  return ok;
}

}  // namespace

JitModule::~JitModule() {
  if (handle) dlclose(handle);
}

std::shared_ptr<const JitModule> jit_module(const GateProgram& gp,
                                            const Stream& stream,
                                            std::size_t lanes) {
  const JitMode mode = jit_mode();
  if (mode == JitMode::Off) return nullptr;
  if (mode == JitMode::Auto && stream.code.size() < kJitAutoMinOps)
    return nullptr;

  const auto key = std::make_tuple(gp.struct_hash, lanes, stream.code.size());
  {
    std::lock_guard<std::mutex> lk(g_mu);
    if (const auto it = g_by_key.find(key); it != g_by_key.end())
      return it->second;
  }

  const std::string src = emit_source(gp, stream, lanes);
  const std::string dir = jit_cache_dir();
  char name[96];
  std::snprintf(name, sizeof name, "/gpf-%016llx-w%zu.so",
                static_cast<unsigned long long>(fnv1a(src)), lanes);
  const std::string so_path = dir + name;

  std::lock_guard<std::mutex> lk(g_mu);
  if (const auto it = g_modules.find(so_path); it != g_modules.end()) {
    g_by_key[key] = it->second;
    return it->second;
  }

  const char* cxx = find_compiler_locked();
  if (!cxx) {
    if (!g_warned_no_compiler) {
      g_warned_no_compiler = true;
      std::fprintf(stderr,
                   "[gpf] GPF_JIT=%s: no system C++ compiler found; using "
                   "the direct-threaded interpreter\n",
                   jit_mode_name(mode));
    }
    g_by_key[key] = nullptr;
    return nullptr;
  }

  static obs::Counter& hits = obs::counter("gate.jit.cache_hits");
  static obs::Counter& compiles = obs::counter("gate.jit.compiles");
  static obs::Counter& fallbacks = obs::counter("gate.jit.fallbacks");

  std::shared_ptr<const JitModule> mod = try_load(so_path, gp, lanes);
  if (mod) {
    hits.add(1);
  } else {
    // Cache miss, or a stale/corrupt entry: drop it and compile fresh once.
    std::error_code ec;
    std::filesystem::remove(so_path, ec);
    if (compile_so(cxx, src, dir, so_path, lanes)) {
      compiles.add(1);
      mod = try_load(so_path, gp, lanes);
    }
    if (!mod) {
      fallbacks.add(1);
      std::fprintf(stderr,
                   "[gpf] GPF_JIT=%s: native compile/load failed for %s; "
                   "using the direct-threaded interpreter\n",
                   jit_mode_name(mode), so_path.c_str());
    }
  }
  g_modules[so_path] = mod;  // negative results memoized too
  g_by_key[key] = mod;
  return mod;
}

bool jit_compiler_available() {
  std::lock_guard<std::mutex> lk(g_mu);
  return find_compiler_locked() != nullptr;
}

const char* batch_engine_tag() {
  if (jit_mode() == JitMode::Off) return "interp";
  return jit_compiler_available() ? "jit" : "interp";
}

void jit_reset_for_tests() {
  std::lock_guard<std::mutex> lk(g_mu);
  g_modules.clear();
  g_by_key.clear();
  g_compiler_probed = 0;
  g_warned_no_compiler = false;
}

}  // namespace gpf::gate
