// Gate-in-the-loop co-simulation: the decoder, fetch, and WSC netlists run
// INSIDE the functional GPU, replacing the corresponding functional stages
// for one PPB. With no fault installed the co-simulation is cycle-exact with
// the pure functional model (validated by tests); with a stuck-at installed
// it yields direct end-to-end gate-fault -> application outcomes, the ground
// truth the two-level methodology approximates (and the validation bench
// compares against).
#pragma once

#include <functional>
#include <memory>

#include "arch/machine.hpp"
#include "gate/sim.hpp"
#include "gate/units.hpp"

namespace gpf::gate {

/// Decoder netlist in the loop (combinational: one evaluation per issue).
class DecoderCosim : public arch::MachineHooks {
 public:
  explicit DecoderCosim(unsigned sm = 0, unsigned ppb = 0);

  void set_fault(StuckFault f) { sim_.set_fault(f); }
  void clear_fault() { sim_.clear_fault(); }
  const Netlist& netlist() const { return *nl_; }

  std::uint64_t post_fetch_word(arch::Gpu&, unsigned sm, unsigned ppb, unsigned,
                                std::uint64_t word) override;
  void post_decode(arch::Gpu&, unsigned sm, unsigned ppb, isa::Instruction& in,
                   bool& ok) override;

  std::uint64_t evaluations() const { return evals_; }

 private:
  unsigned sm_, ppb_;
  std::unique_ptr<Netlist> nl_;
  Simulator sim_;
  std::uint64_t word_ = 0;
  bool have_word_ = false;
  std::uint64_t evals_ = 0;

  struct Ports;
  std::unique_ptr<Ports> p_;

 public:
  ~DecoderCosim() override;
};

/// Fetch netlist in the loop: holds the per-warp PC bank in gate-level state,
/// synchronized with the functional warps the same way the profiler traces
/// are driven (external redirects for CTA init / reconvergence pops).
class FetchCosim : public arch::MachineHooks {
 public:
  explicit FetchCosim(unsigned sm = 0, unsigned ppb = 0);
  ~FetchCosim() override;

  void set_fault(StuckFault f) { sim_.set_fault(f); }
  void clear_fault() { sim_.clear_fault(); }
  const Netlist& netlist() const { return *nl_; }

  int post_select(arch::Gpu&, unsigned sm, unsigned ppb, int slot) override;
  std::uint32_t post_fetch_pc(arch::Gpu&, unsigned sm, unsigned ppb, unsigned slot,
                              std::uint32_t pc) override;
  std::uint64_t post_fetch_word(arch::Gpu&, unsigned sm, unsigned ppb, unsigned slot,
                                std::uint64_t word) override;
  void post_execute(arch::ExecCtx& ctx) override;

 private:
  void drive_write(std::uint8_t sel_slot, bool sel_valid, bool redirect_en,
                   std::uint32_t redirect_pc, bool init_en, std::uint8_t init_slot,
                   std::uint32_t init_pc);

  unsigned sm_, ppb_;
  std::unique_ptr<Netlist> nl_;
  Simulator sim_;
  std::array<std::uint32_t, 8> pc_shadow_{};
  int cur_slot_ = -1;
  std::uint32_t cur_pc_ = 0;

  struct Ports;
  std::unique_ptr<Ports> p_;
};

/// WSC netlist in the loop: the warp-state table, rotating arbiter, and
/// dispatch buffer run at gate level, synchronized with the functional warps
/// exactly like the profiler's traces (state-diff writes before each issue).
/// The netlist's selection, dispatched mask, and instruction word override
/// the functional ones.
class WscCosim : public arch::MachineHooks {
 public:
  explicit WscCosim(unsigned sm = 0, unsigned ppb = 0);
  ~WscCosim() override;

  void set_fault(StuckFault f) { sim_.set_fault(f); }
  void clear_fault() { sim_.clear_fault(); }
  const Netlist& netlist() const { return *nl_; }

  void on_launch_begin(arch::Gpu&, const isa::Program&) override;
  void pre_cycle(arch::Gpu& gpu, unsigned sm, unsigned ppb) override;
  int post_select(arch::Gpu& gpu, unsigned sm, unsigned ppb, int slot) override;
  std::uint64_t post_fetch_word(arch::Gpu&, unsigned sm, unsigned ppb,
                                unsigned slot, std::uint64_t word) override;
  void pre_execute(arch::ExecCtx& ctx) override;
  void post_execute(arch::ExecCtx& ctx) override;

 private:
  void drive_defaults();
  void write_cycle(const std::function<void()>& set_fields);
  void sync_state(arch::Gpu& gpu, unsigned sm, unsigned ppb);

  unsigned sm_, ppb_;
  std::unique_ptr<Netlist> nl_;
  Simulator sim_;
  bool lane_cfg_written_ = false;
  struct WarpShadow {
    bool valid = false, done = false, barrier = false;
    std::uint32_t mask = 0;
  };
  std::array<WarpShadow, 8> shadow_{};
  std::uint32_t issue_active_ = 0;  ///< netlist active_lanes for this issue
  int issue_slot_ = -1;
  bool issued_ = false;

  struct Ports;
  std::unique_ptr<Ports> p_;
};

/// Fan-out MachineHooks to several listeners (e.g., cosim + instrumenter).
/// Value-returning stages chain left to right.
class HookChain final : public arch::MachineHooks {
 public:
  void add(arch::MachineHooks* h) { hooks_.push_back(h); }

  void on_launch_begin(arch::Gpu& g, const isa::Program& p) override {
    for (auto* h : hooks_) h->on_launch_begin(g, p);
  }
  void pre_cycle(arch::Gpu& g, unsigned sm, unsigned ppb) override {
    for (auto* h : hooks_) h->pre_cycle(g, sm, ppb);
  }
  int post_select(arch::Gpu& g, unsigned sm, unsigned ppb, int slot) override {
    for (auto* h : hooks_) slot = h->post_select(g, sm, ppb, slot);
    return slot;
  }
  std::uint32_t post_fetch_pc(arch::Gpu& g, unsigned sm, unsigned ppb,
                              unsigned slot, std::uint32_t pc) override {
    for (auto* h : hooks_) pc = h->post_fetch_pc(g, sm, ppb, slot, pc);
    return pc;
  }
  std::uint64_t post_fetch_word(arch::Gpu& g, unsigned sm, unsigned ppb,
                                unsigned slot, std::uint64_t w) override {
    for (auto* h : hooks_) w = h->post_fetch_word(g, sm, ppb, slot, w);
    return w;
  }
  void post_decode(arch::Gpu& g, unsigned sm, unsigned ppb, isa::Instruction& in,
                   bool& ok) override {
    for (auto* h : hooks_) h->post_decode(g, sm, ppb, in, ok);
  }
  void pre_execute(arch::ExecCtx& c) override {
    for (auto* h : hooks_) h->pre_execute(c);
  }
  void post_execute(arch::ExecCtx& c) override {
    for (auto* h : hooks_) h->post_execute(c);
  }

 private:
  std::vector<arch::MachineHooks*> hooks_;
};

}  // namespace gpf::gate
