// AVX-512 path of the batch engine: LaneWord<512> is one zmm register. This
// TU is compiled with -mavx512f (see src/gate/CMakeLists.txt) and must only
// be entered through the cpuid-gated dispatch in batchsim.cpp.
#include "gate/batchsim_impl.hpp"

namespace gpf::gate {

template class BatchFaultSimT<512>;

std::unique_ptr<BatchSim> make_batch_sim_512(const Netlist& nl) {
  return std::make_unique<BatchFaultSimT<512>>(nl);
}

}  // namespace gpf::gate
