// Fault-dictionary export: the per-fault characterization database the
// paper publishes alongside the tool (gate-level analyses + error models per
// fault). CSV schema, one row per evaluated stuck-at fault:
//
//   unit,net,stuck,class,activated,hang,IOC,IVOC,...,IMD
//
// where the 13 trailing columns are the "times produced (SW)" counts.
#pragma once

#include <iosfwd>

#include "gate/replay.hpp"

namespace gpf::gate {

void write_fault_dictionary(std::ostream& os, const UnitCampaignResult& result);

/// Parse a dictionary back (for downstream tooling / tests).
std::vector<FaultCharacterization> read_fault_dictionary(std::istream& is);

}  // namespace gpf::gate
