// Event-driven single-fault simulation: instead of re-evaluating the whole
// netlist for every (fault, cycle), propagate only the difference cone
// between the faulty and the fault-free machine, using the golden per-cycle
// net values the replay campaign already stores. This is the classic
// single-fault concurrent-simulation optimization; bench_eventsim measures
// the speed-up and tests assert classification equivalence with the
// brute-force simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "gate/netlist.hpp"
#include "gate/sim.hpp"

namespace gpf::gate {

struct CompiledNetlist;
struct GateProgram;

class EventFaultSim {
 public:
  explicit EventFaultSim(const Netlist& nl);

  /// Install the fault and clear all divergence state.
  void begin(const StuckFault& f);

  /// Evaluate one cycle. `golden` holds the fault-free net values of this
  /// cycle (as stored by UnitReplayer::compute_golden: combinational values
  /// settled, DFF outputs = state at cycle start). Returns true if any net
  /// diverges this cycle.
  bool eval_cycle(const std::vector<std::uint8_t>& golden);

  /// Latch: compute which DFFs will hold a divergent value next cycle.
  /// `golden_next` is the next cycle's stored snapshot (whose DFF outputs
  /// are the fault-free next states); pass nullptr on the last cycle.
  void clock(const std::vector<std::uint8_t>& golden,
             const std::vector<std::uint8_t>& golden_next);

  /// Faulty value of a net under the current cycle's divergence.
  bool value(Net n, const std::vector<std::uint8_t>& golden) const {
    return diverged(n) ? faulty_val_[static_cast<std::size_t>(n)] != 0
                       : golden[static_cast<std::size_t>(n)] != 0;
  }
  std::uint64_t bus_value(const PortBus& bus,
                          const std::vector<std::uint8_t>& golden) const;

  bool any_divergence() const { return !divergent_now_.empty(); }
  /// True when some DFF carries a divergent value into the next cycle.
  bool state_live() const { return !divergent_state_.empty(); }

 private:
  bool diverged(Net n) const {
    return stamp_[static_cast<std::size_t>(n)] == epoch_;
  }
  void mark(Net n, bool v);
  void enqueue_fanout(Net n);

  const Netlist& nl_;
  const CompiledNetlist& cn_;  ///< levels + CSR fan-out, lowered at finalize()
  const GateProgram& gp_;      ///< shared gate program (full stream)

  StuckFault fault_{};
  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> stamp_;       ///< per-net divergence epoch
  std::vector<std::uint8_t> faulty_val_;   ///< valid when stamp == epoch
  std::vector<std::uint32_t> queued_;      ///< per-net enqueue epoch
  std::vector<std::vector<Net>> buckets_;  ///< level-ordered worklist
  std::vector<Net> divergent_now_;         ///< nets diverged this cycle
  // DFFs carrying divergent state into the next cycle: (net, faulty state).
  std::vector<std::pair<Net, std::uint8_t>> divergent_state_;
  std::vector<Net> touched_dffs_;          ///< DFF candidates this cycle
  std::vector<std::uint32_t> dff_touched_epoch_;
  std::vector<std::uint8_t> scratch_;      ///< per-net operand staging for
                                           ///< GateProgram::eval_scalar
};

}  // namespace gpf::gate
