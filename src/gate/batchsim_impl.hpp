// Template implementation of the PPSFP batch engine over LaneWord<N>. This
// header is included ONLY by the per-width translation units
// (batchsim{64,256,512}.cpp), each compiled with the matching target flags —
// never by general code. That containment is what makes per-TU -mavx2 /
// -mavx512f safe: wide vector code exists solely in TUs guarded by the
// runtime cpuid dispatch in batchsim.cpp, so a pre-AVX2 machine never
// executes (or even links in statically-chosen copies of) ymm/zmm code.
#pragma once

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "common/env.hpp"
#include "gate/batchsim.hpp"
#include "gate/compiled.hpp"
#include "obs/metrics.hpp"

namespace gpf::gate {

template <unsigned N>
class BatchFaultSimT final : public BatchSim {
 public:
  using W = LaneWord<N>;
  static constexpr std::size_t kLanes = N;

  explicit BatchFaultSimT(const Netlist& nl)
      : nl_(nl),
        cn_(nl.compiled()),
        val_(nl.num_nets(), W::zero()),
        force0_(nl.num_nets(), W::zero()),
        force1_(nl.num_nets(), W::zero()),
        dff_next_(nl.dffs().size(), W::zero()),
        cone_enabled_(gpf::cone_enabled()) {
    if (!nl.finalized()) throw std::logic_error("netlist not finalized");
  }

  std::size_t width() const override { return kLanes; }
  const char* path_name() const override { return batch_simd_path(kLanes); }

  void begin(std::span<const StuckFault> faults) override {
    if (faults.size() > kLanes)
      throw std::invalid_argument("more faults than batch lanes");
    // Batch occupancy: lanes/width per begin(); one begin per (batch, trace).
    static obs::Counter& batches = obs::counter("gate.batches");
    static obs::Counter& lanes = obs::counter("gate.batch_lanes");
    batches.add(1);
    lanes.add(faults.size());
    for (const Net n : forced_nets_) {
      force0_[static_cast<std::size_t>(n)] = W::zero();
      force1_[static_cast<std::size_t>(n)] = W::zero();
    }
    forced_nets_.clear();
    source_sites_.clear();
    sites_.clear();
    lane_mask_ = W::zero();
    cone_live_ = false;  // the cone is per-batch; rebuilt on first eval_cone()
    std::fill(val_.begin(), val_.end(), W::zero());

    for (std::size_t k = 0; k < faults.size(); ++k) {
      const StuckFault& f = faults[k];
      const auto site = static_cast<std::size_t>(f.net);
      sites_.push_back(f.net);
      lane_mask_.set(static_cast<unsigned>(k));
      if (!force0_[site].any() && !force1_[site].any())
        forced_nets_.push_back(f.net);
      (f.stuck_high ? force1_ : force0_)[site].set(static_cast<unsigned>(k));
      const GateKind kind = nl_.gate(f.net).kind;
      if (kind == GateKind::Input || kind == GateKind::Const0 ||
          kind == GateKind::Const1 || kind == GateKind::Dff)
        source_sites_.push_back(f.net);
    }
  }

  std::size_t num_lanes() const override { return sites_.size(); }
  LaneMask lane_mask() const override { return lane_mask_.to_mask(); }

  void set_observed(std::span<const Net> nets) override {
    observed_.assign(nets.begin(), nets.end());
  }
  bool cone_active() const override {
    return cone_enabled_ && lane_mask_.any();
  }

  void load_broadcast(const std::vector<std::uint8_t>& vals) override {
    for (std::size_t i = 0; i < val_.size(); ++i)
      val_[i] = W::broadcast(vals[i]);
  }

  void set_bus(const PortBus& bus, std::uint64_t value) override {
    for (std::size_t i = 0; i < bus.nets.size(); ++i)
      val_[static_cast<std::size_t>(bus.nets[i])] =
          W::broadcast((value >> i) & 1);
  }

  void eval() override {
    for (const auto& [n, v] : nl_.constants())
      val_[static_cast<std::size_t>(n)] = W::broadcast(v);
    apply_source_overlays();
    eval_slots(AllSlots{});
  }

  void eval_cone(const std::vector<std::uint8_t>& golden) override {
    ensure_cone();
    for (const Net n : frontier_) {
      const auto i = static_cast<std::size_t>(n);
      val_[i] = W::broadcast(golden[i]);
    }
    apply_source_overlays();
    eval_slots(std::span<const std::uint32_t>(cone_slots_));
  }

  void clock() override {
    if (cone_live_) {
      // Out-of-cone DFFs cannot diverge (all their pins carry golden values),
      // and their words are refreshed through the frontier when read — so only
      // in-cone registers need the two-phase latch.
      for (const std::uint32_t i : cone_dffs_) latch(i);
      for (const std::uint32_t i : cone_dffs_)
        val_[static_cast<std::size_t>(cn_.dff_out[i])] = dff_next_[i];
      apply_source_overlays();
      return;
    }
    for (std::size_t i = 0; i < cn_.dff_out.size(); ++i)
      latch(static_cast<std::uint32_t>(i));
    for (std::size_t i = 0; i < cn_.dff_out.size(); ++i)
      val_[static_cast<std::size_t>(cn_.dff_out[i])] = dff_next_[i];
    apply_source_overlays();
  }

  bool value(Net n, unsigned lane) const override {
    return val_[static_cast<std::size_t>(n)].test(lane);
  }

  std::uint64_t bus_value(const PortBus& bus, unsigned lane) const override {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < bus.nets.size(); ++i)
      if (value(bus.nets[i], lane)) v |= std::uint64_t{1} << i;
    return v;
  }

  LaneMask bus_values(const PortBus& bus,
                      const std::vector<std::uint8_t>& golden,
                      const LaneMask& lanes, std::uint64_t golden_value,
                      std::span<std::uint64_t> out) const override {
    for_each_lane(lanes, [&](unsigned k) { out[k] = golden_value; });
    const W sel = W::from_mask(lanes) & lane_mask_;
    W diff = W::zero();
    for (std::size_t i = 0; i < bus.nets.size(); ++i) {
      const auto n = static_cast<std::size_t>(bus.nets[i]);
      const W d = (val_[n] ^ W::broadcast(golden[n])) & sel;
      if (!d.any()) continue;
      diff |= d;
      const std::uint64_t bit = std::uint64_t{1} << i;
      for_each_lane(d.to_mask(), [&](unsigned k) { out[k] ^= bit; });
    }
    return diff.to_mask();
  }

  LaneMask diff_lanes(std::span<const Net> nets,
                      const std::vector<std::uint8_t>& golden) const override {
    W m = W::zero();
    for (const Net n : nets) {
      const auto i = static_cast<std::size_t>(n);
      m |= val_[i] ^ W::broadcast(golden[i]);
    }
    return (m & lane_mask_).to_mask();
  }

  LaneMask diff_observed(const std::vector<std::uint8_t>& golden) const override {
    return diff_lanes(cone_live_ ? std::span<const Net>(observed_cone_)
                                 : std::span<const Net>(observed_),
                      golden);
  }

  LaneMask state_diff_lanes(
      const std::vector<std::uint8_t>& golden) const override {
    W m = W::zero();
    if (cone_live_) {
      for (const std::uint32_t di : cone_dffs_) {
        const auto i = static_cast<std::size_t>(cn_.dff_out[di]);
        m |= val_[i] ^ W::broadcast(golden[i]);
      }
      return (m & lane_mask_).to_mask();
    }
    for (const Net n : nl_.dffs()) {
      const auto i = static_cast<std::size_t>(n);
      m |= val_[i] ^ W::broadcast(golden[i]);
    }
    return (m & lane_mask_).to_mask();
  }

  void retire_lane(unsigned lane,
                   const std::vector<std::uint8_t>& golden) override {
    const auto site = static_cast<std::size_t>(sites_[lane]);
    force0_[site].clear(lane);
    force1_[site].clear(lane);
    lane_mask_.clear(lane);
    const W bit = W::bit(lane);
    const W keep = ~bit;
    if (cone_live_) {
      // Out-of-cone nets already track the golden machine in every lane.
      for (const Net n : cone_nets_) {
        const auto i = static_cast<std::size_t>(n);
        val_[i] = (val_[i] & keep) | (W::broadcast(golden[i]) & bit);
      }
      return;
    }
    for (std::size_t i = 0; i < val_.size(); ++i)
      val_[i] = (val_[i] & keep) | (W::broadcast(golden[i]) & bit);
  }

  std::size_t cone_gate_count() override {
    if (!cone_enabled_ || !lane_mask_.any()) return cn_.num_slots();
    ensure_cone();
    return cone_slots_.size();
  }

  std::size_t total_gate_count() const override { return cn_.num_slots(); }

 private:
  struct AllSlots {};  ///< tag: iterate every compiled slot in program order

  void latch(std::uint32_t i) {
    const Net en_n = cn_.dff_en[i];
    const W en =
        en_n == kNoNet ? W::ones() : val_[static_cast<std::size_t>(en_n)];
    const W cur = val_[static_cast<std::size_t>(cn_.dff_out[i])];
    const Net d_n = cn_.dff_d[i];
    const W d = d_n == kNoNet ? cur : val_[static_cast<std::size_t>(d_n)];
    dff_next_[i] = (en & d) | (~en & cur);
  }

  /// Word-evaluates one compiled slot and stores through the force overlay.
  void eval_slot(std::size_t s) {
    const auto va = [&](Net x) -> const W& {
      return val_[static_cast<std::size_t>(x)];
    };
    W v = W::zero();
    switch (cn_.kind[s]) {
      case GateKind::Buf: v = va(cn_.a[s]); break;
      case GateKind::Not: v = ~va(cn_.a[s]); break;
      case GateKind::And: v = va(cn_.a[s]) & va(cn_.b[s]); break;
      case GateKind::Or: v = va(cn_.a[s]) | va(cn_.b[s]); break;
      case GateKind::Nand: v = ~(va(cn_.a[s]) & va(cn_.b[s])); break;
      case GateKind::Nor: v = ~(va(cn_.a[s]) | va(cn_.b[s])); break;
      case GateKind::Xor: v = va(cn_.a[s]) ^ va(cn_.b[s]); break;
      case GateKind::Xnor: v = ~(va(cn_.a[s]) ^ va(cn_.b[s])); break;
      case GateKind::Mux: {
        const W sel = va(cn_.a[s]);
        v = (sel & va(cn_.c[s])) | (~sel & va(cn_.b[s]));
        break;
      }
      default: return;
    }
    const auto i = static_cast<std::size_t>(cn_.out[s]);
    val_[i] = (v & ~force0_[i]) | force1_[i];
  }

  void eval_slots(AllSlots) {
    for (std::size_t s = 0; s < cn_.num_slots(); ++s) eval_slot(s);
  }
  void eval_slots(std::span<const std::uint32_t> slots) {
    for (const std::uint32_t s : slots) eval_slot(s);
  }

  void apply_source_overlays() {
    for (const Net n : source_sites_) {
      const auto i = static_cast<std::size_t>(n);
      val_[i] = (val_[i] & ~force0_[i]) | force1_[i];
    }
  }

  void ensure_cone() {
    if (cone_live_) return;
    cone_live_ = true;
    if (cone_stamp_.empty()) {
      cone_stamp_.assign(cn_.num_nets(), 0);
      frontier_stamp_.assign(cn_.num_nets(), 0);
    }
    ++cone_epoch_;
    cone_slots_.clear();
    cone_dffs_.clear();
    cone_nets_.clear();
    frontier_.clear();
    observed_cone_.clear();

    const auto in_cone = [&](Net n) {
      return cone_stamp_[static_cast<std::size_t>(n)] == cone_epoch_;
    };
    // BFS over the fan-out CSR from the fault sites; cone_nets_ doubles as the
    // worklist (every reached net stays in it).
    for (const Net s : forced_nets_) {
      if (in_cone(s)) continue;
      cone_stamp_[static_cast<std::size_t>(s)] = cone_epoch_;
      cone_nets_.push_back(s);
    }
    for (std::size_t i = 0; i < cone_nets_.size(); ++i)
      for (const Net t : cn_.fanout(cone_nets_[i])) {
        if (in_cone(t)) continue;
        cone_stamp_[static_cast<std::size_t>(t)] = cone_epoch_;
        cone_nets_.push_back(t);
      }

    for (const Net n : cone_nets_) {
      const auto i = static_cast<std::size_t>(n);
      if (cn_.slot_of[i] != kNoSlot) cone_slots_.push_back(cn_.slot_of[i]);
      if (cn_.dff_index[i] >= 0)
        cone_dffs_.push_back(static_cast<std::uint32_t>(cn_.dff_index[i]));
    }
    std::sort(cone_slots_.begin(), cone_slots_.end());  // levelized order
    std::sort(cone_dffs_.begin(), cone_dffs_.end());

    // Frontier: every out-of-cone net some in-cone gate/DFF reads, plus the
    // observed outputs — eval_cone() broadcasts their golden values so reads
    // through bus_value()/diff_observed() need no cone awareness.
    const auto add_frontier = [&](Net n) {
      if (n == kNoNet || in_cone(n)) return;
      auto& st = frontier_stamp_[static_cast<std::size_t>(n)];
      if (st == cone_epoch_) return;
      st = cone_epoch_;
      frontier_.push_back(n);
    };
    for (const std::uint32_t s : cone_slots_) {
      add_frontier(cn_.a[s]);
      add_frontier(cn_.b[s]);
      add_frontier(cn_.c[s]);
    }
    for (const std::uint32_t i : cone_dffs_) {
      add_frontier(cn_.dff_d[i]);
      add_frontier(cn_.dff_en[i]);
    }
    for (const Net n : observed_) {
      if (in_cone(n))
        observed_cone_.push_back(n);
      else
        add_frontier(n);
    }

    // Cone fraction = cone_gates / cone_total_gates across all builds.
    static obs::Counter& builds = obs::counter("gate.cone_builds");
    static obs::Counter& cone_gates = obs::counter("gate.cone_gates");
    static obs::Counter& total_gates = obs::counter("gate.cone_total_gates");
    builds.add(1);
    cone_gates.add(cone_slots_.size());
    total_gates.add(cn_.num_slots());
  }

  const Netlist& nl_;
  const CompiledNetlist& cn_;
  std::vector<W> val_;       ///< [net] -> N fault lanes
  std::vector<W> force0_;    ///< per-net stuck-at-0 lane masks
  std::vector<W> force1_;    ///< per-net stuck-at-1 lane masks
  std::vector<W> dff_next_;  ///< reusable clock() sample buffer
  std::vector<Net> forced_nets_;  ///< fault sites (dedup'd)
  std::vector<Net> source_sites_; ///< Input/Const/Dff fault sites
  std::vector<Net> sites_;        ///< per-lane fault site
  W lane_mask_ = W::zero();

  // Cone state (valid for the current batch once cone_live_).
  const bool cone_enabled_;  ///< GPF_CONE knob, latched at ctor
  bool cone_live_ = false;   ///< cone built for current batch
  std::uint32_t cone_epoch_ = 0;
  std::vector<std::uint32_t> cone_stamp_;      ///< per-net in-cone epoch
  std::vector<std::uint32_t> frontier_stamp_;  ///< per-net frontier epoch
  std::vector<std::uint32_t> cone_slots_;      ///< in-cone program slots
  std::vector<std::uint32_t> cone_dffs_;       ///< in-cone DFF indices
  std::vector<Net> cone_nets_;                 ///< all in-cone nets
  std::vector<Net> frontier_;                  ///< golden-refreshed nets
  std::vector<Net> observed_;                  ///< classification read set
  std::vector<Net> observed_cone_;             ///< observed_ ∩ cone
};

}  // namespace gpf::gate
