// Template implementation of the PPSFP batch engine over LaneWord<N>. This
// header is included ONLY by the per-width translation units
// (batchsim{64,256,512}.cpp), each compiled with the matching target flags —
// never by general code. That containment is what makes per-TU -mavx2 /
// -mavx512f safe: wide vector code exists solely in TUs guarded by the
// runtime cpuid dispatch in batchsim.cpp, so a pre-AVX2 machine never
// executes (or even links in statically-chosen copies of) ymm/zmm code.
//
// Since PR 9 the engine runs the optimized gate program (gate/gateprog.hpp)
// in one of three modes:
//
//   legacy  the PR 6 inner loop — opcode switch over CompiledNetlist slots
//           with a per-store force overlay. Kept behind
//           set_batch_legacy_engine() as the bench/test baseline.
//   full    GPF_FUSE=0: the 1:1 instruction stream, direct-threaded
//           (computed goto), stuck-at forces applied as sparse fixups
//           between instructions instead of per store.
//   fused   GPF_FUSE=1 (default): the folded/fused/DCE'd/vreg-renamed
//           stream, optionally JIT-compiled to native code (GPF_JIT).
//
// Exactness of the fused mode under arbitrary fault sites, per batch:
//   - a forced net the stream writes (own index or vreg slot) gets a fixup
//     right after the writing instruction — exact because the stream is
//     levelized (all consumers run later);
//   - a forced interior of a fused superop re-expands that superop to its
//     original slots for the batch (patch), materializing the site;
//   - a forced net whose constant value folding consumed re-expands every
//     folded op (patch), restoring the original data flow;
//   - a forced dead net needs nothing: no live net depends on it, so every
//     classification read (observed buses, DFF state) is untouched — the
//     same Benign/Latent outcome the unoptimized engine computes.
//   - an observed net the fused stream doesn't keep value-exact pins the
//     instance to the full stream (only exotic tests observe non-bus nets).
// JIT full evaluation is used for a batch when its fanout cone would not
// prune enough to beat native straight-line code; patched batches always
// interpret.
#pragma once

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "common/env.hpp"
#include "gate/batchsim.hpp"
#include "gate/compiled.hpp"
#include "gate/gateprog.hpp"
#include "gate/jit.hpp"
#include "obs/metrics.hpp"

namespace gpf::gate {

template <unsigned N>
class BatchFaultSimT final : public BatchSim {
 public:
  using W = LaneWord<N>;
  static constexpr std::size_t kLanes = N;
  // Below this in-cone fraction the interpreted cone program beats JIT'd
  // full evaluation; above it, native straight-line code wins.
  static constexpr double kJitConeThreshold = 0.35;
  // The interpreter keeps its cone longer than the JIT (its per-op cost is
  // higher, so skipped ops are worth more), but once the union cone covers
  // most of the netlist the per-cycle frontier refresh and cone-restricted
  // bookkeeping cost more than the out-of-cone ops they avoid.
  static constexpr double kInterpConeThreshold = 0.55;

  explicit BatchFaultSimT(const Netlist& nl)
      : nl_(nl),
        cn_(nl.compiled()),
        gp_(nl.program()),
        mode_(batch_legacy_engine()   ? Mode::Legacy
              : gpf::fuse_enabled()   ? Mode::Fused
                                      : Mode::Full),
        base_(mode_ == Mode::Fused ? &gp_.fused : &gp_.full),
        num_nets_(nl.num_nets()),
        val_(mode_ == Mode::Legacy ? num_nets_ : gp_.storage_size, W::zero()),
        force0_(num_nets_, W::zero()),
        force1_(num_nets_, W::zero()),
        forced_flag_(num_nets_, 0),
        dff_next_(nl.dffs().size(), W::zero()),
        cone_enabled_(gpf::cone_enabled()) {
    if (!nl.finalized()) throw std::logic_error("netlist not finalized");
    if (mode_ != Mode::Legacy) jit_ = jit_module(gp_, *base_, N);
    // Latch-order partition: only a DFF whose out net feeds another DFF's
    // D/EN pin needs the two-phase (compute-all-then-store) latch; the rest
    // can compute and store in one pass, saving a word load+store per DFF
    // per clock. Reading any dff out during phase A still sees the
    // pre-clock value, because direct stores touch only nets no DFF reads.
    dff_deferred_flag_.assign(cn_.dff_out.size(), 0);
    {
      std::vector<std::uint8_t> is_pin(num_nets_, 0);
      for (std::size_t i = 0; i < cn_.dff_out.size(); ++i) {
        if (cn_.dff_d[i] != kNoNet)
          is_pin[static_cast<std::size_t>(cn_.dff_d[i])] = 1;
        if (cn_.dff_en[i] != kNoNet)
          is_pin[static_cast<std::size_t>(cn_.dff_en[i])] = 1;
      }
      for (std::size_t i = 0; i < cn_.dff_out.size(); ++i) {
        // The legacy engine is the frozen PR 6 baseline: keep its latch
        // two-phase for every DFF so bench comparisons measure the real
        // historical engine.
        dff_deferred_flag_[i] =
            mode_ == Mode::Legacy ||
            is_pin[static_cast<std::size_t>(cn_.dff_out[i])];
        (dff_deferred_flag_[i] ? dff_deferred_ : dff_direct_)
            .push_back(static_cast<std::uint32_t>(i));
      }
    }
  }

  std::size_t width() const override { return kLanes; }
  const char* path_name() const override { return batch_simd_path(kLanes); }
  const char* engine_desc() const override {
    switch (mode_) {
      case Mode::Legacy: return "legacy";
      case Mode::Full: return jit_ ? "full+jit" : "full";
      case Mode::Fused: return jit_ ? "fused+jit" : "fused";
    }
    return "?";
  }

  void begin(std::span<const StuckFault> faults) override {
    if (faults.size() > kLanes)
      throw std::invalid_argument("more faults than batch lanes");
    // Batch occupancy: lanes/width per begin(); one begin per (batch, trace).
    static obs::Counter& batches = obs::counter("gate.batches");
    static obs::Counter& lanes = obs::counter("gate.batch_lanes");
    batches.add(1);
    lanes.add(faults.size());
    // Plan reuse: the campaign driver replays the same fault batch against
    // every trace through one engine. The per-batch plan — fixups, patched
    // stream, cone program — depends only on the fault set, so an unchanged
    // set keeps it (the legacy engine predates the plan and stays as-is).
    const bool same_faults =
        mode_ != Mode::Legacy && plan_ready_ &&
        faults.size() == prev_faults_.size() &&
        std::equal(faults.begin(), faults.end(), prev_faults_.begin(),
                   [](const StuckFault& x, const StuckFault& y) {
                     return x.net == y.net && x.stuck_high == y.stuck_high;
                   });
    if (!same_faults) prev_faults_.assign(faults.begin(), faults.end());
    for (const Net n : forced_nets_) {
      force0_[static_cast<std::size_t>(n)] = W::zero();
      force1_[static_cast<std::size_t>(n)] = W::zero();
      forced_flag_[static_cast<std::size_t>(n)] = 0;
    }
    forced_nets_.clear();
    source_sites_.clear();
    sites_.clear();
    lane_mask_ = W::zero();
    // The cone is per-batch: invalidated on a fault-set change, kept (with
    // the rest of the plan) when the same batch replays another trace.
    if (!same_faults) {
      cone_built_ = false;
      cone_eval_live_ = false;
    }
    std::fill(val_.begin(), val_.end(), W::zero());

    for (std::size_t k = 0; k < faults.size(); ++k) {
      const StuckFault& f = faults[k];
      const auto site = static_cast<std::size_t>(f.net);
      sites_.push_back(f.net);
      lane_mask_.set(static_cast<unsigned>(k));
      if (!force0_[site].any() && !force1_[site].any()) {
        forced_nets_.push_back(f.net);
        forced_flag_[site] = 1;
      }
      (f.stuck_high ? force1_ : force0_)[site].set(static_cast<unsigned>(k));
      const GateKind kind = nl_.gate(f.net).kind;
      if (kind == GateKind::Input || kind == GateKind::Const0 ||
          kind == GateKind::Const1 || kind == GateKind::Dff)
        source_sites_.push_back(f.net);
    }
    if (mode_ != Mode::Legacy && !same_faults) {
      plan_batch();
      plan_ready_ = true;
    }
    static obs::Counter& jit_batches = obs::counter("gate.jit.batches");
    static obs::Counter& patch_batches = obs::counter("gate.patched_batches");
    if (use_jit_) jit_batches.add(1);
    if (patched_) patch_batches.add(1);
  }

  std::size_t num_lanes() const override { return sites_.size(); }
  LaneMask lane_mask() const override { return lane_mask_.to_mask(); }

  void set_observed(std::span<const Net> nets) override {
    if (!std::equal(nets.begin(), nets.end(), observed_.begin(),
                    observed_.end()))
      plan_ready_ = false;  // the plan's stream choice depends on this set
    observed_.assign(nets.begin(), nets.end());
    observed_exact_ = true;
    for (const Net n : observed_)
      if (!gp_.value_exact(n)) observed_exact_ = false;
  }
  bool cone_active() const override {
    return cone_enabled_ && lane_mask_.any() && !use_jit_ && !skip_cone_;
  }

  void load_broadcast(const std::vector<std::uint8_t>& vals) override {
    for (std::size_t i = 0; i < vals.size(); ++i)
      val_[i] = W::broadcast(vals[i]);
  }

  void set_bus(const PortBus& bus, std::uint64_t value) override {
    for (std::size_t i = 0; i < bus.nets.size(); ++i)
      val_[static_cast<std::size_t>(bus.nets[i])] =
          W::broadcast((value >> i) & 1);
  }

  void eval() override {
    for (const auto& [n, v] : nl_.constants())
      val_[static_cast<std::size_t>(n)] = W::broadcast(v);
    apply_source_overlays();
    switch (mode_) {
      case Mode::Legacy:
        eval_slots(AllSlots{});
        return;
      default:
        if (use_jit_) {
          jit_eval();
        } else {
          run_code(active_code_.data(), active_code_.size(),
                   std::span<const Fixup>(fixups_), nullptr);
        }
        return;
    }
  }

  /// Refresh the out-of-cone values the cone code reads. Frontier nets are
  /// never fault sites (every site seeds the cone BFS) and are only ever
  /// written by whole-word broadcasts, so their lanes stay uniform — one
  /// chunk identifies the current value and most cycles skip the store.
  void refresh_frontier(const std::vector<std::uint8_t>& golden) {
    for (const Net n : frontier_) {
      const auto i = static_cast<std::size_t>(n);
      const std::uint64_t want = golden[i] ? ~std::uint64_t{0} : 0;
      if (val_[i].v[0] != want) val_[i] = W::broadcast(golden[i]);
    }
  }

  void eval_cone(const std::vector<std::uint8_t>& golden) override {
    // Only here does cone-restricted EVAL go live: clock() may skip
    // out-of-cone DFFs solely because this path never recomputes their
    // inputs. A caller that sticks to plain eval() keeps full latching even
    // though the cone sets exist for the diff/retire read restrictions.
    cone_eval_live_ = true;
    if (mode_ == Mode::Legacy) {
      ensure_cone_legacy();
      refresh_frontier(golden);
      apply_source_overlays();
      for (const std::uint32_t s : cone_slots_) eval_slot(s);
      return;
    }
    ensure_cone_program();
    refresh_frontier(golden);
    apply_source_overlays();
    run_code(cone_code_.data(), cone_code_.size(),
             std::span<const Fixup>(cone_fixups_), golden.data());
  }

  void clock() override {
    if (cone_eval_live_) {
      // Out-of-cone DFFs cannot diverge (all their pins carry golden values),
      // and their words are refreshed through the frontier when read — so only
      // in-cone registers need latching at all.
      for (const std::uint32_t i : cone_dffs_def_) latch(i);
      for (const std::uint32_t i : cone_dffs_dir_) latch_direct(i);
      for (const std::uint32_t i : cone_dffs_def_)
        val_[static_cast<std::size_t>(cn_.dff_out[i])] = dff_next_[i];
      apply_source_overlays();
      return;
    }
    for (const std::uint32_t i : dff_deferred_) latch(i);
    for (const std::uint32_t i : dff_direct_) latch_direct(i);
    for (const std::uint32_t i : dff_deferred_)
      val_[static_cast<std::size_t>(cn_.dff_out[i])] = dff_next_[i];
    apply_source_overlays();
  }

  bool value(Net n, unsigned lane) const override {
    return val_[static_cast<std::size_t>(n)].test(lane);
  }

  std::uint64_t bus_value(const PortBus& bus, unsigned lane) const override {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < bus.nets.size(); ++i)
      if (value(bus.nets[i], lane)) v |= std::uint64_t{1} << i;
    return v;
  }

  LaneMask bus_values(const PortBus& bus,
                      const std::vector<std::uint8_t>& golden,
                      const LaneMask& lanes, std::uint64_t golden_value,
                      std::span<std::uint64_t> out) const override {
    const W sel = W::from_mask(lanes) & lane_mask_;
    if (!sel.any()) return {};
    for_each_lane(lanes, [&](unsigned k) { out[k] = golden_value; });
    W diff = W::zero();
    for (std::size_t i = 0; i < bus.nets.size(); ++i) {
      const auto n = static_cast<std::size_t>(bus.nets[i]);
      const W d = (val_[n] ^ W::broadcast(golden[n])) & sel;
      if (!d.any()) continue;
      diff |= d;
      const std::uint64_t bit = std::uint64_t{1} << i;
      for_each_lane(d.to_mask(), [&](unsigned k) { out[k] ^= bit; });
    }
    return diff.to_mask();
  }

  LaneMask diff_lanes(std::span<const Net> nets,
                      const std::vector<std::uint8_t>& golden) const override {
    W m = W::zero();
    for (const Net n : nets) {
      const auto i = static_cast<std::size_t>(n);
      m |= val_[i] ^ W::broadcast(golden[i]);
    }
    return (m & lane_mask_).to_mask();
  }

  LaneMask diff_observed(const std::vector<std::uint8_t>& golden) const override {
    // Divergence is confined to the fan-out cone no matter how values are
    // computed (forces only exist at in-cone sites), so the read restriction
    // applies whenever the sets exist — even under full-stream JIT eval.
    return diff_lanes(cone_built_ ? std::span<const Net>(observed_cone_)
                                  : std::span<const Net>(observed_),
                      golden);
  }

  LaneMask state_diff_lanes(
      const std::vector<std::uint8_t>& golden) const override {
    W m = W::zero();
    if (cone_built_) {
      for (const std::uint32_t di : cone_dffs_) {
        const auto i = static_cast<std::size_t>(cn_.dff_out[di]);
        m |= val_[i] ^ W::broadcast(golden[i]);
      }
      return (m & lane_mask_).to_mask();
    }
    for (const Net n : nl_.dffs()) {
      const auto i = static_cast<std::size_t>(n);
      m |= val_[i] ^ W::broadcast(golden[i]);
    }
    return (m & lane_mask_).to_mask();
  }

  void retire_lane(unsigned lane,
                   const std::vector<std::uint8_t>& golden) override {
    const auto site = static_cast<std::size_t>(sites_[lane]);
    force0_[site].clear(lane);
    force1_[site].clear(lane);
    lane_mask_.clear(lane);
    const W bit = W::bit(lane);
    const W keep = ~bit;
    if (cone_built_) {
      // Out-of-cone nets already track the golden machine in every lane.
      for (const Net n : cone_nets_) {
        const auto i = static_cast<std::size_t>(n);
        val_[i] = (val_[i] & keep) | (W::broadcast(golden[i]) & bit);
      }
      return;
    }
    // vreg tail slots (beyond golden.size()) need no reset: every vreg is
    // written before it is read within each eval pass.
    for (std::size_t i = 0; i < golden.size(); ++i)
      val_[i] = (val_[i] & keep) | (W::broadcast(golden[i]) & bit);
  }

  std::size_t cone_gate_count() override {
    if (!cone_enabled_ || !lane_mask_.any() || use_jit_ || skip_cone_)
      return cn_.num_slots();
    if (mode_ == Mode::Legacy) {
      ensure_cone_legacy();
      return cone_slots_.size();
    }
    ensure_cone_program();
    return cone_covered_;
  }

  std::size_t total_gate_count() const override { return cn_.num_slots(); }

 private:
  enum class Mode : std::uint8_t { Legacy, Full, Fused };
  struct AllSlots {};  ///< tag: iterate every compiled slot in program order

  /// A pending stuck-at overlay: applied to storage index `storage` right
  /// after instruction `pos` of the active code, using net `net`'s force
  /// masks. Forces stay indexed by NET (not storage) so a reused vreg slot
  /// shared by two forced nets cannot cross-contaminate.
  struct Fixup {
    std::uint32_t pos;
    std::uint32_t storage;
    Net net;
  };

  void latch(std::uint32_t i) {
    const Net en_n = cn_.dff_en[i];
    const W en =
        en_n == kNoNet ? W::ones() : val_[static_cast<std::size_t>(en_n)];
    const W cur = val_[static_cast<std::size_t>(cn_.dff_out[i])];
    const Net d_n = cn_.dff_d[i];
    const W d = d_n == kNoNet ? cur : val_[static_cast<std::size_t>(d_n)];
    dff_next_[i] = (en & d) | (~en & cur);
  }

  /// Single-pass latch for DFFs no other DFF reads: compute and store.
  void latch_direct(std::uint32_t i) {
    const Net en_n = cn_.dff_en[i];
    const W en =
        en_n == kNoNet ? W::ones() : val_[static_cast<std::size_t>(en_n)];
    W& out = val_[static_cast<std::size_t>(cn_.dff_out[i])];
    const Net d_n = cn_.dff_d[i];
    const W d = d_n == kNoNet ? out : val_[static_cast<std::size_t>(d_n)];
    out = (en & d) | (~en & out);
  }

  void overlay(std::uint32_t storage, Net net) {
    const auto f = static_cast<std::size_t>(net);
    val_[storage] = (val_[storage] & ~force0_[f]) | force1_[f];
  }

  void apply_source_overlays() {
    for (const Net n : source_sites_) {
      const auto i = static_cast<std::size_t>(n);
      val_[i] = (val_[i] & ~force0_[i]) | force1_[i];
    }
  }

  // ---- per-batch execution plan (full/fused modes) -----------------------

  void plan_batch() {
    use_jit_ = false;
    patched_ = false;
    const Stream* S = base_;
    if (mode_ == Mode::Fused) {
      if (!observed_exact_) {
        S = &gp_.full;  // exotic observed set: run the exact 1:1 stream
      } else {
        patch_ops_.clear();
        bool fold_patch = false;
        for (const Net n : forced_nets_) {
          const std::uint8_t fl = gp_.net_flags[static_cast<std::size_t>(n)];
          if (fl & kNetFoldedUse) fold_patch = true;
          if (fl & kNetInterior)
            patch_ops_.push_back(gp_.head_of[static_cast<std::size_t>(n)]);
        }
        if (fold_patch)
          for (std::size_t i = 0; i < gp_.fused.meta.size(); ++i)
            if (gp_.fused.meta[i].folded)
              patch_ops_.push_back(static_cast<std::uint32_t>(i));
        if (!patch_ops_.empty()) build_patch();
      }
    }
    active_stream_ = patched_ ? nullptr : S;
    if (!patched_) {
      active_code_ = S->code;
      active_meta_ = S->meta;
      fixups_.clear();
      for (const Net n : forced_nets_) {
        const std::uint32_t w = S->write_op[static_cast<std::size_t>(n)];
        if (w != kNoOp) fixups_.push_back(Fixup{w, S->code[w].out, n});
      }
      std::sort(fixups_.begin(), fixups_.end(),
                [](const Fixup& x, const Fixup& y) { return x.pos < y.pos; });
    }
    // JIT'd full evaluation versus interpreted cone program: only the
    // unpatched base stream has compiled code, and it only wins when the
    // union cone is a large fraction of the netlist.
    if (jit_ && !patched_ && S == base_) {
      if (!cone_enabled_ || !lane_mask_.any()) {
        use_jit_ = true;
      } else {
        ensure_cone_program();
        use_jit_ = static_cast<double>(cone_covered_) >=
                   kJitConeThreshold * static_cast<double>(cn_.num_slots());
      }
    }
    // Same call for the interpreter at a higher threshold: a cone covering
    // most of the netlist is pure overhead, so run the plain active stream.
    skip_cone_ = false;
    if (!use_jit_ && cone_enabled_ && lane_mask_.any()) {
      ensure_cone_program();
      skip_cone_ = static_cast<double>(cone_covered_) >=
                   kInterpConeThreshold * static_cast<double>(cn_.num_slots());
    }
  }

  /// Rebuilds the fused stream for this batch with the ops in patch_ops_
  /// re-expanded to their original compiled slots (gateprog.cpp::expand_op),
  /// so every fault site this batch forces is materialized at a fixup-able
  /// storage index.
  void build_patch() {
    patched_ = true;
    std::sort(patch_ops_.begin(), patch_ops_.end());
    patch_ops_.erase(std::unique(patch_ops_.begin(), patch_ops_.end()),
                     patch_ops_.end());
    patch_code_.clear();
    patch_meta_.clear();
    std::size_t pi = 0;
    for (std::size_t i = 0; i < gp_.fused.code.size(); ++i) {
      if (pi < patch_ops_.size() && patch_ops_[pi] == i) {
        expand_op(gp_, gp_.fused, static_cast<std::uint32_t>(i), patch_code_,
                  patch_meta_);
        ++pi;
      } else {
        patch_code_.push_back(gp_.fused.code[i]);
        patch_meta_.push_back(gp_.fused.meta[i]);
      }
    }
    active_code_ = patch_code_;
    active_meta_ = patch_meta_;
    fixups_.clear();
    for (std::size_t i = 0; i < patch_meta_.size(); ++i)
      if (forced_flag_[static_cast<std::size_t>(patch_meta_[i].out_net)])
        fixups_.push_back(Fixup{static_cast<std::uint32_t>(i),
                                patch_code_[i].out, patch_meta_[i].out_net});
  }

  void jit_eval() {
    W* const v = val_.data();
    std::size_t fi = 0;
    const std::size_t nfix = fixups_.size();
    // fixups_ is in stream order, which is level order.
    for (std::size_t l = 1; l < jit_->levels.size(); ++l) {
      if (const JitModule::LevelFn fn = jit_->levels[l]) fn(v);
      while (fi < nfix &&
             static_cast<std::size_t>(
                 active_meta_[fixups_[fi].pos].level) == l) {
        overlay(fixups_[fi].storage, fixups_[fi].net);
        ++fi;
      }
    }
  }

  // ---- direct-threaded interpreter ---------------------------------------

  void run_code(const Instr* code, std::size_t n, std::span<const Fixup> fx,
                const std::uint8_t* golden) {
    std::size_t start = 0;
    for (const Fixup& f : fx) {
      exec_range(code, start, f.pos + 1, golden);
      overlay(f.storage, f.net);
      start = f.pos + 1;
    }
    exec_range(code, start, n, golden);
  }

  void exec_range(const Instr* code, std::size_t i, std::size_t end,
                  const std::uint8_t* golden) {
    if (i >= end) return;
    W* const v = val_.data();
#if defined(__GNUC__) || defined(__clang__)
    static const void* const tbl[kNumOps] = {
        &&l_c0, &&l_c1, &&l_cp, &&l_nc, &&l_and, &&l_or,  &&l_nand, &&l_nor,
        &&l_xor, &&l_xnor, &&l_mux, &&l_mat, &&l_f0, &&l_f1, &&l_f2, &&l_f3,
        &&l_f4, &&l_f5, &&l_f6, &&l_f7, &&l_f8, &&l_f9, &&l_f10, &&l_f11,
        &&l_f12, &&l_f13, &&l_f14, &&l_f15, &&l_x3, &&l_xn3};
#define GPF_NEXT()          \
  do {                      \
    if (++i >= end) return; \
    goto* tbl[code[i].op];  \
  } while (0)
#define GPF_OP(label, expr)                  \
  label : {                                  \
    const Instr& q = code[i];                \
    v[q.out] = (expr);                       \
  }                                          \
  GPF_NEXT()
    goto* tbl[code[i].op];
    GPF_OP(l_c0, W::zero());
    GPF_OP(l_c1, W::ones());
    GPF_OP(l_cp, v[q.a]);
    GPF_OP(l_nc, ~v[q.a]);
    GPF_OP(l_and, v[q.a] & v[q.b]);
    GPF_OP(l_or, v[q.a] | v[q.b]);
    GPF_OP(l_nand, ~(v[q.a] & v[q.b]));
    GPF_OP(l_nor, ~(v[q.a] | v[q.b]));
    GPF_OP(l_xor, v[q.a] ^ v[q.b]);
    GPF_OP(l_xnor, ~(v[q.a] ^ v[q.b]));
    GPF_OP(l_mux, (v[q.a] & v[q.c]) | (~v[q.a] & v[q.b]));
    GPF_OP(l_mat, W::broadcast(golden[q.a]));
    GPF_OP(l_f0, (v[q.a] & v[q.b]) & v[q.c]);
    GPF_OP(l_f1, (v[q.a] | v[q.b]) & v[q.c]);
    GPF_OP(l_f2, (v[q.a] & v[q.b]) | v[q.c]);
    GPF_OP(l_f3, (v[q.a] | v[q.b]) | v[q.c]);
    GPF_OP(l_f4, ~(v[q.a] & v[q.b]) & v[q.c]);
    GPF_OP(l_f5, ~(v[q.a] | v[q.b]) & v[q.c]);
    GPF_OP(l_f6, ~(v[q.a] & v[q.b]) | v[q.c]);
    GPF_OP(l_f7, ~(v[q.a] | v[q.b]) | v[q.c]);
    GPF_OP(l_f8, ~((v[q.a] & v[q.b]) & v[q.c]));
    GPF_OP(l_f9, ~((v[q.a] | v[q.b]) & v[q.c]));
    GPF_OP(l_f10, ~((v[q.a] & v[q.b]) | v[q.c]));
    GPF_OP(l_f11, ~((v[q.a] | v[q.b]) | v[q.c]));
    GPF_OP(l_f12, ~(~(v[q.a] & v[q.b]) & v[q.c]));
    GPF_OP(l_f13, ~(~(v[q.a] | v[q.b]) & v[q.c]));
    GPF_OP(l_f14, ~(~(v[q.a] & v[q.b]) | v[q.c]));
    GPF_OP(l_f15, ~(~(v[q.a] | v[q.b]) | v[q.c]));
    GPF_OP(l_x3, v[q.a] ^ v[q.b] ^ v[q.c]);
    GPF_OP(l_xn3, ~(v[q.a] ^ v[q.b] ^ v[q.c]));
#undef GPF_OP
#undef GPF_NEXT
#else
    for (; i < end; ++i) {
      const Instr& q = code[i];
      switch (static_cast<Op>(q.op)) {
        case Op::Const0: v[q.out] = W::zero(); break;
        case Op::Const1: v[q.out] = W::ones(); break;
        case Op::Copy: v[q.out] = v[q.a]; break;
        case Op::NCopy: v[q.out] = ~v[q.a]; break;
        case Op::And: v[q.out] = v[q.a] & v[q.b]; break;
        case Op::Or: v[q.out] = v[q.a] | v[q.b]; break;
        case Op::Nand: v[q.out] = ~(v[q.a] & v[q.b]); break;
        case Op::Nor: v[q.out] = ~(v[q.a] | v[q.b]); break;
        case Op::Xor: v[q.out] = v[q.a] ^ v[q.b]; break;
        case Op::Xnor: v[q.out] = ~(v[q.a] ^ v[q.b]); break;
        case Op::Mux:
          v[q.out] = (v[q.a] & v[q.c]) | (~v[q.a] & v[q.b]);
          break;
        case Op::Mat: v[q.out] = W::broadcast(golden[q.a]); break;
        case Op::Xor3: v[q.out] = v[q.a] ^ v[q.b] ^ v[q.c]; break;
        case Op::Xnor3: v[q.out] = ~(v[q.a] ^ v[q.b] ^ v[q.c]); break;
        default: {
          const std::uint32_t bits =
              q.op - static_cast<std::uint32_t>(Op::Fuse2_0);
          W mid = (bits & 1) ? (v[q.a] | v[q.b]) : (v[q.a] & v[q.b]);
          if (bits & 4) mid = ~mid;
          W r = (bits & 2) ? (mid | v[q.c]) : (mid & v[q.c]);
          v[q.out] = (bits & 8) ? ~r : r;
          break;
        }
      }
    }
#endif
  }

  // ---- legacy (PR 6) inner loop ------------------------------------------

  /// Word-evaluates one compiled slot and stores through the force overlay.
  void eval_slot(std::size_t s) {
    const auto va = [&](Net x) -> const W& {
      return val_[static_cast<std::size_t>(x)];
    };
    W v = W::zero();
    switch (cn_.kind[s]) {
      case GateKind::Buf: v = va(cn_.a[s]); break;
      case GateKind::Not: v = ~va(cn_.a[s]); break;
      case GateKind::And: v = va(cn_.a[s]) & va(cn_.b[s]); break;
      case GateKind::Or: v = va(cn_.a[s]) | va(cn_.b[s]); break;
      case GateKind::Nand: v = ~(va(cn_.a[s]) & va(cn_.b[s])); break;
      case GateKind::Nor: v = ~(va(cn_.a[s]) | va(cn_.b[s])); break;
      case GateKind::Xor: v = va(cn_.a[s]) ^ va(cn_.b[s]); break;
      case GateKind::Xnor: v = ~(va(cn_.a[s]) ^ va(cn_.b[s])); break;
      case GateKind::Mux: {
        const W sel = va(cn_.a[s]);
        v = (sel & va(cn_.c[s])) | (~sel & va(cn_.b[s]));
        break;
      }
      default: return;
    }
    const auto i = static_cast<std::size_t>(cn_.out[s]);
    val_[i] = (v & ~force0_[i]) | force1_[i];
  }

  void eval_slots(AllSlots) {
    for (std::size_t s = 0; s < cn_.num_slots(); ++s) eval_slot(s);
  }

  // ---- fanout cone --------------------------------------------------------

  /// BFS over the fan-out CSR from the fault sites: fills cone_nets_ (the
  /// worklist doubles as the result), cone_dffs_, the in-cone stamps, and
  /// splits observed_ into in-cone/frontier. Shared by both cone builders.
  void build_cone_sets() {
    if (cone_stamp_.empty()) {
      cone_stamp_.assign(cn_.num_nets(), 0);
      frontier_stamp_.assign(cn_.num_nets(), 0);
    }
    ++cone_epoch_;
    cone_dffs_.clear();
    cone_nets_.clear();
    frontier_.clear();
    observed_cone_.clear();

    for (const Net s : forced_nets_) {
      if (in_cone(s)) continue;
      cone_stamp_[static_cast<std::size_t>(s)] = cone_epoch_;
      cone_nets_.push_back(s);
    }
    for (std::size_t i = 0; i < cone_nets_.size(); ++i)
      for (const Net t : cn_.fanout(cone_nets_[i])) {
        if (in_cone(t)) continue;
        cone_stamp_[static_cast<std::size_t>(t)] = cone_epoch_;
        cone_nets_.push_back(t);
      }
    for (const Net n : cone_nets_)
      if (cn_.dff_index[static_cast<std::size_t>(n)] >= 0)
        cone_dffs_.push_back(
            static_cast<std::uint32_t>(cn_.dff_index[static_cast<std::size_t>(n)]));
    std::sort(cone_dffs_.begin(), cone_dffs_.end());
    cone_dffs_dir_.clear();
    cone_dffs_def_.clear();
    for (const std::uint32_t i : cone_dffs_)
      (dff_deferred_flag_[i] ? cone_dffs_def_ : cone_dffs_dir_).push_back(i);
  }

  bool in_cone(Net n) const {
    return cone_stamp_[static_cast<std::size_t>(n)] == cone_epoch_;
  }

  void add_frontier(Net n) {
    if (n == kNoNet || in_cone(n)) return;
    auto& st = frontier_stamp_[static_cast<std::size_t>(n)];
    if (st == cone_epoch_) return;
    st = cone_epoch_;
    frontier_.push_back(n);
  }

  void finish_cone(std::size_t covered) {
    for (const std::uint32_t i : cone_dffs_) {
      add_frontier(cn_.dff_d[i]);
      add_frontier(cn_.dff_en[i]);
    }
    for (const Net n : observed_) {
      if (in_cone(n))
        observed_cone_.push_back(n);
      else
        add_frontier(n);
    }
    // Cone fraction = cone_gates / cone_total_gates across all builds.
    static obs::Counter& builds = obs::counter("gate.cone_builds");
    static obs::Counter& cone_gates = obs::counter("gate.cone_gates");
    static obs::Counter& total_gates = obs::counter("gate.cone_total_gates");
    builds.add(1);
    cone_gates.add(covered);
    total_gates.add(cn_.num_slots());
  }

  void ensure_cone_legacy() {
    if (cone_built_) return;
    cone_built_ = true;
    build_cone_sets();
    cone_slots_.clear();
    for (const Net n : cone_nets_) {
      const auto i = static_cast<std::size_t>(n);
      if (cn_.slot_of[i] != kNoSlot) cone_slots_.push_back(cn_.slot_of[i]);
    }
    std::sort(cone_slots_.begin(), cone_slots_.end());  // levelized order
    for (const std::uint32_t s : cone_slots_) {
      add_frontier(cn_.a[s]);
      add_frontier(cn_.b[s]);
      add_frontier(cn_.c[s]);
    }
    finish_cone(cone_slots_.size());
  }

  /// Builds the per-batch cone PROGRAM: the in-cone subsequence of the
  /// active code, with Mat pseudo-ops materializing out-of-cone values that
  /// live in vreg slots (a frontier broadcast cannot reach those), and the
  /// batch's force fixups re-positioned for the compacted code.
  void ensure_cone_program() {
    if (cone_built_) return;
    cone_built_ = true;
    build_cone_sets();
    cone_code_.clear();
    cone_fixups_.clear();
    cone_covered_ = 0;
    // Collect the in-cone op indices. With an unpatched stream this is
    // O(|cone|) through write_op (index order == levelized order after the
    // sort); only patched batches pay a full-stream scan.
    cone_ops_.clear();
    if (active_stream_) {
      for (const Net n : cone_nets_) {
        const std::uint32_t w =
            active_stream_->write_op[static_cast<std::size_t>(n)];
        if (w != kNoOp) cone_ops_.push_back(w);
      }
      std::sort(cone_ops_.begin(), cone_ops_.end());
    } else {
      for (std::size_t i = 0; i < active_code_.size(); ++i)
        if (in_cone(active_meta_[i].out_net))
          cone_ops_.push_back(static_cast<std::uint32_t>(i));
    }
    for (const std::uint32_t i : cone_ops_) {
      const OpMeta& m = active_meta_[i];
      const Instr& q = active_code_[i];
      const Net srcs[3] = {m.src_a, m.src_b, m.src_c};
      const std::uint32_t stor[3] = {q.a, q.b, q.c};
      for (int k = 0; k < 3; ++k) {
        const Net s = srcs[k];
        if (s == kNoNet || in_cone(s)) continue;
        if (stor[k] >= num_nets_) {
          // Out-of-cone producer renamed to a vreg slot: materialize its
          // golden value right before the (single) consumer.
          Instr mat;
          mat.op = static_cast<std::uint32_t>(Op::Mat);
          mat.a = static_cast<std::uint32_t>(s);
          mat.out = stor[k];
          cone_code_.push_back(mat);
        } else {
          add_frontier(s);
        }
      }
      if (forced_flag_[static_cast<std::size_t>(m.out_net)])
        cone_fixups_.push_back(
            Fixup{static_cast<std::uint32_t>(cone_code_.size()), q.out,
                  m.out_net});
      cone_code_.push_back(q);
      cone_covered_ += m.cover_count;
    }
    finish_cone(cone_covered_);
  }

  const Netlist& nl_;
  const CompiledNetlist& cn_;
  const GateProgram& gp_;
  const Mode mode_;          ///< legacy / full / fused, latched at ctor
  const Stream* base_;       ///< the mode's default stream
  const std::size_t num_nets_;
  std::shared_ptr<const JitModule> jit_;  ///< nullptr = interpret
  std::vector<W> val_;       ///< [storage] -> N fault lanes (nets then vregs)
  std::vector<W> force0_;    ///< per-net stuck-at-0 lane masks
  std::vector<W> force1_;    ///< per-net stuck-at-1 lane masks
  std::vector<std::uint8_t> forced_flag_;  ///< per-net: forced in this batch
  std::vector<W> dff_next_;  ///< reusable clock() sample buffer
  std::vector<Net> forced_nets_;  ///< fault sites (dedup'd)
  std::vector<Net> source_sites_; ///< Input/Const/Dff fault sites
  std::vector<Net> sites_;        ///< per-lane fault site
  W lane_mask_ = W::zero();

  // Per-batch execution plan (full/fused modes).
  std::span<const Instr> active_code_;
  std::span<const OpMeta> active_meta_;
  const Stream* active_stream_ = nullptr;  ///< null when patched
  std::vector<Fixup> fixups_;  ///< sorted by pos; level order too
  bool use_jit_ = false;
  bool skip_cone_ = false;  ///< cone covers too much; run the full stream
  bool patched_ = false;
  bool plan_ready_ = false;  ///< plan below is valid for prev_faults_
  std::vector<StuckFault> prev_faults_;
  std::vector<std::uint32_t> patch_ops_;
  std::vector<Instr> patch_code_;
  std::vector<OpMeta> patch_meta_;
  std::vector<Net> observed_;  ///< classification read set
  bool observed_exact_ = true;

  // Cone state (valid for the current batch once cone_built_).
  const bool cone_enabled_;  ///< GPF_CONE knob, latched at ctor
  bool cone_built_ = false;  ///< cone sets/program built for current batch
  bool cone_eval_live_ = false;  ///< driver called eval_cone() this batch, so
                                 ///< clock() may latch in-cone DFFs only; any
                                 ///< full-stream eval (plain eval(), JIT,
                                 ///< cone-skip) keeps full latching while the
                                 ///< sets keep restricting diff/retire reads
  std::uint32_t cone_epoch_ = 0;
  std::vector<std::uint32_t> cone_stamp_;      ///< per-net in-cone epoch
  std::vector<std::uint32_t> frontier_stamp_;  ///< per-net frontier epoch
  std::vector<std::uint32_t> cone_slots_;      ///< legacy: in-cone slots
  std::vector<std::uint32_t> cone_ops_;        ///< in-cone active-code indices
  std::vector<Instr> cone_code_;               ///< in-cone program + Mat ops
  std::vector<Fixup> cone_fixups_;
  std::size_t cone_covered_ = 0;  ///< compiled slots covered by cone_code_
  std::vector<std::uint32_t> cone_dffs_;       ///< in-cone DFF indices
  std::vector<std::uint32_t> cone_dffs_dir_;   ///< in-cone, single-pass latch
  std::vector<std::uint32_t> cone_dffs_def_;   ///< in-cone, two-phase latch
  std::vector<std::uint32_t> dff_direct_;      ///< single-pass latch set
  std::vector<std::uint32_t> dff_deferred_;    ///< two-phase latch set
  std::vector<std::uint8_t> dff_deferred_flag_;  ///< per-DFF partition bit
  std::vector<Net> cone_nets_;                 ///< all in-cone nets
  std::vector<Net> frontier_;                  ///< golden-refreshed nets
  std::vector<Net> observed_cone_;             ///< observed_ ∩ cone
};

}  // namespace gpf::gate
