// Structural stuck-at fault collapsing: the classic ATPG equivalence rules
// partition the fault list into classes whose members are provably
// indistinguishable at the unit outputs, so a campaign simulates one
// representative per class and copies its observation record to every member.
//
// Per-gate rules (gate output z, input x):
//   Buf : x s-a-v ≡ z s-a-v        Not : x s-a-v ≡ z s-a-¬v
//   And : x s-a-0 ≡ z s-a-0        Nand: x s-a-0 ≡ z s-a-1
//   Or  : x s-a-1 ≡ z s-a-1        Nor : x s-a-1 ≡ z s-a-0
// A rule applies only when x has exactly one pin use in the whole netlist
// (a fanout stem is observable through its other branches) and x is not part
// of any output port bus (an observed net's own value distinguishes the two
// faults even when the downstream cone is identical). Xor/Xnor/Mux and DFF
// pins admit no structural equivalence (a stuck DFF input is the output
// fault delayed by a cycle). Classes are transitive across Buf/Not chains.
//
// Only the observation record (error counts, hang) is class-invariant; the
// `activated` bit depends on the member's own site and is recomputed from
// the golden traces at expansion time (see report::GateUnitRunner).
#pragma once

#include <cstdint>
#include <vector>

#include "gate/netlist.hpp"
#include "gate/sim.hpp"

namespace gpf::gate {

class FaultCollapse {
 public:
  explicit FaultCollapse(const Netlist& nl);

  /// The deterministic representative of f's equivalence class: the member
  /// whose site is topologically deepest (smallest fanout cone to simulate),
  /// ties broken by node id.
  StuckFault representative(const StuckFault& f) const {
    const std::uint32_t r = rep_[node(f)];
    return StuckFault{static_cast<Net>(r >> 1), (r & 1u) != 0};
  }
  bool is_representative(const StuckFault& f) const {
    return rep_[node(f)] == node(f);
  }

  /// Classes / faults over the full fault list of the netlist (both counts
  /// exclude constant nets, like full_fault_list).
  std::size_t class_count() const { return class_count_; }
  std::size_t fault_count() const { return fault_count_; }

  static std::uint32_t node(const StuckFault& f) {
    return (static_cast<std::uint32_t>(f.net) << 1) | (f.stuck_high ? 1u : 0u);
  }

 private:
  std::vector<std::uint32_t> rep_;  ///< fault node -> representative node
  std::size_t class_count_ = 0;
  std::size_t fault_count_ = 0;
};

}  // namespace gpf::gate
