// Word-level structural generators over a Netlist: the building blocks the
// unit netlists are assembled from (field extractors, comparators, adders,
// mux trees, priority arbiters, register banks).
#pragma once

#include <cstdint>
#include <vector>

#include "gate/netlist.hpp"

namespace gpf::gate {

using Word = std::vector<Net>;  // LSB first

class WordOps {
 public:
  explicit WordOps(Netlist& nl) : nl_(nl) {}

  Word inputs(unsigned width);
  Word constant(std::uint64_t value, unsigned width);
  Word slice(const Word& w, unsigned lo, unsigned width) const;

  Word not_(const Word& a);
  Word and_(const Word& a, const Word& b);
  Word or_(const Word& a, const Word& b);
  Word xor_(const Word& a, const Word& b);
  Word and_bit(const Word& a, Net bit);  ///< gate every bit with `bit`
  Word mux(Net sel, const Word& when0, const Word& when1);

  Net reduce_and(const Word& a);
  Net reduce_or(const Word& a);
  Net parity(const Word& a);

  /// a == k (k constant).
  Net eq_const(const Word& a, std::uint64_t k);
  /// a == b.
  Net eq(const Word& a, const Word& b);
  /// unsigned a < k (k constant).
  Net lt_const(const Word& a, std::uint64_t k);

  /// Ripple-carry a + b (+ cin); result has the same width (carry-out last
  /// element if `with_carry`).
  Word add(const Word& a, const Word& b, Net cin = kNoNet, bool with_carry = false);
  Word increment(const Word& a);

  /// One-hot decode of a binary select (width 2^sel_bits).
  Word decode_onehot(const Word& sel);
  /// Binary encode of a one-hot word (priority: lowest index wins).
  Word encode_priority(const Word& onehot, unsigned out_bits);

  /// Mux tree: out = options[sel]; options.size() must be a power of two and
  /// every option must share a width.
  Word mux_tree(const Word& sel, const std::vector<Word>& options);

  /// Register bank: `count` registers of `width` bits with per-register
  /// write-enable, a shared write-data word, and a combinational read mux.
  struct RegBank {
    std::vector<Word> regs;  ///< DFF output nets per register
  };
  RegBank reg_bank(unsigned count, unsigned width, const Word& write_sel_onehot,
                   Net write_en, const Word& write_data);

  /// Rotating priority arbiter: grant the first set request at or after
  /// `pointer` (binary). Returns {grant_onehot, any}.
  struct Arbiter {
    Word grant_onehot;
    Net any;
  };
  Arbiter rr_arbiter(const Word& requests, const Word& pointer);

  Netlist& netlist() { return nl_; }

 private:
  Netlist& nl_;
};

}  // namespace gpf::gate
