#include "gate/gateprog.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace gpf::gate {

namespace {

// Bump when the Instr encoding or Fuse2 semantics change: it feeds
// struct_hash, which keys the on-disk JIT cache.
constexpr std::uint64_t kCodegenVersion = 2;

constexpr std::uint32_t kMaxVRegs = 64;

Op plain_op(GateKind k) {
  switch (k) {
    case GateKind::Buf: return Op::Copy;
    case GateKind::Not: return Op::NCopy;
    case GateKind::And: return Op::And;
    case GateKind::Or: return Op::Or;
    case GateKind::Nand: return Op::Nand;
    case GateKind::Nor: return Op::Nor;
    case GateKind::Xor: return Op::Xor;
    case GateKind::Xnor: return Op::Xnor;
    case GateKind::Mux: return Op::Mux;
    default: throw std::logic_error("plain_op: not a combinational gate");
  }
}

/// Folded form of one gate: opcode plus the (at most 3) nets it still reads.
struct Folded {
  Op op;
  Net a = kNoNet, b = kNoNet, c = kNoNet;
  bool folded = false;  ///< differs from the 1:1 translation
};

struct Fnv {
  std::uint64_t h = 1469598103934665603ull;
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ull;
    }
  }
};

}  // namespace

GateProgram::GateProgram(const Netlist& nl,
                         std::shared_ptr<const CompiledNetlist> cn_in)
    : cn(std::move(cn_in)) {
  const CompiledNetlist& c = *cn;
  num_nets = c.num_nets();
  const std::size_t num_slots = c.num_slots();

  // ---- full stream: 1:1 with compiled slots, storage == net -------------
  full.code.resize(num_slots);
  full.meta.resize(num_slots);
  full.write_op.assign(num_nets, kNoOp);
  full.storage_of.resize(num_nets);
  for (std::size_t n = 0; n < num_nets; ++n)
    full.storage_of[n] = static_cast<std::uint32_t>(n);
  full.cover.resize(num_slots);
  for (std::size_t s = 0; s < num_slots; ++s) {
    Instr& in = full.code[s];
    in.op = static_cast<std::uint32_t>(plain_op(c.kind[s]));
    in.a = c.a[s] == kNoNet ? 0 : static_cast<std::uint32_t>(c.a[s]);
    in.b = c.b[s] == kNoNet ? 0 : static_cast<std::uint32_t>(c.b[s]);
    in.c = c.c[s] == kNoNet ? 0 : static_cast<std::uint32_t>(c.c[s]);
    in.out = static_cast<std::uint32_t>(c.out[s]);
    OpMeta& m = full.meta[s];
    m.out_net = c.out[s];
    m.src_a = c.a[s];
    m.src_b = c.b[s];
    m.src_c = c.kind[s] == GateKind::Mux ? c.c[s] : kNoNet;
    m.cover_begin = static_cast<std::uint32_t>(s);
    m.cover_count = 1;
    m.level = c.level[static_cast<std::size_t>(c.out[s])];
    full.cover[s] = static_cast<std::uint32_t>(s);
    full.write_op[static_cast<std::size_t>(c.out[s])] =
        static_cast<std::uint32_t>(s);
  }

  net_flags.assign(num_nets, 0);
  head_of.assign(num_nets, kNoOp);

  // ---- pass 1: constant folding over derived values ---------------------
  // cval[n] = 0/1 when n's value is a compile-time constant, -1 otherwise.
  // Folding is exact for fault-free nets; a fault forced onto a net whose
  // constant value some op consumed (kNetFoldedUse) makes the engine patch
  // every folded op back to its original slots for that batch.
  std::vector<std::int8_t> cval(num_nets, -1);
  for (const auto& [n, v] : nl.constants()) cval[static_cast<std::size_t>(n)] = static_cast<std::int8_t>(v);

  std::vector<Folded> fold(num_slots);
  const auto mark_folded_use = [&](Net n) {
    if (n != kNoNet) net_flags[static_cast<std::size_t>(n)] |= kNetFoldedUse;
  };
  for (std::size_t s = 0; s < num_slots; ++s) {
    const GateKind k = c.kind[s];
    const Net a = c.a[s], b = c.b[s], cc = c.c[s];
    const auto cv = [&](Net n) -> int {
      return n == kNoNet ? -1 : cval[static_cast<std::size_t>(n)];
    };
    Folded f;
    f.op = plain_op(k);
    f.a = a;
    f.b = (k == GateKind::Buf || k == GateKind::Not) ? kNoNet : b;
    f.c = k == GateKind::Mux ? cc : kNoNet;
    // const_of / copy_of / ncopy_of collapse the folded form; every original
    // operand not read by the new form gets kNetFoldedUse.
    const auto finish = [&](Folded nf) {
      nf.folded = true;
      for (const Net orig : {a, f.b, f.c})
        if (orig != kNoNet && orig != nf.a && orig != nf.b && orig != nf.c)
          mark_folded_use(orig);
      fold[s] = nf;
    };
    const auto const_of = [&](bool v) {
      finish(Folded{v ? Op::Const1 : Op::Const0});
      cval[static_cast<std::size_t>(c.out[s])] = v ? 1 : 0;
    };
    const auto copy_of = [&](Net n, bool neg) {
      if (cv(n) >= 0) {
        const_of((cv(n) != 0) != neg ? true : false);
        return;
      }
      Folded nf{neg ? Op::NCopy : Op::Copy};
      nf.a = n;
      finish(nf);
    };
    const auto two_of = [&](Op op, Net x, Net y) {
      Folded nf{op};
      nf.a = x;
      nf.b = y;
      finish(nf);
    };
    switch (k) {
      case GateKind::Buf:
        if (cv(a) >= 0) const_of(cv(a) != 0);
        else fold[s] = f;
        break;
      case GateKind::Not:
        if (cv(a) >= 0) const_of(cv(a) == 0);
        else fold[s] = f;
        break;
      case GateKind::And:
      case GateKind::Nand: {
        const bool neg = k == GateKind::Nand;
        if (cv(a) == 0 || cv(b) == 0) const_of(neg);
        else if (cv(a) == 1) copy_of(b, neg);
        else if (cv(b) == 1) copy_of(a, neg);
        else fold[s] = f;
        break;
      }
      case GateKind::Or:
      case GateKind::Nor: {
        const bool neg = k == GateKind::Nor;
        if (cv(a) == 1 || cv(b) == 1) const_of(!neg);
        else if (cv(a) == 0) copy_of(b, neg);
        else if (cv(b) == 0) copy_of(a, neg);
        else fold[s] = f;
        break;
      }
      case GateKind::Xor:
      case GateKind::Xnor: {
        const bool neg = k == GateKind::Xnor;
        if (cv(a) >= 0 && cv(b) >= 0) const_of(((cv(a) ^ cv(b)) != 0) != neg);
        else if (cv(a) >= 0) copy_of(b, (cv(a) != 0) != neg);
        else if (cv(b) >= 0) copy_of(a, (cv(b) != 0) != neg);
        else fold[s] = f;
        break;
      }
      case GateKind::Mux: {
        if (cv(a) == 0) copy_of(b, false);
        else if (cv(a) == 1) copy_of(cc, false);
        else if (cv(b) >= 0 && cv(c.c[s]) >= 0 && cv(b) == cv(cc))
          const_of(cv(b) != 0);
        else if (cv(b) == 0) two_of(Op::And, a, cc);  // (s&c) | (~s&0)
        else if (cv(cc) == 1) two_of(Op::Or, a, b);   // (s&1) | (~s&b)
        else fold[s] = f;
        break;
      }
      default:
        throw std::logic_error("GateProgram: unexpected slot kind");
    }
  }

  // ---- protected nets: classification/clock read these from val_ --------
  std::vector<std::uint8_t> prot(num_nets, 0);
  for (const PortBus& bus : nl.outputs())
    for (const Net n : bus.nets) prot[static_cast<std::size_t>(n)] = 1;
  for (std::size_t i = 0; i < c.dff_d.size(); ++i) {
    if (c.dff_d[i] != kNoNet) prot[static_cast<std::size_t>(c.dff_d[i])] = 1;
    if (c.dff_en[i] != kNoNet) prot[static_cast<std::size_t>(c.dff_en[i])] = 1;
  }

  // ---- pass 2: liveness over ORIGINAL operand edges ---------------------
  // Roots are the protected nets. Original (not folded) edges keep
  // derived-constant producers alive so per-batch patching can always
  // re-expand a folded op and find its operands materialized.
  std::vector<std::uint8_t> live = prot;
  for (std::size_t si = num_slots; si-- > 0;) {
    if (!live[static_cast<std::size_t>(c.out[si])]) continue;
    for (const Net n : {c.a[si], c.b[si], c.c[si]})
      if (n != kNoNet) live[static_cast<std::size_t>(n)] = 1;
  }

  // ---- pass 3: superop fusion (buf/not chains + two-level AND/OR) -------
  // eff[] starts as the folded form and is mutated in place as heads absorb
  // fanout-1 producers; absorbed[] accumulates each head's covered slots.
  std::vector<Folded> eff = fold;
  enum Role : std::uint8_t { kPlain, kInterior, kFuse2Head };
  std::vector<std::uint8_t> role(num_slots, kPlain);
  std::vector<std::vector<std::uint32_t>> absorbed(num_slots);
  struct Fuse2Parts {
    bool f1_or, f2_or, neg_mid, neg_out;
    Net pa, pb, c;
  };
  std::vector<Fuse2Parts> f2parts(num_slots);
  std::vector<std::uint32_t> interior_head(num_nets, kNoOp);  // net -> head slot

  const auto interior_slot = [&](Net n, auto&& op_ok) -> std::int64_t {
    // Returns the producing slot when `n` may be absorbed, else -1. Fanout
    // is counted per pin USE, so a fanout-1 net is read by exactly one pin
    // anywhere — absorbing it can never leave another operand dangling.
    if (n == kNoNet || prot[static_cast<std::size_t>(n)]) return -1;
    if (c.fanout_count(n) != 1) return -1;
    const std::uint32_t ps = c.slot_of[static_cast<std::size_t>(n)];
    if (ps == kNoSlot) return -1;  // source net
    if (role[ps] != kPlain) return -1;
    return op_ok(eff[ps].op) ? static_cast<std::int64_t>(ps) : -1;
  };
  const auto slot_ok_as_interior = [&](Net n) -> std::int64_t {
    return interior_slot(n, [](Op op) {
      switch (op) {
        case Op::Copy:
        case Op::NCopy:
        case Op::And:
        case Op::Or:
        case Op::Nand:
        case Op::Nor:
          return true;
        default:
          return false;  // Const/Xor/Xnor/Mux producers stay materialized
      }
    });
  };
  const auto absorb_cover = [&](std::size_t head, std::uint32_t ps) {
    // Re-point interiors of a swallowed chain head at their final head, so
    // head_of stays correct for per-batch patching of deep-chain fault sites.
    for (const std::uint32_t x : absorbed[ps]) {
      absorbed[head].push_back(x);
      interior_head[static_cast<std::size_t>(c.out[x])] =
          static_cast<std::uint32_t>(head);
    }
    absorbed[ps].clear();
    absorbed[head].push_back(ps);
    role[ps] = kInterior;
    interior_head[static_cast<std::size_t>(c.out[ps])] =
        static_cast<std::uint32_t>(head);
  };
  // Copy operand forwarding: absorb a fanout-1 Copy (or, when the consumer
  // can fold the inversion, NCopy) producer feeding operand `n` of `head`,
  // returning {source net, inverted?}. {n, false} when nothing to forward.
  const auto forward_operand = [&](std::size_t head, Net n,
                                   bool allow_neg) -> std::pair<Net, bool> {
    const std::int64_t psi = interior_slot(n, [&](Op op) {
      return op == Op::Copy || (allow_neg && op == Op::NCopy);
    });
    if (psi < 0) return {n, false};
    const auto ps = static_cast<std::size_t>(psi);
    const Folded& p = eff[ps];
    const bool neg = p.op == Op::NCopy;
    eff[head].folded = eff[head].folded || p.folded;
    absorb_cover(head, static_cast<std::uint32_t>(ps));
    return {p.a, neg};
  };

  for (std::size_t s = 0; s < num_slots; ++s) {
    if (!live[static_cast<std::size_t>(c.out[s])]) continue;
    Folded& e = eff[s];
    if (e.op == Op::Copy || e.op == Op::NCopy) {
      // Chain fusion: swallow a fanout-1 Copy/NCopy producer, accumulating
      // the inversion parity. Transitive because producers were processed
      // (and collapsed) first.
      const std::int64_t ps = slot_ok_as_interior(e.a);
      if (ps >= 0 && (eff[static_cast<std::size_t>(ps)].op == Op::Copy ||
                      eff[static_cast<std::size_t>(ps)].op == Op::NCopy)) {
        const Folded& p = eff[static_cast<std::size_t>(ps)];
        if (p.op == Op::NCopy) e.op = e.op == Op::Copy ? Op::NCopy : Op::Copy;
        e.a = p.a;
        e.folded = e.folded || p.folded;
        absorb_cover(s, static_cast<std::uint32_t>(ps));
      }
      continue;
    }
    if (e.op == Op::Xor || e.op == Op::Xnor) {
      // Xor-pair fusion: swallow one fanout-1 Xor/Xnor producer into
      // Xor3/Xnor3. Inversions compose by parity, so an Xnor at either
      // level only flips the fused opcode.
      for (const bool first : {true, false}) {
        const Net cand = first ? e.a : e.b;
        const std::int64_t psi = interior_slot(
            cand, [](Op op) { return op == Op::Xor || op == Op::Xnor; });
        if (psi < 0) continue;
        const auto ps = static_cast<std::size_t>(psi);
        const Folded& p = eff[ps];
        const bool neg = (e.op == Op::Xnor) != (p.op == Op::Xnor);
        const Net other = first ? e.b : e.a;
        e.op = neg ? Op::Xnor3 : Op::Xor3;
        e.a = p.a;
        e.b = p.b;
        e.c = other;
        e.folded = e.folded || p.folded;
        absorb_cover(s, static_cast<std::uint32_t>(ps));
        break;
      }
      // Copy/NCopy forwarding over whatever operands remain: an NCopy
      // folds into the opcode's parity, flipping Xor<->Xnor (or the 3-ary
      // forms).
      for (Net* n : {&e.a, &e.b, &e.c}) {
        if (*n == kNoNet) continue;
        const auto [src, neg] = forward_operand(s, *n, true);
        *n = src;
        if (neg) {
          switch (e.op) {
            case Op::Xor: e.op = Op::Xnor; break;
            case Op::Xnor: e.op = Op::Xor; break;
            case Op::Xor3: e.op = Op::Xnor3; break;
            default: e.op = Op::Xor3; break;  // Xnor3
          }
        }
      }
      continue;
    }
    if (e.op == Op::Mux) {
      // Select forwarding: a Copy forwards its source; an NCopy is folded
      // by swapping the data operands — Mux(~s, b, c) == Mux(s, c, b).
      {
        const auto [src, neg] = forward_operand(s, e.a, true);
        e.a = src;
        if (neg) std::swap(e.b, e.c);
      }
      // Data operands only absorb plain Copy chains (no inversion sink).
      for (Net* n : {&e.b, &e.c}) {
        const auto [src, neg] = forward_operand(s, *n, false);
        *n = src;
        (void)neg;
      }
      continue;
    }
    if (e.op != Op::And && e.op != Op::Or && e.op != Op::Nand &&
        e.op != Op::Nor)
      continue;
    // Two-level fusion: absorb one fanout-1 producer into a Fuse2 superop.
    for (const bool first : {true, false}) {
      const Net cand = first ? e.a : e.b;
      const std::int64_t psi = slot_ok_as_interior(cand);
      if (psi < 0) continue;
      const auto ps = static_cast<std::size_t>(psi);
      const Folded& p = eff[ps];
      Fuse2Parts parts{};
      switch (p.op) {
        case Op::And: parts = {false, false, false, false, p.a, p.b, kNoNet}; break;
        case Op::Or: parts = {true, false, false, false, p.a, p.b, kNoNet}; break;
        case Op::Nand: parts = {false, false, true, false, p.a, p.b, kNoNet}; break;
        case Op::Nor: parts = {true, false, true, false, p.a, p.b, kNoNet}; break;
        // And(x, x) == x carries a one-input producer through f1.
        case Op::Copy: parts = {false, false, false, false, p.a, p.a, kNoNet}; break;
        case Op::NCopy: parts = {false, false, true, false, p.a, p.a, kNoNet}; break;
        default: continue;
      }
      parts.f2_or = e.op == Op::Or || e.op == Op::Nor;
      parts.neg_out = e.op == Op::Nand || e.op == Op::Nor;
      parts.c = first ? e.b : e.a;
      e.op = fuse2_op(parts.f1_or, parts.f2_or, parts.neg_mid, parts.neg_out);
      e.folded = e.folded || p.folded;
      f2parts[s] = parts;
      role[s] = kFuse2Head;
      absorb_cover(s, static_cast<std::uint32_t>(ps));
      break;
    }
  }

  // ---- pass 4: emission -------------------------------------------------
  std::vector<std::uint32_t> op_of_slot(num_slots, kNoOp);
  fused.write_op.assign(num_nets, kNoOp);
  fused.storage_of.resize(num_nets);
  for (std::size_t n = 0; n < num_nets; ++n)
    fused.storage_of[n] = static_cast<std::uint32_t>(n);
  for (std::size_t s = 0; s < num_slots; ++s) {
    const Net out = c.out[s];
    if (role[s] == kInterior) {
      net_flags[static_cast<std::size_t>(out)] |= kNetInterior;
      ++fused_gates;
      continue;
    }
    if (!live[static_cast<std::size_t>(out)]) {
      net_flags[static_cast<std::size_t>(out)] |= kNetDead;
      ++dead_gates;
      continue;
    }
    const Folded& e = eff[s];
    Instr in;
    in.op = static_cast<std::uint32_t>(e.op);
    in.out = static_cast<std::uint32_t>(out);
    OpMeta m;
    m.out_net = out;
    m.level = c.level[static_cast<std::size_t>(out)];
    m.folded = e.folded;
    if (e.folded) ++folded_ops;
    if (role[s] == kFuse2Head) {
      const Fuse2Parts& parts = f2parts[s];
      m.src_a = parts.pa;
      m.src_b = parts.pb;
      m.src_c = parts.c;
    } else {
      m.src_a = e.a;
      m.src_b = e.b;
      m.src_c = e.c;
    }
    m.cover_begin = static_cast<std::uint32_t>(fused.cover.size());
    std::sort(absorbed[s].begin(), absorbed[s].end());
    for (const std::uint32_t x : absorbed[s]) fused.cover.push_back(x);
    fused.cover.push_back(static_cast<std::uint32_t>(s));
    m.cover_count = static_cast<std::uint32_t>(absorbed[s].size() + 1);
    op_of_slot[s] = static_cast<std::uint32_t>(fused.code.size());
    fused.write_op[static_cast<std::size_t>(out)] = op_of_slot[s];
    fused.code.push_back(in);
    fused.meta.push_back(std::move(m));
  }
  // ---- pass 4.5: opcode-major scheduling within levels -------------------
  // Ops of one level are independent by construction (every operand lives at
  // a strictly lower level), so they can execute in any order. Sorting each
  // level by opcode turns the interpreter's indirect dispatch into long
  // same-target runs the branch predictor resolves for free; ties keep
  // emission order, so the stream stays levelized and deterministic.
  {
    const std::size_t nops = fused.code.size();
    std::vector<std::uint32_t> perm(nops);
    for (std::size_t i = 0; i < nops; ++i)
      perm[i] = static_cast<std::uint32_t>(i);
    std::stable_sort(perm.begin(), perm.end(),
                     [&](std::uint32_t x, std::uint32_t y) {
                       if (fused.meta[x].level != fused.meta[y].level)
                         return fused.meta[x].level < fused.meta[y].level;
                       return fused.code[x].op < fused.code[y].op;
                     });
    std::vector<std::uint32_t> newpos(nops);
    for (std::size_t i = 0; i < nops; ++i) newpos[perm[i]] = static_cast<std::uint32_t>(i);
    std::vector<Instr> code2(nops);
    std::vector<OpMeta> meta2(nops);
    for (std::size_t i = 0; i < nops; ++i) {
      code2[i] = fused.code[perm[i]];
      meta2[i] = std::move(fused.meta[perm[i]]);
    }
    fused.code = std::move(code2);
    fused.meta = std::move(meta2);
    for (std::size_t n = 0; n < num_nets; ++n)
      if (fused.write_op[n] != kNoOp)
        fused.write_op[n] = newpos[fused.write_op[n]];
    for (std::size_t s = 0; s < num_slots; ++s)
      if (op_of_slot[s] != kNoOp) op_of_slot[s] = newpos[op_of_slot[s]];
  }

  // interior_head points at head SLOTS; resolve to op indices.
  for (std::size_t n = 0; n < num_nets; ++n)
    if (interior_head[n] != kNoOp) head_of[n] = op_of_slot[interior_head[n]];

  // ---- pass 5: virtual-register allocation ------------------------------
  // A fanout-1, unprotected net whose single consumer is a combinational op
  // is renamed to a register slot stored past the real nets, freeing its
  // cache line for reuse the moment the consumer has read it.
  {
    const std::size_t nops = fused.code.size();
    std::vector<std::uint32_t> consumer(nops, kNoOp);
    for (std::size_t i = 0; i < nops; ++i) {
      const Net n = fused.meta[i].out_net;
      if (prot[static_cast<std::size_t>(n)] || c.fanout_count(n) != 1)
        continue;
      const Net t = c.fanout(n)[0];
      if (c.dff_index[static_cast<std::size_t>(t)] >= 0) continue;
      std::uint32_t ts = c.slot_of[static_cast<std::size_t>(t)];
      if (ts == kNoSlot) continue;
      if (role[ts] == kInterior) ts = interior_head[static_cast<std::size_t>(t)];
      const std::uint32_t cop = op_of_slot[ts];
      if (cop == kNoOp || cop <= i) continue;
      consumer[i] = cop;
    }
    std::vector<std::vector<std::uint32_t>> free_at(nops);
    std::vector<std::uint32_t> free_regs;
    std::uint32_t next_reg = 0;
    for (std::size_t i = 0; i < nops; ++i) {
      for (const std::uint32_t r : free_at[i]) free_regs.push_back(r);
      if (consumer[i] == kNoOp) continue;
      std::uint32_t r;
      if (!free_regs.empty()) {
        r = free_regs.back();
        free_regs.pop_back();
      } else if (next_reg < kMaxVRegs) {
        r = next_reg++;
      } else {
        continue;
      }
      const Net n = fused.meta[i].out_net;
      fused.storage_of[static_cast<std::size_t>(n)] =
          static_cast<std::uint32_t>(num_nets) + r;
      net_flags[static_cast<std::size_t>(n)] |= kNetVreg;
      ++vreg_nets;
      free_at[consumer[i]].push_back(r);
    }
    fused.num_vregs = next_reg;
  }
  // Rewrite every instruction's storage indices through the final renaming.
  for (std::size_t i = 0; i < fused.code.size(); ++i) {
    Instr& in = fused.code[i];
    const OpMeta& m = fused.meta[i];
    const auto st = [&](Net n) -> std::uint32_t {
      return n == kNoNet ? 0 : fused.storage_of[static_cast<std::size_t>(n)];
    };
    in.a = st(m.src_a);
    in.b = st(m.src_b);
    in.c = st(m.src_c);
    in.out = st(m.out_net);
  }

  storage_size = num_nets + fused.num_vregs;

  // ---- stats + structure hash ------------------------------------------
  static obs::Counter& fused_ctr = obs::counter("gate.fused_gates");
  static obs::Counter& dead_ctr = obs::counter("gate.dead_gates");
  static obs::Counter& vreg_ctr = obs::counter("gate.vreg_nets");
  fused_ctr.add(fused_gates);
  dead_ctr.add(dead_gates);
  vreg_ctr.add(vreg_nets);

  Fnv h;
  h.add(kCodegenVersion);
  h.add(num_nets);
  h.add(num_slots);
  for (std::size_t s = 0; s < num_slots; ++s) {
    h.add(static_cast<std::uint64_t>(c.kind[s]));
    h.add(static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.a[s])));
    h.add(static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.b[s])));
    h.add(static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.c[s])));
    h.add(static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.out[s])));
  }
  for (std::size_t i = 0; i < c.dff_out.size(); ++i) {
    h.add(static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.dff_out[i])));
    h.add(static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.dff_d[i])));
    h.add(static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.dff_en[i])));
  }
  for (const PortBus& bus : nl.outputs())
    for (const Net n : bus.nets)
      h.add(static_cast<std::uint64_t>(static_cast<std::uint32_t>(n)));
  struct_hash = h.h;
}

std::uint8_t GateProgram::eval_scalar(const Instr& in, const std::uint8_t* v) {
  const std::uint8_t a = v[in.a], b = v[in.b];
  switch (static_cast<Op>(in.op)) {
    case Op::Const0: return 0;
    case Op::Const1: return 1;
    case Op::Copy: return a;
    case Op::NCopy: return !a;
    case Op::And: return a & b;
    case Op::Or: return a | b;
    case Op::Nand: return !(a & b);
    case Op::Nor: return !(a | b);
    case Op::Xor: return a ^ b;
    case Op::Xnor: return !(a ^ b);
    case Op::Mux: return a ? v[in.c] : b;
    case Op::Xor3: return a ^ b ^ v[in.c];
    case Op::Xnor3: return !(a ^ b ^ v[in.c]);
    case Op::Mat:
      throw std::logic_error("Mat is a cone-program pseudo-op");
    default: {
      const auto bits =
          in.op - static_cast<std::uint32_t>(Op::Fuse2_0);
      std::uint8_t mid = (bits & 1) ? (a | b) : (a & b);
      if (bits & 4) mid = !mid;
      const std::uint8_t cc = v[in.c];
      std::uint8_t r = (bits & 2) ? (mid | cc) : (mid & cc);
      return (bits & 8) ? !r : r;
    }
  }
}

void expand_op(const GateProgram& gp, const Stream& st, std::uint32_t op_index,
               std::vector<Instr>& out_code, std::vector<OpMeta>& out_meta) {
  const OpMeta& m = st.meta[op_index];
  for (std::uint32_t i = 0; i < m.cover_count; ++i) {
    const std::uint32_t s = st.cover[m.cover_begin + i];
    Instr in = gp.full.code[s];
    const auto remap = [&](std::uint32_t net_idx) {
      return st.storage_of[net_idx];
    };
    // Interior nets of the covered cluster keep identity storage, so the
    // re-expanded chain wires up through val_ exactly like the full stream;
    // cluster inputs renamed to vregs elsewhere are followed to their slot.
    in.a = remap(in.a);
    in.b = remap(in.b);
    in.c = remap(in.c);
    in.out = remap(in.out);
    out_code.push_back(in);
    OpMeta em = gp.full.meta[s];
    out_meta.push_back(em);
  }
}

}  // namespace gpf::gate
