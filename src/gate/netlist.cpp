#include "gate/netlist.hpp"

#include <algorithm>
#include <stdexcept>

#include "gate/compiled.hpp"
#include "gate/gateprog.hpp"

namespace gpf::gate {

Net Netlist::add(GateKind k, Net a, Net b, Net c) {
  if (finalized_) throw std::logic_error("netlist already finalized");
  gates_.push_back(Gate{k, a, b, c});
  return static_cast<Net>(gates_.size() - 1);
}

Net Netlist::input() { return add(GateKind::Input); }
Net Netlist::constant(bool v) { return add(v ? GateKind::Const1 : GateKind::Const0); }
Net Netlist::buf(Net a) { return add(GateKind::Buf, a); }
Net Netlist::not_(Net a) { return add(GateKind::Not, a); }
Net Netlist::and_(Net a, Net b) { return add(GateKind::And, a, b); }
Net Netlist::or_(Net a, Net b) { return add(GateKind::Or, a, b); }
Net Netlist::nand_(Net a, Net b) { return add(GateKind::Nand, a, b); }
Net Netlist::nor_(Net a, Net b) { return add(GateKind::Nor, a, b); }
Net Netlist::xor_(Net a, Net b) { return add(GateKind::Xor, a, b); }
Net Netlist::xnor_(Net a, Net b) { return add(GateKind::Xnor, a, b); }
Net Netlist::mux(Net s, Net a, Net b) { return add(GateKind::Mux, s, a, b); }

Net Netlist::dff(Net d, Net enable) {
  const Net n = add(GateKind::Dff, d, enable);
  dffs_.push_back(n);
  return n;
}

void Netlist::set_dff_input(Net dff_net, Net d, Net enable) {
  Gate& g = gates_.at(static_cast<std::size_t>(dff_net));
  if (g.kind != GateKind::Dff) throw std::logic_error("not a DFF");
  g.a = d;
  g.b = enable;
}

void Netlist::add_input_bus(const std::string& name, std::vector<Net> nets) {
  inputs_.push_back(PortBus{name, std::move(nets)});
}
void Netlist::add_output_bus(const std::string& name, std::vector<Net> nets) {
  outputs_.push_back(PortBus{name, std::move(nets)});
}

const PortBus* Netlist::find_input(const std::string& name) const {
  for (const auto& p : inputs_)
    if (p.name == name) return &p;
  return nullptr;
}
const PortBus* Netlist::find_output(const std::string& name) const {
  for (const auto& p : outputs_)
    if (p.name == name) return &p;
  return nullptr;
}

void Netlist::finalize() {
  if (finalized_) return;
  // Levelize: Input/Const/Dff outputs are level 0; every combinational gate
  // is 1 + max(level of fan-ins). The netlist must be acyclic through
  // combinational gates (feedback only through DFFs).
  const std::size_t n = gates_.size();
  std::vector<int> level(n, -1);
  std::vector<Net> stack;
  stack.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const GateKind k = gates_[i].kind;
    if (k == GateKind::Input || k == GateKind::Const0 || k == GateKind::Const1 ||
        k == GateKind::Dff)
      level[i] = 0;
  }
  auto compute = [&](Net root) {
    if (level[static_cast<std::size_t>(root)] >= 0) return;
    stack.push_back(root);
    while (!stack.empty()) {
      const Net g = stack.back();
      const Gate& gg = gates_[static_cast<std::size_t>(g)];
      int lv = 0;
      bool pending = false;
      for (Net in : {gg.a, gg.b, gg.c}) {
        if (in == kNoNet) continue;
        const int il = level[static_cast<std::size_t>(in)];
        if (il < 0) {
          stack.push_back(in);
          pending = true;
        } else {
          lv = std::max(lv, il + 1);
        }
      }
      if (!pending) {
        level[static_cast<std::size_t>(g)] = lv;
        stack.pop_back();
      }
      if (stack.size() > 4 * n) throw std::logic_error("combinational loop in netlist");
    }
  };
  for (std::size_t i = 0; i < n; ++i)
    if (level[i] < 0) compute(static_cast<Net>(i));

  eval_order_.clear();
  eval_order_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    if (level[i] > 0 || (level[i] == 0 && gates_[i].kind == GateKind::Buf))
      eval_order_.push_back(static_cast<Net>(i));
  std::stable_sort(eval_order_.begin(), eval_order_.end(), [&](Net x, Net y) {
    return level[static_cast<std::size_t>(x)] < level[static_cast<std::size_t>(y)];
  });

  constants_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (gates_[i].kind == GateKind::Const0)
      constants_.emplace_back(static_cast<Net>(i), 0);
    else if (gates_[i].kind == GateKind::Const1)
      constants_.emplace_back(static_cast<Net>(i), 1);
  }
  finalized_ = true;
  compiled_ = std::make_shared<const CompiledNetlist>(*this, level);
  program_ = std::make_shared<const GateProgram>(*this, compiled_);
}

const CompiledNetlist& Netlist::compiled() const {
  if (!compiled_) throw std::logic_error("netlist not finalized");
  return *compiled_;
}

const GateProgram& Netlist::program() const {
  if (!program_) throw std::logic_error("netlist not finalized");
  return *program_;
}

std::size_t Netlist::cell_count() const {
  std::size_t c = 0;
  for (const Gate& g : gates_)
    if (g.kind != GateKind::Input && g.kind != GateKind::Const0 &&
        g.kind != GateKind::Const1)
      ++c;
  return c;
}

double cell_area_um2(GateKind k) {
  // Relative areas in the spirit of a 15nm open cell library.
  switch (k) {
    case GateKind::Buf: return 0.59;
    case GateKind::Not: return 0.39;
    case GateKind::And: case GateKind::Or: return 0.78;
    case GateKind::Nand: case GateKind::Nor: return 0.59;
    case GateKind::Xor: case GateKind::Xnor: return 1.17;
    case GateKind::Mux: return 1.37;
    case GateKind::Dff: return 4.49;
    default: return 0.0;
  }
}

double Netlist::area_um2() const {
  double a = 0.0;
  for (const Gate& g : gates_) a += cell_area_um2(g.kind);
  return a;
}

}  // namespace gpf::gate
