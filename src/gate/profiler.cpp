#include "gate/profiler.hpp"

namespace gpf::gate {

UnitProfiler::UnitProfiler(std::size_t max_issues, unsigned sm, unsigned ppb)
    : max_issues_(max_issues), sm_(sm), ppb_(ppb) {}

void UnitProfiler::on_launch_begin(arch::Gpu& gpu, const isa::Program& prog) {
  cur_regs_ = prog.regs_per_thread;
  cur_prog_size_ = static_cast<std::uint32_t>(prog.words.size());
  if (!lane_cfg_written_) {
    WscCycle c;
    c.lane_cfg_en = true;
    c.lane_cfg = 0xFFFFFFFFu;
    traces_.wsc.push_back(c);
    lane_cfg_written_ = true;
  }
  (void)gpu;
}

void UnitProfiler::sync_wsc_state(arch::Gpu& gpu) {
  arch::Ppb& ppb = gpu.sm(sm_).ppbs[ppb_];
  // Count barrier releases (1 -> 0 transitions) to use the WSC's dedicated
  // release broadcast instead of per-warp rewrites when several clear at once.
  unsigned released = 0;
  for (unsigned s = 0; s < 8 && s < ppb.warps.size(); ++s) {
    const arch::Warp& w = ppb.warps[s];
    if (wsc_shadow_[s].barrier && w.valid && !w.at_barrier && !w.done) ++released;
  }
  if (released >= 2) {
    WscCycle rel;
    rel.barrier_release = true;
    traces_.wsc.push_back(rel);
    for (auto& sh : wsc_shadow_) sh.barrier = false;
  }

  for (unsigned s = 0; s < 8 && s < ppb.warps.size(); ++s) {
    const arch::Warp& w = ppb.warps[s];
    WarpShadow& sh = wsc_shadow_[s];
    const bool valid = w.valid;
    const bool done = w.done || !w.valid;
    const bool barrier = w.at_barrier;
    const std::uint32_t mask = w.active_mask();
    const auto base = static_cast<std::uint8_t>(s << 3);
    const auto cta = static_cast<std::uint8_t>((w.cta_x + w.cta_y * 16) & 0xF);

    if (sh.valid != valid || sh.done != done || sh.barrier != barrier ||
        (valid && (sh.base != base || sh.cta != cta))) {
      WscCycle c;
      c.wr_slot = static_cast<std::uint8_t>(s);
      c.wr_state_en = true;
      c.wr_valid = valid;
      c.wr_done = done;
      c.wr_barrier = barrier;
      c.wr_base_en = true;
      c.wr_base = base;
      c.wr_cta_en = true;
      c.wr_cta = cta;
      traces_.wsc.push_back(c);
      sh.valid = valid;
      sh.done = done;
      sh.barrier = barrier;
      sh.base = base;
      sh.cta = cta;
    }
    if (valid && sh.mask != mask) {
      WscCycle c;
      c.wr_slot = static_cast<std::uint8_t>(s);
      c.wr_mask_en = true;
      c.wr_mask = mask;
      traces_.wsc.push_back(c);
      sh.mask = mask;
    }
  }
}

int UnitProfiler::post_select(arch::Gpu& gpu, unsigned sm, unsigned ppb, int slot) {
  if (sm != sm_ || ppb != ppb_ || traces_.issues >= max_issues_) {
    cur_slot_ = -1;
    return slot;
  }
  sync_wsc_state(gpu);
  cur_slot_ = slot;
  return slot;
}

std::uint32_t UnitProfiler::post_fetch_pc(arch::Gpu& gpu, unsigned sm, unsigned ppb,
                                          unsigned slot, std::uint32_t pc) {
  if (static_cast<int>(slot) != cur_slot_ || sm != sm_ || ppb != ppb_) return pc;
  if (pc_shadow_[slot & 7] != pc) {
    // The warp's PC changed outside sequential flow (CTA init, reconvergence
    // pop): the fetch unit receives an external redirect write.
    FetchCycle c;
    c.init_en = true;
    c.init_slot = static_cast<std::uint8_t>(slot & 7);
    c.init_pc = pc;
    traces_.fetch.push_back(c);
    pc_shadow_[slot & 7] = pc;
  }
  cur_pc_ = pc;
  (void)gpu;
  return pc;
}

std::uint64_t UnitProfiler::post_fetch_word(arch::Gpu&, unsigned sm, unsigned ppb,
                                            unsigned slot, std::uint64_t word) {
  if (static_cast<int>(slot) != cur_slot_ || sm != sm_ || ppb != ppb_) return word;
  cur_word_ = word;
  return word;
}

void UnitProfiler::post_execute(arch::ExecCtx& ctx) {
  if (cur_slot_ < 0 || ctx.sm_id != sm_ || ctx.ppb_id != ppb_) return;
  if (static_cast<int>(ctx.warp().slot) != cur_slot_) return;
  if (traces_.issues >= max_issues_) return;

  const arch::Warp& w = ctx.warp();
  const std::uint32_t next = w.done ? cur_pc_ + 1 : w.pc();

  // Fetch issue cycle.
  FetchCycle fc;
  fc.sel_slot = static_cast<std::uint8_t>(cur_slot_ & 7);
  fc.sel_valid = true;
  fc.instr_in = cur_word_;
  fc.pc_wr_en = true;
  fc.redirect_en = next != cur_pc_ + 1;
  fc.redirect_pc = next;
  fc.is_issue = true;
  fc.prog_size = cur_prog_size_;
  fc.regs_per_thread = cur_regs_;
  fc.expected_pc = cur_pc_;
  for (unsigned s = 0; s < 8; ++s)
    fc.resident_pcs[s] = static_cast<std::uint16_t>(pc_shadow_[s]);
  traces_.fetch.push_back(fc);
  pc_shadow_[cur_slot_ & 7] = next;

  // WSC issue cycle (instruction flows through the dispatch buffer).
  WscCycle wc;
  wc.ibuf_en = true;
  wc.ibuf_in = cur_word_;
  wc.is_issue = true;
  wc.regs_per_thread = cur_regs_;
  wc.expected_slot = static_cast<std::uint8_t>(cur_slot_ & 7);
  traces_.wsc.push_back(wc);

  // Decoder pattern (deduplicated).
  auto [it, inserted] = decoder_dedup_.try_emplace(cur_word_, traces_.decoder.size());
  if (inserted) {
    DecoderPattern p;
    p.word = cur_word_;
    p.regs_per_thread = cur_regs_;
    traces_.decoder.push_back(p);
  } else {
    ++traces_.decoder[it->second].count;
  }

  ++traces_.issues;
  cur_slot_ = -1;
}

UnitTraces UnitProfiler::take(std::string workload_name) {
  traces_.workload = std::move(workload_name);
  UnitTraces out = std::move(traces_);
  traces_ = UnitTraces{};
  decoder_dedup_.clear();
  wsc_shadow_ = {};
  pc_shadow_ = {};
  lane_cfg_written_ = false;
  return out;
}

}  // namespace gpf::gate
