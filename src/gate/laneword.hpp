// LaneWord<N>: the SIMD word the bit-parallel (PPSFP) batch engine is
// templated over. Lane k of a word carries one net's value under fault k, so
// the engine's whole inner loop is and/or/xor/not over these words; widening
// the word widens the campaign batch. N = 64 is the scalar baseline
// (one std::uint64_t), N = 256 maps to one AVX2 ymm register and N = 512 to
// one AVX-512 zmm register when the translation unit is compiled with the
// matching -m flags. The type is built on the GCC/Clang vector extension, so
// the same source compiles to scalar, SSE-pair, ymm or zmm code purely from
// the per-TU target flags — which is how batchsim{64,256,512}.cpp provide
// three ISA paths behind one runtime-dispatched interface (batchsim.hpp).
//
// LaneMask is the width-agnostic companion: a plain (non-vector) bitset of
// up to kMaxLanes lanes used at the public BatchSim boundary, so callers
// (replay loop, campaign drivers) iterate diverged/live lanes without
// knowing the dispatched width.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

namespace gpf::gate {

/// One bit per batch lane, sized for the widest engine this build can
/// instantiate. Lanes >= the active width are simply never set.
class LaneMask {
 public:
  static constexpr unsigned kMaxLanes = 512;
  static constexpr unsigned kChunks = kMaxLanes / 64;

  constexpr LaneMask() = default;

  bool any() const {
    std::uint64_t m = 0;
    for (const std::uint64_t c : w_) m |= c;
    return m != 0;
  }
  bool test(unsigned lane) const { return (w_[lane >> 6] >> (lane & 63)) & 1; }
  void set(unsigned lane) { w_[lane >> 6] |= std::uint64_t{1} << (lane & 63); }
  void clear(unsigned lane) {
    w_[lane >> 6] &= ~(std::uint64_t{1} << (lane & 63));
  }
  unsigned count() const {
    unsigned n = 0;
    for (const std::uint64_t c : w_) n += static_cast<unsigned>(std::popcount(c));
    return n;
  }
  std::uint64_t chunk(unsigned i) const { return w_[i]; }
  void set_chunk(unsigned i, std::uint64_t v) { w_[i] = v; }

  LaneMask& operator&=(const LaneMask& o) {
    for (unsigned i = 0; i < kChunks; ++i) w_[i] &= o.w_[i];
    return *this;
  }
  LaneMask& operator|=(const LaneMask& o) {
    for (unsigned i = 0; i < kChunks; ++i) w_[i] |= o.w_[i];
    return *this;
  }
  friend LaneMask operator&(LaneMask a, const LaneMask& b) { return a &= b; }
  friend LaneMask operator|(LaneMask a, const LaneMask& b) { return a |= b; }
  friend bool operator==(const LaneMask& a, const LaneMask& b) {
    return a.w_ == b.w_;
  }

 private:
  std::array<std::uint64_t, kChunks> w_{};
};

/// Visit every set lane of `m` in ascending order.
template <class F>
inline void for_each_lane(const LaneMask& m, F&& f) {
  for (unsigned c = 0; c < LaneMask::kChunks; ++c)
    for (std::uint64_t rest = m.chunk(c); rest; rest &= rest - 1)
      f(static_cast<unsigned>(c * 64 + std::countr_zero(rest)));
}

/// The GCC/Clang extended-vector type behind each width. The vector_size
/// argument must not be template-dependent (GCC silently drops dependent
/// attributes), hence one explicit specialization per supported width.
template <unsigned N>
struct LaneVec;
template <>
struct LaneVec<64> {
  typedef std::uint64_t type __attribute__((vector_size(8)));
};
template <>
struct LaneVec<256> {
  typedef std::uint64_t type __attribute__((vector_size(32)));
};
template <>
struct LaneVec<512> {
  typedef std::uint64_t type __attribute__((vector_size(64)));
};

/// N fault lanes packed into one SIMD register's worth of bits. Also doubles
/// as the engine-internal lane mask (diff/force masks share the bit layout).
template <unsigned N>
struct LaneWord {
  static_assert(N >= 64 && N % 64 == 0 && N <= LaneMask::kMaxLanes,
                "lane width must be a multiple of 64, at most kMaxLanes");
  static constexpr unsigned kLanes = N;
  static constexpr unsigned kChunks = N / 64;
  using Vec = typename LaneVec<N>::type;

  Vec v;

  static LaneWord zero() { return LaneWord{Vec{}}; }
  static LaneWord ones() { return ~zero(); }
  /// All-lanes broadcast of one golden bit.
  static LaneWord broadcast(std::uint8_t bit) { return bit ? ones() : zero(); }
  /// Word with exactly lane `lane` set.
  static LaneWord bit(unsigned lane) {
    LaneWord b = zero();
    b.v[lane >> 6] = std::uint64_t{1} << (lane & 63);
    return b;
  }
  /// Word carrying the low kLanes bits of a LaneMask (bits beyond N, which a
  /// narrower engine can never have set, are dropped).
  static LaneWord from_mask(const LaneMask& m) {
    LaneWord w = zero();
    for (unsigned i = 0; i < kChunks; ++i) w.v[i] = m.chunk(i);
    return w;
  }

  friend LaneWord operator~(LaneWord a) { return {~a.v}; }
  friend LaneWord operator&(LaneWord a, LaneWord b) { return {a.v & b.v}; }
  friend LaneWord operator|(LaneWord a, LaneWord b) { return {a.v | b.v}; }
  friend LaneWord operator^(LaneWord a, LaneWord b) { return {a.v ^ b.v}; }
  LaneWord& operator&=(LaneWord o) {
    v &= o.v;
    return *this;
  }
  LaneWord& operator|=(LaneWord o) {
    v |= o.v;
    return *this;
  }
  LaneWord& operator^=(LaneWord o) {
    v ^= o.v;
    return *this;
  }

  bool any() const {
    std::uint64_t m = 0;
    for (unsigned i = 0; i < kChunks; ++i) m |= v[i];
    return m != 0;
  }
  bool test(unsigned lane) const { return (v[lane >> 6] >> (lane & 63)) & 1; }
  void set(unsigned lane) { v[lane >> 6] |= std::uint64_t{1} << (lane & 63); }
  void clear(unsigned lane) {
    v[lane >> 6] &= ~(std::uint64_t{1} << (lane & 63));
  }

  LaneMask to_mask() const {
    LaneMask m;
    for (unsigned i = 0; i < kChunks; ++i) m.set_chunk(i, v[i]);
    return m;
  }
};

}  // namespace gpf::gate
