// Optimized gate program ("GateProg") lowered from a CompiledNetlist.
//
// CompiledNetlist (PR 4) is a faithful 1:1 translation of the netlist: one
// slot per gate, every net materialized, an opcode switch per gate. This
// module lowers it once more into an executable instruction stream tuned for
// the inner loops of the simulators, in two variants:
//
//   full   one Instr per compiled slot, same order, same semantics — every
//          net written, no folding. The golden Simulator, the event engine
//          and the GPF_FUSE=0 batch path run this stream; it is the exact
//          reference the optimized stream must match on every materialized
//          net.
//
//   fused  the optimizer pipeline's output:
//            1. constant folding — operands driven by Const0/Const1 nets (and
//               values derived from them) are folded into the opcode, e.g.
//               And(x, c1) -> Copy(x), Nor(x, c1) -> Const0;
//            2. buf/not-chain fusion — fanout-1 chains of Buf/Not collapse
//               into one Copy/NCopy carrying the chain parity;
//            3. AND-OR-INVERT fusion — a fanout-1 {And,Or,Nand,Nor,Not,Buf}
//               feeding an {And,Or,Nand,Nor} is absorbed into one two-level
//               superop (Fuse2) covering both gates (AOI21/OAI21/AND3/... in
//               standard-cell terms); the interior net is never written;
//               likewise a fanout-1 Xor/Xnor feeding an Xor/Xnor fuses into
//               Xor3/Xnor3 (inversions compose by parity), and a fanout-1
//               Copy/NCopy producer is forwarded into Mux and Xor-family
//               consumers (an NCopy flips Xor<->Xnor; on a Mux select it
//               swaps the data operands instead — Mux(~s,b,c) == Mux(s,c,b));
//            4. dead-gate elimination — gates that cannot reach an output
//               bus or a DFF D/enable pin are dropped;
//            5. virtual-register allocation — short-lived fanout-1 nets are
//               renamed into a small register file stored at the TAIL of the
//               value array (storage index num_nets()+r), so hot
//               intermediates recycle a few cache lines instead of streaming
//               through the big per-net arrays.
//
// Exactness under fault injection: any net can carry a stuck-at overlay, but
// the fused stream deliberately stops materializing some nets. The batch
// engine handles this per batch (see batchsim_impl.hpp): a fault site that
// the fused stream does not write at a fixup-able storage index triggers
// either a patched copy of the stream (interior and folded sites re-expand to
// their original slots) or is provably classification-neutral (dead sites).
// Nets that classification reads — every output-bus net and every DFF D/EN
// pin — are *protected*: never fused through, never dead, never renamed, so
// diff/observe/clock paths need no awareness of the optimizer.
//
// Forces are applied as SPARSE FIXUPS between instructions rather than a
// per-store overlay: the stream is levelized, so every consumer of a slot's
// output executes strictly later, and applying the overlay right after the
// writing instruction is exact. That removes two mask loads and three bitwise
// ops from every gate of every eval — most of the interpreter's win over the
// PR 6 engine.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "gate/compiled.hpp"
#include "gate/netlist.hpp"

namespace gpf::gate {

/// Opcodes of the optimized gate program. Fuse2 variants encode
///   mid = f1(a, b); if (neg_mid) mid = ~mid;
///   v = f2(mid, c); if (neg_out) v = ~v;
/// with f1/f2 in {And, Or}, packed into the low 4 opcode bits:
///   bit0 = f1 is Or, bit1 = f2 is Or, bit2 = neg_mid, bit3 = neg_out.
/// A one-input producer (Buf/Not or a folded Copy/NCopy) is absorbed as
/// f1 = And with a == b (And(x, x) == x), neg_mid = the chain parity.
enum class Op : std::uint8_t {
  Const0,  ///< v = 0
  Const1,  ///< v = ~0
  Copy,    ///< v = a
  NCopy,   ///< v = ~a
  And,     ///< v = a & b
  Or,      ///< v = a | b
  Nand,    ///< v = ~(a & b)
  Nor,     ///< v = ~(a | b)
  Xor,     ///< v = a ^ b
  Xnor,    ///< v = ~(a ^ b)
  Mux,     ///< v = (a & c) | (~a & b)   (a = select, b = when-0, c = when-1)
  Mat,     ///< v = broadcast(golden[a]); cone-program materialization of an
           ///< out-of-cone virtual register (never emitted by the builder;
           ///< inserted per batch by the engine's cone construction)
  Fuse2_0,  // And  And
  Fuse2_1,  // Or   And
  Fuse2_2,  // And  Or
  Fuse2_3,  // Or   Or
  Fuse2_4,  // ~And And
  Fuse2_5,  // ~Or  And
  Fuse2_6,  // ~And Or
  Fuse2_7,  // ~Or  Or
  Fuse2_8,  // And  Nand
  Fuse2_9,  // Or   Nand
  Fuse2_10,  // And Nor
  Fuse2_11,  // Or  Nor
  Fuse2_12,  // ~And Nand
  Fuse2_13,  // ~Or  Nand
  Fuse2_14,  // ~And Nor
  Fuse2_15,  // ~Or  Nor
  Xor3,      ///< v = a ^ b ^ c          (fused xor pair; parity-composed)
  Xnor3,     ///< v = ~(a ^ b ^ c)
};
inline constexpr std::uint8_t kNumOps =
    static_cast<std::uint8_t>(Op::Xnor3) + 1;

inline constexpr Op fuse2_op(bool f1_or, bool f2_or, bool neg_mid,
                             bool neg_out) {
  return static_cast<Op>(static_cast<std::uint8_t>(Op::Fuse2_0) +
                         (f1_or ? 1 : 0) + (f2_or ? 2 : 0) +
                         (neg_mid ? 4 : 0) + (neg_out ? 8 : 0));
}

/// One instruction. Operands and destination are STORAGE indices into the
/// engine's value array: a plain net id, or num_nets()+r for virtual
/// register r. Unused operands are 0 (never read by the opcode).
struct Instr {
  std::uint32_t op = 0;  ///< Op, widened for cheap indexed dispatch
  std::uint32_t a = 0, b = 0, c = 0;
  std::uint32_t out = 0;
};

inline constexpr std::uint32_t kNoOp = 0xFFFFFFFFu;

/// Builder/debug metadata carried next to each Instr (not read by the hot
/// interpreter loop): the original nets behind the storage indices, the
/// compiled slots the op covers (for per-batch patching), and flags.
struct OpMeta {
  Net out_net = kNoNet;                ///< net this op computes
  Net src_a = kNoNet, src_b = kNoNet;  ///< original operand nets (kNoNet if
  Net src_c = kNoNet;                  ///<   unused by the opcode)
  std::uint32_t cover_begin = 0;       ///< range into Stream::cover: the
  std::uint32_t cover_count = 0;       ///<   compiled slots this op replaces
  bool folded = false;  ///< emitted form dropped a constant-valued operand
  std::int32_t level = 0;  ///< levelization depth of out_net (JIT grouping)
};

/// An executable instruction stream plus the net -> storage maps the engine
/// needs to install force overlays and build fanout-cone programs.
struct Stream {
  std::vector<Instr> code;
  std::vector<OpMeta> meta;           ///< parallel to code
  std::vector<std::uint32_t> cover;   ///< concatenated covered slot lists
  std::vector<std::uint32_t> write_op;  ///< net -> op index writing it, or
                                        ///<   kNoOp (sources, interiors, dead)
  std::vector<std::uint32_t> storage_of;  ///< net -> storage index (identity
                                          ///<   unless vreg-renamed)
  std::uint32_t num_vregs = 0;
  std::size_t num_ops() const { return code.size(); }
};

/// Per-net optimizer facts (fused stream only). A net with none of these
/// flags is materialized at its own index, exactly like the full stream.
enum NetFlag : std::uint8_t {
  kNetInterior = 1,   ///< absorbed into a Fuse2/Copy superop; never written
  kNetDead = 2,       ///< eliminated; never written, cannot reach observables
  kNetVreg = 4,       ///< written to a virtual-register storage slot
  kNetFoldedUse = 8,  ///< some op folded this net's constant value away
};

struct GateProgram {
  /// Builds both streams. `cn` must outlive the program (Netlist keeps both
  /// behind shared_ptr).
  GateProgram(const Netlist& nl, std::shared_ptr<const CompiledNetlist> cn);

  std::shared_ptr<const CompiledNetlist> cn;
  Stream full;   ///< 1:1 with compiled slots; full.code[s] <-> slot s
  Stream fused;  ///< optimized stream
  std::vector<std::uint8_t> net_flags;  ///< NetFlag bits per net
  std::vector<std::uint32_t> head_of;   ///< interior net -> fused op index
  std::size_t num_nets = 0;
  std::size_t storage_size = 0;  ///< num_nets + fused.num_vregs

  // Optimizer stats (also published as gate.fused_gates / gate.dead_gates /
  // gate.vreg_nets counters at build time).
  std::size_t fused_gates = 0;  ///< gates absorbed into superops
  std::size_t dead_gates = 0;   ///< gates eliminated as unobservable
  std::size_t folded_ops = 0;   ///< ops strength-reduced by constant folding
  std::size_t vreg_nets = 0;    ///< nets renamed into virtual registers

  /// FNV-1a over the compiled structure + codegen version; the JIT cache key.
  std::uint64_t struct_hash = 0;

  /// The fused stream computes this net's value somewhere (its own index or
  /// a vreg slot) — a force overlay can be fixed up after the writing op.
  bool materialized(Net n) const {
    return (net_flags[static_cast<std::size_t>(n)] &
            (kNetInterior | kNetDead)) == 0;
  }
  /// val_[n] itself holds the exact value after a fused eval — required for
  /// nets read positionally (value()/set_observed()); vreg slots are reused
  /// within a pass, so renamed nets are materialized but not value-exact.
  bool value_exact(Net n) const {
    return (net_flags[static_cast<std::size_t>(n)] &
            (kNetInterior | kNetDead | kNetVreg)) == 0;
  }

  /// Scalar (uint8) evaluation of one instruction; the golden Simulator and
  /// the event engine route their per-gate evaluation through this so all
  /// engines execute the same program.
  static std::uint8_t eval_scalar(const Instr& in, const std::uint8_t* v);
};

/// Appends `in` re-expanded into its covered original slots (operands
/// remapped through `st.storage_of`) — the per-batch patch used when a fault
/// site is not materialized by the fused stream. `out_code`/`out_meta`
/// receive one entry per covered slot.
void expand_op(const GateProgram& gp, const Stream& st, std::uint32_t op_index,
               std::vector<Instr>& out_code, std::vector<OpMeta>& out_meta);

}  // namespace gpf::gate
