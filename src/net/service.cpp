#include "net/service.hpp"

#include <cstdio>
#include <memory>
#include <stdexcept>

#include "common/threadpool.hpp"
#include "gate/batchsim.hpp"
#include "gate/jit.hpp"
#include "perfi/campaign.hpp"
#include "report/gate_experiments.hpp"
#include "rtl/campaign.hpp"
#include "store/records.hpp"
#include "workloads/workload.hpp"

namespace gpf::net {

UnitFn make_unit_fn(const store::CampaignMeta& meta) {
  switch (meta.kind) {
    case store::CampaignKind::Gate: {
      auto traces = std::make_shared<std::vector<gate::UnitTraces>>(
          report::collect_profiling_traces(meta.param1));
      auto runner = std::make_shared<report::GateUnitRunner>(*traces, meta);
      if (runner->collapsed())
        std::fprintf(stderr, "[worker] gate campaign: %zu faults collapse to %zu representatives\n",
                     runner->faults().size(), runner->representative_count());
      const std::size_t lanes = gate::batch_lane_width();
      std::fprintf(stderr, "[worker] gate campaign: batch lanes %zu (%s, %s)\n",
                   lanes, gate::batch_simd_path(lanes),
                   gate::batch_engine_tag());
      auto pool = std::make_shared<ThreadPool>();
      return [traces, runner, pool](std::span<const std::uint64_t> ids,
                                    const EmitBytes& emit,
                                    const std::function<bool()>& stop) {
        runner->run(
            ids,
            [&](std::uint64_t id, const gate::FaultCharacterization& fc) {
              emit(id, store::encode(report::to_gate_record(fc)));
            },
            pool.get(), stop);
      };
    }
    case store::CampaignKind::Rtl: {
      auto runner = std::make_shared<rtl::TmxmUnitRunner>(meta);
      return [runner](std::span<const std::uint64_t> ids,
                      const EmitBytes& emit,
                      const std::function<bool()>& stop) {
        runner->run(
            ids,
            [&](std::uint64_t id, const rtl::InjectionResult& r) {
              emit(id, store::encode(rtl::to_rtl_record(r)));
            },
            stop);
      };
    }
    case store::CampaignKind::Perfi: {
      const workloads::Workload* w = workloads::find(meta.app);
      if (!w)
        throw std::runtime_error("worker: unknown workload: " + meta.app);
      auto runner = std::make_shared<perfi::EprUnitRunner>(*w, meta);
      return [runner](std::span<const std::uint64_t> ids,
                      const EmitBytes& emit,
                      const std::function<bool()>& stop) {
        runner->run(
            ids,
            [&](std::uint64_t id, const store::PerfiRecord& rec) {
              emit(id, store::encode(rec));
            },
            stop);
      };
    }
  }
  throw std::runtime_error("worker: unknown campaign kind");
}

}  // namespace gpf::net
