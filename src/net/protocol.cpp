#include "net/protocol.hpp"

#include <stdexcept>

#include "store/bytes.hpp"

namespace gpf::net {

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::Hello: return "Hello";
    case MsgType::HelloAck: return "HelloAck";
    case MsgType::LeaseRequest: return "LeaseRequest";
    case MsgType::LeaseGrant: return "LeaseGrant";
    case MsgType::NoWork: return "NoWork";
    case MsgType::Result: return "Result";
    case MsgType::Heartbeat: return "Heartbeat";
    case MsgType::UnitDone: return "UnitDone";
    case MsgType::Ack: return "Ack";
    case MsgType::StatsRequest: return "StatsRequest";
    case MsgType::StatsSnapshot: return "StatsSnapshot";
  }
  return "?";
}

namespace {

Frame make_frame(MsgType t) {
  Frame f;
  f.type = static_cast<std::uint16_t>(t);
  return f;
}

store::ByteReader check(const Frame& f, MsgType want) {
  if (f.type != static_cast<std::uint16_t>(want))
    throw std::runtime_error(
        std::string("net: expected ") + msg_type_name(want) + ", got " +
        msg_type_name(static_cast<MsgType>(f.type)) + " (type " +
        std::to_string(f.type) + ")");
  return store::ByteReader(f.payload);
}

void expect_done(store::ByteReader& r, MsgType t) {
  if (!r.done())
    throw std::runtime_error(std::string("net: trailing bytes in ") +
                             msg_type_name(t) + " payload");
}

}  // namespace

Frame encode(const Hello& m) {
  Frame f = make_frame(MsgType::Hello);
  store::ByteWriter w(f.payload);
  w.u32(m.version);
  w.u32(static_cast<std::uint32_t>(m.worker_name.size()));
  w.fixed_str(m.worker_name, m.worker_name.size());
  return f;
}

Hello decode_hello(const Frame& f) {
  store::ByteReader r = check(f, MsgType::Hello);
  Hello m;
  m.version = r.u32();
  m.worker_name = r.fixed_str(r.u32());
  expect_done(r, MsgType::Hello);
  return m;
}

Frame encode(const HelloAck& m) {
  Frame f = make_frame(MsgType::HelloAck);
  const std::vector<std::uint8_t> header = store::ResultLog::encode_meta(m.meta);
  f.payload = header;
  store::ByteWriter w(f.payload);
  w.u32(m.lease_ms);
  return f;
}

HelloAck decode_hello_ack(const Frame& f) {
  (void)check(f, MsgType::HelloAck);
  if (f.payload.size() != store::ResultLog::kHeaderSize + 4)
    throw std::runtime_error("net: bad HelloAck payload size " +
                             std::to_string(f.payload.size()));
  HelloAck m;
  m.meta = store::ResultLog::decode_meta(
      std::span(f.payload).subspan(0, store::ResultLog::kHeaderSize));
  store::ByteReader tail(
      std::span(f.payload).subspan(store::ResultLog::kHeaderSize));
  m.lease_ms = tail.u32();
  return m;
}

Frame encode_lease_request() { return make_frame(MsgType::LeaseRequest); }

Frame encode(const LeaseGrant& m) {
  Frame f = make_frame(MsgType::LeaseGrant);
  store::ByteWriter w(f.payload);
  w.u64(m.unit_id);
  w.u32(static_cast<std::uint32_t>(m.ids.size()));
  for (const std::uint64_t id : m.ids) w.u64(id);
  return f;
}

LeaseGrant decode_lease_grant(const Frame& f) {
  store::ByteReader r = check(f, MsgType::LeaseGrant);
  LeaseGrant m;
  m.unit_id = r.u64();
  const std::uint32_t n = r.u32();
  if (r.remaining() != std::size_t{n} * 8)
    throw std::runtime_error("net: LeaseGrant id count mismatch");
  m.ids.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) m.ids.push_back(r.u64());
  return m;
}

Frame encode(const NoWork& m) {
  Frame f = make_frame(MsgType::NoWork);
  store::ByteWriter w(f.payload);
  w.u8(m.drained ? 1 : 0);
  return f;
}

NoWork decode_no_work(const Frame& f) {
  store::ByteReader r = check(f, MsgType::NoWork);
  NoWork m;
  m.drained = r.u8() != 0;
  expect_done(r, MsgType::NoWork);
  return m;
}

Frame encode(const ResultMsg& m) {
  Frame f = make_frame(MsgType::Result);
  store::ByteWriter w(f.payload);
  w.u64(m.unit_id);
  w.u32(static_cast<std::uint32_t>(m.records.size()));
  for (const store::Record& rec : m.records) {
    w.u64(rec.id);
    w.u32(static_cast<std::uint32_t>(rec.payload.size()));
    f.payload.insert(f.payload.end(), rec.payload.begin(), rec.payload.end());
  }
  return f;
}

ResultMsg decode_result(const Frame& f) {
  store::ByteReader r = check(f, MsgType::Result);
  ResultMsg m;
  m.unit_id = r.u64();
  const std::uint32_t n = r.u32();
  m.records.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    store::Record rec;
    rec.id = r.u64();
    const std::uint32_t len = r.u32();
    if (r.remaining() < len)
      throw std::runtime_error("net: Result record overruns payload");
    rec.payload.resize(len);
    for (std::uint32_t b = 0; b < len; ++b) rec.payload[b] = r.u8();
    m.records.push_back(std::move(rec));
  }
  expect_done(r, MsgType::Result);
  return m;
}

Frame encode(const Heartbeat& m) {
  Frame f = make_frame(MsgType::Heartbeat);
  store::ByteWriter w(f.payload);
  w.u64(m.unit_id);
  return f;
}

Heartbeat decode_heartbeat(const Frame& f) {
  store::ByteReader r = check(f, MsgType::Heartbeat);
  Heartbeat m;
  m.unit_id = r.u64();
  expect_done(r, MsgType::Heartbeat);
  return m;
}

Frame encode(const UnitDone& m) {
  Frame f = make_frame(MsgType::UnitDone);
  store::ByteWriter w(f.payload);
  w.u64(m.unit_id);
  return f;
}

UnitDone decode_unit_done(const Frame& f) {
  store::ByteReader r = check(f, MsgType::UnitDone);
  UnitDone m;
  m.unit_id = r.u64();
  expect_done(r, MsgType::UnitDone);
  return m;
}

Frame encode(const Ack& m) {
  Frame f = make_frame(MsgType::Ack);
  store::ByteWriter w(f.payload);
  w.u8(m.drain ? 1 : 0);
  w.u8(m.lost_lease ? 1 : 0);
  return f;
}

Ack decode_ack(const Frame& f) {
  store::ByteReader r = check(f, MsgType::Ack);
  Ack m;
  m.drain = r.u8() != 0;
  m.lost_lease = r.u8() != 0;
  expect_done(r, MsgType::Ack);
  return m;
}

Frame encode_stats_request() { return make_frame(MsgType::StatsRequest); }

Frame encode(const StatsSnapshot& m) {
  Frame f = make_frame(MsgType::StatsSnapshot);
  store::ByteWriter w(f.payload);
  w.u64(m.total_ids);
  w.u64(m.retired_ids);
  w.u64(m.done_at_open);
  w.u32(m.pending_units);
  w.u32(m.leased_units);
  w.u64(m.elapsed_ms);
  w.u64(m.rate_milli);
  w.u64(m.eta_ms);
  w.u8(m.draining);
  w.u32(static_cast<std::uint32_t>(m.workers.size()));
  for (const WorkerRow& row : m.workers) {
    w.u64(row.session);
    w.u32(static_cast<std::uint32_t>(row.name.size()));
    w.fixed_str(row.name, row.name.size());
    w.u64(row.retired);
    w.u32(row.leased_units);
    w.u64(row.idle_ms);
    w.u8(row.connected);
  }
  return f;
}

StatsSnapshot decode_stats_snapshot(const Frame& f) {
  store::ByteReader r = check(f, MsgType::StatsSnapshot);
  StatsSnapshot m;
  m.total_ids = r.u64();
  m.retired_ids = r.u64();
  m.done_at_open = r.u64();
  m.pending_units = r.u32();
  m.leased_units = r.u32();
  m.elapsed_ms = r.u64();
  m.rate_milli = r.u64();
  m.eta_ms = r.u64();
  m.draining = r.u8();
  const std::uint32_t n = r.u32();
  m.workers.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    WorkerRow row;
    row.session = r.u64();
    row.name = r.fixed_str(r.u32());
    row.retired = r.u64();
    row.leased_units = r.u32();
    row.idle_ms = r.u64();
    row.connected = r.u8();
    m.workers.push_back(std::move(row));
  }
  expect_done(r, MsgType::StatsSnapshot);
  return m;
}

}  // namespace gpf::net
