#include "net/protocol.hpp"

#include <stdexcept>

#include "store/bytes.hpp"

namespace gpf::net {

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::Hello: return "Hello";
    case MsgType::HelloAck: return "HelloAck";
    case MsgType::LeaseRequest: return "LeaseRequest";
    case MsgType::LeaseGrant: return "LeaseGrant";
    case MsgType::NoWork: return "NoWork";
    case MsgType::Result: return "Result";
    case MsgType::Heartbeat: return "Heartbeat";
    case MsgType::UnitDone: return "UnitDone";
    case MsgType::Ack: return "Ack";
    case MsgType::StatsRequest: return "StatsRequest";
    case MsgType::StatsSnapshot: return "StatsSnapshot";
    case MsgType::SubmitCampaign: return "SubmitCampaign";
    case MsgType::RemoveCampaign: return "RemoveCampaign";
    case MsgType::ListCampaigns: return "ListCampaigns";
    case MsgType::CampaignList: return "CampaignList";
    case MsgType::OpResult: return "OpResult";
    case MsgType::Busy: return "Busy";
  }
  return "?";
}

namespace {

Frame make_frame(MsgType t) {
  Frame f;
  f.type = static_cast<std::uint16_t>(t);
  return f;
}

store::ByteReader check(const Frame& f, MsgType want) {
  if (f.type != static_cast<std::uint16_t>(want))
    throw std::runtime_error(
        std::string("net: expected ") + msg_type_name(want) + ", got " +
        msg_type_name(static_cast<MsgType>(f.type)) + " (type " +
        std::to_string(f.type) + ")");
  return store::ByteReader(f.payload);
}

void expect_done(store::ByteReader& r, MsgType t) {
  if (!r.done())
    throw std::runtime_error(std::string("net: trailing bytes in ") +
                             msg_type_name(t) + " payload");
}

// Length-prefixed string: u32 len + bytes. Campaign and worker names are
// short; anything beyond the frame limit fails in fixed_str's bounds check.
void put_str(store::ByteWriter& w, const std::string& s) {
  w.u32(static_cast<std::uint32_t>(s.size()));
  w.fixed_str(s, s.size());
}

std::string get_str(store::ByteReader& r) { return r.fixed_str(r.u32()); }

void put_meta(Frame& f, const store::CampaignMeta& meta) {
  const std::vector<std::uint8_t> header = store::ResultLog::encode_meta(meta);
  f.payload.insert(f.payload.end(), header.begin(), header.end());
}

store::CampaignMeta get_meta(store::ByteReader& r) {
  if (r.remaining() < store::ResultLog::kHeaderSize)
    throw std::runtime_error("net: truncated campaign meta header");
  std::vector<std::uint8_t> header(store::ResultLog::kHeaderSize);
  for (std::uint8_t& b : header) b = r.u8();
  return store::ResultLog::decode_meta(header);
}

void put_campaign_row(store::ByteWriter& w, const CampaignRow& row) {
  put_str(w, row.name);
  w.u8(row.kind);
  w.u8(row.state);
  w.u32(row.priority);
  w.u64(row.total_ids);
  w.u64(row.retired_ids);
  w.u32(row.pending_units);
  w.u32(row.leased_units);
}

CampaignRow get_campaign_row(store::ByteReader& r) {
  CampaignRow row;
  row.name = get_str(r);
  row.kind = r.u8();
  row.state = r.u8();
  row.priority = r.u32();
  row.total_ids = r.u64();
  row.retired_ids = r.u64();
  row.pending_units = r.u32();
  row.leased_units = r.u32();
  return row;
}

}  // namespace

Frame encode(const Hello& m) {
  Frame f = make_frame(MsgType::Hello);
  store::ByteWriter w(f.payload);
  w.u32(m.version);
  put_str(w, m.worker_name);
  put_str(w, m.campaign);
  return f;
}

Hello decode_hello(const Frame& f) {
  store::ByteReader r = check(f, MsgType::Hello);
  Hello m;
  m.version = r.u32();
  m.worker_name = get_str(r);
  m.campaign = get_str(r);
  expect_done(r, MsgType::Hello);
  return m;
}

Frame encode(const HelloAck& m) {
  Frame f = make_frame(MsgType::HelloAck);
  store::ByteWriter w(f.payload);
  w.u32(m.lease_ms);
  return f;
}

HelloAck decode_hello_ack(const Frame& f) {
  store::ByteReader r = check(f, MsgType::HelloAck);
  HelloAck m;
  m.lease_ms = r.u32();
  expect_done(r, MsgType::HelloAck);
  return m;
}

Frame encode(const LeaseRequest& m) {
  Frame f = make_frame(MsgType::LeaseRequest);
  store::ByteWriter w(f.payload);
  put_str(w, m.campaign);
  return f;
}

LeaseRequest decode_lease_request(const Frame& f) {
  store::ByteReader r = check(f, MsgType::LeaseRequest);
  LeaseRequest m;
  m.campaign = get_str(r);
  expect_done(r, MsgType::LeaseRequest);
  return m;
}

Frame encode(const LeaseGrant& m) {
  Frame f = make_frame(MsgType::LeaseGrant);
  {
    store::ByteWriter w(f.payload);
    w.u64(m.campaign_id);
    put_str(w, m.campaign);
  }
  put_meta(f, m.meta);
  store::ByteWriter w(f.payload);
  w.u64(m.unit_id);
  w.u32(static_cast<std::uint32_t>(m.ids.size()));
  for (const std::uint64_t id : m.ids) w.u64(id);
  return f;
}

LeaseGrant decode_lease_grant(const Frame& f) {
  store::ByteReader r = check(f, MsgType::LeaseGrant);
  LeaseGrant m;
  m.campaign_id = r.u64();
  m.campaign = get_str(r);
  m.meta = get_meta(r);
  m.unit_id = r.u64();
  const std::uint32_t n = r.u32();
  if (r.remaining() != std::size_t{n} * 8)
    throw std::runtime_error("net: LeaseGrant id count mismatch");
  m.ids.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) m.ids.push_back(r.u64());
  return m;
}

Frame encode(const NoWork& m) {
  Frame f = make_frame(MsgType::NoWork);
  store::ByteWriter w(f.payload);
  w.u8(m.drained ? 1 : 0);
  return f;
}

NoWork decode_no_work(const Frame& f) {
  store::ByteReader r = check(f, MsgType::NoWork);
  NoWork m;
  m.drained = r.u8() != 0;
  expect_done(r, MsgType::NoWork);
  return m;
}

Frame encode(const ResultMsg& m) {
  Frame f = make_frame(MsgType::Result);
  store::ByteWriter w(f.payload);
  w.u64(m.campaign_id);
  w.u64(m.unit_id);
  w.u32(static_cast<std::uint32_t>(m.records.size()));
  for (const store::Record& rec : m.records) {
    w.u64(rec.id);
    w.u32(static_cast<std::uint32_t>(rec.payload.size()));
    f.payload.insert(f.payload.end(), rec.payload.begin(), rec.payload.end());
  }
  return f;
}

ResultMsg decode_result(const Frame& f) {
  store::ByteReader r = check(f, MsgType::Result);
  ResultMsg m;
  m.campaign_id = r.u64();
  m.unit_id = r.u64();
  const std::uint32_t n = r.u32();
  m.records.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    store::Record rec;
    rec.id = r.u64();
    const std::uint32_t len = r.u32();
    if (r.remaining() < len)
      throw std::runtime_error("net: Result record overruns payload");
    rec.payload.resize(len);
    for (std::uint32_t b = 0; b < len; ++b) rec.payload[b] = r.u8();
    m.records.push_back(std::move(rec));
  }
  expect_done(r, MsgType::Result);
  return m;
}

Frame encode(const Heartbeat& m) {
  Frame f = make_frame(MsgType::Heartbeat);
  store::ByteWriter w(f.payload);
  w.u64(m.campaign_id);
  w.u64(m.unit_id);
  return f;
}

Heartbeat decode_heartbeat(const Frame& f) {
  store::ByteReader r = check(f, MsgType::Heartbeat);
  Heartbeat m;
  m.campaign_id = r.u64();
  m.unit_id = r.u64();
  expect_done(r, MsgType::Heartbeat);
  return m;
}

Frame encode(const UnitDone& m) {
  Frame f = make_frame(MsgType::UnitDone);
  store::ByteWriter w(f.payload);
  w.u64(m.campaign_id);
  w.u64(m.unit_id);
  return f;
}

UnitDone decode_unit_done(const Frame& f) {
  store::ByteReader r = check(f, MsgType::UnitDone);
  UnitDone m;
  m.campaign_id = r.u64();
  m.unit_id = r.u64();
  expect_done(r, MsgType::UnitDone);
  return m;
}

Frame encode(const Ack& m) {
  Frame f = make_frame(MsgType::Ack);
  store::ByteWriter w(f.payload);
  w.u8(m.drain ? 1 : 0);
  w.u8(m.lost_lease ? 1 : 0);
  return f;
}

Ack decode_ack(const Frame& f) {
  store::ByteReader r = check(f, MsgType::Ack);
  Ack m;
  m.drain = r.u8() != 0;
  m.lost_lease = r.u8() != 0;
  expect_done(r, MsgType::Ack);
  return m;
}

Frame encode(const Busy& m) {
  Frame f = make_frame(MsgType::Busy);
  store::ByteWriter w(f.payload);
  w.u32(m.retry_after_ms);
  return f;
}

Busy decode_busy(const Frame& f) {
  store::ByteReader r = check(f, MsgType::Busy);
  Busy m;
  m.retry_after_ms = r.u32();
  expect_done(r, MsgType::Busy);
  return m;
}

Frame encode(const SubmitCampaign& m) {
  Frame f = make_frame(MsgType::SubmitCampaign);
  {
    store::ByteWriter w(f.payload);
    put_str(w, m.name);
    w.u32(m.priority);
  }
  put_meta(f, m.meta);
  return f;
}

SubmitCampaign decode_submit_campaign(const Frame& f) {
  store::ByteReader r = check(f, MsgType::SubmitCampaign);
  SubmitCampaign m;
  m.name = get_str(r);
  m.priority = r.u32();
  m.meta = get_meta(r);
  expect_done(r, MsgType::SubmitCampaign);
  return m;
}

Frame encode(const RemoveCampaign& m) {
  Frame f = make_frame(MsgType::RemoveCampaign);
  store::ByteWriter w(f.payload);
  put_str(w, m.name);
  return f;
}

RemoveCampaign decode_remove_campaign(const Frame& f) {
  store::ByteReader r = check(f, MsgType::RemoveCampaign);
  RemoveCampaign m;
  m.name = get_str(r);
  expect_done(r, MsgType::RemoveCampaign);
  return m;
}

Frame encode(const OpResult& m) {
  Frame f = make_frame(MsgType::OpResult);
  store::ByteWriter w(f.payload);
  w.u8(m.ok ? 1 : 0);
  put_str(w, m.message);
  return f;
}

OpResult decode_op_result(const Frame& f) {
  store::ByteReader r = check(f, MsgType::OpResult);
  OpResult m;
  m.ok = r.u8() != 0;
  m.message = get_str(r);
  expect_done(r, MsgType::OpResult);
  return m;
}

Frame encode_list_campaigns() { return make_frame(MsgType::ListCampaigns); }

Frame encode(const CampaignList& m) {
  Frame f = make_frame(MsgType::CampaignList);
  store::ByteWriter w(f.payload);
  w.u32(static_cast<std::uint32_t>(m.campaigns.size()));
  for (const CampaignRow& row : m.campaigns) put_campaign_row(w, row);
  return f;
}

CampaignList decode_campaign_list(const Frame& f) {
  store::ByteReader r = check(f, MsgType::CampaignList);
  CampaignList m;
  const std::uint32_t n = r.u32();
  m.campaigns.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i)
    m.campaigns.push_back(get_campaign_row(r));
  expect_done(r, MsgType::CampaignList);
  return m;
}

Frame encode_stats_request(const std::string& campaign) {
  Frame f = make_frame(MsgType::StatsRequest);
  store::ByteWriter w(f.payload);
  put_str(w, campaign);
  return f;
}

std::string decode_stats_request(const Frame& f) {
  store::ByteReader r = check(f, MsgType::StatsRequest);
  const std::string campaign = get_str(r);
  expect_done(r, MsgType::StatsRequest);
  return campaign;
}

Frame encode(const StatsSnapshot& m) {
  Frame f = make_frame(MsgType::StatsSnapshot);
  store::ByteWriter w(f.payload);
  w.u64(m.total_ids);
  w.u64(m.retired_ids);
  w.u64(m.done_at_open);
  w.u32(m.pending_units);
  w.u32(m.leased_units);
  w.u64(m.elapsed_ms);
  w.u64(m.rate_milli);
  w.u64(m.eta_ms);
  w.u8(m.draining);
  w.u32(m.connected_workers);
  w.u32(m.desired_workers);
  w.u64(m.evicted_workers);
  w.u64(m.evicted_retired);
  w.u32(static_cast<std::uint32_t>(m.campaigns.size()));
  for (const CampaignRow& row : m.campaigns) put_campaign_row(w, row);
  w.u32(static_cast<std::uint32_t>(m.workers.size()));
  for (const WorkerRow& row : m.workers) {
    w.u64(row.session);
    put_str(w, row.name);
    w.u64(row.retired);
    w.u32(row.leased_units);
    w.u64(row.idle_ms);
    w.u8(row.connected);
  }
  return f;
}

StatsSnapshot decode_stats_snapshot(const Frame& f) {
  store::ByteReader r = check(f, MsgType::StatsSnapshot);
  StatsSnapshot m;
  m.total_ids = r.u64();
  m.retired_ids = r.u64();
  m.done_at_open = r.u64();
  m.pending_units = r.u32();
  m.leased_units = r.u32();
  m.elapsed_ms = r.u64();
  m.rate_milli = r.u64();
  m.eta_ms = r.u64();
  m.draining = r.u8();
  m.connected_workers = r.u32();
  m.desired_workers = r.u32();
  m.evicted_workers = r.u64();
  m.evicted_retired = r.u64();
  const std::uint32_t nc = r.u32();
  m.campaigns.reserve(nc);
  for (std::uint32_t i = 0; i < nc; ++i)
    m.campaigns.push_back(get_campaign_row(r));
  const std::uint32_t nw = r.u32();
  m.workers.reserve(nw);
  for (std::uint32_t i = 0; i < nw; ++i) {
    WorkerRow row;
    row.session = r.u64();
    row.name = get_str(r);
    row.retired = r.u64();
    row.leased_units = r.u32();
    row.idle_ms = r.u64();
    row.connected = r.u8();
    m.workers.push_back(std::move(row));
  }
  expect_done(r, MsgType::StatsSnapshot);
  return m;
}

}  // namespace gpf::net
