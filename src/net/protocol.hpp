// Message layer of the distributed campaign service, on top of net framing.
//
// The protocol is strictly request/response and worker-driven: every message
// a worker sends gets exactly one coordinator reply, so both sides can use
// plain blocking sockets with no reordering logic.
//
//   worker                     coordinator
//   ------                     -----------
//   Hello                 -->
//                         <--  HelloAck        (campaign meta + lease_ms)
//   LeaseRequest          -->
//                         <--  LeaseGrant      (unit id + fault ids)
//                              | NoWork        (retry later / drained)
//   Result                -->
//                         <--  Ack             (drain / lost_lease flags)
//   Heartbeat             -->
//                         <--  Ack
//   UnitDone              -->
//                         <--  Ack
//   StatsRequest          -->
//                         <--  StatsSnapshot   (live campaign/worker stats)
//
// Result and Heartbeat both renew the sender's lease on the named unit; the
// Ack's lost_lease flag tells a worker its lease expired and was reassigned,
// so it must abandon the unit and request a fresh lease. Campaign identity
// rides in HelloAck as the store's own 80-byte encoded header, which the
// worker compares against the campaign it was asked to serve.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/framing.hpp"
#include "store/result_log.hpp"

namespace gpf::net {

// v2 added StatsRequest/StatsSnapshot (the gpfctl top observer path).
constexpr std::uint32_t kProtocolVersion = 2;

enum class MsgType : std::uint16_t {
  Hello = 1,
  HelloAck = 2,
  LeaseRequest = 3,
  LeaseGrant = 4,
  NoWork = 5,
  Result = 6,
  Heartbeat = 7,
  UnitDone = 8,
  Ack = 9,
  StatsRequest = 10,
  StatsSnapshot = 11,
};
const char* msg_type_name(MsgType t);

/// Worker introduction. A version mismatch is a coordinator-side error
/// (the fleet must be homogeneous).
struct Hello {
  std::uint32_t version = kProtocolVersion;
  std::string worker_name;
};

/// Coordinator's reply: the authoritative campaign identity plus the lease
/// duration workers must renew within.
struct HelloAck {
  store::CampaignMeta meta;
  std::uint32_t lease_ms = 0;
};

/// One leased work unit: a batch of fault ids owned by the worker until the
/// deadline. ids are campaign ids (pure inputs: the worker derives the whole
/// injection from id + meta, nothing else).
struct LeaseGrant {
  std::uint64_t unit_id = 0;
  std::vector<std::uint64_t> ids;
};

/// No lease available. drained=false means "all units currently leased,
/// retry after a backoff"; drained=true means the campaign is complete or
/// the coordinator is shutting down — the worker should exit.
struct NoWork {
  bool drained = false;
};

/// A batch of retired results for a leased unit. Streaming results renews
/// the lease, so a slow-but-alive worker never loses its unit.
struct ResultMsg {
  std::uint64_t unit_id = 0;
  std::vector<store::Record> records;
};

/// Explicit lease renewal for compute phases that retire nothing for a
/// while (e.g. a long golden run before the first result).
struct Heartbeat {
  std::uint64_t unit_id = 0;
};

/// All ids of the unit have been submitted.
struct UnitDone {
  std::uint64_t unit_id = 0;
};

/// Coordinator's reply to Result / Heartbeat / UnitDone. drain asks the
/// worker to finish its current unit and not request another; lost_lease
/// tells it the unit was reassigned (stop working on it immediately).
struct Ack {
  bool drain = false;
  bool lost_lease = false;
};

/// One row of the live per-worker table in a StatsSnapshot. A row outlives
/// its connection (connected=false) so `gpfctl top` shows dead workers too.
struct WorkerRow {
  std::uint64_t session = 0;     ///< coordinator-assigned connection id
  std::string name;              ///< worker's self-reported --name
  std::uint64_t retired = 0;     ///< fresh records this session appended
  std::uint32_t leased_units = 0;
  std::uint64_t idle_ms = 0;     ///< since the worker's last message
  std::uint8_t connected = 0;
};

/// Coordinator's reply to StatsRequest: a consistent view of campaign
/// progress for observers (`gpfctl top`). Rates are fixed-point (x1000) so
/// the wire stays integer-only.
struct StatsSnapshot {
  std::uint64_t total_ids = 0;       ///< this shard's id-space size
  std::uint64_t retired_ids = 0;     ///< records in the store (incl. resume)
  std::uint64_t done_at_open = 0;    ///< records recovered at store open
  std::uint32_t pending_units = 0;
  std::uint32_t leased_units = 0;
  std::uint64_t elapsed_ms = 0;      ///< since the coordinator started serving
  std::uint64_t rate_milli = 0;      ///< recent faults/s x1000
  std::uint64_t eta_ms = 0;          ///< 0 = unknown (no recent progress)
  std::uint8_t draining = 0;
  std::vector<WorkerRow> workers;
};

Frame encode(const Hello& m);
Frame encode(const HelloAck& m);
Frame encode(const LeaseGrant& m);
Frame encode(const NoWork& m);
Frame encode(const ResultMsg& m);
Frame encode(const Heartbeat& m);
Frame encode(const UnitDone& m);
Frame encode(const Ack& m);
Frame encode(const StatsSnapshot& m);
/// LeaseRequest carries no payload.
Frame encode_lease_request();
/// StatsRequest carries no payload.
Frame encode_stats_request();

/// Decoders throw on a type mismatch or malformed payload (protocol error —
/// the connection is torn down).
Hello decode_hello(const Frame& f);
HelloAck decode_hello_ack(const Frame& f);
LeaseGrant decode_lease_grant(const Frame& f);
NoWork decode_no_work(const Frame& f);
ResultMsg decode_result(const Frame& f);
Heartbeat decode_heartbeat(const Frame& f);
UnitDone decode_unit_done(const Frame& f);
Ack decode_ack(const Frame& f);
StatsSnapshot decode_stats_snapshot(const Frame& f);

}  // namespace gpf::net
