// Message layer of the distributed campaign service, on top of net framing.
//
// The protocol is strictly request/response and worker-driven: every message
// a worker sends gets exactly one coordinator reply, so both sides can use
// plain sockets with no reordering logic (the coordinator itself multiplexes
// many such conversations over one epoll loop).
//
//   worker                     coordinator
//   ------                     -----------
//   Hello                 -->
//                         <--  HelloAck        (lease_ms)
//   LeaseRequest          -->                  (optionally campaign-pinned)
//                         <--  LeaseGrant      (campaign + meta + unit + ids)
//                              | NoWork        (retry later / drained)
//   Result                -->
//                         <--  Ack             (drain / lost_lease flags)
//                              | Busy          (backpressure: retry later)
//   Heartbeat             -->
//                         <--  Ack
//   UnitDone              -->
//                         <--  Ack
//   StatsRequest          -->
//                         <--  StatsSnapshot   (live fleet/campaign stats)
//   SubmitCampaign        -->
//                         <--  OpResult        (admission control verdict)
//   RemoveCampaign        -->
//                         <--  OpResult
//   ListCampaigns         -->
//                         <--  CampaignList
//
// v3 made the coordinator multi-campaign: one gpfd serves many named
// campaigns concurrently, so campaign identity moved out of HelloAck into
// each LeaseGrant (name + campaign_id + the store's 80-byte meta header),
// and Result/Heartbeat/UnitDone carry the campaign_id their unit belongs
// to. Hello/LeaseRequest/StatsRequest may name a campaign to pin to (empty
// = any). SubmitCampaign/RemoveCampaign/ListCampaigns manage the registry
// while the fleet runs; Busy is the coordinator's explicit backpressure
// reply when a connection's outstanding-append queue is full.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/framing.hpp"
#include "store/result_log.hpp"

namespace gpf::net {

// v2 added StatsRequest/StatsSnapshot; v3 the multi-campaign registry
// (campaign-scoped leases, Submit/Remove/ListCampaigns, Busy backpressure,
// autoscale hints).
constexpr std::uint32_t kProtocolVersion = 3;

enum class MsgType : std::uint16_t {
  Hello = 1,
  HelloAck = 2,
  LeaseRequest = 3,
  LeaseGrant = 4,
  NoWork = 5,
  Result = 6,
  Heartbeat = 7,
  UnitDone = 8,
  Ack = 9,
  StatsRequest = 10,
  StatsSnapshot = 11,
  SubmitCampaign = 12,
  RemoveCampaign = 13,
  ListCampaigns = 14,
  CampaignList = 15,
  OpResult = 16,
  Busy = 17,
};
const char* msg_type_name(MsgType t);

/// Worker introduction. A version mismatch is a coordinator-side error
/// (the fleet must be homogeneous). `campaign` pins the worker to one named
/// campaign ("" = serve whatever the fair-share scheduler hands out).
struct Hello {
  std::uint32_t version = kProtocolVersion;
  std::string worker_name;
  std::string campaign;
};

/// Coordinator's reply: the lease duration workers must renew within.
/// Campaign identity rides in each LeaseGrant since v3.
struct HelloAck {
  std::uint32_t lease_ms = 0;
};

/// Lease solicitation; `campaign` restricts the grant to one named campaign
/// ("" = any, fair-share across the registry).
struct LeaseRequest {
  std::string campaign;
};

/// One leased work unit: a batch of fault ids owned by the worker until the
/// deadline. `campaign_id` is the registry token every follow-up message
/// (Result/Heartbeat/UnitDone) must carry; `meta` is the campaign's own
/// 80-byte store header, from which the worker derives the whole injection
/// (ids are pure inputs).
struct LeaseGrant {
  std::uint64_t campaign_id = 0;
  std::string campaign;  ///< registry name, e.g. "perfi-mxm-IOC"
  store::CampaignMeta meta;
  std::uint64_t unit_id = 0;
  std::vector<std::uint64_t> ids;
};

/// No lease available. drained=false means "nothing grantable right now,
/// retry after a backoff"; drained=true means the pinned campaign (or the
/// whole coordinator) is complete or draining — the worker should exit.
struct NoWork {
  bool drained = false;
};

/// A batch of retired results for a leased unit. Streaming results renews
/// the lease, so a slow-but-alive worker never loses its unit.
struct ResultMsg {
  std::uint64_t campaign_id = 0;
  std::uint64_t unit_id = 0;
  std::vector<store::Record> records;
};

/// Explicit lease renewal for compute phases that retire nothing for a
/// while (e.g. a long golden run before the first result).
struct Heartbeat {
  std::uint64_t campaign_id = 0;
  std::uint64_t unit_id = 0;
};

/// All ids of the unit have been submitted.
struct UnitDone {
  std::uint64_t campaign_id = 0;
  std::uint64_t unit_id = 0;
};

/// Coordinator's reply to Result / Heartbeat / UnitDone. drain asks the
/// worker to finish its current unit and not request another; lost_lease
/// tells it the unit was reassigned or its campaign was removed (stop
/// working on it immediately).
struct Ack {
  bool drain = false;
  bool lost_lease = false;
};

/// Backpressure reply to a Result whose records would overflow the
/// connection's outstanding-append queue: the message was NOT accepted;
/// resend it after retry_after_ms.
struct Busy {
  std::uint32_t retry_after_ms = 0;
};

/// Registers a new campaign with the running coordinator. The store is
/// created (or resumed) as <coordinator store dir>/<name>.gpfs; `name` must
/// be the canonical campaign name for `meta` so every submitter derives the
/// same identity. Higher `priority` earns proportionally more lease grants
/// under deficit-round-robin fair share.
struct SubmitCampaign {
  std::string name;
  std::uint32_t priority = 1;
  store::CampaignMeta meta;
};

/// Gracefully retires a named campaign: no new leases are granted for it,
/// outstanding leases finish (or expire) undisturbed, then its store is
/// synced and the campaign leaves the registry.
struct RemoveCampaign {
  std::string name;
};

/// Coordinator's verdict on SubmitCampaign / RemoveCampaign.
struct OpResult {
  bool ok = false;
  std::string message;
};

/// One campaign's row in CampaignList / StatsSnapshot.
struct CampaignRow {
  std::string name;
  std::uint8_t kind = 0;      ///< store::CampaignKind
  std::uint8_t state = 0;     ///< 0 running, 1 removing (drain-one), 2 done
  std::uint32_t priority = 1;
  std::uint64_t total_ids = 0;
  std::uint64_t retired_ids = 0;
  std::uint32_t pending_units = 0;
  std::uint32_t leased_units = 0;
};

struct CampaignList {
  std::vector<CampaignRow> campaigns;
};

/// One row of the live per-worker table in a StatsSnapshot. A row outlives
/// its connection (connected=false) so `gpfctl top` shows dead workers too;
/// rows dead longer than the session TTL are folded into the snapshot's
/// evicted_* aggregates.
struct WorkerRow {
  std::uint64_t session = 0;     ///< coordinator-assigned connection id
  std::string name;              ///< worker's self-reported --name
  std::uint64_t retired = 0;     ///< fresh records this session appended
  std::uint32_t leased_units = 0;
  std::uint64_t idle_ms = 0;     ///< since the worker's last message
  std::uint8_t connected = 0;
};

/// Coordinator's reply to StatsRequest: a consistent view of fleet progress
/// for observers (`gpfctl top`). When the request named a campaign, the id
/// and unit counts are scoped to it; otherwise they aggregate the whole
/// registry. Rates are fixed-point (x1000) so the wire stays integer-only.
struct StatsSnapshot {
  std::uint64_t total_ids = 0;       ///< id-space size (scoped or aggregate)
  std::uint64_t retired_ids = 0;     ///< records in store(s) (incl. resume)
  std::uint64_t done_at_open = 0;    ///< records recovered at store open
  std::uint32_t pending_units = 0;
  std::uint32_t leased_units = 0;
  std::uint64_t elapsed_ms = 0;      ///< since the coordinator started serving
  std::uint64_t rate_milli = 0;      ///< recent results/s x1000
  std::uint64_t eta_ms = 0;          ///< 0 = unknown (no recent progress)
  std::uint8_t draining = 0;
  /// Autoscale hints: how many workers are connected vs how many units the
  /// registry could keep busy right now (the fleet can usefully grow to
  /// `desired_workers`; surplus workers will mostly idle on NoWork).
  std::uint32_t connected_workers = 0;
  std::uint32_t desired_workers = 0;
  /// TTL-evicted session aggregates: evicted rows leave `workers` but their
  /// retired counts stay accounted here, so sums remain exact under churn.
  std::uint64_t evicted_workers = 0;
  std::uint64_t evicted_retired = 0;
  std::vector<CampaignRow> campaigns;
  std::vector<WorkerRow> workers;
};

Frame encode(const Hello& m);
Frame encode(const HelloAck& m);
Frame encode(const LeaseRequest& m);
Frame encode(const LeaseGrant& m);
Frame encode(const NoWork& m);
Frame encode(const ResultMsg& m);
Frame encode(const Heartbeat& m);
Frame encode(const UnitDone& m);
Frame encode(const Ack& m);
Frame encode(const Busy& m);
Frame encode(const SubmitCampaign& m);
Frame encode(const RemoveCampaign& m);
Frame encode(const OpResult& m);
Frame encode(const CampaignList& m);
Frame encode(const StatsSnapshot& m);
/// ListCampaigns carries no payload.
Frame encode_list_campaigns();
/// StatsRequest carries an optional campaign name ("" = aggregate).
Frame encode_stats_request(const std::string& campaign = "");

/// Decoders throw on a type mismatch or malformed payload (protocol error —
/// the connection is torn down).
Hello decode_hello(const Frame& f);
HelloAck decode_hello_ack(const Frame& f);
LeaseRequest decode_lease_request(const Frame& f);
LeaseGrant decode_lease_grant(const Frame& f);
NoWork decode_no_work(const Frame& f);
ResultMsg decode_result(const Frame& f);
Heartbeat decode_heartbeat(const Frame& f);
UnitDone decode_unit_done(const Frame& f);
Ack decode_ack(const Frame& f);
Busy decode_busy(const Frame& f);
SubmitCampaign decode_submit_campaign(const Frame& f);
RemoveCampaign decode_remove_campaign(const Frame& f);
OpResult decode_op_result(const Frame& f);
CampaignList decode_campaign_list(const Frame& f);
std::string decode_stats_request(const Frame& f);
StatsSnapshot decode_stats_snapshot(const Frame& f);

}  // namespace gpf::net
