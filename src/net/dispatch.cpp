#include "net/dispatch.hpp"

#include <algorithm>
#include <stdexcept>

namespace gpf::net {

LeaseDispatcher::LeaseDispatcher(const store::CampaignMeta& meta,
                                 std::size_t unit_size,
                                 const std::set<std::uint64_t>& already_retired) {
  if (unit_size == 0) throw std::runtime_error("dispatch: unit_size must be > 0");
  Unit unit;
  for (std::uint64_t id = 0; id < meta.total; ++id) {
    if (!meta.owns(id) || already_retired.count(id)) continue;
    unit.outstanding.insert(id);
    id_unit_[id] = units_.size();
    ++id_count_;
    if (unit.outstanding.size() == unit_size) {
      units_.push_back(std::move(unit));
      unit = Unit();
    }
  }
  if (!unit.outstanding.empty()) units_.push_back(std::move(unit));
  for (std::uint64_t u = 0; u < units_.size(); ++u) queue_.push_back(u);
}

std::optional<LeaseDispatcher::Grant> LeaseDispatcher::lease(
    std::uint64_t session, Clock::time_point now, Clock::duration lease_len) {
  if (queue_.empty()) return std::nullopt;
  const std::uint64_t unit_id = queue_.front();
  queue_.pop_front();
  Unit& u = units_[unit_id];
  u.state = State::Leased;
  u.session = session;
  u.deadline = now + lease_len;
  Grant g;
  g.unit_id = unit_id;
  g.ids.assign(u.outstanding.begin(), u.outstanding.end());
  return g;
}

bool LeaseDispatcher::renew(std::uint64_t unit_id, std::uint64_t session,
                            Clock::time_point now, Clock::duration lease_len) {
  if (unit_id >= units_.size()) return false;
  Unit& u = units_[unit_id];
  // A Done unit acks successfully: the worker's final messages for a unit
  // that auto-completed under it are not a lost lease.
  if (u.state == State::Done) return true;
  if (u.state != State::Leased || u.session != session) return false;
  u.deadline = now + lease_len;
  return true;
}

bool LeaseDispatcher::mark_retired(std::uint64_t id) {
  const auto it = id_unit_.find(id);
  if (it == id_unit_.end()) return false;  // duplicate or foreign id
  Unit& u = units_[it->second];
  if (u.outstanding.erase(id) == 0) return false;
  ++retired_;
  if (u.outstanding.empty() && u.state != State::Done) {
    const State was = u.state;
    u.state = State::Done;
    if (was == State::Pending) {
      const auto q = std::find(queue_.begin(), queue_.end(), it->second);
      if (q != queue_.end()) queue_.erase(q);
    }
  }
  return true;
}

void LeaseDispatcher::release_session(std::uint64_t session) {
  for (std::uint64_t u = 0; u < units_.size(); ++u) {
    if (units_[u].state == State::Leased && units_[u].session == session)
      requeue(u);
  }
}

std::size_t LeaseDispatcher::expire_stale(Clock::time_point now) {
  std::size_t expired = 0;
  for (std::uint64_t u = 0; u < units_.size(); ++u) {
    if (units_[u].state == State::Leased && units_[u].deadline <= now) {
      requeue(u);
      ++expired;
    }
  }
  return expired;
}

std::size_t LeaseDispatcher::leased_units() const {
  return static_cast<std::size_t>(
      std::count_if(units_.begin(), units_.end(), [](const Unit& u) {
        return u.state == State::Leased;
      }));
}

std::size_t LeaseDispatcher::leased_units_for(std::uint64_t session) const {
  return static_cast<std::size_t>(
      std::count_if(units_.begin(), units_.end(), [session](const Unit& u) {
        return u.state == State::Leased && u.session == session;
      }));
}

std::uint64_t DrrScheduler::pick(
    const std::vector<std::pair<std::uint64_t, std::uint32_t>>& eligible) {
  if (eligible.empty())
    throw std::runtime_error("dispatch: DRR pick from empty eligible set");
  std::int64_t round_cost = 0;
  for (const auto& [key, weight] : eligible) {
    if (weight == 0)
      throw std::runtime_error("dispatch: DRR weight must be >= 1");
    deficit_[key] += weight;
    round_cost += weight;
  }
  std::uint64_t best = eligible.front().first;
  for (const auto& [key, weight] : eligible) {
    if (deficit_[key] > deficit_[best] ||
        (deficit_[key] == deficit_[best] && key < best))
      best = key;
  }
  deficit_[best] -= round_cost;
  return best;
}

void LeaseDispatcher::requeue(std::uint64_t unit_id) {
  Unit& u = units_[unit_id];
  if (u.outstanding.empty()) {
    u.state = State::Done;
    return;
  }
  u.state = State::Pending;
  u.session = 0;
  queue_.push_back(unit_id);
}

}  // namespace gpf::net
