// Blocking-socket message framing for the distributed campaign service.
//
// Every message on the wire is one frame:
//
//   u32 len    payload length + 2 (the type field), little-endian
//   u16 type   message type (net::MsgType; opaque at this layer)
//   ...        payload bytes (len - 2 of them)
//   u32 crc    CRC-32 over type + payload (same polynomial as the store)
//
// A frame whose CRC fails, whose length field exceeds kMaxFrameBytes, or
// that ends mid-frame is a protocol error and throws — the connection is
// unusable after corruption, exactly like a torn store record. POSIX
// sockets only (the repo is zero-dependency); serialization reuses
// store/bytes.hpp so the framing shares the store's byte conventions.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace gpf::net {

/// One length-prefixed, CRC-framed message.
struct Frame {
  std::uint16_t type = 0;
  std::vector<std::uint8_t> payload;
};

/// Upper bound on (type + payload) bytes; a length field beyond this is
/// treated as corruption rather than an allocation request.
constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

/// RAII file-descriptor wrapper (move-only).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(Socket&& o) noexcept : fd_(std::exchange(o.fd_, -1)) {}
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void close();

 private:
  int fd_ = -1;
};

/// Splits "host:port" (e.g. the GPF_COORD_ADDR knob). Throws on a missing
/// or non-numeric port.
std::pair<std::string, std::uint16_t> parse_addr(const std::string& addr);

/// Binds and listens on host:port (port 0 = kernel-assigned; read it back
/// with local_port). Throws on failure.
Socket listen_tcp(const std::string& host, std::uint16_t port, int backlog = 16);

/// The locally bound port of a listening/connected socket.
std::uint16_t local_port(const Socket& s);

/// Accepts one client, waiting at most timeout_ms (poll). Returns an
/// invalid Socket on timeout; throws on listener failure.
Socket accept_client(const Socket& listener, int timeout_ms);

/// Connects to host:port. Throws on failure (the worker wraps this in its
/// reconnect backoff loop).
Socket connect_tcp(const std::string& host, std::uint16_t port);

/// Connected AF_UNIX pair, for in-process tests of the framing itself.
std::pair<Socket, Socket> socket_pair();

/// SO_RCVTIMEO: recv_frame returns Timeout instead of blocking forever.
void set_recv_timeout(const Socket& s, int timeout_ms);

/// O_NONBLOCK toggle, for sockets driven by the coordinator's epoll loop.
void set_nonblocking(const Socket& s, bool on);

/// Serializes one frame to its wire form (len | type | payload | crc).
std::vector<std::uint8_t> frame_bytes(const Frame& f);

/// Non-blocking frame reassembly: tries to extract one whole, CRC-valid
/// frame from `buf` starting at `off`. Returns true and advances `off` past
/// the frame; returns false when the buffer holds only a partial frame
/// (read more bytes and retry). Throws on corruption (bad length or CRC) —
/// the stream can never resynchronize, exactly like recv_frame.
bool extract_frame(const std::vector<std::uint8_t>& buf, std::size_t& off,
                   Frame& out);

/// Sends one frame (handles short writes; MSG_NOSIGNAL, so a dead peer
/// surfaces as an exception, not SIGPIPE). Throws on any send failure.
void send_frame(const Socket& s, const Frame& f);

enum class RecvStatus : std::uint8_t {
  Ok,       ///< a whole, CRC-valid frame was read into `out`
  Eof,      ///< clean shutdown before any byte of a new frame
  Timeout,  ///< SO_RCVTIMEO expired before any byte of a new frame
};

/// Reads one frame. A timeout or EOF *mid-frame* is a protocol error and
/// throws (the stream can never resynchronize), as does a CRC mismatch or
/// an oversized length field.
RecvStatus recv_frame(const Socket& s, Frame& out);

}  // namespace gpf::net
