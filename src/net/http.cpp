#include "net/http.hpp"

#include <sys/socket.h>

#include <cstdio>
#include <sstream>

#include "obs/metrics.hpp"
#include "store/export.hpp"

namespace gpf::net {

namespace {

constexpr std::size_t kMaxHeadBytes = 8192;

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
  }
  return "Unknown";
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string percent_decode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      const int hi = hex_digit(s[i + 1]), lo = hex_digit(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
        continue;
      }
    }
    out.push_back(s[i] == '+' ? ' ' : s[i]);
  }
  return out;
}

/// Escapes a string for embedding in a JSON value.
std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace

bool parse_http_request(const std::string& head, HttpRequest& out) {
  const std::size_t line_end = head.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return false;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return false;
  out.method = line.substr(0, sp1);
  out.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (out.method.empty() || out.target.empty() || out.target[0] != '/')
    return false;
  if (line.compare(sp2 + 1, 5, "HTTP/") != 0) return false;

  const std::size_t q = out.target.find('?');
  out.path = out.target.substr(0, q);
  out.params.clear();
  if (q != std::string::npos) {
    std::size_t start = q + 1;
    while (start <= out.target.size()) {
      std::size_t end = out.target.find('&', start);
      if (end == std::string::npos) end = out.target.size();
      const std::string pair = out.target.substr(start, end - start);
      if (!pair.empty()) {
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos)
          out.params[percent_decode(pair)] = "";
        else
          out.params[percent_decode(pair.substr(0, eq))] =
              percent_decode(pair.substr(eq + 1));
      }
      start = end + 1;
    }
  }
  return true;
}

std::string serialize_http_response(const HttpResponse& r) {
  std::ostringstream os;
  os << "HTTP/1.1 " << r.status << " " << status_text(r.status) << "\r\n"
     << "Content-Type: " << r.content_type << "\r\n"
     << "Content-Length: " << r.body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << r.body;
  return os.str();
}

HttpServer::HttpServer(const std::string& addr, HttpHandler handler)
    : handler_(std::move(handler)) {
  const auto [host, port] = parse_addr(addr);
  listener_ = listen_tcp(host, port);
  port_ = local_port(listener_);
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::start() {
  if (thread_.joinable()) return;
  stop_.store(false);
  thread_ = std::thread([this] { serve_loop(); });
}

void HttpServer::stop() {
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
}

void HttpServer::serve_loop() {
  static obs::Counter& requests = obs::counter("http.requests");
  static obs::Counter& errors = obs::counter("http.errors");
  while (!stop_.load(std::memory_order_relaxed)) {
    Socket client;
    try {
      client = accept_client(listener_, 200);
    } catch (const std::exception&) {
      break;  // listener died; nothing to serve
    }
    if (!client.valid()) continue;

    HttpResponse resp;
    try {
      set_recv_timeout(client, 2000);
      std::string head;
      char buf[1024];
      while (head.find("\r\n\r\n") == std::string::npos &&
             head.size() < kMaxHeadBytes) {
        const ssize_t n = ::recv(client.fd(), buf, sizeof(buf), 0);
        if (n <= 0) break;
        head.append(buf, static_cast<std::size_t>(n));
      }
      HttpRequest req;
      if (!parse_http_request(head, req)) {
        resp = {400, "application/json", "{\"error\": \"malformed request\"}\n"};
      } else if (req.method != "GET") {
        resp = {405, "application/json", "{\"error\": \"GET only\"}\n"};
      } else {
        resp = handler_(req);
      }
    } catch (const std::exception& e) {
      resp = {500, "application/json",
              "{\"error\": " + json_str(e.what()) + "}\n"};
      errors.add(1);
    }
    requests.add(1);
    try {
      const std::string wire = serialize_http_response(resp);
      std::size_t off = 0;
      while (off < wire.size()) {
        const ssize_t n = ::send(client.fd(), wire.data() + off,
                                 wire.size() - off, MSG_NOSIGNAL);
        if (n <= 0) break;
        off += static_cast<std::size_t>(n);
      }
    } catch (const std::exception&) {
      // Peer went away mid-response; nothing to do.
    }
  }
}

namespace {

const char* campaign_state_name(std::uint8_t state) {
  switch (state) {
    case 0: return "running";
    case 1: return "removing";
    case 2: return "done";
  }
  return "?";
}

void append_campaign_row(std::ostringstream& os, const CampaignRow& c) {
  os << "{\"name\": " << json_str(c.name) << ", \"kind\": \""
     << store::campaign_kind_name(static_cast<store::CampaignKind>(c.kind))
     << "\", \"state\": \"" << campaign_state_name(c.state)
     << "\", \"priority\": " << c.priority
     << ", \"total_ids\": " << c.total_ids
     << ", \"retired_ids\": " << c.retired_ids
     << ", \"pending_units\": " << c.pending_units
     << ", \"leased_units\": " << c.leased_units << "}";
}

}  // namespace

std::string stats_json(const StatsSnapshot& st) {
  std::ostringstream os;
  os << "{\n  \"progress\": {\"total_ids\": " << st.total_ids
     << ", \"retired_ids\": " << st.retired_ids
     << ", \"done_at_open\": " << st.done_at_open
     << ", \"pending_units\": " << st.pending_units
     << ", \"leased_units\": " << st.leased_units
     << ", \"elapsed_ms\": " << st.elapsed_ms
     << ", \"rate_milli\": " << st.rate_milli << ", \"eta_ms\": " << st.eta_ms
     << ", \"draining\": " << (st.draining ? "true" : "false")
     << ", \"connected_workers\": " << st.connected_workers
     << ", \"desired_workers\": " << st.desired_workers
     << ", \"evicted_workers\": " << st.evicted_workers
     << ", \"evicted_retired\": " << st.evicted_retired << "},\n";
  os << "  \"campaigns\": [\n";
  for (std::size_t i = 0; i < st.campaigns.size(); ++i) {
    os << (i ? ",\n" : "") << "    ";
    append_campaign_row(os, st.campaigns[i]);
  }
  os << "\n  ],\n  \"workers\": [\n";
  for (std::size_t i = 0; i < st.workers.size(); ++i) {
    const WorkerRow& w = st.workers[i];
    os << (i ? ",\n" : "") << "    {\"session\": " << w.session
       << ", \"name\": " << json_str(w.name) << ", \"retired\": " << w.retired
       << ", \"leased_units\": " << w.leased_units
       << ", \"idle_ms\": " << w.idle_ms
       << ", \"connected\": " << (w.connected ? "true" : "false") << "}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

std::string campaigns_json(const std::vector<CampaignRow>& rows) {
  std::ostringstream os;
  os << "{\n  \"campaigns\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    os << (i ? ",\n" : "") << "    ";
    append_campaign_row(os, rows[i]);
  }
  os << "\n  ]\n}\n";
  return os.str();
}

}  // namespace gpf::net
