#include "net/framing.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "store/bytes.hpp"

namespace gpf::net {

namespace {

[[noreturn]] void sys_error(const std::string& what) {
  throw std::runtime_error("net: " + what + ": " + std::strerror(errno));
}

}  // namespace

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = std::exchange(o.fd_, -1);
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::pair<std::string, std::uint16_t> parse_addr(const std::string& addr) {
  const std::size_t colon = addr.rfind(':');
  if (colon == std::string::npos || colon + 1 == addr.size())
    throw std::runtime_error("net: address must be host:port, got '" + addr +
                             "'");
  const std::string host = addr.substr(0, colon);
  const std::string port_s = addr.substr(colon + 1);
  char* end = nullptr;
  const unsigned long port = std::strtoul(port_s.c_str(), &end, 10);
  if (*end != '\0' || port > 65535)
    throw std::runtime_error("net: invalid port in '" + addr + "'");
  return {host, static_cast<std::uint16_t>(port)};
}

namespace {

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1)
    throw std::runtime_error("net: invalid IPv4 address '" + host +
                             "' (numeric addresses only)");
  return sa;
}

}  // namespace

Socket listen_tcp(const std::string& host, std::uint16_t port, int backlog) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) sys_error("socket");
  const int one = 1;
  ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  const sockaddr_in sa = make_addr(host, port);
  if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0)
    sys_error("bind " + host + ":" + std::to_string(port));
  if (::listen(s.fd(), backlog) != 0) sys_error("listen");
  return s;
}

std::uint16_t local_port(const Socket& s) {
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  if (::getsockname(s.fd(), reinterpret_cast<sockaddr*>(&sa), &len) != 0)
    sys_error("getsockname");
  return ntohs(sa.sin_port);
}

Socket accept_client(const Socket& listener, int timeout_ms) {
  pollfd pfd{listener.fd(), POLLIN, 0};
  const int r = ::poll(&pfd, 1, timeout_ms);
  if (r < 0) {
    if (errno == EINTR) return Socket();
    sys_error("poll");
  }
  if (r == 0) return Socket();
  const int fd = ::accept(listener.fd(), nullptr, nullptr);
  if (fd < 0) {
    if (errno == EINTR || errno == ECONNABORTED) return Socket();
    sys_error("accept");
  }
  return Socket(fd);
}

Socket connect_tcp(const std::string& host, std::uint16_t port) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) sys_error("socket");
  const sockaddr_in sa = make_addr(host, port);
  if (::connect(s.fd(), reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0)
    sys_error("connect " + host + ":" + std::to_string(port));
  const int one = 1;
  ::setsockopt(s.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return s;
}

std::pair<Socket, Socket> socket_pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) sys_error("socketpair");
  return {Socket(fds[0]), Socket(fds[1])};
}

void set_recv_timeout(const Socket& s, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  if (::setsockopt(s.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0)
    sys_error("setsockopt SO_RCVTIMEO");
}

void set_nonblocking(const Socket& s, bool on) {
  const int flags = ::fcntl(s.fd(), F_GETFL, 0);
  if (flags < 0) sys_error("fcntl F_GETFL");
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(s.fd(), F_SETFL, want) != 0) sys_error("fcntl F_SETFL");
}

std::vector<std::uint8_t> frame_bytes(const Frame& f) {
  std::vector<std::uint8_t> wire;
  wire.reserve(4 + 2 + f.payload.size() + 4);
  store::ByteWriter w(wire);
  w.u32(static_cast<std::uint32_t>(2 + f.payload.size()));
  const std::size_t body_start = wire.size();
  w.u8(static_cast<std::uint8_t>(f.type));
  w.u8(static_cast<std::uint8_t>(f.type >> 8));
  wire.insert(wire.end(), f.payload.begin(), f.payload.end());
  w.u32(store::crc32(
      std::span(wire).subspan(body_start, 2 + f.payload.size())));
  return wire;
}

bool extract_frame(const std::vector<std::uint8_t>& buf, std::size_t& off,
                   Frame& out) {
  if (buf.size() - off < 4) return false;
  const std::uint32_t len = static_cast<std::uint32_t>(buf[off]) |
                            static_cast<std::uint32_t>(buf[off + 1]) << 8 |
                            static_cast<std::uint32_t>(buf[off + 2]) << 16 |
                            static_cast<std::uint32_t>(buf[off + 3]) << 24;
  if (len < 2 || len > kMaxFrameBytes)
    throw std::runtime_error("net: bad frame length " + std::to_string(len));
  if (buf.size() - off < 4 + std::size_t{len} + 4) return false;

  const std::span<const std::uint8_t> body(buf.data() + off + 4, len + 4);
  const std::uint32_t want = store::crc32(body.subspan(0, len));
  store::ByteReader crc_r(body.subspan(len, 4));
  if (crc_r.u32() != want) {
    static obs::Counter& rejects = obs::counter("net.crc_rejects");
    rejects.add(1);
    throw std::runtime_error("net: frame CRC mismatch (corrupt stream)");
  }
  out.type = static_cast<std::uint16_t>(body[0]) |
             static_cast<std::uint16_t>(static_cast<std::uint16_t>(body[1]) << 8);
  out.payload.assign(body.begin() + 2, body.begin() + len);
  off += 4 + std::size_t{len} + 4;
  static obs::Counter& frames = obs::counter("net.frames_in");
  static obs::Counter& bytes = obs::counter("net.bytes_in");
  frames.add(1);
  bytes.add(8 + len);
  return true;
}

void send_frame(const Socket& s, const Frame& f) {
  const std::vector<std::uint8_t> wire = frame_bytes(f);
  std::size_t off = 0;
  while (off < wire.size()) {
    const ssize_t n =
        ::send(s.fd(), wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      sys_error("send");
    }
    off += static_cast<std::size_t>(n);
  }
  static obs::Counter& frames = obs::counter("net.frames_out");
  static obs::Counter& bytes = obs::counter("net.bytes_out");
  frames.add(1);
  bytes.add(wire.size());
}

namespace {

/// Reads exactly n bytes. `allow_idle` distinguishes a peer that has gone
/// quiet *between* frames (legal: Eof / Timeout) from one that stalled
/// mid-frame (protocol error: the stream cannot resynchronize).
RecvStatus recv_exact(const Socket& s, std::uint8_t* buf, std::size_t n,
                      bool allow_idle) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t r = ::recv(s.fd(), buf + off, n - off, 0);
    if (r == 0) {
      if (off == 0 && allow_idle) return RecvStatus::Eof;
      throw std::runtime_error("net: connection closed mid-frame");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (off == 0 && allow_idle) return RecvStatus::Timeout;
        // Mid-frame timeout: keep waiting for the peer's in-flight bytes;
        // a dead peer eventually shows up as ECONNRESET/EOF and the
        // coordinator's lease deadline covers a truly hung one.
        continue;
      }
      sys_error("recv");
    }
    off += static_cast<std::size_t>(r);
  }
  return RecvStatus::Ok;
}

}  // namespace

RecvStatus recv_frame(const Socket& s, Frame& out) {
  std::uint8_t len_buf[4];
  const RecvStatus st = recv_exact(s, len_buf, 4, /*allow_idle=*/true);
  if (st != RecvStatus::Ok) return st;
  const std::uint32_t len = static_cast<std::uint32_t>(len_buf[0]) |
                            static_cast<std::uint32_t>(len_buf[1]) << 8 |
                            static_cast<std::uint32_t>(len_buf[2]) << 16 |
                            static_cast<std::uint32_t>(len_buf[3]) << 24;
  if (len < 2 || len > kMaxFrameBytes)
    throw std::runtime_error("net: bad frame length " + std::to_string(len));

  std::vector<std::uint8_t> body(len + 4);  // type + payload + crc
  recv_exact(s, body.data(), body.size(), /*allow_idle=*/false);

  const std::span<const std::uint8_t> bs(body);
  const std::uint32_t want = store::crc32(bs.subspan(0, len));
  store::ByteReader crc_r(bs.subspan(len, 4));
  if (crc_r.u32() != want) {
    static obs::Counter& rejects = obs::counter("net.crc_rejects");
    rejects.add(1);
    throw std::runtime_error("net: frame CRC mismatch (corrupt stream)");
  }

  out.type = static_cast<std::uint16_t>(body[0]) |
             static_cast<std::uint16_t>(static_cast<std::uint16_t>(body[1]) << 8);
  out.payload.assign(body.begin() + 2, body.begin() + len);
  static obs::Counter& frames = obs::counter("net.frames_in");
  static obs::Counter& bytes = obs::counter("net.bytes_in");
  frames.add(1);
  bytes.add(4 + body.size());
  return RecvStatus::Ok;
}

}  // namespace gpf::net
