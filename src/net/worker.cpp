#include "net/worker.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <exception>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "net/framing.hpp"
#include "net/protocol.hpp"
#include "obs/metrics.hpp"

namespace gpf::net {

namespace {

/// Non-network failure (bad campaign, work function threw): must abort the
/// worker instead of entering the reconnect loop.
struct FatalWorkerError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Receives the coordinator's reply; any silence or EOF here is a lost
/// connection (the protocol is strict request/response).
Frame recv_reply(const Socket& sock) {
  Frame f;
  if (recv_frame(sock, f) != RecvStatus::Ok)
    throw std::runtime_error("net: coordinator connection lost");
  return f;
}

/// Sends one Result, resending after each Busy reply (coordinator
/// backpressure: the message was refused whole, so a verbatim resend is
/// exactly once from the store's point of view).
Ack send_result(const Socket& sock, const ResultMsg& msg, WorkerStats& stats) {
  static obs::Counter& busy_retries = obs::counter("net.worker_busy_retries");
  while (true) {
    send_frame(sock, encode(msg));
    const Frame f = recv_reply(sock);
    if (static_cast<MsgType>(f.type) == MsgType::Busy) {
      const Busy b = decode_busy(f);
      ++stats.busy_retries;
      busy_retries.add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(b.retry_after_ms));
      continue;
    }
    return decode_ack(f);
  }
}

struct UnitOutcome {
  bool lost = false;
  bool drain = false;
};

/// Works one leased unit: compute thread fills the queue, this thread
/// streams Result / Heartbeat messages. Throws on connection loss (caller
/// reconnects) or a compute error (fatal).
UnitOutcome work_unit(const Socket& sock, const LeaseGrant& grant,
                      const UnitFn& fn, const WorkerConfig& cfg,
                      std::uint32_t lease_ms, WorkerStats& stats) {
  const auto heartbeat_every =
      std::chrono::milliseconds(heartbeat_interval_ms(lease_ms));

  std::mutex mu;
  std::condition_variable cv;
  std::deque<store::Record> queue;
  bool compute_done = false;
  std::exception_ptr compute_err;
  std::atomic<bool> abort{false};

  std::thread compute([&] {
    try {
      fn(grant.ids,
         [&](std::uint64_t id, std::vector<std::uint8_t> payload) {
           std::lock_guard<std::mutex> lock(mu);
           queue.push_back(store::Record{id, std::move(payload)});
           cv.notify_all();
         },
         [&] { return abort.load(std::memory_order_relaxed); });
    } catch (...) {
      compute_err = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mu);
    compute_done = true;
    cv.notify_all();
  });

  UnitOutcome out;
  try {
    while (true) {
      std::vector<store::Record> batch;
      bool finished = false;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait_for(lock, heartbeat_every,
                    [&] { return !queue.empty() || compute_done; });
        while (!queue.empty() && batch.size() < cfg.batch_records) {
          batch.push_back(std::move(queue.front()));
          queue.pop_front();
        }
        finished = compute_done && queue.empty() && batch.empty();
      }

      Ack ack;
      if (!batch.empty()) {
        ResultMsg msg;
        msg.campaign_id = grant.campaign_id;
        msg.unit_id = grant.unit_id;
        msg.records = std::move(batch);
        const std::size_t n = msg.records.size();
        ack = send_result(sock, msg, stats);
        stats.retired += n;
      } else if (finished) {
        if (compute_err) break;  // rethrown after the join below
        UnitDone done;
        done.campaign_id = grant.campaign_id;
        done.unit_id = grant.unit_id;
        send_frame(sock, encode(done));
        ack = decode_ack(recv_reply(sock));
        if (!ack.lost_lease) ++stats.units;
      } else {
        Heartbeat hb;
        hb.campaign_id = grant.campaign_id;
        hb.unit_id = grant.unit_id;
        static obs::Histogram& rtt = obs::histogram("net.heartbeat_rtt_us");
        obs::ScopedTimerUs timer(rtt);
        send_frame(sock, encode(hb));
        ack = decode_ack(recv_reply(sock));
      }

      if (ack.drain) out.drain = true;
      if (ack.lost_lease) {
        out.lost = true;
        ++stats.lost_leases;
        break;
      }
      if (finished) break;
    }
  } catch (...) {
    abort.store(true, std::memory_order_relaxed);
    compute.join();
    throw;
  }
  abort.store(true, std::memory_order_relaxed);
  compute.join();
  if (compute_err) {
    try {
      std::rethrow_exception(compute_err);
    } catch (const std::exception& e) {
      throw FatalWorkerError(std::string("work function failed: ") + e.what());
    }
  }
  return out;
}

Socket handshake(const std::string& host, std::uint16_t port,
                 const std::string& name, const std::string& campaign,
                 std::uint32_t* lease_ms_out) {
  Socket sock = connect_tcp(host, port);
  // Replies are immediate in this protocol; a full lease duration of
  // silence means the coordinator is wedged or gone.
  set_recv_timeout(sock, 30000);
  Hello hello;
  hello.worker_name = name;
  hello.campaign = campaign;
  send_frame(sock, encode(hello));
  const HelloAck ack = decode_hello_ack(recv_reply(sock));
  if (lease_ms_out) *lease_ms_out = std::max<std::uint32_t>(ack.lease_ms, 1);
  return sock;
}

}  // namespace

WorkerStats run_worker(const WorkerConfig& cfg, const UnitFnFactory& make_fn) {
  WorkerStats stats;
  // One work function per campaign, built from the first LeaseGrant that
  // names it and cached for the process lifetime; the cached meta pins the
  // campaign's identity (a name reused for a different campaign mid-fleet
  // is a fatal config error, not something to silently recompute).
  std::map<std::string, UnitFn> fns;
  std::map<std::string, store::CampaignMeta> metas;

  std::uint32_t backoff = std::max<std::uint32_t>(cfg.backoff_ms, 1);
  const std::uint32_t backoff_cap = backoff * 64;
  int failures = 0;
  bool connected_before = false;

  while (true) {
    Socket sock;
    std::uint32_t lease_ms = 0;
    try {
      sock = handshake(cfg.host, cfg.port, cfg.name, cfg.campaign, &lease_ms);
      set_recv_timeout(sock, static_cast<int>(std::max<std::uint32_t>(
                                 lease_ms, 30000)));
    } catch (const FatalWorkerError&) {
      throw;
    } catch (const std::exception& e) {
      ++failures;
      if (cfg.verbose)
        std::fprintf(stderr, "[%s] connect failed (%d/%d): %s\n",
                     cfg.name.c_str(), failures, cfg.max_connect_failures,
                     e.what());
      if (failures >= cfg.max_connect_failures) {
        stats.gave_up = true;
        return stats;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      backoff = std::min(backoff * 2, backoff_cap);
      continue;
    }
    if (connected_before) {
      ++stats.reconnects;
      static obs::Counter& reconnects = obs::counter("net.reconnects");
      reconnects.add(1);
    }
    connected_before = true;
    failures = 0;
    backoff = std::max<std::uint32_t>(cfg.backoff_ms, 1);

    try {
      while (true) {
        LeaseRequest req;
        req.campaign = cfg.campaign;
        send_frame(sock, encode(req));
        const Frame f = recv_reply(sock);
        if (static_cast<MsgType>(f.type) == MsgType::NoWork) {
          const NoWork nw = decode_no_work(f);
          if (nw.drained) {
            stats.drained = true;
            return stats;
          }
          // Everything is leased to other workers right now; idle briefly.
          std::this_thread::sleep_for(
              std::chrono::milliseconds(std::max<std::uint32_t>(lease_ms / 4, 10)));
          continue;
        }
        const LeaseGrant grant = decode_lease_grant(f);
        if (const auto it = metas.find(grant.campaign); it != metas.end()) {
          if (!(it->second == grant.meta))
            throw FatalWorkerError("worker: campaign '" + grant.campaign +
                                   "' changed identity mid-fleet");
        } else {
          metas.emplace(grant.campaign, grant.meta);
          fns.emplace(grant.campaign, make_fn(grant.meta));
          ++stats.campaigns;
          if (cfg.verbose)
            std::fprintf(stderr, "[%s] serving campaign '%s'\n",
                         cfg.name.c_str(), grant.campaign.c_str());
        }
        if (cfg.verbose)
          std::fprintf(stderr, "[%s] leased '%s' unit %llu (%zu ids)\n",
                       cfg.name.c_str(), grant.campaign.c_str(),
                       static_cast<unsigned long long>(grant.unit_id),
                       grant.ids.size());
        const UnitOutcome out = work_unit(sock, grant, fns.at(grant.campaign),
                                          cfg, lease_ms, stats);
        if (out.drain) {
          stats.drained = true;
          return stats;
        }
        (void)out.lost;  // lease lost: just request the next unit
      }
    } catch (const FatalWorkerError&) {
      throw;
    } catch (const std::runtime_error& e) {
      // Connection-level failure: drop the socket and reconnect with
      // backoff. The coordinator reclaims our leases on EOF.
      if (cfg.verbose)
        std::fprintf(stderr, "[%s] session lost: %s\n", cfg.name.c_str(),
                     e.what());
    }
  }
}

StatsSnapshot fetch_stats(const std::string& host, std::uint16_t port,
                          const std::string& campaign) {
  // Observers report no worker_name, keeping them out of the worker table.
  Socket sock = handshake(host, port, "", "", nullptr);
  set_recv_timeout(sock, 10000);
  send_frame(sock, encode_stats_request(campaign));
  return decode_stats_snapshot(recv_reply(sock));
}

std::vector<CampaignRow> fetch_campaigns(const std::string& host,
                                         std::uint16_t port) {
  Socket sock = handshake(host, port, "", "", nullptr);
  set_recv_timeout(sock, 10000);
  send_frame(sock, encode_list_campaigns());
  return decode_campaign_list(recv_reply(sock)).campaigns;
}

OpResult submit_campaign(const std::string& host, std::uint16_t port,
                         const std::string& name,
                         const store::CampaignMeta& meta,
                         std::uint32_t priority) {
  Socket sock = handshake(host, port, "", "", nullptr);
  set_recv_timeout(sock, 10000);
  SubmitCampaign msg;
  msg.name = name;
  msg.priority = priority;
  msg.meta = meta;
  send_frame(sock, encode(msg));
  return decode_op_result(recv_reply(sock));
}

OpResult remove_campaign(const std::string& host, std::uint16_t port,
                         const std::string& name) {
  Socket sock = handshake(host, port, "", "", nullptr);
  set_recv_timeout(sock, 10000);
  RemoveCampaign msg;
  msg.name = name;
  send_frame(sock, encode(msg));
  return decode_op_result(recv_reply(sock));
}

}  // namespace gpf::net
