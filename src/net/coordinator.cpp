#include "net/coordinator.hpp"

#include <chrono>
#include <cstdio>
#include <set>
#include <stdexcept>

#include "net/protocol.hpp"
#include "obs/metrics.hpp"

namespace gpf::net {

namespace {

std::set<std::uint64_t> done_ids(const store::CampaignCheckpoint& ckpt) {
  std::set<std::uint64_t> ids;
  for (const auto& [id, payload] : ckpt.done()) ids.insert(id);
  return ids;
}

std::uint64_t ms_between(LeaseDispatcher::Clock::time_point a,
                         LeaseDispatcher::Clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(b - a).count());
}

}  // namespace

Coordinator::Coordinator(store::CampaignCheckpoint& ckpt,
                         const CoordinatorConfig& cfg)
    : ckpt_(ckpt),
      cfg_(cfg),
      listener_(listen_tcp(cfg.host, cfg.port)),
      dispatcher_(ckpt.meta(), cfg.unit_size, done_ids(ckpt)),
      done_at_open_(ckpt.done().size()) {
  port_ = local_port(listener_);
}

void Coordinator::touch_session(std::uint64_t session, const std::string& name,
                                LeaseDispatcher::Clock::time_point now,
                                std::uint64_t retired_delta) {
  SessionInfo& info = sessions_[session];
  if (!name.empty()) info.name = name;
  info.retired += retired_delta;
  info.last_active = now;
  info.connected = true;
}

void Coordinator::sample_progress(LeaseDispatcher::Clock::time_point now) {
  // Called from the accept loop (~100 ms cadence) under mu_: keep one
  // sample per second, a trailing window of 16.
  if (!rate_samples_.empty() && ms_between(rate_samples_.back().first, now) < 1000)
    return;
  rate_samples_.emplace_back(now, dispatcher_.retired());
  while (rate_samples_.size() > 16) rate_samples_.pop_front();
}

StatsSnapshot Coordinator::snapshot_stats_locked(
    LeaseDispatcher::Clock::time_point now) {
  StatsSnapshot s;
  s.total_ids = done_at_open_ + dispatcher_.id_count();
  s.retired_ids = done_at_open_ + dispatcher_.retired();
  s.done_at_open = done_at_open_;
  s.pending_units = static_cast<std::uint32_t>(dispatcher_.pending_units());
  s.leased_units = static_cast<std::uint32_t>(dispatcher_.leased_units());
  s.elapsed_ms = ms_between(serve_start_, now);
  s.draining = drain_.load(std::memory_order_relaxed) ? 1 : 0;
  if (rate_samples_.size() >= 2) {
    const auto& [t0, r0] = rate_samples_.front();
    const auto& [t1, r1] = rate_samples_.back();
    const std::uint64_t dt_ms = ms_between(t0, t1);
    if (dt_ms > 0 && r1 > r0) {
      s.rate_milli = (r1 - r0) * 1000000ull / dt_ms;  // faults/s x1000
      const std::uint64_t remaining = dispatcher_.id_count() - dispatcher_.retired();
      s.eta_ms = remaining * 1000000ull / s.rate_milli;
    }
  }
  s.workers.reserve(sessions_.size());
  for (const auto& [session, info] : sessions_) {
    WorkerRow row;
    row.session = session;
    row.name = info.name;
    row.retired = info.retired;
    row.leased_units =
        static_cast<std::uint32_t>(dispatcher_.leased_units_for(session));
    row.idle_ms = ms_between(info.last_active, now);
    row.connected = info.connected ? 1 : 0;
    s.workers.push_back(std::move(row));
  }
  return s;
}

StatsSnapshot Coordinator::snapshot_stats() {
  const auto now = LeaseDispatcher::Clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_stats_locked(now);
}

bool Coordinator::stop_serving() {
  std::lock_guard<std::mutex> lock(mu_);
  if (dispatcher_.all_done()) return true;
  return drain_.load(std::memory_order_relaxed) && !dispatcher_.any_leased();
}

Coordinator::Stats Coordinator::serve() {
  serve_start_ = LeaseDispatcher::Clock::now();
  auto last_status = serve_start_;
  std::uint64_t next_session = 1;
  const auto spawn = [this, &next_session](Socket client) {
    const std::uint64_t session = next_session++;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.sessions;
    }
    if (cfg_.verbose)
      std::fprintf(stderr, "[gpfd] session %llu connected\n",
                   static_cast<unsigned long long>(session));
    active_conns_.fetch_add(1, std::memory_order_relaxed);
    threads_.emplace_back(
        [this, session](Socket s) { handle_connection(std::move(s), session); },
        std::move(client));
  };

  static obs::Counter& expiries = obs::counter("net.lease_expiries");
  while (!stop_serving()) {
    const auto now = LeaseDispatcher::Clock::now();
    {
      std::lock_guard<std::mutex> lock(mu_);
      const std::size_t expired = dispatcher_.expire_stale(now);
      stats_.expired_leases += expired;
      expiries.add(expired);
      sample_progress(now);
    }
    if (cfg_.status_interval_ms > 0 &&
        ms_between(last_status, now) >= cfg_.status_interval_ms) {
      last_status = now;
      StatsSnapshot s;
      {
        std::lock_guard<std::mutex> lock(mu_);
        s = snapshot_stats_locked(now);
      }
      std::fprintf(stderr,
                   "[gpfd] progress %llu/%llu (%.1f%%) rate %.1f/s eta %llus "
                   "workers %zu units %u pending / %u leased%s\n",
                   static_cast<unsigned long long>(s.retired_ids),
                   static_cast<unsigned long long>(s.total_ids),
                   s.total_ids ? 100.0 * static_cast<double>(s.retired_ids) /
                                     static_cast<double>(s.total_ids)
                               : 100.0,
                   static_cast<double>(s.rate_milli) / 1000.0,
                   static_cast<unsigned long long>(s.eta_ms / 1000),
                   s.workers.size(), s.pending_units, s.leased_units,
                   s.draining ? " [draining]" : "");
    }
    Socket client = accept_client(listener_, /*timeout_ms=*/100);
    if (client.valid()) spawn(std::move(client));
  }
  // Linger briefly so connected workers' final LeaseRequests get a
  // NoWork{drained} reply and they exit cleanly, instead of burning their
  // reconnect budget against a coordinator that just finished.
  const auto grace_deadline =
      LeaseDispatcher::Clock::now() + std::chrono::milliseconds(2000);
  while (active_conns_.load(std::memory_order_relaxed) > 0 &&
         LeaseDispatcher::Clock::now() < grace_deadline) {
    Socket client = accept_client(listener_, /*timeout_ms=*/50);
    if (client.valid()) spawn(std::move(client));
  }
  // Stop the connection threads: they poll stopping_ on recv timeouts, and
  // workers exit on their own after a NoWork{drained} reply.
  stopping_.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads_) t.join();
  threads_.clear();
  listener_.close();
  ckpt_.sync();  // everything acknowledged so far becomes durable

  std::lock_guard<std::mutex> lock(mu_);
  stats_.drained = !dispatcher_.all_done();
  return stats_;
}

void Coordinator::handle_connection(Socket sock, std::uint64_t session) {
  const auto lease_len = std::chrono::milliseconds(cfg_.lease_ms);
  // The worker's self-reported name, kept connection-local until the peer
  // acts like a worker (leases/results/heartbeats): pure observers (`gpfctl
  // top` sends only Hello + StatsRequest) never appear in the worker table.
  std::string peer_name;
  static obs::Counter& grants = obs::counter("net.lease_grants");
  static obs::Counter& heartbeats = obs::counter("net.heartbeats");
  static obs::Counter& stats_reqs = obs::counter("net.stats_requests");
  try {
    set_recv_timeout(sock, 250);
    Frame f;
    while (true) {
      const RecvStatus st = recv_frame(sock, f);
      if (st == RecvStatus::Eof) break;
      if (st == RecvStatus::Timeout) {
        if (stopping_.load(std::memory_order_relaxed)) break;
        continue;
      }
      const auto now = LeaseDispatcher::Clock::now();
      const bool drain = drain_.load(std::memory_order_relaxed);

      switch (static_cast<MsgType>(f.type)) {
        case MsgType::Hello: {
          const Hello hello = decode_hello(f);
          if (hello.version != kProtocolVersion)
            throw std::runtime_error(
                "protocol version mismatch: worker speaks v" +
                std::to_string(hello.version));
          peer_name = hello.worker_name;
          HelloAck ack;
          ack.meta = ckpt_.meta();
          ack.lease_ms = cfg_.lease_ms;
          send_frame(sock, encode(ack));
          break;
        }
        case MsgType::LeaseRequest: {
          std::optional<LeaseDispatcher::Grant> grant;
          bool exhausted = false;
          {
            std::lock_guard<std::mutex> lock(mu_);
            stats_.expired_leases += dispatcher_.expire_stale(now);
            if (!drain) grant = dispatcher_.lease(session, now, lease_len);
            exhausted = dispatcher_.all_done();
            touch_session(session, peer_name, now, 0);
          }
          if (grant) grants.add(1);
          if (grant) {
            LeaseGrant g;
            g.unit_id = grant->unit_id;
            g.ids = std::move(grant->ids);
            if (cfg_.verbose)
              std::fprintf(stderr, "[gpfd] unit %llu (%zu ids) -> session %llu\n",
                           static_cast<unsigned long long>(g.unit_id),
                           g.ids.size(),
                           static_cast<unsigned long long>(session));
            send_frame(sock, encode(g));
          } else {
            NoWork nw;
            nw.drained = drain || exhausted;
            send_frame(sock, encode(nw));
          }
          break;
        }
        case MsgType::Result: {
          const ResultMsg msg = decode_result(f);
          Ack ack;
          ack.drain = drain;
          std::vector<const store::Record*> fresh;
          fresh.reserve(msg.records.size());
          {
            std::lock_guard<std::mutex> lock(mu_);
            ack.lost_lease =
                !dispatcher_.renew(msg.unit_id, session, now, lease_len);
            // Results are kept even from a lost lease: the work is done and
            // id-dedup makes acceptance harmless (and saves the re-run when
            // the reassigned copy hasn't started that id yet).
            for (const store::Record& rec : msg.records) {
              if (dispatcher_.mark_retired(rec.id)) {
                fresh.push_back(&rec);
                ++stats_.appended;
              } else {
                ++stats_.duplicates;
              }
            }
            touch_session(session, peer_name, now, fresh.size());
          }
          // Store appends happen outside the dispatcher lock (ckpt has its
          // own); dedup above guarantees each id is appended exactly once.
          for (const store::Record* rec : fresh)
            ckpt_.record(rec->id, rec->payload);
          send_frame(sock, encode(ack));
          break;
        }
        case MsgType::Heartbeat: {
          const Heartbeat hb = decode_heartbeat(f);
          Ack ack;
          ack.drain = drain;
          {
            std::lock_guard<std::mutex> lock(mu_);
            ack.lost_lease =
                !dispatcher_.renew(hb.unit_id, session, now, lease_len);
            touch_session(session, peer_name, now, 0);
          }
          heartbeats.add(1);
          send_frame(sock, encode(ack));
          break;
        }
        case MsgType::UnitDone: {
          const UnitDone done = decode_unit_done(f);
          Ack ack;
          ack.drain = drain;
          {
            std::lock_guard<std::mutex> lock(mu_);
            ack.lost_lease =
                !dispatcher_.renew(done.unit_id, session, now, lease_len);
            touch_session(session, peer_name, now, 0);
          }
          // Lease-retire boundary: the unit's records become durable before
          // the worker is told its work is accepted (see GPF_FSYNC).
          ckpt_.sync();
          if (cfg_.verbose)
            std::fprintf(stderr, "[gpfd] unit %llu done (session %llu)\n",
                         static_cast<unsigned long long>(done.unit_id),
                         static_cast<unsigned long long>(session));
          send_frame(sock, encode(ack));
          break;
        }
        case MsgType::StatsRequest: {
          stats_reqs.add(1);
          StatsSnapshot s;
          {
            std::lock_guard<std::mutex> lock(mu_);
            s = snapshot_stats_locked(now);
          }
          send_frame(sock, encode(s));
          break;
        }
        default:
          throw std::runtime_error("unexpected message type " +
                                   std::to_string(f.type));
      }
    }
  } catch (const std::exception& e) {
    if (cfg_.verbose)
      std::fprintf(stderr, "[gpfd] session %llu error: %s\n",
                   static_cast<unsigned long long>(session), e.what());
  }
  // Connection gone (clean exit, SIGKILLed worker, or protocol error):
  // return its leases to the queue immediately instead of waiting for the
  // deadline.
  {
    std::lock_guard<std::mutex> lock(mu_);
    static obs::Counter& releases = obs::counter("net.lease_releases");
    releases.add(dispatcher_.leased_units_for(session));
    dispatcher_.release_session(session);
    if (auto it = sessions_.find(session); it != sessions_.end())
      it->second.connected = false;
  }
  active_conns_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace gpf::net
