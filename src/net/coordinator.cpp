#include "net/coordinator.hpp"

#include <chrono>
#include <cstdio>
#include <set>
#include <stdexcept>

#include "net/protocol.hpp"

namespace gpf::net {

namespace {

std::set<std::uint64_t> done_ids(const store::CampaignCheckpoint& ckpt) {
  std::set<std::uint64_t> ids;
  for (const auto& [id, payload] : ckpt.done()) ids.insert(id);
  return ids;
}

}  // namespace

Coordinator::Coordinator(store::CampaignCheckpoint& ckpt,
                         const CoordinatorConfig& cfg)
    : ckpt_(ckpt),
      cfg_(cfg),
      listener_(listen_tcp(cfg.host, cfg.port)),
      dispatcher_(ckpt.meta(), cfg.unit_size, done_ids(ckpt)) {
  port_ = local_port(listener_);
}

bool Coordinator::stop_serving() {
  std::lock_guard<std::mutex> lock(mu_);
  if (dispatcher_.all_done()) return true;
  return drain_.load(std::memory_order_relaxed) && !dispatcher_.any_leased();
}

Coordinator::Stats Coordinator::serve() {
  std::uint64_t next_session = 1;
  const auto spawn = [this, &next_session](Socket client) {
    const std::uint64_t session = next_session++;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.sessions;
    }
    if (cfg_.verbose)
      std::fprintf(stderr, "[gpfd] session %llu connected\n",
                   static_cast<unsigned long long>(session));
    active_conns_.fetch_add(1, std::memory_order_relaxed);
    threads_.emplace_back(
        [this, session](Socket s) { handle_connection(std::move(s), session); },
        std::move(client));
  };

  while (!stop_serving()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.expired_leases +=
          dispatcher_.expire_stale(LeaseDispatcher::Clock::now());
    }
    Socket client = accept_client(listener_, /*timeout_ms=*/100);
    if (client.valid()) spawn(std::move(client));
  }
  // Linger briefly so connected workers' final LeaseRequests get a
  // NoWork{drained} reply and they exit cleanly, instead of burning their
  // reconnect budget against a coordinator that just finished.
  const auto grace_deadline =
      LeaseDispatcher::Clock::now() + std::chrono::milliseconds(2000);
  while (active_conns_.load(std::memory_order_relaxed) > 0 &&
         LeaseDispatcher::Clock::now() < grace_deadline) {
    Socket client = accept_client(listener_, /*timeout_ms=*/50);
    if (client.valid()) spawn(std::move(client));
  }
  // Stop the connection threads: they poll stopping_ on recv timeouts, and
  // workers exit on their own after a NoWork{drained} reply.
  stopping_.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads_) t.join();
  threads_.clear();
  listener_.close();

  std::lock_guard<std::mutex> lock(mu_);
  stats_.drained = !dispatcher_.all_done();
  return stats_;
}

void Coordinator::handle_connection(Socket sock, std::uint64_t session) {
  const auto lease_len = std::chrono::milliseconds(cfg_.lease_ms);
  try {
    set_recv_timeout(sock, 250);
    Frame f;
    while (true) {
      const RecvStatus st = recv_frame(sock, f);
      if (st == RecvStatus::Eof) break;
      if (st == RecvStatus::Timeout) {
        if (stopping_.load(std::memory_order_relaxed)) break;
        continue;
      }
      const auto now = LeaseDispatcher::Clock::now();
      const bool drain = drain_.load(std::memory_order_relaxed);

      switch (static_cast<MsgType>(f.type)) {
        case MsgType::Hello: {
          const Hello hello = decode_hello(f);
          if (hello.version != kProtocolVersion)
            throw std::runtime_error(
                "protocol version mismatch: worker speaks v" +
                std::to_string(hello.version));
          HelloAck ack;
          ack.meta = ckpt_.meta();
          ack.lease_ms = cfg_.lease_ms;
          send_frame(sock, encode(ack));
          break;
        }
        case MsgType::LeaseRequest: {
          std::optional<LeaseDispatcher::Grant> grant;
          bool exhausted = false;
          {
            std::lock_guard<std::mutex> lock(mu_);
            stats_.expired_leases += dispatcher_.expire_stale(now);
            if (!drain) grant = dispatcher_.lease(session, now, lease_len);
            exhausted = dispatcher_.all_done();
          }
          if (grant) {
            LeaseGrant g;
            g.unit_id = grant->unit_id;
            g.ids = std::move(grant->ids);
            if (cfg_.verbose)
              std::fprintf(stderr, "[gpfd] unit %llu (%zu ids) -> session %llu\n",
                           static_cast<unsigned long long>(g.unit_id),
                           g.ids.size(),
                           static_cast<unsigned long long>(session));
            send_frame(sock, encode(g));
          } else {
            NoWork nw;
            nw.drained = drain || exhausted;
            send_frame(sock, encode(nw));
          }
          break;
        }
        case MsgType::Result: {
          const ResultMsg msg = decode_result(f);
          Ack ack;
          ack.drain = drain;
          std::vector<const store::Record*> fresh;
          fresh.reserve(msg.records.size());
          {
            std::lock_guard<std::mutex> lock(mu_);
            ack.lost_lease =
                !dispatcher_.renew(msg.unit_id, session, now, lease_len);
            // Results are kept even from a lost lease: the work is done and
            // id-dedup makes acceptance harmless (and saves the re-run when
            // the reassigned copy hasn't started that id yet).
            for (const store::Record& rec : msg.records) {
              if (dispatcher_.mark_retired(rec.id)) {
                fresh.push_back(&rec);
                ++stats_.appended;
              } else {
                ++stats_.duplicates;
              }
            }
          }
          // Store appends happen outside the dispatcher lock (ckpt has its
          // own); dedup above guarantees each id is appended exactly once.
          for (const store::Record* rec : fresh)
            ckpt_.record(rec->id, rec->payload);
          send_frame(sock, encode(ack));
          break;
        }
        case MsgType::Heartbeat: {
          const Heartbeat hb = decode_heartbeat(f);
          Ack ack;
          ack.drain = drain;
          {
            std::lock_guard<std::mutex> lock(mu_);
            ack.lost_lease =
                !dispatcher_.renew(hb.unit_id, session, now, lease_len);
          }
          send_frame(sock, encode(ack));
          break;
        }
        case MsgType::UnitDone: {
          const UnitDone done = decode_unit_done(f);
          Ack ack;
          ack.drain = drain;
          {
            std::lock_guard<std::mutex> lock(mu_);
            ack.lost_lease =
                !dispatcher_.renew(done.unit_id, session, now, lease_len);
          }
          if (cfg_.verbose)
            std::fprintf(stderr, "[gpfd] unit %llu done (session %llu)\n",
                         static_cast<unsigned long long>(done.unit_id),
                         static_cast<unsigned long long>(session));
          send_frame(sock, encode(ack));
          break;
        }
        default:
          throw std::runtime_error("unexpected message type " +
                                   std::to_string(f.type));
      }
    }
  } catch (const std::exception& e) {
    if (cfg_.verbose)
      std::fprintf(stderr, "[gpfd] session %llu error: %s\n",
                   static_cast<unsigned long long>(session), e.what());
  }
  // Connection gone (clean exit, SIGKILLed worker, or protocol error):
  // return its leases to the queue immediately instead of waiting for the
  // deadline.
  {
    std::lock_guard<std::mutex> lock(mu_);
    dispatcher_.release_session(session);
  }
  active_conns_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace gpf::net
