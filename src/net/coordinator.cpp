#include "net/coordinator.hpp"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace gpf::net {

namespace {

std::set<std::uint64_t> done_ids(const store::CampaignCheckpoint& ckpt) {
  std::set<std::uint64_t> ids;
  for (const auto& [id, payload] : ckpt.done()) ids.insert(id);
  return ids;
}

std::uint64_t ms_between(LeaseDispatcher::Clock::time_point a,
                         LeaseDispatcher::Clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(b - a).count());
}

/// "…/perfi-mxm-IOC.gpfs" -> "perfi-mxm-IOC": the store filename stem is
/// the canonical campaign name (campaign_flags derives paths the same way,
/// so every submitter and resumer agrees on identity).
std::string campaign_name_from_path(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::size_t start = slash == std::string::npos ? 0 : slash + 1;
  const std::size_t dot = path.find_last_of('.');
  const std::size_t end = (dot == std::string::npos || dot <= start)
                              ? path.size()
                              : dot;
  return path.substr(start, end - start);
}

[[noreturn]] void sys_error(const std::string& what) {
  throw std::runtime_error("gpfd: " + what + ": " + std::strerror(errno));
}

}  // namespace

void RateWindow::sample(Clock::time_point now, std::uint64_t retired) {
  if (!primed) {
    primed = true;
    last_progress = now;
    last_retired = retired;
  }
  if (retired > last_retired) {
    // Progress after an idle gap: the old window spans the stall, and a
    // rate averaged across it would understate throughput while an ETA
    // from it would overstate (the "resumed fleet" bug). Start fresh.
    if (!samples.empty() && ms_between(last_progress, now) >= idle_reset_ms)
      samples.clear();
    last_progress = now;
    last_retired = retired;
  }
  if (!samples.empty() && ms_between(samples.back().first, now) < 1000) return;
  samples.emplace_back(now, retired);
  while (samples.size() > 16) samples.pop_front();
}

std::uint64_t RateWindow::rate_milli() const {
  if (samples.size() < 2) return 0;
  const auto& [t0, r0] = samples.front();
  const auto& [t1, r1] = samples.back();
  const std::uint64_t dt_ms = ms_between(t0, t1);
  if (dt_ms == 0 || r1 <= r0) return 0;
  return (r1 - r0) * 1000000ull / dt_ms;
}

std::uint64_t RateWindow::eta_ms(std::uint64_t remaining) const {
  const std::uint64_t rate = rate_milli();
  if (rate == 0 || remaining == 0) return 0;  // unknown / done: render "--"
  return remaining * 1000000ull / rate;
}

Coordinator::Coordinator(const CoordinatorConfig& cfg)
    : cfg_(cfg), listener_(listen_tcp(cfg.host, cfg.port)) {
  if (cfg_.unit_size == 0)
    throw std::runtime_error("gpfd: unit_size must be > 0");
  port_ = local_port(listener_);
  set_nonblocking(listener_, true);
  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) sys_error("epoll_create1");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listener_.fd();
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_.fd(), &ev) != 0)
    sys_error("epoll_ctl add listener");
}

Coordinator::Coordinator(store::CampaignCheckpoint& ckpt,
                         const CoordinatorConfig& cfg)
    : Coordinator(cfg) {
  add_campaign(ckpt);
}

Coordinator::~Coordinator() {
  conns_.clear();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

std::uint64_t Coordinator::register_campaign_locked(
    store::CampaignCheckpoint& ckpt,
    std::unique_ptr<store::CampaignCheckpoint> owned, std::uint32_t priority) {
  Campaign c;
  c.cid = next_cid_++;
  c.name = campaign_name_from_path(ckpt.path());
  c.priority = std::max<std::uint32_t>(priority, 1);
  c.ckpt = &ckpt;
  c.owned = std::move(owned);
  c.done_at_open = ckpt.done().size();
  c.dispatcher = std::make_unique<LeaseDispatcher>(ckpt.meta(), cfg_.unit_size,
                                                   done_ids(ckpt));
  c.rate.idle_reset_ms = cfg_.idle_reset_ms;
  const std::uint64_t cid = c.cid;
  if (cfg_.verbose)
    std::fprintf(stderr, "[gpfd] campaign '%s' registered (cid %llu, %llu ids, prio %u)\n",
                 c.name.c_str(), static_cast<unsigned long long>(cid),
                 static_cast<unsigned long long>(c.dispatcher->id_count()),
                 c.priority);
  campaigns_.emplace(cid, std::move(c));
  return cid;
}

void Coordinator::add_campaign(store::CampaignCheckpoint& ckpt,
                               std::uint32_t priority) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string name = campaign_name_from_path(ckpt.path());
  if (find_campaign_locked(name))
    throw std::runtime_error("gpfd: duplicate campaign '" + name + "'");
  if (campaigns_.size() >= cfg_.max_campaigns)
    throw std::runtime_error("gpfd: campaign registry full");
  register_campaign_locked(ckpt, nullptr, priority);
}

Coordinator::Campaign* Coordinator::find_campaign_locked(
    const std::string& name) {
  for (auto& [cid, c] : campaigns_)
    if (c.name == name) return &c;
  return nullptr;
}

CampaignRow Coordinator::campaign_row_locked(const Campaign& c) const {
  CampaignRow row;
  row.name = c.name;
  row.kind = static_cast<std::uint8_t>(c.ckpt->meta().kind);
  row.state = c.removing ? 1 : (c.dispatcher->all_done() ? 2 : 0);
  row.priority = c.priority;
  row.total_ids = c.done_at_open + c.dispatcher->id_count();
  row.retired_ids = c.done_at_open + c.dispatcher->retired();
  row.pending_units = static_cast<std::uint32_t>(c.dispatcher->pending_units());
  row.leased_units = static_cast<std::uint32_t>(c.dispatcher->leased_units());
  return row;
}

void Coordinator::touch_session(std::uint64_t session, const std::string& name,
                                LeaseDispatcher::Clock::time_point now,
                                std::uint64_t retired_delta) {
  SessionInfo& info = sessions_[session];
  if (!name.empty()) info.name = name;
  info.retired += retired_delta;
  info.last_active = now;
  info.connected = true;
}

StatsSnapshot Coordinator::snapshot_stats_locked(
    LeaseDispatcher::Clock::time_point now, const std::string& campaign) {
  StatsSnapshot s;
  const Campaign* scoped =
      campaign.empty() ? nullptr : find_campaign_locked(campaign);
  // A scoped request for an unknown name reports an empty scope rather than
  // silently falling back to the aggregate.
  const bool scope_miss = !campaign.empty() && scoped == nullptr;
  std::uint64_t remaining = 0;
  for (const auto& [cid, c] : campaigns_) {
    if (scope_miss || (scoped && &c != scoped)) continue;
    s.total_ids += c.done_at_open + c.dispatcher->id_count();
    s.retired_ids += c.done_at_open + c.dispatcher->retired();
    s.done_at_open += c.done_at_open;
    s.pending_units += static_cast<std::uint32_t>(c.dispatcher->pending_units());
    s.leased_units += static_cast<std::uint32_t>(c.dispatcher->leased_units());
    remaining += c.dispatcher->id_count() - c.dispatcher->retired();
    if (!c.removing)
      s.desired_workers += static_cast<std::uint32_t>(
          c.dispatcher->pending_units() + c.dispatcher->leased_units());
  }
  s.elapsed_ms = ms_between(serve_start_, now);
  const RateWindow& window = scoped ? scoped->rate : fleet_rate_;
  s.rate_milli = window.rate_milli();
  s.eta_ms = window.eta_ms(remaining);
  s.draining = drain_.load(std::memory_order_relaxed) ? 1 : 0;
  if (s.draining) s.desired_workers = 0;
  s.evicted_workers = evicted_workers_;
  s.evicted_retired = evicted_retired_;
  s.campaigns.reserve(campaigns_.size());
  for (const auto& [cid, c] : campaigns_)
    s.campaigns.push_back(campaign_row_locked(c));
  s.workers.reserve(sessions_.size());
  for (const auto& [session, info] : sessions_) {
    WorkerRow row;
    row.session = session;
    row.name = info.name;
    row.retired = info.retired;
    for (const auto& [cid, c] : campaigns_)
      row.leased_units +=
          static_cast<std::uint32_t>(c.dispatcher->leased_units_for(session));
    row.idle_ms = ms_between(info.last_active, now);
    row.connected = info.connected ? 1 : 0;
    if (info.connected) ++s.connected_workers;
    s.workers.push_back(std::move(row));
  }
  return s;
}

StatsSnapshot Coordinator::snapshot_stats(const std::string& campaign) {
  const auto now = LeaseDispatcher::Clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_stats_locked(now, campaign);
}

std::vector<CampaignRow> Coordinator::list_campaigns() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CampaignRow> rows;
  rows.reserve(campaigns_.size());
  for (const auto& [cid, c] : campaigns_) rows.push_back(campaign_row_locked(c));
  return rows;
}

std::vector<std::string> Coordinator::store_paths() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> paths;
  paths.reserve(campaigns_.size());
  for (const auto& [cid, c] : campaigns_) paths.push_back(c.ckpt->path());
  return paths;
}

std::size_t Coordinator::session_rows() {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

bool Coordinator::stop_serving() {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t pending_appends = 0;
  bool any_leased = false;
  bool all_done = true;
  for (const auto& [cid, c] : campaigns_) {
    pending_appends += c.pending_appends;
    if (c.dispatcher->any_leased()) any_leased = true;
    if (!c.dispatcher->all_done()) all_done = false;
  }
  if (all_done && pending_appends == 0) return true;
  return drain_.load(std::memory_order_relaxed) && !any_leased &&
         pending_appends == 0;
}

void Coordinator::tick(LeaseDispatcher::Clock::time_point now) {
  static obs::Counter& expiries = obs::counter("net.lease_expiries");
  static obs::Counter& evictions = obs::counter("net.session_evictions");
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t agg_retired = 0;
  for (auto it = campaigns_.begin(); it != campaigns_.end();) {
    Campaign& c = it->second;
    const std::size_t expired = c.dispatcher->expire_stale(now);
    stats_.expired_leases += expired;
    expiries.add(expired);
    c.rate.sample(now, c.done_at_open + c.dispatcher->retired());
    agg_retired += c.done_at_open + c.dispatcher->retired();
    // Drain-one-campaign finalization: once nothing references the store
    // (no leases to honor, no admitted records still queued), sync it and
    // unregister. The partial store stays on disk, resumable later.
    if (c.removing && !c.dispatcher->any_leased() && c.pending_appends == 0) {
      c.ckpt->sync();
      drr_.forget(it->first);
      if (cfg_.verbose)
        std::fprintf(stderr, "[gpfd] campaign '%s' removed (%llu/%llu retired)\n",
                     c.name.c_str(),
                     static_cast<unsigned long long>(c.done_at_open +
                                                     c.dispatcher->retired()),
                     static_cast<unsigned long long>(c.done_at_open +
                                                     c.dispatcher->id_count()));
      it = campaigns_.erase(it);
    } else {
      ++it;
    }
  }
  fleet_rate_.sample(now, agg_retired);
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    const SessionInfo& info = it->second;
    if (!info.connected &&
        ms_between(info.last_active, now) >= cfg_.session_ttl_ms) {
      ++evicted_workers_;
      evicted_retired_ += info.retired;
      ++stats_.evicted_sessions;
      evictions.add(1);
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
  if (cfg_.status_interval_ms > 0 &&
      ms_between(last_status_, now) >= cfg_.status_interval_ms) {
    last_status_ = now;
    const StatsSnapshot s = snapshot_stats_locked(now, "");
    char eta[32];
    if (s.eta_ms == 0)
      std::snprintf(eta, sizeof(eta), "--");
    else
      std::snprintf(eta, sizeof(eta), "%llus",
                    static_cast<unsigned long long>(s.eta_ms / 1000));
    std::fprintf(stderr,
                 "[gpfd] progress %llu/%llu (%.1f%%) rate %.1f/s eta %s "
                 "campaigns %zu workers %u units %u pending / %u leased%s\n",
                 static_cast<unsigned long long>(s.retired_ids),
                 static_cast<unsigned long long>(s.total_ids),
                 s.total_ids ? 100.0 * static_cast<double>(s.retired_ids) /
                                   static_cast<double>(s.total_ids)
                             : 100.0,
                 static_cast<double>(s.rate_milli) / 1000.0, eta,
                 s.campaigns.size(), s.connected_workers, s.pending_units,
                 s.leased_units, s.draining ? " [draining]" : "");
  }
}

void Coordinator::accept_ready() {
  while (true) {
    const int fd = ::accept(listener_.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      sys_error("accept");
    }
    auto conn = std::make_unique<Conn>();
    conn->sock = Socket(fd);
    conn->session = next_session_++;
    set_nonblocking(conn->sock, true);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0)
      sys_error("epoll_ctl add conn");
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.sessions;
    }
    if (cfg_.verbose)
      std::fprintf(stderr, "[gpfd] session %llu connected\n",
                   static_cast<unsigned long long>(conn->session));
    conns_.emplace(fd, std::move(conn));
    conn_count_.store(conns_.size(), std::memory_order_relaxed);
  }
}

void Coordinator::close_conn(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = *it->second;
  static obs::Counter& releases = obs::counter("net.lease_releases");
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Admitted records are already retired in their dispatchers: they MUST
    // reach the store (only the reply frames die with the socket), or the
    // final export would silently miss acknowledged-as-done work.
    drain_appends_locked(conn, /*queue_replies=*/false);
    for (auto& [cid, c] : campaigns_) {
      releases.add(c.dispatcher->leased_units_for(conn.session));
      c.dispatcher->release_session(conn.session);
    }
    if (auto s = sessions_.find(conn.session); s != sessions_.end())
      s->second.connected = false;
  }
  if (cfg_.verbose)
    std::fprintf(stderr, "[gpfd] session %llu disconnected\n",
                 static_cast<unsigned long long>(conn.session));
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  conns_.erase(it);
  conn_count_.store(conns_.size(), std::memory_order_relaxed);
}

void Coordinator::queue_frame(Conn& conn, const Frame& f) {
  const std::vector<std::uint8_t> wire = frame_bytes(f);
  conn.wbuf.insert(conn.wbuf.end(), wire.begin(), wire.end());
  static obs::Counter& frames = obs::counter("net.frames_out");
  static obs::Counter& bytes = obs::counter("net.bytes_out");
  frames.add(1);
  bytes.add(wire.size());
}

void Coordinator::flush_writes(Conn& conn) {
  while (conn.woff < conn.wbuf.size()) {
    const ssize_t n = ::send(conn.sock.fd(), conn.wbuf.data() + conn.woff,
                             conn.wbuf.size() - conn.woff, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      conn.dead = true;
      return;
    }
    conn.woff += static_cast<std::size_t>(n);
  }
  if (conn.woff == conn.wbuf.size()) {
    conn.wbuf.clear();
    conn.woff = 0;
  }
  update_write_interest(conn);
}

void Coordinator::update_write_interest(Conn& conn) {
  const bool want = !conn.wbuf.empty();
  if (want == conn.want_write) return;
  conn.want_write = want;
  epoll_event ev{};
  ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
  ev.data.fd = conn.sock.fd();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.sock.fd(), &ev);
}

void Coordinator::drain_appends_locked(Conn& conn, bool queue_replies) {
  while (!conn.appends.empty()) {
    PendingAppend pa = std::move(conn.appends.front());
    conn.appends.pop_front();
    if (const auto it = campaigns_.find(pa.cid); it != campaigns_.end()) {
      for (const store::Record& rec : pa.fresh)
        it->second.ckpt->record(rec.id, rec.payload);
      it->second.pending_appends -= pa.fresh.size();
    }
    conn.outstanding_records -= pa.fresh.size();
    if (queue_replies) queue_frame(conn, pa.reply);
  }
}

void Coordinator::process_appends(Conn& conn) {
  if (conn.appends.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  drain_appends_locked(conn, /*queue_replies=*/true);
}

void Coordinator::handle_readable(Conn& conn) {
  std::uint8_t tmp[65536];
  while (true) {
    const ssize_t n = ::recv(conn.sock.fd(), tmp, sizeof(tmp), 0);
    if (n > 0) {
      conn.rbuf.insert(conn.rbuf.end(), tmp, tmp + n);
      continue;
    }
    if (n == 0) {
      conn.dead = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    conn.dead = true;
    break;
  }
  try {
    Frame f;
    while (extract_frame(conn.rbuf, conn.roff, f)) handle_message(conn, f);
  } catch (const std::exception& e) {
    if (cfg_.verbose)
      std::fprintf(stderr, "[gpfd] session %llu error: %s\n",
                   static_cast<unsigned long long>(conn.session), e.what());
    conn.dead = true;
  }
  if (conn.roff == conn.rbuf.size()) {
    conn.rbuf.clear();
    conn.roff = 0;
  } else if (conn.roff > 65536) {
    conn.rbuf.erase(conn.rbuf.begin(),
                    conn.rbuf.begin() + static_cast<std::ptrdiff_t>(conn.roff));
    conn.roff = 0;
  }
}

Frame Coordinator::on_lease_request(Conn& conn,
                                    LeaseDispatcher::Clock::time_point now) {
  static obs::Counter& grants = obs::counter("net.lease_grants");
  const auto lease_len = std::chrono::milliseconds(cfg_.lease_ms);
  const bool drain = drain_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  conn.is_worker = true;
  touch_session(conn.session, conn.peer_name, now, 0);
  std::vector<std::pair<std::uint64_t, std::uint32_t>> eligible;
  if (!drain) {
    for (const auto& [cid, c] : campaigns_) {
      if (c.removing || c.dispatcher->pending_units() == 0) continue;
      if (!conn.campaign_filter.empty() && c.name != conn.campaign_filter)
        continue;
      eligible.emplace_back(cid, c.priority);
    }
  }
  if (!eligible.empty()) {
    const std::uint64_t cid = drr_.pick(eligible);
    Campaign& c = campaigns_.at(cid);
    const auto grant = c.dispatcher->lease(conn.session, now, lease_len);
    grants.add(1);
    LeaseGrant g;
    g.campaign_id = cid;
    g.campaign = c.name;
    g.meta = c.ckpt->meta();
    g.unit_id = grant->unit_id;
    g.ids = std::move(grant->ids);
    if (cfg_.verbose)
      std::fprintf(stderr, "[gpfd] '%s' unit %llu (%zu ids) -> session %llu\n",
                   c.name.c_str(), static_cast<unsigned long long>(g.unit_id),
                   g.ids.size(), static_cast<unsigned long long>(conn.session));
    return encode(g);
  }
  NoWork nw;
  if (drain) {
    nw.drained = true;
  } else if (!conn.campaign_filter.empty()) {
    const Campaign* c = find_campaign_locked(conn.campaign_filter);
    nw.drained = !c || c->removing || c->dispatcher->all_done();
  } else {
    nw.drained = true;  // vacuous on an empty registry
    for (const auto& [cid, c] : campaigns_) {
      if (!c.removing && !c.dispatcher->all_done()) {
        nw.drained = false;  // leased units may yet expire back to pending
        break;
      }
    }
  }
  return encode(nw);
}

Frame Coordinator::on_submit(const SubmitCampaign& msg) {
  static obs::Counter& submits = obs::counter("net.campaign_submits");
  OpResult res;
  std::lock_guard<std::mutex> lock(mu_);
  if (msg.name.empty() || msg.name.find('/') != std::string::npos) {
    res.message = "invalid campaign name '" + msg.name + "'";
    return encode(res);
  }
  if (Campaign* existing = find_campaign_locked(msg.name)) {
    if (existing->ckpt->meta() == msg.meta && !existing->removing) {
      res.ok = true;  // idempotent resubmission
      res.message = "already registered";
    } else {
      res.message = "campaign '" + msg.name + "' already exists";
    }
    return encode(res);
  }
  if (cfg_.store_dir.empty()) {
    res.message = "coordinator has no store dir; submission disabled";
    return encode(res);
  }
  if (campaigns_.size() >= cfg_.max_campaigns) {
    res.message = "campaign registry full (" +
                  std::to_string(cfg_.max_campaigns) + ")";
    return encode(res);
  }
  try {
    const std::string path = cfg_.store_dir + "/" + msg.name + ".gpfs";
    store::create_parent_dirs(path);
    auto owned = std::make_unique<store::CampaignCheckpoint>(path, msg.meta);
    store::CampaignCheckpoint& ref = *owned;
    register_campaign_locked(ref, std::move(owned), msg.priority);
    ++stats_.campaigns_submitted;
    submits.add(1);
    res.ok = true;
    res.message = "registered";
  } catch (const std::exception& e) {
    res.message = e.what();
  }
  return encode(res);
}

Frame Coordinator::on_remove(const RemoveCampaign& msg) {
  static obs::Counter& removes = obs::counter("net.campaign_removes");
  OpResult res;
  std::lock_guard<std::mutex> lock(mu_);
  Campaign* c = find_campaign_locked(msg.name);
  if (!c) {
    res.message = "no such campaign '" + msg.name + "'";
    return encode(res);
  }
  if (!c->removing) {
    c->removing = true;
    ++stats_.campaigns_removed;
    removes.add(1);
  }
  res.ok = true;
  res.message = "removing";
  return encode(res);
}

void Coordinator::handle_message(Conn& conn, const Frame& f) {
  static obs::Counter& heartbeats = obs::counter("net.heartbeats");
  static obs::Counter& stats_reqs = obs::counter("net.stats_requests");
  static obs::Counter& busy = obs::counter("net.busy_rejections");
  const auto now = LeaseDispatcher::Clock::now();
  const auto lease_len = std::chrono::milliseconds(cfg_.lease_ms);
  const bool drain = drain_.load(std::memory_order_relaxed);

  switch (static_cast<MsgType>(f.type)) {
    case MsgType::Hello: {
      const Hello hello = decode_hello(f);
      if (hello.version != kProtocolVersion)
        throw std::runtime_error("protocol version mismatch: peer speaks v" +
                                 std::to_string(hello.version));
      conn.peer_name = hello.worker_name;
      conn.campaign_filter = hello.campaign;
      HelloAck ack;
      ack.lease_ms = cfg_.lease_ms;
      queue_frame(conn, encode(ack));
      break;
    }
    case MsgType::LeaseRequest: {
      (void)decode_lease_request(f);  // conn.campaign_filter is authoritative
      queue_frame(conn, on_lease_request(conn, now));
      break;
    }
    case MsgType::Result: {
      ResultMsg msg = decode_result(f);
      std::lock_guard<std::mutex> lock(mu_);
      conn.is_worker = true;
      const auto it = campaigns_.find(msg.campaign_id);
      // Admission control: refuse the whole message (worker resends it
      // verbatim) rather than queue unboundedly. One oversized Result on
      // an empty queue is always admitted, so progress can't wedge.
      if (it != campaigns_.end() && conn.outstanding_records != 0 &&
          conn.outstanding_records >= cfg_.max_outstanding_appends) {
        it->second.dispatcher->renew(msg.unit_id, conn.session, now, lease_len);
        ++stats_.busy_rejections;
        busy.add(1);
        Busy b;
        b.retry_after_ms = cfg_.busy_retry_ms;
        queue_frame(conn, encode(b));
        break;
      }
      Ack ack;
      ack.drain = drain;
      PendingAppend pa;
      pa.cid = msg.campaign_id;
      if (it == campaigns_.end()) {
        ack.lost_lease = true;  // campaign finished removal; abandon the unit
      } else {
        Campaign& c = it->second;
        ack.lost_lease =
            !c.dispatcher->renew(msg.unit_id, conn.session, now, lease_len);
        // Results are kept even from a lost lease: the work is done and
        // id-dedup makes acceptance harmless (and saves the re-run when
        // the reassigned copy hasn't started that id yet).
        for (store::Record& rec : msg.records) {
          if (c.dispatcher->mark_retired(rec.id)) {
            pa.fresh.push_back(std::move(rec));
            ++stats_.appended;
          } else {
            ++stats_.duplicates;
          }
        }
      }
      touch_session(conn.session, conn.peer_name, now, pa.fresh.size());
      if (pa.fresh.empty()) {
        // Nothing to append: the ack owes no durability, reply now.
        queue_frame(conn, encode(ack));
      } else {
        it->second.pending_appends += pa.fresh.size();
        conn.outstanding_records += pa.fresh.size();
        pa.reply = encode(ack);
        conn.appends.push_back(std::move(pa));
      }
      break;
    }
    case MsgType::Heartbeat: {
      const Heartbeat hb = decode_heartbeat(f);
      Ack ack;
      ack.drain = drain;
      {
        std::lock_guard<std::mutex> lock(mu_);
        conn.is_worker = true;
        const auto it = campaigns_.find(hb.campaign_id);
        ack.lost_lease =
            it == campaigns_.end() ||
            !it->second.dispatcher->renew(hb.unit_id, conn.session, now,
                                          lease_len);
        touch_session(conn.session, conn.peer_name, now, 0);
      }
      heartbeats.add(1);
      queue_frame(conn, encode(ack));
      break;
    }
    case MsgType::UnitDone: {
      const UnitDone done = decode_unit_done(f);
      Ack ack;
      ack.drain = drain;
      {
        std::lock_guard<std::mutex> lock(mu_);
        conn.is_worker = true;
        // Flush this connection's admitted records first so the unit's
        // last Result batch is in the store before the sync below.
        drain_appends_locked(conn, /*queue_replies=*/true);
        const auto it = campaigns_.find(done.campaign_id);
        ack.lost_lease =
            it == campaigns_.end() ||
            !it->second.dispatcher->renew(done.unit_id, conn.session, now,
                                          lease_len);
        touch_session(conn.session, conn.peer_name, now, 0);
        // Lease-retire boundary: the unit's records become durable before
        // the worker is told its work is accepted (see GPF_FSYNC).
        if (it != campaigns_.end()) it->second.ckpt->sync();
        if (cfg_.verbose)
          std::fprintf(stderr, "[gpfd] unit %llu done (session %llu)\n",
                       static_cast<unsigned long long>(done.unit_id),
                       static_cast<unsigned long long>(conn.session));
      }
      queue_frame(conn, encode(ack));
      break;
    }
    case MsgType::StatsRequest: {
      const std::string campaign = decode_stats_request(f);
      stats_reqs.add(1);
      StatsSnapshot s;
      {
        std::lock_guard<std::mutex> lock(mu_);
        s = snapshot_stats_locked(now, campaign);
      }
      queue_frame(conn, encode(s));
      break;
    }
    case MsgType::SubmitCampaign:
      queue_frame(conn, on_submit(decode_submit_campaign(f)));
      break;
    case MsgType::RemoveCampaign:
      queue_frame(conn, on_remove(decode_remove_campaign(f)));
      break;
    case MsgType::ListCampaigns: {
      CampaignList list;
      {
        std::lock_guard<std::mutex> lock(mu_);
        list.campaigns.reserve(campaigns_.size());
        for (const auto& [cid, c] : campaigns_)
          list.campaigns.push_back(campaign_row_locked(c));
      }
      queue_frame(conn, encode(list));
      break;
    }
    default:
      throw std::runtime_error("unexpected message type " +
                               std::to_string(f.type));
  }
}

Coordinator::Stats Coordinator::serve() {
  serve_start_ = LeaseDispatcher::Clock::now();
  last_status_ = serve_start_;

  const auto pump = [this](int timeout_ms) {
    epoll_event evs[64];
    const int n = ::epoll_wait(epoll_fd_, evs, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return;
      sys_error("epoll_wait");
    }
    for (int i = 0; i < n; ++i) {
      const int fd = evs[i].data.fd;
      if (fd == listener_.fd()) {
        accept_ready();
        continue;
      }
      const auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      Conn& conn = *it->second;
      if (evs[i].events & (EPOLLHUP | EPOLLERR)) conn.dead = true;
      if (!conn.dead && (evs[i].events & EPOLLIN)) handle_readable(conn);
      if (!conn.dead && (evs[i].events & EPOLLOUT)) flush_writes(conn);
    }
    // Write admitted records and flush owed replies, then reap dead
    // connections (their admitted records are written by close_conn).
    std::vector<int> dead;
    for (auto& [fd, conn] : conns_) {
      if (!conn->dead) {
        process_appends(*conn);
        flush_writes(*conn);
      }
      if (conn->dead) dead.push_back(fd);
    }
    for (const int fd : dead) close_conn(fd);
  };

  while (!stop_serving()) {
    pump(/*timeout_ms=*/50);
    tick(LeaseDispatcher::Clock::now());
  }
  // Linger briefly so connected workers' final LeaseRequests get a
  // NoWork{drained} reply and they exit cleanly, instead of burning their
  // reconnect budget against a coordinator that just finished.
  const auto grace_deadline =
      LeaseDispatcher::Clock::now() + std::chrono::milliseconds(2000);
  while (!conns_.empty() && LeaseDispatcher::Clock::now() < grace_deadline)
    pump(/*timeout_ms=*/50);
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) fds.push_back(fd);
  for (const int fd : fds) close_conn(fd);
  listener_.close();

  std::lock_guard<std::mutex> lock(mu_);
  bool all_done = true;
  for (const auto& [cid, c] : campaigns_) {
    c.ckpt->sync();  // everything acknowledged so far becomes durable
    if (!c.dispatcher->all_done()) all_done = false;
  }
  stats_.drained = !all_done;
  return stats_;
}

}  // namespace gpf::net
