// Campaign coordinator: owns the authoritative ResultLog and hands out
// lease-based work units to a fleet of workers over TCP.
//
// One thread per connection, all sharing a single mutex-guarded
// LeaseDispatcher; results are appended to the store through the
// (thread-safe) CampaignCheckpoint as they arrive, after id-dedup in the
// dispatcher. The accept loop doubles as the lease reaper: stale leases are
// expired and requeued every pass, so a SIGKILLed or hung worker's unit is
// reassigned within one lease duration. serve() returns when every owned id
// has retired, or — after request_drain() — when no leases remain
// outstanding.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/dispatch.hpp"
#include "net/framing.hpp"
#include "net/protocol.hpp"
#include "store/checkpoint.hpp"

namespace gpf::net {

struct CoordinatorConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;     ///< 0 = kernel-assigned (read back via port())
  std::size_t unit_size = 64; ///< fault ids per work unit
  std::uint32_t lease_ms = 10000;
  bool verbose = false;       ///< per-event log lines on stderr
  std::uint32_t status_interval_ms = 5000;  ///< progress log period (0 = off)
};

class Coordinator {
 public:
  /// Binds the listener immediately (port() is valid before serve()).
  Coordinator(store::CampaignCheckpoint& ckpt, const CoordinatorConfig& cfg);

  std::uint16_t port() const { return port_; }

  /// Asks serve() to stop granting leases and return once outstanding
  /// leases finish or expire. Async-safe (atomic store): callable from a
  /// signal handler.
  void request_drain() { drain_.store(true, std::memory_order_relaxed); }

  struct Stats {
    std::uint64_t appended = 0;      ///< fresh records written this serve()
    std::uint64_t duplicates = 0;    ///< results dropped by id-dedup
    std::uint64_t sessions = 0;      ///< worker connections accepted
    std::uint64_t expired_leases = 0;
    bool drained = false;            ///< stopped via drain, not completion
  };

  /// Blocking accept/dispatch loop; returns when the campaign's owned ids
  /// are all retired or a requested drain has no leases left outstanding.
  Stats serve();

  /// Live progress view, as served to `gpfctl top` (thread-safe). The
  /// throughput is a trailing-window estimate over the last ~16 s of
  /// retirement samples taken by the accept loop.
  StatsSnapshot snapshot_stats();

 private:
  void handle_connection(Socket sock, std::uint64_t session);
  bool stop_serving();
  void touch_session(std::uint64_t session, const std::string& name,
                     LeaseDispatcher::Clock::time_point now,
                     std::uint64_t retired_delta);
  void sample_progress(LeaseDispatcher::Clock::time_point now);
  StatsSnapshot snapshot_stats_locked(LeaseDispatcher::Clock::time_point now);

  store::CampaignCheckpoint& ckpt_;
  CoordinatorConfig cfg_;
  Socket listener_;
  std::uint16_t port_ = 0;

  /// A worker connection as seen by stats: rows survive disconnects so the
  /// live table shows a SIGKILLed worker go stale instead of vanishing.
  struct SessionInfo {
    std::string name;
    std::uint64_t retired = 0;
    LeaseDispatcher::Clock::time_point last_active{};
    bool connected = false;
  };

  std::mutex mu_;  ///< guards dispatcher_, stats counters, and sessions_
  LeaseDispatcher dispatcher_;
  Stats stats_;
  std::map<std::uint64_t, SessionInfo> sessions_;
  std::uint64_t done_at_open_ = 0;
  LeaseDispatcher::Clock::time_point serve_start_{};
  /// (time, retired) samples for the trailing throughput window.
  std::deque<std::pair<LeaseDispatcher::Clock::time_point, std::uint64_t>>
      rate_samples_;

  std::atomic<bool> drain_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<int> active_conns_{0};
  std::vector<std::thread> threads_;
};

}  // namespace gpf::net
