// Campaign coordinator: a single-threaded epoll event loop serving many
// named fault-injection campaigns to a fleet of workers over TCP.
//
// One registry entry per campaign, each with its own CampaignCheckpoint
// (the authoritative store) and LeaseDispatcher (the authoritative map of
// who is working on which slice of that campaign's id space). Lease grants
// are shared across campaigns by deficit-round-robin fair share over the
// campaigns' integer priorities, so a priority-3 campaign retires ids ~3x
// as fast as a priority-1 one under the same fleet.
//
// All sockets are non-blocking and multiplexed by one epoll loop: each
// connection owns a read buffer (frame reassembly via extract_frame) and a
// write buffer (flushed opportunistically, EPOLLOUT only while non-empty).
// No per-connection threads exist anywhere — a `gpfctl top` poll costs two
// buffers, not a thread — and the loop doubles as the lease reaper, session
// TTL evictor, and campaign finalizer.
//
// Backpressure: a Result's records are admitted into a bounded
// per-connection append queue (acknowledged only after they reach the
// store, preserving the ack-means-durable-by-sync contract); a Result that
// would overflow the queue is refused with Busy{retry_after_ms} and the
// worker resends. Admitted records are never dropped — they are already
// retired in the dispatcher, so the close path appends them before the
// connection state is torn down.
//
// Campaigns come and go while the fleet runs: SubmitCampaign opens a new
// store under cfg.store_dir and starts granting from it on the next pick;
// RemoveCampaign stops new grants and finalizes (sync + unregister) once
// outstanding leases and queued appends hit zero, leaving the partial store
// on disk. serve() returns when every registered campaign's owned ids have
// retired, or — after request_drain() — when no leases remain outstanding.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/dispatch.hpp"
#include "net/framing.hpp"
#include "net/protocol.hpp"
#include "store/checkpoint.hpp"

namespace gpf::net {

struct CoordinatorConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;     ///< 0 = kernel-assigned (read back via port())
  std::size_t unit_size = 64; ///< fault ids per work unit
  std::uint32_t lease_ms = 10000;
  bool verbose = false;       ///< per-event log lines on stderr
  std::uint32_t status_interval_ms = 5000;  ///< progress log period (0 = off)
  /// Directory where SubmitCampaign creates stores (<dir>/<name>.gpfs).
  /// Empty disables remote submission (OpResult error).
  std::string store_dir;
  /// Disconnected session rows older than this are folded into the
  /// snapshot's evicted_* aggregates (bounds sessions_ under churn).
  std::uint32_t session_ttl_ms = 60000;
  /// A rate window whose campaign made no progress for this long restarts
  /// at the next retirement, so an ETA never averages across an idle gap.
  std::uint32_t idle_reset_ms = 5000;
  /// Result admission bound: a connection may have at most this many
  /// records queued for append; beyond it, Results get Busy{busy_retry_ms}.
  std::size_t max_outstanding_appends = 4096;
  std::uint32_t busy_retry_ms = 50;
  std::size_t max_campaigns = 64;
};

/// Trailing-window throughput/ETA estimator (~1 sample/s, window of 16)
/// with idle-gap reset: when progress resumes after >= idle_reset_ms of
/// none, the window restarts so the rate reflects the active period only.
/// Pure function of the time points passed in, so tests drive it with a
/// synthetic clock.
struct RateWindow {
  using Clock = LeaseDispatcher::Clock;

  std::uint32_t idle_reset_ms = 5000;

  void sample(Clock::time_point now, std::uint64_t retired);
  /// Recent throughput in ids/s x1000; 0 = unknown (no progress in window).
  std::uint64_t rate_milli() const;
  /// ETA for `remaining` ids at the window rate; 0 = unknown.
  std::uint64_t eta_ms(std::uint64_t remaining) const;

  std::deque<std::pair<Clock::time_point, std::uint64_t>> samples;
  Clock::time_point last_progress{};
  std::uint64_t last_retired = 0;
  bool primed = false;  ///< last_progress/last_retired hold real values
};

class Coordinator {
 public:
  /// Binds the listener immediately (port() is valid before serve()).
  /// Campaigns are attached afterwards via add_campaign / SubmitCampaign.
  explicit Coordinator(const CoordinatorConfig& cfg);
  /// Single-campaign convenience: construct + add_campaign(ckpt).
  Coordinator(store::CampaignCheckpoint& ckpt, const CoordinatorConfig& cfg);
  ~Coordinator();

  /// Registers a caller-owned store as a campaign. The campaign name is the
  /// store's filename stem (e.g. "perfi-mxm-IOC" from ".../perfi-mxm-IOC.gpfs"),
  /// which is what workers pin to and what exports key on.
  void add_campaign(store::CampaignCheckpoint& ckpt, std::uint32_t priority = 1);

  std::uint16_t port() const { return port_; }

  /// Asks serve() to stop granting leases and return once outstanding
  /// leases finish or expire. Async-safe (atomic store): callable from a
  /// signal handler.
  void request_drain() { drain_.store(true, std::memory_order_relaxed); }

  struct Stats {
    std::uint64_t appended = 0;      ///< fresh records written this serve()
    std::uint64_t duplicates = 0;    ///< results dropped by id-dedup
    std::uint64_t sessions = 0;      ///< connections accepted
    std::uint64_t expired_leases = 0;
    std::uint64_t busy_rejections = 0;   ///< Results refused with Busy
    std::uint64_t campaigns_submitted = 0;
    std::uint64_t campaigns_removed = 0;
    std::uint64_t evicted_sessions = 0;  ///< rows TTL-folded into aggregates
    bool drained = false;            ///< stopped via drain, not completion
  };

  /// Blocking event loop; returns when every campaign's owned ids are
  /// retired or a requested drain has no leases left outstanding.
  Stats serve();

  /// Live progress view, as served to `gpfctl top` (thread-safe). With a
  /// campaign name, id/unit/rate figures are scoped to that campaign;
  /// otherwise they aggregate the whole registry.
  StatsSnapshot snapshot_stats(const std::string& campaign = "");

  /// Registry view (thread-safe), as served to `gpfctl campaigns`.
  std::vector<CampaignRow> list_campaigns();

  /// Store paths of all live campaigns (thread-safe) — gpfd polls this to
  /// keep its per-campaign compactors in step with remote submissions.
  std::vector<std::string> store_paths();

  /// Live connection-state count (thread-safe); the churn regression test
  /// asserts this returns to baseline after N connect/disconnect cycles.
  std::size_t connection_count() const {
    return conn_count_.load(std::memory_order_relaxed);
  }
  /// Session stat rows currently held (thread-safe); bounded by TTL
  /// eviction even under reconnect churn.
  std::size_t session_rows();

 private:
  struct Campaign {
    std::uint64_t cid = 0;
    std::string name;
    std::uint32_t priority = 1;
    store::CampaignCheckpoint* ckpt = nullptr;  ///< owned_ or caller-owned
    std::unique_ptr<store::CampaignCheckpoint> owned;
    std::unique_ptr<LeaseDispatcher> dispatcher;
    std::uint64_t done_at_open = 0;
    std::size_t pending_appends = 0;  ///< records admitted but not yet written
    bool removing = false;
    RateWindow rate;
  };

  /// Records admitted from one Result, with the reply owed once they land.
  struct PendingAppend {
    std::uint64_t cid = 0;
    std::vector<store::Record> fresh;  ///< already retired in the dispatcher
    Frame reply;
  };

  struct Conn {
    Socket sock;
    std::uint64_t session = 0;
    std::string peer_name;
    std::string campaign_filter;  ///< from Hello; "" = any campaign
    bool is_worker = false;  ///< leased/resulted at least once (stats rows)
    bool dead = false;
    std::vector<std::uint8_t> rbuf;
    std::size_t roff = 0;
    std::vector<std::uint8_t> wbuf;
    std::size_t woff = 0;
    bool want_write = false;  ///< EPOLLOUT currently registered
    std::deque<PendingAppend> appends;
    std::size_t outstanding_records = 0;
  };

  /// A session row as seen by stats: rows survive disconnects so the live
  /// table shows a SIGKILLed worker go stale instead of vanishing, then
  /// fold into evicted_* aggregates after session_ttl_ms.
  struct SessionInfo {
    std::string name;
    std::uint64_t retired = 0;
    LeaseDispatcher::Clock::time_point last_active{};
    bool connected = false;
  };

  std::uint64_t register_campaign_locked(store::CampaignCheckpoint& ckpt,
                                         std::unique_ptr<store::CampaignCheckpoint> owned,
                                         std::uint32_t priority);
  Campaign* find_campaign_locked(const std::string& name);
  CampaignRow campaign_row_locked(const Campaign& c) const;

  void accept_ready();
  void close_conn(int fd);
  void handle_readable(Conn& conn);
  void handle_message(Conn& conn, const Frame& f);
  void queue_frame(Conn& conn, const Frame& f);
  void flush_writes(Conn& conn);
  void update_write_interest(Conn& conn);
  void process_appends(Conn& conn);
  void drain_appends_locked(Conn& conn, bool queue_replies);
  void tick(LeaseDispatcher::Clock::time_point now);
  bool stop_serving();

  Frame on_lease_request(Conn& conn, LeaseDispatcher::Clock::time_point now);
  Frame on_submit(const SubmitCampaign& msg);
  Frame on_remove(const RemoveCampaign& msg);

  void touch_session(std::uint64_t session, const std::string& name,
                     LeaseDispatcher::Clock::time_point now,
                     std::uint64_t retired_delta);
  StatsSnapshot snapshot_stats_locked(LeaseDispatcher::Clock::time_point now,
                                      const std::string& campaign);

  CoordinatorConfig cfg_;
  Socket listener_;
  std::uint16_t port_ = 0;
  int epoll_fd_ = -1;

  std::mutex mu_;  ///< guards campaigns_, sessions_, stats_, rate windows
  std::map<std::uint64_t, Campaign> campaigns_;  ///< cid -> campaign
  std::uint64_t next_cid_ = 1;
  DrrScheduler drr_;
  Stats stats_;
  std::map<std::uint64_t, SessionInfo> sessions_;
  std::uint64_t evicted_workers_ = 0;
  std::uint64_t evicted_retired_ = 0;
  RateWindow fleet_rate_;  ///< aggregate across campaigns
  LeaseDispatcher::Clock::time_point serve_start_{};
  LeaseDispatcher::Clock::time_point last_status_{};
  LeaseDispatcher::Clock::time_point last_tick_{};

  std::unordered_map<int, std::unique_ptr<Conn>> conns_;  ///< by fd
  std::uint64_t next_session_ = 1;
  std::atomic<std::size_t> conn_count_{0};

  std::atomic<bool> drain_{false};
};

}  // namespace gpf::net
