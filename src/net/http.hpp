// Minimal HTTP/1.1 serving layer for gpfd's observability endpoints.
//
// This is deliberately not a web framework: one short-lived connection at a
// time, GET only, Connection: close, request head capped at 8 KiB. It
// exists so `curl http://gpfd/v1/stats` and dashboards can read campaign
// progress and warehouse rollups without speaking the binary frame
// protocol. Reuses the same Socket/listen/accept utilities as the
// coordinator, so the two listeners behave identically under drain.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include "net/framing.hpp"
#include "net/protocol.hpp"
#include "store/result_log.hpp"

namespace gpf::net {

struct HttpRequest {
  std::string method;  ///< "GET"
  std::string target;  ///< raw request target, e.g. "/v1/query?metric=epr"
  std::string path;    ///< target up to '?'
  std::map<std::string, std::string> params;  ///< decoded query parameters
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

/// Parses an HTTP/1.1 request head (request line + headers, as read off the
/// wire up to the blank line). Returns false on anything malformed. Query
/// parameters are split on '&'/'=' and percent-decoded.
bool parse_http_request(const std::string& head, HttpRequest& out);

/// Serializes status line + headers + body, ready to write to the socket.
std::string serialize_http_response(const HttpResponse& r);

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Single-threaded accept-and-respond loop on its own thread. The handler
/// runs on that thread; it must be internally synchronized (the warehouse
/// Compactor and Coordinator::snapshot_stats both are). Handler exceptions
/// become 500 responses; a handler returning status 404 etc. passes through.
class HttpServer {
 public:
  /// Binds host:port immediately (port 0 = kernel-assigned; read back with
  /// port()). Throws on bind failure. Call start() to begin serving.
  HttpServer(const std::string& addr, HttpHandler handler);
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  std::uint16_t port() const { return port_; }
  void start();
  void stop();  ///< idempotent; joins the serving thread

 private:
  void serve_loop();

  Socket listener_;
  std::uint16_t port_ = 0;
  HttpHandler handler_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
};

/// The /v1/stats body: the same live progress view `gpfctl top` renders —
/// aggregate (or campaign-scoped) progress, the campaign registry, and the
/// worker table — as JSON.
std::string stats_json(const StatsSnapshot& st);

/// The /v1/campaigns body: the registry rows, as JSON.
std::string campaigns_json(const std::vector<CampaignRow>& rows);

}  // namespace gpf::net
