// Campaign-kind dispatch for fleet workers: builds the UnitFn that turns
// leased fault ids into encoded store records, for any of the three
// campaign kinds. Expensive per-campaign setup (profiling traces, golden
// runs, fault-list sampling) happens once here, not per lease.
#pragma once

#include "net/worker.hpp"
#include "store/result_log.hpp"

namespace gpf::net {

/// The UnitFnFactory used by `gpfctl worker` (and the e2e tests). Gate
/// campaigns spread batches over a GPF_THREADS-sized pool; rtl/perfi
/// evaluate ids sequentially (one injection at a time is the unit of work).
UnitFn make_unit_fn(const store::CampaignMeta& meta);

}  // namespace gpf::net
