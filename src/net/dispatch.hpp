// LeaseDispatcher: the coordinator's authoritative map of who is working on
// which slice of the fault-id space.
//
// The shard's pending ids (owned ids minus anything already in the store)
// are partitioned into contiguous work units. A unit moves through
//
//          lease                    complete / last id retired
//   Pending -----> Leased(session) ---------------------------> Done
//      ^              |
//      '--------------'  deadline expiry / connection loss
//
// Leases are identified by an opaque session token (one per worker
// connection), carry a steady_clock deadline, and are renewed by every
// Result / Heartbeat / UnitDone from the owning session. An expired or
// released lease returns the unit to Pending with only its still-outstanding
// ids, so a reassigned unit never re-runs work that already landed. Each id
// retires at most once (mark_retired dedups), which is what keeps the fleet
// export byte-identical to a single-process run.
//
// Not thread-safe: the coordinator serializes access with one mutex.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "store/result_log.hpp"

namespace gpf::net {

class LeaseDispatcher {
 public:
  using Clock = std::chrono::steady_clock;

  /// Partitions the shard's pending ids into units of at most `unit_size`
  /// ids. `already_retired` (the store's recovered ids) are excluded from
  /// the id space up front.
  LeaseDispatcher(const store::CampaignMeta& meta, std::size_t unit_size,
                  const std::set<std::uint64_t>& already_retired);

  struct Grant {
    std::uint64_t unit_id = 0;
    std::vector<std::uint64_t> ids;  ///< still-outstanding ids of the unit
  };

  /// Leases the next pending unit to `session` until now + lease_len.
  /// Empty when nothing is pending (all leased or all done).
  std::optional<Grant> lease(std::uint64_t session, Clock::time_point now,
                             Clock::duration lease_len);

  /// Renews `session`'s lease on `unit_id`. False when the session no
  /// longer holds the lease (expired and possibly reassigned) — the worker
  /// must abandon the unit.
  bool renew(std::uint64_t unit_id, std::uint64_t session,
             Clock::time_point now, Clock::duration lease_len);

  /// Records that `id` retired. True when this is the first time (the
  /// caller should append it to the store); false for a duplicate from a
  /// reassigned-then-resurrected lease. A unit whose last id retires
  /// becomes Done immediately, whoever holds its lease.
  bool mark_retired(std::uint64_t id);

  /// Returns every unit leased by `session` to Pending (connection lost).
  void release_session(std::uint64_t session);

  /// Expires all leases whose deadline has passed; returns how many.
  std::size_t expire_stale(Clock::time_point now);

  bool all_done() const { return retired_ == id_count_; }
  std::uint64_t retired() const { return retired_; }
  std::uint64_t id_count() const { return id_count_; }
  std::size_t pending_units() const { return queue_.size(); }
  std::size_t leased_units() const;
  /// Units currently leased by `session` (the per-worker stats row).
  std::size_t leased_units_for(std::uint64_t session) const;
  /// True while any unit is leased (drain must wait for these).
  bool any_leased() const { return leased_units() != 0; }

 private:
  enum class State : std::uint8_t { Pending, Leased, Done };

  struct Unit {
    std::set<std::uint64_t> outstanding;  ///< ids not yet retired
    State state = State::Pending;
    std::uint64_t session = 0;
    Clock::time_point deadline{};
  };

  void requeue(std::uint64_t unit_id);

  std::vector<Unit> units_;
  std::deque<std::uint64_t> queue_;  ///< pending unit ids, FIFO
  std::unordered_map<std::uint64_t, std::uint64_t> id_unit_;
  std::uint64_t id_count_ = 0;  ///< ids pending at construction
  std::uint64_t retired_ = 0;   ///< ids retired since construction
};

/// Deficit round-robin fair-share picker over weighted keys (campaigns).
///
/// Each pick, every eligible key's deficit grows by its weight and the key
/// with the largest deficit wins (ties to the smaller key, so the order is
/// deterministic); the winner then pays the sum of all eligible weights.
/// Over a full cycle each key is picked in exact proportion to its weight —
/// e.g. weights 3:1 yield picks {A,B,A,A} per cycle — while keys that are
/// temporarily ineligible (no pending units) neither accrue nor lose
/// standing, so a campaign that drains and refills is not owed a burst.
///
/// Not thread-safe; the coordinator serializes access like LeaseDispatcher.
class DrrScheduler {
 public:
  /// Picks one key from the eligible (key, weight) set; `eligible` must be
  /// non-empty and weights must be >= 1.
  std::uint64_t pick(
      const std::vector<std::pair<std::uint64_t, std::uint32_t>>& eligible);

  /// Drops a key's accrued deficit (its campaign left the registry).
  void forget(std::uint64_t key) { deficit_.erase(key); }

 private:
  std::unordered_map<std::uint64_t, std::int64_t> deficit_;
};

}  // namespace gpf::net
