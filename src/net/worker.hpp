// Fleet worker: leases work units from a coordinator, evaluates their fault
// ids through a campaign-specific work function, and streams the results
// back.
//
// The compute runs in a background thread feeding a queue; the connection
// thread drains the queue into Result messages and falls back to Heartbeat
// when the queue is empty, so the lease is renewed at a steady cadence even
// while a single slow injection is in flight. A lost lease (the Ack says the
// unit was reassigned) aborts the compute via its stop callback; a lost
// connection triggers exponential-backoff reconnection, giving up after a
// bounded run of consecutive failures (a finished coordinator simply goes
// away — workers must not spin forever).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "net/protocol.hpp"
#include "store/result_log.hpp"

namespace gpf::net {

struct WorkerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string name = "worker";
  std::uint32_t backoff_ms = 500;   ///< initial reconnect backoff (doubles, capped at 64x)
  int max_connect_failures = 8;     ///< consecutive failures before giving up
  std::size_t batch_records = 16;   ///< max records per Result message
  bool verbose = false;
};

/// Emits one retired result: (fault id, encoded record payload).
using EmitBytes =
    std::function<void(std::uint64_t, std::vector<std::uint8_t>)>;

/// Evaluates a batch of fault ids, emitting each result as it retires and
/// polling `stop` between ids (true = lease lost, abandon the rest).
using UnitFn = std::function<void(std::span<const std::uint64_t>,
                                  const EmitBytes&,
                                  const std::function<bool()>&)>;

/// Builds the campaign's work function from the coordinator's meta. Called
/// once, on the first successful handshake; expensive per-campaign setup
/// (golden runs, fault lists) belongs inside.
using UnitFnFactory = std::function<UnitFn(const store::CampaignMeta&)>;

struct WorkerStats {
  std::uint64_t retired = 0;      ///< records submitted and acknowledged
  std::uint64_t units = 0;        ///< units completed by this worker
  std::uint64_t lost_leases = 0;  ///< units abandoned after reassignment
  std::uint64_t reconnects = 0;   ///< successful connects after the first
  bool drained = false;           ///< exited on NoWork{drained}
  bool gave_up = false;           ///< exited on max_connect_failures
};

/// Runs the worker loop until the coordinator reports the campaign drained
/// or the connection is lost for good. Throws only on non-network fatal
/// errors (campaign mismatch across reconnects, a work function that
/// throws).
WorkerStats run_worker(const WorkerConfig& cfg, const UnitFnFactory& make_fn);

/// Observer client: one Hello + StatsRequest round-trip against a running
/// coordinator. Returns the campaign meta (from the HelloAck) and the live
/// snapshot. Throws on connection or protocol errors. Backs `gpfctl top`.
std::pair<store::CampaignMeta, StatsSnapshot> fetch_stats(
    const std::string& host, std::uint16_t port);

}  // namespace gpf::net
