// Fleet worker: leases work units from a coordinator, evaluates their fault
// ids through a campaign-specific work function, and streams the results
// back.
//
// The compute runs in a background thread feeding a queue; the connection
// thread drains the queue into Result messages and falls back to Heartbeat
// when the queue is empty, so the lease is renewed at a steady cadence even
// while a single slow injection is in flight. A lost lease (the Ack says the
// unit was reassigned) aborts the compute via its stop callback; a lost
// connection triggers exponential-backoff reconnection, giving up after a
// bounded run of consecutive failures (a finished coordinator simply goes
// away — workers must not spin forever).
//
// Since protocol v3 a worker serves whatever campaign each LeaseGrant names
// (work functions are built lazily, one per campaign, and cached for the
// process lifetime), or pins itself to a single named campaign via
// WorkerConfig::campaign. A Busy reply to a Result is handled by resending
// the same message after the coordinator's retry-after delay.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "net/protocol.hpp"
#include "store/result_log.hpp"

namespace gpf::net {

struct WorkerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string name = "worker";
  std::string campaign;             ///< pin to one campaign ("" = serve any)
  std::uint32_t backoff_ms = 500;   ///< initial reconnect backoff (doubles, capped at 64x)
  int max_connect_failures = 8;     ///< consecutive failures before giving up
  std::size_t batch_records = 16;   ///< max records per Result message
  bool verbose = false;
};

/// Floor on the heartbeat cadence. lease_ms / 3 keeps two renewal chances
/// per lease, but a tiny lease (tests use 50-200 ms) must not degenerate
/// into a heartbeat flood — past the floor, staying leased is the lease
/// duration's own problem, not the network's.
constexpr std::uint32_t kMinHeartbeatMs = 100;

/// Heartbeat period for a given lease duration: lease_ms / 3, clamped to
/// kMinHeartbeatMs.
inline std::uint32_t heartbeat_interval_ms(std::uint32_t lease_ms) {
  return std::max(lease_ms / 3, kMinHeartbeatMs);
}

/// Emits one retired result: (fault id, encoded record payload).
using EmitBytes =
    std::function<void(std::uint64_t, std::vector<std::uint8_t>)>;

/// Evaluates a batch of fault ids, emitting each result as it retires and
/// polling `stop` between ids (true = lease lost, abandon the rest).
using UnitFn = std::function<void(std::span<const std::uint64_t>,
                                  const EmitBytes&,
                                  const std::function<bool()>&)>;

/// Builds a campaign's work function from the meta carried by its first
/// LeaseGrant. Called once per distinct campaign; expensive per-campaign
/// setup (golden runs, fault lists) belongs inside.
using UnitFnFactory = std::function<UnitFn(const store::CampaignMeta&)>;

struct WorkerStats {
  std::uint64_t retired = 0;      ///< records submitted and acknowledged
  std::uint64_t units = 0;        ///< units completed by this worker
  std::uint64_t lost_leases = 0;  ///< units abandoned after reassignment
  std::uint64_t reconnects = 0;   ///< successful connects after the first
  std::uint64_t busy_retries = 0; ///< Results resent after a Busy reply
  std::uint64_t campaigns = 0;    ///< distinct campaigns served
  bool drained = false;           ///< exited on NoWork{drained}
  bool gave_up = false;           ///< exited on max_connect_failures
};

/// Runs the worker loop until the coordinator reports its work drained or
/// the connection is lost for good. Throws only on non-network fatal errors
/// (a campaign whose meta changes identity mid-fleet, a work function that
/// throws).
WorkerStats run_worker(const WorkerConfig& cfg, const UnitFnFactory& make_fn);

/// Observer client: one Hello + StatsRequest round-trip against a running
/// coordinator ("" = aggregate snapshot, else scoped to that campaign).
/// Throws on connection or protocol errors. Backs `gpfctl top`.
StatsSnapshot fetch_stats(const std::string& host, std::uint16_t port,
                          const std::string& campaign = "");

/// Registry client ops, backing `gpfctl submit` / `gpfctl campaigns`.
/// Each is one Hello + request round-trip; throws on connection errors,
/// returns the coordinator's verdict on semantic ones.
std::vector<CampaignRow> fetch_campaigns(const std::string& host,
                                         std::uint16_t port);
OpResult submit_campaign(const std::string& host, std::uint16_t port,
                         const std::string& name,
                         const store::CampaignMeta& meta,
                         std::uint32_t priority = 1);
OpResult remove_campaign(const std::string& host, std::uint16_t port,
                         const std::string& name);

}  // namespace gpf::net
