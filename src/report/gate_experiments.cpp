#include "report/gate_experiments.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "gate/batchsim.hpp"
#include "gate/collapse.hpp"
#include "gate/profiler.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "store/records.hpp"
#include "workloads/workload.hpp"

namespace gpf::report {

std::vector<gate::UnitTraces> collect_profiling_traces(std::size_t max_issues) {
  std::vector<gate::UnitTraces> traces;
  for (const workloads::Workload* w : workloads::profiling_set()) {
    arch::Gpu gpu;
    gate::UnitProfiler profiler(max_issues);
    gpu.set_hooks(&profiler);
    w->setup(gpu);
    const workloads::RunStats stats = w->run(gpu);
    gpu.set_hooks(nullptr);
    if (!stats.ok)
      throw std::runtime_error("profiling run failed: " + std::string(w->name()));
    traces.push_back(profiler.take(std::string(w->name())));
  }
  return traces;
}

GateCampaigns run_gate_campaigns(const std::vector<gate::UnitTraces>& traces,
                                 std::size_t faults_per_unit, std::uint64_t seed,
                                 EngineKind engine) {
  GateCampaigns out;
  ThreadPool pool;
  const gate::UnitKind kinds[] = {gate::UnitKind::Decoder, gate::UnitKind::Fetch,
                                  gate::UnitKind::WSC};
  for (unsigned i = 0; i < 3; ++i)
    out.units[i] = gate::run_unit_campaign(kinds[i], traces, faults_per_unit, seed,
                                           &pool, engine);
  for (const auto& t : traces) out.total_dynamic_instructions += t.issues;
  return out;
}

// ---------------------------------------------------------------------------
// Checkpointed campaign (persistent store, resume, sharding)
// ---------------------------------------------------------------------------

store::GateRecord to_gate_record(const gate::FaultCharacterization& fc) {
  store::GateRecord r;
  r.net = static_cast<std::uint32_t>(fc.fault.net);
  r.stuck_high = fc.fault.stuck_high;
  r.activated = fc.activated;
  r.hang = fc.hang;
  r.error_counts = fc.error_counts;
  return r;
}

void apply_gate_record(const store::GateRecord& r,
                       gate::FaultCharacterization& fc) {
  fc.activated = r.activated;
  fc.hang = r.hang;
  fc.error_counts = r.error_counts;
}

store::CampaignMeta gate_campaign_meta(gate::UnitKind unit,
                                       std::size_t faults_per_unit,
                                       std::size_t max_issues, std::uint64_t seed,
                                       EngineKind engine,
                                       std::uint32_t shard_index,
                                       std::uint32_t shard_count) {
  gate::UnitReplayer replayer(unit);
  const std::size_t full = gate::full_fault_list(replayer.netlist()).size();
  store::CampaignMeta meta;
  meta.kind = store::CampaignKind::Gate;
  meta.target = static_cast<std::uint8_t>(unit);
  meta.engine = static_cast<std::uint8_t>(engine);
  meta.seed = seed;
  meta.total = faults_per_unit ? std::min(faults_per_unit, full) : full;
  meta.shard_index = shard_index;
  meta.shard_count = shard_count;
  meta.param0 = faults_per_unit;
  meta.param1 = max_issues;
  return meta;
}

GateUnitRunner::GateUnitRunner(const std::vector<gate::UnitTraces>& traces,
                               const store::CampaignMeta& meta)
    : traces_(traces),
      engine_(static_cast<EngineKind>(meta.engine)),
      replayer_(static_cast<gate::UnitKind>(meta.target)) {
  if (meta.kind != store::CampaignKind::Gate)
    throw std::runtime_error("gate campaign: meta is not a gate campaign");
  faults_ = gate::sampled_fault_list(replayer_.netlist(),
                                     static_cast<gate::UnitKind>(meta.target),
                                     meta.param0, meta.seed);
  if (faults_.size() != meta.total)
    throw std::runtime_error(
        "gate campaign: store fault-id space does not match the netlist "
        "(store built against different code?)");
  full_fault_list_size_ = gate::full_fault_list(replayer_.netlist()).size();
  goldens_.reserve(traces.size());
  for (const gate::UnitTraces& t : traces)
    goldens_.push_back(replayer_.compute_golden(t));

  collapse_ = collapse_enabled();
  rep_count_ = faults_.size();
  if (collapse_) {
    const gate::FaultCollapse col(replayer_.netlist());
    rep_of_id_.reserve(faults_.size());
    std::unordered_map<std::uint32_t, std::uint32_t> seen;
    for (const gate::StuckFault& f : faults_) {
      const gate::StuckFault rep = col.representative(f);
      rep_of_id_.push_back(rep);
      seen.try_emplace(gate::FaultCollapse::node(rep), 0u);
    }
    rep_count_ = seen.size();
    act_ = gate::ActivationSummary(replayer_.netlist().num_nets());
    for (const gate::UnitReplayer::GoldenTrace& g : goldens_) act_.add(g);
  }
  static obs::Counter& members = obs::counter("gate.collapse_members");
  static obs::Counter& reps = obs::counter("gate.collapse_reps");
  members.add(faults_.size());
  reps.add(rep_count_);
}

std::size_t gate_campaign_representatives(const store::CampaignMeta& meta) {
  if (meta.kind != store::CampaignKind::Gate)
    throw std::runtime_error("gate campaign: meta is not a gate campaign");
  if (!collapse_enabled()) return meta.total;
  const auto unit = static_cast<gate::UnitKind>(meta.target);
  gate::UnitReplayer replayer(unit);
  const std::vector<gate::StuckFault> faults =
      gate::sampled_fault_list(replayer.netlist(), unit, meta.param0, meta.seed);
  if (faults.size() != meta.total) return meta.total;  // stale store: no map
  const gate::FaultCollapse col(replayer.netlist());
  std::unordered_map<std::uint32_t, std::uint32_t> seen;
  for (const gate::StuckFault& f : faults)
    seen.try_emplace(gate::FaultCollapse::node(col.representative(f)), 0u);
  return seen.size();
}

void GateUnitRunner::run_collapsed(std::span<const std::uint64_t> ids,
                                   const Emit& emit, ThreadPool* pool,
                                   const std::function<bool()>& stop) const {
  // Group the requested ids by equivalence class: one simulation per unique
  // representative, expanded onto every member id as it retires.
  struct Job {
    gate::StuckFault rep;
    std::vector<std::uint64_t> ids;
  };
  std::vector<Job> jobs;
  std::unordered_map<std::uint32_t, std::size_t> job_of_node;
  for (const std::uint64_t id : ids) {
    const gate::StuckFault rep = rep_of_id_.at(id);
    const auto [it, inserted] =
        job_of_node.try_emplace(gate::FaultCollapse::node(rep), jobs.size());
    if (inserted) jobs.push_back(Job{rep, {}});
    jobs[it->second].ids.push_back(id);
  }
  static obs::Counter& retired = obs::counter("gate.faults_retired");
  const auto expand = [&](const Job& job, const gate::FaultCharacterization& rc) {
    for (const std::uint64_t id : job.ids)
      emit(id, gate::expand_collapsed(rc, faults_[id], act_));
    retired.add(job.ids.size());
  };

  if (engine_ == EngineKind::Batch) {
    const std::size_t kB = gate::batch_lane_width();
    const std::size_t batches = (jobs.size() + kB - 1) / kB;
    const auto work = [&](std::size_t b) {
      if (stop && stop()) return;
      const std::size_t lo = b * kB;
      const std::size_t len = std::min(kB, jobs.size() - lo);
      obs::TraceSpan batch_span("gate", "batch");
      batch_span.arg("lanes", len);
      std::vector<gate::StuckFault> bf(len);
      std::vector<gate::FaultCharacterization> bo(len);
      for (std::size_t j = 0; j < len; ++j) {
        bf[j] = jobs[lo + j].rep;
        bo[j].fault = bf[j];
      }
      for (std::size_t ti = 0; ti < traces_.size(); ++ti)
        replayer_.run_fault_batch(bf, traces_[ti], goldens_[ti], bo);
      for (std::size_t j = 0; j < len; ++j) expand(jobs[lo + j], bo[j]);
    };
    if (pool)
      pool->parallel_for(batches, work);
    else
      for (std::size_t b = 0; b < batches; ++b) work(b);
    return;
  }

  const auto work = [&](std::size_t i) {
    if (stop && stop()) return;
    gate::FaultCharacterization fc;
    fc.fault = jobs[i].rep;
    for (std::size_t ti = 0; ti < traces_.size(); ++ti)
      replayer_.run_fault(fc.fault, traces_[ti], goldens_[ti], fc, engine_);
    expand(jobs[i], fc);
  };
  if (pool)
    pool->parallel_for(jobs.size(), work);
  else
    for (std::size_t i = 0; i < jobs.size(); ++i) work(i);
}

void GateUnitRunner::run(std::span<const std::uint64_t> ids, const Emit& emit,
                         ThreadPool* pool,
                         const std::function<bool()>& stop) const {
  if (collapse_) {
    run_collapsed(ids, emit, pool, stop);
    return;
  }
  static obs::Counter& retired = obs::counter("gate.faults_retired");
  if (engine_ == EngineKind::Batch) {
    const std::size_t kB = gate::batch_lane_width();
    const std::size_t batches = (ids.size() + kB - 1) / kB;
    const auto work = [&](std::size_t b) {
      if (stop && stop()) return;
      const std::size_t lo = b * kB;
      const std::size_t len = std::min(kB, ids.size() - lo);
      obs::TraceSpan batch_span("gate", "batch");
      batch_span.arg("lanes", len);
      // The ids are not contiguous after a resume / lease reassignment, so
      // stage the batch through dense arrays (per-fault results are
      // independent of batch composition — asserted by test_batchsim).
      std::vector<gate::StuckFault> bf(len);
      std::vector<gate::FaultCharacterization> bo(len);
      for (std::size_t j = 0; j < len; ++j) {
        bf[j] = faults_.at(ids[lo + j]);
        bo[j].fault = bf[j];
      }
      for (std::size_t ti = 0; ti < traces_.size(); ++ti)
        replayer_.run_fault_batch(bf, traces_[ti], goldens_[ti], bo);
      for (std::size_t j = 0; j < len; ++j) emit(ids[lo + j], bo[j]);
      retired.add(len);
    };
    if (pool)
      pool->parallel_for(batches, work);
    else
      for (std::size_t b = 0; b < batches; ++b) work(b);
    return;
  }

  const auto work = [&](std::size_t i) {
    if (stop && stop()) return;
    gate::FaultCharacterization fc;
    fc.fault = faults_.at(ids[i]);
    for (std::size_t ti = 0; ti < traces_.size(); ++ti)
      replayer_.run_fault(fc.fault, traces_[ti], goldens_[ti], fc, engine_);
    emit(ids[i], fc);
    retired.add(1);
  };
  if (pool)
    pool->parallel_for(ids.size(), work);
  else
    for (std::size_t i = 0; i < ids.size(); ++i) work(i);
}

gate::UnitCampaignResult run_unit_campaign_store(
    const std::vector<gate::UnitTraces>& traces, store::CampaignCheckpoint& ckpt,
    ThreadPool* pool) {
  const store::CampaignMeta& meta = ckpt.meta();
  if (meta.kind != store::CampaignKind::Gate)
    throw std::runtime_error("gate campaign: store is not a gate store");
  obs::TraceSpan unit_span(
      "gate", std::string("unit ") +
                  gate::unit_name(static_cast<gate::UnitKind>(meta.target)));
  const GateUnitRunner runner(traces, meta);

  // This shard's slice of the fault-id space, in id order.
  std::vector<std::uint64_t> owned;
  for (std::uint64_t id = 0; id < meta.total; ++id)
    if (meta.owns(id)) owned.push_back(id);

  gate::UnitCampaignResult result;
  result.unit = static_cast<gate::UnitKind>(meta.target);
  result.full_fault_list_size = runner.full_fault_list_size();
  result.faults.resize(owned.size());
  for (std::size_t k = 0; k < owned.size(); ++k)
    result.faults[k].fault = runner.faults()[owned[k]];

  // Restore already-retired faults; collect the rest as pending work.
  std::vector<std::uint64_t> pending;
  for (std::size_t k = 0; k < owned.size(); ++k) {
    const auto it = ckpt.done().find(owned[k]);
    if (it == ckpt.done().end()) {
      pending.push_back(owned[k]);
      continue;
    }
    const store::GateRecord rec = store::decode_gate(it->second);
    if (rec.net != static_cast<std::uint32_t>(result.faults[k].fault.net) ||
        rec.stuck_high != result.faults[k].fault.stuck_high)
      throw std::runtime_error(
          "gate campaign: stored fault id " + std::to_string(owned[k]) +
          " names a different net — store/campaign mismatch");
    apply_gate_record(rec, result.faults[k]);
  }
  if (pending.empty()) return result;

  // owned[] is sorted, so a retiring id maps back to its slot by bisection.
  const auto slot_of = [&](std::uint64_t id) {
    return static_cast<std::size_t>(
        std::lower_bound(owned.begin(), owned.end(), id) - owned.begin());
  };
  runner.run(
      pending,
      [&](std::uint64_t id, const gate::FaultCharacterization& fc) {
        result.faults[slot_of(id)] = fc;
        ckpt.record(id, store::encode(to_gate_record(fc)));
      },
      pool, [&] { return ckpt.should_stop(); });
  ckpt.sync();  // unit boundary: everything recorded above is now durable
  return result;
}

}  // namespace gpf::report
