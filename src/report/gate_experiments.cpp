#include "report/gate_experiments.hpp"

#include <algorithm>
#include <stdexcept>

#include "gate/batchsim.hpp"
#include "gate/profiler.hpp"
#include "store/records.hpp"
#include "workloads/workload.hpp"

namespace gpf::report {

std::vector<gate::UnitTraces> collect_profiling_traces(std::size_t max_issues) {
  std::vector<gate::UnitTraces> traces;
  for (const workloads::Workload* w : workloads::profiling_set()) {
    arch::Gpu gpu;
    gate::UnitProfiler profiler(max_issues);
    gpu.set_hooks(&profiler);
    w->setup(gpu);
    const workloads::RunStats stats = w->run(gpu);
    gpu.set_hooks(nullptr);
    if (!stats.ok)
      throw std::runtime_error("profiling run failed: " + std::string(w->name()));
    traces.push_back(profiler.take(std::string(w->name())));
  }
  return traces;
}

GateCampaigns run_gate_campaigns(const std::vector<gate::UnitTraces>& traces,
                                 std::size_t faults_per_unit, std::uint64_t seed,
                                 EngineKind engine) {
  GateCampaigns out;
  ThreadPool pool;
  const gate::UnitKind kinds[] = {gate::UnitKind::Decoder, gate::UnitKind::Fetch,
                                  gate::UnitKind::WSC};
  for (unsigned i = 0; i < 3; ++i)
    out.units[i] = gate::run_unit_campaign(kinds[i], traces, faults_per_unit, seed,
                                           &pool, engine);
  for (const auto& t : traces) out.total_dynamic_instructions += t.issues;
  return out;
}

// ---------------------------------------------------------------------------
// Checkpointed campaign (persistent store, resume, sharding)
// ---------------------------------------------------------------------------

namespace {

store::GateRecord to_record(const gate::FaultCharacterization& fc) {
  store::GateRecord r;
  r.net = static_cast<std::uint32_t>(fc.fault.net);
  r.stuck_high = fc.fault.stuck_high;
  r.activated = fc.activated;
  r.hang = fc.hang;
  r.error_counts = fc.error_counts;
  return r;
}

void from_record(const store::GateRecord& r, gate::FaultCharacterization& fc) {
  fc.activated = r.activated;
  fc.hang = r.hang;
  fc.error_counts = r.error_counts;
}

}  // namespace

store::CampaignMeta gate_campaign_meta(gate::UnitKind unit,
                                       std::size_t faults_per_unit,
                                       std::size_t max_issues, std::uint64_t seed,
                                       EngineKind engine,
                                       std::uint32_t shard_index,
                                       std::uint32_t shard_count) {
  gate::UnitReplayer replayer(unit);
  const std::size_t full = gate::full_fault_list(replayer.netlist()).size();
  store::CampaignMeta meta;
  meta.kind = store::CampaignKind::Gate;
  meta.target = static_cast<std::uint8_t>(unit);
  meta.engine = static_cast<std::uint8_t>(engine);
  meta.seed = seed;
  meta.total = faults_per_unit ? std::min(faults_per_unit, full) : full;
  meta.shard_index = shard_index;
  meta.shard_count = shard_count;
  meta.param0 = faults_per_unit;
  meta.param1 = max_issues;
  return meta;
}

gate::UnitCampaignResult run_unit_campaign_store(
    const std::vector<gate::UnitTraces>& traces, store::CampaignCheckpoint& ckpt,
    ThreadPool* pool) {
  const store::CampaignMeta& meta = ckpt.meta();
  if (meta.kind != store::CampaignKind::Gate)
    throw std::runtime_error("gate campaign: store is not a gate store");
  const auto unit = static_cast<gate::UnitKind>(meta.target);
  const auto engine = static_cast<EngineKind>(meta.engine);

  gate::UnitReplayer replayer(unit);
  const std::vector<gate::StuckFault> faults = gate::sampled_fault_list(
      replayer.netlist(), unit, meta.param0, meta.seed);
  if (faults.size() != meta.total)
    throw std::runtime_error(
        "gate campaign: store fault-id space does not match the netlist "
        "(store built against different code?)");

  // This shard's slice of the fault-id space, in id order.
  std::vector<std::uint64_t> owned;
  for (std::uint64_t id = 0; id < faults.size(); ++id)
    if (meta.owns(id)) owned.push_back(id);

  gate::UnitCampaignResult result;
  result.unit = unit;
  result.full_fault_list_size = gate::full_fault_list(replayer.netlist()).size();
  result.faults.resize(owned.size());
  for (std::size_t k = 0; k < owned.size(); ++k)
    result.faults[k].fault = faults[owned[k]];

  // Restore already-retired faults; collect the rest as pending work.
  std::vector<std::size_t> pending;  // indexes into `owned`
  for (std::size_t k = 0; k < owned.size(); ++k) {
    const auto it = ckpt.done().find(owned[k]);
    if (it == ckpt.done().end()) {
      pending.push_back(k);
      continue;
    }
    const store::GateRecord rec = store::decode_gate(it->second);
    if (rec.net != static_cast<std::uint32_t>(result.faults[k].fault.net) ||
        rec.stuck_high != result.faults[k].fault.stuck_high)
      throw std::runtime_error(
          "gate campaign: stored fault id " + std::to_string(owned[k]) +
          " names a different net — store/campaign mismatch");
    from_record(rec, result.faults[k]);
  }
  if (pending.empty()) return result;

  std::vector<gate::UnitReplayer::GoldenTrace> goldens;
  goldens.reserve(traces.size());
  for (const gate::UnitTraces& t : traces) goldens.push_back(replayer.compute_golden(t));

  const auto retire = [&](std::size_t k) {
    ckpt.record(owned[k], store::encode(to_record(result.faults[k])));
  };

  if (engine == EngineKind::Batch) {
    constexpr std::size_t kB = gate::BatchFaultSim::kLanes;
    const std::size_t batches = (pending.size() + kB - 1) / kB;
    const auto work = [&](std::size_t b) {
      if (ckpt.should_stop()) return;
      const std::size_t lo = b * kB;
      const std::size_t len = std::min(kB, pending.size() - lo);
      // The pending ids are not contiguous after a resume, so stage the
      // batch through dense arrays (per-fault results are independent of
      // batch composition — asserted by test_batchsim).
      std::vector<gate::StuckFault> bf(len);
      std::vector<gate::FaultCharacterization> bo(len);
      for (std::size_t j = 0; j < len; ++j) {
        bf[j] = result.faults[pending[lo + j]].fault;
        bo[j].fault = bf[j];
      }
      for (std::size_t ti = 0; ti < traces.size(); ++ti)
        replayer.run_fault_batch(bf, traces[ti], goldens[ti], bo);
      for (std::size_t j = 0; j < len; ++j) {
        result.faults[pending[lo + j]] = bo[j];
        retire(pending[lo + j]);
      }
    };
    if (pool)
      pool->parallel_for(batches, work);
    else
      for (std::size_t b = 0; b < batches; ++b) work(b);
    return result;
  }

  const auto work = [&](std::size_t i) {
    if (ckpt.should_stop()) return;
    const std::size_t k = pending[i];
    gate::FaultCharacterization& fc = result.faults[k];
    for (std::size_t ti = 0; ti < traces.size(); ++ti)
      replayer.run_fault(fc.fault, traces[ti], goldens[ti], fc, engine);
    retire(k);
  };
  if (pool)
    pool->parallel_for(pending.size(), work);
  else
    for (std::size_t i = 0; i < pending.size(); ++i) work(i);
  return result;
}

}  // namespace gpf::report
