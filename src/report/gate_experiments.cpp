#include "report/gate_experiments.hpp"

#include <stdexcept>

#include "gate/profiler.hpp"
#include "workloads/workload.hpp"

namespace gpf::report {

std::vector<gate::UnitTraces> collect_profiling_traces(std::size_t max_issues) {
  std::vector<gate::UnitTraces> traces;
  for (const workloads::Workload* w : workloads::profiling_set()) {
    arch::Gpu gpu;
    gate::UnitProfiler profiler(max_issues);
    gpu.set_hooks(&profiler);
    w->setup(gpu);
    const workloads::RunStats stats = w->run(gpu);
    gpu.set_hooks(nullptr);
    if (!stats.ok)
      throw std::runtime_error("profiling run failed: " + std::string(w->name()));
    traces.push_back(profiler.take(std::string(w->name())));
  }
  return traces;
}

GateCampaigns run_gate_campaigns(const std::vector<gate::UnitTraces>& traces,
                                 std::size_t faults_per_unit, std::uint64_t seed,
                                 EngineKind engine) {
  GateCampaigns out;
  ThreadPool pool;
  const gate::UnitKind kinds[] = {gate::UnitKind::Decoder, gate::UnitKind::Fetch,
                                  gate::UnitKind::WSC};
  for (unsigned i = 0; i < 3; ++i)
    out.units[i] = gate::run_unit_campaign(kinds[i], traces, faults_per_unit, seed,
                                           &pool, engine);
  for (const auto& t : traces) out.total_dynamic_instructions += t.issues;
  return out;
}

}  // namespace gpf::report
