// Shared drivers for the gate-level experiment benches (Tables 3-5, Fig. 10):
// profiling-trace collection over the 14 micro-workloads and the per-unit
// stuck-at campaigns.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/env.hpp"
#include "gate/replay.hpp"
#include "gate/trace.hpp"
#include "store/checkpoint.hpp"
#include "store/records.hpp"

namespace gpf::report {

/// Run all 14 profiling workloads under the unit profiler (fault-free) and
/// harvest per-unit stimulus traces. `max_issues` caps issues per workload.
std::vector<gate::UnitTraces> collect_profiling_traces(std::size_t max_issues);

struct GateCampaigns {
  std::array<gate::UnitCampaignResult, 3> units;  // Decoder, Fetch, WSC order
  std::size_t total_dynamic_instructions = 0;
};

/// Run the stuck-at campaigns for the three units over the given traces.
/// `faults_per_unit` of 0 evaluates the full collapsed fault list. Faults
/// (or 64-fault batches, for the batch engine) are spread across a thread
/// pool sized by GPF_THREADS; the engine defaults to the GPF_ENGINE knob.
GateCampaigns run_gate_campaigns(const std::vector<gate::UnitTraces>& traces,
                                 std::size_t faults_per_unit, std::uint64_t seed,
                                 EngineKind engine = campaign_engine());

/// Store header for one unit's stuck-at campaign. `faults_per_unit` of 0
/// evaluates the full collapsed list; `total` is resolved against the unit
/// netlist so every shard/resume agrees on the fault-id space.
store::CampaignMeta gate_campaign_meta(gate::UnitKind unit,
                                       std::size_t faults_per_unit,
                                       std::size_t max_issues, std::uint64_t seed,
                                       EngineKind engine,
                                       std::uint32_t shard_index = 0,
                                       std::uint32_t shard_count = 1);

/// Durable variant of run_unit_campaign: every retired fault is appended to
/// `ckpt` as it completes, faults already in the store are restored instead
/// of re-simulated (resume), and only fault ids owned by the checkpoint's
/// shard slice are evaluated. Campaign parameters (sampled list, seed,
/// engine) come from the checkpoint's meta. The returned result holds this
/// shard's faults in id order; when ckpt.paused() the tail is unevaluated.
gate::UnitCampaignResult run_unit_campaign_store(
    const std::vector<gate::UnitTraces>& traces, store::CampaignCheckpoint& ckpt,
    ThreadPool* pool = nullptr);

/// Conversions between the gate library's per-fault result and the stored
/// record (shared by the checkpointed driver and the fleet worker).
store::GateRecord to_gate_record(const gate::FaultCharacterization& fc);
void apply_gate_record(const store::GateRecord& r,
                       gate::FaultCharacterization& fc);

/// Number of equivalence-class representatives actually simulated for a gate
/// campaign's fault-id space: the unique structural-collapse representatives
/// of the sampled fault list (= meta.total when GPF_COLLAPSE is off). Builds
/// the unit netlist but needs no traces, so status tooling can call it.
std::size_t gate_campaign_representatives(const store::CampaignMeta& meta);

/// Work-unit adapter for lease-based dispatch: resolves a gate campaign's
/// fault-id space once (netlist, sampled fault list, golden traces), then
/// evaluates arbitrary id subsets on demand. Because fault id -> StuckFault
/// is a pure function of the campaign meta, any process evaluating id i
/// produces the identical record — the fleet's byte-identical-export
/// invariant. With GPF_COLLAPSE on, each run() groups its ids by structural
/// equivalence class, simulates one representative per class, and expands
/// the record onto every member id — the emitted records are bit-identical
/// to an uncollapsed run, so the invariant survives collapsing.
class GateUnitRunner {
 public:
  using Emit =
      std::function<void(std::uint64_t, const gate::FaultCharacterization&)>;

  GateUnitRunner(const std::vector<gate::UnitTraces>& traces,
                 const store::CampaignMeta& meta);

  const std::vector<gate::StuckFault>& faults() const { return faults_; }
  std::size_t full_fault_list_size() const { return full_fault_list_size_; }
  /// Equivalence-class representatives across the whole campaign fault list
  /// (= faults().size() when collapsing is off).
  bool collapsed() const { return collapse_; }
  std::size_t representative_count() const { return rep_count_; }

  /// Evaluates `ids` (campaign fault ids, each < meta.total), invoking
  /// emit(id, result) as each fault retires. With a pool, 64-fault batches
  /// (batch engine) or single faults are spread across it and emit must be
  /// thread-safe. `stop`, when set, is polled between batches for
  /// cooperative cancellation (already-started batches still emit).
  void run(std::span<const std::uint64_t> ids, const Emit& emit,
           ThreadPool* pool = nullptr,
           const std::function<bool()>& stop = {}) const;

 private:
  void run_collapsed(std::span<const std::uint64_t> ids, const Emit& emit,
                     ThreadPool* pool, const std::function<bool()>& stop) const;

  const std::vector<gate::UnitTraces>& traces_;
  EngineKind engine_;
  gate::UnitReplayer replayer_;
  std::vector<gate::StuckFault> faults_;
  std::vector<gate::UnitReplayer::GoldenTrace> goldens_;
  std::size_t full_fault_list_size_ = 0;
  bool collapse_ = false;
  std::vector<gate::StuckFault> rep_of_id_;  ///< class rep per campaign id
  std::size_t rep_count_ = 0;
  gate::ActivationSummary act_{0};  ///< golden activation bits (collapse only)
};

}  // namespace gpf::report
