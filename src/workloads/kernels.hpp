// Shared kernel generators (SASS-DSL programs) reused across workloads.
// All memory operands are 32-bit-word addresses baked in as immediates.
#pragma once

#include <cstdint>

#include "isa/builder.hpp"
#include "isa/program.hpp"

namespace gpf::workloads::kernels {

using Addr = std::uint32_t;

enum class Activation : std::uint8_t { None, Relu, Leaky };

/// out[i] = a[i] + b[i] (FP32), one thread per element, guarded by i < n.
isa::Program vecadd(Addr a, Addr b, Addr out, std::uint32_t n);

/// out[i] = s * a[i] (FP32).
isa::Program scalar_mul(Addr a, Addr out, std::uint32_t n, float s);

/// C[r][c] = sum_k A[r][k] * B[k][c], naive, one thread per element.
/// Launch with block (n, n) for n <= 16 (single CTA).
isa::Program naive_matmul(Addr a, Addr b, Addr c, std::uint32_t n);

/// GEMM: C = alpha*A*B + beta*C (same launch shape as naive_matmul).
isa::Program gemm(Addr a, Addr b, Addr c, std::uint32_t n, float alpha, float beta);

/// Tiled matrix multiply with shared-memory tiles.
/// Launch with grid (n/tile, n/tile), block (tile, tile).
isa::Program tiled_matmul(Addr a, Addr b, Addr c, std::uint32_t n, std::uint32_t tile);

/// 5-point hotspot-style stencil step: out = in + k*(sum(neigh) - 4*in) + p.
/// Launch with block (w, h) (single CTA).
isa::Program stencil5(Addr in, Addr power, Addr out, std::uint32_t w, std::uint32_t h,
                      float k);

/// Hotspot-style variant that stages the whole tile in shared memory first
/// (as the Rodinia kernel does). Single CTA of (w, h).
isa::Program stencil5_shared(Addr in, Addr power, Addr out, std::uint32_t w,
                             std::uint32_t h, float k);

/// Convolution: one CTA per filter, block (ow, oh).
struct ConvDims {
  std::uint32_t in_c, in_h, in_w;
  std::uint32_t k;       ///< kernel size (k x k)
  std::uint32_t out_c;   ///< number of filters (= grid.x)
};
isa::Program conv2d(Addr in, Addr weights, Addr bias, Addr out, const ConvDims& d,
                    Activation act);

/// 2x2 max pooling: one CTA per channel, block (w/2, h/2).
isa::Program maxpool2(Addr in, Addr out, std::uint32_t c, std::uint32_t h,
                      std::uint32_t w);

/// Fully connected: out[j] = act(bias[j] + sum_i w[j][i]*in[i]),
/// block (out_n), single CTA.
isa::Program fully_connected(Addr in, Addr weights, Addr bias, Addr out,
                             std::uint32_t in_n, std::uint32_t out_n, Activation act);

/// Block-wise shared-memory tree reduction: partial[cta] = sum of 2*block
/// elements. Launch grid (n / (2*block)), block (block); block power of two.
isa::Program reduce_sum(Addr in, Addr partial, std::uint32_t block);

/// Transpose out[c][r] = in[r][c]; block (n, n) single CTA.
isa::Program transpose(Addr in, Addr out, std::uint32_t n);

/// Inclusive Hillis-Steele scan over n elements (single CTA, block n,
/// n power of two, uses shared memory and barriers).
isa::Program scan_inclusive(Addr in, Addr out, std::uint32_t n);

/// Grayscale: gray = 0.299 r + 0.587 g + 0.114 b over n pixels (SoA planes).
isa::Program gray_filter(Addr r, Addr g, Addr b, Addr out, std::uint32_t n);

/// Sobel magnitude-squared on an h x w luminance image; block (w, h).
isa::Program sobel(Addr in, Addr out, std::uint32_t h, std::uint32_t w);

}  // namespace gpf::workloads::kernels
