// accl — connected-component labelling (NUPAR ACCL formulation): iterative
// label propagation with min-reduction over neighbours, one kernel pair per
// iteration until a fixed point (host polls a convergence flag).
#include <memory>

#include "isa/builder.hpp"
#include "workloads/common.hpp"

namespace gpf::workloads {
namespace {

using isa::Cmp;
using isa::KernelBuilder;
using isa::SpecialReg;
using Reg = KernelBuilder::Reg;

class Accl final : public AppBase {
 public:
  static constexpr std::uint32_t kNodes = 256;
  static constexpr std::uint32_t kClusters = 8;
  static constexpr std::uint32_t kRowOff = 0, kCols = 1024, kLabelA = 4096,
                                 kLabelB = 5120, kFlag = 6144;

  Accl() : AppBase("accl", "INT32", "Graphs", "NUPAR"),
           a2b_(build_propagate(kLabelA, kLabelB)),
           b2a_(build_propagate(kLabelB, kLabelA)) {}

  struct Graph {
    std::vector<std::uint32_t> row_off, cols;
  };

  /// kClusters disjoint rings with extra random intra-cluster chords.
  static Graph make_graph() {
    Rng rng(1301);
    const std::uint32_t per = kNodes / kClusters;
    Graph g;
    std::vector<std::vector<std::uint32_t>> adj(kNodes);
    for (std::uint32_t c = 0; c < kClusters; ++c) {
      const std::uint32_t base = c * per;
      for (std::uint32_t i = 0; i < per; ++i) {
        const std::uint32_t u = base + i;
        adj[u].push_back(base + (i + 1) % per);
        adj[u].push_back(base + (i + per - 1) % per);
        adj[u].push_back(base + static_cast<std::uint32_t>(rng.below(per)));
      }
    }
    g.row_off.resize(kNodes + 1);
    for (std::uint32_t u = 0; u < kNodes; ++u) {
      g.row_off[u] = static_cast<std::uint32_t>(g.cols.size());
      for (std::uint32_t v : adj[u]) g.cols.push_back(v);
    }
    g.row_off[kNodes] = static_cast<std::uint32_t>(g.cols.size());
    return g;
  }

  void setup(arch::Gpu& gpu) const override {
    const Graph g = make_graph();
    gpu.write_global(kRowOff, g.row_off);
    gpu.write_global(kCols, g.cols);
    std::vector<std::uint32_t> labels(kNodes);
    for (std::uint32_t i = 0; i < kNodes; ++i) labels[i] = i;
    gpu.write_global(kLabelA, labels);
    gpu.write_global(kLabelB, labels);
    gpu.reserve_global(kFlag, 1);
  }

  RunStats run(arch::Gpu& gpu, std::uint64_t mc) const override {
    RunStats s;
    for (int it = 0; it < 128; ++it) {
      gpu.global()[kFlag] = 0;
      const isa::Program& prog = it % 2 == 0 ? a2b_ : b2a_;
      if (!step(gpu, s, prog, {kNodes / 64, 1, 1}, {64, 1, 1}, mc)) return s;
      // Converged: no label changed, so both buffers hold the fixed point
      // and output() can always read label A.
      if (gpu.global()[kFlag] == 0) break;
    }
    return s;
  }

  OutputSpec output() const override { return {kLabelA, kNodes, false}; }

  std::vector<std::uint32_t> host_reference_u() const override {
    // Each cluster collapses to its minimum node id = base of the cluster.
    const std::uint32_t per = kNodes / kClusters;
    std::vector<std::uint32_t> labels(kNodes);
    for (std::uint32_t i = 0; i < kNodes; ++i) labels[i] = (i / per) * per;
    return labels;
  }

 private:
  static isa::Program build_propagate(std::uint32_t src, std::uint32_t dst) {
    KernelBuilder kb("accl_propagate");
    Reg gid = kb.reg(), tid = kb.reg(), cta = kb.reg(), ntid = kb.reg();
    kb.s2r(tid, SpecialReg::TID_X);
    kb.s2r(cta, SpecialReg::CTAID_X);
    kb.s2r(ntid, SpecialReg::NTID_X);
    kb.imad(gid, cta, ntid, tid);

    Reg lbl = kb.reg(), e = kb.reg(), end = kb.reg(), nb = kb.reg(), nl = kb.reg();
    kb.ldg(lbl, gid, src);
    Reg before = kb.reg();
    kb.mov(before, lbl);
    kb.ldg(e, gid, kRowOff);
    kb.ldg(end, gid, kRowOff + 1);
    auto ploop = kb.pred();
    kb.while_(ploop, false, [&] { kb.isetp(ploop, Cmp::LT, e, end); },
              [&] {
                kb.ldg(nb, e, kCols);
                kb.ldg(nl, nb, src);
                kb.imin(lbl, lbl, nl);
                kb.iaddi(e, e, 1);
              });
    kb.stg(gid, dst, lbl);
    auto pch = kb.pred();
    Reg one = kb.reg();
    kb.isetp(pch, Cmp::NE, lbl, before);
    kb.movi(one, 1);
    kb.on(pch).st(isa::MemSpace::Global, KernelBuilder::RZ, kFlag, one);
    return kb.build();
  }

  isa::Program a2b_, b2a_;
};

}  // namespace

namespace detail {
std::vector<std::unique_ptr<Workload>> make_graph_apps() {
  std::vector<std::unique_ptr<Workload>> v;
  v.push_back(std::make_unique<Accl>());
  return v;
}
}  // namespace detail

}  // namespace gpf::workloads
