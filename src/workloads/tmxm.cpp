// t-MxM — the tile-based matrix-multiplication mini-app used by the RTL
// characterization (Section "Tiled MxM errors distribution"). 16x16 matrices
// split into 8x8 shared-memory tiles; the RTL campaign re-seeds the inputs
// with the paper's Max / Zero / Random tile types.
#include <cmath>
#include <memory>

#include "workloads/common.hpp"
#include "workloads/kernels.hpp"
#include "workloads/tmxm.hpp"

namespace gpf::workloads {

std::vector<float> tmxm_input(TileType type, std::uint64_t seed,
                              std::uint32_t n) {
  Rng rng(seed);
  std::vector<float> m(static_cast<std::size_t>(n) * n);
  switch (type) {
    case TileType::Max:
      // The tile with the highest sum of element values: large positives.
      for (auto& v : m) v = static_cast<float>(rng.uniform(4.0, 8.0));
      break;
    case TileType::Zero:
      // Feature-map edge tiles: mostly zeros from padding.
      for (auto& v : m)
        v = rng.chance(0.75) ? 0.0f : static_cast<float>(rng.uniform(-1.0, 1.0));
      break;
    case TileType::Random:
      for (auto& v : m) v = static_cast<float>(rng.uniform(-2.0, 2.0));
      break;
  }
  return m;
}

const char* tile_type_name(TileType t) {
  switch (t) {
    case TileType::Max: return "Max";
    case TileType::Zero: return "Zero";
    case TileType::Random: return "Random";
  }
  return "?";
}

namespace {

class TiledMxm final : public AppBase {
 public:
  static constexpr std::uint32_t kN = 16, kTile = 8;
  static constexpr std::uint32_t kA = 0, kB = 1024, kC = 2048;

  TiledMxm() : AppBase("tmxm", "FP32", "Linear algebra", "mini-app"),
               prog_(kernels::tiled_matmul(kA, kB, kC, kN, kTile)) {}

  void setup(arch::Gpu& gpu) const override {
    gpu.write_global_f(kA, tmxm_input(TileType::Random, 1601, kN));
    gpu.write_global_f(kB, tmxm_input(TileType::Random, 1602, kN));
    gpu.reserve_global(kC, kN * kN);
  }

  RunStats run(arch::Gpu& gpu, std::uint64_t mc) const override {
    RunStats s;
    step(gpu, s, prog_, {kN / kTile, kN / kTile, 1}, {kTile, kTile, 1}, mc);
    return s;
  }

  OutputSpec output() const override { return {kC, kN * kN, true}; }

  std::vector<float> host_reference_f() const override {
    const auto a = tmxm_input(TileType::Random, 1601, kN);
    const auto b = tmxm_input(TileType::Random, 1602, kN);
    return tmxm_host_multiply(a, b, kN);
  }

 private:
  isa::Program prog_;
};

}  // namespace

std::vector<float> tmxm_host_multiply(const std::vector<float>& a,
                                      const std::vector<float>& b,
                                      std::uint32_t n) {
  std::vector<float> c(static_cast<std::size_t>(n) * n, 0.0f);
  for (std::uint32_t r = 0; r < n; ++r)
    for (std::uint32_t cc = 0; cc < n; ++cc) {
      float acc = 0.0f;
      for (std::uint32_t k = 0; k < n; ++k)
        acc = std::fmaf(a[r * n + k], b[k * n + cc], acc);
      c[r * n + cc] = acc;
    }
  return c;
}

namespace detail {
std::vector<std::unique_ptr<Workload>> make_tmxm_apps() {
  std::vector<std::unique_ptr<Workload>> v;
  v.push_back(std::make_unique<TiledMxm>());
  return v;
}
}  // namespace detail

}  // namespace gpf::workloads
