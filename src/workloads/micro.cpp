// The 14 representative micro-workloads used for gate-level unit profiling
// (paper Section 5: Sort, Vector_Add, FFT, Tiled/Naive MxM, Reduction,
// Gray_Filter, Sobel, Scalar-Vector-Multiply, Nn, Scan_3D, Transpose,
// Euler_3D, Back Propagation). Each is small — the profiler only needs the
// dynamic-instruction exciting patterns — but still validated against a host
// reference.
#include <algorithm>
#include <cmath>
#include <memory>

#include "common/bitops.hpp"
#include "isa/builder.hpp"
#include "softfloat/sfu.hpp"
#include "workloads/common.hpp"
#include "workloads/kernels.hpp"

namespace gpf::workloads {
namespace {

using isa::Cmp;
using isa::KernelBuilder;
using isa::SpecialReg;
using Reg = KernelBuilder::Reg;

/// Single-kernel micro-workload wrapper around a prebuilt program.
class Micro : public AppBase {
 public:
  Micro(std::string name, std::string dt, std::string domain, isa::Program prog,
        arch::Dim3 grid, arch::Dim3 block)
      : AppBase(std::move(name), std::move(dt), std::move(domain), "profiling"),
        prog_(std::move(prog)), grid_(grid), block_(block) {}

  RunStats run(arch::Gpu& gpu, std::uint64_t mc) const override {
    RunStats s;
    step(gpu, s, prog_, grid_, block_, mc);
    return s;
  }

 protected:
  isa::Program prog_;
  arch::Dim3 grid_, block_;
};

// -- p_vector_add -----------------------------------------------------------

class PVecAdd final : public Micro {
 public:
  PVecAdd() : Micro("p_vector_add", "FP32", "Linear algebra",
                    kernels::vecadd(0, 512, 1024, 256), {4, 1, 1}, {64, 1, 1}) {}
  void setup(arch::Gpu& gpu) const override {
    gpu.write_global_f(0, random_floats(256, -10.0, 10.0, 2001));
    gpu.write_global_f(512, random_floats(256, -10.0, 10.0, 2002));
    gpu.reserve_global(1024, 256);
  }
  OutputSpec output() const override { return {1024, 256, true}; }
  std::vector<float> host_reference_f() const override {
    auto a = random_floats(256, -10.0, 10.0, 2001);
    const auto b = random_floats(256, -10.0, 10.0, 2002);
    for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
    return a;
  }
};

// -- p_svm (scalar-vector multiply) -------------------------------------

class PSvm final : public Micro {
 public:
  PSvm() : Micro("p_svm", "FP32", "Linear algebra",
                 kernels::scalar_mul(0, 512, 256, 2.5f), {4, 1, 1}, {64, 1, 1}) {}
  void setup(arch::Gpu& gpu) const override {
    gpu.write_global_f(0, random_floats(256, -10.0, 10.0, 2101));
    gpu.reserve_global(512, 256);
  }
  OutputSpec output() const override { return {512, 256, true}; }
  std::vector<float> host_reference_f() const override {
    auto a = random_floats(256, -10.0, 10.0, 2101);
    for (auto& v : a) v *= 2.5f;
    return a;
  }
};

// -- p_naive_mxm --------------------------------------------------------

class PNaiveMxm final : public Micro {
 public:
  PNaiveMxm() : Micro("p_naive_mxm", "FP32", "Linear algebra",
                      kernels::naive_matmul(0, 256, 512, 8), {1, 1, 1}, {8, 8, 1}) {}
  void setup(arch::Gpu& gpu) const override {
    gpu.write_global_f(0, random_floats(64, -3.0, 3.0, 2201));
    gpu.write_global_f(256, random_floats(64, -3.0, 3.0, 2202));
    gpu.reserve_global(512, 64);
  }
  OutputSpec output() const override { return {512, 64, true}; }
  std::vector<float> host_reference_f() const override {
    const auto a = random_floats(64, -3.0, 3.0, 2201);
    const auto b = random_floats(64, -3.0, 3.0, 2202);
    std::vector<float> c(64, 0.0f);
    for (unsigned r = 0; r < 8; ++r)
      for (unsigned cc = 0; cc < 8; ++cc) {
        float acc = 0.0f;
        for (unsigned k = 0; k < 8; ++k) acc = std::fmaf(a[r * 8 + k], b[k * 8 + cc], acc);
        c[r * 8 + cc] = acc;
      }
    return c;
  }
};

// -- p_tiled_mxm --------------------------------------------------------

class PTiledMxm final : public Micro {
 public:
  PTiledMxm() : Micro("p_tiled_mxm", "FP32", "Linear algebra",
                      kernels::tiled_matmul(0, 1024, 2048, 16, 8), {2, 2, 1},
                      {8, 8, 1}) {}
  void setup(arch::Gpu& gpu) const override {
    gpu.write_global_f(0, random_floats(256, -3.0, 3.0, 2301));
    gpu.write_global_f(1024, random_floats(256, -3.0, 3.0, 2302));
    gpu.reserve_global(2048, 256);
  }
  OutputSpec output() const override { return {2048, 256, true}; }
  std::vector<float> host_reference_f() const override {
    const auto a = random_floats(256, -3.0, 3.0, 2301);
    const auto b = random_floats(256, -3.0, 3.0, 2302);
    std::vector<float> c(256, 0.0f);
    for (unsigned r = 0; r < 16; ++r)
      for (unsigned cc = 0; cc < 16; ++cc) {
        float acc = 0.0f;
        for (unsigned k = 0; k < 16; ++k)
          acc = std::fmaf(a[r * 16 + k], b[k * 16 + cc], acc);
        c[r * 16 + cc] = acc;
      }
    return c;
  }
};

// -- p_reduction --------------------------------------------------------

class PReduction final : public Micro {
 public:
  PReduction() : Micro("p_reduction", "FP32", "Reduction",
                       kernels::reduce_sum(0, 2048, 64), {4, 1, 1}, {64, 1, 1}) {}
  void setup(arch::Gpu& gpu) const override {
    gpu.write_global_f(0, random_floats(512, 0.0, 1.0, 2401));
    gpu.reserve_global(2048, 4);
  }
  OutputSpec output() const override { return {2048, 4, true, 1e-4}; }
  std::vector<float> host_reference_f() const override {
    const auto a = random_floats(512, 0.0, 1.0, 2401);
    std::vector<float> out(4);
    for (unsigned cta = 0; cta < 4; ++cta) {
      // Mirror the device tree: s[t] = a[g]+a[g+64], then pairwise halving.
      float s[64];
      for (unsigned t = 0; t < 64; ++t) s[t] = a[cta * 128 + t] + a[cta * 128 + t + 64];
      for (unsigned stride = 32; stride >= 1; stride /= 2)
        for (unsigned t = 0; t < stride; ++t) s[t] += s[t + stride];
      out[cta] = s[0];
    }
    return out;
  }
};

// -- p_transpose --------------------------------------------------------

class PTranspose final : public Micro {
 public:
  PTranspose() : Micro("p_transpose", "FP32", "Data movement",
                       kernels::transpose(0, 512, 16), {1, 1, 1}, {16, 16, 1}) {}
  void setup(arch::Gpu& gpu) const override {
    gpu.write_global_f(0, random_floats(256, -5.0, 5.0, 2501));
    gpu.reserve_global(512, 256);
  }
  OutputSpec output() const override { return {512, 256, true}; }
  std::vector<float> host_reference_f() const override {
    const auto a = random_floats(256, -5.0, 5.0, 2501);
    std::vector<float> t(256);
    for (unsigned r = 0; r < 16; ++r)
      for (unsigned c = 0; c < 16; ++c) t[c * 16 + r] = a[r * 16 + c];
    return t;
  }
};

// -- p_sobel ------------------------------------------------------------

class PSobel final : public Micro {
 public:
  PSobel() : Micro("p_sobel", "FP32", "Image",
                   kernels::sobel(256, 1024, 16, 16), {1, 1, 1}, {16, 16, 1}) {}
  void setup(arch::Gpu& gpu) const override {
    gpu.write_global_f(256, random_floats(256, 0.0, 1.0, 2601));
    gpu.reserve_global(1024, 256);
  }
  OutputSpec output() const override { return {1024, 256, true, 1e-4}; }
  std::vector<float> host_reference_f() const override {
    const auto in = random_floats(256, 0.0, 1.0, 2601);
    std::vector<float> out(256, 0.0f);
    auto at = [&](unsigned y, unsigned x) { return in[y * 16 + x]; };
    for (unsigned y = 1; y < 15; ++y)
      for (unsigned x = 1; x < 15; ++x) {
        float gx = at(y - 1, x - 1);
        gx = std::fmaf(at(y, x - 1), 2.0f, gx);
        gx += at(y + 1, x - 1);
        gx = std::fmaf(at(y - 1, x + 1), -1.0f, gx);
        gx = std::fmaf(at(y, x + 1), -2.0f, gx);
        gx = std::fmaf(at(y + 1, x + 1), -1.0f, gx);
        float gy = at(y - 1, x - 1);
        gy = std::fmaf(at(y - 1, x), 2.0f, gy);
        gy += at(y - 1, x + 1);
        gy = std::fmaf(at(y + 1, x - 1), -1.0f, gy);
        gy = std::fmaf(at(y + 1, x), -2.0f, gy);
        gy = std::fmaf(at(y + 1, x + 1), -1.0f, gy);
        out[y * 16 + x] = std::fmaf(gy, gy, gx * gx);
      }
    return out;
  }
};

// -- p_gray_filter ------------------------------------------------------

class PGray final : public Micro {
 public:
  PGray() : Micro("p_gray_filter", "FP32", "Image",
                  kernels::gray_filter(0, 256, 512, 1024, 256), {4, 1, 1},
                  {64, 1, 1}) {}
  void setup(arch::Gpu& gpu) const override {
    gpu.write_global_f(0, random_floats(256, 0.0, 1.0, 2701));
    gpu.write_global_f(256, random_floats(256, 0.0, 1.0, 2702));
    gpu.write_global_f(512, random_floats(256, 0.0, 1.0, 2703));
    gpu.reserve_global(1024, 256);
  }
  OutputSpec output() const override { return {1024, 256, true}; }
  std::vector<float> host_reference_f() const override {
    const auto r = random_floats(256, 0.0, 1.0, 2701);
    const auto g = random_floats(256, 0.0, 1.0, 2702);
    const auto b = random_floats(256, 0.0, 1.0, 2703);
    std::vector<float> out(256);
    for (unsigned i = 0; i < 256; ++i) {
      float acc = r[i] * 0.299f;
      acc = std::fmaf(g[i], 0.587f, acc);
      acc = std::fmaf(b[i], 0.114f, acc);
      out[i] = acc;
    }
    return out;
  }
};

// -- p_scan3d -----------------------------------------------------------

class PScan final : public Micro {
 public:
  PScan() : Micro("p_scan3d", "FP32", "Scan",
                  kernels::scan_inclusive(0, 256, 64), {1, 1, 1}, {64, 1, 1}) {}
  void setup(arch::Gpu& gpu) const override {
    gpu.write_global_f(0, random_floats(64, 0.0, 1.0, 2801));
    gpu.reserve_global(256, 64);
  }
  OutputSpec output() const override { return {256, 64, true, 1e-4}; }
  std::vector<float> host_reference_f() const override {
    const auto a = random_floats(64, 0.0, 1.0, 2801);
    // Hillis-Steele order (not a serial prefix sum): mirror the device.
    std::vector<float> s(a);
    for (unsigned d = 1; d < 64; d *= 2) {
      std::vector<float> nxt(s);
      for (unsigned t = d; t < 64; ++t) nxt[t] = s[t] + s[t - d];
      s = std::move(nxt);
    }
    return s;
  }
};

// -- p_sort (per-thread insertion sort of 8-element chunks) ------------------

class PSort final : public Micro {
 public:
  PSort() : Micro("p_sort", "INT32", "Sorting", build(), {1, 1, 1}, {32, 1, 1}) {}
  void setup(arch::Gpu& gpu) const override {
    gpu.write_global(0, random_ints(256, 0, 100000, 2901));
  }
  OutputSpec output() const override { return {0, 256, false}; }
  std::vector<std::uint32_t> host_reference_u() const override {
    auto v = random_ints(256, 0, 100000, 2901);
    for (unsigned c = 0; c < 32; ++c)
      std::sort(v.begin() + c * 8, v.begin() + (c + 1) * 8);
    return v;
  }

 private:
  static isa::Program build() {
    KernelBuilder kb("p_sort");
    Reg tid = kb.reg(), lo = kb.reg(), hi = kb.reg();
    kb.s2r(tid, SpecialReg::TID_X);
    kb.shl(lo, tid, 3);
    kb.iaddi(hi, lo, 8);
    Reg i = kb.reg(), j = kb.reg(), key = kb.reg(), v = kb.reg(), jm1 = kb.reg();
    kb.iaddi(i, lo, 1);
    auto pout = kb.pred();
    auto pin = kb.pred();
    auto pmove = kb.pred();
    kb.while_(pout, false, [&] { kb.isetp(pout, Cmp::LT, i, hi); },
              [&] {
                kb.ldg(key, i, 0);
                kb.mov(j, i);
                kb.while_(pin, false,
                          [&] {
                            // j > lo && a[j-1] > key
                            kb.movi(v, 0);
                            kb.isetp(pmove, Cmp::GT, j, lo);
                            kb.if_(pmove, false, [&] {
                              kb.iaddi(jm1, j, 0xFFFFFFFFu);
                              kb.ldg(v, jm1, 0);
                              kb.isetp(pmove, Cmp::GT, v, key);
                              kb.on(pmove).movi(v, 1);
                              kb.on(pmove, true).movi(v, 0);
                            });
                            kb.isetpi(pin, Cmp::NE, v, 0);
                          },
                          [&] {
                            kb.iaddi(jm1, j, 0xFFFFFFFFu);
                            kb.ldg(v, jm1, 0);
                            kb.stg(j, 0, v);
                            kb.mov(j, jm1);
                          });
                kb.stg(j, 0, key);
                kb.iaddi(i, i, 1);
              });
    return kb.build();
  }
};

// -- p_fft (one radix-2 butterfly stage with constant-memory twiddles) -------

class PFft final : public Micro {
 public:
  PFft() : Micro("p_fft", "FP32", "Spectral", build(), {1, 1, 1}, {32, 1, 1}) {}
  void setup(arch::Gpu& gpu) const override {
    gpu.write_global_f(0, random_floats(64, -1.0, 1.0, 3001));
    gpu.reserve_global(256, 64);
    const auto tw = twiddles();
    for (unsigned i = 0; i < 32; ++i) gpu.constm()[i] = f32_bits(tw[i]);
  }
  OutputSpec output() const override { return {256, 64, true, 1e-5}; }
  std::vector<float> host_reference_f() const override {
    const auto a = random_floats(64, -1.0, 1.0, 3001);
    const auto tw = twiddles();
    std::vector<float> out(64);
    for (unsigned i = 0; i < 32; ++i) {
      out[i] = a[i] + a[i + 32];
      out[i + 32] = std::fmaf(a[i + 32], -1.0f, a[i]) * tw[i];
    }
    return out;
  }

 private:
  static std::vector<float> twiddles() {
    std::vector<float> tw(32);
    for (unsigned i = 0; i < 32; ++i)
      tw[i] = std::cos(static_cast<float>(i) * 3.14159265f / 32.0f);
    return tw;
  }

  static isa::Program build() {
    KernelBuilder kb("p_fft");
    Reg i = kb.reg(), a = kb.reg(), b = kb.reg(), tw = kb.reg(), t = kb.reg();
    Reg cn1 = kb.reg();
    kb.s2r(i, SpecialReg::TID_X);
    kb.ldg(a, i, 0);
    kb.ldg(b, i, 32);
    kb.ldc(tw, i, 0);
    kb.fadd(t, a, b);
    kb.stg(i, 256, t);
    kb.movf(cn1, -1.0f);
    kb.ffma(t, b, cn1, a);  // a - b
    kb.fmul(t, t, tw);
    kb.stg(i, 256 + 32, t);
    return kb.build();
  }
};

// -- p_nn (distances to a query point) ---------------------------------------

class PNn final : public Micro {
 public:
  PNn() : Micro("p_nn", "FP32", "Data mining", build(), {4, 1, 1}, {64, 1, 1}) {}
  void setup(arch::Gpu& gpu) const override {
    gpu.write_global_f(0, random_floats(256, 0.0, 10.0, 3101));
    gpu.write_global_f(256, random_floats(256, 0.0, 10.0, 3102));
    gpu.reserve_global(512, 256);
  }
  OutputSpec output() const override { return {512, 256, true, 1e-5}; }
  std::vector<float> host_reference_f() const override {
    const auto x = random_floats(256, 0.0, 10.0, 3101);
    const auto y = random_floats(256, 0.0, 10.0, 3102);
    std::vector<float> d(256);
    for (unsigned i = 0; i < 256; ++i) {
      const float dx = x[i] + -5.0f;
      const float dy = y[i] + -5.0f;
      d[i] = std::fmaf(dy, dy, dx * dx);
    }
    return d;
  }

 private:
  static isa::Program build() {
    KernelBuilder kb("p_nn");
    Reg gid = kb.reg(), tid = kb.reg(), cta = kb.reg(), ntid = kb.reg();
    kb.s2r(tid, SpecialReg::TID_X);
    kb.s2r(cta, SpecialReg::CTAID_X);
    kb.s2r(ntid, SpecialReg::NTID_X);
    kb.imad(gid, cta, ntid, tid);
    Reg x = kb.reg(), y = kb.reg(), d = kb.reg();
    kb.ldg(x, gid, 0);
    kb.ldg(y, gid, 256);
    kb.faddf(x, x, -5.0f);
    kb.faddf(y, y, -5.0f);
    kb.fmul(d, x, x);
    kb.ffma(d, y, y, d);
    kb.stg(gid, 512, d);
    return kb.build();
  }
};

// -- p_euler3d (flux accumulation with FSQRT, 64 cells) ----------------------

class PEuler final : public Micro {
 public:
  PEuler() : Micro("p_euler3d", "FP32", "CFD", build(), {1, 1, 1}, {64, 1, 1}) {}
  void setup(arch::Gpu& gpu) const override {
    gpu.write_global_f(0, random_floats(64, 0.5, 2.0, 3201));
    gpu.reserve_global(256, 64);
  }
  OutputSpec output() const override { return {256, 64, true, 1e-4}; }
  std::vector<float> host_reference_f() const override {
    const auto rho = random_floats(64, 0.5, 2.0, 3201);
    std::vector<float> out(64);
    for (unsigned i = 0; i < 64; ++i) {
      const float c = bits_f32(sf::sfu_eval(sf::SfuFunc::Sqrt, f32_bits(rho[i])));
      const float l = rho[(i + 63) % 64], r = rho[(i + 1) % 64];
      float flux = std::fmaf(rho[i], -2.0f, l + r);
      out[i] = std::fmaf(flux * c, 0.1f, rho[i]);
    }
    return out;
  }

 private:
  static isa::Program build() {
    KernelBuilder kb("p_euler3d");
    Reg i = kb.reg(), rho = kb.reg(), c = kb.reg();
    kb.s2r(i, SpecialReg::TID_X);
    kb.ldg(rho, i, 0);
    kb.fsqrt(c, rho);
    Reg il = kb.reg(), ir = kb.reg(), l = kb.reg(), r = kb.reg(), flux = kb.reg();
    kb.iaddi(il, i, 63);
    kb.landi(il, il, 63);
    kb.iaddi(ir, i, 1);
    kb.landi(ir, ir, 63);
    kb.ldg(l, il, 0);
    kb.ldg(r, ir, 0);
    kb.fadd(flux, l, r);
    Reg cn2 = kb.reg(), dt = kb.reg();
    kb.movf(cn2, -2.0f);
    kb.ffma(flux, rho, cn2, flux);
    kb.fmul(flux, flux, c);
    kb.movf(dt, 0.1f);
    kb.ffma(rho, flux, dt, rho);
    kb.stg(i, 256, rho);
    return kb.build();
  }
};

// -- p_backprop (fc forward + outer-product weight update) --------------

class PBackprop final : public AppBase {
 public:
  static constexpr std::uint32_t kIn = 0, kW = 16, kB = 144, kOut = 160,
                                 kErr = 176;

  PBackprop() : AppBase("p_backprop", "FP32", "Deep Learning", "profiling"),
                fwd_(kernels::fully_connected(kIn, kW, kB, kOut, 16, 8,
                                              kernels::Activation::Relu)),
                upd_(build_update()) {}

  void setup(arch::Gpu& gpu) const override {
    gpu.write_global_f(kIn, random_floats(16, 0.0, 1.0, 3301));
    gpu.write_global_f(kW, random_floats(128, -0.5, 0.5, 3302));
    gpu.write_global_f(kB, random_floats(8, -0.1, 0.1, 3303));
    gpu.write_global_f(kErr, random_floats(8, -0.2, 0.2, 3304));
    gpu.reserve_global(kOut, 8);
  }

  RunStats run(arch::Gpu& gpu, std::uint64_t mc) const override {
    RunStats s;
    if (!step(gpu, s, fwd_, {1, 1, 1}, {8, 1, 1}, mc)) return s;
    if (!step(gpu, s, upd_, {1, 1, 1}, {16, 8, 1}, mc)) return s;
    return s;
  }

  OutputSpec output() const override { return {kW, 128, true, 1e-5}; }

  std::vector<float> host_reference_f() const override {
    const auto in = random_floats(16, 0.0, 1.0, 3301);
    auto w = random_floats(128, -0.5, 0.5, 3302);
    const auto err = random_floats(8, -0.2, 0.2, 3304);
    for (unsigned j = 0; j < 8; ++j)
      for (unsigned i = 0; i < 16; ++i)
        w[j * 16 + i] = std::fmaf(0.01f * err[j], in[i], w[j * 16 + i]);
    return w;
  }

 private:
  static isa::Program build_update() {
    KernelBuilder kb("backprop_update");
    Reg i = kb.reg(), j = kb.reg();
    kb.s2r(i, SpecialReg::TID_X);
    kb.s2r(j, SpecialReg::TID_Y);
    Reg e = kb.reg(), x = kb.reg(), wv = kb.reg(), idx = kb.reg(), n = kb.reg();
    kb.ldg(e, j, kErr);
    kb.fmulf(e, e, 0.01f);
    kb.ldg(x, i, kIn);
    kb.movi(n, 16);
    kb.imad(idx, j, n, i);
    kb.ldg(wv, idx, kW);
    kb.ffma(wv, e, x, wv);
    kb.stg(idx, kW, wv);
    return kb.build();
  }

  isa::Program fwd_, upd_;
};

}  // namespace

namespace detail {
std::vector<std::unique_ptr<Workload>> make_micro_apps() {
  std::vector<std::unique_ptr<Workload>> v;
  v.push_back(std::make_unique<PSort>());
  v.push_back(std::make_unique<PVecAdd>());
  v.push_back(std::make_unique<PFft>());
  v.push_back(std::make_unique<PTiledMxm>());
  v.push_back(std::make_unique<PNaiveMxm>());
  v.push_back(std::make_unique<PReduction>());
  v.push_back(std::make_unique<PGray>());
  v.push_back(std::make_unique<PSobel>());
  v.push_back(std::make_unique<PSvm>());
  v.push_back(std::make_unique<PNn>());
  v.push_back(std::make_unique<PScan>());
  v.push_back(std::make_unique<PTranspose>());
  v.push_back(std::make_unique<PEuler>());
  v.push_back(std::make_unique<PBackprop>());
  return v;
}
}  // namespace detail

}  // namespace gpf::workloads
