// Sorting apps. Both are multi-kernel by nature (the paper highlights that
// quicksort/mergesort "instance many kernels"): mergesort launches one kernel
// per doubling pass; quicksort launches one partition kernel per round with
// host-side segment bookkeeping (mirroring CDP-style host orchestration).
#include <algorithm>
#include <memory>

#include "isa/builder.hpp"
#include "workloads/common.hpp"

namespace gpf::workloads {
namespace {

using isa::Cmp;
using isa::KernelBuilder;
using isa::SpecialReg;
using Reg = KernelBuilder::Reg;

// ---------------------------------------------------------------------------
// mergesort — bottom-up, one kernel launch per pass (INT32, 512 elements)
// ---------------------------------------------------------------------------

class MergeSort final : public AppBase {
 public:
  static constexpr std::uint32_t kN = 512;
  static constexpr std::uint32_t kBufA = 0, kBufB = 1024;

  MergeSort() : AppBase("mergesort", "INT32", "Sorting", "CUDA SDK") {
    for (std::uint32_t w = 1; w < kN; w *= 2) {
      const bool a2b = passes_.size() % 2 == 0;
      passes_.push_back(build_pass(a2b ? kBufA : kBufB, a2b ? kBufB : kBufA, w));
    }
  }

  static std::vector<std::uint32_t> input() {
    return AppBase::random_ints(kN, 0, 1000000, 1101);
  }

  void setup(arch::Gpu& gpu) const override {
    gpu.write_global(kBufA, input());
    gpu.reserve_global(kBufB, kN);
  }

  RunStats run(arch::Gpu& gpu, std::uint64_t mc) const override {
    RunStats s;
    for (const auto& prog : passes_) {
      const std::uint32_t width = 1u << (&prog - passes_.data());
      const std::uint32_t threads = kN / (2 * width);
      const std::uint32_t block = std::min(threads, 64u);
      if (!step(gpu, s, prog, {(threads + block - 1) / block, 1, 1}, {block, 1, 1},
                mc))
        return s;
    }
    return s;
  }

  OutputSpec output() const override {
    // 9 passes: final data lands in buffer B.
    return {kBufB, kN, false};
  }

  std::vector<std::uint32_t> host_reference_u() const override {
    auto v = input();
    std::sort(v.begin(), v.end());
    return v;
  }

 private:
  static isa::Program build_pass(std::uint32_t src, std::uint32_t dst,
                                 std::uint32_t width) {
    // Small-width passes stage their runs in shared memory first (the CUDA
    // SDK mergesort sorts short runs entirely in shared memory).
    const bool use_shared = width <= 4;
    KernelBuilder kb("mergesort_pass");
    if (use_shared) kb.set_shared_words(64 * 2 * 4 /*max staged words*/);
    Reg gid = kb.reg(), tid = kb.reg(), cta = kb.reg(), ntid = kb.reg();
    kb.s2r(tid, SpecialReg::TID_X);
    kb.s2r(cta, SpecialReg::CTAID_X);
    kb.s2r(ntid, SpecialReg::NTID_X);
    kb.imad(gid, cta, ntid, tid);
    auto pg = kb.pred();
    kb.isetpi(pg, Cmp::LT, gid, kN / (2 * width));
    kb.if_(pg, false, [&] {
      Reg lo = kb.reg(), mid = kb.reg(), hi = kb.reg();
      kb.imuli(lo, gid, 2 * width);
      kb.iaddi(mid, lo, width);
      kb.iaddi(hi, lo, 2 * width);
      Reg slo = kb.reg();
      if (use_shared) {
        // Stage this thread's 2*width source words into shared memory and
        // merge from there. Shared base = tid * 2*width; indices i/j/..
        // are rebased so the merge loop below reads shared via slo offset.
        kb.imuli(slo, tid, 2 * width);
        Reg cnt = kb.reg(), sidx = kb.reg(), gidx = kb.reg(), sv = kb.reg();
        Reg bound = kb.reg();
        kb.movi(bound, 2 * width);
        kb.for_lt(cnt, 0, bound, 1, [&] {
          kb.iadd(gidx, lo, cnt);
          kb.ldg(sv, gidx, src);
          kb.iadd(sidx, slo, cnt);
          kb.sts(sidx, 0, sv);
        });
      }
      Reg i = kb.reg(), j = kb.reg(), k = kb.reg();
      kb.mov(i, lo);
      kb.mov(j, mid);
      kb.mov(k, lo);
      Reg ai = kb.reg(), aj = kb.reg(), v = kb.reg(), flag = kb.reg();
      auto ploop = kb.pred();
      auto pi = kb.pred();
      auto pcmp = kb.pred();
      kb.while_(ploop, false, [&] { kb.isetp(ploop, Cmp::LT, k, hi); },
                [&] {
                  // pick-from-left flag: i < mid && (j >= hi || a[i] <= a[j]).
                  kb.movi(flag, 0);
                  kb.isetp(pi, Cmp::LT, i, mid);
                  kb.if_(pi, false, [&] {
                    kb.movi(flag, 1);
                    kb.isetp(pcmp, Cmp::LT, j, hi);
                    kb.if_(pcmp, false, [&] {
                      if (use_shared) {
                        Reg si = kb.reg(), sj = kb.reg();
                        kb.isub(si, i, lo);
                        kb.iadd(si, si, slo);
                        kb.lds(ai, si, 0);
                        kb.isub(sj, j, lo);
                        kb.iadd(sj, sj, slo);
                        kb.lds(aj, sj, 0);
                      } else {
                        kb.ldg(ai, i, src);
                        kb.ldg(aj, j, src);
                      }
                      kb.isetp(pcmp, Cmp::GT, ai, aj);
                      kb.on(pcmp).movi(flag, 0);
                    });
                  });
                  kb.isetpi(pi, Cmp::NE, flag, 0);
                  Reg sidx2 = kb.reg();
                  kb.if_(pi, false,
                         [&] {
                           if (use_shared) {
                             kb.isub(sidx2, i, lo);
                             kb.iadd(sidx2, sidx2, slo);
                             kb.lds(v, sidx2, 0);
                           } else {
                             kb.ldg(v, i, src);
                           }
                           kb.iaddi(i, i, 1);
                         },
                         [&] {
                           if (use_shared) {
                             kb.isub(sidx2, j, lo);
                             kb.iadd(sidx2, sidx2, slo);
                             kb.lds(v, sidx2, 0);
                           } else {
                             kb.ldg(v, j, src);
                           }
                           kb.iaddi(j, j, 1);
                         });
                  kb.stg(k, dst, v);
                  kb.iaddi(k, k, 1);
                });
    });
    return kb.build();
  }

  std::vector<isa::Program> passes_;
};

// ---------------------------------------------------------------------------
// quicksort — host-orchestrated rounds of parallel segment partitions
// ---------------------------------------------------------------------------

class QuickSort final : public AppBase {
 public:
  static constexpr std::uint32_t kN = 256;
  static constexpr std::uint32_t kData = 0, kSegs = 1024, kPivotPos = 2048;
  static constexpr std::uint32_t kMaxSegs = 256;

  QuickSort() : AppBase("quicksort", "INT32", "Sorting", "CUDA SDK"),
                partition_(build_partition()) {}

  static std::vector<std::uint32_t> input() {
    return AppBase::random_ints(kN, 0, 1000000, 1201);
  }

  void setup(arch::Gpu& gpu) const override {
    gpu.write_global(kData, input());
    gpu.reserve_global(kSegs, 2 * kMaxSegs + 1);
    gpu.reserve_global(kPivotPos, kMaxSegs);
  }

  RunStats run(arch::Gpu& gpu, std::uint64_t mc) const override {
    RunStats s;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> segs{{0, kN}};
    for (int round = 0; round < 64 && !segs.empty(); ++round) {
      const auto nsegs = static_cast<std::uint32_t>(std::min<std::size_t>(
          segs.size(), kMaxSegs));
      std::vector<std::uint32_t> seg_words;
      seg_words.reserve(2 * nsegs + 1);
      seg_words.push_back(nsegs);
      for (std::uint32_t t = 0; t < nsegs; ++t) {
        seg_words.push_back(segs[t].first);
        seg_words.push_back(segs[t].second);
      }
      gpu.write_global(kSegs, seg_words);
      const std::uint32_t block = std::min(nsegs, 64u);
      if (!step(gpu, s, partition_, {(nsegs + block - 1) / block, 1, 1},
                {block, 1, 1}, mc))
        return s;
      // Host bookkeeping: read pivot positions, emit child segments.
      std::vector<std::pair<std::uint32_t, std::uint32_t>> next(
          segs.begin() + nsegs, segs.end());
      for (std::uint32_t t = 0; t < nsegs; ++t) {
        const std::uint32_t lo = segs[t].first, hi = segs[t].second;
        const std::uint32_t p = gpu.global()[kPivotPos + t];
        if (p > lo + 1) next.emplace_back(lo, p);
        if (hi > p + 2) next.emplace_back(p + 1, hi);
      }
      segs = std::move(next);
    }
    return s;
  }

  OutputSpec output() const override { return {kData, kN, false}; }

  std::vector<std::uint32_t> host_reference_u() const override {
    auto v = input();
    std::sort(v.begin(), v.end());
    return v;
  }

 private:
  /// Lomuto partition of segment [lo, hi) around a[hi-1]; one thread per
  /// segment, pivot's final index written to kPivotPos[t].
  static isa::Program build_partition() {
    KernelBuilder kb("quicksort_partition");
    Reg gid = kb.reg(), tid = kb.reg(), cta = kb.reg(), ntid = kb.reg();
    kb.s2r(tid, SpecialReg::TID_X);
    kb.s2r(cta, SpecialReg::CTAID_X);
    kb.s2r(ntid, SpecialReg::NTID_X);
    kb.imad(gid, cta, ntid, tid);
    Reg nsegs = kb.reg();
    kb.movi(nsegs, 0);
    kb.ldg(nsegs, nsegs, kSegs);
    auto pg = kb.pred();
    kb.isetp(pg, Cmp::LT, gid, nsegs);
    kb.if_(pg, false, [&] {
      Reg lo = kb.reg(), hi = kb.reg(), sidx = kb.reg();
      kb.shl(sidx, gid, 1);
      kb.ldg(lo, sidx, kSegs + 1);
      kb.ldg(hi, sidx, kSegs + 2);
      Reg last = kb.reg(), pivot = kb.reg();
      kb.iaddi(last, hi, 0xFFFFFFFFu);  // hi - 1
      kb.ldg(pivot, last, kData);
      Reg i = kb.reg(), j = kb.reg(), vj = kb.reg(), vi = kb.reg();
      kb.mov(i, lo);
      kb.mov(j, lo);
      auto ploop = kb.pred();
      auto pless = kb.pred();
      kb.while_(ploop, false, [&] { kb.isetp(ploop, Cmp::LT, j, last); },
                [&] {
                  kb.ldg(vj, j, kData);
                  kb.isetp(pless, Cmp::LT, vj, pivot);
                  kb.if_(pless, false, [&] {
                    kb.ldg(vi, i, kData);
                    kb.stg(i, kData, vj);
                    kb.stg(j, kData, vi);
                    kb.iaddi(i, i, 1);
                  });
                  kb.iaddi(j, j, 1);
                });
      // Swap pivot into place.
      kb.ldg(vi, i, kData);
      kb.stg(i, kData, pivot);
      kb.stg(last, kData, vi);
      kb.stg(gid, kPivotPos, i);
    });
    return kb.build();
  }

  isa::Program partition_;
};

}  // namespace

namespace detail {
std::vector<std::unique_ptr<Workload>> make_sort_apps() {
  std::vector<std::unique_ptr<Workload>> v;
  v.push_back(std::make_unique<QuickSort>());
  v.push_back(std::make_unique<MergeSort>());
  return v;
}
}  // namespace detail

}  // namespace gpf::workloads
