// Internal helpers for workload implementations.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "workloads/workload.hpp"

namespace gpf::workloads {

/// Metadata-carrying base; derived apps implement setup/run/output/reference.
class AppBase : public Workload {
 public:
  AppBase(std::string name, std::string data_type, std::string domain,
          std::string suite)
      : name_(std::move(name)), data_type_(std::move(data_type)),
        domain_(std::move(domain)), suite_(std::move(suite)) {}

  std::string_view name() const override { return name_; }
  std::string_view data_type() const override { return data_type_; }
  std::string_view domain() const override { return domain_; }
  std::string_view suite() const override { return suite_; }

 protected:
  /// Launch helper: run one kernel, fold into stats, return false on trap.
  static bool step(arch::Gpu& gpu, RunStats& stats, const isa::Program& prog,
                   arch::Dim3 grid, arch::Dim3 block, std::uint64_t max_cycles) {
    const arch::LaunchResult r = gpu.launch(prog, grid, block, max_cycles);
    stats.accumulate(r);
    return r.ok;
  }

  /// Deterministic input vector in [lo, hi).
  static std::vector<float> random_floats(std::size_t n, double lo, double hi,
                                          std::uint64_t seed) {
    Rng rng(seed);
    std::vector<float> v(n);
    for (auto& x : v) x = static_cast<float>(rng.uniform(lo, hi));
    return v;
  }

  static std::vector<std::uint32_t> random_ints(std::size_t n, std::uint32_t lo,
                                                std::uint32_t hi, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::uint32_t> v(n);
    for (auto& x : v)
      x = lo + static_cast<std::uint32_t>(rng.below(hi - lo));
    return v;
  }

 private:
  std::string name_, data_type_, domain_, suite_;
};

}  // namespace gpf::workloads
