// Workload registry: the 15 evaluation applications of Table 1, the t-MxM
// mini-app, and the 14 micro-workloads used for gate-level unit profiling.
// Every workload is deterministic (fixed seeds), provides a host reference
// for validation, and runs as one or more kernel launches on the GPU model.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "arch/machine.hpp"

namespace gpf::workloads {

struct OutputSpec {
  std::size_t addr = 0;
  std::size_t words = 0;
  bool is_float = true;
  /// Relative tolerance for host-reference validation only (fault-injection
  /// outcome classification is always bit-exact against the fault-free run).
  double tolerance = 1e-5;
};

struct RunStats {
  bool ok = false;
  arch::TrapKind trap = arch::TrapKind::None;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::size_t launches = 0;
  std::array<std::uint64_t, 6> unit_issues{};

  void accumulate(const arch::LaunchResult& r);
};

class Workload {
 public:
  virtual ~Workload() = default;
  virtual std::string_view name() const = 0;
  virtual std::string_view data_type() const = 0;
  virtual std::string_view domain() const = 0;
  virtual std::string_view suite() const = 0;

  /// Write deterministic inputs into GPU memory.
  virtual void setup(arch::Gpu& gpu) const = 0;
  /// Launch every kernel of the app; stops at the first trap.
  /// `max_cycles` bounds each launch (0 = config watchdog).
  virtual RunStats run(arch::Gpu& gpu, std::uint64_t max_cycles = 0) const = 0;
  virtual OutputSpec output() const = 0;

  /// Host-computed expected output (floats or raw words, matching
  /// output().is_float). Used by validation tests.
  virtual std::vector<float> host_reference_f() const { return {}; }
  virtual std::vector<std::uint32_t> host_reference_u() const { return {}; }
};

/// The 15 applications of Table 1 (in table order).
std::vector<const Workload*> evaluation_set();
/// The 14 workloads used for low-level unit profiling (Section 5).
std::vector<const Workload*> profiling_set();
const Workload* find(std::string_view name);

/// Convenience: fault-free output words of a workload.
std::vector<std::uint32_t> golden_output(const Workload& w, arch::Gpu& gpu);

}  // namespace gpf::workloads
