#include "workloads/workload.hpp"

#include <memory>
#include <stdexcept>

namespace gpf::workloads {

void RunStats::accumulate(const arch::LaunchResult& r) {
  ++launches;
  cycles += r.cycles;
  instructions += r.instructions;
  for (std::size_t i = 0; i < unit_issues.size(); ++i)
    unit_issues[i] += r.unit_issues[i];
  ok = r.ok;
  if (!r.ok) trap = r.trap;
}

// Factories implemented across the app translation units.
namespace detail {
std::vector<std::unique_ptr<Workload>> make_linear_apps();    // vectoradd mxm gemm
std::vector<std::unique_ptr<Workload>> make_rodinia_apps();   // lava hotspot gaussian bfs lud nw cfd
std::vector<std::unique_ptr<Workload>> make_sort_apps();      // quicksort mergesort
std::vector<std::unique_ptr<Workload>> make_graph_apps();     // accl
std::vector<std::unique_ptr<Workload>> make_dnn_apps();       // lenet yolov3
std::vector<std::unique_ptr<Workload>> make_micro_apps();     // 14 profiling micro-workloads
std::vector<std::unique_ptr<Workload>> make_tmxm_apps();      // t-MxM mini-app variants
}  // namespace detail

namespace {

const std::vector<std::unique_ptr<Workload>>& all_workloads() {
  static const std::vector<std::unique_ptr<Workload>> all = [] {
    std::vector<std::unique_ptr<Workload>> v;
    for (auto maker : {detail::make_linear_apps, detail::make_rodinia_apps,
                       detail::make_sort_apps, detail::make_graph_apps,
                       detail::make_dnn_apps, detail::make_micro_apps,
                       detail::make_tmxm_apps}) {
      auto part = maker();
      for (auto& w : part) v.push_back(std::move(w));
    }
    return v;
  }();
  return all;
}

std::vector<const Workload*> pick(std::initializer_list<std::string_view> names) {
  std::vector<const Workload*> out;
  for (auto n : names) {
    const Workload* w = find(n);
    if (!w) throw std::logic_error("workload registry missing: " + std::string(n));
    out.push_back(w);
  }
  return out;
}

}  // namespace

const Workload* find(std::string_view name) {
  for (const auto& w : all_workloads())
    if (w->name() == name) return w.get();
  return nullptr;
}

std::vector<const Workload*> evaluation_set() {
  // Table 1 order.
  return pick({"vectoradd", "lava", "mxm", "gemm", "hotspot", "gaussian", "bfs",
               "lud", "accl", "nw", "cfd", "quicksort", "mergesort", "lenet",
               "yolov3"});
}

std::vector<const Workload*> profiling_set() {
  // The 14 representative workloads of the low-level characterization.
  return pick({"p_sort", "p_vector_add", "p_fft", "p_tiled_mxm", "p_naive_mxm",
               "p_reduction", "p_gray_filter", "p_sobel", "p_svm", "p_nn",
               "p_scan3d", "p_transpose", "p_euler3d", "p_backprop"});
}

std::vector<std::uint32_t> golden_output(const Workload& w, arch::Gpu& gpu) {
  gpu.clear_memories();
  w.setup(gpu);
  const RunStats stats = w.run(gpu);
  if (!stats.ok) throw std::runtime_error("golden run failed for " +
                                          std::string(w.name()));
  const OutputSpec spec = w.output();
  return {gpu.global().begin() + static_cast<std::ptrdiff_t>(spec.addr),
          gpu.global().begin() + static_cast<std::ptrdiff_t>(spec.addr + spec.words)};
}

}  // namespace gpf::workloads
