// Deep-learning apps. LeNet is a faithful small conv-pool-conv-pool-fc
// network; yolov3 is the documented scaled-down substitution (DESIGN.md §6):
// a convolutional detection pipeline with leaky-ReLU stacks that exercises
// the same conv / pool / pointwise kernels and multi-launch structure as
// Darknet's YOLOv3 at simulator-tractable size.
#include <cmath>
#include <memory>

#include "workloads/common.hpp"
#include "workloads/kernels.hpp"

namespace gpf::workloads {
namespace {

using kernels::Activation;
using kernels::ConvDims;

// Host-side replicas of the device kernels (same fmaf accumulation order).
std::vector<float> host_conv(const std::vector<float>& in,
                             const std::vector<float>& w,
                             const std::vector<float>& bias, const ConvDims& d,
                             Activation act) {
  const std::uint32_t oh = d.in_h - d.k + 1, ow = d.in_w - d.k + 1;
  std::vector<float> out(d.out_c * oh * ow);
  for (std::uint32_t f = 0; f < d.out_c; ++f)
    for (std::uint32_t oy = 0; oy < oh; ++oy)
      for (std::uint32_t ox = 0; ox < ow; ++ox) {
        float acc = bias[f];
        for (std::uint32_t c = 0; c < d.in_c; ++c)
          for (std::uint32_t ky = 0; ky < d.k; ++ky)
            for (std::uint32_t kx = 0; kx < d.k; ++kx) {
              const float iv = in[c * d.in_h * d.in_w + (oy + ky) * d.in_w + ox + kx];
              const float wv = w[((f * d.in_c + c) * d.k + ky) * d.k + kx];
              acc = std::fmaf(iv, wv, acc);
            }
        if (act == Activation::Relu) acc = std::fmax(acc, 0.0f);
        if (act == Activation::Leaky) acc = std::fmax(acc, acc * 0.1f);
        out[f * oh * ow + oy * ow + ox] = acc;
      }
  return out;
}

std::vector<float> host_pool(const std::vector<float>& in, std::uint32_t c,
                             std::uint32_t h, std::uint32_t w) {
  const std::uint32_t oh = h / 2, ow = w / 2;
  std::vector<float> out(c * oh * ow);
  for (std::uint32_t ch = 0; ch < c; ++ch)
    for (std::uint32_t oy = 0; oy < oh; ++oy)
      for (std::uint32_t ox = 0; ox < ow; ++ox) {
        const std::uint32_t i = ch * h * w + 2 * oy * w + 2 * ox;
        float m = std::fmax(in[i], in[i + 1]);
        m = std::fmax(m, in[i + w]);
        m = std::fmax(m, in[i + w + 1]);
        out[ch * oh * ow + oy * ow + ox] = m;
      }
  return out;
}

std::vector<float> host_fc(const std::vector<float>& in, const std::vector<float>& w,
                           const std::vector<float>& bias, std::uint32_t in_n,
                           std::uint32_t out_n) {
  std::vector<float> out(out_n);
  for (std::uint32_t j = 0; j < out_n; ++j) {
    float acc = bias[j];
    for (std::uint32_t i = 0; i < in_n; ++i)
      acc = std::fmaf(w[j * in_n + i], in[i], acc);
    out[j] = acc;
  }
  return out;
}

// ---------------------------------------------------------------------------
// lenet — conv(5x5,1->4) pool conv(3x3,4->8) pool fc(32->10), 16x16 input
// ---------------------------------------------------------------------------

class LeNet final : public AppBase {
 public:
  // Memory map (word addresses).
  static constexpr std::uint32_t kIn = 0;        // 1x16x16  = 256
  static constexpr std::uint32_t kW1 = 256;      // 4x1x5x5  = 100
  static constexpr std::uint32_t kB1 = 356;      // 4
  static constexpr std::uint32_t kOut1 = 512;    // 4x12x12  = 576
  static constexpr std::uint32_t kPool1 = 1088;  // 4x6x6    = 144
  static constexpr std::uint32_t kW2 = 1232;     // 8x4x3x3  = 288
  static constexpr std::uint32_t kB2 = 1520;     // 8
  static constexpr std::uint32_t kOut2 = 1536;   // 8x4x4    = 128
  static constexpr std::uint32_t kPool2 = 1664;  // 8x2x2    = 32
  static constexpr std::uint32_t kW3 = 1696;     // 10x32    = 320
  static constexpr std::uint32_t kB3 = 2016;     // 10
  static constexpr std::uint32_t kOut = 2048;    // 10

  static constexpr ConvDims kC1{1, 16, 16, 5, 4};
  static constexpr ConvDims kC2{4, 6, 6, 3, 8};

  LeNet() : AppBase("lenet", "FP32", "Deep Learning", "Darknet"),
            conv1_(kernels::conv2d(kIn, kW1, kB1, kOut1, kC1, Activation::Relu)),
            pool1_(kernels::maxpool2(kOut1, kPool1, 4, 12, 12)),
            conv2_(kernels::conv2d(kPool1, kW2, kB2, kOut2, kC2, Activation::Relu)),
            pool2_(kernels::maxpool2(kOut2, kPool2, 8, 4, 4)),
            fc_(kernels::fully_connected(kPool2, kW3, kB3, kOut, 32, 10,
                                         Activation::None)) {}

  void setup(arch::Gpu& gpu) const override {
    gpu.write_global_f(kIn, random_floats(256, 0.0, 1.0, 1401));
    gpu.write_global_f(kW1, random_floats(100, -0.5, 0.5, 1402));
    gpu.write_global_f(kB1, random_floats(4, -0.1, 0.1, 1403));
    gpu.write_global_f(kW2, random_floats(288, -0.5, 0.5, 1404));
    gpu.write_global_f(kB2, random_floats(8, -0.1, 0.1, 1405));
    gpu.write_global_f(kW3, random_floats(320, -0.5, 0.5, 1406));
    gpu.write_global_f(kB3, random_floats(10, -0.1, 0.1, 1407));
    gpu.reserve_global(kOut1, 576);
    gpu.reserve_global(kPool1, 144);
    gpu.reserve_global(kOut2, 128);
    gpu.reserve_global(kPool2, 32);
    gpu.reserve_global(kOut, 10);
  }

  RunStats run(arch::Gpu& gpu, std::uint64_t mc) const override {
    RunStats s;
    if (!step(gpu, s, conv1_, {4, 1, 1}, {12, 12, 1}, mc)) return s;
    if (!step(gpu, s, pool1_, {4, 1, 1}, {6, 6, 1}, mc)) return s;
    if (!step(gpu, s, conv2_, {8, 1, 1}, {4, 4, 1}, mc)) return s;
    if (!step(gpu, s, pool2_, {8, 1, 1}, {2, 2, 1}, mc)) return s;
    if (!step(gpu, s, fc_, {1, 1, 1}, {10, 1, 1}, mc)) return s;
    return s;
  }

  OutputSpec output() const override { return {kOut, 10, true, 1e-4}; }

  std::vector<float> host_reference_f() const override {
    const auto in = random_floats(256, 0.0, 1.0, 1401);
    const auto w1 = random_floats(100, -0.5, 0.5, 1402);
    const auto b1 = random_floats(4, -0.1, 0.1, 1403);
    const auto w2 = random_floats(288, -0.5, 0.5, 1404);
    const auto b2 = random_floats(8, -0.1, 0.1, 1405);
    const auto w3 = random_floats(320, -0.5, 0.5, 1406);
    const auto b3 = random_floats(10, -0.1, 0.1, 1407);
    auto x = host_conv(in, w1, b1, kC1, Activation::Relu);
    x = host_pool(x, 4, 12, 12);
    x = host_conv(x, w2, b2, kC2, Activation::Relu);
    x = host_pool(x, 8, 4, 4);
    return host_fc(x, w3, b3, 32, 10);
  }

 private:
  isa::Program conv1_, pool1_, conv2_, pool2_, fc_;
};

// ---------------------------------------------------------------------------
// yolov3 — scaled-down convolutional detection pipeline (see DESIGN.md §6)
// ---------------------------------------------------------------------------

class YoloV3 final : public AppBase {
 public:
  static constexpr std::uint32_t kIn = 0;        // 3x16x16 = 768
  static constexpr std::uint32_t kW1 = 768;      // 8x3x3x3 = 216
  static constexpr std::uint32_t kB1 = 984;      // 8
  static constexpr std::uint32_t kOut1 = 1024;   // 8x14x14 = 1568
  static constexpr std::uint32_t kPool1 = 2592;  // 8x7x7   = 392
  static constexpr std::uint32_t kW2 = 2984;     // 16x8x3x3 = 1152
  static constexpr std::uint32_t kB2 = 4136;     // 16
  static constexpr std::uint32_t kOut2 = 4160;   // 16x5x5  = 400
  static constexpr std::uint32_t kW3 = 4560;     // 8x16x1x1 = 128
  static constexpr std::uint32_t kB3 = 4688;     // 8
  static constexpr std::uint32_t kOut3 = 4704;   // 8x5x5   = 200
  static constexpr std::uint32_t kW4 = 4904;     // 12x8x3x3 = 864
  static constexpr std::uint32_t kB4 = 5768;     // 12
  static constexpr std::uint32_t kDet = 5792;    // 12x3x3  = 108

  static constexpr ConvDims kC1{3, 16, 16, 3, 8};
  static constexpr ConvDims kC2{8, 7, 7, 3, 16};
  static constexpr ConvDims kC3{16, 5, 5, 1, 8};
  static constexpr ConvDims kC4{8, 5, 5, 3, 12};

  YoloV3() : AppBase("yolov3", "FP32", "Deep Learning", "Darknet"),
             conv1_(kernels::conv2d(kIn, kW1, kB1, kOut1, kC1, Activation::Leaky)),
             pool1_(kernels::maxpool2(kOut1, kPool1, 8, 14, 14)),
             conv2_(kernels::conv2d(kPool1, kW2, kB2, kOut2, kC2, Activation::Leaky)),
             conv3_(kernels::conv2d(kOut2, kW3, kB3, kOut3, kC3, Activation::Leaky)),
             conv4_(kernels::conv2d(kOut3, kW4, kB4, kDet, kC4, Activation::None)) {}

  void setup(arch::Gpu& gpu) const override {
    gpu.write_global_f(kIn, random_floats(768, 0.0, 1.0, 1501));
    gpu.write_global_f(kW1, random_floats(216, -0.3, 0.3, 1502));
    gpu.write_global_f(kB1, random_floats(8, -0.1, 0.1, 1503));
    gpu.write_global_f(kW2, random_floats(1152, -0.3, 0.3, 1504));
    gpu.write_global_f(kB2, random_floats(16, -0.1, 0.1, 1505));
    gpu.write_global_f(kW3, random_floats(128, -0.3, 0.3, 1506));
    gpu.write_global_f(kB3, random_floats(8, -0.1, 0.1, 1507));
    gpu.write_global_f(kW4, random_floats(864, -0.3, 0.3, 1508));
    gpu.write_global_f(kB4, random_floats(12, -0.1, 0.1, 1509));
    gpu.reserve_global(kOut1, 1568);
    gpu.reserve_global(kPool1, 392);
    gpu.reserve_global(kOut2, 400);
    gpu.reserve_global(kOut3, 200);
    gpu.reserve_global(kDet, 108);
  }

  RunStats run(arch::Gpu& gpu, std::uint64_t mc) const override {
    RunStats s;
    if (!step(gpu, s, conv1_, {8, 1, 1}, {14, 14, 1}, mc)) return s;
    if (!step(gpu, s, pool1_, {8, 1, 1}, {7, 7, 1}, mc)) return s;
    if (!step(gpu, s, conv2_, {16, 1, 1}, {5, 5, 1}, mc)) return s;
    if (!step(gpu, s, conv3_, {8, 1, 1}, {5, 5, 1}, mc)) return s;
    if (!step(gpu, s, conv4_, {12, 1, 1}, {3, 3, 1}, mc)) return s;
    return s;
  }

  OutputSpec output() const override { return {kDet, 108, true, 1e-4}; }

  std::vector<float> host_reference_f() const override {
    const auto in = random_floats(768, 0.0, 1.0, 1501);
    const auto w1 = random_floats(216, -0.3, 0.3, 1502);
    const auto b1 = random_floats(8, -0.1, 0.1, 1503);
    const auto w2 = random_floats(1152, -0.3, 0.3, 1504);
    const auto b2 = random_floats(16, -0.1, 0.1, 1505);
    const auto w3 = random_floats(128, -0.3, 0.3, 1506);
    const auto b3 = random_floats(8, -0.1, 0.1, 1507);
    const auto w4 = random_floats(864, -0.3, 0.3, 1508);
    const auto b4 = random_floats(12, -0.1, 0.1, 1509);
    auto x = host_conv(in, w1, b1, kC1, Activation::Leaky);
    x = host_pool(x, 8, 14, 14);
    x = host_conv(x, w2, b2, kC2, Activation::Leaky);
    x = host_conv(x, w3, b3, kC3, Activation::Leaky);
    return host_conv(x, w4, b4, kC4, Activation::None);
  }

 private:
  isa::Program conv1_, pool1_, conv2_, conv3_, conv4_;
};

}  // namespace

namespace detail {
std::vector<std::unique_ptr<Workload>> make_dnn_apps() {
  std::vector<std::unique_ptr<Workload>> v;
  v.push_back(std::make_unique<LeNet>());
  v.push_back(std::make_unique<YoloV3>());
  return v;
}
}  // namespace detail

}  // namespace gpf::workloads
