// Linear-algebra evaluation apps: vectoradd, mxm (naive), gemm (Table 1).
#include <cmath>
#include <memory>

#include "workloads/common.hpp"
#include "workloads/kernels.hpp"

namespace gpf::workloads {
namespace {

// ---------------------------------------------------------------------------
// vectoradd — CUDA SDK, FP32, 1024 elements
// ---------------------------------------------------------------------------

class VectorAdd final : public AppBase {
 public:
  static constexpr std::uint32_t kN = 1024;
  static constexpr std::uint32_t kA = 0, kB = 4096, kOut = 8192;

  VectorAdd() : AppBase("vectoradd", "FP32", "Linear algebra", "CUDA SDK"),
                prog_(kernels::vecadd(kA, kB, kOut, kN)) {}

  void setup(arch::Gpu& gpu) const override {
    gpu.write_global_f(kA, random_floats(kN, -100.0, 100.0, 101));
    gpu.write_global_f(kB, random_floats(kN, -100.0, 100.0, 102));
    gpu.reserve_global(kOut, kN);
  }

  RunStats run(arch::Gpu& gpu, std::uint64_t mc) const override {
    RunStats s;
    step(gpu, s, prog_, {8, 1, 1}, {128, 1, 1}, mc);
    return s;
  }

  OutputSpec output() const override { return {kOut, kN, true}; }

  std::vector<float> host_reference_f() const override {
    const auto a = random_floats(kN, -100.0, 100.0, 101);
    const auto b = random_floats(kN, -100.0, 100.0, 102);
    std::vector<float> out(kN);
    for (std::uint32_t i = 0; i < kN; ++i) out[i] = a[i] + b[i];
    return out;
  }

 private:
  isa::Program prog_;
};

// ---------------------------------------------------------------------------
// mxm — naive matrix multiply, 16x16
// ---------------------------------------------------------------------------

class Mxm final : public AppBase {
 public:
  static constexpr std::uint32_t kN = 16;
  static constexpr std::uint32_t kA = 0, kB = 1024, kC = 2048;

  static constexpr std::uint32_t kTile = 8;

  // The CUDA SDK matrixMul uses shared-memory tiles; so does this kernel.
  Mxm() : AppBase("mxm", "FP32", "Linear algebra", "CUDA SDK"),
          prog_(kernels::tiled_matmul(kA, kB, kC, kN, kTile)) {}

  void setup(arch::Gpu& gpu) const override {
    gpu.write_global_f(kA, random_floats(kN * kN, -4.0, 4.0, 201));
    gpu.write_global_f(kB, random_floats(kN * kN, -4.0, 4.0, 202));
    gpu.reserve_global(kC, kN * kN);
  }

  RunStats run(arch::Gpu& gpu, std::uint64_t mc) const override {
    RunStats s;
    step(gpu, s, prog_, {kN / kTile, kN / kTile, 1}, {kTile, kTile, 1}, mc);
    return s;
  }

  OutputSpec output() const override { return {kC, kN * kN, true}; }

  std::vector<float> host_reference_f() const override {
    const auto a = random_floats(kN * kN, -4.0, 4.0, 201);
    const auto b = random_floats(kN * kN, -4.0, 4.0, 202);
    std::vector<float> c(kN * kN, 0.0f);
    for (std::uint32_t r = 0; r < kN; ++r)
      for (std::uint32_t cc = 0; cc < kN; ++cc) {
        float acc = 0.0f;
        for (std::uint32_t k = 0; k < kN; ++k)
          acc = std::fmaf(a[r * kN + k], b[k * kN + cc], acc);
        c[r * kN + cc] = acc;
      }
    return c;
  }

 private:
  isa::Program prog_;
};

// ---------------------------------------------------------------------------
// gemm — C = alpha*A*B + beta*C, 16x16
// ---------------------------------------------------------------------------

class Gemm final : public AppBase {
 public:
  static constexpr std::uint32_t kN = 16;
  static constexpr std::uint32_t kA = 0, kB = 1024, kC = 2048;
  static constexpr float kAlpha = 1.5f, kBeta = 0.5f;

  Gemm() : AppBase("gemm", "FP32", "Linear algebra", "CUDA SDK"),
           prog_(kernels::gemm(kA, kB, kC, kN, kAlpha, kBeta)) {}

  void setup(arch::Gpu& gpu) const override {
    gpu.write_global_f(kA, random_floats(kN * kN, -2.0, 2.0, 301));
    gpu.write_global_f(kB, random_floats(kN * kN, -2.0, 2.0, 302));
    gpu.write_global_f(kC, random_floats(kN * kN, -1.0, 1.0, 303));
  }

  RunStats run(arch::Gpu& gpu, std::uint64_t mc) const override {
    RunStats s;
    step(gpu, s, prog_, {1, 1, 1}, {kN, kN, 1}, mc);
    return s;
  }

  OutputSpec output() const override { return {kC, kN * kN, true}; }

  std::vector<float> host_reference_f() const override {
    const auto a = random_floats(kN * kN, -2.0, 2.0, 301);
    const auto b = random_floats(kN * kN, -2.0, 2.0, 302);
    auto c = random_floats(kN * kN, -1.0, 1.0, 303);
    for (std::uint32_t r = 0; r < kN; ++r)
      for (std::uint32_t cc = 0; cc < kN; ++cc) {
        float acc = 0.0f;
        for (std::uint32_t k = 0; k < kN; ++k)
          acc = std::fmaf(a[r * kN + k], b[k * kN + cc], acc);
        c[r * kN + cc] = acc * kAlpha + c[r * kN + cc] * kBeta;
      }
    return c;
  }

 private:
  isa::Program prog_;
};

}  // namespace

namespace detail {
std::vector<std::unique_ptr<Workload>> make_linear_apps() {
  std::vector<std::unique_ptr<Workload>> v;
  v.push_back(std::make_unique<VectorAdd>());
  v.push_back(std::make_unique<Mxm>());
  v.push_back(std::make_unique<Gemm>());
  return v;
}
}  // namespace detail

}  // namespace gpf::workloads
