// t-MxM mini-app support: tile-type inputs (Max / Zero / Random) used by the
// RTL characterization campaigns (Figs. 7-9, Table 2).
#pragma once

#include <cstdint>
#include <vector>

namespace gpf::workloads {

enum class TileType : std::uint8_t { Max, Zero, Random };
const char* tile_type_name(TileType t);

/// Deterministic n x n matrix of the given tile flavour.
std::vector<float> tmxm_input(TileType type, std::uint64_t seed, std::uint32_t n);

/// Host reference multiply (fmaf accumulation, row-major, k ascending —
/// bit-identical to the device kernel's accumulation order).
std::vector<float> tmxm_host_multiply(const std::vector<float>& a,
                                      const std::vector<float>& b, std::uint32_t n);

}  // namespace gpf::workloads
