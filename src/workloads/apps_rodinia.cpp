// Rodinia-style evaluation apps: lava (N-body), hotspot (structured grid),
// gaussian (elimination), bfs (graphs), lud (LU decomposition), nw (dynamic
// programming), cfd (unstructured grid). Multi-kernel structure mirrors the
// originals: gaussian/lud launch two kernels per elimination step, nw one
// kernel per anti-diagonal wave, bfs one pair of kernels per level.
#include <algorithm>
#include <cmath>
#include <memory>

#include "common/bitops.hpp"
#include "isa/builder.hpp"
#include "softfloat/sfu.hpp"
#include "workloads/common.hpp"
#include "workloads/kernels.hpp"

namespace gpf::workloads {
namespace {

using isa::Cmp;
using isa::KernelBuilder;
using isa::SpecialReg;
using Reg = KernelBuilder::Reg;

float host_exp2(float x) { return bits_f32(sf::sfu_eval(sf::SfuFunc::Exp2, f32_bits(x))); }
float host_rcp(float x) { return bits_f32(sf::sfu_eval(sf::SfuFunc::Rcp, f32_bits(x))); }
float host_sqrt(float x) { return bits_f32(sf::sfu_eval(sf::SfuFunc::Sqrt, f32_bits(x))); }

// ---------------------------------------------------------------------------
// lava — N-body with exponential kernel (FP32, SFU-heavy)
// ---------------------------------------------------------------------------

class Lava final : public AppBase {
 public:
  static constexpr std::uint32_t kN = 128;
  static constexpr std::uint32_t kX = 0, kY = 128, kZ = 256, kQ = 384, kOut = 512;

  Lava() : AppBase("lava", "FP32", "N-body", "Rodinia"), prog_(build()) {}

  void setup(arch::Gpu& gpu) const override {
    gpu.write_global_f(kX, random_floats(kN, 0.0, 2.0, 401));
    gpu.write_global_f(kY, random_floats(kN, 0.0, 2.0, 402));
    gpu.write_global_f(kZ, random_floats(kN, 0.0, 2.0, 403));
    gpu.write_global_f(kQ, random_floats(kN, 0.1, 1.0, 404));
    gpu.reserve_global(kOut, kN);
  }

  RunStats run(arch::Gpu& gpu, std::uint64_t mc) const override {
    RunStats s;
    step(gpu, s, prog_, {2, 1, 1}, {64, 1, 1}, mc);
    return s;
  }

  OutputSpec output() const override { return {kOut, kN, true, 1e-4}; }

  std::vector<float> host_reference_f() const override {
    const auto x = random_floats(kN, 0.0, 2.0, 401);
    const auto y = random_floats(kN, 0.0, 2.0, 402);
    const auto z = random_floats(kN, 0.0, 2.0, 403);
    const auto q = random_floats(kN, 0.1, 1.0, 404);
    std::vector<float> out(kN);
    for (std::uint32_t i = 0; i < kN; ++i) {
      float acc = 0.0f;
      for (std::uint32_t j = 0; j < kN; ++j) {
        const float dx = std::fmaf(x[i], -1.0f, x[j]);
        const float dy = std::fmaf(y[i], -1.0f, y[j]);
        const float dz = std::fmaf(z[i], -1.0f, z[j]);
        float d2 = dx * dx;
        d2 = std::fmaf(dy, dy, d2);
        d2 = std::fmaf(dz, dz, d2);
        const float e = host_exp2(d2 * -1.0f);
        acc = std::fmaf(q[j], e, acc);
      }
      out[i] = acc;
    }
    return out;
  }

 private:
  static isa::Program build() {
    KernelBuilder kb("lava");
    Reg gid = kb.reg(), tid = kb.reg(), cta = kb.reg(), ntid = kb.reg();
    kb.s2r(tid, SpecialReg::TID_X);
    kb.s2r(cta, SpecialReg::CTAID_X);
    kb.s2r(ntid, SpecialReg::NTID_X);
    kb.imad(gid, cta, ntid, tid);

    Reg xi = kb.reg(), yi = kb.reg(), zi = kb.reg();
    kb.ldg(xi, gid, kX);
    kb.ldg(yi, gid, kY);
    kb.ldg(zi, gid, kZ);

    Reg acc = kb.reg(), j = kb.reg(), nreg = kb.reg(), cn1 = kb.reg();
    kb.movf(acc, 0.0f);
    kb.movi(nreg, kN);
    kb.movf(cn1, -1.0f);
    Reg xj = kb.reg(), d = kb.reg(), d2 = kb.reg(), qj = kb.reg(), e = kb.reg();
    kb.for_lt(j, 0, nreg, 1, [&] {
      kb.ldg(xj, j, kX);
      kb.ffma(d, xi, cn1, xj);  // dx = xj - xi
      kb.fmul(d2, d, d);
      kb.ldg(xj, j, kY);
      kb.ffma(d, yi, cn1, xj);
      kb.ffma(d2, d, d, d2);
      kb.ldg(xj, j, kZ);
      kb.ffma(d, zi, cn1, xj);
      kb.ffma(d2, d, d, d2);
      kb.fmulf(d2, d2, -1.0f);
      kb.fexp(e, d2);
      kb.ldg(qj, j, kQ);
      kb.ffma(acc, qj, e, acc);
    });
    kb.stg(gid, kOut, acc);
    return kb.build();
  }

  isa::Program prog_;
};

// ---------------------------------------------------------------------------
// hotspot — 5-point stencil, 4 ping-pong iterations (16x16)
// ---------------------------------------------------------------------------

class Hotspot final : public AppBase {
 public:
  static constexpr std::uint32_t kW = 16, kH = 16, kIters = 4;
  static constexpr std::uint32_t kPower = 512, kBufA = 1024, kBufB = 2048;
  static constexpr float kK = 0.1f;

  Hotspot() : AppBase("hotspot", "FP32", "Structured Grid", "Rodinia"),
              a2b_(kernels::stencil5_shared(kBufA, kPower, kBufB, kW, kH, kK)),
              b2a_(kernels::stencil5_shared(kBufB, kPower, kBufA, kW, kH, kK)) {}

  void setup(arch::Gpu& gpu) const override {
    gpu.write_global_f(kBufA, random_floats(kW * kH, 20.0, 90.0, 501));
    gpu.write_global_f(kPower, random_floats(kW * kH, 0.0, 2.0, 502));
    gpu.reserve_global(kBufB, kW * kH);
  }

  RunStats run(arch::Gpu& gpu, std::uint64_t mc) const override {
    RunStats s;
    for (std::uint32_t it = 0; it < kIters; ++it)
      if (!step(gpu, s, it % 2 == 0 ? a2b_ : b2a_, {1, 1, 1}, {kW, kH, 1}, mc))
        return s;
    return s;
  }

  OutputSpec output() const override { return {kBufA, kW * kH, true, 1e-4}; }

  std::vector<float> host_reference_f() const override {
    auto cur = random_floats(kW * kH, 20.0, 90.0, 501);
    const auto power = random_floats(kW * kH, 0.0, 2.0, 502);
    std::vector<float> nxt(kW * kH);
    for (std::uint32_t it = 0; it < kIters; ++it) {
      for (std::uint32_t y = 0; y < kH; ++y)
        for (std::uint32_t x = 0; x < kW; ++x) {
          const std::uint32_t i = y * kW + x;
          if (x == 0 || x == kW - 1 || y == 0 || y == kH - 1) {
            nxt[i] = cur[i];
            continue;
          }
          float nsum = cur[i - kW] + cur[i + kW];
          nsum += cur[i - 1];
          nsum += cur[i + 1];
          nsum = std::fmaf(cur[i], -4.0f, nsum);
          nxt[i] = cur[i] + (nsum * kK + power[i]);
        }
      std::swap(cur, nxt);
    }
    return cur;
  }

 private:
  isa::Program a2b_, b2a_;
};

// ---------------------------------------------------------------------------
// gaussian — elimination with FRCP, two kernels per step (n=16)
// ---------------------------------------------------------------------------

class Gaussian final : public AppBase {
 public:
  static constexpr std::uint32_t kN = 16;
  static constexpr std::uint32_t kA = 0, kB = 512, kM = 768;

  Gaussian() : AppBase("gaussian", "FP32", "Linear algebra", "Rodinia") {
    for (std::uint32_t k = 0; k + 1 < kN; ++k) {
      fan1_.push_back(build_fan1(k));
      fan2_.push_back(build_fan2(k));
    }
  }

  static std::vector<float> input_matrix() {
    auto a = AppBase::random_floats(kN * kN, -1.0, 1.0, 601);
    for (std::uint32_t i = 0; i < kN; ++i) a[i * kN + i] += 8.0f;  // dominance
    return a;
  }

  void setup(arch::Gpu& gpu) const override {
    gpu.write_global_f(kA, input_matrix());
    gpu.write_global_f(kB, random_floats(kN, -2.0, 2.0, 602));
    gpu.reserve_global(kM, kN);
  }

  RunStats run(arch::Gpu& gpu, std::uint64_t mc) const override {
    RunStats s;
    for (std::uint32_t k = 0; k + 1 < kN; ++k) {
      if (!step(gpu, s, fan1_[k], {1, 1, 1}, {kN, 1, 1}, mc)) return s;
      if (!step(gpu, s, fan2_[k], {1, 1, 1}, {kN, kN, 1}, mc)) return s;
    }
    return s;
  }

  OutputSpec output() const override { return {kA, kN * kN, true, 2e-3}; }

  std::vector<float> host_reference_f() const override {
    auto a = input_matrix();
    auto b = random_floats(kN, -2.0, 2.0, 602);
    for (std::uint32_t k = 0; k + 1 < kN; ++k) {
      const float rk = host_rcp(a[k * kN + k]);
      std::vector<float> m(kN, 0.0f);
      for (std::uint32_t i = k + 1; i < kN; ++i) m[i] = a[i * kN + k] * rk;
      for (std::uint32_t i = k + 1; i < kN; ++i) {
        const float nm = m[i] * -1.0f;
        for (std::uint32_t j = k; j < kN; ++j)
          a[i * kN + j] = std::fmaf(nm, a[k * kN + j], a[i * kN + j]);
        b[i] = std::fmaf(nm, b[k], b[i]);
      }
    }
    return a;
  }

 private:
  static isa::Program build_fan1(std::uint32_t k) {
    KernelBuilder kb("gaussian_fan1");
    Reg i = kb.reg(), piv = kb.reg(), v = kb.reg(), r = kb.reg();
    kb.s2r(i, SpecialReg::TID_X);
    auto p = kb.pred();
    kb.isetpi(p, Cmp::GT, i, k);
    kb.if_(p, false, [&] {
      kb.movi(piv, 0);
      kb.ldg(piv, piv, kA + k * kN + k);  // pivot
      kb.frcp(r, piv);
      Reg ai = kb.reg(), nreg = kb.reg();
      kb.movi(nreg, kN);
      kb.imad(ai, i, nreg, KernelBuilder::RZ);
      kb.ldg(v, ai, kA + k);  // a[i][k]
      kb.fmul(v, v, r);
      kb.stg(i, kM, v);
    });
    return kb.build();
  }

  static isa::Program build_fan2(std::uint32_t k) {
    KernelBuilder kb("gaussian_fan2");
    Reg j = kb.reg(), i = kb.reg();
    kb.s2r(j, SpecialReg::TID_X);
    kb.s2r(i, SpecialReg::TID_Y);
    auto pi = kb.pred();
    auto pj = kb.pred();
    kb.isetpi(pi, Cmp::GT, i, k);
    kb.if_(pi, false, [&] {
      Reg m = kb.reg(), nm = kb.reg(), nreg = kb.reg();
      kb.ldg(m, i, kM);
      kb.fmulf(nm, m, -1.0f);
      kb.movi(nreg, kN);
      kb.isetpi(pj, Cmp::GE, j, k);
      kb.if_(pj, false, [&] {
        Reg aij = kb.reg(), akj = kb.reg(), idx = kb.reg();
        kb.imad(idx, i, nreg, j);
        kb.ldg(aij, idx, kA);
        Reg kidx = kb.reg();
        kb.movi(kidx, k * kN);
        kb.iadd(kidx, kidx, j);
        kb.ldg(akj, kidx, kA);
        kb.ffma(aij, nm, akj, aij);
        kb.stg(idx, kA, aij);
      });
      auto pz = kb.pred();
      kb.isetpi(pz, Cmp::EQ, j, 0);
      kb.if_(pz, false, [&] {
        Reg bi = kb.reg(), bk = kb.reg();
        kb.ldg(bi, i, kB);
        kb.movi(bk, k);
        kb.ldg(bk, bk, kB);
        kb.ffma(bi, nm, bk, bi);
        kb.stg(i, kB, bi);
      });
    });
    return kb.build();
  }

  std::vector<isa::Program> fan1_, fan2_;
};

// ---------------------------------------------------------------------------
// bfs — frontier BFS with per-level kernel pairs (INT32, 256 nodes)
// ---------------------------------------------------------------------------

class Bfs final : public AppBase {
 public:
  static constexpr std::uint32_t kNodes = 256, kDegree = 4;
  static constexpr std::uint32_t kRowOff = 0, kCols = 1024, kCost = 4096,
                                 kMask = 6144, kNextMask = 8192, kFlag = 10240;

  Bfs() : AppBase("bfs", "INT32", "Graphs", "Rodinia"),
          expand_(build_expand()), swap_(build_swap()) {}

  struct Graph {
    std::vector<std::uint32_t> row_off, cols;
  };

  static Graph make_graph() {
    // Ring + random extra edges: connected and deterministic.
    Rng rng(701);
    Graph g;
    g.row_off.resize(kNodes + 1);
    for (std::uint32_t i = 0; i < kNodes; ++i) {
      g.row_off[i] = static_cast<std::uint32_t>(g.cols.size());
      g.cols.push_back((i + 1) % kNodes);
      g.cols.push_back((i + kNodes - 1) % kNodes);
      for (std::uint32_t e = 2; e < kDegree; ++e)
        g.cols.push_back(static_cast<std::uint32_t>(rng.below(kNodes)));
    }
    g.row_off[kNodes] = static_cast<std::uint32_t>(g.cols.size());
    return g;
  }

  void setup(arch::Gpu& gpu) const override {
    const Graph g = make_graph();
    gpu.write_global(kRowOff, g.row_off);
    gpu.write_global(kCols, g.cols);
    std::vector<std::uint32_t> cost(kNodes, 0xFFFFFFFFu);
    cost[0] = 0;
    gpu.write_global(kCost, cost);
    std::vector<std::uint32_t> mask(kNodes, 0);
    mask[0] = 1;
    gpu.write_global(kMask, mask);
    gpu.write_global(kNextMask, std::vector<std::uint32_t>(kNodes, 0));
    gpu.reserve_global(kFlag, 1);
  }

  RunStats run(arch::Gpu& gpu, std::uint64_t mc) const override {
    RunStats s;
    for (int level = 0; level < 64; ++level) {
      gpu.global()[kFlag] = 0;
      if (!step(gpu, s, expand_, {kNodes / 64, 1, 1}, {64, 1, 1}, mc)) return s;
      if (!step(gpu, s, swap_, {kNodes / 64, 1, 1}, {64, 1, 1}, mc)) return s;
      if (gpu.global()[kFlag] == 0) break;
    }
    return s;
  }

  OutputSpec output() const override { return {kCost, kNodes, false}; }

  std::vector<std::uint32_t> host_reference_u() const override {
    const Graph g = make_graph();
    std::vector<std::uint32_t> cost(kNodes, 0xFFFFFFFFu);
    cost[0] = 0;
    std::vector<std::uint32_t> frontier{0};
    while (!frontier.empty()) {
      std::vector<std::uint32_t> next;
      for (std::uint32_t u : frontier)
        for (std::uint32_t e = g.row_off[u]; e < g.row_off[u + 1]; ++e) {
          const std::uint32_t v = g.cols[e];
          if (cost[v] == 0xFFFFFFFFu) {
            cost[v] = cost[u] + 1;
            next.push_back(v);
          }
        }
      frontier = std::move(next);
    }
    return cost;
  }

 private:
  static isa::Program build_expand() {
    KernelBuilder kb("bfs_expand");
    Reg gid = kb.reg(), tid = kb.reg(), cta = kb.reg(), ntid = kb.reg();
    kb.s2r(tid, SpecialReg::TID_X);
    kb.s2r(cta, SpecialReg::CTAID_X);
    kb.s2r(ntid, SpecialReg::NTID_X);
    kb.imad(gid, cta, ntid, tid);
    auto pm = kb.pred();
    Reg m = kb.reg();
    kb.ldg(m, gid, kMask);
    kb.isetpi(pm, Cmp::NE, m, 0);
    kb.if_(pm, false, [&] {
      Reg zero = kb.reg();
      kb.movi(zero, 0);
      kb.stg(gid, kMask, zero);
      Reg my_cost = kb.reg(), e = kb.reg(), end = kb.reg(), nb = kb.reg();
      Reg nb_cost = kb.reg(), one = kb.reg();
      kb.ldg(my_cost, gid, kCost);
      kb.iaddi(my_cost, my_cost, 1);  // cost for neighbours
      kb.ldg(e, gid, kRowOff);
      kb.ldg(end, gid, kRowOff + 1);
      kb.movi(one, 1);
      auto ploop = kb.pred();
      auto pnew = kb.pred();
      kb.while_(ploop, false, [&] { kb.isetp(ploop, Cmp::LT, e, end); },
                [&] {
                  kb.ldg(nb, e, kCols);
                  kb.ldg(nb_cost, nb, kCost);
                  kb.isetpi(pnew, Cmp::EQ, nb_cost, 0xFFFFFFFFu);
                  kb.if_(pnew, false, [&] {
                    kb.stg(nb, kCost, my_cost);
                    kb.stg(nb, kNextMask, one);
                    kb.st(isa::MemSpace::Global, KernelBuilder::RZ, kFlag, one);
                  });
                  kb.iaddi(e, e, 1);
                });
    });
    return kb.build();
  }

  static isa::Program build_swap() {
    KernelBuilder kb("bfs_swap");
    Reg gid = kb.reg(), tid = kb.reg(), cta = kb.reg(), ntid = kb.reg();
    kb.s2r(tid, SpecialReg::TID_X);
    kb.s2r(cta, SpecialReg::CTAID_X);
    kb.s2r(ntid, SpecialReg::NTID_X);
    kb.imad(gid, cta, ntid, tid);
    Reg v = kb.reg(), zero = kb.reg();
    kb.ldg(v, gid, kNextMask);
    kb.stg(gid, kMask, v);
    kb.movi(zero, 0);
    kb.stg(gid, kNextMask, zero);
    return kb.build();
  }

  isa::Program expand_, swap_;
};

// ---------------------------------------------------------------------------
// lud — LU decomposition, two kernels per step (n=16)
// ---------------------------------------------------------------------------

class Lud final : public AppBase {
 public:
  static constexpr std::uint32_t kN = 16;
  static constexpr std::uint32_t kA = 0;

  Lud() : AppBase("lud", "FP32", "Linear algebra", "Rodinia") {
    for (std::uint32_t k = 0; k + 1 < kN; ++k) {
      scale_.push_back(build_scale(k));
      update_.push_back(build_update(k));
    }
  }

  static std::vector<float> input_matrix() {
    auto a = AppBase::random_floats(kN * kN, -1.0, 1.0, 801);
    for (std::uint32_t i = 0; i < kN; ++i) a[i * kN + i] += 6.0f;
    return a;
  }

  void setup(arch::Gpu& gpu) const override { gpu.write_global_f(kA, input_matrix()); }

  RunStats run(arch::Gpu& gpu, std::uint64_t mc) const override {
    RunStats s;
    for (std::uint32_t k = 0; k + 1 < kN; ++k) {
      if (!step(gpu, s, scale_[k], {1, 1, 1}, {kN, 1, 1}, mc)) return s;
      if (!step(gpu, s, update_[k], {1, 1, 1}, {kN, kN, 1}, mc)) return s;
    }
    return s;
  }

  OutputSpec output() const override { return {kA, kN * kN, true, 2e-3}; }

  std::vector<float> host_reference_f() const override {
    auto a = input_matrix();
    for (std::uint32_t k = 0; k + 1 < kN; ++k) {
      const float rk = host_rcp(a[k * kN + k]);
      for (std::uint32_t i = k + 1; i < kN; ++i) a[i * kN + k] *= rk;
      for (std::uint32_t i = k + 1; i < kN; ++i) {
        const float nm = a[i * kN + k] * -1.0f;
        for (std::uint32_t j = k + 1; j < kN; ++j)
          a[i * kN + j] = std::fmaf(nm, a[k * kN + j], a[i * kN + j]);
      }
    }
    return a;
  }

 private:
  static isa::Program build_scale(std::uint32_t k) {
    KernelBuilder kb("lud_scale");
    Reg i = kb.reg();
    kb.s2r(i, SpecialReg::TID_X);
    auto p = kb.pred();
    kb.isetpi(p, Cmp::GT, i, k);
    kb.if_(p, false, [&] {
      Reg piv = kb.reg(), r = kb.reg(), v = kb.reg(), idx = kb.reg(), nreg = kb.reg();
      kb.movi(piv, 0);
      kb.ldg(piv, piv, kA + k * kN + k);
      kb.frcp(r, piv);
      kb.movi(nreg, kN);
      kb.imad(idx, i, nreg, KernelBuilder::RZ);
      kb.ldg(v, idx, kA + k);
      kb.fmul(v, v, r);
      kb.stg(idx, kA + k, v);
    });
    return kb.build();
  }

  static isa::Program build_update(std::uint32_t k) {
    // Rodinia's LUD stages the pivot row and column in shared memory.
    KernelBuilder kb("lud_update");
    kb.set_shared_words(2 * kN);
    Reg j = kb.reg(), i = kb.reg();
    kb.s2r(j, SpecialReg::TID_X);
    kb.s2r(i, SpecialReg::TID_Y);
    Reg nreg = kb.reg(), tmp = kb.reg(), v = kb.reg();
    kb.movi(nreg, kN);
    auto ps = kb.pred();
    // sh[j] = a[k][j] (row), sh[kN + i] = a[i][k] (column).
    kb.isetpi(ps, Cmp::EQ, i, 0);
    kb.if_(ps, false, [&] {
      kb.movi(tmp, k * kN);
      kb.iadd(tmp, tmp, j);
      kb.ldg(v, tmp, kA);
      kb.sts(j, 0, v);
    });
    kb.isetpi(ps, Cmp::EQ, j, 0);
    kb.if_(ps, false, [&] {
      kb.imad(tmp, i, nreg, KernelBuilder::RZ);
      kb.ldg(v, tmp, kA + k);
      kb.iaddi(tmp, i, kN);
      kb.sts(tmp, 0, v);
    });
    kb.bar();
    auto pi = kb.pred();
    auto pj = kb.pred();
    kb.isetpi(pi, Cmp::GT, i, k);
    kb.if_(pi, false, [&] {
      kb.isetpi(pj, Cmp::GT, j, k);
      kb.if_(pj, false, [&] {
        Reg lik = kb.reg(), ukj = kb.reg(), aij = kb.reg(), idx = kb.reg();
        kb.iaddi(idx, i, kN);
        kb.lds(lik, idx, 0);  // a[i][k] from shared
        kb.fmulf(lik, lik, -1.0f);
        kb.lds(ukj, j, 0);    // a[k][j] from shared
        kb.imad(idx, i, nreg, j);
        kb.ldg(aij, idx, kA);
        kb.ffma(aij, lik, ukj, aij);
        kb.stg(idx, kA, aij);
      });
    });
    return kb.build();
  }

  std::vector<isa::Program> scale_, update_;
};

// ---------------------------------------------------------------------------
// nw — Needleman-Wunsch anti-diagonal waves (INT32, 32x32 alignment)
// ---------------------------------------------------------------------------

class Nw final : public AppBase {
 public:
  static constexpr std::uint32_t kN = 32;        // sequence length
  static constexpr std::uint32_t kDim = kN + 1;  // score matrix dimension
  static constexpr std::uint32_t kRef = 0, kScore = 2048;
  static constexpr std::int32_t kPenalty = 10;

  Nw() : AppBase("nw", "INT32", "Dyn. Programming", "Rodinia") {
    for (std::uint32_t d = 2; d <= 2 * kN; ++d) wave_.push_back(build_wave(d));
  }

  static std::vector<std::uint32_t> reference_matrix() {
    // Substitution scores in [-6, 6].
    auto r = AppBase::random_ints(kDim * kDim, 0, 13, 901);
    for (auto& v : r) v = static_cast<std::uint32_t>(static_cast<std::int32_t>(v) - 6);
    return r;
  }

  void setup(arch::Gpu& gpu) const override {
    gpu.write_global(kRef, reference_matrix());
    std::vector<std::uint32_t> score(kDim * kDim, 0);
    for (std::uint32_t i = 0; i < kDim; ++i) {
      score[i * kDim] = static_cast<std::uint32_t>(-static_cast<std::int32_t>(i) * kPenalty);
      score[i] = static_cast<std::uint32_t>(-static_cast<std::int32_t>(i) * kPenalty);
    }
    gpu.write_global(kScore, score);
  }

  RunStats run(arch::Gpu& gpu, std::uint64_t mc) const override {
    RunStats s;
    for (const auto& prog : wave_)
      if (!step(gpu, s, prog, {1, 1, 1}, {kN, 1, 1}, mc)) return s;
    return s;
  }

  OutputSpec output() const override { return {kScore, kDim * kDim, false}; }

  std::vector<std::uint32_t> host_reference_u() const override {
    const auto ref = reference_matrix();
    std::vector<std::int32_t> s(kDim * kDim, 0);
    for (std::uint32_t i = 0; i < kDim; ++i) {
      s[i * kDim] = -static_cast<std::int32_t>(i) * kPenalty;
      s[i] = -static_cast<std::int32_t>(i) * kPenalty;
    }
    for (std::uint32_t i = 1; i < kDim; ++i)
      for (std::uint32_t j = 1; j < kDim; ++j) {
        const std::int32_t diag =
            s[(i - 1) * kDim + j - 1] + static_cast<std::int32_t>(ref[i * kDim + j]);
        const std::int32_t up = s[(i - 1) * kDim + j] - kPenalty;
        const std::int32_t left = s[i * kDim + j - 1] - kPenalty;
        s[i * kDim + j] = std::max({diag, up, left});
      }
    std::vector<std::uint32_t> out(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) out[i] = static_cast<std::uint32_t>(s[i]);
    return out;
  }

 private:
  static isa::Program build_wave(std::uint32_t d) {
    KernelBuilder kb("nw_wave");
    const std::uint32_t lo = d > kN ? d - kN : 1;
    const std::uint32_t hi = std::min(kN, d - 1);
    const std::uint32_t count = hi - lo + 1;

    kb.set_shared_words(kN);
    Reg t = kb.reg();
    kb.s2r(t, SpecialReg::TID_X);
    auto p = kb.pred();
    kb.isetpi(p, Cmp::LT, t, count);
    kb.if_(p, false, [&] {
      Reg i = kb.reg(), j = kb.reg(), idx = kb.reg(), dim = kb.reg();
      kb.iaddi(i, t, lo);
      Reg dreg = kb.reg();
      kb.movi(dreg, d);
      kb.isub(j, dreg, i);
      kb.movi(dim, kDim);
      kb.imad(idx, i, dim, j);
      Reg diag = kb.reg(), up = kb.reg(), left = kb.reg(), rv = kb.reg();
      kb.ldg(diag, idx, kScore - kDim - 1);
      // Substitution scores are staged through shared memory (the Rodinia
      // kernel tiles both matrices in shared memory).
      kb.ldg(rv, idx, kRef);
      kb.sts(t, 0, rv);
      kb.lds(rv, t, 0);
      kb.iadd(diag, diag, rv);
      kb.ldg(up, idx, kScore - kDim);
      kb.iaddi(up, up, static_cast<std::uint32_t>(-kPenalty));
      kb.ldg(left, idx, kScore - 1);
      kb.iaddi(left, left, static_cast<std::uint32_t>(-kPenalty));
      kb.imax(diag, diag, up);
      kb.imax(diag, diag, left);
      kb.stg(idx, kScore, diag);
    });
    return kb.build();
  }

  std::vector<isa::Program> wave_;
};

// ---------------------------------------------------------------------------
// cfd — simplified unstructured-grid Euler step with FSQRT (256 cells)
// ---------------------------------------------------------------------------

class Cfd final : public AppBase {
 public:
  static constexpr std::uint32_t kCells = 256, kNbPerCell = 4, kIters = 3;
  static constexpr std::uint32_t kNb = 0, kRhoA = 2048, kEA = 2560,
                                 kRhoB = 3072, kEB = 3584;
  static constexpr float kDt = 0.05f;

  Cfd() : AppBase("cfd", "FP32", "Unstructured Grid", "Rodinia"),
          a2b_(build_step(kRhoA, kEA, kRhoB, kEB)),
          b2a_(build_step(kRhoB, kEB, kRhoA, kEA)) {}

  static std::vector<std::uint32_t> neighbors() {
    Rng rng(1001);
    std::vector<std::uint32_t> nb(kCells * kNbPerCell);
    for (std::uint32_t i = 0; i < kCells; ++i) {
      nb[i * kNbPerCell + 0] = (i + 1) % kCells;
      nb[i * kNbPerCell + 1] = (i + kCells - 1) % kCells;
      nb[i * kNbPerCell + 2] = static_cast<std::uint32_t>(rng.below(kCells));
      nb[i * kNbPerCell + 3] = static_cast<std::uint32_t>(rng.below(kCells));
    }
    return nb;
  }

  void setup(arch::Gpu& gpu) const override {
    gpu.write_global(kNb, neighbors());
    gpu.write_global_f(kRhoA, random_floats(kCells, 0.5, 2.0, 1002));
    gpu.write_global_f(kEA, random_floats(kCells, 1.0, 4.0, 1003));
    gpu.reserve_global(kRhoB, kCells);
    gpu.reserve_global(kEB, kCells);
  }

  RunStats run(arch::Gpu& gpu, std::uint64_t mc) const override {
    RunStats s;
    for (std::uint32_t it = 0; it < kIters; ++it)
      if (!step(gpu, s, it % 2 == 0 ? a2b_ : b2a_, {kCells / 64, 1, 1},
                {64, 1, 1}, mc))
        return s;
    return s;
  }

  OutputSpec output() const override { return {kRhoB, kCells, true, 1e-3}; }

  std::vector<float> host_reference_f() const override {
    const auto nb = neighbors();
    auto rho = random_floats(kCells, 0.5, 2.0, 1002);
    auto en = random_floats(kCells, 1.0, 4.0, 1003);
    std::vector<float> rho2(kCells), en2(kCells);
    for (std::uint32_t it = 0; it < kIters; ++it) {
      for (std::uint32_t i = 0; i < kCells; ++i) {
        const float c = host_sqrt(en[i]);
        float ar = 0.0f, ae = 0.0f;
        for (std::uint32_t k = 0; k < kNbPerCell; ++k) {
          const std::uint32_t n = nb[i * kNbPerCell + k];
          ar = std::fmaf(rho[i], -1.0f, rho[n]) + ar;
          ae = std::fmaf(en[i], -1.0f, en[n]) + ae;
        }
        rho2[i] = std::fmaf(ar * c, kDt, rho[i]);
        en2[i] = std::fmaf(ae * c, kDt, en[i]);
      }
      std::swap(rho, rho2);
      std::swap(en, en2);
    }
    // After 3 iterations the current state lives in rho (swapped); the device
    // writes its final state into buffer B on the last (a->b) iteration.
    return rho;
  }

 private:
  static isa::Program build_step(std::uint32_t rho_in, std::uint32_t e_in,
                                 std::uint32_t rho_out, std::uint32_t e_out) {
    KernelBuilder kb("cfd_step");
    Reg gid = kb.reg(), tid = kb.reg(), cta = kb.reg(), ntid = kb.reg();
    kb.s2r(tid, SpecialReg::TID_X);
    kb.s2r(cta, SpecialReg::CTAID_X);
    kb.s2r(ntid, SpecialReg::NTID_X);
    kb.imad(gid, cta, ntid, tid);

    Reg rho = kb.reg(), en = kb.reg(), c = kb.reg();
    kb.ldg(rho, gid, rho_in);
    kb.ldg(en, gid, e_in);
    kb.fsqrt(c, en);

    Reg ar = kb.reg(), ae = kb.reg(), nbi = kb.reg(), nv = kb.reg();
    Reg cn1 = kb.reg(), base = kb.reg(), k = kb.reg(), four = kb.reg();
    kb.movf(ar, 0.0f);
    kb.movf(ae, 0.0f);
    kb.movf(cn1, -1.0f);
    kb.shl(base, gid, 2);  // gid * 4 neighbours
    kb.movi(four, 4);
    Reg t = kb.reg();
    kb.for_lt(k, 0, four, 1, [&] {
      kb.iadd(t, base, k);
      kb.ldg(nbi, t, kNb);
      kb.ldg(nv, nbi, rho_in);
      kb.ffma(nv, rho, cn1, nv);  // rho[n] - rho[i]
      kb.fadd(ar, ar, nv);
      kb.ldg(nv, nbi, e_in);
      kb.ffma(nv, en, cn1, nv);
      kb.fadd(ae, ae, nv);
    });
    Reg dt = kb.reg();
    kb.movf(dt, kDt);
    kb.fmul(ar, ar, c);
    kb.ffma(rho, ar, dt, rho);
    kb.fmul(ae, ae, c);
    kb.ffma(en, ae, dt, en);
    kb.stg(gid, rho_out, rho);
    kb.stg(gid, e_out, en);
    return kb.build();
  }

  isa::Program a2b_, b2a_;
};

}  // namespace

namespace detail {
std::vector<std::unique_ptr<Workload>> make_rodinia_apps() {
  std::vector<std::unique_ptr<Workload>> v;
  v.push_back(std::make_unique<Lava>());
  v.push_back(std::make_unique<Hotspot>());
  v.push_back(std::make_unique<Gaussian>());
  v.push_back(std::make_unique<Bfs>());
  v.push_back(std::make_unique<Lud>());
  v.push_back(std::make_unique<Nw>());
  v.push_back(std::make_unique<Cfd>());
  return v;
}
}  // namespace detail

}  // namespace gpf::workloads
