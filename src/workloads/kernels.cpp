#include "workloads/kernels.hpp"

#include "isa/opcode.hpp"

namespace gpf::workloads::kernels {

using isa::Cmp;
using isa::KernelBuilder;
using isa::MemSpace;
using isa::SpecialReg;
using Reg = KernelBuilder::Reg;

namespace {

/// gid = ctaid.x * ntid.x + tid.x
void global_id_x(KernelBuilder& kb, Reg gid) {
  Reg tid = kb.reg(), cta = kb.reg(), ntid = kb.reg();
  kb.s2r(tid, SpecialReg::TID_X);
  kb.s2r(cta, SpecialReg::CTAID_X);
  kb.s2r(ntid, SpecialReg::NTID_X);
  kb.imad(gid, cta, ntid, tid);
}

}  // namespace

isa::Program vecadd(Addr a, Addr b, Addr out, std::uint32_t n) {
  KernelBuilder kb("vecadd");
  Reg gid = kb.reg();
  global_id_x(kb, gid);
  Reg va = kb.reg(), vb = kb.reg();
  auto p = kb.pred();
  kb.isetpi(p, Cmp::LT, gid, n);
  kb.if_(p, false, [&] {
    kb.ldg(va, gid, a);
    kb.ldg(vb, gid, b);
    kb.fadd(va, va, vb);
    kb.stg(gid, out, va);
  });
  return kb.build();
}

isa::Program scalar_mul(Addr a, Addr out, std::uint32_t n, float s) {
  KernelBuilder kb("scalar_mul");
  Reg gid = kb.reg();
  global_id_x(kb, gid);
  Reg v = kb.reg();
  auto p = kb.pred();
  kb.isetpi(p, Cmp::LT, gid, n);
  kb.if_(p, false, [&] {
    kb.ldg(v, gid, a);
    kb.fmulf(v, v, s);
    kb.stg(gid, out, v);
  });
  return kb.build();
}

isa::Program naive_matmul(Addr a, Addr b, Addr c, std::uint32_t n) {
  KernelBuilder kb("mxm");
  Reg col = kb.reg(), row = kb.reg();
  kb.s2r(col, SpecialReg::TID_X);
  kb.s2r(row, SpecialReg::TID_Y);
  Reg acc = kb.reg(), nreg = kb.reg(), k = kb.reg();
  Reg ai = kb.reg(), bi = kb.reg(), av = kb.reg(), bv = kb.reg();
  kb.movf(acc, 0.0f);
  kb.movi(nreg, n);
  kb.imul(ai, row, nreg);  // running index A[row][0]
  kb.mov(bi, col);         // running index B[0][col]
  kb.for_lt(k, 0, nreg, 1, [&] {
    kb.ldg(av, ai, a);
    kb.ldg(bv, bi, b);
    kb.ffma(acc, av, bv, acc);
    kb.iaddi(ai, ai, 1);
    kb.iadd(bi, bi, nreg);
  });
  Reg ci = kb.reg();
  kb.imad(ci, row, nreg, col);
  kb.stg(ci, c, acc);
  return kb.build();
}

isa::Program gemm(Addr a, Addr b, Addr c, std::uint32_t n, float alpha, float beta) {
  KernelBuilder kb("gemm");
  Reg col = kb.reg(), row = kb.reg();
  kb.s2r(col, SpecialReg::TID_X);
  kb.s2r(row, SpecialReg::TID_Y);
  Reg acc = kb.reg(), nreg = kb.reg(), k = kb.reg();
  Reg ai = kb.reg(), bi = kb.reg(), av = kb.reg(), bv = kb.reg();
  kb.movf(acc, 0.0f);
  kb.movi(nreg, n);
  kb.imul(ai, row, nreg);
  kb.mov(bi, col);
  kb.for_lt(k, 0, nreg, 1, [&] {
    kb.ldg(av, ai, a);
    kb.ldg(bv, bi, b);
    kb.ffma(acc, av, bv, acc);
    kb.iaddi(ai, ai, 1);
    kb.iadd(bi, bi, nreg);
  });
  Reg ci = kb.reg(), cv = kb.reg();
  kb.imad(ci, row, nreg, col);
  kb.ldg(cv, ci, c);
  kb.fmulf(acc, acc, alpha);
  kb.fmulf(cv, cv, beta);
  kb.fadd(acc, acc, cv);
  kb.stg(ci, c, acc);
  return kb.build();
}

isa::Program tiled_matmul(Addr a, Addr b, Addr c, std::uint32_t n, std::uint32_t t) {
  KernelBuilder kb("t-mxm");
  kb.set_shared_words(2 * t * t);
  const std::uint32_t bs_base = t * t;  // Bs tile after As in shared memory

  Reg tx = kb.reg(), ty = kb.reg(), bx = kb.reg(), by = kb.reg();
  kb.s2r(tx, SpecialReg::TID_X);
  kb.s2r(ty, SpecialReg::TID_Y);
  kb.s2r(bx, SpecialReg::CTAID_X);
  kb.s2r(by, SpecialReg::CTAID_Y);

  Reg treg = kb.reg(), nreg = kb.reg();
  kb.movi(treg, t);
  kb.movi(nreg, n);

  Reg row = kb.reg(), col = kb.reg();
  kb.imad(row, by, treg, ty);
  kb.imad(col, bx, treg, tx);

  Reg acc = kb.reg(), m = kb.reg(), ntiles = kb.reg();
  kb.movf(acc, 0.0f);
  kb.movi(ntiles, n / t);

  Reg sidx = kb.reg(), gidx = kb.reg(), v = kb.reg(), tmp = kb.reg(), kk = kb.reg();
  Reg sa = kb.reg(), sb = kb.reg(), va = kb.reg(), vb = kb.reg();

  kb.for_lt(m, 0, ntiles, 1, [&] {
    // As[ty][tx] = A[row][m*t + tx]
    kb.imad(tmp, m, treg, tx);
    kb.imad(gidx, row, nreg, tmp);
    kb.ldg(v, gidx, a);
    kb.imad(sidx, ty, treg, tx);
    kb.sts(sidx, 0, v);
    // Bs[ty][tx] = B[m*t + ty][col]
    kb.imad(tmp, m, treg, ty);
    kb.imad(gidx, tmp, nreg, col);
    kb.ldg(v, gidx, b);
    kb.sts(sidx, bs_base, v);
    kb.bar();
    // acc += As[ty][k] * Bs[k][tx]
    kb.imad(sa, ty, treg, KernelBuilder::RZ);  // sa = ty*t
    kb.mov(sb, tx);
    kb.for_lt(kk, 0, treg, 1, [&] {
      kb.lds(va, sa, 0);
      kb.lds(vb, sb, bs_base);
      kb.ffma(acc, va, vb, acc);
      kb.iaddi(sa, sa, 1);
      kb.iadd(sb, sb, treg);
    });
    kb.bar();
  });
  Reg ci = kb.reg();
  kb.imad(ci, row, nreg, col);
  kb.stg(ci, c, acc);
  return kb.build();
}

isa::Program stencil5(Addr in, Addr power, Addr out, std::uint32_t w, std::uint32_t h,
                      float k) {
  KernelBuilder kb("stencil5");
  Reg x = kb.reg(), y = kb.reg();
  kb.s2r(x, SpecialReg::TID_X);
  kb.s2r(y, SpecialReg::TID_Y);
  Reg idx = kb.reg(), wreg = kb.reg();
  kb.movi(wreg, w);
  kb.imad(idx, y, wreg, x);

  Reg v = kb.reg(), center = kb.reg();
  kb.ldg(center, idx, in);
  kb.mov(v, center);  // boundary cells copy through

  Reg xm1 = kb.reg(), ym1 = kb.reg();
  kb.iaddi(xm1, x, 0xFFFFFFFFu);  // x - 1
  kb.iaddi(ym1, y, 0xFFFFFFFFu);
  auto px = kb.pred();
  auto py = kb.pred();
  kb.isetpi(px, Cmp::LTU, xm1, w - 2);  // 1 <= x <= w-2
  kb.if_(px, false, [&] {
    kb.isetpi(py, Cmp::LTU, ym1, h - 2);
    kb.if_(py, false, [&] {
      Reg nsum = kb.reg(), nv = kb.reg(), pv = kb.reg(), t4 = kb.reg();
      kb.ldg(nsum, idx, in - w);      // north (idx + in - w)
      kb.ldg(nv, idx, in + w);        // south
      kb.fadd(nsum, nsum, nv);
      kb.ldg(nv, idx, in - 1);        // west
      kb.fadd(nsum, nsum, nv);
      kb.ldg(nv, idx, in + 1);        // east
      kb.fadd(nsum, nsum, nv);
      kb.movf(t4, -4.0f);
      kb.ffma(nsum, center, t4, nsum);  // sum(neigh) - 4*center
      kb.ldg(pv, idx, power);
      kb.fmulf(nsum, nsum, k);
      kb.fadd(nsum, nsum, pv);
      kb.fadd(v, center, nsum);
    });
  });
  kb.stg(idx, out, v);
  return kb.build();
}

isa::Program stencil5_shared(Addr in, Addr power, Addr out, std::uint32_t w,
                             std::uint32_t h, float k) {
  KernelBuilder kb("stencil5_shared");
  kb.set_shared_words(w * h);
  Reg x = kb.reg(), y = kb.reg();
  kb.s2r(x, SpecialReg::TID_X);
  kb.s2r(y, SpecialReg::TID_Y);
  Reg idx = kb.reg(), wreg = kb.reg();
  kb.movi(wreg, w);
  kb.imad(idx, y, wreg, x);

  // Stage the tile.
  Reg center = kb.reg();
  kb.ldg(center, idx, in);
  kb.sts(idx, 0, center);
  kb.bar();

  Reg v = kb.reg();
  kb.mov(v, center);  // boundary cells copy through

  Reg xm1 = kb.reg(), ym1 = kb.reg();
  kb.iaddi(xm1, x, 0xFFFFFFFFu);
  kb.iaddi(ym1, y, 0xFFFFFFFFu);
  auto px = kb.pred();
  auto py = kb.pred();
  kb.isetpi(px, Cmp::LTU, xm1, w - 2);
  kb.if_(px, false, [&] {
    kb.isetpi(py, Cmp::LTU, ym1, h - 2);
    kb.if_(py, false, [&] {
      Reg nsum = kb.reg(), nv = kb.reg(), pv = kb.reg(), t4 = kb.reg();
      Reg nidx = kb.reg();
      kb.isub(nidx, idx, wreg);
      kb.lds(nsum, nidx, 0);          // north
      kb.iadd(nidx, idx, wreg);
      kb.lds(nv, nidx, 0);            // south
      kb.fadd(nsum, nsum, nv);
      kb.iaddi(nidx, idx, 0xFFFFFFFFu);
      kb.lds(nv, nidx, 0);            // west
      kb.fadd(nsum, nsum, nv);
      kb.lds(nv, idx, 1);             // east (idx + 1)
      kb.fadd(nsum, nsum, nv);
      kb.movf(t4, -4.0f);
      kb.ffma(nsum, center, t4, nsum);
      kb.ldg(pv, idx, power);
      kb.fmulf(nsum, nsum, k);
      kb.fadd(nsum, nsum, pv);
      kb.fadd(v, center, nsum);
    });
  });
  kb.stg(idx, out, v);
  return kb.build();
}

namespace {

void apply_activation(KernelBuilder& kb, Reg acc, Activation act) {
  if (act == Activation::None) return;
  Reg t = kb.reg();
  if (act == Activation::Relu) {
    kb.movf(t, 0.0f);
    kb.fmax(acc, acc, t);
  } else {  // Leaky: max(x, 0.1x)
    kb.fmulf(t, acc, 0.1f);
    kb.fmax(acc, acc, t);
  }
}

}  // namespace

isa::Program conv2d(Addr in, Addr weights, Addr bias, Addr out, const ConvDims& d,
                    Activation act) {
  KernelBuilder kb("conv2d");
  const std::uint32_t oh = d.in_h - d.k + 1;
  const std::uint32_t ow = d.in_w - d.k + 1;

  Reg ox = kb.reg(), oy = kb.reg(), f = kb.reg();
  kb.s2r(ox, SpecialReg::TID_X);
  kb.s2r(oy, SpecialReg::TID_Y);
  kb.s2r(f, SpecialReg::CTAID_X);

  Reg acc = kb.reg();
  kb.ldg(acc, f, bias);

  Reg creg = kb.reg(), kreg = kb.reg();
  kb.movi(creg, d.in_c);
  kb.movi(kreg, d.k);

  Reg c = kb.reg(), ky = kb.reg(), kx = kb.reg();
  Reg iy = kb.reg(), ix = kb.reg(), ii = kb.reg(), wi = kb.reg();
  Reg iv = kb.reg(), wv = kb.reg(), tmp = kb.reg(), wbase = kb.reg();

  // wbase = f * C * k * k
  kb.movi(tmp, d.in_c * d.k * d.k);
  kb.imul(wbase, f, tmp);

  Reg hwreg = kb.reg(), wreg = kb.reg();
  kb.movi(hwreg, d.in_h * d.in_w);
  kb.movi(wreg, d.in_w);

  kb.for_lt(c, 0, creg, 1, [&] {
    kb.for_lt(ky, 0, kreg, 1, [&] {
      kb.for_lt(kx, 0, kreg, 1, [&] {
        kb.iadd(iy, oy, ky);
        kb.iadd(ix, ox, kx);
        kb.imul(ii, c, hwreg);
        kb.imad(tmp, iy, wreg, ix);
        kb.iadd(ii, ii, tmp);
        kb.ldg(iv, ii, in);
        // wi = wbase + ((c*k + ky)*k + kx)
        kb.imad(tmp, c, kreg, ky);
        kb.imad(tmp, tmp, kreg, kx);
        kb.iadd(wi, wbase, tmp);
        kb.ldg(wv, wi, weights);
        kb.ffma(acc, iv, wv, acc);
      });
    });
  });
  apply_activation(kb, acc, act);
  Reg oi = kb.reg(), owreg = kb.reg();
  kb.movi(tmp, oh * ow);
  kb.imul(oi, f, tmp);
  kb.movi(owreg, ow);
  kb.imad(tmp, oy, owreg, ox);
  kb.iadd(oi, oi, tmp);
  kb.stg(oi, out, acc);
  return kb.build();
}

isa::Program maxpool2(Addr in, Addr out, std::uint32_t c, std::uint32_t h,
                      std::uint32_t w) {
  KernelBuilder kb("maxpool2");
  (void)c;
  const std::uint32_t oh = h / 2, ow = w / 2;
  Reg ox = kb.reg(), oy = kb.reg(), ch = kb.reg();
  kb.s2r(ox, SpecialReg::TID_X);
  kb.s2r(oy, SpecialReg::TID_Y);
  kb.s2r(ch, SpecialReg::CTAID_X);
  Reg ii = kb.reg(), tmp = kb.reg(), v = kb.reg(), m = kb.reg();
  Reg hw = kb.reg(), wreg = kb.reg();
  kb.movi(hw, h * w);
  kb.movi(wreg, w);
  // ii = ch*h*w + (2*oy)*w + 2*ox
  Reg iy = kb.reg(), ix = kb.reg();
  kb.iadd(iy, oy, oy);
  kb.iadd(ix, ox, ox);
  kb.imul(ii, ch, hw);
  kb.imad(tmp, iy, wreg, ix);
  kb.iadd(ii, ii, tmp);
  kb.ldg(m, ii, in);
  kb.ldg(v, ii, in + 1);
  kb.fmax(m, m, v);
  kb.ldg(v, ii, in + w);
  kb.fmax(m, m, v);
  kb.ldg(v, ii, in + w + 1);
  kb.fmax(m, m, v);
  Reg oi = kb.reg(), ohw = kb.reg(), owreg = kb.reg();
  kb.movi(ohw, oh * ow);
  kb.movi(owreg, ow);
  kb.imul(oi, ch, ohw);
  kb.imad(tmp, oy, owreg, ox);
  kb.iadd(oi, oi, tmp);
  kb.stg(oi, out, m);
  return kb.build();
}

isa::Program fully_connected(Addr in, Addr weights, Addr bias, Addr out,
                             std::uint32_t in_n, std::uint32_t out_n,
                             Activation act) {
  KernelBuilder kb("fc");
  (void)out_n;
  Reg j = kb.reg();
  kb.s2r(j, SpecialReg::TID_X);
  Reg acc = kb.reg();
  kb.ldg(acc, j, bias);
  Reg i = kb.reg(), nreg = kb.reg(), wi = kb.reg(), wv = kb.reg(), iv = kb.reg();
  kb.movi(nreg, in_n);
  kb.imul(wi, j, nreg);  // running index w[j][0]
  kb.for_lt(i, 0, nreg, 1, [&] {
    kb.ldg(wv, wi, weights);
    kb.ldg(iv, i, in);
    kb.ffma(acc, wv, iv, acc);
    kb.iaddi(wi, wi, 1);
  });
  apply_activation(kb, acc, act);
  kb.stg(j, out, acc);
  return kb.build();
}

isa::Program reduce_sum(Addr in, Addr partial, std::uint32_t block) {
  KernelBuilder kb("reduce");
  kb.set_shared_words(block);
  Reg tid = kb.reg(), cta = kb.reg();
  kb.s2r(tid, SpecialReg::TID_X);
  kb.s2r(cta, SpecialReg::CTAID_X);
  Reg gid = kb.reg(), tmp = kb.reg(), a = kb.reg(), b = kb.reg();
  kb.movi(tmp, 2 * block);
  kb.imad(gid, cta, tmp, tid);
  kb.ldg(a, gid, in);
  kb.ldg(b, gid, in + block);
  kb.fadd(a, a, b);
  kb.sts(tid, 0, a);
  kb.bar();
  Reg stride = kb.reg(), other = kb.reg();
  kb.movi(stride, block / 2);
  auto ploop = kb.pred();
  auto pin = kb.pred();
  kb.while_(ploop, false, [&] { kb.isetpi(ploop, Cmp::GE, stride, 1); },
            [&] {
              kb.isetp(pin, Cmp::LT, tid, stride);
              kb.if_(pin, false, [&] {
                kb.iadd(other, tid, stride);
                kb.lds(a, tid, 0);
                kb.lds(b, other, 0);
                kb.fadd(a, a, b);
                kb.sts(tid, 0, a);
              });
              kb.bar();
              kb.shr(stride, stride, 1);
            });
  auto pz = kb.pred();
  kb.isetpi(pz, Cmp::EQ, tid, 0);
  kb.if_(pz, false, [&] {
    kb.lds(a, tid, 0);
    kb.stg(cta, partial, a);
  });
  return kb.build();
}

isa::Program transpose(Addr in, Addr out, std::uint32_t n) {
  KernelBuilder kb("transpose");
  Reg x = kb.reg(), y = kb.reg(), nreg = kb.reg();
  kb.s2r(x, SpecialReg::TID_X);
  kb.s2r(y, SpecialReg::TID_Y);
  kb.movi(nreg, n);
  Reg src = kb.reg(), dst = kb.reg(), v = kb.reg();
  kb.imad(src, y, nreg, x);
  kb.imad(dst, x, nreg, y);
  kb.ldg(v, src, in);
  kb.stg(dst, out, v);
  return kb.build();
}

isa::Program scan_inclusive(Addr in, Addr out, std::uint32_t n) {
  KernelBuilder kb("scan");
  kb.set_shared_words(n);
  Reg tid = kb.reg();
  kb.s2r(tid, SpecialReg::TID_X);
  Reg v = kb.reg(), addend = kb.reg(), idx = kb.reg(), d = kb.reg();
  kb.ldg(v, tid, in);
  kb.sts(tid, 0, v);
  kb.bar();
  auto ploop = kb.pred();
  auto pread = kb.pred();
  kb.movi(d, 1);
  kb.while_(ploop, false, [&] { kb.isetpi(ploop, Cmp::LT, d, n); },
            [&] {
              kb.movf(addend, 0.0f);
              kb.isetp(pread, Cmp::GE, tid, d);
              kb.if_(pread, false, [&] {
                kb.isub(idx, tid, d);
                kb.lds(addend, idx, 0);
              });
              kb.bar();
              kb.lds(v, tid, 0);
              kb.fadd(v, v, addend);
              kb.sts(tid, 0, v);
              kb.bar();
              kb.shl(d, d, 1);
            });
  kb.lds(v, tid, 0);
  kb.stg(tid, out, v);
  return kb.build();
}

isa::Program gray_filter(Addr r, Addr g, Addr b, Addr out, std::uint32_t n) {
  KernelBuilder kb("gray");
  Reg gid = kb.reg();
  global_id_x(kb, gid);
  auto p = kb.pred();
  kb.isetpi(p, Cmp::LT, gid, n);
  kb.if_(p, false, [&] {
    Reg rv = kb.reg(), gv = kb.reg(), bv = kb.reg(), acc = kb.reg(), c = kb.reg();
    kb.ldg(rv, gid, r);
    kb.ldg(gv, gid, g);
    kb.ldg(bv, gid, b);
    kb.fmulf(acc, rv, 0.299f);
    kb.movf(c, 0.587f);
    kb.ffma(acc, gv, c, acc);
    kb.movf(c, 0.114f);
    kb.ffma(acc, bv, c, acc);
    kb.stg(gid, out, acc);
  });
  return kb.build();
}

isa::Program sobel(Addr in, Addr out, std::uint32_t h, std::uint32_t w) {
  KernelBuilder kb("sobel");
  Reg x = kb.reg(), y = kb.reg(), wreg = kb.reg(), idx = kb.reg();
  kb.s2r(x, SpecialReg::TID_X);
  kb.s2r(y, SpecialReg::TID_Y);
  kb.movi(wreg, w);
  kb.imad(idx, y, wreg, x);
  Reg v = kb.reg();
  kb.movf(v, 0.0f);
  Reg xm1 = kb.reg(), ym1 = kb.reg();
  kb.iaddi(xm1, x, 0xFFFFFFFFu);
  kb.iaddi(ym1, y, 0xFFFFFFFFu);
  auto px = kb.pred();
  auto py = kb.pred();
  kb.isetpi(px, Cmp::LTU, xm1, w - 2);
  kb.if_(px, false, [&] {
    kb.isetpi(py, Cmp::LTU, ym1, h - 2);
    kb.if_(py, false, [&] {
      Reg gx = kb.reg(), gy = kb.reg(), t = kb.reg();
      Reg c2 = kb.reg(), cn1 = kb.reg(), cn2 = kb.reg();
      kb.movf(c2, 2.0f);
      kb.movf(cn1, -1.0f);
      kb.movf(cn2, -2.0f);
      // gx = (nw + 2*w + sw) - (ne + 2*e + se)
      kb.ldg(gx, idx, in - w - 1);
      kb.ldg(t, idx, in - 1);
      kb.ffma(gx, t, c2, gx);
      kb.ldg(t, idx, in + w - 1);
      kb.fadd(gx, gx, t);
      kb.ldg(t, idx, in - w + 1);
      kb.ffma(gx, t, cn1, gx);
      kb.ldg(t, idx, in + 1);
      kb.ffma(gx, t, cn2, gx);
      kb.ldg(t, idx, in + w + 1);
      kb.ffma(gx, t, cn1, gx);
      // gy = (nw + 2*n + ne) - (sw + 2*s + se)
      kb.ldg(gy, idx, in - w - 1);
      kb.ldg(t, idx, in - w);
      kb.ffma(gy, t, c2, gy);
      kb.ldg(t, idx, in - w + 1);
      kb.fadd(gy, gy, t);
      kb.ldg(t, idx, in + w - 1);
      kb.ffma(gy, t, cn1, gy);
      kb.ldg(t, idx, in + w);
      kb.ffma(gy, t, cn2, gy);
      kb.ldg(t, idx, in + w + 1);
      kb.ffma(gy, t, cn1, gy);
      // magnitude squared
      kb.fmul(v, gx, gx);
      kb.ffma(v, gy, gy, v);
    });
  });
  kb.stg(idx, out, v);
  return kb.build();
}

}  // namespace gpf::workloads::kernels
