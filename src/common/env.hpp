// Campaign sizing knobs. The paper's full campaigns (5.8e5 gate faults,
// 1.65e5 software injections) take hundreds of hours; bench binaries default
// to a statistically sampled slice and scale up via GPF_SCALE.
#pragma once

#include <cstddef>

namespace gpf {

/// GPF_SCALE environment variable as a multiplier (default 1.0, min 0.01).
double campaign_scale();

/// n scaled by campaign_scale(), clamped to [min_n, n].
std::size_t scaled(std::size_t n, std::size_t min_n = 8);

/// GPF_SEED environment variable (default 0xC0FFEE).
unsigned long long campaign_seed();

}  // namespace gpf
