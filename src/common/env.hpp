// Central registry of the GPF_* environment knobs. The paper's full
// campaigns (5.8e5 gate faults, 1.65e5 software injections) take hundreds of
// hours; bench binaries default to a statistically sampled slice and scale up
// via GPF_SCALE. Every knob is read here (and only here) so dump_env() can
// print the complete effective configuration at campaign start.
//
//   GPF_SCALE      campaign size multiplier (default 1.0)
//   GPF_SEED       base RNG seed (default 0xC0FFEE)
//   GPF_ENGINE     gate fault-simulation engine: brute | event | batch
//   GPF_THREADS    campaign thread-pool width (0 = hardware threads)
//   GPF_STORE_DIR  directory for persistent campaign stores (default ".")
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace gpf {

/// GPF_SCALE environment variable as a multiplier (default 1.0, min 0.01).
double campaign_scale();

/// n scaled by campaign_scale(), clamped to [min_n, n].
std::size_t scaled(std::size_t n, std::size_t min_n = 8);

/// GPF_SEED environment variable (default 0xC0FFEE).
unsigned long long campaign_seed();

/// Gate-campaign fault-simulation engine (see gate/replay.hpp for the
/// trade-offs). Selected per process by GPF_ENGINE.
enum class EngineKind : std::uint8_t {
  Brute,  ///< full scalar resimulation of every (fault, cycle)
  Event,  ///< single-fault difference-cone propagation
  Batch,  ///< 64-way bit-parallel (PPSFP) word simulation
};
const char* engine_name(EngineKind e);

/// GPF_ENGINE environment variable: "brute" | "event" | "batch"
/// (default batch, the fastest engine; all three classify identically).
EngineKind campaign_engine();

/// GPF_THREADS environment variable: worker count for campaign thread pools
/// (0 = one per hardware thread).
std::size_t campaign_threads();

/// GPF_STORE_DIR environment variable: where `gpfctl` and the checkpointed
/// campaign drivers place their .gpfs result logs (default ".").
std::string store_dir();

/// Print every GPF_* knob with its effective value and whether it came from
/// the environment or a default. Campaign entry points call this once at
/// start so logs record the exact configuration.
void dump_env(std::ostream& os);

}  // namespace gpf
