// Campaign sizing knobs. The paper's full campaigns (5.8e5 gate faults,
// 1.65e5 software injections) take hundreds of hours; bench binaries default
// to a statistically sampled slice and scale up via GPF_SCALE.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gpf {

/// GPF_SCALE environment variable as a multiplier (default 1.0, min 0.01).
double campaign_scale();

/// n scaled by campaign_scale(), clamped to [min_n, n].
std::size_t scaled(std::size_t n, std::size_t min_n = 8);

/// GPF_SEED environment variable (default 0xC0FFEE).
unsigned long long campaign_seed();

/// Gate-campaign fault-simulation engine (see gate/replay.hpp for the
/// trade-offs). Selected per process by GPF_ENGINE.
enum class EngineKind : std::uint8_t {
  Brute,  ///< full scalar resimulation of every (fault, cycle)
  Event,  ///< single-fault difference-cone propagation
  Batch,  ///< 64-way bit-parallel (PPSFP) word simulation
};
const char* engine_name(EngineKind e);

/// GPF_ENGINE environment variable: "brute" | "event" | "batch"
/// (default batch, the fastest engine; all three classify identically).
EngineKind campaign_engine();

/// GPF_THREADS environment variable: worker count for campaign thread pools
/// (0 = one per hardware thread).
std::size_t campaign_threads();

}  // namespace gpf
