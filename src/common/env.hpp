// Central registry of the GPF_* environment knobs. The paper's full
// campaigns (5.8e5 gate faults, 1.65e5 software injections) take hundreds of
// hours; bench binaries default to a statistically sampled slice and scale up
// via GPF_SCALE. Every knob is read here (and only here) so dump_env() can
// print the complete effective configuration at campaign start.
//
//   GPF_SCALE             campaign size multiplier (default 1.0)
//   GPF_SEED              base RNG seed (default 0xC0FFEE)
//   GPF_ENGINE            gate fault-simulation engine: brute | event | batch
//   GPF_COLLAPSE          structural stuck-at fault collapsing: 1 | 0 (default 1)
//   GPF_CONE              batch-engine fanout-cone pruning: 1 | 0 (default 1)
//   GPF_FUSE              gate-program optimizer (fold/fuse/DCE/vreg): 1 | 0 (default 1)
//   GPF_JIT               native-code gate eval: on | off | auto (default auto)
//   GPF_JIT_CACHE_DIR     compiled-netlist .so cache (default <tmp>/gpf-jit)
//   GPF_SIMD              batch-engine SIMD path: native | scalar | avx2 | avx512
//   GPF_LANES             batch-engine lane width: 64 | 256 | 512 (0 = auto)
//   GPF_THREADS           campaign thread-pool width (0 = hardware threads)
//   GPF_STORE_DIR         directory for persistent campaign stores (default ".")
//   GPF_COORD_ADDR        gpfd coordinator host:port (default 127.0.0.1:9777)
//   GPF_LEASE_MS          coordinator lease duration in ms (default 10000)
//   GPF_WORKER_BACKOFF_MS worker reconnect backoff base in ms (default 500)
//   GPF_FSYNC             fdatasync stores at checkpoint boundaries: 1 | 0 (default 1)
//   GPF_METRICS           process-wide metrics registry: 1 | 0 (default 1)
//   GPF_TRACE             Chrome trace-event JSON output path (default off)
//   GPF_STATUS_MS         campaign progress-line period in ms (default 5000, 0 = off)
//   GPF_WAREHOUSE         compact stores into .gpfw warehouse segments: 1 | 0 (default 1)
//   GPF_COMPACT_MS        gpfd incremental-compaction period in ms (default 5000, 0 = at exit only)
//   GPF_HTTP_ADDR         gpfd HTTP/JSON endpoint host:port (default "" = off)
//
// Numeric knobs are parsed strictly: a value that is not entirely a number
// (e.g. GPF_THREADS=max) is rejected with a warning on stderr and the
// documented default is used — it never silently becomes 0.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace gpf {

/// Strictly parses `value` (the contents of environment variable `var`) as an
/// unsigned integer (decimal, or 0x/0-prefixed hex/octal). Leading/trailing
/// whitespace is allowed; anything else non-numeric — including a leading
/// minus sign, trailing garbage, or an empty string — rejects the whole
/// value: a warning naming `var` is printed on stderr and `fallback` is
/// returned. `value == nullptr` (unset variable) returns `fallback` silently.
unsigned long long parse_env_u64(const char* var, const char* value,
                                 unsigned long long fallback);

/// Same contract as parse_env_u64 for floating-point knobs (strtod grammar;
/// non-finite results are rejected too).
double parse_env_double(const char* var, const char* value, double fallback);

/// GPF_SCALE environment variable as a multiplier (default 1.0, min 0.01).
double campaign_scale();

/// n scaled by campaign_scale(), clamped to [min_n, n].
std::size_t scaled(std::size_t n, std::size_t min_n = 8);

/// GPF_SEED environment variable (default 0xC0FFEE).
unsigned long long campaign_seed();

/// Gate-campaign fault-simulation engine (see gate/replay.hpp for the
/// trade-offs). Selected per process by GPF_ENGINE.
enum class EngineKind : std::uint8_t {
  Brute,  ///< full scalar resimulation of every (fault, cycle)
  Event,  ///< single-fault difference-cone propagation
  Batch,  ///< bit-parallel (PPSFP) word simulation, 64-512 lanes (GPF_SIMD)
};
const char* engine_name(EngineKind e);

/// GPF_ENGINE environment variable: "brute" | "event" | "batch"
/// (default batch, the fastest engine; all three classify identically).
EngineKind campaign_engine();

/// GPF_COLLAPSE environment variable: when on (the default), gate campaigns
/// simulate one representative per structural stuck-at equivalence class
/// (see gate/collapse.hpp) and expand results to the full per-fault record
/// stream — stores and exports stay byte-identical to an uncollapsed run.
/// "0" / "off" / "false" / "no" disable.
bool collapse_enabled();

/// GPF_CONE environment variable: when on (the default), the batch engine
/// word-evaluates only the union fanout cone of each fault batch and copies
/// golden values into out-of-cone nets. Same off-spellings as GPF_COLLAPSE.
bool cone_enabled();

/// Process-wide overrides for the two knobs above (tests toggle them without
/// re-execing): -1 = defer to the environment, 0 = off, 1 = on.
void set_collapse_override(int v);
void set_cone_override(int v);

/// GPF_FUSE environment variable: when on (the default), the gate engines run
/// the optimized gate program (constant folding, buf/not-chain and
/// AND-OR-INVERT superop fusion, dead-gate elimination, virtual-register
/// allocation — see gate/gateprog.hpp); when off they run the unoptimized 1:1
/// program. Classifications and exports are identical either way. Same
/// off-spellings as GPF_COLLAPSE. Override: -1 = defer to environment.
bool fuse_enabled();
void set_fuse_override(int v);

/// GPF_JIT environment variable: whether the batch engine compiles the gate
/// program to native code with the system C++ compiler (see gate/jit.hpp).
///   off   never JIT; always use the direct-threaded interpreter
///   on    JIT every netlist (even tiny ones; tests use this)
///   auto  JIT netlists large enough to amortize the compile (the default);
///         silently falls back to the interpreter when no compiler exists
/// Unrecognized values warn on stderr and mean auto.
enum class JitMode : std::uint8_t { Off, On, Auto };
const char* jit_mode_name(JitMode m);
JitMode jit_mode();

/// Override for GPF_JIT: -1 = defer to environment, 0 = off, 1 = on,
/// 2 = auto. Tests toggle this without re-execing.
void set_jit_override(int v);

/// GPF_JIT_CACHE_DIR environment variable: directory where JIT-compiled
/// netlist shared objects are cached across processes, keyed by a
/// netlist+width+codegen-version hash (default "<system temp>/gpf-jit").
std::string jit_cache_dir();

/// Override for GPF_JIT_CACHE_DIR (tests point it at a scratch dir without
/// re-execing). An empty string defers to the environment.
void set_jit_cache_dir_override(const std::string& dir);

/// Batch-engine SIMD path requested via GPF_SIMD (default native = widest
/// the CPU supports). The request is resolved against the build's compiled
/// widths and cpuid by gate::batch_lane_width().
enum class SimdKind : std::uint8_t {
  Native,  ///< widest path this build and CPU support (the default)
  Scalar,  ///< 64-lane uint64_t baseline
  Avx2,    ///< 256-lane AVX2 ymm path
  Avx512,  ///< 512-lane AVX-512 zmm path
};
const char* simd_name(SimdKind k);

/// GPF_SIMD environment variable: "native" | "scalar" | "avx2" | "avx512"
/// (default native). Unrecognized values warn on stderr and mean native.
SimdKind simd_request();

/// GPF_LANES environment variable: an exact batch lane width (64, 256 or
/// 512). 0 / unset defers to GPF_SIMD. Takes precedence over GPF_SIMD when
/// both are set; other values warn on stderr and mean 0.
std::size_t lanes_request();

/// GPF_THREADS environment variable: worker count for campaign thread pools
/// (0 = one per hardware thread). A process-wide override (the `--jobs N`
/// flag of gpfctl/gpfd) takes precedence over the environment.
std::size_t campaign_threads();

/// Overrides GPF_THREADS for the rest of the process (0 = clear the
/// override and fall back to the environment). Backs the `--jobs N` flag so
/// one invocation can size its pools without touching the environment.
void set_campaign_threads_override(std::size_t n);

/// GPF_STORE_DIR environment variable: where `gpfctl` and the checkpointed
/// campaign drivers place their .gpfs result logs (default ".").
std::string store_dir();

/// GPF_COORD_ADDR environment variable: the gpfd coordinator address a
/// worker connects to, as "host:port" (default "127.0.0.1:9777").
std::string coord_addr();

/// GPF_LEASE_MS environment variable: how long a leased work unit stays
/// assigned to a worker without a heartbeat/result before the coordinator
/// reassigns it (default 10000, min 50).
std::uint32_t lease_duration_ms();

/// GPF_WORKER_BACKOFF_MS environment variable: base delay of the worker's
/// exponential reconnect backoff (doubles per failed attempt, capped at
/// 64x; default 500, min 1).
std::uint32_t worker_backoff_ms();

/// GPF_FSYNC environment variable: when on (the default), the campaign store
/// issues fdatasync at checkpoint/lease-retire boundaries so acknowledged
/// work survives a host crash or power loss, not just a process kill. Same
/// off-spellings as GPF_COLLAPSE. Override: -1 = defer to environment.
bool fsync_enabled();
void set_fsync_override(int v);

/// GPF_METRICS environment variable: when on (the default), the process-wide
/// obs:: metrics registry records counters/gauges/histograms on the hot
/// paths; when off every record call is a single relaxed load + untaken
/// branch. Override: -1 = defer to environment (benches toggle this to
/// measure instrumentation overhead in one process).
bool metrics_enabled();
void set_metrics_override(int v);

/// GPF_TRACE environment variable: path of a Chrome trace-event JSON file to
/// write campaign -> unit -> batch spans into (viewable in chrome://tracing
/// or Perfetto). Empty string (the default) disables tracing.
std::string trace_path();

/// GPF_STATUS_MS environment variable: how often the single-process campaign
/// drivers print a progress/ETA line (default 5000 ms, 0 = off). The gpfd
/// coordinator's equivalent is its --status-ms flag.
std::uint32_t status_interval_ms();

/// GPF_WAREHOUSE environment variable: when on (the default), gpfctl
/// run/resume and gpfd roll the campaign store into its columnar warehouse
/// segment (<store>.gpfw) at campaign end, and gpfd refreshes it
/// incrementally while serving — `gpfctl query` and the HTTP /v1/query
/// endpoint answer from its pre-aggregated rollups in O(ms). Same
/// off-spellings as GPF_COLLAPSE. Override: -1 = defer to environment.
bool warehouse_enabled();
void set_warehouse_override(int v);

/// GPF_COMPACT_MS environment variable: how often gpfd's background
/// compaction thread rolls freshly appended records into the warehouse
/// segment (default 5000 ms; 0 = compact only once, at end of serve). The
/// gpfd --compact-ms flag overrides.
std::uint32_t compact_interval_ms();

/// GPF_HTTP_ADDR environment variable: "host:port" of gpfd's HTTP/1.1 JSON
/// endpoint (GET /v1/stats, /v1/query). Empty string (the default) disables
/// it; the gpfd --http flag overrides.
std::string http_addr();

/// Print every GPF_* knob with its effective value and whether it came from
/// the environment or a default. Campaign entry points call this once at
/// start so logs record the exact configuration.
void dump_env(std::ostream& os);

}  // namespace gpf
