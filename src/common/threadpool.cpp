#include "common/threadpool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "common/env.hpp"

namespace gpf {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = campaign_threads();  // GPF_THREADS override
  if (workers == 0) workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    const std::exception_ptr e = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads_.size() == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t chunk = std::max<std::size_t>(1, n / (threads_.size() * 8));
  const std::size_t tasks = std::min(threads_.size(), (n + chunk - 1) / chunk);
  for (std::size_t t = 0; t < tasks; ++t) {
    submit([next, n, chunk, &fn] {
      for (;;) {
        const std::size_t begin = next->fetch_add(chunk);
        if (begin >= n) return;
        const std::size_t end = std::min(n, begin + chunk);
        for (std::size_t i = begin; i < end; ++i) fn(i);
      }
    });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace gpf
