// Bit-manipulation helpers shared by the ISA encoding, the gate-level
// substrate, and the fault-injection overlays.
#pragma once

#include <bit>
#include <cstdint>
#include <type_traits>

namespace gpf {

/// Extract `width` bits of `word` starting at bit `lo` (LSB = bit 0).
template <typename T>
constexpr T bits(T word, unsigned lo, unsigned width) noexcept {
  static_assert(std::is_unsigned_v<T>);
  const T mask = width >= sizeof(T) * 8 ? ~T{0} : ((T{1} << width) - 1);
  return static_cast<T>((word >> lo) & mask);
}

/// Return `word` with `width` bits starting at `lo` replaced by `value`.
template <typename T>
constexpr T set_bits(T word, unsigned lo, unsigned width, T value) noexcept {
  static_assert(std::is_unsigned_v<T>);
  const T mask = width >= sizeof(T) * 8 ? ~T{0} : ((T{1} << width) - 1);
  return static_cast<T>((word & ~(mask << lo)) | ((value & mask) << lo));
}

/// Test a single bit.
template <typename T>
constexpr bool bit(T word, unsigned idx) noexcept {
  return ((word >> idx) & T{1}) != 0;
}

/// Set / clear a single bit.
template <typename T>
constexpr T with_bit(T word, unsigned idx, bool value) noexcept {
  const T mask = T{1} << idx;
  return value ? static_cast<T>(word | mask) : static_cast<T>(word & ~mask);
}

/// Population count of the low `n` bits.
template <typename T>
constexpr int popcount_low(T word, unsigned n) noexcept {
  const T mask = n >= sizeof(T) * 8 ? ~T{0} : ((T{1} << n) - 1);
  return std::popcount(static_cast<T>(word & mask));
}

/// Sign-extend the low `width` bits of `value` to 64 bits.
constexpr std::int64_t sign_extend(std::uint64_t value, unsigned width) noexcept {
  const std::uint64_t m = std::uint64_t{1} << (width - 1);
  const std::uint64_t x = value & ((std::uint64_t{1} << width) - 1);
  return static_cast<std::int64_t>((x ^ m) - m);
}

/// Bitcast between float and its raw 32-bit pattern.
constexpr std::uint32_t f32_bits(float f) noexcept { return std::bit_cast<std::uint32_t>(f); }
constexpr float bits_f32(std::uint32_t u) noexcept { return std::bit_cast<float>(u); }

}  // namespace gpf
