// Deterministic, seedable PRNG used by every campaign so experiments are
// reproducible run-to-run. xoshiro256** core with SplitMix64 seeding.
#pragma once

#include <cstdint>
#include <limits>

namespace gpf {

/// SplitMix64: used to expand a single 64-bit seed into xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality, and UniformRandomBitGenerator-compatible.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n). Unbiased via rejection.
  std::uint64_t below(std::uint64_t n) noexcept {
    if (n == 0) return 0;
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform int in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  bool chance(double p) noexcept { return uniform() < p; }

  /// Derive an independent stream (for per-fault / per-thread determinism).
  Rng fork(std::uint64_t stream_id) noexcept {
    SplitMix64 sm(s_[0] ^ (stream_id * 0x9e3779b97f4a7c15ULL + 0x1234567));
    Rng r(sm.next());
    return r;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace gpf
