#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace gpf {

Table& Table::header(std::vector<std::string> cols) {
  header_ = std::move(cols);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string Table::pct(double fraction, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", prec, fraction * 100.0);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    if (cells.size() > width.size()) width.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      width[i] = std::max(width[i], cells[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto line = [&] {
    os << '+';
    for (std::size_t w : width) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t i = 0; i < width.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      os << ' ' << c << std::string(width[i] - c.size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  os << "== " << title_ << " ==\n";
  line();
  emit(header_);
  line();
  for (const auto& r : rows_) emit(r);
  line();
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ',';
      os << cells[i];
    }
    os << '\n';
  };
  os << "# " << title_ << '\n';
  emit(header_);
  for (const auto& r : rows_) emit(r);
}

}  // namespace gpf
