#include "common/env.hpp"

#include <algorithm>
#include <cstdlib>
#include <ostream>
#include <string>

namespace gpf {

double campaign_scale() {
  static const double scale = [] {
    const char* s = std::getenv("GPF_SCALE");
    if (!s) return 1.0;
    const double v = std::atof(s);
    return v > 0.01 ? v : 0.01;
  }();
  return scale;
}

std::size_t scaled(std::size_t n, std::size_t min_n) {
  const auto v = static_cast<std::size_t>(static_cast<double>(n) * campaign_scale());
  return std::clamp(v, std::min(min_n, n), std::max(n, v));
}

unsigned long long campaign_seed() {
  static const unsigned long long seed = [] {
    const char* s = std::getenv("GPF_SEED");
    return s ? std::strtoull(s, nullptr, 0) : 0xC0FFEEULL;
  }();
  return seed;
}

const char* engine_name(EngineKind e) {
  switch (e) {
    case EngineKind::Brute: return "brute";
    case EngineKind::Event: return "event";
    case EngineKind::Batch: return "batch";
  }
  return "?";
}

EngineKind campaign_engine() {
  static const EngineKind engine = [] {
    const char* s = std::getenv("GPF_ENGINE");
    if (!s) return EngineKind::Batch;
    const std::string v(s);
    if (v == "brute") return EngineKind::Brute;
    if (v == "event") return EngineKind::Event;
    if (v == "batch") return EngineKind::Batch;
    return EngineKind::Batch;
  }();
  return engine;
}

std::size_t campaign_threads() {
  static const std::size_t threads = [] {
    const char* s = std::getenv("GPF_THREADS");
    if (!s) return std::size_t{0};
    const long v = std::atol(s);
    return v > 0 ? static_cast<std::size_t>(v) : std::size_t{0};
  }();
  return threads;
}

std::string store_dir() {
  static const std::string dir = [] {
    const char* s = std::getenv("GPF_STORE_DIR");
    return std::string(s && *s ? s : ".");
  }();
  return dir;
}

void dump_env(std::ostream& os) {
  const auto line = [&os](const char* var, const std::string& value) {
    os << "# " << var << "=" << value
       << (std::getenv(var) ? "" : " (default)") << "\n";
  };
  line("GPF_SCALE", std::to_string(campaign_scale()));
  line("GPF_SEED", std::to_string(campaign_seed()));
  line("GPF_ENGINE", engine_name(campaign_engine()));
  line("GPF_THREADS", campaign_threads() ? std::to_string(campaign_threads())
                                         : "0 (hardware threads)");
  line("GPF_STORE_DIR", store_dir());
}

}  // namespace gpf
