#include "common/env.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <ostream>
#include <string>

namespace gpf {

namespace {

// Skips leading whitespace and rejects a leading '-': all GPF_* numeric
// knobs are unsigned, and strtoull would otherwise wrap -3 to a huge value.
const char* numeric_start(const char* s) {
  while (std::isspace(static_cast<unsigned char>(*s))) ++s;
  return *s == '-' ? nullptr : s;
}

bool only_trailing_space(const char* end) {
  while (std::isspace(static_cast<unsigned char>(*end))) ++end;
  return *end == '\0';
}

}  // namespace

unsigned long long parse_env_u64(const char* var, const char* value,
                                 unsigned long long fallback) {
  if (!value) return fallback;
  const char* start = numeric_start(value);
  if (start && *start) {
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(start, &end, 0);
    if (end != start && errno != ERANGE && only_trailing_space(end)) return v;
  }
  std::fprintf(stderr,
               "[gpf] ignoring %s=\"%s\": not an unsigned integer; "
               "using default %llu\n",
               var, value, fallback);
  return fallback;
}

double parse_env_double(const char* var, const char* value, double fallback) {
  if (!value) return fallback;
  const char* start = numeric_start(value);
  if (start && *start) {
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end != start && errno != ERANGE && only_trailing_space(end) &&
        std::isfinite(v))
      return v;
  }
  std::fprintf(stderr,
               "[gpf] ignoring %s=\"%s\": not a number; using default %g\n",
               var, value, fallback);
  return fallback;
}

double campaign_scale() {
  static const double scale = [] {
    const double v = parse_env_double("GPF_SCALE", std::getenv("GPF_SCALE"), 1.0);
    return v > 0.01 ? v : 0.01;
  }();
  return scale;
}

std::size_t scaled(std::size_t n, std::size_t min_n) {
  const auto v = static_cast<std::size_t>(static_cast<double>(n) * campaign_scale());
  return std::clamp(v, std::min(min_n, n), std::max(n, v));
}

unsigned long long campaign_seed() {
  static const unsigned long long seed =
      parse_env_u64("GPF_SEED", std::getenv("GPF_SEED"), 0xC0FFEEULL);
  return seed;
}

const char* engine_name(EngineKind e) {
  switch (e) {
    case EngineKind::Brute: return "brute";
    case EngineKind::Event: return "event";
    case EngineKind::Batch: return "batch";
  }
  return "?";
}

EngineKind campaign_engine() {
  static const EngineKind engine = [] {
    const char* s = std::getenv("GPF_ENGINE");
    if (!s) return EngineKind::Batch;
    const std::string v(s);
    if (v == "brute") return EngineKind::Brute;
    if (v == "event") return EngineKind::Event;
    if (v == "batch") return EngineKind::Batch;
    return EngineKind::Batch;
  }();
  return engine;
}

namespace {
std::atomic<std::size_t> g_threads_override{0};
std::atomic<int> g_collapse_override{-1};
std::atomic<int> g_cone_override{-1};

bool env_flag(const char* var, bool dflt) {
  const char* s = std::getenv(var);
  if (!s || !*s) return dflt;
  const std::string v(s);
  return !(v == "0" || v == "off" || v == "false" || v == "no");
}
}  // namespace

bool collapse_enabled() {
  const int o = g_collapse_override.load();
  if (o >= 0) return o != 0;
  static const bool on = env_flag("GPF_COLLAPSE", true);
  return on;
}

bool cone_enabled() {
  const int o = g_cone_override.load();
  if (o >= 0) return o != 0;
  static const bool on = env_flag("GPF_CONE", true);
  return on;
}

void set_collapse_override(int v) { g_collapse_override = v < 0 ? -1 : (v ? 1 : 0); }
void set_cone_override(int v) { g_cone_override = v < 0 ? -1 : (v ? 1 : 0); }

namespace {
std::atomic<int> g_fuse_override{-1};
std::atomic<int> g_jit_override{-1};  // -1 defer, else JitMode value
std::mutex g_jit_cache_dir_mu;
std::string g_jit_cache_dir_override;  // guarded by g_jit_cache_dir_mu
}  // namespace

bool fuse_enabled() {
  const int o = g_fuse_override.load();
  if (o >= 0) return o != 0;
  static const bool on = env_flag("GPF_FUSE", true);
  return on;
}

void set_fuse_override(int v) { g_fuse_override = v < 0 ? -1 : (v ? 1 : 0); }

const char* jit_mode_name(JitMode m) {
  switch (m) {
    case JitMode::Off: return "off";
    case JitMode::On: return "on";
    case JitMode::Auto: return "auto";
  }
  return "?";
}

JitMode jit_mode() {
  const int o = g_jit_override.load();
  if (o >= 0) return static_cast<JitMode>(o);
  static const JitMode mode = [] {
    const char* s = std::getenv("GPF_JIT");
    if (!s || !*s) return JitMode::Auto;
    const std::string v(s);
    if (v == "off" || v == "0" || v == "false" || v == "no") return JitMode::Off;
    if (v == "on" || v == "1" || v == "true" || v == "yes") return JitMode::On;
    if (v == "auto") return JitMode::Auto;
    std::fprintf(stderr,
                 "[gpf] ignoring GPF_JIT=\"%s\": expected on|off|auto; "
                 "using auto\n",
                 s);
    return JitMode::Auto;
  }();
  return mode;
}

void set_jit_override(int v) {
  g_jit_override = (v < 0 || v > 2) ? -1 : v;
}

std::string jit_cache_dir() {
  {
    std::lock_guard<std::mutex> lk(g_jit_cache_dir_mu);
    if (!g_jit_cache_dir_override.empty()) return g_jit_cache_dir_override;
  }
  const char* s = std::getenv("GPF_JIT_CACHE_DIR");
  if (s && *s) return std::string(s);
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp && *tmp ? tmp : "/tmp") + "/gpf-jit";
}

void set_jit_cache_dir_override(const std::string& dir) {
  std::lock_guard<std::mutex> lk(g_jit_cache_dir_mu);
  g_jit_cache_dir_override = dir;
}

const char* simd_name(SimdKind k) {
  switch (k) {
    case SimdKind::Native: return "native";
    case SimdKind::Scalar: return "scalar";
    case SimdKind::Avx2: return "avx2";
    case SimdKind::Avx512: return "avx512";
  }
  return "?";
}

SimdKind simd_request() {
  static const SimdKind kind = [] {
    const char* s = std::getenv("GPF_SIMD");
    if (!s || !*s) return SimdKind::Native;
    const std::string v(s);
    if (v == "native") return SimdKind::Native;
    if (v == "scalar") return SimdKind::Scalar;
    if (v == "avx2") return SimdKind::Avx2;
    if (v == "avx512") return SimdKind::Avx512;
    std::fprintf(stderr,
                 "[gpf] ignoring GPF_SIMD=\"%s\": expected "
                 "native|scalar|avx2|avx512; using native\n",
                 s);
    return SimdKind::Native;
  }();
  return kind;
}

std::size_t lanes_request() {
  static const std::size_t lanes = [] {
    const unsigned long long v =
        parse_env_u64("GPF_LANES", std::getenv("GPF_LANES"), 0);
    if (v == 0 || v == 64 || v == 256 || v == 512)
      return static_cast<std::size_t>(v);
    std::fprintf(stderr,
                 "[gpf] ignoring GPF_LANES=%llu: expected 64, 256 or 512; "
                 "deferring to GPF_SIMD\n",
                 v);
    return std::size_t{0};
  }();
  return lanes;
}

std::size_t campaign_threads() {
  if (const std::size_t o = g_threads_override.load()) return o;
  static const std::size_t threads = static_cast<std::size_t>(
      parse_env_u64("GPF_THREADS", std::getenv("GPF_THREADS"), 0));
  return threads;
}

void set_campaign_threads_override(std::size_t n) { g_threads_override = n; }

std::string store_dir() {
  static const std::string dir = [] {
    const char* s = std::getenv("GPF_STORE_DIR");
    return std::string(s && *s ? s : ".");
  }();
  return dir;
}

std::string coord_addr() {
  static const std::string addr = [] {
    const char* s = std::getenv("GPF_COORD_ADDR");
    return std::string(s && *s ? s : "127.0.0.1:9777");
  }();
  return addr;
}

std::uint32_t lease_duration_ms() {
  static const std::uint32_t ms = [] {
    const unsigned long long v =
        parse_env_u64("GPF_LEASE_MS", std::getenv("GPF_LEASE_MS"), 10000);
    return static_cast<std::uint32_t>(std::clamp(v, 50ull, 0xFFFFFFFFull));
  }();
  return ms;
}

std::uint32_t worker_backoff_ms() {
  static const std::uint32_t ms = [] {
    const unsigned long long v = parse_env_u64(
        "GPF_WORKER_BACKOFF_MS", std::getenv("GPF_WORKER_BACKOFF_MS"), 500);
    return static_cast<std::uint32_t>(std::clamp(v, 1ull, 0xFFFFFFFFull));
  }();
  return ms;
}

namespace {
std::atomic<int> g_fsync_override{-1};
std::atomic<int> g_metrics_override{-1};
}  // namespace

bool fsync_enabled() {
  const int o = g_fsync_override.load();
  if (o >= 0) return o != 0;
  static const bool on = env_flag("GPF_FSYNC", true);
  return on;
}

void set_fsync_override(int v) { g_fsync_override = v < 0 ? -1 : (v ? 1 : 0); }

bool metrics_enabled() {
  const int o = g_metrics_override.load();
  if (o >= 0) return o != 0;
  static const bool on = env_flag("GPF_METRICS", true);
  return on;
}

void set_metrics_override(int v) {
  g_metrics_override = v < 0 ? -1 : (v ? 1 : 0);
}

std::string trace_path() {
  static const std::string path = [] {
    const char* s = std::getenv("GPF_TRACE");
    return std::string(s ? s : "");
  }();
  return path;
}

std::uint32_t status_interval_ms() {
  static const std::uint32_t ms = [] {
    const unsigned long long v =
        parse_env_u64("GPF_STATUS_MS", std::getenv("GPF_STATUS_MS"), 5000);
    return static_cast<std::uint32_t>(std::min(v, 0xFFFFFFFFull));
  }();
  return ms;
}

namespace {
std::atomic<int> g_warehouse_override{-1};
}  // namespace

bool warehouse_enabled() {
  const int o = g_warehouse_override.load();
  if (o >= 0) return o != 0;
  static const bool on = env_flag("GPF_WAREHOUSE", true);
  return on;
}

void set_warehouse_override(int v) {
  g_warehouse_override = v < 0 ? -1 : (v ? 1 : 0);
}

std::uint32_t compact_interval_ms() {
  static const std::uint32_t ms = [] {
    const unsigned long long v =
        parse_env_u64("GPF_COMPACT_MS", std::getenv("GPF_COMPACT_MS"), 5000);
    return static_cast<std::uint32_t>(std::min(v, 0xFFFFFFFFull));
  }();
  return ms;
}

std::string http_addr() {
  static const std::string addr = [] {
    const char* s = std::getenv("GPF_HTTP_ADDR");
    return std::string(s ? s : "");
  }();
  return addr;
}

void dump_env(std::ostream& os) {
  const auto line = [&os](const char* var, const std::string& value) {
    os << "# " << var << "=" << value
       << (std::getenv(var) ? "" : " (default)") << "\n";
  };
  line("GPF_SCALE", std::to_string(campaign_scale()));
  line("GPF_SEED", std::to_string(campaign_seed()));
  line("GPF_ENGINE", engine_name(campaign_engine()));
  if (g_collapse_override.load() >= 0)
    os << "# GPF_COLLAPSE=" << (collapse_enabled() ? "1" : "0") << " (override)\n";
  else
    line("GPF_COLLAPSE", collapse_enabled() ? "1" : "0");
  if (g_cone_override.load() >= 0)
    os << "# GPF_CONE=" << (cone_enabled() ? "1" : "0") << " (override)\n";
  else
    line("GPF_CONE", cone_enabled() ? "1" : "0");
  if (g_fuse_override.load() >= 0)
    os << "# GPF_FUSE=" << (fuse_enabled() ? "1" : "0") << " (override)\n";
  else
    line("GPF_FUSE", fuse_enabled() ? "1" : "0");
  if (g_jit_override.load() >= 0)
    os << "# GPF_JIT=" << jit_mode_name(jit_mode()) << " (override)\n";
  else
    line("GPF_JIT", jit_mode_name(jit_mode()));
  const bool cache_overridden = [] {
    std::lock_guard<std::mutex> lk(g_jit_cache_dir_mu);
    return !g_jit_cache_dir_override.empty();
  }();
  if (cache_overridden)
    os << "# GPF_JIT_CACHE_DIR=" << jit_cache_dir() << " (override)\n";
  else
    line("GPF_JIT_CACHE_DIR", jit_cache_dir());
  line("GPF_SIMD", simd_name(simd_request()));
  line("GPF_LANES", lanes_request() ? std::to_string(lanes_request())
                                    : "0 (auto: GPF_SIMD/cpuid)");
  if (const std::size_t o = g_threads_override.load())
    os << "# GPF_THREADS=" << o << " (--jobs override)\n";
  else
    line("GPF_THREADS", campaign_threads()
                            ? std::to_string(campaign_threads())
                            : "0 (hardware threads)");
  line("GPF_STORE_DIR", store_dir());
  line("GPF_COORD_ADDR", coord_addr());
  line("GPF_LEASE_MS", std::to_string(lease_duration_ms()));
  line("GPF_WORKER_BACKOFF_MS", std::to_string(worker_backoff_ms()));
  if (g_fsync_override.load() >= 0)
    os << "# GPF_FSYNC=" << (fsync_enabled() ? "1" : "0") << " (override)\n";
  else
    line("GPF_FSYNC", fsync_enabled() ? "1" : "0");
  if (g_metrics_override.load() >= 0)
    os << "# GPF_METRICS=" << (metrics_enabled() ? "1" : "0") << " (override)\n";
  else
    line("GPF_METRICS", metrics_enabled() ? "1" : "0");
  line("GPF_TRACE", trace_path().empty() ? "(off)" : trace_path());
  line("GPF_STATUS_MS", std::to_string(status_interval_ms()));
  if (g_warehouse_override.load() >= 0)
    os << "# GPF_WAREHOUSE=" << (warehouse_enabled() ? "1" : "0")
       << " (override)\n";
  else
    line("GPF_WAREHOUSE", warehouse_enabled() ? "1" : "0");
  line("GPF_COMPACT_MS", std::to_string(compact_interval_ms()));
  line("GPF_HTTP_ADDR", http_addr().empty() ? "(off)" : http_addr());
}

}  // namespace gpf
