#include "common/env.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace gpf {

double campaign_scale() {
  static const double scale = [] {
    const char* s = std::getenv("GPF_SCALE");
    if (!s) return 1.0;
    const double v = std::atof(s);
    return v > 0.01 ? v : 0.01;
  }();
  return scale;
}

std::size_t scaled(std::size_t n, std::size_t min_n) {
  const auto v = static_cast<std::size_t>(static_cast<double>(n) * campaign_scale());
  return std::clamp(v, std::min(min_n, n), std::max(n, v));
}

unsigned long long campaign_seed() {
  static const unsigned long long seed = [] {
    const char* s = std::getenv("GPF_SEED");
    return s ? std::strtoull(s, nullptr, 0) : 0xC0FFEEULL;
  }();
  return seed;
}

}  // namespace gpf
