// Fixed-size thread pool with a parallel_for convenience. Fault-injection
// campaigns are embarrassingly parallel across faults; the paper runs
// 10-40 parallel processes for the same purpose.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gpf {

class ThreadPool {
 public:
  /// `workers == 0` selects the GPF_THREADS environment knob, falling back
  /// to hardware_concurrency (minimum 1).
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return threads_.size(); }

  /// Enqueue a task; wait_idle() blocks until all enqueued tasks finish.
  /// A task that throws does not kill its worker thread: the first
  /// exception is captured and rethrown from the next wait_idle() /
  /// parallel_for() (later ones are dropped). The destructor still runs
  /// every queued task but swallows captured exceptions.
  void submit(std::function<void()> task);
  void wait_idle();

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  /// Iterations are chunked to keep scheduling overhead low.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace gpf
