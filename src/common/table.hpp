// ASCII table / CSV rendering for paper-style result tables. Every bench
// binary formats its output through this so tables are uniform and diffable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace gpf {

/// A simple column-aligned table with a title, header row, and data rows.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  Table& header(std::vector<std::string> cols);
  Table& row(std::vector<std::string> cells);

  /// Convenience: format a double with `prec` digits after the point.
  static std::string num(double v, int prec = 2);
  /// Percentage with trailing '%'.
  static std::string pct(double fraction, int prec = 1);

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  const std::string& title() const { return title_; }
  std::size_t rows() const { return rows_.size(); }
  const std::vector<std::string>& header_row() const { return header_; }
  const std::vector<std::string>& row_at(std::size_t i) const { return rows_[i]; }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gpf
