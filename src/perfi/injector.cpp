#include "perfi/injector.hpp"

#include <algorithm>

#include "isa/opcode.hpp"

namespace gpf::perfi {

using errmodel::ErrorModel;
using isa::Op;

namespace {

/// Replacement pool for IOC on the INT/FP32 cores. A corrupted-but-valid
/// opcode can land anywhere in the populated opcode space, including memory
/// and branch operations whose operand fields then get reinterpreted —
/// the source of the paper's illegal-address / illegal-instruction DUEs.
constexpr Op kAluPool[] = {Op::IADD, Op::ISUB, Op::IMUL, Op::IMAD,
                           Op::IMIN, Op::IMAX, Op::SHL,  Op::SHR,
                           Op::LOP_AND, Op::LOP_OR, Op::LOP_XOR,
                           Op::FADD, Op::FMUL, Op::FFMA, Op::FMIN, Op::FMAX,
                           Op::LD,   Op::ST,   Op::MOV,  Op::SEL,
                           Op::S2R,  Op::BRA,  Op::FRCP, Op::FSQRT};
constexpr Op kSetpPool[] = {Op::ISETP_LT, Op::ISETP_LE, Op::ISETP_GT,
                            Op::ISETP_GE, Op::ISETP_EQ, Op::ISETP_NE,
                            Op::FSETP_LT, Op::FSETP_GT, Op::FSETP_EQ,
                            Op::FSETP_NE};

bool is_tid_s2r(const isa::Instruction& in) {
  if (in.op != Op::S2R) return false;
  const auto sr = static_cast<isa::SpecialReg>(in.rs1);
  return sr == isa::SpecialReg::TID_X || sr == isa::SpecialReg::TID_Y ||
         sr == isa::SpecialReg::TID_Z;
}

bool is_ctaid_s2r(const isa::Instruction& in) {
  if (in.op != Op::S2R) return false;
  const auto sr = static_cast<isa::SpecialReg>(in.rs1);
  return sr == isa::SpecialReg::CTAID_X || sr == isa::SpecialReg::CTAID_Y;
}

}  // namespace

bool ErrorInjector::targets(const arch::ExecCtx& ctx) const {
  return ctx.sm_id == d_.sm_id && ctx.ppb_id == d_.ppb_id &&
         ((d_.warp_mask >> ctx.warp().slot) & 1u);
}

std::uint32_t ErrorInjector::lane_set(const arch::ExecCtx& ctx) const {
  return d_.thread_mask & ctx.exec_mask;
}

void ErrorInjector::pre_execute(arch::ExecCtx& ctx) {
  for (Saved& s : saved_) s.active = false;
  if (!targets(ctx)) return;

  isa::Instruction& in = ctx.instr;
  const std::uint32_t regs = ctx.gpu().running_program()->regs_per_thread;

  switch (d_.model) {
    case ErrorModel::IVOC:
      // An invalid opcode reaches the dispatcher: device exception.
      ctx.pending_trap = arch::TrapKind::InvalidOpcode;
      return;

    case ErrorModel::IOC: {
      const isa::UnitClass u = isa::unit_of(in.op);
      if (u != isa::UnitClass::INT && u != isa::UnitClass::FP32) return;
      if (isa::writes_predicate(in.op)) {
        const Op repl = kSetpPool[d_.replacement_op % std::size(kSetpPool)];
        in.op = repl != in.op
                    ? repl
                    : kSetpPool[(d_.replacement_op + 1) % std::size(kSetpPool)];
      } else {
        const Op repl = kAluPool[d_.replacement_op % std::size(kAluPool)];
        in.op = repl != in.op
                    ? repl
                    : kAluPool[(d_.replacement_op + 1) % std::size(kAluPool)];
      }
      return;
    }

    case ErrorModel::IRA:
    case ErrorModel::IVRA: {
      auto redirect = [&](std::uint8_t old) -> std::uint8_t {
        const std::uint32_t x = old ^ d_.bit_err_mask;
        if (d_.model == ErrorModel::IRA) {
          std::uint32_t v = x % regs;
          if (v == old) v = (v + 1) % regs;
          return static_cast<std::uint8_t>(v);
        }
        // IVRA: outside [0, regs_per_thread), never RZ.
        const std::uint32_t span = 250 - regs;
        return static_cast<std::uint8_t>(regs + (x % span));
      };
      const int srcs = isa::num_sources(in.op);
      switch (d_.err_oper_loc) {
        case 0:
          // Destination (or the data register of a store).
          if (isa::writes_register(in.op) || isa::is_store(in.op))
            in.rd = redirect(in.rd);
          break;
        case 1:
          if (srcs >= 1 && in.op != Op::S2R) in.rs1 = redirect(in.rs1);
          break;
        case 2:
          if (srcs >= 2 && !(in.use_imm && srcs == 2)) in.rs2 = redirect(in.rs2);
          break;
        default:
          if (srcs >= 3 && !in.use_imm && in.op != Op::SEL)
            in.rs3 = redirect(in.rs3);
          break;
      }
      return;
    }

    case ErrorModel::IMD: {
      if (!isa::is_store(in.op) || in.space != isa::MemSpace::Shared) return;
      const std::uint8_t reg = d_.err_oper_loc == 0 ? in.rd : in.rs1;
      if (reg == isa::kRZ || reg >= regs) return;
      for (unsigned lane = 0; lane < arch::kWarpSize; ++lane) {
        if (!((lane_set(ctx) >> lane) & 1)) continue;
        ctx.write_reg(lane, reg, ctx.read_reg(lane, reg) ^ d_.bit_err_mask);
      }
      return;
    }

    case ErrorModel::IAL:
      if (d_.enable_lane) {
        // Force-enable predicated-off instructions on the faulty lanes.
        if (in.guard_pred != isa::kPT || in.guard_neg)
          ctx.exec_mask |= d_.thread_mask & ctx.warp().active_mask();
      } else {
        // Part I of the disable recipe: snapshot the destination so Part II
        // can discard the lane's FU result.
        const isa::UnitClass u = isa::unit_of(in.op);
        if ((u != isa::UnitClass::INT && u != isa::UnitClass::FP32) ||
            !isa::writes_register(in.op) || in.rd == isa::kRZ || in.rd >= regs)
          return;
        saved_reg_ = in.rd;
        for (unsigned lane = 0; lane < arch::kWarpSize; ++lane) {
          if (!((lane_set(ctx) >> lane) & 1)) continue;
          saved_[lane] = Saved{true, lane, ctx.read_reg(lane, in.rd)};
        }
      }
      return;

    default:
      return;
  }
}

void ErrorInjector::post_execute(arch::ExecCtx& ctx) {
  if (!targets(ctx)) return;
  const isa::Instruction& in = ctx.instr;
  const std::uint32_t regs = ctx.gpu().running_program()->regs_per_thread;

  auto corrupt_rd = [&](std::uint32_t lanes) {
    if (in.rd == isa::kRZ || in.rd >= regs) return;
    for (unsigned lane = 0; lane < arch::kWarpSize; ++lane) {
      if (!((lanes >> lane) & 1)) continue;
      ctx.write_reg(lane, in.rd, ctx.read_reg(lane, in.rd) ^ d_.bit_err_mask);
    }
  };

  switch (d_.model) {
    case ErrorModel::IIO:
      if (in.use_imm && isa::writes_register(in.op)) corrupt_rd(lane_set(ctx));
      return;

    case ErrorModel::IMS:
      if (isa::is_load(in.op) &&
          (in.space == isa::MemSpace::Shared || in.space == isa::MemSpace::Const))
        corrupt_rd(lane_set(ctx));
      return;

    case ErrorModel::WV:
      if (isa::writes_predicate(in.op) && (in.rd & 0x7) == d_.target_pred) {
        for (unsigned lane = 0; lane < arch::kWarpSize; ++lane) {
          if (!((lane_set(ctx) >> lane) & 1)) continue;
          const std::uint8_t p = in.rd & 0x7;
          ctx.write_pred(lane, p, !ctx.read_pred(lane, p));
        }
      }
      return;

    case ErrorModel::IAT:
      if (is_tid_s2r(in)) corrupt_rd(lane_set(ctx));
      return;

    case ErrorModel::IAW:
      // Full warp substitution: every thread's index register is shifted.
      if (is_tid_s2r(in)) corrupt_rd(ctx.exec_mask);
      return;

    case ErrorModel::IAC:
      if (is_ctaid_s2r(in)) corrupt_rd(ctx.exec_mask);
      return;

    case ErrorModel::IAL:
      if (!d_.enable_lane) {
        // Part II: discard the lane's result by restoring the old value.
        for (const Saved& s : saved_) {
          if (!s.active) continue;
          ctx.write_reg(s.lane, saved_reg_, s.value);
        }
        for (Saved& s : saved_) s.active = false;
      }
      return;

    default:
      return;
  }
}

errmodel::ErrorDescriptor random_descriptor(ErrorModel model, Rng& rng,
                                            unsigned regs_per_thread) {
  errmodel::ErrorDescriptor d;
  d.model = model;
  d.sm_id = 0;
  d.ppb_id = 0;
  (void)regs_per_thread;

  // Which warps see the error depends on where the faulty logic lives:
  // decode/fetch-path and lane errors sit in per-PPB shared hardware and hit
  // every warp of the sub-partition; thread/warp/CTA-management errors live
  // in per-warp scheduler state, so they target specific resident slots
  // (biased to the low slots every CTA occupies).
  switch (model) {
    case ErrorModel::IAT:
    case ErrorModel::IAW:
    case ErrorModel::IAC: {
      auto pick_slot = [&]() -> unsigned {
        const double u = rng.uniform();
        if (u < 0.45) return 0;
        if (u < 0.70) return 1;
        if (u < 0.90) return 2 + static_cast<unsigned>(rng.below(2));
        return 4 + static_cast<unsigned>(rng.below(4));
      };
      d.warp_mask = 1u << pick_slot();
      if (rng.chance(0.3)) d.warp_mask |= 1u << pick_slot();
      break;
    }
    default:
      d.warp_mask = 0xFF;
      break;
  }

  if (errmodel::corrupts_whole_warp(model)) {
    d.thread_mask = 0xFFFFFFFFu;
  } else {
    // One to four corrupted lanes, at least one.
    d.thread_mask = 1u << rng.below(32);
    const unsigned extra = static_cast<unsigned>(rng.below(4));
    for (unsigned i = 0; i < extra; ++i) d.thread_mask |= 1u << rng.below(32);
  }

  // Mostly single-bit error masks, occasionally two bits. Register-address
  // fields are 6 bits wide; thread/warp/CTA indices only occupy the low bits
  // ("the index associated with the thread changes to the index of another
  // thread"), while data corruptions can hit any of the 32 bits.
  unsigned mask_bits = 32;
  switch (model) {
    case ErrorModel::IRA:
    case ErrorModel::IVRA: mask_bits = 6; break;
    case ErrorModel::IAT:
    case ErrorModel::IAW: mask_bits = 7; break;
    case ErrorModel::IAC: mask_bits = 4; break;
    default: break;
  }
  d.bit_err_mask = 1u << rng.below(mask_bits);
  if (rng.chance(0.2)) d.bit_err_mask |= 1u << rng.below(std::min(8u, mask_bits));

  // Operand position: destinations and first sources dominate (every
  // instruction has them); third sources are rare.
  {
    const double u = rng.uniform();
    d.err_oper_loc = u < 0.4 ? 0u : (u < 0.75 ? 1u : (u < 0.93 ? 2u : 3u));
  }
  d.replacement_op = static_cast<std::uint8_t>(rng.below(64));
  // Predicate registers are allocated from P0 upward, so low predicates are
  // the ones real kernels exercise.
  {
    const double u = rng.uniform();
    d.target_pred = u < 0.55 ? 0 : (u < 0.8 ? 1 : (u < 0.93 ? 2 : 3));
  }
  d.enable_lane = rng.chance(0.5);
  return d;
}

}  // namespace gpf::perfi
