// Control-flow-checking (CFC) detector prototype — the mitigation the paper's
// discussion proposes for WSC permanent faults ("control-flow-checking
// strategies combined with smart thread scheduling replication").
//
// Each warp accumulates a signature over the PCs it executes (order-sensitive
// within a warp, order-insensitive across warps, so legal interleavings hash
// identically). A fault is DETECTED when the faulty run's digest differs from
// the golden run's: exactly the check a software CFC monitor would perform.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "arch/machine.hpp"

namespace gpf::perfi {

class CfcSignature final : public arch::MachineHooks {
 public:
  void on_launch_begin(arch::Gpu&, const isa::Program&) override { ++launch_; }

  void post_execute(arch::ExecCtx& ctx) override {
    const arch::Warp& w = ctx.warp();
    // Key: (launch, CTA, warp-within-CTA) — stable across schedules.
    const std::uint64_t key =
        (static_cast<std::uint64_t>(launch_) << 40) ^
        (static_cast<std::uint64_t>(w.cta_x) << 28) ^
        (static_cast<std::uint64_t>(w.cta_y) << 20) ^
        (static_cast<std::uint64_t>(w.warp_in_cta) << 12) ^
        (static_cast<std::uint64_t>(ctx.sm_id) << 4) ^ ctx.ppb_id;
    std::uint64_t& sig = sigs_[key];
    // Order-sensitive chain over the executed PC stream (FNV-style mix).
    sig = (sig ^ (ctx.pc + 0x9E3779B97F4A7C15ull)) * 0x100000001B3ull;
  }

  /// Order-insensitive digest over all per-warp signatures.
  std::uint64_t digest() const {
    std::uint64_t d = 0x12345678ULL + sigs_.size();
    for (const auto& [k, v] : sigs_) d ^= k * 0x9E3779B97F4A7C15ull + v;
    return d;
  }

  void reset() {
    sigs_.clear();
    launch_ = 0;
  }

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> sigs_;
  unsigned launch_ = 0;
};

}  // namespace gpf::perfi
