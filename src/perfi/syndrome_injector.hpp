// Software propagation of FUNCTIONAL-UNIT faults using the measured fault
// syndrome (paper §"Fault Syndrome"): once the opcode, input range, and
// injection site are characterized at RTL, software injection corrupts the
// instruction's output with a relative error sampled from the fitted power
// law (Eq. 1) — instead of unrealistic uniform bit flips.
//
// This is the FU-side companion of the 13 control-unit error models: it lets
// the two-level methodology cover datapath faults without re-running RTL.
#pragma once

#include <array>

#include "arch/machine.hpp"
#include "common/rng.hpp"
#include "stats/powerlaw.hpp"

namespace gpf::perfi {

/// How the output corruption is generated.
enum class SyndromeMode : std::uint8_t {
  PowerLaw,   ///< Eq. 1: out *= (1 +/- rel_err), rel_err ~ power law
  RandomBit,  ///< naive single random bit flip (the baseline the paper
              ///< argues is unrealistic)
};

struct SyndromeSpec {
  unsigned sm_id = 0;
  unsigned ppb_id = 0;
  unsigned lane = 0;             ///< faulty FU lane (permanent: every use)
  bool target_float = true;      ///< corrupt FP32 ops (else INT ops)
  SyndromeMode mode = SyndromeMode::PowerLaw;
  double x_min = 1e-7;           ///< Eq. 1 parameters (from the RTL fit)
  double alpha = 1.7;
  std::uint64_t seed = 1;
  /// Probability that a given dynamic instruction on the faulty lane
  /// activates the fault (FAPR at instruction granularity).
  double activation = 1.0;
};

/// Instrumenter corrupting the destination of every matching FU instruction
/// executed on the faulty lane.
class SyndromeInjector final : public arch::MachineHooks {
 public:
  explicit SyndromeInjector(SyndromeSpec spec)
      : spec_(spec), sampler_(spec.x_min, spec.alpha), rng_(spec.seed) {}

  void post_execute(arch::ExecCtx& ctx) override;

  std::uint64_t corruptions() const { return corruptions_; }

 private:
  SyndromeSpec spec_;
  stats::PowerLawSampler sampler_;
  Rng rng_;
  std::uint64_t corruptions_ = 0;
};

}  // namespace gpf::perfi
