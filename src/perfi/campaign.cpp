#include "perfi/campaign.hpp"

#include <algorithm>
#include <stdexcept>

#include "store/records.hpp"

namespace gpf::perfi {

using errmodel::ErrorModel;

const char* outcome_name(AppOutcome o) {
  switch (o) {
    case AppOutcome::Masked: return "Masked";
    case AppOutcome::SDC: return "SDC";
    case AppOutcome::DUE: return "DUE";
  }
  return "?";
}

void EprCell::merge(const EprCell& other) {
  injections += other.injections;
  masked += other.masked;
  sdc += other.sdc;
  due += other.due;
  due_illegal_address += other.due_illegal_address;
  due_invalid_register += other.due_invalid_register;
  due_invalid_opcode += other.due_invalid_opcode;
  due_hang += other.due_hang;
  due_other += other.due_other;
}

AppInjectionRunner::AppInjectionRunner(const workloads::Workload& w) : w_(w) {
  gpu_.clear_memories();
  w_.setup(gpu_);
  const workloads::RunStats stats = w_.run(gpu_);
  if (!stats.ok)
    throw std::runtime_error("golden run failed for " + std::string(w.name()));
  golden_cycles_ = stats.cycles;
  const workloads::OutputSpec spec = w_.output();
  golden_.assign(
      gpu_.global().begin() + static_cast<std::ptrdiff_t>(spec.addr),
      gpu_.global().begin() + static_cast<std::ptrdiff_t>(spec.addr + spec.words));
  // Per-launch hang budget: generous multiple of the whole golden run.
  budget_ = std::max<std::uint64_t>(golden_cycles_ * 30, 100'000);
}

AppOutcome AppInjectionRunner::inject(const errmodel::ErrorDescriptor& desc) {
  ErrorInjector injector(desc);
  gpu_.clear_memories();
  w_.setup(gpu_);
  gpu_.set_hooks(&injector);
  const workloads::RunStats stats = w_.run(gpu_, budget_);
  gpu_.set_hooks(nullptr);

  if (!stats.ok) {
    last_trap_ = stats.trap;
    return AppOutcome::DUE;
  }
  last_trap_ = arch::TrapKind::None;
  const workloads::OutputSpec spec = w_.output();
  const bool equal = std::equal(
      golden_.begin(), golden_.end(),
      gpu_.global().begin() + static_cast<std::ptrdiff_t>(spec.addr));
  return equal ? AppOutcome::Masked : AppOutcome::SDC;
}

EprCell run_epr_cell(const workloads::Workload& w, ErrorModel model, std::size_t n,
                     std::uint64_t seed) {
  EprCell cell;
  AppInjectionRunner runner(w);
  Rng rng(seed ^ (static_cast<std::uint64_t>(model) * 0x9E3779B9u));
  for (std::size_t i = 0; i < n; ++i) {
    const errmodel::ErrorDescriptor desc = random_descriptor(model, rng);
    const AppOutcome out = runner.inject(desc);
    ++cell.injections;
    switch (out) {
      case AppOutcome::Masked: ++cell.masked; break;
      case AppOutcome::SDC: ++cell.sdc; break;
      case AppOutcome::DUE: {
        ++cell.due;
        switch (runner.last_trap()) {
          case arch::TrapKind::IllegalAddress:
          case arch::TrapKind::InvalidPC:
            ++cell.due_illegal_address;
            break;
          case arch::TrapKind::InvalidRegister: ++cell.due_invalid_register; break;
          case arch::TrapKind::InvalidOpcode: ++cell.due_invalid_opcode; break;
          case arch::TrapKind::Watchdog: ++cell.due_hang; break;
          default: ++cell.due_other; break;
        }
        break;
      }
    }
  }
  return cell;
}

namespace {

store::PerfiOutcome to_perfi_outcome(AppOutcome out, arch::TrapKind trap) {
  switch (out) {
    case AppOutcome::Masked: return store::PerfiOutcome::Masked;
    case AppOutcome::SDC: return store::PerfiOutcome::Sdc;
    case AppOutcome::DUE: break;
  }
  switch (trap) {
    case arch::TrapKind::IllegalAddress:
    case arch::TrapKind::InvalidPC:
      return store::PerfiOutcome::DueIllegalAddress;
    case arch::TrapKind::InvalidRegister:
      return store::PerfiOutcome::DueInvalidRegister;
    case arch::TrapKind::InvalidOpcode: return store::PerfiOutcome::DueInvalidOpcode;
    case arch::TrapKind::Watchdog: return store::PerfiOutcome::DueHang;
    default: return store::PerfiOutcome::DueOther;
  }
}

void add_outcome(EprCell& cell, store::PerfiOutcome o) {
  ++cell.injections;
  switch (o) {
    case store::PerfiOutcome::Masked: ++cell.masked; break;
    case store::PerfiOutcome::Sdc: ++cell.sdc; break;
    case store::PerfiOutcome::DueIllegalAddress:
      ++cell.due;
      ++cell.due_illegal_address;
      break;
    case store::PerfiOutcome::DueInvalidRegister:
      ++cell.due;
      ++cell.due_invalid_register;
      break;
    case store::PerfiOutcome::DueInvalidOpcode:
      ++cell.due;
      ++cell.due_invalid_opcode;
      break;
    case store::PerfiOutcome::DueHang:
      ++cell.due;
      ++cell.due_hang;
      break;
    case store::PerfiOutcome::DueOther:
      ++cell.due;
      ++cell.due_other;
      break;
  }
}

}  // namespace

store::CampaignMeta epr_campaign_meta(const workloads::Workload& w,
                                      ErrorModel model, std::size_t n,
                                      std::uint64_t seed,
                                      std::uint32_t shard_index,
                                      std::uint32_t shard_count) {
  store::CampaignMeta meta;
  meta.kind = store::CampaignKind::Perfi;
  meta.target = 0xFF;
  meta.model = static_cast<std::uint8_t>(model);
  meta.seed = seed;
  meta.total = n;
  meta.shard_index = shard_index;
  meta.shard_count = shard_count;
  meta.app = std::string(w.name());
  return meta;
}

void add_record(EprCell& cell, const store::PerfiRecord& rec) {
  add_outcome(cell, rec.outcome);
}

EprUnitRunner::EprUnitRunner(const workloads::Workload& w,
                             const store::CampaignMeta& meta)
    : meta_(meta),
      runner_(w),
      base_(meta.seed ^
            (static_cast<std::uint64_t>(static_cast<ErrorModel>(meta.model)) *
             0x9E3779B9u)) {
  if (meta.kind != store::CampaignKind::Perfi)
    throw std::runtime_error("epr campaign: meta is not a perfi campaign");
  if (meta.app != w.name())
    throw std::runtime_error("epr campaign: store belongs to app '" + meta.app +
                             "', not '" + std::string(w.name()) + "'");
}

void EprUnitRunner::run(std::span<const std::uint64_t> ids, const Emit& emit,
                        const std::function<bool()>& stop) {
  const auto model = static_cast<ErrorModel>(meta_.model);
  for (const std::uint64_t i : ids) {
    if (stop && stop()) return;
    Rng rng = base_.fork(i);
    const errmodel::ErrorDescriptor desc = random_descriptor(model, rng);
    const AppOutcome out = runner_.inject(desc);
    store::PerfiRecord rec;
    rec.outcome = to_perfi_outcome(out, runner_.last_trap());
    emit(i, rec);
  }
}

EprCell run_epr_cell_store(const workloads::Workload& w,
                           store::CampaignCheckpoint& ckpt) {
  const store::CampaignMeta& meta = ckpt.meta();
  EprUnitRunner runner(w, meta);

  EprCell cell;
  for (std::uint64_t i = 0; i < meta.total; ++i) {
    if (!meta.owns(i)) continue;
    if (const auto it = ckpt.done().find(i); it != ckpt.done().end()) {
      add_outcome(cell, store::decode_perfi(it->second).outcome);
      continue;
    }
    if (ckpt.should_stop()) break;
    const std::uint64_t id[] = {i};
    runner.run(id, [&](std::uint64_t, const store::PerfiRecord& rec) {
      ckpt.record(i, store::encode(rec));
      add_outcome(cell, rec.outcome);
    });
  }
  ckpt.sync();  // campaign boundary: all recorded results are now durable
  return cell;
}

std::vector<ErrorModel> software_models() {
  return {ErrorModel::IOC, ErrorModel::IRA, ErrorModel::IVRA, ErrorModel::IIO,
          ErrorModel::WV,  ErrorModel::IAT, ErrorModel::IAW,  ErrorModel::IAC,
          ErrorModel::IAL, ErrorModel::IMS, ErrorModel::IMD};
}

}  // namespace gpf::perfi
