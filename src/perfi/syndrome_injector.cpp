#include "perfi/syndrome_injector.hpp"

#include <algorithm>
#include <cmath>

#include "common/bitops.hpp"
#include "isa/opcode.hpp"

namespace gpf::perfi {

void SyndromeInjector::post_execute(arch::ExecCtx& ctx) {
  if (ctx.sm_id != spec_.sm_id || ctx.ppb_id != spec_.ppb_id) return;
  const isa::Instruction& in = ctx.instr;
  const isa::UnitClass unit = isa::unit_of(in.op);
  const bool is_fp = unit == isa::UnitClass::FP32 || unit == isa::UnitClass::SFU;
  if (spec_.target_float ? !is_fp : unit != isa::UnitClass::INT) return;
  if (!isa::writes_register(in.op) || in.rd == isa::kRZ) return;
  if (!((ctx.exec_mask >> spec_.lane) & 1u)) return;
  if (in.rd >= ctx.gpu().running_program()->regs_per_thread) return;
  if (spec_.activation < 1.0 && !rng_.chance(spec_.activation)) return;

  const std::uint32_t good = ctx.read_reg(spec_.lane, in.rd);
  std::uint32_t bad = good;
  if (spec_.mode == SyndromeMode::RandomBit) {
    bad = good ^ (1u << rng_.below(32));
  } else if (spec_.target_float) {
    // Heavy-tail guard: datapath syndromes saturate around 1e2x (the paper's
    // overflow bin); an unbounded power-law draw would misrepresent them.
    const double rel = std::min(sampler_.sample(rng_), 1e3);
    const float v = bits_f32(good);
    const float sign = rng_.chance(0.5) ? 1.0f : -1.0f;
    const float corrupted = v * (1.0f + sign * static_cast<float>(rel));
    bad = f32_bits(std::isfinite(corrupted) ? corrupted : v);
    if (bad == good && rel > 0.0) bad = good ^ 1u;  // sub-ulp error: LSB flip
  } else {
    const double rel = std::min(sampler_.sample(rng_), 1e3);
    const auto v = static_cast<double>(static_cast<std::int32_t>(good));
    const double sign = rng_.chance(0.5) ? 1.0 : -1.0;
    const double corrupted = v + sign * std::max(1.0, std::fabs(v) * rel);
    bad = static_cast<std::uint32_t>(static_cast<std::int64_t>(corrupted));
  }
  if (bad != good) {
    ctx.write_reg(spec_.lane, in.rd, bad);
    ++corruptions_;
  }
}

}  // namespace gpf::perfi
