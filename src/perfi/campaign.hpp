// Software-level error-propagation campaigns (Figs. 12-13): inject each
// error model into full applications and classify the outcome as
// Masked / SDC / DUE, measuring the Error Propagation Rate (EPR).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "arch/machine.hpp"
#include "common/rng.hpp"
#include "errmodel/models.hpp"
#include "perfi/injector.hpp"
#include "store/checkpoint.hpp"
#include "store/records.hpp"
#include "workloads/workload.hpp"

namespace gpf::perfi {

enum class AppOutcome : std::uint8_t { Masked, SDC, DUE };
const char* outcome_name(AppOutcome o);

/// EPR numbers for one (application, error model) cell.
struct EprCell {
  std::size_t injections = 0, masked = 0, sdc = 0, due = 0;
  // DUE cause breakdown (the paper reports illegal addresses and invalid
  // instructions dominating operation-error DUEs).
  std::size_t due_illegal_address = 0, due_invalid_register = 0,
              due_invalid_opcode = 0, due_hang = 0, due_other = 0;

  double epr_sdc() const { return ratio(sdc); }
  double epr_due() const { return ratio(due); }
  double epr_masked() const { return ratio(masked); }

  void merge(const EprCell& other);

 private:
  double ratio(std::size_t n) const {
    return injections ? static_cast<double>(n) / static_cast<double>(injections)
                      : 0.0;
  }
};

/// Prepares an application for repeated instrumented runs (golden output and
/// cycle budget computed once).
class AppInjectionRunner {
 public:
  explicit AppInjectionRunner(const workloads::Workload& w);

  AppOutcome inject(const errmodel::ErrorDescriptor& desc);
  arch::TrapKind last_trap() const { return last_trap_; }
  std::uint64_t golden_cycles() const { return golden_cycles_; }

 private:
  const workloads::Workload& w_;
  arch::Gpu gpu_;
  std::vector<std::uint32_t> golden_;
  std::uint64_t budget_ = 0;
  std::uint64_t golden_cycles_ = 0;
  arch::TrapKind last_trap_ = arch::TrapKind::None;
};

/// Inject `n` random descriptors of one model into one application.
EprCell run_epr_cell(const workloads::Workload& w, errmodel::ErrorModel model,
                     std::size_t n, std::uint64_t seed);

/// Store header for one (application, error model) EPR cell.
store::CampaignMeta epr_campaign_meta(const workloads::Workload& w,
                                      errmodel::ErrorModel model, std::size_t n,
                                      std::uint64_t seed,
                                      std::uint32_t shard_index = 0,
                                      std::uint32_t shard_count = 1);

/// Durable variant of run_epr_cell: injection i's error descriptor is drawn
/// from an RNG stream forked on i (shard- and resume-stable), each outcome is
/// appended to `ckpt` as it retires, and done ids are restored instead of
/// re-run. The returned cell covers this shard's retired injections.
EprCell run_epr_cell_store(const workloads::Workload& w,
                           store::CampaignCheckpoint& ckpt);

/// Work-unit adapter for lease-based dispatch: evaluates arbitrary
/// injection ids of one (app, model) EPR campaign. Descriptor i comes from
/// an RNG stream forked on i, so any process evaluating id i produces the
/// identical record. The golden run is paid once at construction and
/// reused across run() calls.
class EprUnitRunner {
 public:
  using Emit = std::function<void(std::uint64_t, const store::PerfiRecord&)>;

  EprUnitRunner(const workloads::Workload& w, const store::CampaignMeta& meta);

  /// Evaluates `ids` in order; emit(id, record) per retired injection.
  /// `stop`, when set, is polled before each injection.
  void run(std::span<const std::uint64_t> ids, const Emit& emit,
           const std::function<bool()>& stop = {});

 private:
  store::CampaignMeta meta_;
  AppInjectionRunner runner_;
  Rng base_;
};

/// Folds one stored outcome into an EPR cell's counters.
void add_record(EprCell& cell, const store::PerfiRecord& rec);

/// The 11 models evaluated in software (IPP is representable by the others,
/// IVOC always DUEs at the low level — both excluded, as in the paper).
std::vector<errmodel::ErrorModel> software_models();

}  // namespace gpf::perfi
