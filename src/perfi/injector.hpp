// NVBitPERfi-equivalent error injector: implements the paper's 13 error
// functions as instruction-level instrumentation (MachineHooks) following the
// exact recipes of Section 5.1 (Figs. IRA/IAT/IAL/IOC listings):
//   IRA/IVRA  — operand register-address redirection (dest or source);
//   IAT/IAW/IAC — XOR bitErrMask into the destination of S2R instructions
//                 reading SR_TID / SR_CTAID;
//   IAL       — disable a lane's FU results (save/restore) or force-enable
//               predicated-off instructions on a lane;
//   IIO/IMS   — XOR bitErrMask into the destination of instructions touching
//               immediates / constant+shared-memory sources;
//   IMD       — XOR bitErrMask into the data or address register of
//               shared-memory stores;
//   WV        — XOR into the written predicate of SETP instructions;
//   IOC       — substitute the executed operation on the INT/FP32 cores;
//   IVOC      — invalid opcode: immediate device exception.
// IPP is represented by the other models (as in the paper).
#pragma once

#include <array>

#include "arch/machine.hpp"
#include "common/rng.hpp"
#include "errmodel/models.hpp"

namespace gpf::perfi {

/// Instrumenter realizing one error descriptor during execution. A permanent
/// error: every matching instruction on the target SM/PPB/warps is corrupted.
class ErrorInjector final : public arch::MachineHooks {
 public:
  explicit ErrorInjector(errmodel::ErrorDescriptor desc) : d_(desc) {}

  const errmodel::ErrorDescriptor& descriptor() const { return d_; }

  void pre_execute(arch::ExecCtx& ctx) override;
  void post_execute(arch::ExecCtx& ctx) override;

 private:
  bool targets(const arch::ExecCtx& ctx) const;
  std::uint32_t lane_set(const arch::ExecCtx& ctx) const;

  errmodel::ErrorDescriptor d_;
  // Save/restore state for the two-part error functions (IAL disable).
  struct Saved {
    bool active = false;
    unsigned lane = 0;
    std::uint32_t value = 0;
  };
  std::array<Saved, arch::kWarpSize> saved_{};
  std::uint8_t saved_reg_ = 0;
};

/// Random, reproducible error descriptor targeting SM0/PPB0, mirroring the
/// paper's sampling (random warp slots, lanes, bit masks, operand positions).
errmodel::ErrorDescriptor random_descriptor(errmodel::ErrorModel model, Rng& rng,
                                            unsigned regs_per_thread = 32);

}  // namespace gpf::perfi
