#include "errmodel/models.hpp"

namespace gpf::errmodel {

std::string_view name_of(ErrorModel m) {
  switch (m) {
    case ErrorModel::IOC: return "IOC";
    case ErrorModel::IVOC: return "IVOC";
    case ErrorModel::IRA: return "IRA";
    case ErrorModel::IVRA: return "IVRA";
    case ErrorModel::IIO: return "IIO";
    case ErrorModel::WV: return "WV";
    case ErrorModel::IPP: return "IPP";
    case ErrorModel::IAT: return "IAT";
    case ErrorModel::IAW: return "IAW";
    case ErrorModel::IAC: return "IAC";
    case ErrorModel::IAL: return "IAL";
    case ErrorModel::IMS: return "IMS";
    case ErrorModel::IMD: return "IMD";
    case ErrorModel::COUNT: break;
  }
  return "?";
}

std::string_view name_of(ErrorGroup g) {
  switch (g) {
    case ErrorGroup::Operation: return "Operation";
    case ErrorGroup::ControlFlow: return "Control-flow";
    case ErrorGroup::ParallelManagement: return "Parallel management";
    case ErrorGroup::ResourceManagement: return "Resource management";
  }
  return "?";
}

ErrorGroup group_of(ErrorModel m) {
  switch (m) {
    case ErrorModel::IOC: case ErrorModel::IVOC: case ErrorModel::IRA:
    case ErrorModel::IVRA: case ErrorModel::IIO:
      return ErrorGroup::Operation;
    case ErrorModel::WV:
      return ErrorGroup::ControlFlow;
    case ErrorModel::IPP: case ErrorModel::IAT: case ErrorModel::IAW:
    case ErrorModel::IAC:
      return ErrorGroup::ParallelManagement;
    default:
      return ErrorGroup::ResourceManagement;
  }
}

bool corrupts_whole_warp(ErrorModel m) {
  switch (m) {
    case ErrorModel::IOC: case ErrorModel::IVOC: case ErrorModel::IRA:
    case ErrorModel::IVRA: case ErrorModel::IPP: case ErrorModel::IAW:
      return true;
    default:
      return false;
  }
}

}  // namespace gpf::errmodel
