// The paper's 13 instruction-level permanent error models, grouped into the
// four categories of Section 4, plus descriptors that tie an error to a
// physical location (SM / PPB / warp set / thread set) and model-specific
// parameters (bit masks, operand position, replacement opcode).
#pragma once

#include <cstdint>
#include <string_view>

namespace gpf::errmodel {

enum class ErrorModel : std::uint8_t {
  // Operation errors
  IOC,   ///< incorrect (still valid) operation code
  IVOC,  ///< invalid operation code
  IRA,   ///< incorrect (valid) register addressed
  IVRA,  ///< invalid register addressed (outside regs-per-thread)
  IIO,   ///< incorrect immediate operand
  // Control-flow errors
  WV,    ///< work-flow violation (predicate corruption)
  // Parallel management errors
  IPP,   ///< incorrect parallel parameter (shared regions / reg windows)
  IAT,   ///< incorrect active thread
  IAW,   ///< incorrect active warp
  IAC,   ///< incorrect active CTA
  // Resource management errors
  IAL,   ///< incorrect active lane
  IMS,   ///< incorrect memory source
  IMD,   ///< incorrect memory destination
  COUNT
};

inline constexpr unsigned kNumErrorModels = static_cast<unsigned>(ErrorModel::COUNT);

enum class ErrorGroup : std::uint8_t {
  Operation,
  ControlFlow,
  ParallelManagement,
  ResourceManagement,
};

std::string_view name_of(ErrorModel m);
std::string_view name_of(ErrorGroup g);
ErrorGroup group_of(ErrorModel m);

/// True when the model corrupts all threads of a warp (the paper: IOC, IVOC,
/// IRA, IVRA, IPP, IAW affect all threads in a warp; the rest corrupt one or
/// a few threads).
bool corrupts_whole_warp(ErrorModel m);

/// Error descriptor: "where" the permanent fault lives and "how" it corrupts
/// instructions (Section 3.4 of the paper).
struct ErrorDescriptor {
  ErrorModel model = ErrorModel::IOC;
  unsigned sm_id = 0;
  unsigned ppb_id = 0;
  std::uint32_t warp_mask = 0x1;    ///< resident warp slots affected
  std::uint32_t thread_mask = 0x1;  ///< lanes affected within each warp
  std::uint32_t bit_err_mask = 0x1; ///< XOR mask applied to the target field
  unsigned err_oper_loc = 0;        ///< 0 = destination, 1..3 = source operand
  std::uint8_t replacement_op = 0;  ///< raw opcode used by IOC
  std::uint8_t target_pred = 0;     ///< predicate register targeted by WV
  bool enable_lane = false;         ///< IAL: false = disable lane, true = force-enable
};

}  // namespace gpf::errmodel
