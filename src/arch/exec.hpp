// Execution-unit backends. FastExec uses host arithmetic (PERfi campaigns);
// SoftExec routes through the bit-accurate datapaths in src/softfloat and
// honours per-lane / per-SFU fault overlays (RTL campaigns).
#pragma once

#include <array>
#include <cstdint>

#include "arch/types.hpp"
#include "isa/opcode.hpp"
#include "softfloat/buses.hpp"

namespace gpf::arch {

class ExecUnit {
 public:
  virtual ~ExecUnit() = default;
  /// Evaluate a (non-memory, non-control) operation for one lane.
  virtual std::uint32_t alu(isa::Op op, std::uint32_t a, std::uint32_t b,
                            std::uint32_t c, unsigned lane) = 0;
};

/// Host-arithmetic backend (bitwise-compatible with SoftExec for normal-range
/// values; FTZ differences only appear with subnormals).
class FastExec final : public ExecUnit {
 public:
  std::uint32_t alu(isa::Op op, std::uint32_t a, std::uint32_t b, std::uint32_t c,
                    unsigned lane) override;
};

/// Bit-accurate backend with stuck-at overlays. A fault set can be installed
/// per lane (per-lane INT/FP32 cores) or per SFU (lanes share SFUs in blocks
/// of kWarpSize / sfus_per_ppb — the sharing that makes SFU control faults
/// corrupt multiple threads).
class SoftExec final : public ExecUnit {
 public:
  explicit SoftExec(unsigned sfu_count = 2) : sfu_count_(sfu_count) {}

  void set_lane_fault(unsigned lane, const sf::BusFaultSet* f) { lane_faults_[lane] = f; }
  void set_sfu_fault(unsigned sfu, const sf::BusFaultSet* f) { sfu_faults_[sfu] = f; }
  unsigned sfu_of_lane(unsigned lane) const {
    return lane / (kWarpSize / sfu_count_);
  }

  std::uint32_t alu(isa::Op op, std::uint32_t a, std::uint32_t b, std::uint32_t c,
                    unsigned lane) override;

 private:
  unsigned sfu_count_;
  std::array<const sf::BusFaultSet*, kWarpSize> lane_faults_{};
  std::array<const sf::BusFaultSet*, 8> sfu_faults_{};
};

}  // namespace gpf::arch
