// Configuration and result types for the GPU model.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace gpf::arch {

inline constexpr unsigned kWarpSize = 32;

/// FlexGripPlus-like configuration: the paper configures one PPB per SM
/// cluster with 32 SP cores per PPB and 2 shared SFUs.
struct GpuConfig {
  unsigned num_sms = 1;
  unsigned ppbs_per_sm = 1;
  unsigned max_warps_per_ppb = 8;   ///< resident warp slots
  unsigned sfus_per_ppb = 2;
  std::size_t global_words = 1u << 21;
  std::size_t const_words = 1u << 12;
  std::size_t local_words_per_thread = 64;
  std::uint64_t watchdog_cycles = 8'000'000;
};

struct Dim3 {
  unsigned x = 1, y = 1, z = 1;
  unsigned count() const { return x * y * z; }
};

/// DUE surface of the simulator: why a launch was aborted.
enum class TrapKind : std::uint8_t {
  None = 0,
  InvalidOpcode,    ///< word does not decode (IVOC manifestation)
  InvalidRegister,  ///< register index >= regs_per_thread (IVRA)
  IllegalAddress,   ///< out-of-bounds memory access
  StackOverflow,    ///< SIMT reconvergence stack exceeded hardware depth
  InvalidPC,        ///< fetch past the end of instruction memory
  Watchdog,         ///< cycle budget exhausted (hang)
};

const char* trap_name(TrapKind k);

/// Outcome of one kernel launch.
struct LaunchResult {
  bool ok = false;
  TrapKind trap = TrapKind::None;
  std::uint32_t trap_pc = 0;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  /// Issue counts per unit class (INT, FP32, SFU, MOVE, MEM, CTRL).
  std::array<std::uint64_t, 6> unit_issues{};
};

}  // namespace gpf::arch
