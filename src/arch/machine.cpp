#include "arch/machine.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "common/bitops.hpp"

namespace gpf::arch {

using isa::Instruction;
using isa::MemSpace;
using isa::Op;

namespace {
constexpr unsigned kPhysRegsPerThread = 64;  // physical register window per thread
}

// ---------------------------------------------------------------------------
// ExecCtx register/predicate accessors
// ---------------------------------------------------------------------------

std::uint32_t ExecCtx::read_reg(unsigned lane, std::uint8_t r) {
  if (r == isa::kRZ) return 0;
  if (r >= gpu_.prog_->regs_per_thread) {
    pending_trap = TrapKind::InvalidRegister;
    return 0;
  }
  return gpu_.reg_at(sm_id, ppb_id, warp_.slot, lane, r);
}

void ExecCtx::write_reg(unsigned lane, std::uint8_t r, std::uint32_t v) {
  if (r == isa::kRZ) return;
  if (r >= gpu_.prog_->regs_per_thread) {
    pending_trap = TrapKind::InvalidRegister;
    return;
  }
  gpu_.reg_at(sm_id, ppb_id, warp_.slot, lane, r) = v;
}

bool ExecCtx::read_pred(unsigned lane, std::uint8_t p) const {
  p &= 0x7;
  if (p >= isa::kNumPredicates) return true;  // PT
  return (warp_.preds[lane] >> p) & 1;
}

void ExecCtx::write_pred(unsigned lane, std::uint8_t p, bool v) {
  p &= 0x7;
  if (p >= isa::kNumPredicates) return;  // PT is not writable
  warp_.preds[lane] = static_cast<std::uint8_t>(
      v ? (warp_.preds[lane] | (1u << p)) : (warp_.preds[lane] & ~(1u << p)));
}

// ---------------------------------------------------------------------------
// Gpu
// ---------------------------------------------------------------------------

Gpu::Gpu(GpuConfig cfg) : cfg_(cfg) {
  global_.assign(cfg_.global_words, 0);
  const_.assign(cfg_.const_words, 0);
  sms_.resize(cfg_.num_sms);
  for (Sm& sm : sms_) {
    sm.ppbs.resize(cfg_.ppbs_per_sm);
    for (Ppb& ppb : sm.ppbs) {
      ppb.warps.resize(cfg_.max_warps_per_ppb);
      for (unsigned s = 0; s < cfg_.max_warps_per_ppb; ++s) ppb.warps[s].slot = s;
      ppb.regfile.assign(
          static_cast<std::size_t>(cfg_.max_warps_per_ppb) * kPhysRegsPerThread * kWarpSize, 0);
      ppb.local.assign(static_cast<std::size_t>(cfg_.max_warps_per_ppb) * kWarpSize *
                           cfg_.local_words_per_thread, 0);
    }
  }
}

void Gpu::write_global(std::size_t addr, std::span<const std::uint32_t> data) {
  if (addr + data.size() > global_.size())
    throw std::out_of_range("write_global out of bounds");
  reserve_global(addr, data.size());
  std::copy(data.begin(), data.end(), global_.begin() + static_cast<std::ptrdiff_t>(addr));
}

void Gpu::write_global_f(std::size_t addr, std::span<const float> data) {
  if (addr + data.size() > global_.size())
    throw std::out_of_range("write_global_f out of bounds");
  reserve_global(addr, data.size());
  for (std::size_t i = 0; i < data.size(); ++i) global_[addr + i] = f32_bits(data[i]);
}

void Gpu::reserve_global(std::size_t addr, std::size_t words) {
  if (words == 0) return;
  if (addr + words > global_.size())
    throw std::out_of_range("reserve_global out of bounds");
  // Merge with an existing adjacent/overlapping segment when possible.
  for (auto& [base, size] : segments_) {
    if (addr <= base + size && base <= addr + words) {
      const std::size_t lo = std::min(base, addr);
      const std::size_t hi = std::max(base + size, addr + words);
      base = lo;
      size = hi - lo;
      return;
    }
  }
  segments_.emplace_back(addr, words);
}

bool Gpu::global_addr_valid(std::uint64_t addr) const {
  if (addr >= global_.size()) return false;
  if (segments_.empty()) return true;  // bare-metal mode
  for (const auto& [base, size] : segments_)
    if (addr >= base && addr < base + size) return true;
  return false;
}

std::vector<float> Gpu::read_global_f(std::size_t addr, std::size_t n) const {
  if (addr + n > global_.size()) throw std::out_of_range("read_global_f out of bounds");
  std::vector<float> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = bits_f32(global_[addr + i]);
  return out;
}

void Gpu::clear_memories() {
  std::fill(global_.begin(), global_.end(), 0u);
  std::fill(const_.begin(), const_.end(), 0u);
  segments_.clear();
}

std::uint32_t& Gpu::reg_at(unsigned sm, unsigned ppb, unsigned slot, unsigned lane,
                           unsigned reg) {
  Ppb& p = sms_[sm].ppbs[ppb];
  const std::size_t idx =
      (static_cast<std::size_t>(slot) * kPhysRegsPerThread + (reg % kPhysRegsPerThread)) *
          kWarpSize +
      (lane % kWarpSize);
  return p.regfile[idx % p.regfile.size()];
}

void Gpu::raise_trap(TrapKind kind, std::uint32_t pc) {
  if (trap_ == TrapKind::None) {
    trap_ = kind;
    trap_pc_ = pc;
  }
}

// ---------------------------------------------------------------------------
// CTA management
// ---------------------------------------------------------------------------

void Gpu::init_cta(unsigned sm_i, unsigned cta_x, unsigned cta_y) {
  Sm& sm = sms_[sm_i];
  sm.cta.active = true;
  sm.cta.cta_x = cta_x;
  sm.cta.cta_y = cta_y;
  sm.cta.shared.assign(prog_->shared_words, 0);

  const unsigned threads = block_.count();
  const unsigned warps = (threads + kWarpSize - 1) / kWarpSize;
  sm.cta.expected_warps = warps;

  const unsigned ppbs = static_cast<unsigned>(sm.ppbs.size());
  for (unsigned w = 0; w < warps; ++w) {
    const unsigned ppb_i = w % ppbs;
    const unsigned slot = w / ppbs;
    Ppb& ppb = sm.ppbs[ppb_i];
    Warp& warp = ppb.warps.at(slot);
    warp.valid = true;
    warp.done = false;
    warp.at_barrier = false;
    warp.warp_in_cta = w;
    warp.cta_x = cta_x;
    warp.cta_y = cta_y;
    warp.preds.fill(0);

    std::uint32_t mask = 0;
    for (unsigned lane = 0; lane < kWarpSize; ++lane) {
      const unsigned tid = w * kWarpSize + lane;
      if (tid >= threads) break;
      mask |= 1u << lane;
      warp.tid_x[lane] = static_cast<std::uint16_t>(tid % block_.x);
      warp.tid_y[lane] = static_cast<std::uint16_t>((tid / block_.x) % block_.y);
      warp.tid_z[lane] = static_cast<std::uint16_t>(tid / (block_.x * block_.y));
    }
    warp.exist_mask = mask;
    warp.stack.assign(1, SimtEntry{0, kNoReconv, mask});

    // Zero the warp's register window for run-to-run determinism.
    for (unsigned r = 0; r < kPhysRegsPerThread; ++r)
      for (unsigned lane = 0; lane < kWarpSize; ++lane)
        reg_at(sm_i, ppb_i, slot, lane, r) = 0;
  }
}

void Gpu::release_barriers(unsigned sm_i) {
  Sm& sm = sms_[sm_i];
  if (!sm.cta.active) return;
  unsigned at_barrier = 0;
  for (const Ppb& ppb : sm.ppbs)
    for (const Warp& w : ppb.warps)
      if (w.valid && w.at_barrier) ++at_barrier;
  // All warps of the CTA must arrive. A warp that exited early can never
  // arrive, which deadlocks the barrier — the watchdog then reports a hang,
  // matching real-GPU behaviour for corrupted control flow.
  if (at_barrier == sm.cta.expected_warps) {
    for (Ppb& ppb : sm.ppbs)
      for (Warp& w : ppb.warps)
        if (w.valid) w.at_barrier = false;
  }
}

bool Gpu::sm_idle(unsigned sm_i) const {
  const Sm& sm = sms_[sm_i];
  if (!sm.cta.active) return true;
  for (const Ppb& ppb : sm.ppbs)
    for (const Warp& w : ppb.warps)
      if (w.valid && !w.done) return false;
  return true;
}

// ---------------------------------------------------------------------------
// Scheduling / fetch / decode / execute
// ---------------------------------------------------------------------------

int Gpu::select_warp(unsigned sm_i, unsigned ppb_i) {
  Ppb& ppb = sms_[sm_i].ppbs[ppb_i];
  const unsigned n = static_cast<unsigned>(ppb.warps.size());
  for (unsigned k = 0; k < n; ++k) {
    const unsigned slot = (ppb.rr_next + k) % n;
    if (ppb.warps[slot].ready()) {
      ppb.rr_next = (slot + 1) % n;
      return static_cast<int>(slot);
    }
  }
  return -1;
}

bool Gpu::step_ppb(unsigned sm_i, unsigned ppb_i, LaunchResult& res) {
  if (hooks_) hooks_->pre_cycle(*this, sm_i, ppb_i);

  int slot = select_warp(sm_i, ppb_i);
  if (hooks_) slot = hooks_->post_select(*this, sm_i, ppb_i, slot);
  Ppb& ppb = sms_[sm_i].ppbs[ppb_i];
  if (slot < 0 || slot >= static_cast<int>(ppb.warps.size())) return false;
  Warp& w = ppb.warps[static_cast<unsigned>(slot)];
  if (!w.valid || w.done || w.stack.empty()) return false;

  // Reconvergence: pop entries whose PC reached their reconvergence point.
  while (w.stack.size() > 1 &&
         (w.stack.back().pc == w.stack.back().reconv_pc || w.stack.back().mask == 0))
    w.stack.pop_back();

  std::uint32_t pc = w.pc();
  if (hooks_) {
    const std::uint32_t pc2 =
        hooks_->post_fetch_pc(*this, sm_i, ppb_i, static_cast<unsigned>(slot), pc);
    if (pc2 != pc) {
      pc = pc2;
      w.stack.back().pc = pc;  // the warp's PC register itself is corrupted
    }
  }
  if (pc >= prog_->words.size()) {
    raise_trap(TrapKind::InvalidPC, pc);
    return false;
  }

  std::uint64_t word = prog_->words[pc];
  if (hooks_)
    word = hooks_->post_fetch_word(*this, sm_i, ppb_i, static_cast<unsigned>(slot), word);

  isa::DecodeResult dec = isa::decode(word);
  bool ok = dec.ok;
  if (hooks_) hooks_->post_decode(*this, sm_i, ppb_i, dec.instr, ok);
  if (!ok) {
    raise_trap(TrapKind::InvalidOpcode, pc);
    return false;
  }

  ExecCtx ctx(*this, sm_i, ppb_i, w, pc, dec.instr);
  std::uint32_t guard = 0;
  const std::uint32_t active = w.active_mask();
  for (unsigned lane = 0; lane < kWarpSize; ++lane)
    if ((active >> lane) & 1)
      if (lane_guard(w, ctx.instr, lane)) guard |= 1u << lane;
  ctx.exec_mask = guard;

  if (hooks_) hooks_->pre_execute(ctx);
  if (!ctx.skip) execute(ctx);
  if (hooks_ && ctx.pending_trap == TrapKind::None) hooks_->post_execute(ctx);
  if (ctx.pending_trap != TrapKind::None) {
    raise_trap(ctx.pending_trap, pc);
    return false;
  }

  ++res.instructions;
  ++res.unit_issues[static_cast<unsigned>(isa::unit_of(ctx.instr.op))];
  return true;
}

bool Gpu::lane_guard(const Warp& w, const Instruction& in, unsigned lane) const {
  if (in.guard_pred >= isa::kNumPredicates) return !in.guard_neg ? true : false;
  const bool p = (w.preds[lane] >> in.guard_pred) & 1;
  return p != in.guard_neg;
}

void Gpu::execute(ExecCtx& ctx) {
  Warp& w = ctx.warp();
  const std::uint32_t pc = w.stack.back().pc;  // may differ from ctx.pc under faults
  const Instruction& in = ctx.instr;

  switch (in.op) {
    case Op::BRA: {
      const std::uint32_t taken = ctx.exec_mask;
      const std::uint32_t not_taken = w.active_mask() & ~taken;
      SimtEntry& tos = w.stack.back();
      if (taken == 0) {
        tos.pc = pc + 1;
      } else if (not_taken == 0) {
        tos.pc = in.imm;
      } else {
        if (w.stack.size() >= kMaxStackDepth) {
          ctx.pending_trap = TrapKind::StackOverflow;
          return;
        }
        tos.mask = not_taken;
        tos.pc = pc + 1;
        w.stack.push_back(SimtEntry{in.imm, tos.reconv_pc, taken});
      }
      return;
    }
    case Op::SSY: {
      if (w.stack.size() >= kMaxStackDepth) {
        ctx.pending_trap = TrapKind::StackOverflow;
        return;
      }
      const SimtEntry tos = w.stack.back();
      w.stack.back() = SimtEntry{in.imm, tos.reconv_pc, tos.mask};  // join entry
      w.stack.push_back(SimtEntry{pc + 1, in.imm, tos.mask});       // continue entry
      return;
    }
    case Op::EXIT: {
      const std::uint32_t dying = ctx.exec_mask;
      const std::size_t tos_idx = w.stack.size() - 1;
      for (SimtEntry& e : w.stack) e.mask &= ~dying;
      while (!w.stack.empty() && w.stack.back().mask == 0) w.stack.pop_back();
      if (w.stack.empty()) {
        w.done = true;
      } else if (w.stack.size() - 1 == tos_idx) {
        w.stack.back().pc = pc + 1;  // surviving lanes of the current entry
      }
      return;
    }
    case Op::BAR:
      // Predicated-off barriers do not arrive (a warp whose lanes are all
      // guarded off skips the barrier — the source of barrier mismatches).
      if (ctx.exec_mask != 0) w.at_barrier = true;
      w.stack.back().pc = pc + 1;
      return;
    case Op::NOP:
      w.stack.back().pc = pc + 1;
      return;
    default:
      execute_lanes(ctx);
      if (ctx.pending_trap == TrapKind::None) w.stack.back().pc = pc + 1;
      return;
  }
}

void Gpu::execute_lanes(ExecCtx& ctx) {
  const Instruction& in = ctx.instr;
  ExecUnit& unit = exec_ ? *exec_ : builtin_exec_;

  for (unsigned lane = 0; lane < kWarpSize && ctx.pending_trap == TrapKind::None;
       ++lane) {
    if (!((ctx.exec_mask >> lane) & 1)) continue;

    switch (in.op) {
      case Op::MOV: {
        const std::uint32_t v = in.use_imm ? in.imm : ctx.read_reg(lane, in.rs1);
        ctx.write_reg(lane, in.rd, v);
        break;
      }
      case Op::SEL: {
        const std::uint32_t a = ctx.read_reg(lane, in.rs1);
        const std::uint32_t b = in.use_imm ? in.imm : ctx.read_reg(lane, in.rs2);
        ctx.write_reg(lane, in.rd, ctx.read_pred(lane, in.rs3) ? a : b);
        break;
      }
      case Op::S2R:
        ctx.write_reg(lane, in.rd, special_value(ctx, lane, in.rs1));
        break;
      case Op::LD: {
        const std::uint64_t base = ctx.read_reg(lane, in.rs1);
        const std::uint64_t off = in.use_imm ? in.imm : ctx.read_reg(lane, in.rs2);
        const std::uint32_t v = mem_read(ctx, in.space, lane, base + off);
        if (ctx.pending_trap == TrapKind::None) ctx.write_reg(lane, in.rd, v);
        break;
      }
      case Op::ST: {
        const std::uint64_t base = ctx.read_reg(lane, in.rs1);
        const std::uint64_t off = in.use_imm ? in.imm : ctx.read_reg(lane, in.rs2);
        const std::uint32_t data = ctx.read_reg(lane, in.rd);
        if (ctx.pending_trap == TrapKind::None)
          mem_write(ctx, in.space, lane, base + off, data);
        break;
      }
      default: {
        const int srcs = isa::num_sources(in.op);
        std::uint32_t a = 0, b = 0, c = 0;
        if (srcs >= 1) a = ctx.read_reg(lane, in.rs1);
        if (srcs >= 2)
          b = (in.use_imm && srcs == 2) ? in.imm : ctx.read_reg(lane, in.rs2);
        if (srcs >= 3)
          c = (in.use_imm && srcs == 3) ? in.imm : ctx.read_reg(lane, in.rs3);
        if (srcs == 1 && in.use_imm) a = in.imm;
        if (ctx.pending_trap != TrapKind::None) break;

        if (isa::writes_predicate(in.op)) {
          const isa::Cmp cmp = isa::cmp_of(in.op);
          bool r;
          if (isa::is_float(in.op)) {
            const float fa = bits_f32(a), fb = bits_f32(b);
            switch (cmp) {
              case isa::Cmp::LT: r = fa < fb; break;
              case isa::Cmp::LE: r = fa <= fb; break;
              case isa::Cmp::GT: r = fa > fb; break;
              case isa::Cmp::GE: r = fa >= fb; break;
              case isa::Cmp::EQ: r = fa == fb; break;
              default: r = fa != fb; break;
            }
          } else {
            const auto sa = static_cast<std::int32_t>(a);
            const auto sb = static_cast<std::int32_t>(b);
            switch (cmp) {
              case isa::Cmp::LT: r = sa < sb; break;
              case isa::Cmp::LE: r = sa <= sb; break;
              case isa::Cmp::GT: r = sa > sb; break;
              case isa::Cmp::GE: r = sa >= sb; break;
              case isa::Cmp::EQ: r = sa == sb; break;
              case isa::Cmp::LTU: r = a < b; break;
              case isa::Cmp::GEU: r = a >= b; break;
              default: r = sa != sb; break;
            }
          }
          ctx.write_pred(lane, in.rd, r);
        } else {
          const std::uint32_t v = unit.alu(in.op, a, b, c, lane);
          if (isa::writes_register(in.op)) ctx.write_reg(lane, in.rd, v);
        }
        break;
      }
    }
  }
}

std::uint32_t Gpu::mem_read(ExecCtx& ctx, MemSpace space, unsigned lane,
                            std::uint64_t addr) {
  switch (space) {
    case MemSpace::Global:
      if (!global_addr_valid(addr)) {
        ctx.pending_trap = TrapKind::IllegalAddress;
        return 0;
      }
      return global_[addr];
    case MemSpace::Shared: {
      CtaState& cta = sms_[ctx.sm_id].cta;
      if (addr >= cta.shared.size()) {
        ctx.pending_trap = TrapKind::IllegalAddress;
        return 0;
      }
      return cta.shared[addr];
    }
    case MemSpace::Const:
      if (addr >= const_.size()) {
        ctx.pending_trap = TrapKind::IllegalAddress;
        return 0;
      }
      return const_[addr];
    case MemSpace::Local: {
      if (addr >= cfg_.local_words_per_thread) {
        ctx.pending_trap = TrapKind::IllegalAddress;
        return 0;
      }
      Ppb& ppb = sms_[ctx.sm_id].ppbs[ctx.ppb_id];
      const std::size_t idx =
          (static_cast<std::size_t>(ctx.warp().slot) * kWarpSize + lane) *
              cfg_.local_words_per_thread +
          addr;
      return ppb.local[idx];
    }
  }
  return 0;
}

void Gpu::mem_write(ExecCtx& ctx, MemSpace space, unsigned lane, std::uint64_t addr,
                    std::uint32_t value) {
  switch (space) {
    case MemSpace::Global:
      if (!global_addr_valid(addr)) {
        ctx.pending_trap = TrapKind::IllegalAddress;
        return;
      }
      global_[addr] = value;
      return;
    case MemSpace::Shared: {
      CtaState& cta = sms_[ctx.sm_id].cta;
      if (addr >= cta.shared.size()) {
        ctx.pending_trap = TrapKind::IllegalAddress;
        return;
      }
      cta.shared[addr] = value;
      return;
    }
    case MemSpace::Const:
      ctx.pending_trap = TrapKind::IllegalAddress;  // constant memory is read-only
      return;
    case MemSpace::Local: {
      if (addr >= cfg_.local_words_per_thread) {
        ctx.pending_trap = TrapKind::IllegalAddress;
        return;
      }
      Ppb& ppb = sms_[ctx.sm_id].ppbs[ctx.ppb_id];
      const std::size_t idx =
          (static_cast<std::size_t>(ctx.warp().slot) * kWarpSize + lane) *
              cfg_.local_words_per_thread +
          addr;
      ppb.local[idx] = value;
      return;
    }
  }
}

std::uint32_t Gpu::special_value(const ExecCtx& ctx, unsigned lane,
                                 std::uint8_t sr) const {
  const Warp& w = ctx.warp_;
  switch (static_cast<isa::SpecialReg>(sr)) {
    case isa::SpecialReg::TID_X: return w.tid_x[lane];
    case isa::SpecialReg::TID_Y: return w.tid_y[lane];
    case isa::SpecialReg::TID_Z: return w.tid_z[lane];
    case isa::SpecialReg::NTID_X: return block_.x;
    case isa::SpecialReg::NTID_Y: return block_.y;
    case isa::SpecialReg::NTID_Z: return block_.z;
    case isa::SpecialReg::CTAID_X: return w.cta_x;
    case isa::SpecialReg::CTAID_Y: return w.cta_y;
    case isa::SpecialReg::NCTAID_X: return grid_.x;
    case isa::SpecialReg::NCTAID_Y: return grid_.y;
    case isa::SpecialReg::LANEID: return lane;
    case isa::SpecialReg::WARPID: return w.warp_in_cta;
    case isa::SpecialReg::SMID: return ctx.sm_id;
    default: return 0;  // unknown special register reads zero
  }
}

// ---------------------------------------------------------------------------
// Launch loop
// ---------------------------------------------------------------------------

LaunchResult Gpu::launch(const isa::Program& prog, Dim3 grid, Dim3 block,
                         std::uint64_t max_cycles) {
  LaunchResult res;
  if (prog.regs_per_thread > kPhysRegsPerThread)
    throw std::invalid_argument("kernel exceeds 64 registers per thread");
  const unsigned warps_per_cta = (block.count() + kWarpSize - 1) / kWarpSize;
  if (warps_per_cta > cfg_.max_warps_per_ppb * cfg_.ppbs_per_sm)
    throw std::invalid_argument("CTA exceeds resident warp capacity");
  if (block.count() == 0 || grid.count() == 0)
    throw std::invalid_argument("empty launch");

  prog_ = &prog;
  grid_ = grid;
  block_ = block;
  cycle_ = 0;
  trap_ = TrapKind::None;
  trap_pc_ = 0;
  for (Sm& sm : sms_) {
    sm.cta.active = false;
    for (Ppb& ppb : sm.ppbs) {
      ppb.rr_next = 0;
      for (Warp& w : ppb.warps) {
        w.valid = false;
        w.done = false;
        w.at_barrier = false;
        w.stack.clear();
      }
    }
  }

  if (hooks_) hooks_->on_launch_begin(*this, prog);

  const std::uint64_t budget = max_cycles ? max_cycles : cfg_.watchdog_cycles;
  const unsigned total_ctas = grid.x * grid.y;
  unsigned next_cta = 0;

  for (;;) {
    // Retire finished CTAs and dispatch pending ones.
    bool any_active = false;
    for (unsigned s = 0; s < sms_.size(); ++s) {
      if (sms_[s].cta.active && sm_idle(s)) {
        sms_[s].cta.active = false;
        for (Ppb& ppb : sms_[s].ppbs)
          for (Warp& w : ppb.warps) w.valid = false;
      }
      if (!sms_[s].cta.active && next_cta < total_ctas) {
        init_cta(s, next_cta % grid.x, next_cta / grid.x);
        ++next_cta;
      }
      any_active |= sms_[s].cta.active;
    }
    if (!any_active && next_cta >= total_ctas) break;

    for (unsigned s = 0; s < sms_.size(); ++s)
      for (unsigned p = 0; p < sms_[s].ppbs.size(); ++p) {
        step_ppb(s, p, res);
        if (trap_ != TrapKind::None) {
          res.ok = false;
          res.trap = trap_;
          res.trap_pc = trap_pc_;
          res.cycles = cycle_;
          prog_ = nullptr;
          return res;
        }
      }

    for (unsigned s = 0; s < sms_.size(); ++s) release_barriers(s);

    if (++cycle_ > budget) {
      res.ok = false;
      res.trap = TrapKind::Watchdog;
      res.trap_pc = 0;
      res.cycles = cycle_;
      prog_ = nullptr;
      return res;
    }
  }

  res.ok = true;
  res.cycles = cycle_;
  prog_ = nullptr;
  return res;
}

}  // namespace gpf::arch
