#include "arch/exec.hpp"

#include <cmath>

#include "common/bitops.hpp"
#include "softfloat/fp32.hpp"
#include "softfloat/intops.hpp"
#include "softfloat/sfu.hpp"

namespace gpf::arch {

using isa::Op;

std::uint32_t FastExec::alu(Op op, std::uint32_t a, std::uint32_t b, std::uint32_t c,
                            unsigned /*lane*/) {
  const auto fa = bits_f32(a);
  const auto fb = bits_f32(b);
  const auto fc = bits_f32(c);
  const auto sa = static_cast<std::int32_t>(a);
  const auto sb = static_cast<std::int32_t>(b);
  switch (op) {
    case Op::IADD: return a + b;
    case Op::ISUB: return a - b;
    case Op::IMUL: return a * b;
    case Op::IMAD: return a * b + c;
    case Op::IMIN: return static_cast<std::uint32_t>(sa < sb ? sa : sb);
    case Op::IMAX: return static_cast<std::uint32_t>(sa > sb ? sa : sb);
    case Op::IABS: return static_cast<std::uint32_t>(sa < 0 ? -sa : sa);
    case Op::SHL: return b >= 32 ? 0 : a << b;
    case Op::SHR: return b >= 32 ? 0 : a >> b;
    case Op::SHRA: return static_cast<std::uint32_t>(b >= 32 ? sa >> 31 : sa >> b);
    case Op::LOP_AND: return a & b;
    case Op::LOP_OR: return a | b;
    case Op::LOP_XOR: return a ^ b;
    case Op::LOP_NOT: return ~a;

    case Op::FADD: return f32_bits(fa + fb);
    case Op::FMUL: return f32_bits(fa * fb);
    case Op::FFMA: return f32_bits(std::fmaf(fa, fb, fc));
    case Op::FMIN: return f32_bits(std::fmin(fa, fb));
    case Op::FMAX: return f32_bits(std::fmax(fa, fb));
    case Op::F2I: return sf::f2i(a);
    case Op::I2F: return f32_bits(static_cast<float>(sa));

    // SFU ops use the same polynomial pipeline as SoftExec so golden outputs
    // are identical across backends.
    case Op::FSIN: return sf::sfu_eval(sf::SfuFunc::Sin, a);
    case Op::FEXP: return sf::sfu_eval(sf::SfuFunc::Exp2, a);
    case Op::FRCP: return sf::sfu_eval(sf::SfuFunc::Rcp, a);
    case Op::FSQRT: return sf::sfu_eval(sf::SfuFunc::Sqrt, a);
    case Op::FLG2: return sf::sfu_eval(sf::SfuFunc::Lg2, a);

    default: return 0;
  }
}

std::uint32_t SoftExec::alu(Op op, std::uint32_t a, std::uint32_t b, std::uint32_t c,
                            unsigned lane) {
  const sf::BusFaultSet* lf = lane_faults_[lane % kWarpSize];
  switch (op) {
    case Op::IADD: return sf::iadd(a, b, lf);
    case Op::ISUB: return sf::isub(a, b, lf);
    case Op::IMUL: return sf::imul(a, b, lf);
    case Op::IMAD: return sf::imad(a, b, c, lf);
    case Op::IMIN: return sf::imin(a, b, lf);
    case Op::IMAX: return sf::imax(a, b, lf);

    case Op::FADD: return sf::fadd(a, b, lf);
    case Op::FMUL: return sf::fmul(a, b, lf);
    case Op::FFMA: return sf::ffma(a, b, c, lf);
    case Op::FMIN: return sf::fmin(a, b, lf);
    case Op::FMAX: return sf::fmax(a, b, lf);
    case Op::F2I: return sf::f2i(a, lf);
    case Op::I2F: return sf::i2f(a, lf);

    case Op::FSIN: case Op::FEXP: case Op::FRCP: case Op::FSQRT: case Op::FLG2: {
      const sf::BusFaultSet* sfb = sfu_faults_[sfu_of_lane(lane) % sfu_count_];
      sf::SfuFunc fn = sf::SfuFunc::Sin;
      if (op == Op::FEXP) fn = sf::SfuFunc::Exp2;
      if (op == Op::FRCP) fn = sf::SfuFunc::Rcp;
      if (op == Op::FSQRT) fn = sf::SfuFunc::Sqrt;
      if (op == Op::FLG2) fn = sf::SfuFunc::Lg2;
      return sf::sfu_eval(fn, a, sfb);
    }

    // Pure-logic ops share the fast path (no separately modelled datapath).
    default: {
      FastExec fast;
      return fast.alu(op, a, b, c, lane);
    }
  }
}

const char* trap_name(TrapKind k) {
  switch (k) {
    case TrapKind::None: return "none";
    case TrapKind::InvalidOpcode: return "invalid-opcode";
    case TrapKind::InvalidRegister: return "invalid-register";
    case TrapKind::IllegalAddress: return "illegal-address";
    case TrapKind::StackOverflow: return "stack-overflow";
    case TrapKind::InvalidPC: return "invalid-pc";
    case TrapKind::Watchdog: return "watchdog-hang";
  }
  return "?";
}

}  // namespace gpf::arch
