// The functional GPU model: SMs containing PPBs; each PPB has a functional
// warp-scheduler (WSC), fetch and decode stage, 32 SP lanes, and shared SFUs.
// Every pipeline stage is exposed through MachineHooks so the RTL fault
// layer, the gate-level co-simulation, and the PERfi software injector can
// observe or override it.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "arch/exec.hpp"
#include "arch/types.hpp"
#include "isa/program.hpp"

namespace gpf::arch {

inline constexpr std::uint32_t kNoReconv = 0xFFFFFFFFu;
inline constexpr unsigned kMaxStackDepth = 64;

/// One SIMT reconvergence-stack entry. The top entry is the running state;
/// it pops when its PC reaches its reconvergence PC.
struct SimtEntry {
  std::uint32_t pc = 0;
  std::uint32_t reconv_pc = kNoReconv;
  std::uint32_t mask = 0;
};

/// Resident warp state (one scheduler slot).
struct Warp {
  bool valid = false;
  bool done = false;
  bool at_barrier = false;
  unsigned slot = 0;
  unsigned warp_in_cta = 0;
  unsigned cta_x = 0, cta_y = 0;
  std::uint32_t exist_mask = 0;  ///< lanes holding real threads
  std::vector<SimtEntry> stack;
  std::array<std::uint8_t, kWarpSize> preds{};  ///< bit i of lane byte = Pi
  std::array<std::uint16_t, kWarpSize> tid_x{}, tid_y{}, tid_z{};

  std::uint32_t active_mask() const { return stack.empty() ? 0 : stack.back().mask; }
  std::uint32_t pc() const { return stack.empty() ? 0 : stack.back().pc; }
  bool ready() const { return valid && !done && !at_barrier && !stack.empty(); }
};

class Gpu;

/// Per-issue context handed to hooks. Mutations (instruction fields, the
/// execution mask, register/predicate contents) take effect immediately —
/// this is the software surface PERfi's error functions operate on.
class ExecCtx {
 public:
  ExecCtx(Gpu& gpu, unsigned sm, unsigned ppb, Warp& warp, std::uint32_t pc,
          isa::Instruction instr)
      : instr(instr), pc(pc), sm_id(sm), ppb_id(ppb), gpu_(gpu), warp_(warp) {}

  isa::Instruction instr;     ///< decoded instruction (mutable)
  std::uint32_t pc;
  unsigned sm_id, ppb_id;
  std::uint32_t exec_mask = 0;  ///< lanes that will execute (active & guard)
  bool skip = false;            ///< set true to suppress execution entirely

  Warp& warp() { return warp_; }
  const Warp& warp() const { return warp_; }
  Gpu& gpu() { return gpu_; }

  /// Architectural register access for this warp (RZ reads 0 / discards).
  /// Out-of-bounds indices set the pending trap, mirroring hardware.
  std::uint32_t read_reg(unsigned lane, std::uint8_t r);
  void write_reg(unsigned lane, std::uint8_t r, std::uint32_t v);
  bool read_pred(unsigned lane, std::uint8_t p) const;
  void write_pred(unsigned lane, std::uint8_t p, bool v);

  TrapKind pending_trap = TrapKind::None;

 private:
  friend class Gpu;
  Gpu& gpu_;
  Warp& warp_;
};

/// Stage-override hooks. Default implementations are transparent.
class MachineHooks {
 public:
  virtual ~MachineHooks() = default;
  virtual void on_launch_begin(Gpu&, const isa::Program&) {}
  /// Called once per PPB cycle before scheduling; may corrupt warp state.
  virtual void pre_cycle(Gpu&, unsigned /*sm*/, unsigned /*ppb*/) {}
  /// WSC output: the selected warp slot (-1 = none). May be overridden.
  virtual int post_select(Gpu&, unsigned /*sm*/, unsigned /*ppb*/, int slot) {
    return slot;
  }
  /// Fetch outputs: the program counter and the fetched instruction word.
  virtual std::uint32_t post_fetch_pc(Gpu&, unsigned, unsigned, unsigned /*slot*/,
                                      std::uint32_t pc) {
    return pc;
  }
  virtual std::uint64_t post_fetch_word(Gpu&, unsigned, unsigned, unsigned /*slot*/,
                                        std::uint64_t word) {
    return word;
  }
  /// Decoder output: the decoded field bundle plus its validity.
  virtual void post_decode(Gpu&, unsigned, unsigned, isa::Instruction&, bool& /*ok*/) {}
  /// Instruction-level instrumentation (PERfi's error functions).
  virtual void pre_execute(ExecCtx&) {}
  virtual void post_execute(ExecCtx&) {}
};

/// CTA (thread block) resident on an SM.
struct CtaState {
  bool active = false;
  unsigned cta_x = 0, cta_y = 0;
  unsigned expected_warps = 0;  ///< barrier releases only when ALL arrive
  std::vector<std::uint32_t> shared;
};

/// A parallel processing block: warp slots + register file + local memory.
struct Ppb {
  std::vector<Warp> warps;
  std::vector<std::uint32_t> regfile;  ///< [slot][reg][lane]
  std::vector<std::uint32_t> local;    ///< [slot][lane][word]
  unsigned rr_next = 0;                ///< round-robin scheduler pointer
};

struct Sm {
  std::vector<Ppb> ppbs;
  CtaState cta;
};

class Gpu {
 public:
  explicit Gpu(GpuConfig cfg = {});

  const GpuConfig& config() const { return cfg_; }

  // -- memory ------------------------------------------------------------
  std::vector<std::uint32_t>& global() { return global_; }
  const std::vector<std::uint32_t>& global() const { return global_; }
  std::vector<std::uint32_t>& constm() { return const_; }
  void write_global(std::size_t addr, std::span<const std::uint32_t> data);
  void write_global_f(std::size_t addr, std::span<const float> data);
  std::vector<float> read_global_f(std::size_t addr, std::size_t n) const;
  void clear_memories();

  /// Allocation map: like CUDA allocations, only registered segments are
  /// addressable by kernels; anything else raises IllegalAddress. With no
  /// segments registered the whole global memory is valid (bare-metal mode,
  /// used by unit tests). write_global/write_global_f register implicitly.
  void reserve_global(std::size_t addr, std::size_t words);
  bool global_addr_valid(std::uint64_t addr) const;

  // -- plumbing ------------------------------------------------------
  void set_exec(ExecUnit* unit) { exec_ = unit; }  ///< nullptr = builtin FastExec
  void set_hooks(MachineHooks* hooks) { hooks_ = hooks; }

  // -- execution -----------------------------------------------------------
  /// Run a kernel to completion (or trap). `max_cycles` of 0 uses the config
  /// watchdog.
  LaunchResult launch(const isa::Program& prog, Dim3 grid, Dim3 block,
                      std::uint64_t max_cycles = 0);

  // -- introspection (used by hooks / fault layers) -----------------------
  Sm& sm(unsigned i) { return sms_[i]; }
  unsigned num_sms() const { return static_cast<unsigned>(sms_.size()); }
  const isa::Program* running_program() const { return prog_; }
  std::uint64_t cycle() const { return cycle_; }

  std::uint32_t& reg_at(unsigned sm, unsigned ppb, unsigned slot, unsigned lane,
                        unsigned reg);

  /// Raise a trap from hook code (aborts the current launch).
  void raise_trap(TrapKind kind, std::uint32_t pc);

 private:
  friend class ExecCtx;

  int select_warp(unsigned sm, unsigned ppb);
  bool step_ppb(unsigned sm, unsigned ppb, LaunchResult& res);
  void execute(ExecCtx& ctx);
  void execute_lanes(ExecCtx& ctx);
  bool lane_guard(const Warp& w, const isa::Instruction& in, unsigned lane) const;
  void init_cta(unsigned sm, unsigned cta_x, unsigned cta_y);
  void release_barriers(unsigned sm);
  bool sm_idle(unsigned sm) const;

  std::uint32_t mem_read(ExecCtx& ctx, isa::MemSpace space, unsigned lane,
                         std::uint64_t addr);
  void mem_write(ExecCtx& ctx, isa::MemSpace space, unsigned lane,
                 std::uint64_t addr, std::uint32_t value);
  std::uint32_t special_value(const ExecCtx& ctx, unsigned lane,
                              std::uint8_t sr) const;

  GpuConfig cfg_;
  std::vector<std::uint32_t> global_;
  std::vector<std::uint32_t> const_;
  std::vector<std::pair<std::size_t, std::size_t>> segments_;  // (base, words)
  std::vector<Sm> sms_;
  FastExec builtin_exec_;
  ExecUnit* exec_ = nullptr;
  MachineHooks* hooks_ = nullptr;

  // Launch-scoped state.
  const isa::Program* prog_ = nullptr;
  Dim3 grid_{}, block_{};
  std::uint64_t cycle_ = 0;
  TrapKind trap_ = TrapKind::None;
  std::uint32_t trap_pc_ = 0;
};

}  // namespace gpf::arch
