#include "syndrome/pattern.hpp"

#include <algorithm>
#include <vector>

namespace gpf::syndrome {

std::string_view pattern_name(SpatialPattern p) {
  switch (p) {
    case SpatialPattern::None: return "none";
    case SpatialPattern::Single: return "single";
    case SpatialPattern::Row: return "row";
    case SpatialPattern::Col: return "col";
    case SpatialPattern::RowCol: return "row+col";
    case SpatialPattern::Block: return "block";
    case SpatialPattern::Random: return "random";
    case SpatialPattern::All: return "all";
  }
  return "?";
}

SpatialPattern classify_spatial(std::span<const std::uint32_t> indices, unsigned n) {
  if (indices.empty()) return SpatialPattern::None;
  if (indices.size() == 1) return SpatialPattern::Single;
  const std::size_t total = static_cast<std::size_t>(n) * n;
  if (indices.size() >= total * 4 / 5) return SpatialPattern::All;

  std::vector<unsigned> rows, cols;
  rows.reserve(indices.size());
  cols.reserve(indices.size());
  unsigned rmin = n, rmax = 0, cmin = n, cmax = 0;
  std::vector<bool> row_seen(n, false), col_seen(n, false);
  unsigned distinct_rows = 0, distinct_cols = 0;
  for (std::uint32_t idx : indices) {
    const unsigned r = idx / n, c = idx % n;
    rows.push_back(r);
    cols.push_back(c);
    rmin = std::min(rmin, r);
    rmax = std::max(rmax, r);
    cmin = std::min(cmin, c);
    cmax = std::max(cmax, c);
    if (r < n && !row_seen[r]) {
      row_seen[r] = true;
      ++distinct_rows;
    }
    if (c < n && !col_seen[c]) {
      col_seen[c] = true;
      ++distinct_cols;
    }
  }
  // Row/Col bands: tiled kernels replicate a corrupted lane's row/column in
  // every tile, so allow up to 2 distinct rows (columns), provided the band
  // stretches across a good part of the matrix (else it is a block).
  const bool one_row = distinct_rows <= 2 && (cmax - cmin + 1) >= n / 2;
  const bool one_col = distinct_cols <= 2 && (rmax - rmin + 1) >= n / 2;
  if (one_row && !one_col) return SpatialPattern::Row;
  if (one_col && !one_row) return SpatialPattern::Col;
  if (distinct_rows <= 2 && distinct_cols <= 2) return SpatialPattern::Block;

  // Row+Column: the union of a single row and a single column covers all.
  {
    std::vector<unsigned> rs(rows), cs(cols);
    std::sort(rs.begin(), rs.end());
    std::sort(cs.begin(), cs.end());
    // Candidate row/col = the most frequent values.
    auto mode = [](const std::vector<unsigned>& v) {
      unsigned best = v[0], best_count = 0, cur = v[0], count = 0;
      for (unsigned x : v) {
        if (x == cur) {
          ++count;
        } else {
          cur = x;
          count = 1;
        }
        if (count > best_count) {
          best_count = count;
          best = cur;
        }
      }
      return best;
    };
    const unsigned mr = mode(rs), mc = mode(cs);
    bool covered = true;
    for (std::size_t i = 0; i < rows.size(); ++i)
      if (rows[i] != mr && cols[i] != mc) {
        covered = false;
        break;
      }
    bool row_used = false, col_used = false;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (rows[i] == mr && cols[i] != mc) row_used = true;
      if (cols[i] == mc && rows[i] != mr) col_used = true;
    }
    if (covered && row_used && col_used) return SpatialPattern::RowCol;
  }

  // Block: dense within the bounding box (>= 40% of it corrupted) and the
  // box does not cover the full matrix.
  const std::size_t box =
      static_cast<std::size_t>(rmax - rmin + 1) * (cmax - cmin + 1);
  const bool spans_all = (rmax - rmin + 1 == n) && (cmax - cmin + 1 == n);
  if (!spans_all && indices.size() * 5 >= box * 2) return SpatialPattern::Block;

  return SpatialPattern::Random;
}

}  // namespace gpf::syndrome
