// Spatial classification of multiple corrupted elements in a matrix output
// (paper Fig. 8 / Table 2): Row, Column, Row+Column, Block, Random, All —
// plus Single for one corrupted element.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace gpf::syndrome {

enum class SpatialPattern : std::uint8_t {
  None,    ///< no corrupted elements
  Single,
  Row,
  Col,
  RowCol,  ///< one row plus one column
  Block,   ///< contained in a rectangular cluster
  Random,  ///< scattered
  All,     ///< all or almost all elements corrupted
};
std::string_view pattern_name(SpatialPattern p);

/// Classify corrupted linear indices in an n x n matrix.
SpatialPattern classify_spatial(std::span<const std::uint32_t> indices, unsigned n);

}  // namespace gpf::syndrome
