#include "softfloat/fp32.hpp"

#include <bit>
#include <cmath>

#include "common/bitops.hpp"

namespace gpf::sf {
namespace {

constexpr std::uint32_t kQNaN = 0x7FC00000u;

constexpr std::uint32_t sign_of(std::uint32_t a) { return a >> 31; }
constexpr std::uint32_t exp_of(std::uint32_t a) { return (a >> 23) & 0xFFu; }
constexpr std::uint32_t frac_of(std::uint32_t a) { return a & 0x7FFFFFu; }
constexpr bool is_nan(std::uint32_t a) { return exp_of(a) == 255 && frac_of(a) != 0; }
constexpr bool is_inf(std::uint32_t a) { return exp_of(a) == 255 && frac_of(a) == 0; }
constexpr bool is_zero(std::uint32_t a) { return exp_of(a) == 0; }  // post-FTZ
constexpr std::uint32_t pack_inf(std::uint32_t s) { return (s << 31) | 0x7F800000u; }
constexpr std::uint32_t mant_of(std::uint32_t a) { return frac_of(a) | 0x800000u; }

int msb_of(unsigned __int128 v) {
  const auto hi = static_cast<std::uint64_t>(v >> 64);
  if (hi) return 127 - std::countl_zero(hi);
  const auto lo = static_cast<std::uint64_t>(v);
  if (lo) return 63 - std::countl_zero(lo);
  return -1;
}

/// Round a 27-bit {24-bit mantissa | G R S} frame to nearest-even and pack.
/// `e` is the biased exponent assuming the hidden bit sits at position 26.
std::uint32_t round_and_pack(std::uint32_t sign, int e, std::uint64_t norm27,
                             const BusFaultSet* f) {
  std::uint32_t mant = static_cast<std::uint32_t>(norm27 >> 3);
  const std::uint32_t grs = static_cast<std::uint32_t>(norm27 & 7);
  if ((grs & 4) && ((grs & 3) || (mant & 1))) ++mant;
  if (mant >> 24) {
    mant >>= 1;
    ++e;
  }
  std::uint32_t out;
  if (e >= 255)
    out = pack_inf(sign);
  else if (e <= 0 || mant == 0)
    out = sign << 31;  // flush-to-zero
  else
    out = (sign << 31) | (static_cast<std::uint32_t>(e) << 23) | (mant & 0x7FFFFFu);
  return static_cast<std::uint32_t>(tap(f, Bus::Result, out));
}

/// Normalize a wide magnitude M (value = M * 2^L_unbiased) into the 27-bit
/// rounding frame and pack. Shared by FMUL/FFMA tails.
std::uint32_t normalize_and_pack(std::uint32_t sign, unsigned __int128 m, int l_unb,
                                 const BusFaultSet* f) {
  const int msb = msb_of(m);
  if (msb < 0) return static_cast<std::uint32_t>(tap(f, Bus::Result, sign << 31));
  const int e_biased = msb + l_unb + 127;
  const int shift = msb - 26;
  std::uint64_t norm;
  if (shift > 0) {
    norm = static_cast<std::uint64_t>(m >> shift);
    if (m & ((static_cast<unsigned __int128>(1) << shift) - 1)) norm |= 1;
  } else {
    norm = static_cast<std::uint64_t>(m << (-shift));
  }
  return round_and_pack(sign, e_biased, norm & ((1ull << 27) - 1), f);
}

}  // namespace

std::uint32_t ftz(std::uint32_t a) {
  return exp_of(a) == 0 ? (a & 0x80000000u) : a;
}

std::uint32_t fadd(std::uint32_t a, std::uint32_t b, const BusFaultSet* f) {
  a = ftz(static_cast<std::uint32_t>(tap(f, Bus::SrcA, a)));
  b = ftz(static_cast<std::uint32_t>(tap(f, Bus::SrcB, b)));
  if (is_nan(a) || is_nan(b)) return static_cast<std::uint32_t>(tap(f, Bus::Result, kQNaN));
  if (is_inf(a)) {
    const std::uint32_t r = (is_inf(b) && sign_of(a) != sign_of(b)) ? kQNaN : a;
    return static_cast<std::uint32_t>(tap(f, Bus::Result, r));
  }
  if (is_inf(b)) return static_cast<std::uint32_t>(tap(f, Bus::Result, b));
  if (is_zero(a) && is_zero(b)) {
    const std::uint32_t r = (sign_of(a) & sign_of(b)) << 31;
    return static_cast<std::uint32_t>(tap(f, Bus::Result, r));
  }
  if (is_zero(a)) return static_cast<std::uint32_t>(tap(f, Bus::Result, b));
  if (is_zero(b)) return static_cast<std::uint32_t>(tap(f, Bus::Result, a));

  std::uint32_t sa = sign_of(a), sb = sign_of(b);
  int ea = static_cast<int>(exp_of(a)), eb = static_cast<int>(exp_of(b));
  std::uint32_t ma = mant_of(a), mb = mant_of(b);
  if (eb > ea || (eb == ea && mb > ma)) {
    std::swap(sa, sb);
    std::swap(ea, eb);
    std::swap(ma, mb);
  }

  std::uint32_t d = static_cast<std::uint32_t>(ea - eb);
  d = static_cast<std::uint32_t>(tap(f, Bus::AddExpDiff, d)) & 0xFFu;

  std::uint64_t ma27 = static_cast<std::uint64_t>(ma) << 3;
  std::uint64_t mb27;
  const std::uint64_t mb_shifted_src = static_cast<std::uint64_t>(mb) << 3;
  if (d == 0) {
    mb27 = mb_shifted_src;
  } else if (d < 27) {
    mb27 = mb_shifted_src >> d;
    if (mb_shifted_src & ((1ull << d) - 1)) mb27 |= 1;
  } else {
    mb27 = 1;  // pure sticky
  }
  ma27 = tap(f, Bus::AddAlignedA, ma27) & ((1ull << 27) - 1);
  mb27 = tap(f, Bus::AddAlignedB, mb27) & ((1ull << 27) - 1);

  std::uint64_t sum;
  std::uint32_t rs;
  if (sa == sb) {
    sum = ma27 + mb27;
    rs = sa;
  } else if (mb27 > ma27) {  // possible only under injected faults
    sum = mb27 - ma27;
    rs = sb;
  } else {
    sum = ma27 - mb27;
    rs = sa;
  }
  sum = tap(f, Bus::AddRawSum, sum) & ((1ull << 28) - 1);
  if (sum == 0) return static_cast<std::uint32_t>(tap(f, Bus::Result, 0));

  const int msb = 63 - std::countl_zero(sum);
  int shift = msb - 26;
  const std::uint64_t enc =
      tap(f, Bus::AddNormShift, static_cast<std::uint64_t>(shift) & 0x3F) & 0x3F;
  shift = static_cast<int>(sign_extend(enc, 6));

  std::uint64_t norm;
  if (shift > 0) {
    norm = sum >> shift;
    if (sum & ((1ull << shift) - 1)) norm |= 1;
  } else {
    norm = shift <= -37 ? 0 : sum << (-shift);
  }
  return round_and_pack(rs, ea + shift, norm & ((1ull << 27) - 1), f);
}

std::uint32_t fmul(std::uint32_t a, std::uint32_t b, const BusFaultSet* f) {
  a = ftz(static_cast<std::uint32_t>(tap(f, Bus::SrcA, a)));
  b = ftz(static_cast<std::uint32_t>(tap(f, Bus::SrcB, b)));
  if (is_nan(a) || is_nan(b)) return static_cast<std::uint32_t>(tap(f, Bus::Result, kQNaN));
  const std::uint32_t sp = sign_of(a) ^ sign_of(b);
  if (is_inf(a) || is_inf(b)) {
    const std::uint32_t r = (is_zero(a) || is_zero(b)) ? kQNaN : pack_inf(sp);
    return static_cast<std::uint32_t>(tap(f, Bus::Result, r));
  }
  if (is_zero(a) || is_zero(b))
    return static_cast<std::uint32_t>(tap(f, Bus::Result, sp << 31));

  int e = static_cast<int>(exp_of(a)) + static_cast<int>(exp_of(b)) - 127;
  e = static_cast<int>(
      sign_extend(tap(f, Bus::MulExpSum, static_cast<std::uint64_t>(e) & 0x3FF) & 0x3FF, 10));

  std::uint64_t prod = static_cast<std::uint64_t>(mant_of(a)) * mant_of(b);
  prod = tap(f, Bus::MulProduct, prod) & ((1ull << 48) - 1);
  // value = prod * 2^(e_unbiased - 46) with e_unbiased = e - 127.
  return normalize_and_pack(sp, prod, e - 127 - 46, f);
}

std::uint32_t ffma(std::uint32_t a, std::uint32_t b, std::uint32_t c,
                   const BusFaultSet* f) {
  a = ftz(static_cast<std::uint32_t>(tap(f, Bus::SrcA, a)));
  b = ftz(static_cast<std::uint32_t>(tap(f, Bus::SrcB, b)));
  c = ftz(static_cast<std::uint32_t>(tap(f, Bus::SrcC, c)));
  if (is_nan(a) || is_nan(b) || is_nan(c))
    return static_cast<std::uint32_t>(tap(f, Bus::Result, kQNaN));

  const std::uint32_t sp = sign_of(a) ^ sign_of(b);
  if (is_inf(a) || is_inf(b)) {
    std::uint32_t r;
    if (is_zero(a) || is_zero(b))
      r = kQNaN;
    else if (is_inf(c) && sign_of(c) != sp)
      r = kQNaN;
    else
      r = pack_inf(sp);
    return static_cast<std::uint32_t>(tap(f, Bus::Result, r));
  }
  if (is_inf(c)) return static_cast<std::uint32_t>(tap(f, Bus::Result, c));

  if (is_zero(a) || is_zero(b)) {
    const std::uint32_t r =
        is_zero(c) ? ((sp & sign_of(c)) << 31) : c;
    return static_cast<std::uint32_t>(tap(f, Bus::Result, r));
  }

  const int lp = (static_cast<int>(exp_of(a)) - 127) + (static_cast<int>(exp_of(b)) - 127) - 46;
  std::uint64_t prod = static_cast<std::uint64_t>(mant_of(a)) * mant_of(b);
  prod = tap(f, Bus::MulProduct, prod) & ((1ull << 48) - 1);

  if (is_zero(c)) return normalize_and_pack(sp, prod, lp, f);

  const std::uint32_t sc = sign_of(c);
  const int lc = static_cast<int>(exp_of(c)) - 127 - 23;
  const std::uint64_t mc = mant_of(c);

  // Bring both into a common frame value = M * 2^L; cap giant shifts into a
  // sticky bit so the 128-bit magnitudes never overflow.
  unsigned __int128 mp128 = prod, mc128 = mc;
  int l;
  bool sticky = false;
  const int delta = lp - lc;
  if (delta >= 0) {
    l = lc;
    if (delta > 72) {
      l = lp - 72;
      mp128 <<= 72;
      sticky = mc != 0;
      mc128 = 0;
    } else {
      mp128 <<= delta;
    }
  } else {
    l = lp;
    if (-delta > 72) {
      l = lc - 72;
      mc128 <<= 72;
      sticky = prod != 0;
      mp128 = 0;
    } else {
      mc128 <<= -delta;
    }
  }

  unsigned __int128 m;
  std::uint32_t rs;
  if (sp == sc) {
    m = mp128 + mc128;
    rs = sp;
  } else if (mc128 > mp128) {
    m = mc128 - mp128;
    rs = sc;
  } else {
    m = mp128 - mc128;
    rs = sp;
  }
  if (sticky) m |= 1;
  // Fault tap over the low 64 bits of the wide sum.
  const std::uint64_t lo = static_cast<std::uint64_t>(m);
  m = (m >> 64 << 64) | tap(f, Bus::FmaWideSum, lo);
  if (m == 0) return static_cast<std::uint32_t>(tap(f, Bus::Result, 0));
  return normalize_and_pack(rs, m, l, f);
}

std::uint32_t fmin(std::uint32_t a, std::uint32_t b, const BusFaultSet* f) {
  a = ftz(static_cast<std::uint32_t>(tap(f, Bus::SrcA, a)));
  b = ftz(static_cast<std::uint32_t>(tap(f, Bus::SrcB, b)));
  std::uint32_t r;
  if (is_nan(a))
    r = b;
  else if (is_nan(b))
    r = a;
  else
    r = bits_f32(a) < bits_f32(b) ? a : b;
  return static_cast<std::uint32_t>(tap(f, Bus::Result, r));
}

std::uint32_t fmax(std::uint32_t a, std::uint32_t b, const BusFaultSet* f) {
  a = ftz(static_cast<std::uint32_t>(tap(f, Bus::SrcA, a)));
  b = ftz(static_cast<std::uint32_t>(tap(f, Bus::SrcB, b)));
  std::uint32_t r;
  if (is_nan(a))
    r = b;
  else if (is_nan(b))
    r = a;
  else
    r = bits_f32(a) > bits_f32(b) ? a : b;
  return static_cast<std::uint32_t>(tap(f, Bus::Result, r));
}

std::uint32_t f2i(std::uint32_t a, const BusFaultSet* f) {
  a = ftz(static_cast<std::uint32_t>(tap(f, Bus::SrcA, a)));
  const float v = bits_f32(a);
  std::int32_t r;
  if (std::isnan(v))
    r = 0;
  else if (v >= 2147483647.0f)
    r = INT32_MAX;
  else if (v <= -2147483648.0f)
    r = INT32_MIN;
  else
    r = static_cast<std::int32_t>(v);
  return static_cast<std::uint32_t>(tap(f, Bus::Result, static_cast<std::uint32_t>(r)));
}

std::uint32_t i2f(std::uint32_t a, const BusFaultSet* f) {
  a = static_cast<std::uint32_t>(tap(f, Bus::SrcA, a));
  const float v = static_cast<float>(static_cast<std::int32_t>(a));
  return static_cast<std::uint32_t>(tap(f, Bus::Result, f32_bits(v)));
}

unsigned bus_width(Bus b) {
  switch (b) {
    case Bus::SrcA: case Bus::SrcB: case Bus::SrcC: case Bus::Result:
      return 32;
    case Bus::AddExpDiff: return 8;
    case Bus::AddAlignedA: case Bus::AddAlignedB: return 27;
    case Bus::AddRawSum: return 28;
    case Bus::AddNormShift: return 6;
    case Bus::MulExpSum: return 10;
    case Bus::MulProduct: return 48;
    case Bus::FmaWideSum: return 64;
    case Bus::IntSum: return 33;
    case Bus::IntProduct: return 64;
    case Bus::SfuRange: return 32;
    case Bus::SfuPolyT1: case Bus::SfuPolyT2: return 32;
    case Bus::SfuOpSelect: return 3;
    case Bus::Count: break;
  }
  return 0;
}

const char* bus_name(Bus b) {
  switch (b) {
    case Bus::SrcA: return "src_a";
    case Bus::SrcB: return "src_b";
    case Bus::SrcC: return "src_c";
    case Bus::Result: return "result";
    case Bus::AddExpDiff: return "add_exp_diff";
    case Bus::AddAlignedA: return "add_aligned_a";
    case Bus::AddAlignedB: return "add_aligned_b";
    case Bus::AddRawSum: return "add_raw_sum";
    case Bus::AddNormShift: return "add_norm_shift";
    case Bus::MulExpSum: return "mul_exp_sum";
    case Bus::MulProduct: return "mul_product";
    case Bus::FmaWideSum: return "fma_wide_sum";
    case Bus::IntSum: return "int_sum";
    case Bus::IntProduct: return "int_product";
    case Bus::SfuRange: return "sfu_range";
    case Bus::SfuPolyT1: return "sfu_poly_t1";
    case Bus::SfuPolyT2: return "sfu_poly_t2";
    case Bus::SfuOpSelect: return "sfu_op_select";
    case Bus::Count: break;
  }
  return "?";
}

}  // namespace gpf::sf
