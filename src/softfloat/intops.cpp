#include "softfloat/intops.hpp"

namespace gpf::sf {

std::uint32_t iadd(std::uint32_t a, std::uint32_t b, const BusFaultSet* f) {
  a = static_cast<std::uint32_t>(tap(f, Bus::SrcA, a));
  b = static_cast<std::uint32_t>(tap(f, Bus::SrcB, b));
  std::uint64_t sum = static_cast<std::uint64_t>(a) + b;  // 33 bits with carry
  sum = tap(f, Bus::IntSum, sum) & ((1ull << 33) - 1);
  return static_cast<std::uint32_t>(tap(f, Bus::Result, static_cast<std::uint32_t>(sum)));
}

std::uint32_t isub(std::uint32_t a, std::uint32_t b, const BusFaultSet* f) {
  a = static_cast<std::uint32_t>(tap(f, Bus::SrcA, a));
  b = static_cast<std::uint32_t>(tap(f, Bus::SrcB, b));
  // Two's-complement subtract runs through the same adder: a + ~b + 1.
  std::uint64_t sum = static_cast<std::uint64_t>(a) + static_cast<std::uint32_t>(~b) + 1;
  sum = tap(f, Bus::IntSum, sum) & ((1ull << 33) - 1);
  return static_cast<std::uint32_t>(tap(f, Bus::Result, static_cast<std::uint32_t>(sum)));
}

std::uint32_t imul(std::uint32_t a, std::uint32_t b, const BusFaultSet* f) {
  a = static_cast<std::uint32_t>(tap(f, Bus::SrcA, a));
  b = static_cast<std::uint32_t>(tap(f, Bus::SrcB, b));
  std::uint64_t prod = static_cast<std::uint64_t>(a) * b;
  prod = tap(f, Bus::IntProduct, prod);
  return static_cast<std::uint32_t>(tap(f, Bus::Result, static_cast<std::uint32_t>(prod)));
}

std::uint32_t imad(std::uint32_t a, std::uint32_t b, std::uint32_t c,
                   const BusFaultSet* f) {
  a = static_cast<std::uint32_t>(tap(f, Bus::SrcA, a));
  b = static_cast<std::uint32_t>(tap(f, Bus::SrcB, b));
  c = static_cast<std::uint32_t>(tap(f, Bus::SrcC, c));
  std::uint64_t prod = static_cast<std::uint64_t>(a) * b;
  prod = tap(f, Bus::IntProduct, prod);
  std::uint64_t sum = (prod & 0xFFFFFFFFull) + c;
  sum = tap(f, Bus::IntSum, sum) & ((1ull << 33) - 1);
  return static_cast<std::uint32_t>(tap(f, Bus::Result, static_cast<std::uint32_t>(sum)));
}

std::uint32_t imin(std::uint32_t a, std::uint32_t b, const BusFaultSet* f) {
  a = static_cast<std::uint32_t>(tap(f, Bus::SrcA, a));
  b = static_cast<std::uint32_t>(tap(f, Bus::SrcB, b));
  const auto sa = static_cast<std::int32_t>(a), sb = static_cast<std::int32_t>(b);
  return static_cast<std::uint32_t>(
      tap(f, Bus::Result, static_cast<std::uint32_t>(sa < sb ? sa : sb)));
}

std::uint32_t imax(std::uint32_t a, std::uint32_t b, const BusFaultSet* f) {
  a = static_cast<std::uint32_t>(tap(f, Bus::SrcA, a));
  b = static_cast<std::uint32_t>(tap(f, Bus::SrcB, b));
  const auto sa = static_cast<std::int32_t>(a), sb = static_cast<std::int32_t>(b);
  return static_cast<std::uint32_t>(
      tap(f, Bus::Result, static_cast<std::uint32_t>(sa > sb ? sa : sb)));
}

}  // namespace gpf::sf
