// Bit-accurate FP32 arithmetic in the style of a G80-class GPU core:
// round-to-nearest-even, flush-to-zero for subnormal inputs and outputs
// (G80 FP32 is FTZ). Each operation exposes its internal stage buses to the
// fault overlay (see buses.hpp).
#pragma once

#include <cstdint>

#include "softfloat/buses.hpp"

namespace gpf::sf {

std::uint32_t fadd(std::uint32_t a, std::uint32_t b, const BusFaultSet* f = nullptr);
std::uint32_t fmul(std::uint32_t a, std::uint32_t b, const BusFaultSet* f = nullptr);
/// Fused multiply-add: round(a*b + c) with a single rounding.
std::uint32_t ffma(std::uint32_t a, std::uint32_t b, std::uint32_t c,
                   const BusFaultSet* f = nullptr);

std::uint32_t fmin(std::uint32_t a, std::uint32_t b, const BusFaultSet* f = nullptr);
std::uint32_t fmax(std::uint32_t a, std::uint32_t b, const BusFaultSet* f = nullptr);

/// float -> int32 (truncating) and int32 -> float.
std::uint32_t f2i(std::uint32_t a, const BusFaultSet* f = nullptr);
std::uint32_t i2f(std::uint32_t a, const BusFaultSet* f = nullptr);

/// Flush-to-zero canonicalization used on every input/output.
std::uint32_t ftz(std::uint32_t a);

}  // namespace gpf::sf
