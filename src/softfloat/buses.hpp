// Named internal buses of the execution datapaths. The RTL fault-injection
// layer (src/rtl) plants stuck-at faults on individual bits of these buses;
// the softfloat/int implementations apply the overlay at the exact point the
// bus value is produced, so the corruption propagates through the remaining
// datapath stages — which is what gives the paper's non-trivial syndromes.
#pragma once

#include <cstdint>
#include <vector>

namespace gpf::sf {

enum class Bus : std::uint8_t {
  SrcA, SrcB, SrcC, Result,
  // FP add path
  AddExpDiff, AddAlignedA, AddAlignedB, AddRawSum, AddNormShift,
  // FP mul path
  MulExpSum, MulProduct,
  // FMA extras
  FmaWideSum,
  // Integer path
  IntSum, IntProduct,
  // SFU path
  SfuRange, SfuPolyT1, SfuPolyT2, SfuOpSelect,
  Count
};

/// Bit width of each bus (for fault-site enumeration).
unsigned bus_width(Bus b);
const char* bus_name(Bus b);

struct BusFault {
  Bus bus = Bus::Result;
  std::uint8_t bit = 0;
  bool stuck_high = false;
};

/// A (small) set of stuck-at faults to overlay on datapath buses.
/// Campaigns inject exactly one fault; sets exist for composability/tests.
class BusFaultSet {
 public:
  BusFaultSet() = default;
  explicit BusFaultSet(BusFault f) { add(f); }

  void add(BusFault f) { faults_.push_back(f); }
  bool empty() const { return faults_.empty(); }

  /// Apply all matching stuck-at faults to a bus value.
  std::uint64_t apply(Bus b, std::uint64_t value) const {
    for (const BusFault& f : faults_) {
      if (f.bus != b) continue;
      const std::uint64_t mask = std::uint64_t{1} << f.bit;
      value = f.stuck_high ? (value | mask) : (value & ~mask);
    }
    return value;
  }

 private:
  std::vector<BusFault> faults_;
};

/// Tap helper: identity when no fault set is installed.
inline std::uint64_t tap(const BusFaultSet* f, Bus b, std::uint64_t v) {
  return f ? f->apply(b, v) : v;
}

}  // namespace gpf::sf
