// Special Function Unit model: sin, exp2, rcp, sqrt, log2 evaluated with the
// classic range-reduction + polynomial structure. Internal stage buses
// (reduced argument, polynomial partials, the 3-bit operation-select lines)
// are fault-injectable; corrupting the select lines makes the SFU evaluate a
// different function — the control-corruption effect the paper attributes to
// the shared SFU control logic.
#pragma once

#include <cstdint>

#include "softfloat/buses.hpp"

namespace gpf::sf {

enum class SfuFunc : std::uint8_t { Sin = 0, Exp2 = 1, Rcp = 2, Sqrt = 3, Lg2 = 4 };

std::uint32_t sfu_eval(SfuFunc fn, std::uint32_t x, const BusFaultSet* f = nullptr);

}  // namespace gpf::sf
