#include "softfloat/sfu.hpp"

#include <cmath>

#include "common/bitops.hpp"
#include "softfloat/fp32.hpp"

namespace gpf::sf {
namespace {

float tapf(const BusFaultSet* f, Bus b, float v) {
  return bits_f32(static_cast<std::uint32_t>(tap(f, b, f32_bits(v))));
}

std::uint32_t finish(const BusFaultSet* f, float v) {
  return static_cast<std::uint32_t>(tap(f, Bus::Result, f32_bits(v)));
}

std::uint32_t eval_sin(std::uint32_t xb, const BusFaultSet* f) {
  const float x = bits_f32(xb);
  if (std::isnan(x) || std::isinf(x)) return finish(f, NAN);
  // Range reduction to r in [-pi/4, pi/4], quadrant q.
  const float two_over_pi = 0.63661977236758134f;
  const int k = static_cast<int>(std::nearbyint(x * two_over_pi));
  float r = x - static_cast<float>(k) * 1.5707963267948966f;
  r = tapf(f, Bus::SfuRange, r);
  const float s = tapf(f, Bus::SfuPolyT1, r * r);
  // sin(r) and cos(r) minimax-style polynomials.
  const float sin_p =
      r * (1.0f + s * (-1.6666667e-1f +
                       s * (8.3333333e-3f +
                            s * (-1.9841270e-4f + s * 2.7557319e-6f))));
  const float cos_p =
      1.0f + s * (-0.5f + s * (4.1666668e-2f +
                               s * (-1.3888889e-3f + s * 2.4801587e-5f)));
  float v;
  switch (k & 3) {
    case 0: v = sin_p; break;
    case 1: v = cos_p; break;
    case 2: v = -sin_p; break;
    default: v = -cos_p; break;
  }
  v = tapf(f, Bus::SfuPolyT2, v);
  return finish(f, v);
}

std::uint32_t eval_exp2(std::uint32_t xb, const BusFaultSet* f) {
  const float x = bits_f32(xb);
  if (std::isnan(x)) return finish(f, NAN);
  if (x > 128.0f) return finish(f, INFINITY);
  if (x < -126.0f) return finish(f, 0.0f);
  const float n = std::floor(x);
  float fr = x - n;  // in [0, 1)
  fr = tapf(f, Bus::SfuRange, fr);
  const float t = tapf(f, Bus::SfuPolyT1, fr * 0.69314718056f);  // fr*ln2
  // exp(t) Taylor series through t^8 (t <= ln2, so the tail is < 1e-7).
  float p = 1.0f +
            t * (1.0f +
                 t * (0.5f +
                      t * (1.6666667e-1f +
                           t * (4.1666668e-2f +
                                t * (8.3333333e-3f +
                                     t * (1.3888889e-3f +
                                          t * (1.9841270e-4f + t * 2.4801587e-5f)))))));
  p = tapf(f, Bus::SfuPolyT2, p);
  return finish(f, std::ldexp(p, static_cast<int>(n)));
}

std::uint32_t eval_rcp(std::uint32_t xb, const BusFaultSet* f) {
  const float x = bits_f32(xb);
  if (std::isnan(x)) return finish(f, NAN);
  if (x == 0.0f) return finish(f, std::signbit(x) ? -INFINITY : INFINITY);
  if (std::isinf(x)) return finish(f, std::signbit(x) ? -0.0f : 0.0f);
  int e;
  float m = std::frexp(std::fabs(x), &e);  // m in [0.5, 1)
  m = tapf(f, Bus::SfuRange, m);
  // Initial approximation then two Newton steps: y = y*(2 - m*y).
  float y = 2.9142f - 2.0f * m;  // linear seed accurate to ~2^-5 on [0.5,1)
  y = tapf(f, Bus::SfuPolyT1, y * (2.0f - m * y));
  y = tapf(f, Bus::SfuPolyT2, y * (2.0f - m * y));
  y = y * (2.0f - m * y);
  float v = std::ldexp(y, -e);
  if (std::signbit(x)) v = -v;
  return finish(f, v);
}

std::uint32_t eval_sqrt(std::uint32_t xb, const BusFaultSet* f) {
  const float x = bits_f32(xb);
  if (std::isnan(x) || x < 0.0f) return finish(f, x == 0.0f ? x : NAN);
  if (x == 0.0f || std::isinf(x)) return finish(f, x);
  int e;
  float m = std::frexp(x, &e);  // m in [0.5, 1)
  if (e & 1) {                  // force an even exponent
    m *= 2.0f;
    --e;
  }
  m = tapf(f, Bus::SfuRange, m);
  // rsqrt seed (piecewise-linear over [0.5,2)) + Newton steps,
  // then y = m * rsqrt(m).
  float r = m < 1.0f ? 1.8f - 0.8f * m : 1.28f - 0.287f * m;
  r = tapf(f, Bus::SfuPolyT1, r * (1.5f - 0.5f * m * r * r));
  r = tapf(f, Bus::SfuPolyT2, r * (1.5f - 0.5f * m * r * r));
  r = r * (1.5f - 0.5f * m * r * r);
  return finish(f, std::ldexp(m * r, e / 2));
}

std::uint32_t eval_lg2(std::uint32_t xb, const BusFaultSet* f) {
  const float x = bits_f32(xb);
  if (std::isnan(x) || x < 0.0f) return finish(f, NAN);
  if (x == 0.0f) return finish(f, -INFINITY);
  if (std::isinf(x)) return finish(f, INFINITY);
  int e;
  float m = std::frexp(x, &e);  // m in [0.5, 1)
  m = tapf(f, Bus::SfuRange, m * 2.0f);  // renormalize to [1, 2)
  --e;
  const float t = tapf(f, Bus::SfuPolyT1, (m - 1.0f) / (m + 1.0f));
  const float t2 = t * t;
  // atanh-series log2: log2(m) = 2*t*(1 + t^2/3 + t^4/5 + ...)/ln2
  float p = 2.0f * t * (1.0f + t2 * (0.33333334f + t2 * (0.2f + t2 * 0.14285715f)));
  p = tapf(f, Bus::SfuPolyT2, p * 1.4426950408889634f);
  return finish(f, static_cast<float>(e) + p);
}

}  // namespace

std::uint32_t sfu_eval(SfuFunc fn, std::uint32_t x, const BusFaultSet* f) {
  x = ftz(static_cast<std::uint32_t>(tap(f, Bus::SrcA, x)));
  const auto sel = static_cast<std::uint8_t>(
      tap(f, Bus::SfuOpSelect, static_cast<std::uint64_t>(fn)) & 0x7);
  switch (sel) {
    case 0: return eval_sin(x, f);
    case 1: return eval_exp2(x, f);
    case 2: return eval_rcp(x, f);
    case 3: return eval_sqrt(x, f);
    case 4: return eval_lg2(x, f);
    default:
      // Undefined select: the datapath passes the range-reduced operand
      // through unevaluated, which is what a dead select tree yields.
      return static_cast<std::uint32_t>(tap(f, Bus::Result, x));
  }
}

}  // namespace gpf::sf
