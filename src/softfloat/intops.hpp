// Integer datapath with fault-injectable internal buses (adder sum with
// carry-out, 64-bit multiplier array output).
#pragma once

#include <cstdint>

#include "softfloat/buses.hpp"

namespace gpf::sf {

std::uint32_t iadd(std::uint32_t a, std::uint32_t b, const BusFaultSet* f = nullptr);
std::uint32_t isub(std::uint32_t a, std::uint32_t b, const BusFaultSet* f = nullptr);
std::uint32_t imul(std::uint32_t a, std::uint32_t b, const BusFaultSet* f = nullptr);
/// rd = a*b + c (low 32 bits).
std::uint32_t imad(std::uint32_t a, std::uint32_t b, std::uint32_t c,
                   const BusFaultSet* f = nullptr);
std::uint32_t imin(std::uint32_t a, std::uint32_t b, const BusFaultSet* f = nullptr);
std::uint32_t imax(std::uint32_t a, std::uint32_t b, const BusFaultSet* f = nullptr);

}  // namespace gpf::sf
