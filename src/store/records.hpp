// Per-campaign record codecs: the typed payloads stored in a campaign log.
// The store layer deliberately does not depend on the gate/rtl/perfi
// libraries — campaign drivers convert their native result structs to these
// plain records, and export/status re-derive summaries from them alone.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "errmodel/models.hpp"

namespace gpf::store {

// ---------------------------------------------------------------------------
// Gate campaign (one stuck-at fault fully replayed over all traces)
// ---------------------------------------------------------------------------

struct GateRecord {
  std::uint32_t net = 0;
  bool stuck_high = false;
  bool activated = false;
  bool hang = false;
  std::array<std::uint32_t, errmodel::kNumErrorModels> error_counts{};

  bool any_error() const {
    for (auto c : error_counts)
      if (c) return true;
    return false;
  }
  /// Same classification rule as gate::FaultCharacterization::cls(), and the
  /// same names as gate::fault_class_name (asserted in test_gate_experiments).
  const char* class_name() const;
};

std::vector<std::uint8_t> encode(const GateRecord& r);
GateRecord decode_gate(std::span<const std::uint8_t> payload);

// ---------------------------------------------------------------------------
// RTL t-MxM campaign (one injection)
// ---------------------------------------------------------------------------

/// Mirrors rtl::Outcome.
enum class RtlOutcome : std::uint8_t { Masked = 0, SdcSingle, SdcMultiple, Due };
const char* rtl_outcome_name(RtlOutcome o);

struct RtlRecord {
  RtlOutcome outcome = RtlOutcome::Masked;
  std::uint32_t corrupted = 0;
  double per_warp_corrupted = 0.0;
  std::vector<double> rel_errors;
  std::vector<std::uint32_t> corrupted_idx;
};

std::vector<std::uint8_t> encode(const RtlRecord& r);
RtlRecord decode_rtl(std::span<const std::uint8_t> payload);

// ---------------------------------------------------------------------------
// PERfi EPR campaign (one instruction-level injection into one app)
// ---------------------------------------------------------------------------

/// Outcome plus DUE cause, folded into one stored enum so the store does not
/// depend on arch::TrapKind numeric values.
enum class PerfiOutcome : std::uint8_t {
  Masked = 0,
  Sdc,
  DueIllegalAddress,
  DueInvalidRegister,
  DueInvalidOpcode,
  DueHang,
  DueOther,
};
const char* perfi_outcome_name(PerfiOutcome o);
inline bool perfi_is_due(PerfiOutcome o) {
  return o >= PerfiOutcome::DueIllegalAddress;
}

struct PerfiRecord {
  PerfiOutcome outcome = PerfiOutcome::Masked;
};

std::vector<std::uint8_t> encode(const PerfiRecord& r);
PerfiRecord decode_perfi(std::span<const std::uint8_t> payload);

}  // namespace gpf::store
