// Append-only binary result log for fault-injection campaigns.
//
// A campaign store is a single file: a fixed-size header identifying the
// campaign (kind, target, engine, seed, id-space size, shard slice) followed
// by a stream of variable-length records, one per retired fault/injection.
// Every record carries a CRC32 over its id and payload, so a process killed
// mid-write leaves at most one torn record at the tail, which open() detects
// and truncates away (atomically: the trimmed copy is written to a temp file
// and renamed over the original, so a crash mid-recovery never destroys
// valid records). Appends are flushed record-by-record into the OS page
// cache — safe against a process kill — and sync() (fdatasync, GPF_FSYNC)
// extends that to host crash / power loss at checkpoint boundaries.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace gpf::store {

enum class CampaignKind : std::uint8_t {
  Gate = 0,   ///< gate-level stuck-at sweep (Tables 4-5, Fig. 10)
  Rtl = 1,    ///< RTL t-MxM AVF injections (Figs. 7-9, Table 2)
  Perfi = 2,  ///< instruction-level EPR injections (Figs. 12-13)
};
const char* campaign_kind_name(CampaignKind k);

/// Campaign identity, persisted in the store header. Two stores are shards
/// of the same campaign iff everything but (shard_index, shard_count)
/// matches; a resume must match everything including the shard slice.
struct CampaignMeta {
  CampaignKind kind = CampaignKind::Gate;
  std::uint8_t target = 0;   ///< gate: UnitKind; rtl: TileType; perfi: unused
  std::uint8_t model = 0xFF; ///< perfi: ErrorModel; others: 0xFF
  std::uint8_t engine = 0xFF;///< gate: EngineKind; others: 0xFF
  std::uint64_t seed = 0;
  std::uint64_t total = 0;   ///< campaign id space: ids are [0, total)
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  std::uint64_t param0 = 0;  ///< gate: requested faults/unit; rtl: Site
  std::uint64_t param1 = 0;  ///< gate: profiling max_issues
  std::string app;           ///< perfi: workload name (<= 19 chars)

  /// True when `id` belongs to this shard's slice of the id space.
  bool owns(std::uint64_t id) const { return id % shard_count == shard_index; }
  /// Everything-but-shard equality (merge compatibility).
  bool same_campaign(const CampaignMeta& o) const;
  bool operator==(const CampaignMeta& o) const;
};

/// One retired result: campaign-local id plus an opaque payload (see
/// records.hpp for the per-campaign codecs).
struct Record {
  std::uint64_t id = 0;
  std::vector<std::uint8_t> payload;
};

/// The append-only log file. Not thread-safe; CampaignCheckpoint adds the
/// campaign-facing locking and dedup on top.
class ResultLog {
 public:
  /// Opens `path`, creating it with `meta` when absent. When the file
  /// exists, its header must match `meta` exactly (a mismatched resume is an
  /// error, not silent corruption); valid records are loaded and a torn tail
  /// (truncated or CRC-failing bytes) is truncated off before appending.
  ResultLog(const std::string& path, const CampaignMeta& meta);

  /// Opens an existing store read-only-ish (meta comes from the file).
  explicit ResultLog(const std::string& path);

  ~ResultLog();
  ResultLog(const ResultLog&) = delete;
  ResultLog& operator=(const ResultLog&) = delete;

  const CampaignMeta& meta() const { return meta_; }
  const std::string& path() const { return path_; }
  /// Records recovered at open time (insertion order = file order).
  const std::vector<Record>& recovered() const { return recovered_; }
  /// Records the tail truncation (if any) performed at open time, in bytes.
  std::size_t torn_bytes_dropped() const { return torn_bytes_; }

  /// Appends one record and flushes it to the OS page cache (fwrite +
  /// fflush). Exact guarantee: once append() returns, the record survives
  /// any crash of *this process* (SIGKILL included); it does NOT survive a
  /// host crash or power loss until the next sync(). Callers that
  /// acknowledge work to a coordinator should sync() first.
  void append(std::uint64_t id, std::span<const std::uint8_t> payload);

  /// Pushes every record appended so far onto stable storage (fdatasync).
  /// Gated by GPF_FSYNC (default on): with GPF_FSYNC=0 this is a no-op and
  /// a host crash can lose records appended since the last sync — process
  /// crashes still lose nothing either way. Called by CampaignCheckpoint at
  /// checkpoint/lease-retire boundaries, not per append.
  void sync();

  static std::vector<std::uint8_t> encode_meta(const CampaignMeta& meta);
  static CampaignMeta decode_meta(std::span<const std::uint8_t> header);
  static constexpr std::size_t kHeaderSize = 80;
  static constexpr std::uint64_t kMagic = 0x31524F5453465047ULL;  // "GPFSTOR1"
  static constexpr std::uint32_t kVersion = 1;

 private:
  void open_existing(const CampaignMeta* expect);
  void create_new(const CampaignMeta& meta);

  std::string path_;
  CampaignMeta meta_;
  std::FILE* f_ = nullptr;
  std::vector<Record> recovered_;
  std::size_t torn_bytes_ = 0;
  std::size_t unsynced_bytes_ = 0;
};

/// Result of a pure read-only record scan (see scan_records).
struct ScannedTail {
  std::vector<Record> records;   ///< valid records found, in file order
  std::size_t end_offset = 0;    ///< one past the last valid record's bytes
};

/// Scans the records of a store file starting at byte `from_offset`
/// (ResultLog::kHeaderSize for the first record), stopping at the first torn
/// or CRC-failing record. Unlike opening a ResultLog, this never truncates
/// or rewrites the file, so it is safe on a store another process is
/// actively appending to — a mid-append torn tail just ends the scan. The
/// returned end_offset is the warehouse's incremental-compaction watermark.
/// Throws when the file cannot be opened or `from_offset` lies beyond it
/// (e.g. the log was truncated by a torn-tail recovery since the caller's
/// watermark was taken).
ScannedTail scan_records(const std::string& path, std::size_t from_offset);

/// Reads and validates only the 80-byte header of a store file.
CampaignMeta read_store_meta(const std::string& path);

/// Creates the missing parent directories of `path` (no-op when they already
/// exist). Output-producing commands (merge, export, compact) call this so
/// writing into a fresh directory works instead of failing with a bare errno
/// string. Throws a descriptive error when creation fails.
void create_parent_dirs(const std::string& path);

/// Loads a whole store into memory (for merge / export / status).
struct LoadedStore {
  CampaignMeta meta;
  std::map<std::uint64_t, std::vector<std::uint8_t>> records;  ///< id-sorted
  std::size_t torn_bytes_dropped = 0;
  std::size_t duplicate_records = 0;  ///< same id re-appended (last wins)
};
LoadedStore load_store(const std::string& path);

}  // namespace gpf::store
