// Shard-aware merge: combine N stores produced from disjoint slices of one
// campaign's fault-id space into a single store covering the union.
#pragma once

#include <string>
#include <vector>

#include "store/result_log.hpp"

namespace gpf::store {

struct MergeStats {
  std::size_t inputs = 0;
  std::size_t records = 0;             ///< records in the merged result
  std::size_t duplicate_identical = 0; ///< same id, byte-identical payload
};

/// Merges loaded stores into one result set. All inputs must be shards of
/// the same campaign (same_campaign()); an id present in two inputs with
/// differing payloads is a conflict and throws — identical duplicates (e.g.
/// an overlapping re-run) are deduplicated. The merged meta covers the whole
/// id space (shard 0 of 1); engine is kept when unanimous, 0xFF otherwise.
LoadedStore merge_stores(const std::vector<LoadedStore>& inputs,
                         MergeStats* stats = nullptr);

/// Convenience: load `paths`, merge, and write the merged store to
/// `out_path`.
MergeStats merge_store_files(const std::vector<std::string>& paths,
                             const std::string& out_path);

}  // namespace gpf::store
