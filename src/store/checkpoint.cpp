#include "store/checkpoint.hpp"

namespace gpf::store {

CampaignCheckpoint::CampaignCheckpoint(const std::string& path,
                                       const CampaignMeta& meta)
    : log_(path, meta) {
  for (const Record& r : log_.recovered()) done_[r.id] = r.payload;
}

std::size_t CampaignCheckpoint::done_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_.size() + fresh_records_;
}

bool CampaignCheckpoint::record(std::uint64_t id,
                                std::span<const std::uint8_t> payload) {
  std::lock_guard<std::mutex> lock(mu_);
  log_.append(id, payload);
  ++fresh_records_;
  return record_limit_ == 0 || fresh_records_ < record_limit_;
}

void CampaignCheckpoint::sync() {
  std::lock_guard<std::mutex> lock(mu_);
  log_.sync();
}

bool CampaignCheckpoint::should_stop() const {
  std::lock_guard<std::mutex> lock(mu_);
  return record_limit_ != 0 && fresh_records_ >= record_limit_;
}

}  // namespace gpf::store
