#include "store/result_log.hpp"

#include <array>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "store/bytes.hpp"

namespace gpf::store {

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const std::uint8_t b : data) c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

const char* campaign_kind_name(CampaignKind k) {
  switch (k) {
    case CampaignKind::Gate: return "gate";
    case CampaignKind::Rtl: return "rtl";
    case CampaignKind::Perfi: return "perfi";
  }
  return "?";
}

bool CampaignMeta::same_campaign(const CampaignMeta& o) const {
  return kind == o.kind && target == o.target && model == o.model &&
         seed == o.seed && total == o.total && param0 == o.param0 &&
         param1 == o.param1 && app == o.app;
}

bool CampaignMeta::operator==(const CampaignMeta& o) const {
  return same_campaign(o) && engine == o.engine && shard_index == o.shard_index &&
         shard_count == o.shard_count;
}

std::vector<std::uint8_t> ResultLog::encode_meta(const CampaignMeta& meta) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize);
  ByteWriter w(out);
  w.u64(kMagic);
  w.u32(kVersion);
  w.u8(static_cast<std::uint8_t>(meta.kind));
  w.u8(meta.target);
  w.u8(meta.model);
  w.u8(meta.engine);
  w.u64(meta.seed);
  w.u64(meta.total);
  w.u32(meta.shard_index);
  w.u32(meta.shard_count);
  w.u64(meta.param0);
  w.u64(meta.param1);
  w.fixed_str(meta.app, 20);
  w.u32(crc32(out));
  return out;
}

CampaignMeta ResultLog::decode_meta(std::span<const std::uint8_t> header) {
  if (header.size() < kHeaderSize)
    throw std::runtime_error("store: file shorter than header");
  const std::uint32_t want = crc32(header.subspan(0, kHeaderSize - 4));
  ByteReader r(header.subspan(0, kHeaderSize));
  CampaignMeta m;
  if (r.u64() != kMagic) throw std::runtime_error("store: bad magic (not a gpfs file)");
  const std::uint32_t version = r.u32();
  if (version != kVersion)
    throw std::runtime_error("store: unsupported format version " +
                             std::to_string(version));
  m.kind = static_cast<CampaignKind>(r.u8());
  m.target = r.u8();
  m.model = r.u8();
  m.engine = r.u8();
  m.seed = r.u64();
  m.total = r.u64();
  m.shard_index = r.u32();
  m.shard_count = r.u32();
  m.param0 = r.u64();
  m.param1 = r.u64();
  m.app = r.fixed_str(20);
  if (r.u32() != want) throw std::runtime_error("store: header CRC mismatch");
  if (m.shard_count == 0 || m.shard_index >= m.shard_count)
    throw std::runtime_error("store: invalid shard slice in header");
  return m;
}

ResultLog::ResultLog(const std::string& path, const CampaignMeta& meta)
    : path_(path) {
  if (std::FILE* probe = std::fopen(path.c_str(), "rb")) {
    std::fclose(probe);
    open_existing(&meta);
  } else {
    create_new(meta);
  }
}

ResultLog::ResultLog(const std::string& path) : path_(path) {
  open_existing(nullptr);
}

ResultLog::~ResultLog() {
  if (f_) std::fclose(f_);
}

void ResultLog::create_new(const CampaignMeta& meta) {
  if (meta.app.size() > 19)
    throw std::runtime_error("store: app name too long (max 19 chars): " + meta.app);
  meta_ = meta;
  f_ = std::fopen(path_.c_str(), "wb");
  if (!f_)
    throw std::runtime_error("store: cannot create " + path_ + ": " +
                             std::strerror(errno));
  const auto header = encode_meta(meta_);
  if (std::fwrite(header.data(), 1, header.size(), f_) != header.size() ||
      std::fflush(f_) != 0)
    throw std::runtime_error("store: short write creating " + path_);
}

void ResultLog::open_existing(const CampaignMeta* expect) {
  std::FILE* in = std::fopen(path_.c_str(), "rb");
  if (!in)
    throw std::runtime_error("store: cannot open " + path_ + ": " +
                             std::strerror(errno));
  std::vector<std::uint8_t> bytes;
  std::array<std::uint8_t, 65536> buf;
  for (std::size_t n; (n = std::fread(buf.data(), 1, buf.size(), in)) > 0;)
    bytes.insert(bytes.end(), buf.begin(), buf.begin() + static_cast<long>(n));
  std::fclose(in);

  meta_ = decode_meta(bytes);
  if (expect && !(*expect == meta_))
    throw std::runtime_error(
        "store: " + path_ +
        " belongs to a different campaign (kind/target/engine/seed/size/shard "
        "mismatch) — refusing to resume into it");

  // Scan records; stop at the first torn one and truncate it away.
  std::size_t pos = kHeaderSize;
  std::size_t valid_end = pos;
  while (pos + 16 <= bytes.size()) {
    const std::span<const std::uint8_t> all(bytes);
    ByteReader r(all.subspan(pos, 16));
    const std::uint64_t id = r.u64();
    const std::uint32_t len = r.u32();
    const std::uint32_t want = r.u32();
    if (pos + 16 + len > bytes.size()) break;  // torn: payload cut short
    const auto crc_span = all.subspan(pos, 8);  // id bytes
    const auto payload = all.subspan(pos + 16, len);
    if (crc32(payload, crc32(crc_span)) != want) break;  // torn: bad CRC
    recovered_.push_back({id, {payload.begin(), payload.end()}});
    pos += 16 + len;
    valid_end = pos;
  }
  torn_bytes_ = bytes.size() - valid_end;

  if (torn_bytes_ > 0) {
    // Rewrite header + valid records, dropping the torn tail, then reopen
    // for append. (A rename-free in-place truncate keeps this dependency-light.)
    std::FILE* out = std::fopen(path_.c_str(), "wb");
    if (!out) throw std::runtime_error("store: cannot truncate " + path_);
    if (std::fwrite(bytes.data(), 1, valid_end, out) != valid_end)
      throw std::runtime_error("store: short write truncating " + path_);
    std::fclose(out);
  }
  f_ = std::fopen(path_.c_str(), "ab");
  if (!f_) throw std::runtime_error("store: cannot reopen " + path_);
}

void ResultLog::append(std::uint64_t id, std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> rec;
  rec.reserve(16 + payload.size());
  ByteWriter w(rec);
  w.u64(id);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(crc32(payload, crc32(std::span(rec).subspan(0, 8))));
  rec.insert(rec.end(), payload.begin(), payload.end());
  if (std::fwrite(rec.data(), 1, rec.size(), f_) != rec.size() ||
      std::fflush(f_) != 0)
    throw std::runtime_error("store: append failed on " + path_);
}

LoadedStore load_store(const std::string& path) {
  ResultLog log(path);
  LoadedStore out;
  out.meta = log.meta();
  out.torn_bytes_dropped = log.torn_bytes_dropped();
  for (const Record& r : log.recovered()) {
    auto [it, inserted] = out.records.try_emplace(r.id, r.payload);
    if (!inserted) {
      it->second = r.payload;  // re-recorded id: last write wins
      ++out.duplicate_records;
    }
  }
  return out;
}

}  // namespace gpf::store
