#include "store/result_log.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <system_error>

#include "common/env.hpp"
#include "obs/metrics.hpp"
#include "store/bytes.hpp"

namespace gpf::store {

namespace {

// fsync the directory containing `path` so a just-renamed file's directory
// entry is itself durable (rename alone only orders data, not the entry).
void fsync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
  if (fd < 0) return;  // best-effort: some filesystems refuse dir opens
  ::fsync(fd);
  ::close(fd);
}

std::string recovery_tmp_path(const std::string& path) {
  return path + ".recover.tmp";
}

/// Parses consecutive records at the front of `bytes` (which must begin on a
/// record boundary), appending them to `out`. Returns the number of bytes
/// consumed — parsing stops before the first torn record (payload cut short
/// or CRC mismatch), so the remainder is the torn tail.
std::size_t parse_records(std::span<const std::uint8_t> bytes,
                          std::vector<Record>& out) {
  std::size_t pos = 0;
  while (pos + 16 <= bytes.size()) {
    ByteReader r(bytes.subspan(pos, 16));
    const std::uint64_t id = r.u64();
    const std::uint32_t len = r.u32();
    const std::uint32_t want = r.u32();
    if (pos + 16 + len > bytes.size()) break;  // torn: payload cut short
    const auto crc_span = bytes.subspan(pos, 8);  // id bytes
    const auto payload = bytes.subspan(pos + 16, len);
    if (crc32(payload, crc32(crc_span)) != want) break;  // torn: bad CRC
    out.push_back({id, {payload.begin(), payload.end()}});
    pos += 16 + len;
  }
  return pos;
}

/// Reads `path` from byte `from` to EOF. Throws when the file cannot be
/// opened or is shorter than `from`.
std::vector<std::uint8_t> read_file_from(const std::string& path,
                                         std::size_t from) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (!in)
    throw std::runtime_error("store: cannot open " + path + ": " +
                             std::strerror(errno));
  std::vector<std::uint8_t> bytes;
  std::array<std::uint8_t, 65536> buf;
  std::size_t skipped = 0;
  while (skipped < from) {
    const std::size_t n =
        std::fread(buf.data(), 1, std::min(buf.size(), from - skipped), in);
    if (n == 0) break;
    skipped += n;
  }
  if (skipped < from) {
    std::fclose(in);
    throw std::runtime_error("store: " + path + " is shorter than offset " +
                             std::to_string(from) +
                             " (log truncated since the watermark was taken)");
  }
  for (std::size_t n; (n = std::fread(buf.data(), 1, buf.size(), in)) > 0;)
    bytes.insert(bytes.end(), buf.begin(), buf.begin() + static_cast<long>(n));
  std::fclose(in);
  return bytes;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const std::uint8_t b : data) c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

const char* campaign_kind_name(CampaignKind k) {
  switch (k) {
    case CampaignKind::Gate: return "gate";
    case CampaignKind::Rtl: return "rtl";
    case CampaignKind::Perfi: return "perfi";
  }
  return "?";
}

bool CampaignMeta::same_campaign(const CampaignMeta& o) const {
  return kind == o.kind && target == o.target && model == o.model &&
         seed == o.seed && total == o.total && param0 == o.param0 &&
         param1 == o.param1 && app == o.app;
}

bool CampaignMeta::operator==(const CampaignMeta& o) const {
  return same_campaign(o) && engine == o.engine && shard_index == o.shard_index &&
         shard_count == o.shard_count;
}

std::vector<std::uint8_t> ResultLog::encode_meta(const CampaignMeta& meta) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize);
  ByteWriter w(out);
  w.u64(kMagic);
  w.u32(kVersion);
  w.u8(static_cast<std::uint8_t>(meta.kind));
  w.u8(meta.target);
  w.u8(meta.model);
  w.u8(meta.engine);
  w.u64(meta.seed);
  w.u64(meta.total);
  w.u32(meta.shard_index);
  w.u32(meta.shard_count);
  w.u64(meta.param0);
  w.u64(meta.param1);
  w.fixed_str(meta.app, 20);
  w.u32(crc32(out));
  return out;
}

CampaignMeta ResultLog::decode_meta(std::span<const std::uint8_t> header) {
  if (header.size() < kHeaderSize)
    throw std::runtime_error("store: file shorter than header");
  const std::uint32_t want = crc32(header.subspan(0, kHeaderSize - 4));
  ByteReader r(header.subspan(0, kHeaderSize));
  CampaignMeta m;
  if (r.u64() != kMagic) throw std::runtime_error("store: bad magic (not a gpfs file)");
  const std::uint32_t version = r.u32();
  if (version != kVersion)
    throw std::runtime_error("store: unsupported format version " +
                             std::to_string(version));
  m.kind = static_cast<CampaignKind>(r.u8());
  m.target = r.u8();
  m.model = r.u8();
  m.engine = r.u8();
  m.seed = r.u64();
  m.total = r.u64();
  m.shard_index = r.u32();
  m.shard_count = r.u32();
  m.param0 = r.u64();
  m.param1 = r.u64();
  m.app = r.fixed_str(20);
  if (r.u32() != want) throw std::runtime_error("store: header CRC mismatch");
  if (m.shard_count == 0 || m.shard_index >= m.shard_count)
    throw std::runtime_error("store: invalid shard slice in header");
  return m;
}

ResultLog::ResultLog(const std::string& path, const CampaignMeta& meta)
    : path_(path) {
  if (std::FILE* probe = std::fopen(path.c_str(), "rb")) {
    std::fclose(probe);
    open_existing(&meta);
  } else {
    create_new(meta);
  }
}

ResultLog::ResultLog(const std::string& path) : path_(path) {
  open_existing(nullptr);
}

ResultLog::~ResultLog() {
  if (!f_) return;
  try {
    sync();  // graceful close leaves the log durable
  } catch (...) {
  }
  std::fclose(f_);
}

void ResultLog::create_new(const CampaignMeta& meta) {
  if (meta.app.size() > 19)
    throw std::runtime_error("store: app name too long (max 19 chars): " + meta.app);
  meta_ = meta;
  f_ = std::fopen(path_.c_str(), "wb");
  if (!f_)
    throw std::runtime_error("store: cannot create " + path_ + ": " +
                             std::strerror(errno));
  const auto header = encode_meta(meta_);
  if (std::fwrite(header.data(), 1, header.size(), f_) != header.size() ||
      std::fflush(f_) != 0)
    throw std::runtime_error("store: short write creating " + path_);
}

void ResultLog::open_existing(const CampaignMeta* expect) {
  // A stale temp file here means a previous recovery crashed before (or
  // during) its rename. The original is authoritative either way — a rename
  // is atomic, so `path_` is always either the untouched original or a
  // complete trimmed copy — and the leftover is just deleted.
  std::remove(recovery_tmp_path(path_).c_str());

  const std::vector<std::uint8_t> bytes = read_file_from(path_, 0);

  meta_ = decode_meta(bytes);
  if (expect && !(*expect == meta_))
    throw std::runtime_error(
        "store: " + path_ +
        " belongs to a different campaign (kind/target/engine/seed/size/shard "
        "mismatch) — refusing to resume into it");

  // Scan records; stop at the first torn one and truncate it away.
  const std::size_t valid_end =
      kHeaderSize +
      parse_records(std::span(bytes).subspan(kHeaderSize), recovered_);
  torn_bytes_ = bytes.size() - valid_end;

  if (torn_bytes_ > 0) {
    // Drop the torn tail atomically: write header + valid records to a temp
    // file, make its data durable, rename it over the original, then fsync
    // the directory. A crash at any point leaves either the original (with
    // its recoverable tail still intact) or the complete trimmed copy —
    // never a partially rewritten log.
    const std::string tmp = recovery_tmp_path(path_);
    std::FILE* out = std::fopen(tmp.c_str(), "wb");
    if (!out) throw std::runtime_error("store: cannot create " + tmp);
    const bool wrote =
        std::fwrite(bytes.data(), 1, valid_end, out) == valid_end &&
        std::fflush(out) == 0 && ::fdatasync(fileno(out)) == 0;
    std::fclose(out);
    if (!wrote) {
      std::remove(tmp.c_str());
      throw std::runtime_error("store: short write recovering " + path_);
    }
    if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
      std::remove(tmp.c_str());
      throw std::runtime_error("store: rename failed recovering " + path_);
    }
    fsync_parent_dir(path_);
    static obs::Counter& recoveries = obs::counter("store.torn_recoveries");
    static obs::Counter& dropped = obs::counter("store.torn_bytes_dropped");
    recoveries.add(1);
    dropped.add(torn_bytes_);
  }
  f_ = std::fopen(path_.c_str(), "ab");
  if (!f_) throw std::runtime_error("store: cannot reopen " + path_);
}

void ResultLog::append(std::uint64_t id, std::span<const std::uint8_t> payload) {
  static obs::Counter& appends = obs::counter("store.appends");
  static obs::Counter& bytes = obs::counter("store.append_bytes");
  static obs::Histogram& latency = obs::histogram("store.append_us");
  obs::ScopedTimerUs timer(latency);
  std::vector<std::uint8_t> rec;
  rec.reserve(16 + payload.size());
  ByteWriter w(rec);
  w.u64(id);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(crc32(payload, crc32(std::span(rec).subspan(0, 8))));
  rec.insert(rec.end(), payload.begin(), payload.end());
  if (std::fwrite(rec.data(), 1, rec.size(), f_) != rec.size() ||
      std::fflush(f_) != 0)
    throw std::runtime_error("store: append failed on " + path_);
  unsynced_bytes_ += rec.size();
  appends.add(1);
  bytes.add(rec.size());
}

void ResultLog::sync() {
  if (!f_ || unsynced_bytes_ == 0) return;
  if (std::fflush(f_) != 0)
    throw std::runtime_error("store: flush failed on " + path_);
  if (!fsync_enabled()) return;
  static obs::Counter& syncs = obs::counter("store.fsyncs");
  static obs::Counter& durable = obs::counter("store.durable_bytes");
  static obs::Histogram& latency = obs::histogram("store.fsync_us");
  obs::ScopedTimerUs timer(latency);
  if (::fdatasync(fileno(f_)) != 0)
    throw std::runtime_error("store: fdatasync failed on " + path_ + ": " +
                             std::strerror(errno));
  syncs.add(1);
  durable.add(unsynced_bytes_);
  unsynced_bytes_ = 0;
}

ScannedTail scan_records(const std::string& path, std::size_t from_offset) {
  if (from_offset < ResultLog::kHeaderSize)
    throw std::runtime_error("store: scan offset inside the header");
  ScannedTail out;
  const std::vector<std::uint8_t> bytes = read_file_from(path, from_offset);
  out.end_offset = from_offset + parse_records(bytes, out.records);
  return out;
}

CampaignMeta read_store_meta(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (!in)
    throw std::runtime_error("store: cannot open " + path + ": " +
                             std::strerror(errno));
  std::array<std::uint8_t, ResultLog::kHeaderSize> header{};
  const std::size_t n = std::fread(header.data(), 1, header.size(), in);
  std::fclose(in);
  if (n != header.size())
    throw std::runtime_error("store: " + path + " is shorter than its header");
  return ResultLog::decode_meta(header);
}

void create_parent_dirs(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos || slash == 0) return;  // cwd or root
  const std::string dir = path.substr(0, slash);
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec)
    throw std::runtime_error("store: cannot create output directory " + dir +
                             ": " + ec.message());
}

LoadedStore load_store(const std::string& path) {
  ResultLog log(path);
  LoadedStore out;
  out.meta = log.meta();
  out.torn_bytes_dropped = log.torn_bytes_dropped();
  for (const Record& r : log.recovered()) {
    auto [it, inserted] = out.records.try_emplace(r.id, r.payload);
    if (!inserted) {
      it->second = r.payload;  // re-recorded id: last write wins
      ++out.duplicate_records;
    }
  }
  return out;
}

}  // namespace gpf::store
