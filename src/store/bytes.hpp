// Little-endian byte serialization helpers and CRC32 for the campaign store.
// Records are written field-by-field (never by struct memcpy) so the on-disk
// format is independent of host padding and endianness.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace gpf::store {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), as used by zip/png.
std::uint32_t crc32(std::span<const std::uint8_t> data,
                    std::uint32_t seed = 0);

/// Appends little-endian fields to a byte buffer.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  /// Fixed-width NUL-padded string field (truncates over-long names).
  void fixed_str(const std::string& s, std::size_t width) {
    for (std::size_t i = 0; i < width; ++i)
      out_.push_back(i < s.size() ? static_cast<std::uint8_t>(s[i]) : 0);
  }

 private:
  std::vector<std::uint8_t>& out_;
};

/// Reads little-endian fields from a byte buffer; throws on underrun.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint32_t u32() {
    const auto b = take(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    const auto b = take(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string fixed_str(std::size_t width) {
    const auto b = take(width);
    std::size_t len = 0;
    while (len < width && b[len] != 0) ++len;
    return std::string(reinterpret_cast<const char*>(b.data()), len);
  }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  std::span<const std::uint8_t> take(std::size_t n) {
    if (data_.size() - pos_ < n)
      throw std::runtime_error("store record: truncated payload");
    const auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace gpf::store
