#include "store/export.hpp"

#include <cstdarg>
#include <cstdio>
#include <stdexcept>

#include "common/env.hpp"
#include "store/records.hpp"

namespace gpf::store {

namespace {

std::string fmt(const char* f, ...) {
  char buf[64];
  va_list ap;
  va_start(ap, f);
  std::vsnprintf(buf, sizeof(buf), f, ap);
  va_end(ap);
  return buf;
}

std::string dbl(double v) { return fmt("%.17g", v); }

const char* gate_target_name(std::uint8_t t) {
  switch (t) {
    case 0: return "decoder";
    case 1: return "fetch";
    case 2: return "wsc";
  }
  return "?";
}

const char* rtl_target_name(std::uint8_t t) {
  switch (t) {
    case 0: return "max";
    case 1: return "zero";
    case 2: return "random";
  }
  return "?";
}

const char* rtl_site_name(std::uint64_t s) {
  switch (s) {
    case 0: return "fu";
    case 1: return "sfu";
    case 2: return "pipeline";
    case 3: return "scheduler";
  }
  return "?";
}

std::string target_name(const CampaignMeta& m) { return target_label(m); }

void json_meta(const LoadedStore& s, std::ostream& os) {
  const CampaignMeta& m = s.meta;
  os << "  \"campaign\": {\"kind\": \"" << campaign_kind_name(m.kind)
     << "\", \"target\": \"" << target_name(m) << "\", \"seed\": " << m.seed
     << ", \"total\": " << m.total << ", \"shard_index\": " << m.shard_index
     << ", \"shard_count\": " << m.shard_count;
  if (m.kind == CampaignKind::Gate) {
    os << ", \"requested_faults\": " << m.param0
       << ", \"max_issues\": " << m.param1;
    if (m.engine != 0xFF)
      os << ", \"engine\": \"" << engine_name(static_cast<EngineKind>(m.engine))
         << "\"";
  }
  os << "},\n";
  os << "  \"progress\": {\"done\": " << s.records.size()
     << ", \"total\": " << m.total << "},\n";
}

// --- gate ------------------------------------------------------------------

struct GateSummary {
  std::size_t by_class[4]{};  // uncontrollable, hw-masked, hw-hang, sw-error
  std::size_t faults_with_model[errmodel::kNumErrorModels]{};
  std::uint64_t occurrences[errmodel::kNumErrorModels]{};

  void add(const GateRecord& r) {
    if (r.any_error())
      ++by_class[3];
    else if (r.hang)
      ++by_class[2];
    else if (r.activated)
      ++by_class[1];
    else
      ++by_class[0];
    for (unsigned m = 0; m < errmodel::kNumErrorModels; ++m)
      if (r.error_counts[m]) {
        ++faults_with_model[m];
        occurrences[m] += r.error_counts[m];
      }
  }
};

void export_gate(const LoadedStore& s, ExportFormat format, std::ostream& os) {
  GateSummary sum;
  for (const auto& [id, payload] : s.records) sum.add(decode_gate(payload));

  if (format == ExportFormat::Csv) {
    os << "id,net,stuck,activated,hang,class";
    for (unsigned m = 0; m < errmodel::kNumErrorModels; ++m)
      os << "," << errmodel::name_of(static_cast<errmodel::ErrorModel>(m));
    os << "\n";
    for (const auto& [id, payload] : s.records) {
      const GateRecord r = decode_gate(payload);
      os << id << "," << r.net << "," << (r.stuck_high ? 1 : 0) << ","
         << (r.activated ? 1 : 0) << "," << (r.hang ? 1 : 0) << ","
         << r.class_name();
      for (const std::uint32_t c : r.error_counts) os << "," << c;
      os << "\n";
    }
    return;
  }

  os << "{\n  \"format\": \"gpfstore-export-v1\",\n";
  json_meta(s, os);
  os << "  \"summary\": {\"uncontrollable\": " << sum.by_class[0]
     << ", \"hw_masked\": " << sum.by_class[1]
     << ", \"hw_hang\": " << sum.by_class[2]
     << ", \"sw_error\": " << sum.by_class[3] << ",\n    \"models\": {";
  for (unsigned m = 0; m < errmodel::kNumErrorModels; ++m) {
    if (m) os << ", ";
    os << "\"" << errmodel::name_of(static_cast<errmodel::ErrorModel>(m))
       << "\": {\"faults\": " << sum.faults_with_model[m]
       << ", \"occurrences\": " << sum.occurrences[m] << "}";
  }
  os << "}},\n  \"records\": [\n";
  bool first = true;
  for (const auto& [id, payload] : s.records) {
    const GateRecord r = decode_gate(payload);
    os << (first ? "" : ",\n") << "    {\"id\": " << id << ", \"net\": " << r.net
       << ", \"stuck\": " << (r.stuck_high ? 1 : 0)
       << ", \"activated\": " << (r.activated ? "true" : "false")
       << ", \"hang\": " << (r.hang ? "true" : "false") << ", \"class\": \""
       << r.class_name() << "\", \"counts\": [";
    for (unsigned m = 0; m < errmodel::kNumErrorModels; ++m)
      os << (m ? "," : "") << r.error_counts[m];
    os << "]}";
    first = false;
  }
  os << "\n  ]\n}\n";
}

// --- rtl -------------------------------------------------------------------

struct RtlSummary {
  std::size_t n = 0, masked = 0, sdc_single = 0, sdc_multi = 0, due = 0;
  std::uint64_t corrupted_total = 0;
  double per_warp_sum = 0.0;

  void add(const RtlRecord& r) {
    ++n;
    switch (r.outcome) {
      case RtlOutcome::Masked: ++masked; break;
      case RtlOutcome::SdcSingle: ++sdc_single; break;
      case RtlOutcome::SdcMultiple: ++sdc_multi; break;
      case RtlOutcome::Due: ++due; break;
    }
    corrupted_total += r.corrupted;
    per_warp_sum += r.per_warp_corrupted;
  }
  double ratio(std::size_t k) const {
    return n ? static_cast<double>(k) / static_cast<double>(n) : 0.0;
  }
};

void export_rtl(const LoadedStore& s, ExportFormat format, std::ostream& os) {
  RtlSummary sum;
  for (const auto& [id, payload] : s.records) sum.add(decode_rtl(payload));

  if (format == ExportFormat::Csv) {
    os << "id,outcome,corrupted,per_warp_corrupted,rel_error_count\n";
    for (const auto& [id, payload] : s.records) {
      const RtlRecord r = decode_rtl(payload);
      os << id << "," << rtl_outcome_name(r.outcome) << "," << r.corrupted << ","
         << dbl(r.per_warp_corrupted) << "," << r.rel_errors.size() << "\n";
    }
    return;
  }

  os << "{\n  \"format\": \"gpfstore-export-v1\",\n";
  json_meta(s, os);
  const std::size_t sdc = sum.sdc_single + sum.sdc_multi;
  os << "  \"summary\": {\"injections\": " << sum.n << ", \"masked\": " << sum.masked
     << ", \"sdc_single\": " << sum.sdc_single
     << ", \"sdc_multiple\": " << sum.sdc_multi << ", \"due\": " << sum.due
     << ", \"avf_sdc\": " << dbl(sum.ratio(sdc))
     << ", \"avf_due\": " << dbl(sum.ratio(sum.due))
     << ", \"corrupted_total\": " << sum.corrupted_total << "},\n";
  os << "  \"records\": [\n";
  bool first = true;
  for (const auto& [id, payload] : s.records) {
    const RtlRecord r = decode_rtl(payload);
    os << (first ? "" : ",\n") << "    {\"id\": " << id << ", \"outcome\": \""
       << rtl_outcome_name(r.outcome) << "\", \"corrupted\": " << r.corrupted
       << ", \"per_warp\": " << dbl(r.per_warp_corrupted) << ", \"rel_errors\": [";
    for (std::size_t i = 0; i < r.rel_errors.size(); ++i)
      os << (i ? "," : "") << dbl(r.rel_errors[i]);
    os << "], \"corrupted_idx\": [";
    for (std::size_t i = 0; i < r.corrupted_idx.size(); ++i)
      os << (i ? "," : "") << r.corrupted_idx[i];
    os << "]}";
    first = false;
  }
  os << "\n  ]\n}\n";
}

// --- perfi -----------------------------------------------------------------

struct PerfiSummary {
  std::size_t n = 0;
  std::size_t by_outcome[7]{};

  void add(const PerfiRecord& r) {
    ++n;
    ++by_outcome[static_cast<unsigned>(r.outcome)];
  }
  std::size_t due() const {
    return by_outcome[2] + by_outcome[3] + by_outcome[4] + by_outcome[5] +
           by_outcome[6];
  }
  double ratio(std::size_t k) const {
    return n ? static_cast<double>(k) / static_cast<double>(n) : 0.0;
  }
};

void export_perfi(const LoadedStore& s, ExportFormat format, std::ostream& os) {
  PerfiSummary sum;
  for (const auto& [id, payload] : s.records) sum.add(decode_perfi(payload));

  if (format == ExportFormat::Csv) {
    os << "id,outcome\n";
    for (const auto& [id, payload] : s.records)
      os << id << "," << perfi_outcome_name(decode_perfi(payload).outcome)
         << "\n";
    return;
  }

  os << "{\n  \"format\": \"gpfstore-export-v1\",\n";
  json_meta(s, os);
  os << "  \"summary\": {\"injections\": " << sum.n
     << ", \"masked\": " << sum.by_outcome[0] << ", \"sdc\": " << sum.by_outcome[1]
     << ", \"due\": " << sum.due()
     << ", \"due_illegal_address\": " << sum.by_outcome[2]
     << ", \"due_invalid_register\": " << sum.by_outcome[3]
     << ", \"due_invalid_opcode\": " << sum.by_outcome[4]
     << ", \"due_hang\": " << sum.by_outcome[5]
     << ", \"due_other\": " << sum.by_outcome[6]
     << ", \"epr_sdc\": " << dbl(sum.ratio(sum.by_outcome[1]))
     << ", \"epr_due\": " << dbl(sum.ratio(sum.due())) << "},\n";
  os << "  \"records\": [\n";
  bool first = true;
  for (const auto& [id, payload] : s.records) {
    os << (first ? "" : ",\n") << "    {\"id\": " << id << ", \"outcome\": \""
       << perfi_outcome_name(decode_perfi(payload).outcome) << "\"}";
    first = false;
  }
  os << "\n  ]\n}\n";
}

}  // namespace

std::string target_label(const CampaignMeta& m) {
  switch (m.kind) {
    case CampaignKind::Gate: return gate_target_name(m.target);
    case CampaignKind::Rtl:
      return std::string(rtl_target_name(m.target)) + "/" +
             rtl_site_name(m.param0);
    case CampaignKind::Perfi:
      return m.app + "/" +
             std::string(errmodel::name_of(
                 static_cast<errmodel::ErrorModel>(m.model)));
  }
  return "?";
}

void export_store(const LoadedStore& s, ExportFormat format, std::ostream& os) {
  switch (s.meta.kind) {
    case CampaignKind::Gate: export_gate(s, format, os); return;
    case CampaignKind::Rtl: export_rtl(s, format, os); return;
    case CampaignKind::Perfi: export_perfi(s, format, os); return;
  }
  throw std::runtime_error("export: unknown campaign kind");
}

namespace {

/// Ids in [0, total) belonging to this shard's slice.
std::uint64_t owned_ids(const CampaignMeta& m) {
  return m.total / m.shard_count +
         (m.total % m.shard_count > m.shard_index ? 1 : 0);
}

}  // namespace

void print_status(const LoadedStore& s, std::ostream& os) {
  const CampaignMeta& m = s.meta;
  os << "campaign: " << campaign_kind_name(m.kind) << " " << target_name(m)
     << "\n";
  os << "seed:     " << m.seed << "\n";
  os << "shard:    " << m.shard_index << " of " << m.shard_count << "\n";
  const std::uint64_t owned = owned_ids(m);
  os << "progress: " << s.records.size() << " / " << owned
     << " owned ids retired (id space " << m.total << ")\n";
  if (s.torn_bytes_dropped)
    os << "recovery: dropped " << s.torn_bytes_dropped
       << " torn tail bytes on open\n";
  if (s.duplicate_records)
    os << "recovery: " << s.duplicate_records << " re-recorded ids (last wins)\n";

  switch (m.kind) {
    case CampaignKind::Gate: {
      GateSummary sum;
      for (const auto& [id, payload] : s.records) sum.add(decode_gate(payload));
      os << "classes:  uncontrollable=" << sum.by_class[0]
         << " hw-masked=" << sum.by_class[1] << " hw-hang=" << sum.by_class[2]
         << " sw-error=" << sum.by_class[3] << "\n";
      break;
    }
    case CampaignKind::Rtl: {
      RtlSummary sum;
      for (const auto& [id, payload] : s.records) sum.add(decode_rtl(payload));
      os << "outcomes: masked=" << sum.masked << " sdc-single=" << sum.sdc_single
         << " sdc-multiple=" << sum.sdc_multi << " due=" << sum.due << "\n";
      break;
    }
    case CampaignKind::Perfi: {
      PerfiSummary sum;
      for (const auto& [id, payload] : s.records) sum.add(decode_perfi(payload));
      os << "outcomes: masked=" << sum.by_outcome[0]
         << " sdc=" << sum.by_outcome[1] << " due=" << sum.due() << "\n";
      break;
    }
  }
}

void print_aggregate_status(
    const std::vector<std::pair<std::string, LoadedStore>>& stores,
    std::ostream& os) {
  // Group store indices into campaigns (same_campaign = everything but the
  // shard slice matches).
  std::vector<std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < stores.size(); ++i) {
    bool placed = false;
    for (auto& g : groups) {
      if (stores[g.front()].second.meta.same_campaign(stores[i].second.meta)) {
        g.push_back(i);
        placed = true;
        break;
      }
    }
    if (!placed) groups.push_back({i});
  }

  os << "== aggregate: " << stores.size() << " store(s), " << groups.size()
     << " campaign(s)\n";
  for (const auto& g : groups) {
    const CampaignMeta& m0 = stores[g.front()].second.meta;
    os << "campaign " << campaign_kind_name(m0.kind) << " " << target_name(m0)
       << " seed=" << m0.seed << " (id space " << m0.total << ")\n";
    std::uint64_t retired = 0;
    std::uint64_t owned_present = 0;
    for (const std::size_t i : g) {
      const CampaignMeta& m = stores[i].second.meta;
      const std::uint64_t owned = owned_ids(m);
      const std::uint64_t done = stores[i].second.records.size();
      retired += done;
      owned_present += owned;
      os << "  shard " << m.shard_index << "/" << m.shard_count << " "
         << stores[i].first << ": " << done << "/" << owned
         << (done == owned ? " (complete)" : "") << "\n";
    }
    const std::uint64_t missing = m0.total - owned_present;
    if (missing)
      os << "  (" << missing << " ids belong to shards not present here)\n";
    os << "  total: " << retired << "/" << m0.total << " retired, "
       << (m0.total - retired) << " remaining ("
       << fmt("%.1f%%",
              m0.total ? 100.0 * static_cast<double>(retired) /
                             static_cast<double>(m0.total)
                       : 100.0)
       << ")\n";
  }
}

}  // namespace gpf::store
