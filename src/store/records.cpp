#include "store/records.hpp"

#include <stdexcept>

#include "store/bytes.hpp"

namespace gpf::store {

const char* GateRecord::class_name() const {
  if (any_error()) return "sw-error";
  if (hang) return "hw-hang";
  return activated ? "hw-masked" : "uncontrollable";
}

std::vector<std::uint8_t> encode(const GateRecord& r) {
  std::vector<std::uint8_t> out;
  out.reserve(7 + 4 * errmodel::kNumErrorModels);
  ByteWriter w(out);
  w.u32(r.net);
  w.u8(r.stuck_high ? 1 : 0);
  w.u8(r.activated ? 1 : 0);
  w.u8(r.hang ? 1 : 0);
  for (const std::uint32_t c : r.error_counts) w.u32(c);
  return out;
}

GateRecord decode_gate(std::span<const std::uint8_t> payload) {
  ByteReader rd(payload);
  GateRecord r;
  r.net = rd.u32();
  r.stuck_high = rd.u8() != 0;
  r.activated = rd.u8() != 0;
  r.hang = rd.u8() != 0;
  for (auto& c : r.error_counts) c = rd.u32();
  if (!rd.done()) throw std::runtime_error("gate record: trailing bytes");
  return r;
}

const char* rtl_outcome_name(RtlOutcome o) {
  switch (o) {
    case RtlOutcome::Masked: return "Masked";
    case RtlOutcome::SdcSingle: return "SDC-single";
    case RtlOutcome::SdcMultiple: return "SDC-multiple";
    case RtlOutcome::Due: return "DUE";
  }
  return "?";
}

std::vector<std::uint8_t> encode(const RtlRecord& r) {
  std::vector<std::uint8_t> out;
  out.reserve(13 + 8 * r.rel_errors.size() + 4 * r.corrupted_idx.size());
  ByteWriter w(out);
  w.u8(static_cast<std::uint8_t>(r.outcome));
  w.u32(r.corrupted);
  w.f64(r.per_warp_corrupted);
  w.u32(static_cast<std::uint32_t>(r.rel_errors.size()));
  for (const double e : r.rel_errors) w.f64(e);
  w.u32(static_cast<std::uint32_t>(r.corrupted_idx.size()));
  for (const std::uint32_t i : r.corrupted_idx) w.u32(i);
  return out;
}

RtlRecord decode_rtl(std::span<const std::uint8_t> payload) {
  ByteReader rd(payload);
  RtlRecord r;
  r.outcome = static_cast<RtlOutcome>(rd.u8());
  r.corrupted = rd.u32();
  r.per_warp_corrupted = rd.f64();
  r.rel_errors.resize(rd.u32());
  for (auto& e : r.rel_errors) e = rd.f64();
  r.corrupted_idx.resize(rd.u32());
  for (auto& i : r.corrupted_idx) i = rd.u32();
  if (!rd.done()) throw std::runtime_error("rtl record: trailing bytes");
  return r;
}

const char* perfi_outcome_name(PerfiOutcome o) {
  switch (o) {
    case PerfiOutcome::Masked: return "Masked";
    case PerfiOutcome::Sdc: return "SDC";
    case PerfiOutcome::DueIllegalAddress: return "DUE-illegal-address";
    case PerfiOutcome::DueInvalidRegister: return "DUE-invalid-register";
    case PerfiOutcome::DueInvalidOpcode: return "DUE-invalid-opcode";
    case PerfiOutcome::DueHang: return "DUE-hang";
    case PerfiOutcome::DueOther: return "DUE-other";
  }
  return "?";
}

std::vector<std::uint8_t> encode(const PerfiRecord& r) {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  w.u8(static_cast<std::uint8_t>(r.outcome));
  return out;
}

PerfiRecord decode_perfi(std::span<const std::uint8_t> payload) {
  ByteReader rd(payload);
  PerfiRecord r;
  r.outcome = static_cast<PerfiOutcome>(rd.u8());
  if (!rd.done()) throw std::runtime_error("perfi record: trailing bytes");
  return r;
}

}  // namespace gpf::store
