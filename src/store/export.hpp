// Deterministic JSON/CSV exporters for campaign stores. Output is sorted by
// fault id and carries no timestamps or absolute paths, so two stores with
// identical results export byte-identically — the property the kill/resume
// and shard/merge acceptance tests assert.
#pragma once

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "store/result_log.hpp"

namespace gpf::store {

enum class ExportFormat : std::uint8_t { Json, Csv };

void export_store(const LoadedStore& s, ExportFormat format, std::ostream& os);

/// Human-readable target of a campaign ("decoder", "max/fu",
/// "mxm/IOC", ...) — the same label export/status print, shared with the
/// warehouse query layer.
std::string target_label(const CampaignMeta& m);

/// Human-readable one-store status block (meta, progress, summary counts).
void print_status(const LoadedStore& s, std::ostream& os);

/// Fleet/shard overview for `gpfctl status` over a whole store directory:
/// stores are grouped into campaigns by same_campaign(), each group lists
/// per-shard progress (retired / owned ids), and campaign totals report
/// retired vs remaining across all present shards. Stores whose shard is
/// missing from the directory count as 0 retired in the campaign total.
void print_aggregate_status(
    const std::vector<std::pair<std::string, LoadedStore>>& stores,
    std::ostream& os);

}  // namespace gpf::store
