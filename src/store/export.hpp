// Deterministic JSON/CSV exporters for campaign stores. Output is sorted by
// fault id and carries no timestamps or absolute paths, so two stores with
// identical results export byte-identically — the property the kill/resume
// and shard/merge acceptance tests assert.
#pragma once

#include <ostream>
#include <string>

#include "store/result_log.hpp"

namespace gpf::store {

enum class ExportFormat : std::uint8_t { Json, Csv };

void export_store(const LoadedStore& s, ExportFormat format, std::ostream& os);

/// Human-readable one-store status block (meta, progress, summary counts).
void print_status(const LoadedStore& s, std::ostream& os);

}  // namespace gpf::store
