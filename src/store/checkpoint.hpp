// CampaignCheckpoint: the campaign-facing durability API on top of the
// append-only ResultLog. Drivers ask which fault ids are already classified
// (skip-on-resume), record each result as it retires (thread-safe), and poll
// a cooperative stop flag that implements `gpfctl run --limit` (pause after N
// fresh records — the deterministic stand-in for a mid-campaign kill).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "store/result_log.hpp"

namespace gpf::store {

class CampaignCheckpoint {
 public:
  /// Opens (or creates) the store at `path` for campaign `meta`; loads the
  /// already-retired records so drivers can skip them.
  CampaignCheckpoint(const std::string& path, const CampaignMeta& meta);

  const CampaignMeta& meta() const { return log_.meta(); }
  const std::string& path() const { return log_.path(); }

  /// Records present when the store was opened (id -> payload).
  const std::map<std::uint64_t, std::vector<std::uint8_t>>& done() const {
    return done_;
  }
  bool is_done(std::uint64_t id) const { return done_.count(id) != 0; }
  /// Already-retired + newly recorded this run.
  std::size_t done_count() const;

  /// Durably appends one retired result. Thread-safe. Returns false once the
  /// record limit has been reached (the result is still recorded; callers
  /// should stop scheduling new work).
  bool record(std::uint64_t id, std::span<const std::uint8_t> payload);

  /// Pushes everything recorded so far onto stable storage (see
  /// ResultLog::sync). Thread-safe. Campaign drivers call this at
  /// checkpoint boundaries (unit retire, lease retire, campaign end); the
  /// destructor also syncs, so a graceful exit is always durable.
  void sync();

  /// Stop scheduling new work after `n` fresh records this run (0 = no
  /// limit). Used to pause a campaign deterministically.
  void set_record_limit(std::size_t n) { record_limit_ = n; }
  bool should_stop() const;
  /// True when the campaign paused on the record limit (vs running to
  /// completion of its shard slice).
  bool paused() const { return should_stop(); }

  std::size_t torn_bytes_dropped() const { return log_.torn_bytes_dropped(); }

 private:
  ResultLog log_;
  std::map<std::uint64_t, std::vector<std::uint8_t>> done_;
  mutable std::mutex mu_;
  std::size_t fresh_records_ = 0;
  std::size_t record_limit_ = 0;
};

}  // namespace gpf::store
