#include "store/merge.hpp"

#include <stdexcept>

namespace gpf::store {

LoadedStore merge_stores(const std::vector<LoadedStore>& inputs, MergeStats* stats) {
  if (inputs.empty()) throw std::runtime_error("merge: no input stores");
  MergeStats st;
  st.inputs = inputs.size();

  LoadedStore out;
  out.meta = inputs.front().meta;
  out.meta.shard_index = 0;
  out.meta.shard_count = 1;

  bool engine_unanimous = true;
  for (const LoadedStore& in : inputs) {
    if (!in.meta.same_campaign(out.meta))
      throw std::runtime_error(
          "merge: inputs are not shards of the same campaign "
          "(kind/target/seed/size/params differ)");
    if (in.meta.engine != out.meta.engine) engine_unanimous = false;
    for (const auto& [id, payload] : in.records) {
      if (id >= out.meta.total)
        throw std::runtime_error("merge: record id " + std::to_string(id) +
                                 " outside campaign id space");
      auto [it, inserted] = out.records.try_emplace(id, payload);
      if (!inserted) {
        if (it->second != payload)
          throw std::runtime_error(
              "merge: conflicting results for fault id " + std::to_string(id) +
              " — overlapping shards disagree, refusing to merge");
        ++st.duplicate_identical;
      }
    }
  }
  if (!engine_unanimous) out.meta.engine = 0xFF;
  st.records = out.records.size();
  if (stats) *stats = st;
  return out;
}

MergeStats merge_store_files(const std::vector<std::string>& paths,
                             const std::string& out_path) {
  std::vector<LoadedStore> inputs;
  inputs.reserve(paths.size());
  for (const std::string& p : paths) inputs.push_back(load_store(p));

  MergeStats st;
  const LoadedStore merged = merge_stores(inputs, &st);
  create_parent_dirs(out_path);
  ResultLog out(out_path, merged.meta);
  if (!out.recovered().empty())
    throw std::runtime_error("merge: output store " + out_path +
                             " already contains records");
  for (const auto& [id, payload] : merged.records) out.append(id, payload);
  return st;
}

}  // namespace gpf::store
