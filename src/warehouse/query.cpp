#include "warehouse/query.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "store/export.hpp"
#include "store/records.hpp"

namespace gpf::warehouse {

namespace {

/// Same floating-point rendering as store export (%.17g round-trips doubles
/// exactly), so rollup-served ratios diff clean against export summaries.
std::string dbl(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string model_name(unsigned m) {
  return std::string(errmodel::name_of(static_cast<errmodel::ErrorModel>(m)));
}

/// Ids in [0, total) owned by one source's shard slice.
std::uint64_t owned_ids(const store::CampaignMeta& m, const SourceTally& s) {
  return m.total / s.shard_count +
         (m.total % s.shard_count > s.shard_index ? 1 : 0);
}

void json_campaign(const Footer& f, Metric metric, std::ostream& os) {
  const store::CampaignMeta& m = f.meta;
  os << "{\n  \"format\": \"gpfw-query-v1\",\n  \"metric\": \""
     << metric_name(metric) << "\",\n";
  os << "  \"campaign\": {\"kind\": \"" << store::campaign_kind_name(m.kind)
     << "\", \"target\": \"" << store::target_label(m)
     << "\", \"seed\": " << m.seed << ", \"total\": " << m.total
     << ", \"shard_index\": " << m.shard_index
     << ", \"shard_count\": " << m.shard_count << "},\n";
  os << "  \"rows\": " << f.rows << ",\n";
}

// --- epr -------------------------------------------------------------------

/// The export-summary twin. Field names and order match export_gate /
/// export_rtl / export_perfi exactly.
void epr_summary_json(const Rollups& r, std::ostream& os) {
  switch (r.kind) {
    case store::CampaignKind::Gate: {
      os << "{\"uncontrollable\": " << r.gate_classes[0]
         << ", \"hw_masked\": " << r.gate_classes[1]
         << ", \"hw_hang\": " << r.gate_classes[2]
         << ", \"sw_error\": " << r.gate_classes[3] << ",\n    \"models\": {";
      for (unsigned m = 0; m < errmodel::kNumErrorModels; ++m) {
        if (m) os << ", ";
        os << "\"" << model_name(m) << "\": {\"faults\": " << r.model_faults[m]
           << ", \"occurrences\": " << r.model_occurrences[m] << "}";
      }
      os << "}}";
      break;
    }
    case store::CampaignKind::Rtl: {
      const std::uint64_t sdc = r.rtl_outcomes[1] + r.rtl_outcomes[2];
      os << "{\"injections\": " << r.rows << ", \"masked\": " << r.rtl_outcomes[0]
         << ", \"sdc_single\": " << r.rtl_outcomes[1]
         << ", \"sdc_multiple\": " << r.rtl_outcomes[2]
         << ", \"due\": " << r.rtl_outcomes[3]
         << ", \"avf_sdc\": " << dbl(r.ratio(sdc))
         << ", \"avf_due\": " << dbl(r.ratio(r.rtl_outcomes[3]))
         << ", \"corrupted_total\": " << r.corrupted_total << "}";
      break;
    }
    case store::CampaignKind::Perfi: {
      os << "{\"injections\": " << r.rows
         << ", \"masked\": " << r.perfi_outcomes[0]
         << ", \"sdc\": " << r.perfi_outcomes[1]
         << ", \"due\": " << r.perfi_due()
         << ", \"due_illegal_address\": " << r.perfi_outcomes[2]
         << ", \"due_invalid_register\": " << r.perfi_outcomes[3]
         << ", \"due_invalid_opcode\": " << r.perfi_outcomes[4]
         << ", \"due_hang\": " << r.perfi_outcomes[5]
         << ", \"due_other\": " << r.perfi_outcomes[6]
         << ", \"epr_sdc\": " << dbl(r.ratio(r.perfi_outcomes[1]))
         << ", \"epr_due\": " << dbl(r.ratio(r.perfi_due())) << "}";
      break;
    }
  }
}

void render_epr(const Footer& f, QueryFormat format, std::ostream& os) {
  const Rollups& r = f.rollups;
  switch (format) {
    case QueryFormat::Json:
      json_campaign(f, Metric::Epr, os);
      os << "  \"summary\": ";
      epr_summary_json(r, os);
      if (r.kind == store::CampaignKind::Gate) {
        os << ",\n  \"fapr\": {";
        for (unsigned m = 0; m < errmodel::kNumErrorModels; ++m)
          os << (m ? ", " : "") << "\"" << model_name(m)
             << "\": " << dbl(r.ratio(r.model_faults[m]));
        os << "}";
      }
      os << "\n}\n";
      return;
    case QueryFormat::Csv:
      os << "key,value\n";
      switch (r.kind) {
        case store::CampaignKind::Gate:
          for (std::size_t c = 0; c < kGateClasses; ++c)
            os << gate_class_name(c) << "," << r.gate_classes[c] << "\n";
          for (unsigned m = 0; m < errmodel::kNumErrorModels; ++m)
            os << "faults_" << model_name(m) << "," << r.model_faults[m]
               << "\noccurrences_" << model_name(m) << ","
               << r.model_occurrences[m] << "\n";
          break;
        case store::CampaignKind::Rtl:
          os << "injections," << r.rows << "\nmasked," << r.rtl_outcomes[0]
             << "\nsdc_single," << r.rtl_outcomes[1] << "\nsdc_multiple,"
             << r.rtl_outcomes[2] << "\ndue," << r.rtl_outcomes[3]
             << "\navf_sdc,"
             << dbl(r.ratio(r.rtl_outcomes[1] + r.rtl_outcomes[2]))
             << "\navf_due," << dbl(r.ratio(r.rtl_outcomes[3])) << "\n";
          break;
        case store::CampaignKind::Perfi:
          os << "injections," << r.rows << "\nmasked," << r.perfi_outcomes[0]
             << "\nsdc," << r.perfi_outcomes[1] << "\ndue," << r.perfi_due()
             << "\nepr_sdc," << dbl(r.ratio(r.perfi_outcomes[1]))
             << "\nepr_due," << dbl(r.ratio(r.perfi_due())) << "\n";
          break;
      }
      return;
    case QueryFormat::Table:
      os << "campaign: " << store::campaign_kind_name(r.kind) << " "
         << store::target_label(f.meta) << "  rows: " << f.rows << "\n";
      switch (r.kind) {
        case store::CampaignKind::Gate:
          for (std::size_t c = 0; c < kGateClasses; ++c)
            os << "  " << gate_class_name(c) << ": " << r.gate_classes[c]
               << "\n";
          os << "  model            faults  occurrences  fapr\n";
          for (unsigned m = 0; m < errmodel::kNumErrorModels; ++m) {
            char line[128];
            std::snprintf(line, sizeof(line), "  %-16s %6llu  %11llu  %.6f\n",
                          model_name(m).c_str(),
                          static_cast<unsigned long long>(r.model_faults[m]),
                          static_cast<unsigned long long>(
                              r.model_occurrences[m]),
                          r.ratio(r.model_faults[m]));
            os << line;
          }
          break;
        case store::CampaignKind::Rtl:
          os << "  masked: " << r.rtl_outcomes[0]
             << "  sdc-single: " << r.rtl_outcomes[1]
             << "  sdc-multiple: " << r.rtl_outcomes[2]
             << "  due: " << r.rtl_outcomes[3] << "\n  avf_sdc: "
             << dbl(r.ratio(r.rtl_outcomes[1] + r.rtl_outcomes[2]))
             << "  avf_due: " << dbl(r.ratio(r.rtl_outcomes[3])) << "\n";
          break;
        case store::CampaignKind::Perfi:
          os << "  masked: " << r.perfi_outcomes[0]
             << "  sdc: " << r.perfi_outcomes[1] << "  due: " << r.perfi_due()
             << "\n  epr_sdc: " << dbl(r.ratio(r.perfi_outcomes[1]))
             << "  epr_due: " << dbl(r.ratio(r.perfi_due())) << "\n";
          break;
      }
      return;
  }
}

// --- classes ---------------------------------------------------------------

void render_classes(const Footer& f, QueryFormat format, std::ostream& os) {
  const Rollups& r = f.rollups;
  if (r.kind != store::CampaignKind::Gate) {
    // Non-gate campaigns have outcomes, not stuck-at classes: serve the
    // outcome tallies under the same metric name.
    render_epr(f, format, os);
    return;
  }
  switch (format) {
    case QueryFormat::Json: {
      json_campaign(f, Metric::Classes, os);
      os << "  \"classes\": {";
      for (std::size_t c = 0; c < kGateClasses; ++c)
        os << (c ? ", " : "") << "\"" << gate_class_name(c)
           << "\": " << r.gate_classes[c];
      os << "},\n  \"nets\": [\n";
      for (std::size_t i = 0; i < r.nets.size(); ++i) {
        const NetTally& t = r.nets[i];
        os << (i ? ",\n" : "") << "    {\"net\": " << t.net << ", \"sa0\": [";
        for (std::size_t c = 0; c < kGateClasses; ++c)
          os << (c ? "," : "") << t.sa0[c];
        os << "], \"sa1\": [";
        for (std::size_t c = 0; c < kGateClasses; ++c)
          os << (c ? "," : "") << t.sa1[c];
        os << "]}";
      }
      os << "\n  ]\n}\n";
      return;
    }
    case QueryFormat::Csv: {
      os << "net";
      for (const char* sa : {"sa0", "sa1"})
        for (std::size_t c = 0; c < kGateClasses; ++c)
          os << "," << sa << "_" << gate_class_name(c);
      os << "\n";
      for (const NetTally& t : r.nets) {
        os << t.net;
        for (std::size_t c = 0; c < kGateClasses; ++c) os << "," << t.sa0[c];
        for (std::size_t c = 0; c < kGateClasses; ++c) os << "," << t.sa1[c];
        os << "\n";
      }
      return;
    }
    case QueryFormat::Table: {
      os << "classes: ";
      for (std::size_t c = 0; c < kGateClasses; ++c)
        os << (c ? "  " : "") << gate_class_name(c) << "=" << r.gate_classes[c];
      os << "\nnets: " << r.nets.size() << " with retired faults\n";
      os << "  net        sa0(unc/mask/hang/err)   sa1(unc/mask/hang/err)\n";
      for (const NetTally& t : r.nets) {
        char line[160];
        std::snprintf(line, sizeof(line),
                      "  %-9u  %5u %5u %5u %5u    %5u %5u %5u %5u\n", t.net,
                      t.sa0[0], t.sa0[1], t.sa0[2], t.sa0[3], t.sa1[0],
                      t.sa1[1], t.sa1[2], t.sa1[3]);
        os << line;
      }
      return;
    }
  }
}

// --- syndromes -------------------------------------------------------------

void render_syndromes(const Footer& f, QueryFormat format, std::ostream& os) {
  const Rollups& r = f.rollups;
  switch (format) {
    case QueryFormat::Json: {
      json_campaign(f, Metric::Syndromes, os);
      os << "  \"syndrome_sum\": " << r.syndrome_sum << ",\n  \"buckets\": [";
      for (std::size_t b = 0; b < kSyndromeBuckets; ++b)
        os << (b ? "," : "") << r.syndrome[b];
      os << "]\n}\n";
      return;
    }
    case QueryFormat::Csv:
      os << "bucket_lo,bucket_hi,count\n";
      for (std::size_t b = 0; b < kSyndromeBuckets; ++b) {
        if (!r.syndrome[b]) continue;
        const std::uint64_t lo = b ? syndrome_bucket_limit(b - 1) : 0;
        os << lo << "," << syndrome_bucket_limit(b) << "," << r.syndrome[b]
           << "\n";
      }
      return;
    case QueryFormat::Table: {
      os << "syndrome magnitudes (" << f.rows
         << " rows, sum=" << r.syndrome_sum << ")\n";
      std::uint64_t peak = 1;
      for (const std::uint64_t c : r.syndrome) peak = std::max(peak, c);
      for (std::size_t b = 0; b < kSyndromeBuckets; ++b) {
        if (!r.syndrome[b]) continue;
        const std::uint64_t lo = b ? syndrome_bucket_limit(b - 1) : 0;
        char head[64];
        std::snprintf(head, sizeof(head), "  [%10llu, %10llu)  %8llu  ",
                      static_cast<unsigned long long>(lo),
                      static_cast<unsigned long long>(syndrome_bucket_limit(b)),
                      static_cast<unsigned long long>(r.syndrome[b]));
        os << head;
        const std::size_t bars =
            static_cast<std::size_t>(40 * r.syndrome[b] / peak);
        for (std::size_t i = 0; i < bars; ++i) os << '#';
        os << "\n";
      }
      return;
    }
  }
}

// --- workers ---------------------------------------------------------------

void render_workers(const Footer& f, QueryFormat format, std::ostream& os) {
  switch (format) {
    case QueryFormat::Json: {
      json_campaign(f, Metric::Workers, os);
      os << "  \"sources\": [\n";
      for (std::size_t i = 0; i < f.sources.size(); ++i) {
        const SourceTally& s = f.sources[i];
        const std::uint64_t owned = owned_ids(f.meta, s);
        os << (i ? ",\n" : "") << "    {\"shard_index\": " << s.shard_index
           << ", \"shard_count\": " << s.shard_count << ", \"rows\": " << s.rows
           << ", \"owned\": " << owned
           << ", \"coverage\": " << dbl(owned ? static_cast<double>(s.rows) /
                                                    static_cast<double>(owned)
                                              : 0.0)
           << ", \"scanned_records\": " << s.scanned_records
           << ", \"watermark\": " << s.watermark << "}";
      }
      os << "\n  ]\n}\n";
      return;
    }
    case QueryFormat::Csv:
      os << "shard_index,shard_count,rows,owned,scanned_records,watermark\n";
      for (const SourceTally& s : f.sources)
        os << s.shard_index << "," << s.shard_count << "," << s.rows << ","
           << owned_ids(f.meta, s) << "," << s.scanned_records << ","
           << s.watermark << "\n";
      return;
    case QueryFormat::Table:
      os << "sources: " << f.sources.size() << "  rows: " << f.rows << " / "
         << f.meta.total << "\n";
      os << "  shard   rows/owned        retired  scanned  watermark\n";
      for (const SourceTally& s : f.sources) {
        const std::uint64_t owned = owned_ids(f.meta, s);
        char line[160];
        std::snprintf(line, sizeof(line),
                      "  %2u/%-2u  %8llu/%-8llu  %5.1f%%  %7llu  %9llu\n",
                      s.shard_index, s.shard_count,
                      static_cast<unsigned long long>(s.rows),
                      static_cast<unsigned long long>(owned),
                      owned ? 100.0 * static_cast<double>(s.rows) /
                                  static_cast<double>(owned)
                            : 0.0,
                      static_cast<unsigned long long>(s.scanned_records),
                      static_cast<unsigned long long>(s.watermark));
        os << line;
      }
      return;
  }
}

}  // namespace

const char* metric_name(Metric m) {
  switch (m) {
    case Metric::Epr: return "epr";
    case Metric::Classes: return "classes";
    case Metric::Syndromes: return "syndromes";
    case Metric::Workers: return "workers";
  }
  return "?";
}

bool parse_metric(const std::string& s, Metric& out) {
  if (s == "epr") out = Metric::Epr;
  else if (s == "classes") out = Metric::Classes;
  else if (s == "syndromes") out = Metric::Syndromes;
  else if (s == "workers") out = Metric::Workers;
  else return false;
  return true;
}

bool parse_format(const std::string& s, QueryFormat& out) {
  if (s == "json") out = QueryFormat::Json;
  else if (s == "csv") out = QueryFormat::Csv;
  else if (s == "table") out = QueryFormat::Table;
  else return false;
  return true;
}

void render_metric(const Footer& f, Metric metric, QueryFormat format,
                   std::ostream& os) {
  switch (metric) {
    case Metric::Epr: render_epr(f, format, os); return;
    case Metric::Classes: render_classes(f, format, os); return;
    case Metric::Syndromes: render_syndromes(f, format, os); return;
    case Metric::Workers: render_workers(f, format, os); return;
  }
}

std::string render_metric(const Footer& f, Metric metric, QueryFormat format) {
  std::ostringstream os;
  render_metric(f, metric, format, os);
  return os.str();
}

}  // namespace gpf::warehouse
