// Rollup-backed query rendering: the shared answer path behind
// `gpfctl query` and gpfd's GET /v1/query. Everything here is computed from
// a segment Footer alone — O(rollup size), never O(records) — and the JSON
// "summary" object is field-for-field identical to the summary block of
// `gpfctl export`, so CI can diff a rollup-served answer against a
// full-log-scan export byte-for-byte (numbers use the same %.17g rendering).
#pragma once

#include <ostream>
#include <string>

#include "warehouse/segment.hpp"

namespace gpf::warehouse {

enum class Metric : std::uint8_t {
  Epr,       ///< outcome/error-rate summary (kind-specific, matches export)
  Classes,   ///< gate: per-net stuck-at-0/1 class tallies; others: outcomes
  Syndromes, ///< error-magnitude histogram
  Workers,   ///< per-source (shard) rows, coverage and scan watermarks
};
enum class QueryFormat : std::uint8_t { Json, Csv, Table };

const char* metric_name(Metric m);
/// Parses "epr|classes|syndromes|workers" / "json|csv|table"; returns false
/// (leaving `out` untouched) on anything else.
bool parse_metric(const std::string& s, Metric& out);
bool parse_format(const std::string& s, QueryFormat& out);

/// Renders one metric of one segment footer. Deterministic: no timestamps,
/// no paths, map-ordered rows.
void render_metric(const Footer& f, Metric metric, QueryFormat format,
                   std::ostream& os);

/// render_metric to a string (the HTTP handler's form).
std::string render_metric(const Footer& f, Metric metric, QueryFormat format);

}  // namespace gpf::warehouse
