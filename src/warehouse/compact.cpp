#include "warehouse/compact.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"

namespace gpf::warehouse {

std::string warehouse_path_for(const std::string& store_path) {
  const std::string suffix = ".gpfs";
  if (store_path.size() > suffix.size() &&
      store_path.compare(store_path.size() - suffix.size(), suffix.size(),
                         suffix) == 0)
    return store_path.substr(0, store_path.size() - suffix.size()) + ".gpfw";
  return store_path + ".gpfw";
}

Compactor::Compactor(std::vector<std::string> store_paths,
                     std::string segment_path)
    : paths_(std::move(store_paths)), segment_path_(std::move(segment_path)) {
  if (paths_.empty())
    throw std::runtime_error("warehouse: no source stores to compact");
  metas_.reserve(paths_.size());
  for (const std::string& p : paths_)
    metas_.push_back(store::read_store_meta(p));
  for (std::size_t i = 1; i < metas_.size(); ++i) {
    if (!metas_[i].same_campaign(metas_[0]))
      throw std::runtime_error(
          "warehouse: " + paths_[i] + " and " + paths_[0] +
          " are not shards of the same campaign");
    for (std::size_t j = 0; j < i; ++j)
      if (metas_[i].shard_index == metas_[j].shard_index &&
          metas_[i].shard_count == metas_[j].shard_count)
        throw std::runtime_error("warehouse: " + paths_[i] + " and " +
                                 paths_[j] + " cover the same shard slice");
  }

  // The merged view: a single store keeps its own meta (so a lone shard's
  // segment still says which slice it is); a shard group collapses to the
  // whole id space, engine kept only when unanimous — same rule as merge.
  meta_ = metas_.front();
  if (paths_.size() > 1) {
    meta_.shard_index = 0;
    meta_.shard_count = 1;
    for (const store::CampaignMeta& m : metas_)
      if (m.engine != meta_.engine) meta_.engine = 0xFF;
  }

  tallies_.resize(paths_.size());
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    tallies_[i].shard_index = metas_[i].shard_index;
    tallies_[i].shard_count = metas_[i].shard_count;
  }
}

void Compactor::full_rebuild_locked() {
  records_.clear();
  for (std::size_t i = 0; i < tallies_.size(); ++i) {
    tallies_[i] = SourceTally{metas_[i].shard_index, metas_[i].shard_count,
                              0, 0, 0};
  }
  segment_valid_ = false;
}

CompactStats Compactor::refresh() {
  static obs::Counter& refreshes = obs::counter("warehouse.refreshes");
  static obs::Counter& rebuilds = obs::counter("warehouse.full_rebuilds");
  static obs::Counter& fresh_ctr = obs::counter("warehouse.fresh_records");
  static obs::Histogram& latency = obs::histogram("warehouse.refresh_us");
  obs::ScopedTimerUs timer(latency);

  std::lock_guard<std::mutex> lock(mu_);
  CompactStats st;
  st.sources = paths_.size();

  if (!seeded_) {
    seeded_ = true;
    // Seed from an existing segment when it is intact and was built from
    // exactly this source set; anything else is a full rebuild.
    try {
      Segment seg = read_segment(segment_path_);
      bool match = seg.meta == meta_ && seg.sources.size() == tallies_.size();
      if (match) {
        std::vector<SourceTally> sorted = tallies_;
        std::sort(sorted.begin(), sorted.end(),
                  [](const SourceTally& a, const SourceTally& b) {
                    return std::pair(a.shard_count, a.shard_index) <
                           std::pair(b.shard_count, b.shard_index);
                  });
        for (std::size_t i = 0; i < sorted.size(); ++i)
          if (seg.sources[i].shard_index != sorted[i].shard_index ||
              seg.sources[i].shard_count != sorted[i].shard_count)
            match = false;
      }
      if (match) {
        records_ = std::move(seg.records);
        for (SourceTally& t : tallies_)
          for (const SourceTally& s : seg.sources)
            if (s.shard_index == t.shard_index &&
                s.shard_count == t.shard_count)
              t = s;
        rollups_ = seg.rollups;
        segment_valid_ = true;
        st.incremental = true;
      }
    } catch (const SegmentError&) {
      // Missing, torn, or foreign segment: start from the logs.
    }
  } else {
    st.incremental = true;
  }

  for (int attempt = 0; attempt < 2; ++attempt) {
    try {
      for (std::size_t i = 0; i < paths_.size(); ++i) {
        SourceTally& t = tallies_[i];
        const std::size_t from =
            std::max<std::size_t>(t.watermark, store::ResultLog::kHeaderSize);
        const store::ScannedTail tail = store::scan_records(paths_[i], from);
        for (const store::Record& r : tail.records)
          records_[r.id] = r.payload;  // last wins, same as load_store
        st.fresh_records += tail.records.size();
        t.scanned_records += tail.records.size();
        t.watermark = tail.end_offset;
      }
      break;
    } catch (const std::exception&) {
      // A log shrank below our watermark (torn-tail recovery rewrote it) or
      // became unreadable mid-scan: drop everything and rescan from zero.
      if (attempt == 1) throw;
      full_rebuild_locked();
      st = CompactStats{};
      st.sources = paths_.size();
      rebuilds.add(1);
    }
  }

  // Attribute each deduped row to the first source (in path order) whose
  // shard slice owns its id.
  for (SourceTally& t : tallies_) t.rows = 0;
  for (const auto& [id, payload] : records_) {
    for (std::size_t i = 0; i < tallies_.size(); ++i) {
      if (metas_[i].owns(id)) {
        ++tallies_[i].rows;
        break;
      }
    }
  }
  st.rows = records_.size();

  if (st.fresh_records > 0 || !segment_valid_) {
    std::vector<SourceTally> sorted = tallies_;
    std::sort(sorted.begin(), sorted.end(),
              [](const SourceTally& a, const SourceTally& b) {
                return std::pair(a.shard_count, a.shard_index) <
                       std::pair(b.shard_count, b.shard_index);
              });
    rollups_ = write_segment(segment_path_, meta_, records_, sorted);
    segment_valid_ = true;
    st.wrote = true;
  }

  refreshes.add(1);
  fresh_ctr.add(st.fresh_records);
  return st;
}

Footer Compactor::footer() const {
  std::lock_guard<std::mutex> lock(mu_);
  Footer f;
  f.meta = meta_;
  f.rows = records_.size();
  f.rollups = rollups_;
  f.sources = tallies_;
  std::sort(f.sources.begin(), f.sources.end(),
            [](const SourceTally& a, const SourceTally& b) {
              return std::pair(a.shard_count, a.shard_index) <
                     std::pair(b.shard_count, b.shard_index);
            });
  return f;
}

CompactStats compact_stores(const std::vector<std::string>& store_paths,
                            const std::string& out_path) {
  Compactor c(store_paths, out_path);
  return c.refresh();
}

}  // namespace gpf::warehouse
