#include "warehouse/segment.hpp"

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/metrics.hpp"
#include "store/bytes.hpp"
#include "store/records.hpp"

namespace gpf::warehouse {

namespace {

// Column ids, per record kind. Kept disjoint from the per-model gate count
// columns, which occupy [kGateCountBase, kGateCountBase + kNumErrorModels).
enum : std::uint32_t {
  kColId = 0,        // u64 fault/injection id (all kinds)
  kColNet = 1,       // gate: u32 net
  kColFlags = 2,     // gate: u8 bit0 stuck_high, bit1 activated, bit2 hang
  kColOutcome = 3,   // rtl/perfi: u8 outcome
  kColCorrupted = 4, // rtl: u32 corrupted outputs
  kColPerWarp = 5,   // rtl: f64 per-warp corrupted
  kColRelLen = 6,    // rtl: u32 rel_errors length per row
  kColRelVal = 7,    // rtl: f64 rel_errors values, flattened
  kColIdxLen = 8,    // rtl: u32 corrupted_idx length per row
  kColIdxVal = 9,    // rtl: u32 corrupted_idx values, flattened
  kGateCountBase = 16,
};

struct ColumnBlock {
  std::uint32_t id = 0;
  std::uint64_t rows = 0;
  std::vector<std::uint8_t> data;
};

void append_block(std::vector<std::uint8_t>& out, const ColumnBlock& b) {
  std::vector<std::uint8_t> head;
  store::ByteWriter w(head);
  w.u32(b.id);
  w.u64(b.rows);
  w.u64(b.data.size());
  const std::uint32_t crc =
      store::crc32(b.data, store::crc32(head));
  out.insert(out.end(), head.begin(), head.end());
  out.insert(out.end(), b.data.begin(), b.data.end());
  store::ByteWriter tail(out);
  tail.u32(crc);
}

/// Splits the records of one kind into typed column blocks.
std::vector<ColumnBlock> build_columns(
    store::CampaignKind kind,
    const std::map<std::uint64_t, std::vector<std::uint8_t>>& records) {
  std::vector<ColumnBlock> cols;
  const auto col = [&cols](std::uint32_t id) -> ColumnBlock& {
    for (auto& c : cols)
      if (c.id == id) return c;
    cols.push_back({id, 0, {}});
    return cols.back();
  };
  const auto push = [&col](std::uint32_t id, auto write_field) {
    ColumnBlock& c = col(id);
    store::ByteWriter w(c.data);
    write_field(w);
    ++c.rows;
  };

  for (const auto& [id, payload] : records) {
    push(kColId, [id = id](store::ByteWriter& w) { w.u64(id); });
    switch (kind) {
      case store::CampaignKind::Gate: {
        const store::GateRecord r = store::decode_gate(payload);
        push(kColNet, [&r](store::ByteWriter& w) { w.u32(r.net); });
        push(kColFlags, [&r](store::ByteWriter& w) {
          w.u8(static_cast<std::uint8_t>((r.stuck_high ? 1 : 0) |
                                         (r.activated ? 2 : 0) |
                                         (r.hang ? 4 : 0)));
        });
        for (unsigned m = 0; m < errmodel::kNumErrorModels; ++m)
          push(kGateCountBase + m,
               [&r, m](store::ByteWriter& w) { w.u32(r.error_counts[m]); });
        break;
      }
      case store::CampaignKind::Rtl: {
        const store::RtlRecord r = store::decode_rtl(payload);
        push(kColOutcome, [&r](store::ByteWriter& w) {
          w.u8(static_cast<std::uint8_t>(r.outcome));
        });
        push(kColCorrupted, [&r](store::ByteWriter& w) { w.u32(r.corrupted); });
        push(kColPerWarp,
             [&r](store::ByteWriter& w) { w.f64(r.per_warp_corrupted); });
        push(kColRelLen, [&r](store::ByteWriter& w) {
          w.u32(static_cast<std::uint32_t>(r.rel_errors.size()));
        });
        for (const double e : r.rel_errors)
          push(kColRelVal, [e](store::ByteWriter& w) { w.f64(e); });
        push(kColIdxLen, [&r](store::ByteWriter& w) {
          w.u32(static_cast<std::uint32_t>(r.corrupted_idx.size()));
        });
        for (const std::uint32_t i : r.corrupted_idx)
          push(kColIdxVal, [i](store::ByteWriter& w) { w.u32(i); });
        break;
      }
      case store::CampaignKind::Perfi: {
        const store::PerfiRecord r = store::decode_perfi(payload);
        push(kColOutcome, [&r](store::ByteWriter& w) {
          w.u8(static_cast<std::uint8_t>(r.outcome));
        });
        break;
      }
    }
  }

  // Guarantee a stable block order (and presence) even for an empty store:
  // list the kind's full column set, empty blocks included.
  std::vector<std::uint32_t> want{kColId};
  switch (kind) {
    case store::CampaignKind::Gate:
      want.push_back(kColNet);
      want.push_back(kColFlags);
      for (unsigned m = 0; m < errmodel::kNumErrorModels; ++m)
        want.push_back(kGateCountBase + m);
      break;
    case store::CampaignKind::Rtl:
      for (const std::uint32_t c : {kColOutcome, kColCorrupted, kColPerWarp,
                                    kColRelLen, kColRelVal, kColIdxLen,
                                    kColIdxVal})
        want.push_back(c);
      break;
    case store::CampaignKind::Perfi:
      want.push_back(kColOutcome);
      break;
  }
  std::vector<ColumnBlock> ordered;
  ordered.reserve(want.size());
  for (const std::uint32_t id : want) ordered.push_back(col(id));
  return ordered;
}

void encode_footer(std::vector<std::uint8_t>& out,
                   const store::CampaignMeta& meta, const Rollups& rollups,
                   const std::vector<SourceTally>& sources) {
  std::vector<std::uint8_t> body;
  {
    const auto meta_bytes = store::ResultLog::encode_meta(meta);
    body.insert(body.end(), meta_bytes.begin(), meta_bytes.end());
  }
  store::ByteWriter w(body);
  w.u64(rollups.rows);
  const auto roll = encode(rollups);
  body.insert(body.end(), roll.begin(), roll.end());
  store::ByteWriter w2(body);
  w2.u32(static_cast<std::uint32_t>(sources.size()));
  for (const SourceTally& s : sources) {
    w2.u32(s.shard_index);
    w2.u32(s.shard_count);
    w2.u64(s.scanned_records);
    w2.u64(s.watermark);
    w2.u64(s.rows);
  }
  const std::uint32_t crc = store::crc32(body);
  out.insert(out.end(), body.begin(), body.end());
  store::ByteWriter tail(out);
  tail.u32(crc);
}

Footer decode_footer(std::span<const std::uint8_t> block) {
  if (block.size() < 4) throw SegmentError("warehouse: footer too short");
  const std::span<const std::uint8_t> body = block.first(block.size() - 4);
  store::ByteReader crc_rd(block.subspan(block.size() - 4));
  if (store::crc32(body) != crc_rd.u32())
    throw SegmentError("warehouse: footer CRC mismatch");
  Footer f;
  try {
    if (body.size() < store::ResultLog::kHeaderSize)
      throw SegmentError("warehouse: footer shorter than meta");
    f.meta = store::ResultLog::decode_meta(
        body.first(store::ResultLog::kHeaderSize));
    store::ByteReader rd(body.subspan(store::ResultLog::kHeaderSize));
    f.rows = rd.u64();
    f.rollups = decode_rollups(rd);
    f.sources.resize(rd.u32());
    for (SourceTally& s : f.sources) {
      s.shard_index = rd.u32();
      s.shard_count = rd.u32();
      s.scanned_records = rd.u64();
      s.watermark = rd.u64();
      s.rows = rd.u64();
    }
    if (!rd.done()) throw SegmentError("warehouse: trailing footer bytes");
  } catch (const SegmentError&) {
    throw;
  } catch (const std::exception& e) {
    throw SegmentError(std::string("warehouse: malformed footer: ") + e.what());
  }
  return f;
}

std::vector<std::uint8_t> read_whole_file(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (!in)
    throw SegmentError("warehouse: cannot open " + path + ": " +
                       std::strerror(errno));
  std::vector<std::uint8_t> bytes;
  std::array<std::uint8_t, 65536> buf;
  for (std::size_t n; (n = std::fread(buf.data(), 1, buf.size(), in)) > 0;)
    bytes.insert(bytes.end(), buf.begin(), buf.begin() + static_cast<long>(n));
  std::fclose(in);
  return bytes;
}

}  // namespace

Rollups write_segment(
    const std::string& path, const store::CampaignMeta& meta,
    const std::map<std::uint64_t, std::vector<std::uint8_t>>& records,
    const std::vector<SourceTally>& sources) {
  static obs::Counter& writes = obs::counter("warehouse.segments_written");
  static obs::Counter& bytes_out = obs::counter("warehouse.segment_bytes");
  static obs::Histogram& latency = obs::histogram("warehouse.write_us");
  obs::ScopedTimerUs timer(latency);

  Rollups rollups;
  rollups.kind = meta.kind;
  for (const auto& [id, payload] : records) rollups.add(id, payload);

  std::vector<std::uint8_t> out;
  {  // header
    std::vector<std::uint8_t> head;
    store::ByteWriter w(head);
    w.u64(kSegmentMagic);
    w.u32(kSegmentVersion);
    const auto meta_bytes = store::ResultLog::encode_meta(meta);
    head.insert(head.end(), meta_bytes.begin(), meta_bytes.end());
    const auto columns_for = build_columns(meta.kind, {});  // column count only
    store::ByteWriter w2(head);
    w2.u32(static_cast<std::uint32_t>(columns_for.size()));
    const std::uint32_t crc = store::crc32(head);
    out.insert(out.end(), head.begin(), head.end());
    store::ByteWriter tail(out);
    tail.u32(crc);
  }
  for (const ColumnBlock& b : build_columns(meta.kind, records))
    append_block(out, b);
  const std::uint64_t footer_offset = out.size();
  encode_footer(out, meta, rollups, sources);
  {  // trailer
    store::ByteWriter w(out);
    w.u64(footer_offset);
    w.u64(kSegmentEndMagic);
  }

  store::create_parent_dirs(path);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f)
    throw std::runtime_error("warehouse: cannot create " + tmp + ": " +
                             std::strerror(errno));
  const bool wrote =
      std::fwrite(out.data(), 1, out.size(), f) == out.size() &&
      std::fflush(f) == 0;
  std::fclose(f);
  if (!wrote) {
    std::remove(tmp.c_str());
    throw std::runtime_error("warehouse: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("warehouse: rename failed for " + path);
  }
  writes.add(1);
  bytes_out.add(out.size());
  return rollups;
}

Segment read_segment(const std::string& path) {
  static obs::Counter& reads = obs::counter("warehouse.segments_read");
  const std::vector<std::uint8_t> bytes = read_whole_file(path);
  const std::span<const std::uint8_t> all(bytes);

  // Trailer first: it locates the footer and proves the file is complete.
  if (bytes.size() < 16) throw SegmentError("warehouse: file too short");
  store::ByteReader trailer(all.subspan(bytes.size() - 16));
  const std::uint64_t footer_offset = trailer.u64();
  if (trailer.u64() != kSegmentEndMagic)
    throw SegmentError("warehouse: missing end magic (truncated segment?)");
  if (footer_offset >= bytes.size() - 16)
    throw SegmentError("warehouse: footer offset out of range");
  const Footer footer =
      decode_footer(all.subspan(footer_offset, bytes.size() - 16 - footer_offset));

  // Header: magic + version + meta + column count + CRC over all of those.
  const std::size_t head_len = 8 + 4 + store::ResultLog::kHeaderSize + 4 + 4;
  if (footer_offset < head_len)
    throw SegmentError("warehouse: header overlaps footer");
  store::ByteReader head(all.first(head_len));
  if (head.u64() != kSegmentMagic)
    throw SegmentError("warehouse: bad magic (not a gpfw file)");
  const std::uint32_t version = head.u32();
  if (version != kSegmentVersion)
    throw SegmentError("warehouse: unsupported segment version " +
                       std::to_string(version));
  store::CampaignMeta meta;
  try {
    meta = store::ResultLog::decode_meta(
        all.subspan(12, store::ResultLog::kHeaderSize));
  } catch (const std::exception& e) {
    throw SegmentError(std::string("warehouse: malformed header meta: ") +
                       e.what());
  }
  std::uint32_t column_count;
  {
    store::ByteReader rd(all.subspan(12 + store::ResultLog::kHeaderSize, 8));
    column_count = rd.u32();
    const std::uint32_t want = rd.u32();
    if (store::crc32(all.first(head_len - 4)) != want)
      throw SegmentError("warehouse: header CRC mismatch");
  }

  // Column blocks.
  std::map<std::uint32_t, ColumnBlock> cols;
  std::size_t pos = head_len;
  for (std::uint32_t i = 0; i < column_count; ++i) {
    if (pos + 24 > footer_offset)
      throw SegmentError("warehouse: column block overruns footer");
    store::ByteReader rd(all.subspan(pos, 20));
    ColumnBlock b;
    b.id = rd.u32();
    b.rows = rd.u64();
    const std::uint64_t len = rd.u64();
    if (pos + 20 + len + 4 > footer_offset)
      throw SegmentError("warehouse: column data overruns footer");
    const auto data = all.subspan(pos + 20, len);
    store::ByteReader crc_rd(all.subspan(pos + 20 + len, 4));
    if (store::crc32(data, store::crc32(all.subspan(pos, 20))) != crc_rd.u32())
      throw SegmentError("warehouse: column CRC mismatch (id " +
                         std::to_string(b.id) + ")");
    b.data.assign(data.begin(), data.end());
    if (!cols.try_emplace(b.id, std::move(b)).second)
      throw SegmentError("warehouse: duplicate column id");
    pos += 20 + len + 4;
  }
  if (pos != footer_offset)
    throw SegmentError("warehouse: gap between columns and footer");

  // Reconstruct canonical record payloads from the columns.
  const auto need = [&cols](std::uint32_t id) -> const ColumnBlock& {
    const auto it = cols.find(id);
    if (it == cols.end())
      throw SegmentError("warehouse: missing column " + std::to_string(id));
    return it->second;
  };
  Segment seg;
  seg.meta = meta;
  seg.rollups = footer.rollups;
  seg.sources = footer.sources;
  try {
    const ColumnBlock& ids = need(kColId);
    const std::uint64_t rows = ids.rows;
    store::ByteReader id_rd(ids.data);
    switch (meta.kind) {
      case store::CampaignKind::Gate: {
        store::ByteReader net_rd(need(kColNet).data);
        store::ByteReader flag_rd(need(kColFlags).data);
        std::vector<store::ByteReader> count_rd;
        for (unsigned m = 0; m < errmodel::kNumErrorModels; ++m)
          count_rd.emplace_back(need(kGateCountBase + m).data);
        for (std::uint64_t i = 0; i < rows; ++i) {
          store::GateRecord r;
          const std::uint64_t id = id_rd.u64();
          r.net = net_rd.u32();
          const std::uint8_t flags = flag_rd.u8();
          r.stuck_high = (flags & 1) != 0;
          r.activated = (flags & 2) != 0;
          r.hang = (flags & 4) != 0;
          for (unsigned m = 0; m < errmodel::kNumErrorModels; ++m)
            r.error_counts[m] = count_rd[m].u32();
          seg.records.emplace(id, store::encode(r));
        }
        break;
      }
      case store::CampaignKind::Rtl: {
        store::ByteReader out_rd(need(kColOutcome).data);
        store::ByteReader cor_rd(need(kColCorrupted).data);
        store::ByteReader warp_rd(need(kColPerWarp).data);
        store::ByteReader rel_len_rd(need(kColRelLen).data);
        store::ByteReader rel_val_rd(need(kColRelVal).data);
        store::ByteReader idx_len_rd(need(kColIdxLen).data);
        store::ByteReader idx_val_rd(need(kColIdxVal).data);
        for (std::uint64_t i = 0; i < rows; ++i) {
          store::RtlRecord r;
          const std::uint64_t id = id_rd.u64();
          r.outcome = static_cast<store::RtlOutcome>(out_rd.u8());
          r.corrupted = cor_rd.u32();
          r.per_warp_corrupted = warp_rd.f64();
          r.rel_errors.resize(rel_len_rd.u32());
          for (auto& e : r.rel_errors) e = rel_val_rd.f64();
          r.corrupted_idx.resize(idx_len_rd.u32());
          for (auto& x : r.corrupted_idx) x = idx_val_rd.u32();
          seg.records.emplace(id, store::encode(r));
        }
        break;
      }
      case store::CampaignKind::Perfi: {
        store::ByteReader out_rd(need(kColOutcome).data);
        for (std::uint64_t i = 0; i < rows; ++i) {
          store::PerfiRecord r;
          const std::uint64_t id = id_rd.u64();
          r.outcome = static_cast<store::PerfiOutcome>(out_rd.u8());
          seg.records.emplace(id, store::encode(r));
        }
        break;
      }
    }
  } catch (const SegmentError&) {
    throw;
  } catch (const std::exception& e) {
    throw SegmentError(std::string("warehouse: malformed column data: ") +
                       e.what());
  }
  if (seg.records.size() != footer.rows)
    throw SegmentError("warehouse: column rows disagree with footer");
  reads.add(1);
  return seg;
}

Footer read_footer(const std::string& path) {
  static obs::Counter& reads = obs::counter("warehouse.footer_reads");
  static obs::Histogram& latency = obs::histogram("warehouse.footer_read_us");
  obs::ScopedTimerUs timer(latency);

  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (!in)
    throw SegmentError("warehouse: cannot open " + path + ": " +
                       std::strerror(errno));
  if (std::fseek(in, 0, SEEK_END) != 0) {
    std::fclose(in);
    throw SegmentError("warehouse: cannot seek " + path);
  }
  const long size = std::ftell(in);
  if (size < 16) {
    std::fclose(in);
    throw SegmentError("warehouse: file too short");
  }
  std::array<std::uint8_t, 16> trailer_bytes{};
  bool ok = std::fseek(in, size - 16, SEEK_SET) == 0 &&
            std::fread(trailer_bytes.data(), 1, 16, in) == 16;
  if (!ok) {
    std::fclose(in);
    throw SegmentError("warehouse: cannot read trailer of " + path);
  }
  store::ByteReader trailer(trailer_bytes);
  const std::uint64_t footer_offset = trailer.u64();
  if (trailer.u64() != kSegmentEndMagic ||
      footer_offset >= static_cast<std::uint64_t>(size) - 16) {
    std::fclose(in);
    throw SegmentError("warehouse: missing end magic (truncated segment?)");
  }
  std::vector<std::uint8_t> block(static_cast<std::size_t>(size) - 16 -
                                  footer_offset);
  ok = std::fseek(in, static_cast<long>(footer_offset), SEEK_SET) == 0 &&
       std::fread(block.data(), 1, block.size(), in) == block.size();
  std::fclose(in);
  if (!ok) throw SegmentError("warehouse: cannot read footer of " + path);
  Footer f = decode_footer(block);
  reads.add(1);
  return f;
}

}  // namespace gpf::warehouse
