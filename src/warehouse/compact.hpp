// Compaction: rolling one campaign's store file(s) — a single store or the
// shard set of a fleet run — into one columnar warehouse segment.
//
// The Compactor is incremental and watermark-based: the segment footer
// records, per source store, the log byte offset already consumed, so a
// refresh on a live fleet only scans each log's fresh tail (via
// store::scan_records, which never truncates and is safe against concurrent
// appenders). Records are held id-sorted in memory between refreshes and the
// rollups are always rebuilt from that full map, so an incremental refresh
// produces byte-identical segments to a from-scratch compaction of the same
// logs — the invariant test_warehouse asserts. Any inconsistency (torn or
// missing segment, a log truncated below its watermark by torn-tail
// recovery) silently degrades to a full rebuild; correctness never depends
// on the segment being intact.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "store/result_log.hpp"
#include "warehouse/segment.hpp"

namespace gpf::warehouse {

/// Conventional segment path for a store file: `foo.gpfs` -> `foo.gpfw`
/// (appends ".gpfw" when the store name has no .gpfs suffix).
std::string warehouse_path_for(const std::string& store_path);

/// What one refresh() did.
struct CompactStats {
  std::size_t sources = 0;         ///< source store files scanned
  std::uint64_t rows = 0;          ///< deduped rows now in the segment
  std::uint64_t fresh_records = 0; ///< raw log records consumed this refresh
  bool incremental = false;        ///< resumed from segment watermarks
  bool wrote = false;              ///< segment file (re)written
};

/// Rolls a fixed set of source stores (shards of one campaign) into one
/// segment file. Thread-safe: refresh() and the accessors may be called from
/// different threads (gpfd refreshes on a timer while the HTTP handler reads
/// footers).
class Compactor {
 public:
  /// Validates that every path is a store of the same campaign with a
  /// distinct shard slice. Throws on mismatch; does not scan records yet —
  /// the first refresh() does (seeding from an existing valid segment at
  /// `segment_path` when its sources match).
  Compactor(std::vector<std::string> store_paths, std::string segment_path);

  /// Scans fresh log tails, folds them in, and rewrites the segment (the
  /// write is skipped when nothing changed and the segment is known good).
  CompactStats refresh();

  const std::string& segment_path() const { return segment_path_; }
  const store::CampaignMeta& meta() const { return meta_; }

  /// Snapshot of the current query view (meta + rollups + watermarks).
  /// Valid after the first refresh().
  Footer footer() const;

 private:
  void full_rebuild_locked();

  std::vector<std::string> paths_;
  std::string segment_path_;
  store::CampaignMeta meta_;                ///< merged view (shard 0 of 1)
  std::vector<store::CampaignMeta> metas_;  ///< per source, parallel to paths_

  mutable std::mutex mu_;
  bool seeded_ = false;         ///< first refresh happened
  bool segment_valid_ = false;  ///< on-disk segment matches `records_`
  std::map<std::uint64_t, std::vector<std::uint8_t>> records_;
  std::vector<SourceTally> tallies_;  ///< parallel to paths_
  Rollups rollups_;
};

/// One-shot compaction: build (or incrementally refresh) the segment at
/// `out_path` from `store_paths` and return what happened.
CompactStats compact_stores(const std::vector<std::string>& store_paths,
                            const std::string& out_path);

}  // namespace gpf::warehouse
