// Pre-aggregated campaign rollups: the footer of a warehouse segment.
//
// A Rollups value holds every aggregate the query layer serves — per-model
// EPR with confidence counts, per-net stuck-at-0/1 classification tallies,
// syndrome (error-pattern magnitude) histograms, and the per-outcome/class
// totals — so `gpfctl query` and gpfd's /v1/query answer without touching
// raw records. Two independent construction paths exist on purpose:
//
//  * Rollups::add(): the incremental builder the compactor feeds record by
//    record (in ascending id order, which makes the floating-point sums
//    bit-deterministic);
//  * compute_rollups(): a separately written full-log-scan reference.
//
// The repo's acceptance invariant is that both paths agree exactly on every
// store (single, resumed, shard-merged) — asserted by test_warehouse and
// checkable in the field with `gpfctl query --verify`.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "store/bytes.hpp"
#include "store/records.hpp"
#include "store/result_log.hpp"

namespace gpf::warehouse {

/// Gate fault classes, in the same order as store export's GateSummary:
/// 0 uncontrollable, 1 hw-masked, 2 hw-hang, 3 sw-error.
constexpr std::size_t kGateClasses = 4;
const char* gate_class_name(std::size_t cls);

/// Power-of-two syndrome-magnitude buckets: bucket 0 counts zero-magnitude
/// records, bucket b counts magnitudes in [2^(b-1), 2^b).
constexpr std::size_t kSyndromeBuckets = 32;
std::size_t syndrome_bucket(std::uint64_t magnitude);
/// Upper bound (exclusive) of bucket b.
std::uint64_t syndrome_bucket_limit(std::size_t b);

/// Per-net stuck-at classification tallies (gate campaigns): how many
/// retired faults on this net fell into each class, split by stuck value.
struct NetTally {
  std::uint32_t net = 0;
  std::array<std::uint32_t, kGateClasses> sa0{};  ///< stuck-at-0 class counts
  std::array<std::uint32_t, kGateClasses> sa1{};  ///< stuck-at-1 class counts
  bool operator==(const NetTally&) const = default;
};

struct Rollups {
  store::CampaignKind kind = store::CampaignKind::Gate;
  std::uint64_t rows = 0;  ///< deduplicated records aggregated

  // --- gate ---------------------------------------------------------------
  std::array<std::uint64_t, kGateClasses> gate_classes{};
  /// Per error model: faults with >=1 occurrence (the confidence count
  /// backing the model's FAPR) and total occurrences.
  std::array<std::uint64_t, errmodel::kNumErrorModels> model_faults{};
  std::array<std::uint64_t, errmodel::kNumErrorModels> model_occurrences{};
  std::vector<NetTally> nets;  ///< sorted by net, ascending

  // --- rtl ----------------------------------------------------------------
  std::array<std::uint64_t, 4> rtl_outcomes{};  ///< store::RtlOutcome order
  std::uint64_t corrupted_total = 0;
  double per_warp_sum = 0.0;  ///< summed in ascending id order (see header)

  // --- perfi --------------------------------------------------------------
  std::array<std::uint64_t, 7> perfi_outcomes{};  ///< store::PerfiOutcome order

  // --- syndrome histogram (gate: total error occurrences per fault;
  //     rtl: corrupted outputs per injection; perfi: unused) ---------------
  std::array<std::uint64_t, kSyndromeBuckets> syndrome{};
  std::uint64_t syndrome_sum = 0;

  /// Folds one record in. Callers must feed records in ascending id order
  /// for bit-deterministic floating-point sums (the compactor iterates its
  /// id-sorted map, so this holds by construction).
  void add(std::uint64_t id, std::span<const std::uint8_t> payload);

  /// Exact equality, doubles included — both construction paths sum in id
  /// order, so agreeing runs agree bit-for-bit.
  bool operator==(const Rollups&) const = default;

  // Derived ratios served by the query layer.
  double ratio(std::uint64_t k) const {
    return rows ? static_cast<double>(k) / static_cast<double>(rows) : 0.0;
  }
  std::uint64_t perfi_due() const {
    std::uint64_t n = 0;
    for (std::size_t o = 2; o < perfi_outcomes.size(); ++o)
      n += perfi_outcomes[o];
    return n;
  }
};

/// Full-scan reference: recomputes every aggregate from the raw records of a
/// loaded store. Written independently of Rollups::add so the equality
/// asserted between the two is a real cross-check, not a tautology.
Rollups compute_rollups(const store::LoadedStore& s);

/// Deterministic little-endian serialization (segment footer payload).
std::vector<std::uint8_t> encode(const Rollups& r);
Rollups decode_rollups(std::span<const std::uint8_t> bytes);
/// In-place decode for callers embedding rollups in a larger stream (the
/// segment footer); leaves the reader positioned after the rollup bytes.
Rollups decode_rollups(store::ByteReader& rd);

}  // namespace gpf::warehouse
