#include "warehouse/rollups.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "store/bytes.hpp"

namespace gpf::warehouse {

const char* gate_class_name(std::size_t cls) {
  switch (cls) {
    case 0: return "uncontrollable";
    case 1: return "hw-masked";
    case 2: return "hw-hang";
    case 3: return "sw-error";
  }
  return "?";
}

std::size_t syndrome_bucket(std::uint64_t magnitude) {
  std::size_t b = 0;
  while (magnitude && b + 1 < kSyndromeBuckets) {
    magnitude >>= 1;
    ++b;
  }
  return b;
}

std::uint64_t syndrome_bucket_limit(std::size_t b) {
  return b + 1 >= kSyndromeBuckets ? ~0ull : 1ull << b;
}

namespace {

/// Class index of a gate record, matching store export's GateSummary order.
std::size_t gate_class_of(const store::GateRecord& r) {
  if (r.any_error()) return 3;
  if (r.hang) return 2;
  return r.activated ? 1 : 0;
}

/// Sorted-insert lookup of the tally row for `net`.
NetTally& net_tally(std::vector<NetTally>& nets, std::uint32_t net) {
  const auto it = std::lower_bound(
      nets.begin(), nets.end(), net,
      [](const NetTally& t, std::uint32_t n) { return t.net < n; });
  if (it != nets.end() && it->net == net) return *it;
  return *nets.insert(it, NetTally{net, {}, {}});
}

}  // namespace

void Rollups::add(std::uint64_t /*id*/, std::span<const std::uint8_t> payload) {
  ++rows;
  switch (kind) {
    case store::CampaignKind::Gate: {
      const store::GateRecord r = store::decode_gate(payload);
      const std::size_t cls = gate_class_of(r);
      ++gate_classes[cls];
      std::uint64_t magnitude = 0;
      for (unsigned m = 0; m < errmodel::kNumErrorModels; ++m) {
        if (r.error_counts[m]) {
          ++model_faults[m];
          model_occurrences[m] += r.error_counts[m];
        }
        magnitude += r.error_counts[m];
      }
      NetTally& t = net_tally(nets, r.net);
      ++(r.stuck_high ? t.sa1 : t.sa0)[cls];
      ++syndrome[syndrome_bucket(magnitude)];
      syndrome_sum += magnitude;
      break;
    }
    case store::CampaignKind::Rtl: {
      const store::RtlRecord r = store::decode_rtl(payload);
      ++rtl_outcomes[static_cast<std::size_t>(r.outcome)];
      corrupted_total += r.corrupted;
      per_warp_sum += r.per_warp_corrupted;
      ++syndrome[syndrome_bucket(r.corrupted)];
      syndrome_sum += r.corrupted;
      break;
    }
    case store::CampaignKind::Perfi: {
      const store::PerfiRecord r = store::decode_perfi(payload);
      ++perfi_outcomes[static_cast<std::size_t>(r.outcome)];
      break;
    }
  }
}

Rollups compute_rollups(const store::LoadedStore& s) {
  Rollups out;
  out.kind = s.meta.kind;
  out.rows = s.records.size();
  switch (s.meta.kind) {
    case store::CampaignKind::Gate: {
      // Accumulate per-net tallies in a map first, then emit sorted — a
      // deliberately different construction from Rollups::add's sorted
      // vector insert.
      std::map<std::uint32_t, NetTally> nets;
      for (const auto& [id, payload] : s.records) {
        const store::GateRecord r = store::decode_gate(payload);
        std::size_t cls;
        if (r.any_error())
          cls = 3;
        else if (r.hang)
          cls = 2;
        else if (r.activated)
          cls = 1;
        else
          cls = 0;
        ++out.gate_classes[cls];
        std::uint64_t magnitude = 0;
        for (unsigned m = 0; m < errmodel::kNumErrorModels; ++m) {
          magnitude += r.error_counts[m];
          if (!r.error_counts[m]) continue;
          ++out.model_faults[m];
          out.model_occurrences[m] += r.error_counts[m];
        }
        auto [it, inserted] = nets.try_emplace(r.net, NetTally{r.net, {}, {}});
        auto& side = r.stuck_high ? it->second.sa1 : it->second.sa0;
        ++side[cls];
        ++out.syndrome[syndrome_bucket(magnitude)];
        out.syndrome_sum += magnitude;
      }
      out.nets.reserve(nets.size());
      for (const auto& [net, tally] : nets) out.nets.push_back(tally);
      break;
    }
    case store::CampaignKind::Rtl: {
      for (const auto& [id, payload] : s.records) {
        const store::RtlRecord r = store::decode_rtl(payload);
        ++out.rtl_outcomes[static_cast<std::size_t>(r.outcome)];
        out.corrupted_total += r.corrupted;
        out.per_warp_sum += r.per_warp_corrupted;
        ++out.syndrome[syndrome_bucket(r.corrupted)];
        out.syndrome_sum += r.corrupted;
      }
      break;
    }
    case store::CampaignKind::Perfi: {
      for (const auto& [id, payload] : s.records) {
        const store::PerfiRecord r = store::decode_perfi(payload);
        ++out.perfi_outcomes[static_cast<std::size_t>(r.outcome)];
      }
      break;
    }
  }
  return out;
}

std::vector<std::uint8_t> encode(const Rollups& r) {
  std::vector<std::uint8_t> out;
  store::ByteWriter w(out);
  w.u8(static_cast<std::uint8_t>(r.kind));
  w.u64(r.rows);
  for (const std::uint64_t c : r.gate_classes) w.u64(c);
  for (const std::uint64_t c : r.model_faults) w.u64(c);
  for (const std::uint64_t c : r.model_occurrences) w.u64(c);
  w.u32(static_cast<std::uint32_t>(r.nets.size()));
  for (const NetTally& t : r.nets) {
    w.u32(t.net);
    for (const std::uint32_t c : t.sa0) w.u32(c);
    for (const std::uint32_t c : t.sa1) w.u32(c);
  }
  for (const std::uint64_t c : r.rtl_outcomes) w.u64(c);
  w.u64(r.corrupted_total);
  w.f64(r.per_warp_sum);
  for (const std::uint64_t c : r.perfi_outcomes) w.u64(c);
  for (const std::uint64_t c : r.syndrome) w.u64(c);
  w.u64(r.syndrome_sum);
  return out;
}

Rollups decode_rollups(std::span<const std::uint8_t> bytes) {
  store::ByteReader rd(bytes);
  Rollups r = decode_rollups(rd);
  if (!rd.done()) throw std::runtime_error("warehouse: trailing rollup bytes");
  return r;
}

Rollups decode_rollups(store::ByteReader& rd) {
  Rollups r;
  r.kind = static_cast<store::CampaignKind>(rd.u8());
  r.rows = rd.u64();
  for (auto& c : r.gate_classes) c = rd.u64();
  for (auto& c : r.model_faults) c = rd.u64();
  for (auto& c : r.model_occurrences) c = rd.u64();
  r.nets.resize(rd.u32());
  for (NetTally& t : r.nets) {
    t.net = rd.u32();
    for (auto& c : t.sa0) c = rd.u32();
    for (auto& c : t.sa1) c = rd.u32();
  }
  for (auto& c : r.rtl_outcomes) c = rd.u64();
  r.corrupted_total = rd.u64();
  r.per_warp_sum = rd.f64();
  for (auto& c : r.perfi_outcomes) c = rd.u64();
  for (auto& c : r.syndrome) c = rd.u64();
  r.syndrome_sum = rd.u64();
  return r;
}

}  // namespace gpf::warehouse
