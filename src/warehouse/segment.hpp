// On-disk columnar warehouse segment (.gpfw): the compacted form of one
// campaign store (or of a group of shard stores merged into one view).
//
//   [header]   u64 magic "GPFWARE1" | u32 version | 80-byte campaign meta |
//              u32 column count | u32 CRC over the preceding bytes
//   [columns]  per column: u32 column id | u64 rows | u64 byte length |
//              data | u32 CRC over (id..data) — one block per record field,
//              so a future analytical scan reads only the columns it needs
//   [footer]   80-byte meta (again, so the footer is self-contained) |
//              u64 rows | rollups | source watermarks | u32 CRC
//   [trailer]  u64 footer byte offset | u64 end magic "GPFWEND1"
//
// Everything is little-endian via store/bytes.hpp and carries no timestamps
// or paths, so a segment is a pure function of (meta, record set, source
// tallies): re-compacting the same records always reproduces identical
// bytes — the property the idempotence and incremental-equals-one-shot
// tests assert. Files are written to a temp name and renamed into place, so
// readers never observe a half-written segment; any CRC/trailer mismatch
// (external truncation/corruption) throws SegmentError, which the compactor
// treats as "no segment" and rebuilds from the logs.
//
// The query path never touches the columns: read_footer() seeks to the
// trailer, then the footer — O(rollup size), not O(rows).
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "store/result_log.hpp"
#include "warehouse/rollups.hpp"

namespace gpf::warehouse {

constexpr std::uint64_t kSegmentMagic = 0x3145524157465047ULL;     // "GPFWARE1"
constexpr std::uint64_t kSegmentEndMagic = 0x31444E4557465047ULL;  // "GPFWEND1"
constexpr std::uint32_t kSegmentVersion = 1;

/// A segment file that fails validation (bad magic/version/CRC, truncated
/// mid-block). The compactor catches this and falls back to a full rebuild.
struct SegmentError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Compaction watermark for one source store file, keyed by its shard slice.
struct SourceTally {
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  std::uint64_t scanned_records = 0;  ///< raw log records consumed (pre-dedup)
  std::uint64_t watermark = 0;        ///< log byte offset consumed so far
  std::uint64_t rows = 0;             ///< deduped rows owned by this slice
  bool operator==(const SourceTally&) const = default;
};

/// Fully decoded segment (columns reconstructed back into canonical record
/// payloads). The compactor round-trips through this; queries use Footer.
struct Segment {
  store::CampaignMeta meta;
  std::map<std::uint64_t, std::vector<std::uint8_t>> records;  ///< id-sorted
  Rollups rollups;
  std::vector<SourceTally> sources;  ///< sorted by (shard_count, shard_index)
};

/// The O(ms) query view: everything the serving layer needs, without the
/// column data.
struct Footer {
  store::CampaignMeta meta;
  std::uint64_t rows = 0;
  Rollups rollups;
  std::vector<SourceTally> sources;
};

/// Serializes `meta` + `records` + `sources` into a segment at `path`
/// (atomically: temp + rename). Rollups are rebuilt from the records in
/// ascending id order, so the footer always matches the columns. Returns
/// the rollups written.
Rollups write_segment(
    const std::string& path, const store::CampaignMeta& meta,
    const std::map<std::uint64_t, std::vector<std::uint8_t>>& records,
    const std::vector<SourceTally>& sources);

/// Full read: header, every column block (CRC-checked), footer. Throws
/// SegmentError on any validation failure.
Segment read_segment(const std::string& path);

/// Footer-only read (trailer seek + footer CRC check). Throws SegmentError.
Footer read_footer(const std::string& path);

}  // namespace gpf::warehouse
