// A compiled kernel: the instruction words plus launch-relevant metadata.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/encoding.hpp"

namespace gpf::isa {

struct Program {
  std::string name;
  std::vector<std::uint64_t> words;   ///< instruction memory, PC-indexed
  unsigned regs_per_thread = 8;       ///< IVRA boundary: register index >= this traps
  unsigned shared_words = 0;          ///< per-CTA shared memory, in 32-bit words

  std::size_t size() const { return words.size(); }
};

/// Human-readable form of one instruction word (for logs and tests).
std::string disassemble(std::uint64_t word);
std::string disassemble(const Program& prog);

}  // namespace gpf::isa
