#include "isa/encoding.hpp"

#include "common/bitops.hpp"

namespace gpf::isa {

std::uint64_t encode(const Instruction& in) {
  using namespace field;
  std::uint64_t w = 0;
  w = set_bits<std::uint64_t>(w, kOpcodeLo, kOpcodeW, static_cast<std::uint64_t>(in.op));
  w = set_bits<std::uint64_t>(w, kPredLo, kPredW, in.guard_pred);
  w = with_bit<std::uint64_t>(w, kPredNeg, in.guard_neg);
  w = with_bit<std::uint64_t>(w, kFlagImm, in.use_imm);
  w = set_bits<std::uint64_t>(w, kFlagSpaceLo, kFlagSpaceW,
                              static_cast<std::uint64_t>(in.space));
  w = set_bits<std::uint64_t>(w, kRdLo, kRdW, in.rd);
  w = set_bits<std::uint64_t>(w, kRs1Lo, kRs1W, in.rs1);
  if (in.use_imm) {
    w = set_bits<std::uint64_t>(w, kImmLo, kImmW, in.imm);
  } else {
    w = set_bits<std::uint64_t>(w, kRs2Lo, kRs2W, in.rs2);
    w = set_bits<std::uint64_t>(w, kRs3Lo, kRs3W, in.rs3);
  }
  return w;
}

DecodeResult decode(std::uint64_t word) {
  using namespace field;
  DecodeResult out;
  const auto raw_op = static_cast<std::uint8_t>(bits(word, kOpcodeLo, kOpcodeW));
  if (!is_valid_opcode(raw_op)) return out;

  Instruction& in = out.instr;
  in.op = static_cast<Op>(raw_op);
  in.guard_pred = static_cast<std::uint8_t>(bits(word, kPredLo, kPredW));
  in.guard_neg = bit(word, kPredNeg);
  in.use_imm = bit(word, kFlagImm);
  in.space = static_cast<MemSpace>(bits(word, kFlagSpaceLo, kFlagSpaceW));
  in.rd = static_cast<std::uint8_t>(bits(word, kRdLo, kRdW));
  in.rs1 = static_cast<std::uint8_t>(bits(word, kRs1Lo, kRs1W));
  if (in.use_imm) {
    in.imm = static_cast<std::uint32_t>(bits(word, kImmLo, kImmW));
  } else {
    in.rs2 = static_cast<std::uint8_t>(bits(word, kRs2Lo, kRs2W));
    in.rs3 = static_cast<std::uint8_t>(bits(word, kRs3Lo, kRs3W));
  }
  out.ok = true;
  return out;
}

}  // namespace gpf::isa
