// SASS-like instruction set for the GPU model. The opcode space is 8 bits
// wide and sparsely populated, exactly the property that makes decoder /
// fetch faults yield the paper's IOC (incorrect-but-valid opcode) vs IVOC
// (invalid opcode) split.
#pragma once

#include <cstdint>
#include <string_view>

namespace gpf::isa {

enum class Op : std::uint8_t {
  NOP = 0x00,

  // Integer ALU (per-lane INT unit).
  IADD = 0x08,
  ISUB = 0x09,
  IMUL = 0x0A,
  IMAD = 0x0B,
  IMIN = 0x0C,
  IMAX = 0x0D,
  IABS = 0x0E,
  SHL = 0x10,
  SHR = 0x11,   // logical
  SHRA = 0x12,  // arithmetic
  LOP_AND = 0x13,
  LOP_OR = 0x14,
  LOP_XOR = 0x15,
  LOP_NOT = 0x16,

  // Integer set-predicate family (comparison folded into the opcode).
  ISETP_LT = 0x18,
  ISETP_LE = 0x19,
  ISETP_GT = 0x1A,
  ISETP_GE = 0x1B,
  ISETP_EQ = 0x1C,
  ISETP_NE = 0x1D,
  ISETP_LTU = 0x1E,  // unsigned
  ISETP_GEU = 0x1F,  // unsigned

  // FP32 (per-lane FP32 unit).
  FADD = 0x20,
  FMUL = 0x21,
  FFMA = 0x22,
  FMIN = 0x24,
  FMAX = 0x25,
  F2I = 0x26,
  I2F = 0x27,

  FSETP_LT = 0x28,
  FSETP_LE = 0x29,
  FSETP_GT = 0x2A,
  FSETP_GE = 0x2B,
  FSETP_EQ = 0x2C,
  FSETP_NE = 0x2D,

  // Special Function Unit (shared, 2 per PPB).
  FSIN = 0x30,
  FEXP = 0x31,  // 2^x, like SASS EX2
  FRCP = 0x32,
  FSQRT = 0x33,
  FLG2 = 0x34,

  // Data movement.
  MOV = 0x40,
  SEL = 0x41,  // rd = guard-pred(rs3 low bits) ? rs1 : rs2
  S2R = 0x42,  // read special register (id in rs1 field)

  // Memory (space selected by the flags field).
  LD = 0x50,
  ST = 0x51,

  // Control flow.
  BRA = 0x60,
  SSY = 0x61,
  BAR = 0x62,
  EXIT = 0x63,
};

/// Unit that executes the instruction — the paper's injection sites.
enum class UnitClass : std::uint8_t { INT, FP32, SFU, MOVE, MEM, CTRL };

enum class MemSpace : std::uint8_t { Global = 0, Shared = 1, Const = 2, Local = 3 };

/// Special registers readable via S2R.
enum class SpecialReg : std::uint8_t {
  TID_X = 0, TID_Y, TID_Z,
  NTID_X, NTID_Y, NTID_Z,
  CTAID_X, CTAID_Y,
  NCTAID_X, NCTAID_Y,
  LANEID, WARPID, SMID,
  COUNT
};

/// True if the raw byte is a defined opcode.
bool is_valid_opcode(std::uint8_t raw);

/// Classification helpers.
UnitClass unit_of(Op op);
int num_sources(Op op);          // register source operands (max 3)
bool writes_register(Op op);
bool writes_predicate(Op op);    // SETP family
bool is_load(Op op);
bool is_store(Op op);
bool is_branch(Op op);           // BRA
bool is_sfu(Op op);
bool is_float(Op op);            // operates on FP32 data
std::string_view name_of(Op op);

/// Comparison selector carried by the SETP opcodes.
enum class Cmp : std::uint8_t { LT, LE, GT, GE, EQ, NE, LTU, GEU };
Cmp cmp_of(Op op);  // valid only for SETP family

}  // namespace gpf::isa
