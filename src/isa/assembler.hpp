// Text assembler: parses the disassembler's syntax (plus labels and
// directives) back into a Program, so kernels can be written as plain text.
//
//   .name saxpy
//   .shared 64
//       S2R R0, SR0
//       ISETP.LT P0, R0, 100
//       SSY done
//       @!P0 BRA done
//       LD.global R1, [R0+0]
//       FADD R1, R1, R2
//       ST.global [R0+1024], R1
//   done:
//       EXIT
//
// `assemble(disassemble(prog))` reproduces `prog` word-for-word (tested).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "isa/program.hpp"

namespace gpf::isa {

class AssemblerError : public std::runtime_error {
 public:
  AssemblerError(std::size_t line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Assemble a full listing into a Program. Throws AssemblerError on syntax
/// problems, unknown mnemonics, or unresolved labels. `regs_per_thread` is
/// inferred from the highest register used unless a `.regs` directive is
/// present; EXIT is appended if the listing does not end with one.
Program assemble(std::string_view source);

}  // namespace gpf::isa
