// 64-bit instruction word layout.
//
//   [63:56] opcode
//   [55:53] guard predicate register (7 = PT, always true)
//   [52]    guard negate
//   [51:48] flags: bit48 USE_IMM, bits[50:49] memory space, bit51 reserved-0
//   [47:40] rd   (destination register; data register for ST;
//                 destination predicate in the low 3 bits for SETP)
//   [39:32] rs1
//   if USE_IMM:  [31:0]  imm32 (replaces the last source operand;
//                               branch / SSY target; LD/ST address offset)
//   else:        [31:24] rs2, [23:16] rs3, [15:0] must be zero
//
// The decoder netlist in src/gate consumes exactly this word, so stuck-at
// faults on its input/internal nets corrupt these fields the way the paper's
// decoder faults do.
#pragma once

#include <cstdint>

#include "isa/opcode.hpp"

namespace gpf::isa {

inline constexpr std::uint8_t kPT = 7;       ///< "always true" guard predicate
inline constexpr std::uint8_t kRZ = 255;     ///< zero register (reads 0, writes ignored)
inline constexpr unsigned kNumPredicates = 7;  ///< P0..P6 writable

/// Decoded instruction (the output bundle of the decoder unit).
struct Instruction {
  Op op = Op::NOP;
  std::uint8_t guard_pred = kPT;
  bool guard_neg = false;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::uint8_t rs3 = 0;
  bool use_imm = false;
  std::uint32_t imm = 0;
  MemSpace space = MemSpace::Global;

  bool operator==(const Instruction&) const = default;
};

/// Field positions (shared with the gate-level decoder generator).
namespace field {
inline constexpr unsigned kOpcodeLo = 56, kOpcodeW = 8;
inline constexpr unsigned kPredLo = 53, kPredW = 3;
inline constexpr unsigned kPredNeg = 52;
inline constexpr unsigned kFlagImm = 48;
inline constexpr unsigned kFlagSpaceLo = 49, kFlagSpaceW = 2;
inline constexpr unsigned kRdLo = 40, kRdW = 8;
inline constexpr unsigned kRs1Lo = 32, kRs1W = 8;
inline constexpr unsigned kRs2Lo = 24, kRs2W = 8;
inline constexpr unsigned kRs3Lo = 16, kRs3W = 8;
inline constexpr unsigned kImmLo = 0, kImmW = 32;
}  // namespace field

std::uint64_t encode(const Instruction& in);

/// Decode result: `ok == false` means the word does not decode to a valid
/// instruction (invalid opcode) — the IVOC trap surface.
struct DecodeResult {
  Instruction instr;
  bool ok = false;
};

DecodeResult decode(std::uint64_t word);

}  // namespace gpf::isa
